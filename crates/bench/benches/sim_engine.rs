//! Criterion microbenchmarks of the wormhole engine's three hot entry
//! points — `inject()`, `step()`, and `run_to_quiescence()` — on 8×8
//! and 16×16 meshes under hot-spot traffic (every node multicasts into
//! the same central region, the §7.2 worst case for contention).
//!
//! The engine is a built substrate, so its cost is measured like any
//! other component; these are the numbers the BENCH_3 throughput
//! probes summarize at scenario level.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mcast_core::model::MulticastSet;
use mcast_sim::engine::{Engine, SimConfig};
use mcast_sim::network::Network;
use mcast_sim::routers::{DualPathRouter, MulticastRouter};
use mcast_sim::DeliveryPlan;
use mcast_topology::{Mesh2D, Topology};

/// Hot-spot workload: every node sends one multicast whose
/// destinations cluster around the mesh centre.
fn hot_spot_plans(mesh: Mesh2D, dests_per_msg: usize) -> Vec<DeliveryPlan> {
    let router = DualPathRouter::mesh(mesh);
    let n = mesh.num_nodes();
    let hot = n / 2; // centre-ish node
    (0..n)
        .map(|s| {
            let dests: Vec<usize> = (1..=dests_per_msg)
                .map(|i| (hot + i * 3 + s % 5) % n)
                .filter(|&d| d != s)
                .collect();
            router.plan(&MulticastSet::new(s, dests))
        })
        .collect()
}

fn fresh_engine(mesh: &Mesh2D) -> Engine {
    Engine::new(Network::new(mesh, 1), SimConfig::default())
}

fn bench_mesh(c: &mut Criterion, w: usize, h: usize) {
    let mesh = Mesh2D::new(w, h);
    let plans = hot_spot_plans(mesh, 8);
    let label = format!("mesh{w}x{h}");
    let mut g = c.benchmark_group("sim_engine");

    // inject(): plan → worm construction and root-channel requests for
    // one full wave of hot-spot multicasts (fresh engine per iteration).
    g.bench_function(format!("inject/{label}"), |b| {
        b.iter(|| {
            let mut engine = fresh_engine(&mesh);
            for p in &plans {
                engine.inject(black_box(p));
            }
            black_box(engine.in_flight())
        })
    });

    // step(): a fixed budget of flit events against the loaded network
    // (fresh engine per iteration so the event population is identical).
    g.bench_function(format!("step/{label}"), |b| {
        b.iter(|| {
            let mut engine = fresh_engine(&mesh);
            for p in &plans {
                engine.inject(p);
            }
            let mut steps = 0u32;
            while steps < 20_000 && engine.step() {
                steps += 1;
            }
            black_box((steps, engine.now()))
        })
    });

    // run_to_quiescence(): the whole hot-spot wave drained.
    g.bench_function(format!("run_to_quiescence/{label}"), |b| {
        b.iter(|| {
            let mut engine = fresh_engine(&mesh);
            for p in &plans {
                engine.inject(p);
            }
            assert!(engine.run_to_quiescence());
            black_box(engine.flit_hops())
        })
    });

    g.finish();
}

fn bench_engine(c: &mut Criterion) {
    bench_mesh(c, 8, 8);
    bench_mesh(c, 16, 16);
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
