//! Criterion benchmark of the wormhole engine itself: flit-event
//! throughput under a fixed closed workload — the simulator is a built
//! substrate, so its cost is measured like any other component.

use criterion::{criterion_group, criterion_main, Criterion};
use mcast_core::model::MulticastSet;
use mcast_sim::engine::{Engine, SimConfig};
use mcast_sim::network::Network;
use mcast_sim::routers::{DualPathRouter, MulticastRouter};
use mcast_topology::{Mesh2D, Topology};

fn bench_engine(c: &mut Criterion) {
    let mesh = Mesh2D::new(8, 8);
    let router = DualPathRouter::mesh(mesh);
    // 64 simultaneous 10-destination multicasts, run to completion.
    let plans: Vec<_> = (0..mesh.num_nodes())
        .map(|s| {
            let mc = MulticastSet::new(s, (1..=10).map(|i| (s + i * 5 + 3) % 64));
            router.plan(&mc)
        })
        .collect();
    c.bench_function("engine_closed_64x10_dual_path", |b| {
        b.iter(|| {
            let mut engine = Engine::new(Network::new(&mesh, 1), SimConfig::default());
            for p in &plans {
                engine.inject(p);
            }
            assert!(engine.run_to_quiescence());
            std::hint::black_box(engine.now())
        })
    });
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
