//! One Criterion bench per table and figure of the evaluation: each
//! target executes the corresponding experiment at smoke scale, so
//! `cargo bench` demonstrably exercises every regeneration path (full
//! runs: `cargo run -p mcast-bench --release --bin figures`).

use criterion::{criterion_group, criterion_main, Criterion};
use mcast_bench::{run_experiment, Scale};

fn bench_figures(c: &mut Criterion) {
    let scale = Scale::smoke();
    let mut g = c.benchmark_group("figures_smoke");
    g.sample_size(10);
    for id in mcast_bench::experiment_ids() {
        g.bench_function(id, |b| {
            b.iter(|| {
                let tables = run_experiment(id, &scale);
                std::hint::black_box(tables.iter().map(|t| t.rows.len()).sum::<usize>())
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_figures
}
criterion_main!(benches);
