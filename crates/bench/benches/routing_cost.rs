//! Criterion microbenchmarks of the routing algorithms' computational
//! cost — the dissertation's complexity claims (O(k log k) preparation,
//! O(1)/O(n) per hop, O(k²) replicate nodes) made measurable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcast_core::model::MulticastSet;
use mcast_topology::hamiltonian::{hypercube_cycle, mesh2d_cycle};
use mcast_topology::labeling::{hypercube_gray, mesh2d_snake};
use mcast_topology::{Hypercube, Mesh2D, Topology};
use mcast_workload::MulticastGen;

fn mesh_sets(n: usize, k: usize) -> (Mesh2D, Vec<MulticastSet>) {
    let m = Mesh2D::new(16, 16);
    let mut gen = MulticastGen::new(m.num_nodes(), 99);
    let sets = (0..n)
        .map(|_| {
            let s = gen.source();
            gen.multicast_distinct(s, k)
        })
        .collect();
    (m, sets)
}

fn cube_sets(n: usize, k: usize) -> (Hypercube, Vec<MulticastSet>) {
    let h = Hypercube::new(8);
    let mut gen = MulticastGen::new(h.num_nodes(), 99);
    let sets = (0..n)
        .map(|_| {
            let s = gen.source();
            gen.multicast_distinct(s, k)
        })
        .collect();
    (h, sets)
}

fn bench_mesh_routing(c: &mut Criterion) {
    let mut g = c.benchmark_group("mesh16x16_routing");
    for k in [10usize, 50] {
        let (m, sets) = mesh_sets(32, k);
        let cycle = mesh2d_cycle(&m);
        let labeling = mesh2d_snake(&m);
        g.bench_with_input(BenchmarkId::new("sorted_mp", k), &k, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let mc = &sets[i % sets.len()];
                i += 1;
                std::hint::black_box(mcast_core::sorted_mp::sorted_mp(&m, &cycle, mc).len())
            })
        });
        g.bench_with_input(BenchmarkId::new("greedy_st", k), &k, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let mc = &sets[i % sets.len()];
                i += 1;
                std::hint::black_box(mcast_core::greedy_st::greedy_st(&m, mc).traffic(&m))
            })
        });
        g.bench_with_input(BenchmarkId::new("xfirst", k), &k, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let mc = &sets[i % sets.len()];
                i += 1;
                std::hint::black_box(mcast_core::xfirst::xfirst_tree(&m, mc).traffic())
            })
        });
        g.bench_with_input(BenchmarkId::new("divided_greedy", k), &k, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let mc = &sets[i % sets.len()];
                i += 1;
                std::hint::black_box(
                    mcast_core::divided_greedy::divided_greedy_tree(&m, mc).traffic(),
                )
            })
        });
        g.bench_with_input(BenchmarkId::new("dual_path", k), &k, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let mc = &sets[i % sets.len()];
                i += 1;
                let paths = mcast_core::dual_path::dual_path(&m, &labeling, mc);
                std::hint::black_box(paths.iter().map(|p| p.len()).sum::<usize>())
            })
        });
        g.bench_with_input(BenchmarkId::new("multi_path", k), &k, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let mc = &sets[i % sets.len()];
                i += 1;
                let paths = mcast_core::multi_path::multi_path_mesh(&m, &labeling, mc);
                std::hint::black_box(paths.iter().map(|p| p.len()).sum::<usize>())
            })
        });
        g.bench_with_input(BenchmarkId::new("fixed_path", k), &k, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let mc = &sets[i % sets.len()];
                i += 1;
                let paths = mcast_core::fixed_path::fixed_path(&m, &labeling, mc);
                std::hint::black_box(paths.iter().map(|p| p.len()).sum::<usize>())
            })
        });
        g.bench_with_input(BenchmarkId::new("dc_tree", k), &k, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let mc = &sets[i % sets.len()];
                i += 1;
                std::hint::black_box(mcast_core::dc_xfirst_tree::traffic(
                    &mcast_core::dc_xfirst_tree::dc_xfirst(&m, mc),
                ))
            })
        });
    }
    g.finish();
}

fn bench_cube_routing(c: &mut Criterion) {
    let mut g = c.benchmark_group("cube8_routing");
    for k in [10usize, 50] {
        let (h, sets) = cube_sets(32, k);
        let cycle = hypercube_cycle(&h);
        let labeling = hypercube_gray(&h);
        g.bench_with_input(BenchmarkId::new("sorted_mp", k), &k, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let mc = &sets[i % sets.len()];
                i += 1;
                std::hint::black_box(mcast_core::sorted_mp::sorted_mp(&h, &cycle, mc).len())
            })
        });
        g.bench_with_input(BenchmarkId::new("greedy_st", k), &k, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let mc = &sets[i % sets.len()];
                i += 1;
                std::hint::black_box(mcast_core::greedy_st::greedy_st(&h, mc).traffic(&h))
            })
        });
        g.bench_with_input(BenchmarkId::new("len", k), &k, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let mc = &sets[i % sets.len()];
                i += 1;
                std::hint::black_box(mcast_core::len::len_tree(&h, mc).traffic())
            })
        });
        g.bench_with_input(BenchmarkId::new("dual_path", k), &k, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let mc = &sets[i % sets.len()];
                i += 1;
                let paths = mcast_core::dual_path::dual_path(&h, &labeling, mc);
                std::hint::black_box(paths.iter().map(|p| p.len()).sum::<usize>())
            })
        });
        g.bench_with_input(BenchmarkId::new("multi_path", k), &k, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let mc = &sets[i % sets.len()];
                i += 1;
                let paths = mcast_core::multi_path::multi_path(&h, &labeling, mc);
                std::hint::black_box(paths.iter().map(|p| p.len()).sum::<usize>())
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_mesh_routing, bench_cube_routing
}
criterion_main!(benches);
