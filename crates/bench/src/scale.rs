//! Effort scaling for the figure harness: the full paper-scale runs and a
//! smoke scale used by `cargo bench` / CI.

use mcast_workload::{DynamicConfig, StoppingRule};

/// Experiment effort knobs.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Trials per (k, algorithm) point for cheap static algorithms
    /// (the dissertation used 1000).
    pub trials: usize,
    /// Trials for the expensive O(k²) points (greedy ST at large k).
    pub trials_heavy: usize,
    /// Warmup messages per dynamic run.
    pub warmup: usize,
    /// Observations per latency batch.
    pub batch_size: usize,
    /// Batch bounds per dynamic run.
    pub min_batches: usize,
    /// Hard cap on batches per dynamic run.
    pub max_batches: usize,
    /// Destination counts for the large static sweeps (Figs 7.1–7.4).
    pub k_large: Vec<usize>,
    /// Destination counts for the small-network sweeps (Figs 7.5–7.7).
    pub k_small: Vec<usize>,
}

impl Scale {
    /// Paper-scale effort.
    pub fn full() -> Self {
        Scale {
            trials: 1000,
            trials_heavy: 200,
            warmup: 500,
            batch_size: 100,
            min_batches: 10,
            max_batches: 40,
            k_large: vec![
                2, 5, 10, 20, 50, 100, 200, 300, 400, 500, 600, 700, 800, 900,
            ],
            k_small: vec![2, 5, 10, 15, 20, 30, 40, 50],
        }
    }

    /// Fast smoke effort (seconds, exercises every code path).
    pub fn smoke() -> Self {
        Scale {
            trials: 20,
            trials_heavy: 4,
            warmup: 30,
            batch_size: 10,
            min_batches: 2,
            max_batches: 3,
            k_large: vec![5, 50, 300],
            k_small: vec![5, 20],
        }
    }

    /// Trials to use at destination count `k` for O(k²) algorithms.
    pub fn trials_for_k(&self, k: usize) -> usize {
        if k > 100 {
            self.trials_heavy
        } else {
            self.trials
        }
    }

    /// A dynamic-run configuration with this scale's statistics knobs.
    pub fn dynamic_config(&self) -> DynamicConfig {
        DynamicConfig {
            warmup: self.warmup,
            batch_size: self.batch_size,
            min_batches: self.min_batches,
            max_batches: self.max_batches,
            ..DynamicConfig::default()
        }
    }

    /// The same statistics knobs as an [`ExperimentSpec`] stopping rule
    /// (for the spec-driven figure harnesses).
    ///
    /// [`ExperimentSpec`]: mcast_workload::ExperimentSpec
    pub fn stopping_rule(&self) -> StoppingRule {
        StoppingRule {
            warmup: self.warmup,
            batch_size: self.batch_size,
            min_batches: self.min_batches,
            max_batches: self.max_batches,
            ..StoppingRule::default()
        }
    }
}
