//! The figure harness: functions that regenerate every table and figure
//! of the dissertation's evaluation (see DESIGN.md §4 for the index).
//!
//! * `cargo run -p mcast-bench --release --bin figures` regenerates
//!   everything at paper scale and writes CSVs to `results/`;
//! * `cargo bench` runs Criterion microbenchmarks of the routing
//!   algorithms plus smoke-scale figure executions.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablation;
pub mod figures_ch2;
pub mod figures_dynamic;
pub mod figures_fault;
pub mod figures_static;
pub mod modern;
pub mod perf;
pub mod report;
pub mod scale;
pub mod stream_scale;
pub mod tables5;

pub use perf::{
    load_baseline_probes, EngineScaleProbe, PerfRecorder, ProbeResult, SweepBenchResult,
};
pub use report::Table;
pub use scale::Scale;
pub use stream_scale::{
    gated_probe_set, headline_probe, load_stream_probes, run_stream_probe, worm_ceiling,
    StreamBench, StreamScaleProbe,
};

/// Every regenerable experiment, by id.
pub fn experiment_ids() -> Vec<&'static str> {
    vec![
        "table5",
        "examples5",
        "fig2_3",
        "fig7_1",
        "fig7_2",
        "fig7_3",
        "fig7_4",
        "fig7_5",
        "fig7_6",
        "fig7_7",
        "fig7_8",
        "fig7_9",
        "fig7_10",
        "fig7_11",
        "modern_vs_1990",
        "fault_sweep",
        "ablation_exact",
        "ablation_labeling",
        "ablation_mixed",
        "ablation_switching",
        "ablation_throughput",
    ]
}

/// Runs one experiment by id at the given scale.
///
/// # Panics
/// Panics on an unknown id (see [`experiment_ids`]).
pub fn run_experiment(id: &str, scale: &Scale) -> Vec<Table> {
    match id {
        "table5" => vec![tables5::table_5_1_and_5_2(), tables5::table_5_3_and_5_4()],
        "examples5" => vec![tables5::worked_examples()],
        "fig2_3" => vec![figures_ch2::fig2_3()],
        "fig7_1" => vec![figures_static::fig7_1(scale)],
        "fig7_2" => vec![figures_static::fig7_2(scale)],
        "fig7_3" => vec![figures_static::fig7_3(scale)],
        "fig7_4" => vec![figures_static::fig7_4(scale)],
        "fig7_5" => vec![figures_static::fig7_5(scale)],
        "fig7_6" => vec![figures_static::fig7_6(scale)],
        "fig7_7" => vec![figures_static::fig7_7(scale)],
        "fig7_8" => vec![figures_dynamic::fig7_8(scale)],
        "fig7_9" => vec![figures_dynamic::fig7_9(scale)],
        "fig7_10" => vec![figures_dynamic::fig7_10(scale)],
        "fig7_11" => vec![figures_dynamic::fig7_11(scale)],
        "modern_vs_1990" => vec![modern::modern_vs_1990(scale)],
        "fault_sweep" => vec![figures_fault::fault_sweep(scale)],
        "ablation_exact" => vec![ablation::ablation_exact(scale)],
        "ablation_labeling" => vec![ablation::ablation_labeling(scale)],
        "ablation_mixed" => vec![ablation::ablation_mixed(scale)],
        "ablation_switching" => vec![ablation::ablation_switching(scale)],
        "ablation_throughput" => vec![ablation::ablation_throughput(scale)],
        other => panic!("unknown experiment id {other:?} (see experiment_ids())"),
    }
}
