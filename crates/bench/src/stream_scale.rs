//! The streaming scale block (BENCH_5): bounded-memory streaming runs
//! through [`run_dynamic_stream`] at growing topology sizes, written to
//! `results/BENCH_5.json` (schema `mcast-bench-perf-v5`).
//!
//! Two probe kinds share one schema:
//!
//! * **gated** probes — modest message counts CI regenerates on every
//!   push; their work metrics (`engine_steps`, `flit_hops`, `sim_ns`,
//!   `completed`) are environment-insensitive and must match the
//!   checked-in document **exactly** (the same discipline as
//!   BENCH_4.json's engine-scale gate). The 64×64 gated probe injects
//!   100 000 multicasts, so the gate doubles as the CI scale smoke.
//! * the **ungated** headline probe — the 64×64 mesh with ≥ 1 000 000
//!   injected multicasts, generated locally (too slow for every CI
//!   run); CI validates its schema and memory-gauge ceilings without
//!   re-running it.
//!
//! Every probe asserts the DESIGN.md §16 memory model through the
//! engine's own gauges: `peak_in_flight` never exceeds the backpressure
//! cap, and `peak_live_worms` never exceeds [`worm_ceiling`] — the
//! cap times the worms-per-plan bound of the probed scheme. Wall
//! clocks and `flits_per_sec` track the host and are report-only.

use std::io;
use std::path::Path;
use std::time::Instant;

use mcast_obs::validate_json;
use mcast_sim::registry::{build_router, SchemeId, TopoSpec};
use mcast_workload::{run_dynamic_stream, DynamicConfig, StreamConfig};

use crate::perf::{field_num, field_str};

/// One streaming scale probe: a message-bounded open-loop run with
/// backpressure, measured through the engine's native counters.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamScaleProbe {
    /// Probe topology (registry spec form, e.g. `mesh:64x64`).
    pub name: String,
    /// Nodes in the topology.
    pub nodes: usize,
    /// Multicasts injected (the run's bound).
    pub messages: u64,
    /// Backpressure ceiling on in-flight messages.
    pub max_in_flight: usize,
    /// Wall-clock of the run, milliseconds (report-only).
    pub wall_ms: f64,
    /// Flit hops per wall-clock second (report-only).
    pub flits_per_sec: f64,
    /// Event-loop steps — environment-insensitive, gated exactly for
    /// gated probes.
    pub engine_steps: u64,
    /// Flit hops — gated exactly for gated probes.
    pub flit_hops: u64,
    /// Simulated time covered, nanoseconds — gated exactly.
    pub sim_ns: u64,
    /// Messages completed (equals `messages` for a healthy run: the
    /// bounded run drains its tail) — gated exactly.
    pub completed: u64,
    /// High-water mark of live worm slots (the §16 memory gauge); must
    /// stay within [`worm_ceiling`] of `max_in_flight`.
    pub peak_live_worms: u64,
    /// High-water mark of in-flight messages; must stay within
    /// `max_in_flight`.
    pub peak_in_flight: u64,
    /// Whether CI regenerates this probe and gates its work metrics.
    pub gated: bool,
}

impl StreamScaleProbe {
    /// The environment-insensitive work metrics the CI gate compares
    /// exactly.
    pub fn work(&self) -> (u64, u64, u64, u64) {
        (
            self.engine_steps,
            self.flit_hops,
            self.sim_ns,
            self.completed,
        )
    }

    /// Whether the §16 memory gauges respect their hard ceilings.
    pub fn within_ceilings(&self) -> bool {
        self.peak_in_flight <= self.max_in_flight as u64
            && self.peak_live_worms <= worm_ceiling(self.max_in_flight) as u64
    }
}

/// Hard ceiling on live worm slots for a run capped at `max_in_flight`
/// messages: the probed dual-path scheme plans at most two path worms
/// per multicast, so live worms are bounded by twice the in-flight cap
/// regardless of how many messages the run injects.
pub fn worm_ceiling(max_in_flight: usize) -> usize {
    2 * max_in_flight
}

/// The gated probe set CI regenerates: `(topology, messages,
/// max_in_flight)`. The 64×64 entry injects 100 000 multicasts — the
/// CI scale smoke the streaming pipeline is gated on. The deep
/// hypercube (`cube:16`, 65 536 nodes) and the 16-ary 3-cube rungs
/// extend the ladder beyond meshes.
pub fn gated_probe_set() -> Vec<(&'static str, u64, usize)> {
    vec![
        ("mesh:8x8", 20_000, 1024),
        ("mesh:64x64", 100_000, 4096),
        ("mesh:128x128", 20_000, 4096),
        ("cube:4", 20_000, 1024),
        ("cube:16", 20_000, 4096),
        ("torus:16x3", 20_000, 1024),
    ]
}

/// The headline probe generated locally: `(topology, messages,
/// max_in_flight)` — the million-multicast 64×64 run of ROADMAP item 2.
pub fn headline_probe() -> (&'static str, u64, usize) {
    ("mesh:64x64", 1_000_000, 4096)
}

/// Statistics knobs shared by every probe (fixed, not scale-dependent:
/// the gated work metrics must reproduce bit-for-bit on any host).
fn probe_config(nodes: usize) -> DynamicConfig {
    DynamicConfig {
        mean_interarrival_ns: 400_000.0,
        destinations: 8.min(nodes - 1),
        ..DynamicConfig::default()
    }
}

/// Runs one streaming probe: dual-path on `name`, `messages` multicasts
/// under a `max_in_flight` backpressure cap, draining the tail.
///
/// # Panics
/// Panics if `name` does not parse as a registry topology.
pub fn run_stream_probe(
    name: &str,
    messages: u64,
    max_in_flight: usize,
    gated: bool,
) -> StreamScaleProbe {
    let topo = TopoSpec::parse(name).expect("stream probe topology parses");
    let router = build_router(&topo, &SchemeId::named("dual-path")).expect("dual-path registered");
    let built = topo.build();
    let cfg = probe_config(topo.num_nodes());
    let stream = StreamConfig {
        messages: Some(messages),
        duration_ns: None,
        max_in_flight,
    };
    let start = Instant::now();
    let r = run_dynamic_stream(built.as_dyn(), router.as_ref(), &cfg, &stream);
    let wall_s = start.elapsed().as_secs_f64();
    StreamScaleProbe {
        name: name.to_string(),
        nodes: topo.num_nodes(),
        messages,
        max_in_flight,
        wall_ms: wall_s * 1000.0,
        flits_per_sec: if wall_s > 0.0 {
            r.flit_hops as f64 / wall_s
        } else {
            0.0
        },
        engine_steps: r.engine_steps,
        flit_hops: r.flit_hops,
        sim_ns: r.sim_time_ns,
        completed: r.completed as u64,
        peak_live_worms: r.peak_live_worms as u64,
        peak_in_flight: r.peak_in_flight as u64,
        gated,
    }
}

/// Accumulates streaming probes and renders `BENCH_5.json`.
#[derive(Debug, Clone, Default)]
pub struct StreamBench {
    probes: Vec<StreamScaleProbe>,
}

impl StreamBench {
    /// Creates an empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a finished probe.
    pub fn push(&mut self, probe: StreamScaleProbe) {
        self.probes.push(probe);
    }

    /// Recorded probes.
    pub fn probes(&self) -> &[StreamScaleProbe] {
        &self.probes
    }

    /// Runs the whole gated set, recording each probe.
    pub fn run_gated_set(&mut self) -> &[StreamScaleProbe] {
        for (name, messages, cap) in gated_probe_set() {
            self.push(run_stream_probe(name, messages, cap, true));
        }
        &self.probes
    }

    /// Renders the `BENCH_5.json` document (always valid JSON).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"schema\": \"mcast-bench-perf-v5\",\n");
        s.push_str(
            "  \"complements\": \"BENCH_4.json — that document gates the space-parallel \
             engine; this one records the streaming injection pipeline's bounded-memory \
             scale block (DESIGN.md §16). Gated probes' work metrics are CI-gated exactly; \
             wall clocks and flits_per_sec are report-only\",\n",
        );
        let cpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        s.push_str(&format!("  \"host_cpus\": {cpus},\n"));
        s.push_str("  \"scale\": {\"probes\": [\n");
        for (i, p) in self.probes.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"nodes\": {}, \"messages\": {}, \
                 \"max_in_flight\": {}, \"wall_ms\": {:.3}, \"flits_per_sec\": {:.1}, \
                 \"engine_steps\": {}, \"flit_hops\": {}, \"sim_ns\": {}, \
                 \"completed\": {}, \"peak_live_worms\": {}, \"peak_in_flight\": {}, \
                 \"worm_ceiling\": {}, \"gated\": {}}}{}\n",
                p.name,
                p.nodes,
                p.messages,
                p.max_in_flight,
                p.wall_ms,
                p.flits_per_sec,
                p.engine_steps,
                p.flit_hops,
                p.sim_ns,
                p.completed,
                p.peak_live_worms,
                p.peak_in_flight,
                worm_ceiling(p.max_in_flight),
                p.gated,
                if i + 1 < self.probes.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]}\n}\n");
        debug_assert!(validate_json(&s).is_ok(), "BENCH_5.json must be valid");
        s
    }

    /// Writes `BENCH_5.json` into `dir` (created if needed).
    pub fn write_bench5(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join("BENCH_5.json"), self.to_json())
    }
}

/// Parses a `BENCH_5.json` document back into probes — dependency-free
/// line scanning in the style of
/// [`load_baseline_probes`](crate::perf::load_baseline_probes); returns
/// an empty list for a missing or foreign file.
pub fn load_stream_probes(path: &Path) -> Vec<StreamScaleProbe> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    if !text.contains("\"schema\": \"mcast-bench-perf-v5\"") {
        return Vec::new();
    }
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(name) = field_str(line, "\"name\": \"") else {
            continue;
        };
        let num = |key: &str| field_num(line, key).unwrap_or(0.0);
        out.push(StreamScaleProbe {
            name,
            nodes: num("\"nodes\": ") as usize,
            messages: num("\"messages\": ") as u64,
            max_in_flight: num("\"max_in_flight\": ") as usize,
            wall_ms: num("\"wall_ms\": "),
            flits_per_sec: num("\"flits_per_sec\": "),
            engine_steps: num("\"engine_steps\": ") as u64,
            flit_hops: num("\"flit_hops\": ") as u64,
            sim_ns: num("\"sim_ns\": ") as u64,
            completed: num("\"completed\": ") as u64,
            peak_live_worms: num("\"peak_live_worms\": ") as u64,
            peak_in_flight: num("\"peak_in_flight\": ") as u64,
            gated: line.contains("\"gated\": true"),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_completes_bounded_and_renders_valid_json() {
        let p = run_stream_probe("mesh:4x4", 300, 32, true);
        assert_eq!(p.completed, 300, "bounded run must drain its tail");
        assert!(p.within_ceilings(), "gauges breached ceilings: {p:?}");
        assert!(p.engine_steps > 0 && p.flit_hops > 0 && p.sim_ns > 0);
        let mut doc = StreamBench::new();
        doc.push(p);
        let json = doc.to_json();
        validate_json(&json).expect("BENCH_5.json parses");
        assert!(json.contains("\"schema\": \"mcast-bench-perf-v5\""));
        assert!(json.contains("\"scale\""));
        assert!(json.contains("\"peak_live_worms\""));
    }

    #[test]
    fn probes_round_trip_through_the_document() {
        let mut doc = StreamBench::new();
        doc.push(run_stream_probe("mesh:4x4", 200, 16, true));
        doc.push(run_stream_probe("cube:3", 150, 16, false));
        let dir = std::env::temp_dir().join("mcast_bench5_test");
        doc.write_bench5(&dir).unwrap();
        let back = load_stream_probes(&dir.join("BENCH_5.json"));
        assert_eq!(back.len(), 2);
        for (a, b) in doc.probes().iter().zip(&back) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.work(), b.work());
            assert_eq!(a.peak_live_worms, b.peak_live_worms);
            assert_eq!(a.peak_in_flight, b.peak_in_flight);
            assert_eq!(a.gated, b.gated);
        }
        assert!(load_stream_probes(Path::new("/nonexistent/x.json")).is_empty());
    }

    #[test]
    fn probe_work_metrics_reproduce_exactly() {
        // The premise of the CI gate: a probe's work metrics are a pure
        // function of the code, not the host.
        let a = run_stream_probe("mesh:4x4", 250, 24, true);
        let b = run_stream_probe("mesh:4x4", 250, 24, true);
        assert_eq!(a.work(), b.work());
        assert_eq!(a.peak_live_worms, b.peak_live_worms);
        assert_eq!(a.peak_in_flight, b.peak_in_flight);
    }

    #[test]
    fn gated_set_covers_the_scale_ladder_and_the_ci_smoke() {
        let set = gated_probe_set();
        let names: Vec<&str> = set.iter().map(|&(n, _, _)| n).collect();
        for required in [
            "mesh:8x8",
            "mesh:64x64",
            "mesh:128x128",
            "cube:4",
            "cube:16",
            "torus:16x3",
        ] {
            assert!(names.contains(&required), "missing {required}");
        }
        // The 64×64 gated probe *is* the CI scale smoke: ≥ 100k
        // multicasts under a hard live-worm ceiling.
        let (_, messages, cap) = set
            .iter()
            .find(|&&(n, _, _)| n == "mesh:64x64")
            .expect("64x64 probe");
        assert!(*messages >= 100_000);
        assert_eq!(worm_ceiling(*cap), 2 * cap);
        let (name, messages, _) = headline_probe();
        assert_eq!(name, "mesh:64x64");
        assert!(messages >= 1_000_000);
    }
}
