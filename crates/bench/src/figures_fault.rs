//! The fault-sweep experiment (DESIGN.md §8.4): delivery ratio,
//! latency and recovery effort versus link fault rate, contrasting the
//! fault-aware path planners with a fault-oblivious tree baseline.
//!
//! Not a dissertation figure — the paper evaluates healthy networks
//! only. This extends its Chapter 7 methodology to degraded networks:
//! the rate-0 column must reproduce the healthy numbers (the
//! fault-aware planners are bit-identical to the Chapter 6 planners
//! under an empty mask), and the fault-aware schemes must hold a 1.0
//! delivery ratio for as long as the survivors stay connected.

use mcast_sim::recovery::{FaultDualPathRouter, FaultMultiPathRouter, ObliviousRouter};
use mcast_sim::routers::XFirstTreeRouter;
use mcast_topology::Mesh2D;
use mcast_workload::fault_sweep::{run_fault_sweep, FaultSweepConfig, FaultSweepRow};

use crate::report::{f, Table};
use crate::scale::Scale;

/// Link fault rates swept (0 = healthy baseline).
const FAULT_RATES: [f64; 5] = [0.0, 0.02, 0.05, 0.10, 0.20];

fn latency_cell(row: &FaultSweepRow) -> String {
    if row.mean_latency_us.is_finite() {
        f(row.mean_latency_us, 1)
    } else {
        "n/a".to_string()
    }
}

/// Fault sweep on an 8×8 mesh: fault-aware dual-path and multi-path vs
/// the fault-oblivious X-first tree under abort-and-retry recovery.
pub fn fault_sweep(scale: &Scale) -> Table {
    let mesh = Mesh2D::new(8, 8);
    let cfg = FaultSweepConfig {
        fault_rates: FAULT_RATES.to_vec(),
        messages: scale.trials_heavy.max(16),
        ..FaultSweepConfig::default()
    };
    let dual = FaultDualPathRouter::mesh(mesh);
    let multi = FaultMultiPathRouter::mesh(mesh);
    let tree = ObliviousRouter::new(XFirstTreeRouter::new(mesh));

    let mut t = Table::new(
        "fault_sweep",
        "Delivery ratio & latency vs link fault rate, 8x8 mesh (recovery engine)",
        &[
            "algorithm",
            "fault rate",
            "failed links",
            "delivered",
            "ratio",
            "latency us",
            "aborts",
            "retries",
            "drops",
            "escapes",
        ],
    );
    let runs: [&dyn mcast_sim::recovery::FaultMulticastRouter; 3] = [&dual, &multi, &tree];
    let names = [
        "fault-dual-path",
        "fault-multi-path",
        "xfirst-tree (oblivious)",
    ];
    for (router, name) in runs.iter().zip(names) {
        for row in run_fault_sweep(&mesh, *router, &cfg) {
            t.push_row(vec![
                name.to_string(),
                f(row.fault_rate, 2),
                row.failed_links.to_string(),
                format!("{}/{}", row.destinations_delivered, row.destinations_total),
                f(row.delivery_ratio, 3),
                latency_cell(&row),
                row.aborts.to_string(),
                row.retries.to_string(),
                row.drops.to_string(),
                row.escapes.to_string(),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_sweep_smoke_covers_all_rates_and_schemes() {
        let t = fault_sweep(&Scale::smoke());
        assert_eq!(t.rows.len(), 3 * FAULT_RATES.len());
        // The healthy rows reproduce a perfect delivery ratio with zero
        // recovery actions for every scheme.
        for row in t.rows.iter().filter(|r| r[1] == "0.00") {
            assert_eq!(row[4], "1.000", "healthy delivery ratio ({})", row[0]);
            assert_eq!(row[6], "0", "no aborts on a healthy network ({})", row[0]);
        }
    }
}
