//! The fault-sweep experiment (DESIGN.md §8.4): delivery ratio,
//! latency and recovery effort versus link fault rate, contrasting the
//! fault-aware path planners with a fault-oblivious tree baseline.
//!
//! Not a dissertation figure — the paper evaluates healthy networks
//! only. This extends its Chapter 7 methodology to degraded networks:
//! the rate-0 column must reproduce the healthy numbers (the
//! fault-aware planners are bit-identical to the Chapter 6 planners
//! under an empty mask), and the fault-aware schemes must hold a 1.0
//! delivery ratio for as long as the survivors stay connected.

use mcast_sim::registry::{SchemeId, TopoSpec};
use mcast_workload::fault_sweep::{FaultSweepConfig, FaultSweepRow};
use mcast_workload::{ExperimentSpec, FaultSpec};

use crate::report::{f, Table};
use crate::scale::Scale;

/// Link fault rates swept (0 = healthy baseline).
const FAULT_RATES: [f64; 5] = [0.0, 0.02, 0.05, 0.10, 0.20];

fn latency_cell(row: &FaultSweepRow) -> String {
    if row.mean_latency_us.is_finite() {
        f(row.mean_latency_us, 1)
    } else {
        "n/a".to_string()
    }
}

/// Fault sweep on an 8×8 mesh: fault-aware dual-path and multi-path vs
/// the fault-oblivious X-first tree under abort-and-retry recovery —
/// one [`ExperimentSpec`] with a fault section, routers from the
/// registry (`dual-path`/`multi-path` resolve to the fault-aware
/// planners, `xfirst-tree` to the oblivious baseline).
pub fn fault_sweep(scale: &Scale) -> Table {
    let defaults = FaultSweepConfig::default();
    let mut spec = ExperimentSpec::new("fault_sweep", TopoSpec::Mesh2D { w: 8, h: 8 });
    spec.schemes = ["dual-path", "multi-path", "xfirst-tree"]
        .iter()
        .map(|s| SchemeId::named(s))
        .collect();
    spec.loads_us = vec![defaults.mean_interarrival_ns / 1000.0];
    spec.destinations = defaults.destinations;
    spec.seed = defaults.seed;
    spec.fault = Some(FaultSpec {
        rates: FAULT_RATES.to_vec(),
        messages: scale.trials_heavy.max(16),
        keep_connected: defaults.keep_connected,
    });

    let mut t = Table::new(
        "fault_sweep",
        "Delivery ratio & latency vs link fault rate, 8x8 mesh (recovery engine)",
        &[
            "algorithm",
            "fault rate",
            "failed links",
            "delivered",
            "ratio",
            "latency us",
            "aborts",
            "retries",
            "drops",
            "escapes",
        ],
    );
    let rows = spec.run_fault_sweep().expect("fault spec resolves");
    let labels = [
        "fault-dual-path",
        "fault-multi-path",
        "xfirst-tree (oblivious)",
    ];
    for (i, row) in rows.iter().enumerate() {
        t.push_row(vec![
            labels[i / FAULT_RATES.len()].to_string(),
            f(row.fault_rate, 2),
            row.failed_links.to_string(),
            format!("{}/{}", row.destinations_delivered, row.destinations_total),
            f(row.delivery_ratio, 3),
            latency_cell(row),
            row.aborts.to_string(),
            row.retries.to_string(),
            row.drops.to_string(),
            row.escapes.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_sweep_smoke_covers_all_rates_and_schemes() {
        let t = fault_sweep(&Scale::smoke());
        assert_eq!(t.rows.len(), 3 * FAULT_RATES.len());
        // The healthy rows reproduce a perfect delivery ratio with zero
        // recovery actions for every scheme.
        for row in t.rows.iter().filter(|r| r[1] == "0.00") {
            assert_eq!(row[4], "1.000", "healthy delivery ratio ({})", row[0]);
            assert_eq!(row[6], "0", "no aborts on a healthy network ({})", row[0]);
        }
    }
}
