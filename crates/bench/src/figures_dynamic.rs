//! Regeneration of the dynamic (contention) figures of §7.2
//! (Figs 7.8–7.11): average network latency under Poisson multicast
//! traffic on an 8×8 mesh, measured by the flit-level wormhole engine
//! with the §7.2 parameters (128-byte messages, 20 Mbyte/s channels).

use mcast_sim::routers::{
    DoubleChannelTreeRouter, DualPathRouter, FixedPathRouter, MultiPathMeshRouter, MulticastRouter,
};
use mcast_topology::Mesh2D;
use mcast_workload::dynamic::run_dynamic;

use crate::report::{f, Table};
use crate::scale::Scale;

/// Loads for the latency-vs-load sweeps: mean interarrival per node (µs).
/// Lower = heavier; the heaviest points push the tree scheme into
/// saturation first (§7.2's observation).
const LOAD_SWEEP_US: [f64; 11] = [
    2000.0, 1200.0, 800.0, 600.0, 450.0, 350.0, 280.0, 220.0, 180.0, 150.0, 120.0,
];

/// Destination counts for the latency-vs-k sweeps (Fig 7.9 sweeps 1–45).
const K_SWEEP: [usize; 7] = [1, 5, 10, 15, 25, 35, 45];

fn latency_cell(r: &mcast_workload::DynamicResult) -> String {
    if r.saturated {
        "sat".to_string()
    } else {
        f(r.mean_latency_us, 1)
    }
}

/// Fig 7.8: latency vs load on a *double-channel* 8×8 mesh — the
/// tree-like scheme vs dual-path vs multi-path, k̄ = 10.
///
/// The tree scheme appears twice: under strict lock-step wormhole
/// replication (single-flit buffers — it wedges beyond light load, see
/// EXPERIMENTS.md "lock-step finding") and with virtual-cut-through
/// replication buffers at branch nodes (one message worth — the model
/// implied by the dissertation's own VLSI-router reference [21], which
/// degrades gracefully like the paper's plotted curve).
pub fn fig7_8(scale: &Scale) -> Table {
    let mesh = Mesh2D::new(8, 8);
    let mut t = Table::new(
        "fig7_8",
        "Latency vs load, double-channel 8x8 mesh, k=10 (Fig 7.8) [us]",
        &[
            "interarrival us",
            "tree lockstep",
            "tree vct-buf",
            "dual-path",
            "multi-path",
        ],
    );
    let tree = DoubleChannelTreeRouter::new(mesh);
    let dual = DualPathRouter::mesh(mesh);
    let multi = MultiPathMeshRouter::new(mesh);
    for &load in &LOAD_SWEEP_US {
        let mut cfg = scale.dynamic_config();
        cfg.mean_interarrival_ns = load * 1000.0;
        cfg.destinations = 10;
        let mut vct = cfg.clone();
        vct.sim.buffer_flits = vct.sim.flits_per_message();
        let mut row = vec![f(load, 0)];
        row.push(latency_cell(&run_on_double_channels(&mesh, &tree, &cfg)));
        row.push(latency_cell(&run_on_double_channels(&mesh, &tree, &vct)));
        // Fig 7.8's premise: everything runs on double channels so the
        // comparison is fair.
        row.push(latency_cell(&run_on_double_channels(&mesh, &dual, &cfg)));
        row.push(latency_cell(&run_on_double_channels(&mesh, &multi, &cfg)));
        t.push_row(row);
    }
    t
}

/// Fig 7.9: latency vs destination-set size on the double-channel mesh,
/// interarrival 300 µs.
pub fn fig7_9(scale: &Scale) -> Table {
    let mesh = Mesh2D::new(8, 8);
    let mut t = Table::new(
        "fig7_9",
        "Latency vs destinations, double-channel 8x8 mesh, 300us interarrival (Fig 7.9) [us]",
        &[
            "k",
            "tree lockstep",
            "tree vct-buf",
            "dual-path",
            "multi-path",
        ],
    );
    let tree = DoubleChannelTreeRouter::new(mesh);
    let dual = DualPathRouter::mesh(mesh);
    let multi = MultiPathMeshRouter::new(mesh);
    for &k in &K_SWEEP {
        let mut cfg = scale.dynamic_config();
        cfg.mean_interarrival_ns = 300_000.0;
        cfg.destinations = k;
        let mut vct = cfg.clone();
        vct.sim.buffer_flits = vct.sim.flits_per_message();
        let mut row = vec![k.to_string()];
        row.push(latency_cell(&run_on_double_channels(&mesh, &tree, &cfg)));
        row.push(latency_cell(&run_on_double_channels(&mesh, &tree, &vct)));
        row.push(latency_cell(&run_on_double_channels(&mesh, &dual, &cfg)));
        row.push(latency_cell(&run_on_double_channels(&mesh, &multi, &cfg)));
        t.push_row(row);
    }
    t
}

/// Fig 7.10: latency vs load on a *single-channel* 8×8 mesh — dual-path
/// vs multi-path, k̄ = 10.
pub fn fig7_10(scale: &Scale) -> Table {
    let mesh = Mesh2D::new(8, 8);
    let mut t = Table::new(
        "fig7_10",
        "Latency vs load, single-channel 8x8 mesh, k=10 (Fig 7.10) [us]",
        &["interarrival us", "dual-path", "multi-path"],
    );
    let routers: Vec<Box<dyn MulticastRouter>> = vec![
        Box::new(DualPathRouter::mesh(mesh)),
        Box::new(MultiPathMeshRouter::new(mesh)),
    ];
    for &load in &LOAD_SWEEP_US {
        let mut row = vec![f(load, 0)];
        for r in &routers {
            let mut cfg = scale.dynamic_config();
            cfg.mean_interarrival_ns = load * 1000.0;
            cfg.destinations = 10;
            let result = run_dynamic(&mesh, r.as_ref(), &cfg);
            row.push(latency_cell(&result));
        }
        t.push_row(row);
    }
    t
}

/// Fig 7.11: latency vs destination-set size under relatively high load,
/// single channels — dual-path vs multi-path vs fixed-path (the
/// multi-path hot-spot experiment).
pub fn fig7_11(scale: &Scale) -> Table {
    let mesh = Mesh2D::new(8, 8);
    let mut t = Table::new(
        "fig7_11",
        "Latency vs destinations under load, single-channel 8x8 mesh (Fig 7.11) [us]",
        &["k", "dual-path", "multi-path", "fixed-path"],
    );
    let routers: Vec<Box<dyn MulticastRouter>> = vec![
        Box::new(DualPathRouter::mesh(mesh)),
        Box::new(MultiPathMeshRouter::new(mesh)),
        Box::new(FixedPathRouter::mesh(mesh)),
    ];
    for &k in &K_SWEEP {
        let mut row = vec![k.to_string()];
        for r in &routers {
            let mut cfg = scale.dynamic_config();
            // "Relatively high" load: messages every 600 µs per node keeps
            // dual/fixed below saturation at large k while exposing the
            // multi-path hot spots.
            cfg.mean_interarrival_ns = 600_000.0;
            cfg.destinations = k;
            let result = run_dynamic(&mesh, r.as_ref(), &cfg);
            row.push(latency_cell(&result));
        }
        t.push_row(row);
    }
    t
}

/// Runs a router on an explicitly double-channel network, regardless of
/// what it requires (Fig 7.8/7.9's level playing field).
fn run_on_double_channels(
    mesh: &Mesh2D,
    router: &dyn MulticastRouter,
    cfg: &mcast_workload::DynamicConfig,
) -> mcast_workload::DynamicResult {
    // `run_dynamic` builds `required_classes()` channels; path routers
    // declare 1 but must get 2 here. A thin adapter bumps the class count.
    struct DoubleClasses<'a>(&'a dyn MulticastRouter);
    impl MulticastRouter for DoubleClasses<'_> {
        fn name(&self) -> &'static str {
            self.0.name()
        }
        fn required_classes(&self) -> u8 {
            2
        }
        fn plan(&self, mc: &mcast_core::model::MulticastSet) -> mcast_sim::DeliveryPlan {
            self.0.plan(mc)
        }
    }
    run_dynamic(mesh, &DoubleClasses(router), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_8_smoke_runs_and_orders_low_load() {
        let t = fig7_8(&Scale::smoke());
        assert_eq!(t.rows.len(), LOAD_SWEEP_US.len());
        // At the lightest load nothing saturates.
        for cell in &t.rows[0][1..] {
            assert_ne!(cell, "sat", "lightest load must not saturate");
            let v: f64 = cell.parse().unwrap();
            assert!(v > 0.0 && v < 1000.0, "latency {v}");
        }
    }

    #[test]
    fn fig7_10_smoke_runs() {
        let t = fig7_10(&Scale::smoke());
        assert_eq!(t.rows.len(), LOAD_SWEEP_US.len());
    }

    #[test]
    fn fig7_9_and_7_11_smoke_run() {
        let t9 = fig7_9(&Scale::smoke());
        assert_eq!(t9.rows.len(), K_SWEEP.len());
        let t11 = fig7_11(&Scale::smoke());
        assert_eq!(t11.rows.len(), K_SWEEP.len());
    }
}
