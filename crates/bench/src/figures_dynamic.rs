//! Regeneration of the dynamic (contention) figures of §7.2
//! (Figs 7.8–7.11): average network latency under Poisson multicast
//! traffic on an 8×8 mesh, measured by the flit-level wormhole engine
//! with the §7.2 parameters (128-byte messages, 20 Mbyte/s channels).
//!
//! Each figure is expressed as an [`ExperimentSpec`] — the registry
//! resolves the routers and the spec carries the load grid, destination
//! count, stopping rule and channel-class override, so a figure is one
//! declarative object plus table formatting.

use mcast_sim::registry::{SchemeId, TopoSpec};
use mcast_workload::dynamic::run_dynamic;
use mcast_workload::{DynamicConfig, DynamicResult, ExperimentSpec};

use crate::report::{f, Table};
use crate::scale::Scale;

/// The §7.2 evaluation network.
const MESH8: TopoSpec = TopoSpec::Mesh2D { w: 8, h: 8 };

/// Loads for the latency-vs-load sweeps: mean interarrival per node (µs).
/// Lower = heavier; the heaviest points push the tree scheme into
/// saturation first (§7.2's observation).
const LOAD_SWEEP_US: [f64; 11] = [
    2000.0, 1200.0, 800.0, 600.0, 450.0, 350.0, 280.0, 220.0, 180.0, 150.0, 120.0,
];

/// Destination counts for the latency-vs-k sweeps (Fig 7.9 sweeps 1–45).
const K_SWEEP: [usize; 7] = [1, 5, 10, 15, 25, 35, 45];

fn latency_cell(r: &DynamicResult) -> String {
    if r.saturated {
        "sat".to_string()
    } else {
        f(r.mean_latency_us, 1)
    }
}

/// The spec behind one figure: 8×8 mesh, the named schemes, a load
/// grid, one replication per cell at the harness's base seed.
fn figure_spec(
    name: &str,
    scale: &Scale,
    schemes: &[&str],
    loads_us: &[f64],
    destinations: usize,
) -> ExperimentSpec {
    let mut spec = ExperimentSpec::new(name, MESH8);
    spec.schemes = schemes.iter().map(|s| SchemeId::named(s)).collect();
    spec.loads_us = loads_us.to_vec();
    spec.destinations = destinations;
    spec.replications = 1;
    spec.stopping = scale.stopping_rule();
    spec.seed = DynamicConfig::default().seed;
    spec
}

/// Runs every (load, scheme) cell of a spec at the base seed, returning
/// `cells[load][scheme]` — single-replication figure cells, not the
/// replicated CI sweep grid.
fn run_cells(spec: &ExperimentSpec) -> Vec<Vec<DynamicResult>> {
    let routers = spec.build_routers().expect("figure spec resolves");
    let built = spec.topology.build();
    spec.loads_us
        .iter()
        .map(|&load_us| {
            routers
                .iter()
                .map(|(_, router)| {
                    let mut cfg = spec.base_config();
                    cfg.mean_interarrival_ns = load_us * 1000.0;
                    run_dynamic(built.as_dyn(), router.as_ref(), &cfg)
                })
                .collect()
        })
        .collect()
}

/// Fig 7.8: latency vs load on a *double-channel* 8×8 mesh — the
/// tree-like scheme vs dual-path vs multi-path, k̄ = 10.
///
/// The tree scheme appears twice: under strict lock-step wormhole
/// replication (single-flit buffers — it wedges beyond light load, see
/// EXPERIMENTS.md "lock-step finding") and with virtual-cut-through
/// replication buffers at branch nodes (one message worth — the model
/// implied by the dissertation's own VLSI-router reference [21], which
/// degrades gracefully like the paper's plotted curve).
pub fn fig7_8(scale: &Scale) -> Table {
    let mut t = Table::new(
        "fig7_8",
        "Latency vs load, double-channel 8x8 mesh, k=10 (Fig 7.8) [us]",
        &[
            "interarrival us",
            "tree lockstep",
            "tree vct-buf",
            "dual-path",
            "multi-path",
        ],
    );
    // Fig 7.8's premise: everything runs on double channels so the
    // comparison is fair.
    let mut spec = figure_spec(
        "fig7_8",
        scale,
        &["dc-tree", "dual-path", "multi-path"],
        &LOAD_SWEEP_US,
        10,
    );
    spec.channel_classes = Some(2);
    let mut vct = spec.clone();
    vct.schemes = vec![SchemeId::named("dc-tree")];
    vct.vct_buffers = true;
    let cells = run_cells(&spec);
    let vct_cells = run_cells(&vct);
    for (i, &load) in LOAD_SWEEP_US.iter().enumerate() {
        t.push_row(vec![
            f(load, 0),
            latency_cell(&cells[i][0]),
            latency_cell(&vct_cells[i][0]),
            latency_cell(&cells[i][1]),
            latency_cell(&cells[i][2]),
        ]);
    }
    t
}

/// Fig 7.9: latency vs destination-set size on the double-channel mesh,
/// interarrival 300 µs.
pub fn fig7_9(scale: &Scale) -> Table {
    let mut t = Table::new(
        "fig7_9",
        "Latency vs destinations, double-channel 8x8 mesh, 300us interarrival (Fig 7.9) [us]",
        &[
            "k",
            "tree lockstep",
            "tree vct-buf",
            "dual-path",
            "multi-path",
        ],
    );
    for &k in &K_SWEEP {
        let mut spec = figure_spec(
            "fig7_9",
            scale,
            &["dc-tree", "dual-path", "multi-path"],
            &[300.0],
            k,
        );
        spec.channel_classes = Some(2);
        let mut vct = spec.clone();
        vct.schemes = vec![SchemeId::named("dc-tree")];
        vct.vct_buffers = true;
        let cells = run_cells(&spec);
        let vct_cells = run_cells(&vct);
        t.push_row(vec![
            k.to_string(),
            latency_cell(&cells[0][0]),
            latency_cell(&vct_cells[0][0]),
            latency_cell(&cells[0][1]),
            latency_cell(&cells[0][2]),
        ]);
    }
    t
}

/// Fig 7.10: latency vs load on a *single-channel* 8×8 mesh — dual-path
/// vs multi-path, k̄ = 10.
pub fn fig7_10(scale: &Scale) -> Table {
    let mut t = Table::new(
        "fig7_10",
        "Latency vs load, single-channel 8x8 mesh, k=10 (Fig 7.10) [us]",
        &["interarrival us", "dual-path", "multi-path"],
    );
    let spec = figure_spec(
        "fig7_10",
        scale,
        &["dual-path", "multi-path"],
        &LOAD_SWEEP_US,
        10,
    );
    for (i, row) in run_cells(&spec).iter().enumerate() {
        let mut cells = vec![f(LOAD_SWEEP_US[i], 0)];
        cells.extend(row.iter().map(latency_cell));
        t.push_row(cells);
    }
    t
}

/// Fig 7.11: latency vs destination-set size under relatively high load,
/// single channels — dual-path vs multi-path vs fixed-path (the
/// multi-path hot-spot experiment).
pub fn fig7_11(scale: &Scale) -> Table {
    let mut t = Table::new(
        "fig7_11",
        "Latency vs destinations under load, single-channel 8x8 mesh (Fig 7.11) [us]",
        &["k", "dual-path", "multi-path", "fixed-path"],
    );
    for &k in &K_SWEEP {
        // "Relatively high" load: messages every 600 µs per node keeps
        // dual/fixed below saturation at large k while exposing the
        // multi-path hot spots.
        let spec = figure_spec(
            "fig7_11",
            scale,
            &["dual-path", "multi-path", "fixed-path"],
            &[600.0],
            k,
        );
        let cells = run_cells(&spec);
        let mut row = vec![k.to_string()];
        row.extend(cells[0].iter().map(latency_cell));
        t.push_row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_8_smoke_runs_and_orders_low_load() {
        let t = fig7_8(&Scale::smoke());
        assert_eq!(t.rows.len(), LOAD_SWEEP_US.len());
        // At the lightest load nothing saturates.
        for cell in &t.rows[0][1..] {
            assert_ne!(cell, "sat", "lightest load must not saturate");
            let v: f64 = cell.parse().unwrap();
            assert!(v > 0.0 && v < 1000.0, "latency {v}");
        }
    }

    #[test]
    fn fig7_10_smoke_runs() {
        let t = fig7_10(&Scale::smoke());
        assert_eq!(t.rows.len(), LOAD_SWEEP_US.len());
    }

    #[test]
    fn fig7_9_and_7_11_smoke_run() {
        let t9 = fig7_9(&Scale::smoke());
        assert_eq!(t9.rows.len(), K_SWEEP.len());
        let t11 = fig7_11(&Scale::smoke());
        assert_eq!(t11.rows.len(), K_SWEEP.len());
    }
}
