//! Ablations for the design choices DESIGN.md calls out:
//!
//! * heuristic-vs-optimal gaps on small instances (Chapter 4 motivates
//!   the heuristics by NP-completeness; these tables quantify what the
//!   heuristics give up);
//! * the Hamiltonian-path choice behind the labeling (§6.2.2's Fig 6.10
//!   discussion: a bad Hamiltonian path forces non-shortest routes).

use mcast_core::exact;
use mcast_topology::hamiltonian::mesh2d_cycle;
use mcast_topology::labeling::{mesh2d_column_snake, mesh2d_snake};
use mcast_topology::{Mesh2D, Topology};
use mcast_workload::MulticastGen;

use crate::report::{f, Table};
use crate::scale::Scale;

/// Heuristic vs optimal: sorted MP vs OMP, greedy ST vs MST, dual-path
/// vs OMS, on a 4×4 mesh with small destination sets.
pub fn ablation_exact(scale: &Scale) -> Table {
    let m = Mesh2D::new(4, 4);
    let c = mesh2d_cycle(&m);
    let l = mesh2d_snake(&m);
    let trials = scale.trials_heavy.clamp(3, 40);
    let mut t = Table::new(
        "ablation_exact",
        "Heuristic vs optimal on a 4x4 mesh (mean traffic over random sets)",
        &[
            "k",
            "sorted MP",
            "OMP*",
            "greedy ST",
            "MST*",
            "dual-path",
            "OMS*",
        ],
    );
    for k in [2usize, 3, 4] {
        let mut gen = MulticastGen::new(m.num_nodes(), 0xab1e + k as u64);
        let (mut mp, mut omp, mut st, mut mst, mut dual, mut oms) =
            (0.0f64, 0.0f64, 0.0f64, 0.0f64, 0.0f64, 0.0f64);
        let mut n = 0usize;
        for _ in 0..trials {
            let src = gen.source();
            let mc = gen.multicast_distinct(src, k);
            n += 1;
            mp += mcast_core::sorted_mp::sorted_mp(&m, &c, &mc).len() as f64;
            omp += exact::optimal_mp(&m, &mc).expect("connected").0 as f64;
            st += mcast_core::greedy_st::greedy_st(&m, &mc).traffic(&m) as f64;
            mst += exact::optimal_steiner_cost(&m, &mc) as f64;
            dual += mcast_core::dual_path::dual_path(&m, &l, &mc)
                .iter()
                .map(|p| p.len())
                .sum::<usize>() as f64;
            oms += exact::optimal_ms_cost(&m, &mc) as f64;
        }
        let d = n as f64;
        t.push_row(vec![
            k.to_string(),
            f(mp / d, 2),
            f(omp / d, 2),
            f(st / d, 2),
            f(mst / d, 2),
            f(dual / d, 2),
            f(oms / d, 2),
        ]);
    }
    t
}

/// Labeling ablation: dual-path traffic under the dissertation's row
/// snake vs the column-snake alternative of Fig 6.10, on a 6×6 mesh.
pub fn ablation_labeling(scale: &Scale) -> Table {
    let m = Mesh2D::new(6, 6);
    let row_snake = mesh2d_snake(&m);
    let col_snake = mesh2d_column_snake(&m);
    let trials = scale.trials.min(500);
    let mut t = Table::new(
        "ablation_labeling",
        "Dual-path mean traffic under different Hamiltonian labelings, 6x6 mesh",
        &["k", "row snake", "column snake"],
    );
    for k in [3usize, 6, 10, 15] {
        let mut gen = MulticastGen::new(m.num_nodes(), 0x1ab0 + k as u64);
        let (mut a, mut b) = (0.0f64, 0.0f64);
        for _ in 0..trials {
            let src = gen.source();
            let mc = gen.multicast_distinct(src, k);
            a += mcast_core::dual_path::dual_path(&m, &row_snake, &mc)
                .iter()
                .map(|p| p.len())
                .sum::<usize>() as f64;
            b += mcast_core::dual_path::dual_path(&m, &col_snake, &mc)
                .iter()
                .map(|p| p.len())
                .sum::<usize>() as f64;
        }
        t.push_row(vec![
            k.to_string(),
            f(a / trials as f64, 2),
            f(b / trials as f64, 2),
        ]);
    }
    t
}

/// Switching-technology ablation under contention: the same dual-path
/// routes carried by wormhole vs circuit switching on an 8×8 mesh, k=10,
/// across a load sweep. Contention-free both are close (Fig 2.3); under
/// load circuit switching pays for holding its whole circuit through the
/// per-hop establishment phase.
pub fn ablation_switching(scale: &Scale) -> Table {
    use mcast_sim::registry::{build_router, SchemeId, TopoSpec};
    use mcast_workload::run_dynamic;

    let topo = TopoSpec::Mesh2D { w: 8, h: 8 };
    let built = topo.build();
    let worm = build_router(&topo, &SchemeId::named("dual-path")).expect("registered");
    let circuit = build_router(&topo, &SchemeId::named("circuit-dual-path")).expect("registered");
    let mut t = Table::new(
        "ablation_switching",
        "Dual-path via wormhole vs circuit switching, 8x8 mesh, k=10 [us]",
        &["interarrival us", "wormhole", "circuit"],
    );
    for load_us in [2000.0, 1000.0, 600.0, 400.0, 300.0] {
        let mut cfg = scale.dynamic_config();
        cfg.mean_interarrival_ns = load_us * 1000.0;
        cfg.destinations = 10;
        let rw = run_dynamic(built.as_dyn(), worm.as_ref(), &cfg);
        let rc = run_dynamic(built.as_dyn(), circuit.as_ref(), &cfg);
        let cell = |r: &mcast_workload::DynamicResult| {
            if r.saturated {
                "sat".to_string()
            } else {
                f(r.mean_latency_us, 1)
            }
        };
        t.push_row(vec![f(load_us, 0), cell(&rw), cell(&rc)]);
    }
    t
}

/// Unicast/multicast interaction (§8.2: "study the interaction between
/// unicast and multicast traffic"): dual-path multicasts (k = 10, one per
/// 600 µs per node) share an 8×8 mesh with a sweep of unicast background
/// traffic; both populations' latencies are reported.
///
/// Unicasts are routed with the *same* label-monotone routing function as
/// the multicasts (a unicast is a k = 1 multicast). Mixing XY-routed
/// unicasts with dual-path multicasts instead deadlocks — their combined
/// channel dependency graph is cyclic — which the
/// `mixing_xy_unicast_with_dual_path_deadlocks` integration test pins
/// down; a real system must route both kinds through one deadlock-free
/// discipline.
pub fn ablation_mixed(scale: &Scale) -> Table {
    use mcast_core::model::MulticastSet;
    use mcast_sim::engine::Engine;
    use mcast_sim::network::Network;
    use mcast_sim::routers::{DualPathRouter, MulticastRouter};
    use mcast_topology::Mesh2D;
    use mcast_workload::{Accumulator, MulticastGen};

    let mesh = Mesh2D::new(8, 8);
    let router = DualPathRouter::mesh(mesh);
    let mut t = Table::new(
        "ablation_mixed",
        "Unicast/multicast interaction on an 8x8 mesh (dual-path, k=10) [us]",
        &[
            "unicast interarrival us",
            "multicast latency",
            "unicast latency",
        ],
    );
    let measured_target = (scale.batch_size * scale.min_batches).max(100);
    for unicast_us in [f64::INFINITY, 800.0, 400.0, 200.0, 100.0] {
        let mut engine = Engine::new(Network::new(&mesh, 1), scale.dynamic_config().sim);
        let mut gen = MulticastGen::new(mesh.num_nodes(), 0x31ed);
        let n = mesh.num_nodes();
        // Per-node generator clocks: multicast and unicast streams.
        let mut next_mc: Vec<u64> = (0..n).map(|_| gen.exponential_ns(600_000.0)).collect();
        let mut next_uc: Vec<u64> = (0..n)
            .map(|_| {
                if unicast_us.is_finite() {
                    gen.exponential_ns(unicast_us * 1000.0)
                } else {
                    u64::MAX
                }
            })
            .collect();
        let mut mc_ids = std::collections::BTreeSet::new();
        let mut mc_lat = Accumulator::new();
        let mut uc_lat = Accumulator::new();
        let mut measured = 0usize;
        while measured < measured_target {
            let (tmc, nmc) = next_mc
                .iter()
                .enumerate()
                .map(|(i, &t)| (t, i))
                .min()
                .expect("nodes");
            let (tuc, nuc) = next_uc
                .iter()
                .enumerate()
                .map(|(i, &t)| (t, i))
                .min()
                .expect("nodes");
            if tmc <= tuc {
                engine.run_until(tmc);
                let mc = gen.multicast_distinct(nmc, 10);
                let id = engine.inject(&router.plan(&mc));
                mc_ids.insert(id);
                next_mc[nmc] = tmc + gen.exponential_ns(600_000.0);
            } else {
                engine.run_until(tuc);
                let mut dest = gen.source();
                while dest == nuc {
                    dest = gen.source();
                }
                // Unicast = k-of-1 multicast through the same deadlock-free
                // routing function.
                let plan = router.plan(&MulticastSet::new(nuc, [dest]));
                engine.inject(&plan);
                next_uc[nuc] = tuc + gen.exponential_ns(unicast_us * 1000.0);
            }
            for done in engine.take_completed() {
                let lat = (done.completed_at - done.injected_at) as f64 / 1000.0;
                if mc_ids.remove(&done.id) {
                    mc_lat.push(lat);
                    measured += 1;
                } else {
                    uc_lat.push(lat);
                }
            }
            if engine.in_flight() > 16 * n {
                break; // saturated
            }
        }
        let label = if unicast_us.is_finite() {
            f(unicast_us, 0)
        } else {
            "none".to_string()
        };
        let cell = |a: &Accumulator| {
            if a.count() == 0 {
                "-".to_string()
            } else if measured < measured_target {
                "sat".to_string()
            } else {
                f(a.mean(), 1)
            }
        };
        t.push_row(vec![label, cell(&mc_lat), cell(&uc_lat)]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_traffic_unicast_background_raises_multicast_latency() {
        let t = ablation_mixed(&Scale::smoke());
        assert_eq!(t.rows.len(), 5);
        let base: f64 = t.rows[0][1].parse().unwrap();
        // The heaviest background either saturates or clearly hurts.
        let heavy = &t.rows[4][1];
        if heavy != "sat" {
            let h: f64 = heavy.parse().unwrap();
            assert!(h > base, "heavy background {h} !> baseline {base}");
        }
    }

    #[test]
    fn heuristics_never_beat_optimal() {
        let t = ablation_exact(&Scale::smoke());
        for row in &t.rows {
            let mp: f64 = row[1].parse().unwrap();
            let omp: f64 = row[2].parse().unwrap();
            let st: f64 = row[3].parse().unwrap();
            let mst: f64 = row[4].parse().unwrap();
            let dual: f64 = row[5].parse().unwrap();
            let oms: f64 = row[6].parse().unwrap();
            assert!(omp <= mp + 1e-9);
            assert!(mst <= st + 1e-9);
            assert!(oms <= dual + 1e-9);
            // And the model hierarchy: a Steiner tree never needs more
            // channels than an optimal single path.
            assert!(mst <= omp + 1e-9);
        }
    }

    #[test]
    fn labeling_ablation_runs() {
        let t = ablation_labeling(&Scale::smoke());
        assert_eq!(t.rows.len(), 4);
    }
}

#[cfg(test)]
mod switching_tests {
    use super::*;

    #[test]
    fn circuit_switching_never_beats_wormhole_under_load() {
        let t = ablation_switching(&Scale::smoke());
        assert_eq!(t.rows.len(), 5);
        for row in &t.rows {
            if row[1] == "sat" || row[2] == "sat" {
                continue;
            }
            let w: f64 = row[1].parse().unwrap();
            let c: f64 = row[2].parse().unwrap();
            assert!(c >= w * 0.95, "circuit {c} unexpectedly beats wormhole {w}");
        }
    }
}

/// Saturation-throughput ablation (§2.1's throughput criterion): the
/// sustained completion rate of each deadlock-free scheme under a
/// closed-loop offered load (64 messages always in flight, k = 10, 8×8
/// mesh, single channels except the dc-tree which gets its two classes
/// and VCT replication buffers).
pub fn ablation_throughput(scale: &Scale) -> Table {
    use mcast_sim::engine::SimConfig;
    use mcast_sim::registry::{build_router, SchemeId, TopoSpec};
    use mcast_workload::measure_saturation_throughput;

    let topo = TopoSpec::Mesh2D { w: 8, h: 8 };
    let built = topo.build();
    let measure = (scale.batch_size * scale.min_batches).clamp(100, 2000);
    let mut t = Table::new(
        "ablation_throughput",
        "Closed-loop saturation throughput, 8x8 mesh, k=10, 64 in flight",
        &["scheme", "msgs/ms", "mean latency us"],
    );
    let vct = {
        let mut c = SimConfig::default();
        c.buffer_flits = c.flits_per_message(); // VCT replication buffers
        c
    };
    let runs = [
        ("dual-path", SimConfig::default()),
        ("multi-path", SimConfig::default()),
        ("fixed-path", SimConfig::default()),
        ("dc-tree", vct),
    ];
    for (scheme, sim) in &runs {
        let router = build_router(&topo, &SchemeId::named(scheme)).expect("registered");
        let r = measure_saturation_throughput(
            built.as_dyn(),
            router.as_ref(),
            10,
            64,
            measure,
            *sim,
            5,
        );
        t.push_row(vec![
            router.name().to_string(),
            f(r.messages_per_ms, 2),
            f(r.mean_latency_us, 1),
        ]);
    }
    t
}

#[cfg(test)]
mod throughput_ablation_tests {
    use super::*;

    #[test]
    fn throughput_table_is_complete_and_positive() {
        let t = ablation_throughput(&Scale::smoke());
        assert_eq!(t.rows.len(), 4);
        for row in &t.rows {
            let rate: f64 = row[1].parse().unwrap();
            assert!(rate > 0.0, "{} has zero throughput", row[0]);
        }
    }
}
