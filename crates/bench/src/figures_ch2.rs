//! Fig 2.3's switching-technology comparison: network latency vs
//! distance for store-and-forward, virtual cut-through, circuit
//! switching, and wormhole routing in a contention-free network — the
//! §2.2 closed forms, cross-checked against the flit-level engine for
//! the wormhole column.

use mcast_sim::engine::{Engine, SimConfig};
use mcast_sim::network::Network;
use mcast_sim::plan::{ClassChoice, DeliveryPlan, PlanPath, PlanWorm};
use mcast_sim::switching::{Switching, SwitchingParams};
use mcast_topology::Mesh2D;

use crate::report::{f, Table};

/// Regenerates the Fig 2.3 comparison (latencies in µs).
pub fn fig2_3() -> Table {
    let p = SwitchingParams::default();
    let mut t = Table::new(
        "fig2_3",
        "Switching technologies: contention-free latency vs distance (Fig 2.3) [us]",
        &[
            "distance",
            "store-and-forward",
            "virtual cut-through",
            "circuit switching",
            "wormhole",
            "wormhole (simulated)",
        ],
    );
    // A long path in a 31×2 mesh provides the distances.
    let mesh = Mesh2D::new(31, 2);
    for d in [1usize, 2, 4, 8, 12, 16, 20, 25, 30] {
        let mut row = vec![d.to_string()];
        for s in Switching::ALL {
            row.push(f(s.latency(&p, d) * 1e6, 2));
        }
        // Engine cross-check: a single path worm over d hops with zero
        // per-hop routing delay matches the closed form.
        let config = SimConfig {
            routing_delay_ns: 0,
            ..SimConfig::default()
        };
        let mut engine = Engine::new(Network::new(&mesh, 1), config);
        let nodes: Vec<usize> = (0..=d).collect(); // row 0 of the mesh
        let plan = DeliveryPlan {
            source: 0,
            destinations: vec![d],
            worms: vec![PlanWorm::Path(PlanPath {
                nodes,
                class: ClassChoice::Any,
            })],
        };
        engine.inject(&plan);
        assert!(engine.run_to_quiescence());
        let done = engine.take_completed();
        row.push(f(done[0].completed_at as f64 / 1000.0, 2));
        t.push_row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulated_wormhole_matches_closed_form() {
        let t = fig2_3();
        for row in &t.rows {
            let formula: f64 = row[4].parse().unwrap();
            let simulated: f64 = row[5].parse().unwrap();
            // The engine adds one extra flit (the header) to the stream:
            // allow a one-flit-per-hop + header tolerance.
            assert!(
                (simulated - formula).abs() <= 0.45 * (1.0 + row[0].parse::<f64>().unwrap() * 0.05),
                "d={} formula {formula} vs simulated {simulated}",
                row[0]
            );
        }
    }

    #[test]
    fn saf_grows_linearly_pipelined_stay_flat() {
        let t = fig2_3();
        let first = &t.rows[0];
        let last = t.rows.last().unwrap();
        let saf_ratio: f64 = last[1].parse::<f64>().unwrap() / first[1].parse::<f64>().unwrap();
        let worm_ratio: f64 = last[4].parse::<f64>().unwrap() / first[4].parse::<f64>().unwrap();
        assert!(saf_ratio > 10.0, "SAF must scale with distance");
        // With L/L_f = 16 the per-hop flit term is small but not zero:
        // wormhole grows far slower than SAF, not literally flat.
        assert!(
            worm_ratio < saf_ratio / 4.0,
            "wormhole ratio {worm_ratio} vs SAF ratio {saf_ratio}"
        );
    }
}
