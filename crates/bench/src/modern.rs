//! The "1990 vs modern" figure block (DESIGN.md §17, ROADMAP item 5):
//! the paper's dual-path partitioning against its modern competitors —
//! DPM multicast (Tiwari et al., arXiv:2108.00566) and the software
//! binomial-tree collective — under uniform, hot-spot, and the bursty
//! application-phase traffic pattern.
//!
//! Unlike the §7.2 latency figures, this block also records the
//! engine's native **work metrics** (`engine_steps`, `flit_hops`):
//! they are environment-insensitive for a fixed seed, so the figure
//! doubles as a regression record of how much network work each scheme
//! family pays for the same delivered multicasts.

use mcast_sim::registry::{build_router, SchemeId, TopoSpec};
use mcast_workload::dynamic::{run_dynamic, TrafficPattern};
use mcast_workload::{DynamicConfig, DynamicResult, PatternSpec};

use crate::report::{f, Table};
use crate::scale::Scale;

/// The evaluation network: the §7.2 8×8 mesh, so the 1990 numbers in
/// this block line up with the dissertation's own figures.
const MESH8: TopoSpec = TopoSpec::Mesh2D { w: 8, h: 8 };

/// The scheme families compared: the paper's dual-path partitioning
/// (1990 hardware), DPM destination partitioning with merge (2021
/// hardware), and the binomial-tree software collective (O(log n)
/// rounds of unicast).
const SCHEMES: [&str; 3] = ["dual-path", "dpm", "binomial"];

/// Interarrival for the comparison, µs — moderate load: heavy enough
/// for contention to separate the schemes, light enough that the
/// hardware schemes stay unsaturated on the 8×8 mesh. The binomial
/// software collective may still saturate here — its staged rounds
/// serialize ~n sends per multicast — and that gap *is* the finding.
const LOAD_US: f64 = 700.0;

/// The three traffic patterns of the comparison, with the hot-spot /
/// reduction root at the topology's designated hot-spot node.
fn patterns() -> Vec<(&'static str, TrafficPattern)> {
    let hot = MESH8.hotspot_node();
    vec![
        ("uniform", TrafficPattern::Uniform),
        ("hotspot", TrafficPattern::Hotspot { node: hot }),
        (
            "bursty",
            TrafficPattern::Bursty {
                phase_len: PatternSpec::BURSTY_PHASE_LEN,
                root: hot,
            },
        ),
    ]
}

fn cells(r: &DynamicResult) -> Vec<String> {
    vec![
        if r.saturated {
            "sat".to_string()
        } else {
            f(r.mean_latency_us, 1)
        },
        f(r.mean_traffic, 1),
        r.engine_steps.to_string(),
        r.flit_hops.to_string(),
    ]
}

/// The figure block: every (pattern, scheme) cell on the 8×8 mesh at
/// one moderate load, k̄ = 10, single replication at the harness base
/// seed. Columns carry both the latency comparison and the exact work
/// metrics.
pub fn modern_vs_1990(scale: &Scale) -> Table {
    let title = format!(
        "1990 dual-path vs DPM vs binomial collective, 8x8 mesh, k=10, {LOAD_US}us \
         (latency us / traffic / engine_steps / flit_hops)"
    );
    let mut t = Table::new(
        "modern_vs_1990",
        &title,
        &[
            "pattern",
            "scheme",
            "latency us",
            "traffic",
            "engine_steps",
            "flit_hops",
        ],
    );
    let built = MESH8.build();
    let stopping = scale.stopping_rule();
    for (pname, pattern) in patterns() {
        for scheme in SCHEMES {
            let router = build_router(&MESH8, &SchemeId::named(scheme))
                .expect("modern figure schemes registered");
            let cfg = DynamicConfig {
                mean_interarrival_ns: LOAD_US * 1000.0,
                destinations: 10,
                warmup: stopping.warmup,
                batch_size: stopping.batch_size,
                min_batches: stopping.min_batches,
                max_batches: stopping.max_batches,
                pattern,
                ..DynamicConfig::default()
            };
            let r = run_dynamic(built.as_dyn(), router.as_ref(), &cfg);
            let mut row = vec![pname.to_string(), scheme.to_string()];
            row.extend(cells(&r));
            t.push_row(row);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modern_block_covers_every_pattern_scheme_cell() {
        let t = modern_vs_1990(&Scale::smoke());
        assert_eq!(t.rows.len(), 3 * SCHEMES.len());
        for row in &t.rows {
            // Work metrics are recorded and positive for every cell.
            let steps: u64 = row[4].parse().unwrap();
            let hops: u64 = row[5].parse().unwrap();
            assert!(steps > 0 && hops > 0, "empty work metrics in {row:?}");
        }
        // The software collective relays through intermediate ranks, so
        // under uniform load it must move at least as many flits per
        // completed message as are strictly needed — sanity that the
        // three schemes produce *different* work profiles rather than
        // aliasing one another.
        let uniform: Vec<&Vec<String>> = t.rows.iter().filter(|r| r[0] == "uniform").collect();
        assert_eq!(uniform.len(), SCHEMES.len());
        let hops: std::collections::HashSet<&str> = uniform.iter().map(|r| r[5].as_str()).collect();
        assert!(hops.len() > 1, "schemes aliased: {uniform:?}");
    }

    #[test]
    fn modern_block_work_metrics_reproduce_exactly() {
        // The block's premise: engine_steps/flit_hops are a pure
        // function of the code and seed, so the figure is comparable
        // across hosts and commits.
        let a = modern_vs_1990(&Scale::smoke());
        let b = modern_vs_1990(&Scale::smoke());
        for (ra, rb) in a.rows.iter().zip(&b.rows) {
            assert_eq!(ra[4], rb[4], "engine_steps drifted for {}/{}", ra[0], ra[1]);
            assert_eq!(ra[5], rb[5], "flit_hops drifted for {}/{}", ra[0], ra[1]);
        }
    }
}
