//! Performance trajectory of the harness itself: wall-clock per
//! experiment plus instrumented *simulator throughput* probes
//! (simulated flits per wall-clock second, measured through the
//! `mcast-obs` metrics layer), written to `results/BENCH_2.json`.
//!
//! Wall time is sampled here, once, and flows into the JSON file
//! alongside the obs counters — the figure harness no longer scatters
//! ad-hoc `Instant` timing over stdout-only prints.

use std::io;
use std::path::Path;
use std::time::Instant;

use mcast_obs::{validate_json, Metrics};
use mcast_sim::routers::{DualPathRouter, MultiPathMeshRouter, MulticastRouter};
use mcast_topology::Mesh2D;
use mcast_workload::{run_dynamic_with_sink, DynamicConfig};

use crate::scale::Scale;

/// One timed experiment (a figure/table regeneration).
#[derive(Debug, Clone)]
pub struct ExperimentTiming {
    /// Experiment id (see [`crate::experiment_ids`]).
    pub id: String,
    /// Wall-clock time spent, milliseconds.
    pub wall_ms: f64,
}

/// One instrumented simulator-throughput probe.
#[derive(Debug, Clone)]
pub struct ProbeResult {
    /// Probe name (topology + routing scheme).
    pub name: String,
    /// Wall-clock time of the probe run, milliseconds.
    pub wall_ms: f64,
    /// Flits transferred in simulation (from the obs metrics sink).
    pub sim_flits: u64,
    /// Simulated time covered, nanoseconds.
    pub sim_ns: u64,
    /// Messages completed in simulation.
    pub completed: u64,
    /// Simulated flits processed per wall-clock second — the harness's
    /// headline throughput number.
    pub flits_per_sec: f64,
}

/// Accumulates experiment timings and probe results, then renders
/// `BENCH_2.json`.
#[derive(Debug, Clone, Default)]
pub struct PerfRecorder {
    experiments: Vec<ExperimentTiming>,
    probes: Vec<ProbeResult>,
}

impl PerfRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f`, recording its wall-clock time under `id`. Returns
    /// `f`'s result and the elapsed milliseconds.
    pub fn time<T>(&mut self, id: &str, f: impl FnOnce() -> T) -> (T, f64) {
        let start = Instant::now();
        let out = f();
        let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
        self.experiments.push(ExperimentTiming {
            id: id.to_string(),
            wall_ms,
        });
        (out, wall_ms)
    }

    /// Runs one instrumented dynamic scenario and records simulator
    /// throughput: a `Metrics` sink counts flit hops while the wall
    /// clock runs.
    pub fn probe(
        &mut self,
        name: &str,
        mesh: Mesh2D,
        router: &dyn MulticastRouter,
        cfg: &DynamicConfig,
    ) -> &ProbeResult {
        let metrics = Metrics::new();
        let start = Instant::now();
        let result = run_dynamic_with_sink(&mesh, router, cfg, Some(Box::new(metrics.clone())));
        let wall_s = start.elapsed().as_secs_f64();
        let snap = metrics.snapshot();
        self.probes.push(ProbeResult {
            name: name.to_string(),
            wall_ms: wall_s * 1000.0,
            sim_flits: snap.flits,
            sim_ns: result.sim_time_ns,
            completed: snap.completed,
            flits_per_sec: if wall_s > 0.0 {
                snap.flits as f64 / wall_s
            } else {
                0.0
            },
        });
        self.probes.last().expect("just pushed")
    }

    /// Runs the standard probe set: the 8×8-mesh dual-path and
    /// multi-path schemes under moderate Poisson load, at this scale's
    /// statistics effort.
    pub fn run_standard_probes(&mut self, scale: &Scale) {
        let mesh = Mesh2D::new(8, 8);
        let cfg = DynamicConfig {
            mean_interarrival_ns: 400_000.0,
            destinations: 8,
            ..scale.dynamic_config()
        };
        self.probe("mesh8x8/dual-path", mesh, &DualPathRouter::mesh(mesh), &cfg);
        self.probe(
            "mesh8x8/multi-path",
            mesh,
            &MultiPathMeshRouter::new(mesh),
            &cfg,
        );
    }

    /// Recorded experiment timings.
    pub fn experiments(&self) -> &[ExperimentTiming] {
        &self.experiments
    }

    /// Recorded probe results.
    pub fn probes(&self) -> &[ProbeResult] {
        &self.probes
    }

    /// Renders the `BENCH_2.json` document (always valid JSON; the
    /// total wall time is included for trend lines across commits).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"schema\": \"mcast-bench-perf-v2\",\n");
        let total: f64 = self.experiments.iter().map(|e| e.wall_ms).sum();
        s.push_str(&format!("  \"total_wall_ms\": {:.3},\n", total));
        s.push_str("  \"experiments\": [\n");
        for (i, e) in self.experiments.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"id\": \"{}\", \"wall_ms\": {:.3}}}{}\n",
                e.id,
                e.wall_ms,
                if i + 1 < self.experiments.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ],\n  \"probes\": [\n");
        for (i, p) in self.probes.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"wall_ms\": {:.3}, \"sim_flits\": {}, \
                 \"sim_ns\": {}, \"completed\": {}, \"flits_per_sec\": {:.1}}}{}\n",
                p.name,
                p.wall_ms,
                p.sim_flits,
                p.sim_ns,
                p.completed,
                p.flits_per_sec,
                if i + 1 < self.probes.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        debug_assert!(validate_json(&s).is_ok(), "BENCH_2.json must be valid");
        s
    }

    /// Writes `BENCH_2.json` into `dir` (created if needed).
    pub fn write_bench2(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join("BENCH_2.json"), self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timings_and_probes_land_in_valid_json() {
        let mut rec = PerfRecorder::new();
        let ((), wall) = rec.time("unit", || std::thread::sleep(std::time::Duration::ZERO));
        assert!(wall >= 0.0);
        let mesh = Mesh2D::new(4, 4);
        let cfg = DynamicConfig {
            warmup: 20,
            batch_size: 10,
            min_batches: 2,
            max_batches: 3,
            destinations: 3,
            mean_interarrival_ns: 500_000.0,
            ..DynamicConfig::default()
        };
        let p = rec.probe("mesh4x4/dual-path", mesh, &DualPathRouter::mesh(mesh), &cfg);
        assert!(p.sim_flits > 0, "probe must observe flit hops");
        assert!(p.sim_ns > 0);
        let json = rec.to_json();
        validate_json(&json).expect("BENCH_2.json parses");
        assert!(json.contains("\"experiments\""));
        assert!(json.contains("mesh4x4/dual-path"));
    }

    #[test]
    fn empty_recorder_still_valid() {
        let rec = PerfRecorder::new();
        validate_json(&rec.to_json()).unwrap();
    }
}
