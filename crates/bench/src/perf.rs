//! Performance trajectory of the harness itself: wall-clock per
//! experiment, simulator-throughput probes (simulated flits per
//! wall-clock second), the serial-vs-parallel sweep comparison, and the
//! space-parallel engine scaling block, written to
//! `results/BENCH_4.json`.
//!
//! Probes run the **uninstrumented** hot path: the engine counts flit
//! hops natively (`Engine::flit_hops`, surfaced through
//! `DynamicResult`), so no metrics sink sits on the inner loop and the
//! probe measures what production sweeps actually pay. Earlier
//! `BENCH_2.json` probes measured the same flit-hop count through the
//! obs metrics sink; the committed `BENCH_2.json` is kept as the
//! before/after baseline and its `flits_per_sec` values are folded into
//! this document as `baseline_flits_per_sec`.
//!
//! The v4 schema adds the `engine_scale` block: each probe topology
//! runs the *same* workload serially and under the space-parallel
//! engine (DESIGN.md §15), reporting wall clocks plus the
//! environment-insensitive work metrics (`engine_steps`, `flit_hops`)
//! that must match **exactly** between the two legs — that exact match
//! is the CI perf gate; wall clocks are report-only because they track
//! the host, not the code. The earlier `BENCH_3.json` wall-clock
//! speedups are superseded by this document (see `supersedes` in the
//! header).

use std::io;
use std::path::Path;
use std::time::Instant;

use mcast_obs::validate_json;
use mcast_sim::routers::{DualPathRouter, MultiPathMeshRouter, MulticastRouter};
use mcast_topology::Mesh2D;
use mcast_workload::{aggregate_sweep, run_dynamic, run_dynamic_sweep, DynamicConfig, SweepConfig};

use crate::scale::Scale;

/// One timed experiment (a figure/table regeneration).
#[derive(Debug, Clone)]
pub struct ExperimentTiming {
    /// Experiment id (see [`crate::experiment_ids`]).
    pub id: String,
    /// Wall-clock time spent, milliseconds.
    pub wall_ms: f64,
}

/// One simulator-throughput probe.
#[derive(Debug, Clone)]
pub struct ProbeResult {
    /// Probe name (topology + routing scheme).
    pub name: String,
    /// Wall-clock time of the probe run, milliseconds.
    pub wall_ms: f64,
    /// Flit hops simulated (the engine's native count).
    pub sim_flits: u64,
    /// Event-loop steps the engine executed. Unlike `wall_ms` this is
    /// environment-insensitive: the same probe on a loaded CI box and a
    /// quiet workstation reports the same step count, so regressions in
    /// *work done* separate cleanly from machine noise.
    pub engine_steps: u64,
    /// Simulated time covered, nanoseconds.
    pub sim_ns: u64,
    /// Messages completed in simulation.
    pub completed: u64,
    /// Simulated flits processed per wall-clock second — the harness's
    /// headline throughput number.
    pub flits_per_sec: f64,
    /// The committed `BENCH_2.json` value for this probe, when known.
    pub baseline_flits_per_sec: Option<f64>,
}

impl ProbeResult {
    /// Throughput relative to the recorded baseline.
    pub fn speedup_vs_baseline(&self) -> Option<f64> {
        self.baseline_flits_per_sec
            .filter(|&b| b > 0.0)
            .map(|b| self.flits_per_sec / b)
    }
}

/// The serial-vs-parallel sweep comparison.
#[derive(Debug, Clone)]
pub struct SweepBenchResult {
    /// Grid cells executed (schemes × loads × replications).
    pub points: usize,
    /// Worker threads used for the parallel leg.
    pub jobs: usize,
    /// Wall-clock of the `jobs = 1` leg, milliseconds.
    pub serial_wall_ms: f64,
    /// Wall-clock of the `jobs = N` leg, milliseconds.
    pub parallel_wall_ms: f64,
    /// `serial_wall_ms / parallel_wall_ms`.
    pub speedup: f64,
    /// Whether the two legs produced bit-identical rows and aggregates.
    pub deterministic: bool,
}

/// One space-parallel engine scaling probe: the identical fixed
/// workload run serially and on `engine_jobs` worker lanes.
#[derive(Debug, Clone)]
pub struct EngineScaleProbe {
    /// Probe topology (registry spec form, e.g. `mesh:64x64`).
    pub name: String,
    /// Nodes in the topology.
    pub nodes: usize,
    /// Worker lanes of the parallel leg.
    pub engine_jobs: usize,
    /// Wall-clock of the serial leg, milliseconds.
    pub serial_wall_ms: f64,
    /// Wall-clock of the parallel leg, milliseconds.
    pub parallel_wall_ms: f64,
    /// `serial_wall_ms / parallel_wall_ms` (host-dependent; report
    /// only, never gated).
    pub speedup: f64,
    /// Event-loop steps (identical across legs by construction; the
    /// serial leg's count is recorded and the match is asserted in
    /// `work_identical`).
    pub engine_steps: u64,
    /// Flit hops (identical across legs, as above).
    pub flit_hops: u64,
    /// Simulated time covered, nanoseconds.
    pub sim_ns: u64,
    /// Messages completed.
    pub completed: u64,
    /// Whether the two legs agreed exactly on every work metric
    /// (steps, hops, simulated time, completions, mean latency).
    pub work_identical: bool,
}

/// Scans our own `BENCH_2.json` text for `(probe name, flits_per_sec)`
/// pairs — dependency-free, tolerant of a missing or foreign file
/// (returns an empty list rather than erroring).
pub fn load_baseline_probes(path: &Path) -> Vec<(String, f64)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    // Probe lines look like: {"name": "...", ..., "flits_per_sec": N}
    for line in text.lines() {
        let Some(name) = field_str(line, "\"name\": \"") else {
            continue;
        };
        let Some(fps) = field_num(line, "\"flits_per_sec\": ") else {
            continue;
        };
        out.push((name, fps));
    }
    out
}

pub(crate) fn field_str(line: &str, key: &str) -> Option<String> {
    let start = line.find(key)? + key.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

pub(crate) fn field_num(line: &str, key: &str) -> Option<f64> {
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Accumulates experiment timings, probe results, the sweep comparison
/// and the engine scaling block, then renders `BENCH_4.json`.
#[derive(Debug, Clone, Default)]
pub struct PerfRecorder {
    experiments: Vec<ExperimentTiming>,
    probes: Vec<ProbeResult>,
    baselines: Vec<(String, f64)>,
    sweep: Option<SweepBenchResult>,
    engine_scale: Vec<EngineScaleProbe>,
}

impl PerfRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs baseline probe throughputs (typically from
    /// [`load_baseline_probes`] on the committed `BENCH_2.json`) so
    /// later probes report their speedup.
    pub fn set_baselines(&mut self, baselines: Vec<(String, f64)>) {
        self.baselines = baselines;
    }

    /// Runs `f`, recording its wall-clock time under `id`. Returns
    /// `f`'s result and the elapsed milliseconds.
    pub fn time<T>(&mut self, id: &str, f: impl FnOnce() -> T) -> (T, f64) {
        let start = Instant::now();
        let out = f();
        let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
        self.experiments.push(ExperimentTiming {
            id: id.to_string(),
            wall_ms,
        });
        (out, wall_ms)
    }

    /// Runs one dynamic scenario on the uninstrumented hot path and
    /// records simulator throughput from the engine's native flit-hop
    /// counter.
    pub fn probe(
        &mut self,
        name: &str,
        mesh: Mesh2D,
        router: &dyn MulticastRouter,
        cfg: &DynamicConfig,
    ) -> &ProbeResult {
        let start = Instant::now();
        let result = run_dynamic(&mesh, router, cfg);
        let wall_s = start.elapsed().as_secs_f64();
        let baseline = self
            .baselines
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, fps)| fps);
        self.probes.push(ProbeResult {
            name: name.to_string(),
            wall_ms: wall_s * 1000.0,
            sim_flits: result.flit_hops,
            engine_steps: result.engine_steps,
            sim_ns: result.sim_time_ns,
            completed: result.completed as u64,
            flits_per_sec: if wall_s > 0.0 {
                result.flit_hops as f64 / wall_s
            } else {
                0.0
            },
            baseline_flits_per_sec: baseline,
        });
        self.probes.last().expect("just pushed")
    }

    /// Runs the standard probe set: the 8×8-mesh dual-path and
    /// multi-path schemes under moderate Poisson load, at this scale's
    /// statistics effort.
    pub fn run_standard_probes(&mut self, scale: &Scale) {
        let mesh = Mesh2D::new(8, 8);
        let cfg = DynamicConfig {
            mean_interarrival_ns: 400_000.0,
            destinations: 8,
            ..scale.dynamic_config()
        };
        self.probe("mesh8x8/dual-path", mesh, &DualPathRouter::mesh(mesh), &cfg);
        self.probe(
            "mesh8x8/multi-path",
            mesh,
            &MultiPathMeshRouter::new(mesh),
            &cfg,
        );
    }

    /// Runs the standard sweep grid twice — `jobs = 1` and `jobs = N` —
    /// verifying the two produce bit-identical rows, and records wall
    /// clocks and speedup.
    pub fn run_sweep_bench(&mut self, scale: &Scale, jobs: usize) -> &SweepBenchResult {
        let mesh = Mesh2D::new(8, 8);
        let dual = DualPathRouter::mesh(mesh);
        let multi = MultiPathMeshRouter::new(mesh);
        let routers: [(&str, &(dyn MulticastRouter + Sync)); 2] =
            [("dual-path", &dual), ("multi-path", &multi)];
        let cfg = SweepConfig {
            base: DynamicConfig {
                destinations: 8,
                ..scale.dynamic_config()
            },
            loads_ns: vec![600_000.0, 450_000.0, 350_000.0],
            replications: 3,
            stream: None,
        };

        let start = Instant::now();
        let serial = run_dynamic_sweep(&mesh, &routers, &cfg, 1);
        let serial_wall_ms = start.elapsed().as_secs_f64() * 1000.0;

        let start = Instant::now();
        let parallel = run_dynamic_sweep(&mesh, &routers, &cfg, jobs);
        let parallel_wall_ms = start.elapsed().as_secs_f64() * 1000.0;

        let rows_equal = serial.len() == parallel.len()
            && serial.iter().zip(&parallel).all(|(a, b)| {
                a.point == b.point
                    && a.result.mean_latency_us == b.result.mean_latency_us
                    && a.result.ci_us == b.result.ci_us
                    && a.result.saturated == b.result.saturated
                    && a.result.completed == b.result.completed
                    && a.result.flit_hops == b.result.flit_hops
                    && a.result.engine_steps == b.result.engine_steps
                    && a.result.sim_time_ns == b.result.sim_time_ns
            });
        let agg_s = aggregate_sweep(&serial);
        let agg_p = aggregate_sweep(&parallel);
        let aggs_equal = agg_s.len() == agg_p.len()
            && agg_s.iter().zip(&agg_p).all(|(a, b)| {
                a.latency_us.mean() == b.latency_us.mean()
                    && a.latency_us.count() == b.latency_us.count()
                    && a.saturated == b.saturated
                    && a.flit_hops == b.flit_hops
            });

        self.sweep = Some(SweepBenchResult {
            points: serial.len(),
            jobs,
            serial_wall_ms,
            parallel_wall_ms,
            speedup: if parallel_wall_ms > 0.0 {
                serial_wall_ms / parallel_wall_ms
            } else {
                0.0
            },
            deterministic: rows_equal && aggs_equal,
        });
        self.sweep.as_ref().expect("just set")
    }

    /// Runs the space-parallel engine scaling block (DESIGN.md §15):
    /// for each probe topology, the identical Poisson workload runs
    /// once serially and once on `engine_jobs` worker lanes. The work
    /// metrics (`engine_steps`, `flit_hops`, simulated time,
    /// completions, mean latency) must agree exactly — the engine is
    /// deterministic by construction — and the wall clocks are recorded
    /// for the report. Probe topologies: the standard 8×8 mesh, the
    /// 16×16 mesh, the 64×64 mesh (the "single large run" the parallel
    /// engine exists for), and the 16-node hypercube.
    pub fn run_engine_scale_probes(
        &mut self,
        scale: &Scale,
        engine_jobs: usize,
    ) -> &[EngineScaleProbe] {
        use mcast_sim::registry::{build_router, SchemeId, TopoSpec};
        for name in ["mesh:8x8", "mesh:16x16", "mesh:64x64", "cube:4"] {
            let topo = TopoSpec::parse(name).expect("scale probe topology parses");
            let router =
                build_router(&topo, &SchemeId::named("dual-path")).expect("dual-path registered");
            let built = topo.build();
            let cfg = DynamicConfig {
                mean_interarrival_ns: 400_000.0,
                destinations: 8.min(topo.num_nodes() - 1),
                ..scale.dynamic_config()
            };

            let serial_cfg = DynamicConfig {
                engine_jobs: 1,
                ..cfg.clone()
            };
            let start = Instant::now();
            let serial = run_dynamic(built.as_dyn(), router.as_ref(), &serial_cfg);
            let serial_wall_ms = start.elapsed().as_secs_f64() * 1000.0;

            let par_cfg = DynamicConfig { engine_jobs, ..cfg };
            let start = Instant::now();
            let parallel = run_dynamic(built.as_dyn(), router.as_ref(), &par_cfg);
            let parallel_wall_ms = start.elapsed().as_secs_f64() * 1000.0;

            let work_identical = serial.engine_steps == parallel.engine_steps
                && serial.flit_hops == parallel.flit_hops
                && serial.sim_time_ns == parallel.sim_time_ns
                && serial.completed == parallel.completed
                && serial.mean_latency_us == parallel.mean_latency_us;
            self.engine_scale.push(EngineScaleProbe {
                name: name.to_string(),
                nodes: topo.num_nodes(),
                engine_jobs,
                serial_wall_ms,
                parallel_wall_ms,
                speedup: if parallel_wall_ms > 0.0 {
                    serial_wall_ms / parallel_wall_ms
                } else {
                    0.0
                },
                engine_steps: serial.engine_steps,
                flit_hops: serial.flit_hops,
                sim_ns: serial.sim_time_ns,
                completed: serial.completed as u64,
                work_identical,
            });
        }
        &self.engine_scale
    }

    /// Recorded engine scaling probes.
    pub fn engine_scale(&self) -> &[EngineScaleProbe] {
        &self.engine_scale
    }

    /// Recorded experiment timings.
    pub fn experiments(&self) -> &[ExperimentTiming] {
        &self.experiments
    }

    /// Recorded probe results.
    pub fn probes(&self) -> &[ProbeResult] {
        &self.probes
    }

    /// The sweep comparison, if [`run_sweep_bench`](Self::run_sweep_bench) ran.
    pub fn sweep(&self) -> Option<&SweepBenchResult> {
        self.sweep.as_ref()
    }

    /// Renders the `BENCH_4.json` document (always valid JSON).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"schema\": \"mcast-bench-perf-v4\",\n");
        s.push_str(
            "  \"supersedes\": \"BENCH_3.json — its wall-clock speedups were measured \
             before the space-parallel engine; work metrics here are the gated numbers, \
             wall clocks are report-only\",\n",
        );
        let total: f64 = self.experiments.iter().map(|e| e.wall_ms).sum();
        s.push_str(&format!("  \"total_wall_ms\": {:.3},\n", total));
        s.push_str("  \"experiments\": [\n");
        for (i, e) in self.experiments.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"id\": \"{}\", \"wall_ms\": {:.3}}}{}\n",
                e.id,
                e.wall_ms,
                if i + 1 < self.experiments.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ],\n  \"probes\": [\n");
        for (i, p) in self.probes.iter().enumerate() {
            let mut extra = String::new();
            if let Some(b) = p.baseline_flits_per_sec {
                extra.push_str(&format!(", \"baseline_flits_per_sec\": {:.1}", b));
            }
            if let Some(sp) = p.speedup_vs_baseline() {
                extra.push_str(&format!(", \"speedup_vs_baseline\": {:.2}", sp));
            }
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"wall_ms\": {:.3}, \"sim_flits\": {}, \
                 \"engine_steps\": {}, \"sim_ns\": {}, \"completed\": {}, \
                 \"flits_per_sec\": {:.1}{}}}{}\n",
                p.name,
                p.wall_ms,
                p.sim_flits,
                p.engine_steps,
                p.sim_ns,
                p.completed,
                p.flits_per_sec,
                extra,
                if i + 1 < self.probes.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]");
        if let Some(sw) = &self.sweep {
            s.push_str(&format!(
                ",\n  \"sweep\": {{\"points\": {}, \"jobs\": {}, \
                 \"serial_wall_ms\": {:.3}, \"parallel_wall_ms\": {:.3}, \
                 \"speedup\": {:.2}, \"deterministic\": {}}}",
                sw.points,
                sw.jobs,
                sw.serial_wall_ms,
                sw.parallel_wall_ms,
                sw.speedup,
                sw.deterministic
            ));
        }
        if !self.engine_scale.is_empty() {
            let cpus = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            s.push_str(&format!(
                ",\n  \"engine_scale\": {{\"host_cpus\": {cpus}, \"probes\": [\n"
            ));
            for (i, p) in self.engine_scale.iter().enumerate() {
                s.push_str(&format!(
                    "    {{\"name\": \"{}\", \"nodes\": {}, \"engine_jobs\": {}, \
                     \"serial_wall_ms\": {:.3}, \"parallel_wall_ms\": {:.3}, \
                     \"speedup\": {:.2}, \"engine_steps\": {}, \"flit_hops\": {}, \
                     \"sim_ns\": {}, \"completed\": {}, \"work_identical\": {}}}{}\n",
                    p.name,
                    p.nodes,
                    p.engine_jobs,
                    p.serial_wall_ms,
                    p.parallel_wall_ms,
                    p.speedup,
                    p.engine_steps,
                    p.flit_hops,
                    p.sim_ns,
                    p.completed,
                    p.work_identical,
                    if i + 1 < self.engine_scale.len() {
                        ","
                    } else {
                        ""
                    }
                ));
            }
            s.push_str("  ]}");
        }
        s.push_str("\n}\n");
        debug_assert!(validate_json(&s).is_ok(), "BENCH_4.json must be valid");
        s
    }

    /// Writes `BENCH_4.json` into `dir` (created if needed).
    pub fn write_bench4(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join("BENCH_4.json"), self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timings_and_probes_land_in_valid_json() {
        let mut rec = PerfRecorder::new();
        let ((), wall) = rec.time("unit", || std::thread::sleep(std::time::Duration::ZERO));
        assert!(wall >= 0.0);
        let mesh = Mesh2D::new(4, 4);
        let cfg = DynamicConfig {
            warmup: 20,
            batch_size: 10,
            min_batches: 2,
            max_batches: 3,
            destinations: 3,
            mean_interarrival_ns: 500_000.0,
            ..DynamicConfig::default()
        };
        let p = rec.probe("mesh4x4/dual-path", mesh, &DualPathRouter::mesh(mesh), &cfg);
        assert!(p.sim_flits > 0, "probe must observe flit hops");
        assert!(p.engine_steps > 0, "probe must count engine steps");
        assert!(p.sim_ns > 0);
        assert!(p.completed > 0);
        let json = rec.to_json();
        validate_json(&json).expect("BENCH_4.json parses");
        assert!(json.contains("\"experiments\""));
        assert!(json.contains("mesh4x4/dual-path"));
        assert!(json.contains("\"engine_steps\""));
        assert!(json.contains("\"supersedes\": \"BENCH_3.json"));
    }

    #[test]
    fn probe_reports_speedup_against_baseline() {
        let mut rec = PerfRecorder::new();
        rec.set_baselines(vec![("mesh4x4/dual-path".into(), 1.0)]);
        let mesh = Mesh2D::new(4, 4);
        let cfg = DynamicConfig {
            warmup: 10,
            batch_size: 5,
            min_batches: 2,
            max_batches: 2,
            destinations: 3,
            mean_interarrival_ns: 500_000.0,
            ..DynamicConfig::default()
        };
        let p = rec.probe("mesh4x4/dual-path", mesh, &DualPathRouter::mesh(mesh), &cfg);
        assert_eq!(p.baseline_flits_per_sec, Some(1.0));
        assert!(p.speedup_vs_baseline().expect("baseline set") > 0.0);
        let json = rec.to_json();
        assert!(json.contains("\"baseline_flits_per_sec\""));
        assert!(json.contains("\"speedup_vs_baseline\""));
    }

    #[test]
    fn sweep_bench_runs_and_is_deterministic() {
        let mut rec = PerfRecorder::new();
        let scale = Scale::smoke();
        let sw = rec.run_sweep_bench(&scale, 2);
        assert_eq!(sw.points, 2 * 3 * 3);
        assert!(sw.serial_wall_ms > 0.0 && sw.parallel_wall_ms > 0.0);
        assert!(sw.deterministic, "parallel sweep must match serial");
        let json = rec.to_json();
        validate_json(&json).expect("BENCH_4.json parses");
        assert!(json.contains("\"sweep\""));
        assert!(json.contains("\"deterministic\": true"));
    }

    #[test]
    fn engine_scale_probes_report_identical_work_metrics() {
        // The acceptance invariant behind the CI perf gate: serial and
        // space-parallel legs of every scaling probe agree exactly on
        // the work metrics. Statistics effort is trimmed below smoke so
        // the 64×64 probe stays test-sized.
        let mut rec = PerfRecorder::new();
        let scale = Scale {
            warmup: 10,
            batch_size: 5,
            min_batches: 2,
            max_batches: 2,
            ..Scale::smoke()
        };
        let probes = rec.run_engine_scale_probes(&scale, 4).to_vec();
        assert_eq!(probes.len(), 4);
        for p in &probes {
            assert!(p.work_identical, "{}: work metrics diverged", p.name);
            assert!(
                p.engine_steps > 0 && p.flit_hops > 0,
                "{}: empty probe",
                p.name
            );
            assert_eq!(p.engine_jobs, 4);
        }
        assert!(probes
            .iter()
            .any(|p| p.name == "mesh:64x64" && p.nodes == 4096));
        assert!(probes.iter().any(|p| p.name == "cube:4" && p.nodes == 16));
        let json = rec.to_json();
        validate_json(&json).expect("BENCH_4.json parses");
        assert!(json.contains("\"engine_scale\""));
        assert!(json.contains("\"host_cpus\""));
        assert!(json.contains("\"work_identical\": true"));
        assert!(!json.contains("\"work_identical\": false"));
    }

    #[test]
    fn baseline_parser_reads_bench2_format() {
        let dir = std::env::temp_dir().join("mcast_bench3_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_2.json");
        std::fs::write(
            &path,
            "{\n  \"schema\": \"mcast-bench-perf-v2\",\n  \"probes\": [\n    \
             {\"name\": \"mesh8x8/dual-path\", \"wall_ms\": 9.1, \"sim_flits\": 2, \
             \"sim_ns\": 3, \"completed\": 4, \"flits_per_sec\": 3249560.0},\n    \
             {\"name\": \"mesh8x8/multi-path\", \"wall_ms\": 7.7, \"sim_flits\": 2, \
             \"sim_ns\": 3, \"completed\": 4, \"flits_per_sec\": 3424965.9}\n  ]\n}\n",
        )
        .unwrap();
        let base = load_baseline_probes(&path);
        assert_eq!(base.len(), 2);
        assert_eq!(base[0].0, "mesh8x8/dual-path");
        assert!((base[0].1 - 3_249_560.0).abs() < 0.5);
        assert!((base[1].1 - 3_424_965.9).abs() < 0.5);
        assert!(load_baseline_probes(Path::new("/nonexistent/x.json")).is_empty());
    }

    #[test]
    fn empty_recorder_still_valid() {
        let rec = PerfRecorder::new();
        validate_json(&rec.to_json()).unwrap();
    }
}
