//! Regeneration of the static-traffic figures of §7.1 (Figs 7.1–7.7).
//!
//! Each function sweeps the destination count and reports the average
//! *additional traffic* (channels beyond the per-destination minimum) of
//! the schemes the corresponding figure compares, exactly as §7.1
//! measures them: uniform random multicast sets, traffic averaged over
//! many trials.

use mcast_core::model::multi_unicast_traffic;
use mcast_topology::hamiltonian::{hypercube_cycle, mesh2d_cycle};
use mcast_topology::labeling::{hypercube_gray, mesh2d_snake};
use mcast_topology::{Hypercube, Mesh2D, Topology};
use mcast_workload::static_eval::{broadcast_additional, measure_traffic};

use crate::report::{f, Table};
use crate::scale::Scale;

const SEED: u64 = 0x1990_0715;

/// Fig 7.1: sorted MP on a 32×32 mesh vs multiple one-to-one and
/// broadcast.
pub fn fig7_1(scale: &Scale) -> Table {
    let m = Mesh2D::new(32, 32);
    let c = mesh2d_cycle(&m);
    let mut t = Table::new(
        "fig7_1",
        "Sorted MP on a 32x32 mesh: average additional traffic vs k (Fig 7.1)",
        &[
            "k",
            "sorted MP",
            "sorted MC",
            "multi one-to-one",
            "broadcast",
        ],
    );
    for &k in &scale.k_large {
        let trials = scale.trials;
        let mp = measure_traffic(m.num_nodes(), k, trials, SEED, |mc| {
            mcast_core::sorted_mp::sorted_mp(&m, &c, mc).len()
        });
        let mcy = measure_traffic(m.num_nodes(), k, trials, SEED, |mc| {
            mcast_core::sorted_mp::sorted_mc(&m, &c, mc).len()
        });
        let mu = measure_traffic(m.num_nodes(), k, trials, SEED, |mc| {
            multi_unicast_traffic(&m, mc)
        });
        t.push_row(vec![
            k.to_string(),
            f(mp.mean_additional, 1),
            f(mcy.mean_additional, 1),
            f(mu.mean_additional, 1),
            f(broadcast_additional(m.num_nodes(), mp.mean_effective_k), 1),
        ]);
    }
    t
}

/// Fig 7.2: sorted MP on a 10-cube vs multiple one-to-one and broadcast.
pub fn fig7_2(scale: &Scale) -> Table {
    let h = Hypercube::new(10);
    let c = hypercube_cycle(&h);
    let mut t = Table::new(
        "fig7_2",
        "Sorted MP on a 10-cube: average additional traffic vs k (Fig 7.2)",
        &[
            "k",
            "sorted MP",
            "sorted MC",
            "multi one-to-one",
            "broadcast",
        ],
    );
    for &k in &scale.k_large {
        let trials = scale.trials;
        let mp = measure_traffic(h.num_nodes(), k, trials, SEED, |mc| {
            mcast_core::sorted_mp::sorted_mp(&h, &c, mc).len()
        });
        let mcy = measure_traffic(h.num_nodes(), k, trials, SEED, |mc| {
            mcast_core::sorted_mp::sorted_mc(&h, &c, mc).len()
        });
        let mu = measure_traffic(h.num_nodes(), k, trials, SEED, |mc| {
            multi_unicast_traffic(&h, mc)
        });
        t.push_row(vec![
            k.to_string(),
            f(mp.mean_additional, 1),
            f(mcy.mean_additional, 1),
            f(mu.mean_additional, 1),
            f(broadcast_additional(h.num_nodes(), mp.mean_effective_k), 1),
        ]);
    }
    t
}

/// Fig 7.3: greedy ST on a 32×32 mesh vs multiple one-to-one and
/// broadcast.
pub fn fig7_3(scale: &Scale) -> Table {
    let m = Mesh2D::new(32, 32);
    let mut t = Table::new(
        "fig7_3",
        "Greedy ST on a 32x32 mesh: average additional traffic vs k (Fig 7.3)",
        &["k", "greedy ST", "multi one-to-one", "broadcast"],
    );
    for &k in &scale.k_large {
        let trials = scale.trials_for_k(k);
        let st = measure_traffic(m.num_nodes(), k, trials, SEED, |mc| {
            mcast_core::greedy_st::greedy_st(&m, mc).traffic(&m)
        });
        let mu = measure_traffic(m.num_nodes(), k, trials, SEED, |mc| {
            multi_unicast_traffic(&m, mc)
        });
        t.push_row(vec![
            k.to_string(),
            f(st.mean_additional, 1),
            f(mu.mean_additional, 1),
            f(broadcast_additional(m.num_nodes(), st.mean_effective_k), 1),
        ]);
    }
    t
}

/// Fig 7.4: greedy ST on a 10-cube vs the LEN heuristic [20] (and the
/// KMB baseline as an extra column).
pub fn fig7_4(scale: &Scale) -> Table {
    let h = Hypercube::new(10);
    let mut t = Table::new(
        "fig7_4",
        "Greedy ST on a 10-cube vs LEN: average additional traffic vs k (Fig 7.4)",
        &["k", "greedy ST", "LEN", "KMB"],
    );
    for &k in &scale.k_large {
        let trials = scale.trials_for_k(k);
        let st = measure_traffic(h.num_nodes(), k, trials, SEED, |mc| {
            mcast_core::greedy_st::greedy_st(&h, mc).traffic(&h)
        });
        let len = measure_traffic(h.num_nodes(), k, trials, SEED, |mc| {
            mcast_core::len::len_tree(&h, mc).traffic()
        });
        let kmb = measure_traffic(
            h.num_nodes(),
            k,
            trials.min(scale.trials_heavy),
            SEED,
            |mc| mcast_core::kmb::kmb(&h, mc).traffic(),
        );
        t.push_row(vec![
            k.to_string(),
            f(st.mean_additional, 1),
            f(len.mean_additional, 1),
            f(kmb.mean_additional, 1),
        ]);
    }
    t
}

/// Fig 7.5: X-first vs divided greedy (MT model) on a 16×16 mesh, with
/// the multi-unicast and broadcast context lines.
pub fn fig7_5(scale: &Scale) -> Table {
    let m = Mesh2D::new(16, 16);
    let mut t = Table::new(
        "fig7_5",
        "X-first vs divided greedy on a 16x16 mesh: additional traffic vs k (Fig 7.5)",
        &[
            "k",
            "X-first",
            "divided greedy",
            "multi one-to-one",
            "broadcast",
        ],
    );
    let ks: Vec<usize> = scale
        .k_small
        .iter()
        .copied()
        .chain([80, 120, 160, 200])
        .collect();
    for k in ks {
        if k >= m.num_nodes() {
            continue;
        }
        let trials = scale.trials_for_k(k);
        let xf = measure_traffic(m.num_nodes(), k, trials, SEED, |mc| {
            mcast_core::xfirst::xfirst_tree(&m, mc).traffic()
        });
        let dg = measure_traffic(m.num_nodes(), k, trials, SEED, |mc| {
            mcast_core::divided_greedy::divided_greedy_tree(&m, mc).traffic()
        });
        let mu = measure_traffic(m.num_nodes(), k, trials, SEED, |mc| {
            multi_unicast_traffic(&m, mc)
        });
        t.push_row(vec![
            k.to_string(),
            f(xf.mean_additional, 1),
            f(dg.mean_additional, 1),
            f(mu.mean_additional, 1),
            f(broadcast_additional(m.num_nodes(), xf.mean_effective_k), 1),
        ]);
    }
    t
}

/// Fig 7.6: the deadlock-free multicast methods on a 6-cube — static
/// additional traffic of dual-path, multi-path and fixed-path.
pub fn fig7_6(scale: &Scale) -> Table {
    let h = Hypercube::new(6);
    let l = hypercube_gray(&h);
    let mut t = Table::new(
        "fig7_6",
        "Deadlock-free methods on a 6-cube: additional traffic vs k (Fig 7.6)",
        &["k", "dual-path", "multi-path", "fixed-path"],
    );
    for &k in &scale.k_small {
        if k >= h.num_nodes() {
            continue;
        }
        let trials = scale.trials;
        let dual = measure_traffic(h.num_nodes(), k, trials, SEED, |mc| {
            mcast_core::dual_path::dual_path(&h, &l, mc)
                .iter()
                .map(|p| p.len())
                .sum()
        });
        let multi = measure_traffic(h.num_nodes(), k, trials, SEED, |mc| {
            mcast_core::multi_path::multi_path(&h, &l, mc)
                .iter()
                .map(|p| p.len())
                .sum()
        });
        let fixed = measure_traffic(h.num_nodes(), k, trials, SEED, |mc| {
            mcast_core::fixed_path::fixed_path(&h, &l, mc)
                .iter()
                .map(|p| p.len())
                .sum()
        });
        t.push_row(vec![
            k.to_string(),
            f(dual.mean_additional, 1),
            f(multi.mean_additional, 1),
            f(fixed.mean_additional, 1),
        ]);
    }
    t
}

/// Fig 7.7: the same comparison on an 8×8 mesh, including the
/// double-channel tree scheme.
pub fn fig7_7(scale: &Scale) -> Table {
    let m = Mesh2D::new(8, 8);
    let l = mesh2d_snake(&m);
    let mut t = Table::new(
        "fig7_7",
        "Deadlock-free methods on an 8x8 mesh: additional traffic vs k (Fig 7.7)",
        &["k", "dual-path", "multi-path", "fixed-path", "dc-tree"],
    );
    for &k in &scale.k_small {
        if k >= m.num_nodes() {
            continue;
        }
        let trials = scale.trials;
        let dual = measure_traffic(m.num_nodes(), k, trials, SEED, |mc| {
            mcast_core::dual_path::dual_path(&m, &l, mc)
                .iter()
                .map(|p| p.len())
                .sum()
        });
        let multi = measure_traffic(m.num_nodes(), k, trials, SEED, |mc| {
            mcast_core::multi_path::multi_path_mesh(&m, &l, mc)
                .iter()
                .map(|p| p.len())
                .sum()
        });
        let fixed = measure_traffic(m.num_nodes(), k, trials, SEED, |mc| {
            mcast_core::fixed_path::fixed_path(&m, &l, mc)
                .iter()
                .map(|p| p.len())
                .sum()
        });
        let tree = measure_traffic(m.num_nodes(), k, trials, SEED, |mc| {
            mcast_core::dc_xfirst_tree::traffic(&mcast_core::dc_xfirst_tree::dc_xfirst(&m, mc))
        });
        t.push_row(vec![
            k.to_string(),
            f(dual.mean_additional, 1),
            f(multi.mean_additional, 1),
            f(fixed.mean_additional, 1),
            f(tree.mean_additional, 1),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(t: &Table, row: usize, name: &str) -> f64 {
        let i = t.columns.iter().position(|c| c == name).unwrap();
        t.rows[row][i].parse().unwrap()
    }

    #[test]
    fn fig7_1_shape_mp_between_zero_and_baselines() {
        let t = fig7_1(&Scale::smoke());
        for r in 0..t.rows.len() {
            let mp = col(&t, r, "sorted MP");
            let mu = col(&t, r, "multi one-to-one");
            assert!(mp >= 0.0);
            // For moderate k, sorted MP creates less additional traffic
            // than separate unicasts (the paper's headline comparison).
            if col(&t, r, "k") >= 10.0 {
                assert!(mp < mu, "row {r}: mp {mp} !< mu {mu}");
            }
        }
    }

    #[test]
    fn fig7_4_shape_greedy_st_beats_len() {
        let t = fig7_4(&Scale::smoke());
        for r in 0..t.rows.len() {
            let st = col(&t, r, "greedy ST");
            let len = col(&t, r, "LEN");
            assert!(st <= len * 1.05 + 1.0, "row {r}: ST {st} vs LEN {len}");
        }
    }

    #[test]
    fn fig7_5_shape_divided_greedy_beats_xfirst() {
        let t = fig7_5(&Scale::smoke());
        for r in 0..t.rows.len() {
            let xf = col(&t, r, "X-first");
            let dg = col(&t, r, "divided greedy");
            assert!(dg <= xf + 1e-9, "row {r}: dg {dg} > xf {xf}");
        }
    }

    #[test]
    fn fig7_6_and_7_7_shapes() {
        // Multi-path *usually* needs fewer channels than dual-path (§6.2.2);
        // on the cube the extra first hops can cost a little at moderate k,
        // so allow a small per-row tolerance while requiring the aggregate
        // to favor multi-path. Fixed ≥ dual is a per-instance theorem.
        let t6 = fig7_6(&Scale::smoke());
        for r in 0..t6.rows.len() {
            let dual = col(&t6, r, "dual-path");
            let multi = col(&t6, r, "multi-path");
            let fixed = col(&t6, r, "fixed-path");
            assert!(
                multi <= dual * 1.15 + 1.0,
                "row {r}: multi {multi} >> dual {dual}"
            );
            assert!(dual <= fixed + 1e-9, "row {r}: dual {dual} > fixed {fixed}");
        }
        let t7 = fig7_7(&Scale::smoke());
        let mut dual_total = 0.0;
        let mut multi_total = 0.0;
        for r in 0..t7.rows.len() {
            dual_total += col(&t7, r, "dual-path");
            multi_total += col(&t7, r, "multi-path");
        }
        assert!(
            multi_total < dual_total,
            "mesh aggregate: multi {multi_total} !< dual {dual_total}"
        );
    }
}
