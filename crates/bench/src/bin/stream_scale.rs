//! The streaming scale block of `results/BENCH_5.json` (DESIGN.md §16).
//!
//! ```text
//! cargo run -p mcast-bench --release --bin stream_scale -- --full
//! cargo run -p mcast-bench --release --bin stream_scale -- --gate results/BENCH_5.json
//! ```
//!
//! `--full` regenerates the whole document — the CI-gated probe ladder
//! plus the headline 64×64 million-multicast run — and writes
//! `results/BENCH_5.json`. `--gate <path>` is the CI mode: it re-runs
//! only the gated probes, compares their environment-insensitive work
//! metrics (`engine_steps`, `flit_hops`, `sim_ns`, `completed`)
//! **exactly** against the checked-in document, asserts every probe's
//! memory gauges against the hard ceilings (`peak_in_flight` ≤ cap,
//! `peak_live_worms` ≤ worm ceiling), and validates the headline probe's
//! schema — without paying for its million multicasts. Any mismatch
//! exits nonzero.

use std::path::Path;
use std::process::ExitCode;

use mcast_bench::{
    gated_probe_set, headline_probe, load_stream_probes, run_stream_probe, worm_ceiling,
    StreamBench, StreamScaleProbe,
};

fn report(p: &StreamScaleProbe) {
    eprintln!(
        "[stream-scale {}] {} nodes: {} messages in {:.1} ms \
         ({:.2e} flits/sec), peak {} live worms (ceiling {}), \
         peak {} in flight (cap {}){}",
        p.name,
        p.nodes,
        p.messages,
        p.wall_ms,
        p.flits_per_sec,
        p.peak_live_worms,
        worm_ceiling(p.max_in_flight),
        p.peak_in_flight,
        p.max_in_flight,
        if p.gated { " [gated]" } else { " [headline]" }
    );
}

fn run_full(out_dir: &Path) -> ExitCode {
    let mut doc = StreamBench::new();
    for (name, messages, cap) in gated_probe_set() {
        let p = run_stream_probe(name, messages, cap, true);
        report(&p);
        doc.push(p);
    }
    let (name, messages, cap) = headline_probe();
    let p = run_stream_probe(name, messages, cap, false);
    report(&p);
    doc.push(p);
    let mut failed = false;
    for p in doc.probes() {
        if p.completed != p.messages {
            eprintln!(
                "error: {} completed {} of {} messages",
                p.name, p.completed, p.messages
            );
            failed = true;
        }
        if !p.within_ceilings() {
            eprintln!("error: {} breached its memory ceilings", p.name);
            failed = true;
        }
    }
    if failed {
        return ExitCode::FAILURE;
    }
    match doc.write_bench5(out_dir) {
        Ok(()) => {
            eprintln!("wrote {}", out_dir.join("BENCH_5.json").display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: could not write BENCH_5.json: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_gate(path: &Path) -> ExitCode {
    let saved = load_stream_probes(path);
    if saved.is_empty() {
        eprintln!(
            "error: {} is missing, empty, or not a mcast-bench-perf-v5 document",
            path.display()
        );
        return ExitCode::FAILURE;
    }
    let mut failed = false;

    // The headline probe is validated, not re-run: schema presence, the
    // million-multicast floor, full completion, and the memory gauges
    // inside their hard ceilings.
    let (hname, hmessages, _) = headline_probe();
    match saved
        .iter()
        .find(|p| !p.gated && p.name == hname && p.messages >= hmessages)
    {
        Some(h) => {
            if h.completed != h.messages || !h.within_ceilings() {
                eprintln!(
                    "error: headline probe invalid: completed {}/{}, \
                     peak {} live worms (ceiling {}), peak {} in flight (cap {})",
                    h.completed,
                    h.messages,
                    h.peak_live_worms,
                    worm_ceiling(h.max_in_flight),
                    h.peak_in_flight,
                    h.max_in_flight
                );
                failed = true;
            } else {
                eprintln!(
                    "[gate] headline {} ok: {} multicasts, peak {} live worms \
                     <= ceiling {} [wall clock report-only: {:.1} ms]",
                    h.name,
                    h.messages,
                    h.peak_live_worms,
                    worm_ceiling(h.max_in_flight),
                    h.wall_ms
                );
            }
        }
        None => {
            eprintln!(
                "error: no headline probe ({hname}, >= {hmessages} messages) in {}",
                path.display()
            );
            failed = true;
        }
    }

    // Gated probes re-run here and must reproduce the checked-in work
    // metrics bit for bit (wall clocks are report-only).
    for (name, messages, cap) in gated_probe_set() {
        let Some(base) = saved
            .iter()
            .find(|p| p.gated && p.name == name && p.messages == messages)
        else {
            eprintln!(
                "error: gated probe {name} ({messages} messages) missing from {} \
                 (regenerate with --full)",
                path.display()
            );
            failed = true;
            continue;
        };
        let fresh = run_stream_probe(name, messages, cap, true);
        report(&fresh);
        if fresh.work() != base.work()
            || fresh.peak_live_worms != base.peak_live_worms
            || fresh.peak_in_flight != base.peak_in_flight
        {
            eprintln!(
                "error: {name} drifted from the checked-in baseline \
                 (regenerate results/BENCH_5.json if the change is intended):\n\
                 fresh    work={:?} peaks=({}, {})\n\
                 baseline work={:?} peaks=({}, {})",
                fresh.work(),
                fresh.peak_live_worms,
                fresh.peak_in_flight,
                base.work(),
                base.peak_live_worms,
                base.peak_in_flight
            );
            failed = true;
        }
        if fresh.completed != fresh.messages || !fresh.within_ceilings() {
            eprintln!("error: {name} violated completion or memory ceilings");
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        eprintln!("[gate] BENCH_5 streaming scale block ok");
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--full") | None => run_full(Path::new("results")),
        Some("--gate") => {
            let default = "results/BENCH_5.json".to_string();
            run_gate(Path::new(args.get(1).unwrap_or(&default)))
        }
        Some(other) => {
            eprintln!("usage: stream_scale [--full | --gate <BENCH_5.json>] (got {other:?})");
            ExitCode::FAILURE
        }
    }
}
