//! Regenerates the dissertation's tables and figures.
//!
//! ```text
//! cargo run -p mcast-bench --release --bin figures             # everything
//! cargo run -p mcast-bench --release --bin figures -- fig7_1   # one id
//! cargo run -p mcast-bench --release --bin figures -- --smoke  # fast pass
//! cargo run -p mcast-bench --release --bin figures -- --jobs 8 # sweep threads
//! cargo run -p mcast-bench --release --bin figures -- --experiment fault_sweep --scale smoke
//! ```
//!
//! CSV output lands in `results/`, along with `BENCH_4.json` — the
//! perf trajectory of the harness itself: wall-clock per experiment,
//! simulated-flits/sec probes (with speedup against the committed
//! `BENCH_2.json` baseline), the serial-vs-parallel sweep comparison,
//! and the space-parallel engine scaling block (DESIGN.md §15).
//! `--jobs N` sets the parallel sweep's worker count (default: all
//! cores, or `MCAST_JOBS` / `RAYON_NUM_THREADS`); `--engine-jobs N`
//! sets the scaling block's lane count (default 4).

use std::path::Path;

use mcast_bench::{experiment_ids, load_baseline_probes, run_experiment, PerfRecorder, Scale};
use mcast_workload::resolve_jobs;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut jobs = None;
    let mut engine_jobs = 4;
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--scale" => smoke = it.next().map(String::as_str) == Some("smoke"),
            "--jobs" => jobs = it.next().and_then(|v| v.parse::<usize>().ok()),
            "--engine-jobs" => {
                engine_jobs = it
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .unwrap_or(4)
                    .max(1)
            }
            "--experiment" => ids.extend(it.next().cloned()),
            id if !id.starts_with("--") => ids.push(id.to_string()),
            other => eprintln!("warning: ignoring unknown flag {other}"),
        }
    }
    let scale = if smoke { Scale::smoke() } else { Scale::full() };
    let ids: Vec<String> = if ids.is_empty() {
        experiment_ids().into_iter().map(String::from).collect()
    } else {
        ids
    };
    let jobs = resolve_jobs(jobs);
    let out_dir = Path::new("results");
    let mut perf = PerfRecorder::new();
    // Read the committed baseline before anything touches results/.
    perf.set_baselines(load_baseline_probes(&out_dir.join("BENCH_2.json")));
    for id in &ids {
        let (tables, wall_ms) = perf.time(id, || run_experiment(id, &scale));
        for t in &tables {
            print!("{}", t.render());
            if let Err(e) = t.write_csv(out_dir) {
                eprintln!("warning: could not write {}.csv: {e}", t.id);
            }
            println!();
        }
        eprintln!("[{id}] done in {wall_ms:.1} ms");
    }
    perf.run_standard_probes(&scale);
    for p in perf.probes() {
        let speedup = p
            .speedup_vs_baseline()
            .map(|s| format!(", {s:.2}x vs baseline"))
            .unwrap_or_default();
        eprintln!(
            "[probe {}] {:.2e} simulated flits/sec ({} flits in {:.1} ms{speedup})",
            p.name, p.flits_per_sec, p.sim_flits, p.wall_ms
        );
    }
    let sw = perf.run_sweep_bench(&scale, jobs);
    eprintln!(
        "[sweep] {} points: serial {:.1} ms, parallel {:.1} ms with {} jobs \
         ({:.2}x speedup, {})",
        sw.points,
        sw.serial_wall_ms,
        sw.parallel_wall_ms,
        sw.jobs,
        sw.speedup,
        if sw.deterministic {
            "bit-identical results"
        } else {
            "RESULTS DIVERGED"
        }
    );
    for p in perf.run_engine_scale_probes(&scale, engine_jobs) {
        eprintln!(
            "[engine-scale {}] {} nodes: serial {:.1} ms, {} lanes {:.1} ms \
             ({:.2}x, {} steps, {})",
            p.name,
            p.nodes,
            p.serial_wall_ms,
            p.engine_jobs,
            p.parallel_wall_ms,
            p.speedup,
            p.engine_steps,
            if p.work_identical {
                "work metrics identical"
            } else {
                "WORK METRICS DIVERGED"
            }
        );
    }
    if perf.engine_scale().iter().any(|p| !p.work_identical) {
        eprintln!("error: space-parallel engine diverged from serial");
        std::process::exit(1);
    }
    match perf.write_bench4(out_dir) {
        Ok(()) => eprintln!("wrote {}", out_dir.join("BENCH_4.json").display()),
        Err(e) => eprintln!("warning: could not write BENCH_4.json: {e}"),
    }
}
