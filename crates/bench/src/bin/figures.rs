//! Regenerates the dissertation's tables and figures.
//!
//! ```text
//! cargo run -p mcast-bench --release --bin figures             # everything
//! cargo run -p mcast-bench --release --bin figures -- fig7_1   # one id
//! cargo run -p mcast-bench --release --bin figures -- --smoke  # fast pass
//! ```
//!
//! CSV output lands in `results/`.

use std::path::Path;

use mcast_bench::{experiment_ids, run_experiment, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let ids: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .collect();
    let scale = if smoke { Scale::smoke() } else { Scale::full() };
    let ids: Vec<String> = if ids.is_empty() {
        experiment_ids().into_iter().map(String::from).collect()
    } else {
        ids
    };
    let out_dir = Path::new("results");
    for id in &ids {
        let start = std::time::Instant::now();
        let tables = run_experiment(id, &scale);
        for t in &tables {
            print!("{}", t.render());
            if let Err(e) = t.write_csv(out_dir) {
                eprintln!("warning: could not write {}.csv: {e}", t.id);
            }
            println!();
        }
        eprintln!("[{id}] done in {:.1?}", start.elapsed());
    }
}
