//! Regenerates the dissertation's tables and figures.
//!
//! ```text
//! cargo run -p mcast-bench --release --bin figures             # everything
//! cargo run -p mcast-bench --release --bin figures -- fig7_1   # one id
//! cargo run -p mcast-bench --release --bin figures -- --smoke  # fast pass
//! ```
//!
//! CSV output lands in `results/`, along with `BENCH_2.json` — the
//! perf trajectory of the harness itself (wall-clock per experiment and
//! simulated-flits/sec probes measured through the obs metrics layer).

use std::path::Path;

use mcast_bench::{experiment_ids, run_experiment, PerfRecorder, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let ids: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .collect();
    let scale = if smoke { Scale::smoke() } else { Scale::full() };
    let ids: Vec<String> = if ids.is_empty() {
        experiment_ids().into_iter().map(String::from).collect()
    } else {
        ids
    };
    let out_dir = Path::new("results");
    let mut perf = PerfRecorder::new();
    for id in &ids {
        let (tables, wall_ms) = perf.time(id, || run_experiment(id, &scale));
        for t in &tables {
            print!("{}", t.render());
            if let Err(e) = t.write_csv(out_dir) {
                eprintln!("warning: could not write {}.csv: {e}", t.id);
            }
            println!();
        }
        eprintln!("[{id}] done in {wall_ms:.1} ms");
    }
    perf.run_standard_probes(&scale);
    for p in perf.probes() {
        eprintln!(
            "[probe {}] {:.2e} simulated flits/sec ({} flits in {:.1} ms)",
            p.name, p.flits_per_sec, p.sim_flits, p.wall_ms
        );
    }
    match perf.write_bench2(out_dir) {
        Ok(()) => eprintln!("wrote {}", out_dir.join("BENCH_2.json").display()),
        Err(e) => eprintln!("warning: could not write BENCH_2.json: {e}"),
    }
}
