//! Regeneration of Chapter 5's tables and worked examples:
//! Tables 5.1–5.4 (Hamiltonian cycles and the `h`/`f` mappings) and the
//! §5.4 / §6.2.2 example routes with their traffic figures.

use mcast_core::model::{MulticastRoute, MulticastSet, PathRoute};
use mcast_topology::hamiltonian::{hypercube_cycle, mesh2d_cycle};
use mcast_topology::labeling::mesh2d_snake;
use mcast_topology::{Hypercube, Mesh2D, Topology};

use crate::report::Table;

/// Tables 5.1/5.2: the 4×4-mesh Hamiltonian cycle with `h` and the `f`
/// keys for `u0 = 9`.
pub fn table_5_1_and_5_2() -> Table {
    let m = Mesh2D::new(4, 4);
    let c = mesh2d_cycle(&m);
    let mut t = Table::new(
        "table5_1_2",
        "Hamilton cycle mapping h and sorting key f (u0 = 9), 4x4 mesh (Tables 5.1/5.2)",
        &["node", "h(x)", "f(x) for u0=9"],
    );
    for x in 0..m.num_nodes() {
        t.push_row(vec![
            x.to_string(),
            c.h(x).to_string(),
            c.f(9, x).to_string(),
        ]);
    }
    t
}

/// Tables 5.3/5.4: the 4-cube Gray cycle with `h` and `f` for
/// `u0 = 0011`.
pub fn table_5_3_and_5_4() -> Table {
    let cube = Hypercube::new(4);
    let c = hypercube_cycle(&cube);
    let mut t = Table::new(
        "table5_3_4",
        "Hamilton cycle mapping h and sorting key f (u0 = 0011), 4-cube (Tables 5.3/5.4)",
        &["node", "h(x)", "f(x) for u0=0011"],
    );
    for x in 0..16 {
        t.push_row(vec![
            cube.format_addr(x),
            c.h(x).to_string(),
            c.f(0b0011, x).to_string(),
        ]);
    }
    t
}

/// The worked examples of §5.4 and §6.2.2: each algorithm's route on its
/// example instance, with total traffic and maximum source→destination
/// distance, alongside the figure the dissertation reports.
pub fn worked_examples() -> Table {
    let mut t = Table::new(
        "examples",
        "Worked examples of §5.4 and §6.2.2 (traffic / max distance vs the text)",
        &["example", "traffic", "max dist", "paper traffic", "notes"],
    );

    // Fig 5.7: sorted MP on the 4×4 mesh.
    {
        let m = Mesh2D::new(4, 4);
        let c = mesh2d_cycle(&m);
        let mc = MulticastSet::new(9, [0, 1, 6, 12]);
        let p = mcast_core::sorted_mp::sorted_mp(&m, &c, &mc);
        t.push_row(vec![
            "Fig 5.7 sorted MP 4x4".into(),
            p.len().to_string(),
            route_max(&MulticastRoute::Path(p), &mc),
            "8".into(),
            "path (9,13,12,8,4,0,1,2,6)".into(),
        ]);
    }
    // Fig 5.9: greedy ST on the 8×8 mesh.
    {
        let m = Mesh2D::new(8, 8);
        let n = |x: usize, y: usize| m.node(x, y);
        let mc = MulticastSet::new(n(2, 7), [n(0, 5), n(2, 3), n(4, 1), n(6, 3), n(7, 4)]);
        let st = mcast_core::greedy_st::greedy_st(&m, &mc);
        t.push_row(vec![
            "Fig 5.9 greedy ST 8x8".into(),
            st.traffic(&m).to_string(),
            "-".into(),
            "14".into(),
            "7 virtual edges of length 2".into(),
        ]);
    }
    // Figs 5.11/5.12: X-first vs divided greedy on the 6×6 mesh.
    {
        let m = Mesh2D::new(6, 6);
        let n = |x: usize, y: usize| m.node(x, y);
        let mc = MulticastSet::new(
            n(3, 2),
            [
                n(2, 0),
                n(3, 0),
                n(4, 0),
                n(1, 1),
                n(5, 1),
                n(0, 2),
                n(1, 3),
                n(2, 5),
                n(3, 5),
                n(5, 5),
            ],
        );
        let xf = mcast_core::xfirst::xfirst_tree(&m, &mc);
        t.push_row(vec![
            "Fig 5.11 X-first 6x6".into(),
            xf.traffic().to_string(),
            route_max(&MulticastRoute::Tree(xf), &mc),
            "24".into(),
            "text counts 24 for its drawing; see DESIGN.md".into(),
        ]);
        let dg = mcast_core::divided_greedy::divided_greedy_tree(&m, &mc);
        t.push_row(vec![
            "Fig 5.12 divided greedy 6x6".into(),
            dg.traffic().to_string(),
            route_max(&MulticastRoute::Tree(dg), &mc),
            "20".into(),
            "reconstruction; ties broken as DESIGN.md §5".into(),
        ]);
    }
    // Figs 6.13/6.16/6.17: the three path-based schemes.
    {
        let m = Mesh2D::new(6, 6);
        let l = mesh2d_snake(&m);
        let n = |x: usize, y: usize| m.node(x, y);
        let mc = MulticastSet::new(
            n(3, 2),
            [
                n(0, 0),
                n(0, 2),
                n(0, 5),
                n(1, 3),
                n(4, 5),
                n(5, 0),
                n(5, 1),
                n(5, 3),
                n(5, 4),
            ],
        );
        let dual = mcast_core::dual_path::dual_path(&m, &l, &mc);
        push_star(&mut t, "Fig 6.13 dual-path 6x6", dual, &mc, "33 / 18");
        let multi = mcast_core::multi_path::multi_path_mesh(&m, &l, &mc);
        push_star(&mut t, "Fig 6.16 multi-path 6x6", multi, &mc, "20 / 6");
        let fixed = mcast_core::fixed_path::fixed_path(&m, &l, &mc);
        push_star(&mut t, "Fig 6.17 fixed-path 6x6", fixed, &mc, "35 / 20");
    }
    t
}

fn push_star(t: &mut Table, name: &str, paths: Vec<PathRoute>, mc: &MulticastSet, paper: &str) {
    let route = MulticastRoute::Star(paths);
    t.push_row(vec![
        name.into(),
        route.traffic().to_string(),
        route_max(&route, mc),
        paper.into(),
        String::new(),
    ]);
}

fn route_max(route: &MulticastRoute, mc: &MulticastSet) -> String {
    route
        .max_dest_hops(mc)
        .map(|h| h.to_string())
        .unwrap_or_else(|| "-".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_have_16_rows() {
        assert_eq!(table_5_1_and_5_2().rows.len(), 16);
        assert_eq!(table_5_3_and_5_4().rows.len(), 16);
    }

    #[test]
    fn worked_examples_match_expected_counts() {
        let t = worked_examples();
        assert_eq!(t.rows.len(), 7);
        // Fig 5.7: traffic 8 (matches the paper's drawn path).
        assert_eq!(t.rows[0][1], "8");
        // Fig 6.13: 33 / 18 exactly as the text.
        let dual = t.rows.iter().find(|r| r[0].contains("6.13")).unwrap();
        assert_eq!(dual[1], "33");
        assert_eq!(dual[2], "18");
        let fixed = t.rows.iter().find(|r| r[0].contains("6.17")).unwrap();
        assert_eq!(fixed[1], "35");
        assert_eq!(fixed[2], "20");
    }
}
