//! Result tables: terminal rendering and CSV output for the figure
//! harness.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// One regenerated table or figure data series.
#[derive(Debug, Clone)]
pub struct Table {
    /// Stable identifier (`fig7_1`, `table5_2`, …) — used as CSV name.
    pub id: String,
    /// Human title, including the paper reference.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the column count).
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width mismatch in {}",
            self.id
        );
        self.rows.push(row);
    }

    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {}", self.id, self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", header.join("  "));
        let _ = writeln!(out, "{}", "-".repeat(header.join("  ").len()));
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            let _ = writeln!(out, "{}", cells.join("  "));
        }
        out
    }

    /// Writes `<dir>/<id>.csv`.
    pub fn write_csv(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        let mut s = String::new();
        let _ = writeln!(s, "{}", self.columns.join(","));
        for row in &self.rows {
            let _ = writeln!(s, "{}", row.join(","));
        }
        fs::write(dir.join(format!("{}.csv", self.id)), s)
    }
}

/// Formats an f64 with a fixed number of decimals.
pub fn f(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("t", "demo", &["k", "traffic"]);
        t.push_row(vec!["5".into(), "12.3".into()]);
        t.push_row(vec!["100".into(), "4.0".into()]);
        let r = t.render();
        assert!(r.contains("traffic"));
        assert!(r.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("t", "demo", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("mcast_bench_test_csv");
        let mut t = Table::new("unit_csv", "demo", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        t.write_csv(&dir).unwrap();
        let content = std::fs::read_to_string(dir.join("unit_csv.csv")).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
    }
}
