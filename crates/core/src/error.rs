//! Typed routing errors.
//!
//! The planners of this crate were written for healthy networks, where
//! the Hamiltonian-labeling machinery guarantees progress and the only
//! failure mode is a caller bug (hence the documented panics). The
//! fault-aware planners ([`crate::fault_route`]) route on degraded
//! networks where unreachability is a *normal* outcome, so they report
//! it with a [`RouteError`] instead of panicking.

use mcast_topology::NodeId;
use std::fmt;

/// An error produced by a routing planner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// The multicast source node itself is failed.
    SourceFailed(NodeId),
    /// A destination cannot be reached from the source on the surviving
    /// network (its node is dead or the survivors disconnect it).
    Unreachable {
        /// The multicast source.
        from: NodeId,
        /// The unreachable destination.
        to: NodeId,
    },
    /// A constructed route failed validation (shape or coverage).
    Invalid(String),
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::SourceFailed(n) => write!(f, "multicast source node {n} is failed"),
            RouteError::Unreachable { from, to } => {
                write!(
                    f,
                    "destination {to} is unreachable from {from} on the surviving network"
                )
            }
            RouteError::Invalid(msg) => write!(f, "invalid route: {msg}"),
        }
    }
}

impl std::error::Error for RouteError {}

impl From<String> for RouteError {
    fn from(msg: String) -> Self {
        RouteError::Invalid(msg)
    }
}
