//! Virtual-channel partitioned multicast — the §8.2 future-work
//! direction, implemented: "instead of partitioning the network into
//! high-channel and low-channel networks … the network may be partitioned
//! into many sub-networks. The set of destination nodes then may be
//! distributed to different sub-networks to support multiple multicast
//! paths."
//!
//! Each physical channel carries `lanes` virtual channels (classes). Lane
//! `v` forms its own copy of the high- and low-channel subnetworks, which
//! are acyclic exactly as in dual-path routing, so any assignment of
//! sub-multicasts to lanes is deadlock-free. This implementation balances
//! the sorted destination list across lanes in contiguous label ranges,
//! giving up to `2·lanes` concurrent label-monotone paths while keeping
//! per-path traffic close to dual-path's.

use mcast_topology::{Labeling, Topology};

use crate::dual_path::{prepare as dual_prepare, route_path};
use crate::model::{MulticastSet, PathRoute};

/// One lane's sub-multicast: the virtual-channel class and its path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LanePath {
    /// Virtual-channel class this path must use.
    pub lane: u8,
    /// The label-monotone path.
    pub path: PathRoute,
}

/// Splits a sorted half (high or low) into at most `lanes` contiguous
/// chunks of near-equal size, preserving order.
fn chunk<T: Clone>(sorted: &[T], lanes: usize) -> Vec<Vec<T>> {
    if sorted.is_empty() || lanes == 0 {
        return Vec::new();
    }
    let lanes = lanes.min(sorted.len());
    let base = sorted.len() / lanes;
    let extra = sorted.len() % lanes;
    let mut out = Vec::with_capacity(lanes);
    let mut i = 0;
    for l in 0..lanes {
        let take = base + usize::from(l < extra);
        out.push(sorted[i..i + take].to_vec());
        i += take;
    }
    out
}

/// Virtual-channel multicast routing: distributes `D_H` and `D_L` over
/// `lanes` virtual copies of the high/low subnetworks, one label-monotone
/// path per (side, lane).
pub fn vc_multi_path<T: Topology + ?Sized>(
    topo: &T,
    labeling: &Labeling,
    mc: &MulticastSet,
    lanes: u8,
) -> Vec<LanePath> {
    assert!(lanes >= 1, "at least one virtual lane");
    let (high, low) = dual_prepare(labeling, mc);
    let mut out = Vec::new();
    for (lane, dests) in chunk(&high, lanes as usize).into_iter().enumerate() {
        if !dests.is_empty() {
            out.push(LanePath {
                lane: lane as u8,
                path: route_path(topo, labeling, mc.source, &dests),
            });
        }
    }
    for (lane, dests) in chunk(&low, lanes as usize).into_iter().enumerate() {
        if !dests.is_empty() {
            out.push(LanePath {
                lane: lane as u8,
                path: route_path(topo, labeling, mc.source, &dests),
            });
        }
    }
    out
}

/// Total channels used (sum of path lengths).
pub fn traffic(paths: &[LanePath]) -> usize {
    paths.iter().map(|p| p.path.len()).sum()
}

/// Maximum source→destination hop count over the destinations of `mc`.
pub fn max_dest_hops(paths: &[LanePath], mc: &MulticastSet) -> Option<usize> {
    mc.destinations
        .iter()
        .map(|&d| paths.iter().find_map(|p| p.path.hops_to(d)))
        .max()
        .flatten()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_topology::labeling::{hypercube_gray, mesh2d_snake};
    use mcast_topology::NodeId;
    use mcast_topology::{Hypercube, Mesh2D};

    #[test]
    fn one_lane_is_exactly_dual_path() {
        let m = Mesh2D::new(6, 6);
        let l = mesh2d_snake(&m);
        let mc = MulticastSet::new(14, [0, 35, 7, 29, 22, 3]);
        let vc = vc_multi_path(&m, &l, &mc, 1);
        let dual = crate::dual_path::dual_path(&m, &l, &mc);
        let vc_paths: Vec<&PathRoute> = vc.iter().map(|p| &p.path).collect();
        assert_eq!(vc_paths.len(), dual.len());
        for (a, b) in vc_paths.iter().zip(&dual) {
            assert_eq!(a.nodes(), b.nodes());
        }
        assert!(vc.iter().all(|p| p.lane == 0));
    }

    #[test]
    fn lanes_cover_all_destinations_once() {
        let h = Hypercube::new(5);
        let l = hypercube_gray(&h);
        let mc = MulticastSet::new(13, [0, 1, 5, 9, 17, 22, 28, 31, 30, 2, 7]);
        for lanes in 1..=4u8 {
            let vc = vc_multi_path(&h, &l, &mc, lanes);
            // Every destination is *delivered* by exactly one lane (other
            // lanes may pass through it without delivering — their header
            // does not list it). Delivery = the destination lies on the
            // path whose chunk it was assigned to; since chunks partition
            // the destination set, it suffices that each destination lies
            // on at least one path and the chunks are disjoint.
            let mut assigned = 0usize;
            for p in &vc {
                let on_path: Vec<NodeId> = mc
                    .destinations
                    .iter()
                    .copied()
                    .filter(|&d| p.path.hops_to(d).is_some())
                    .collect();
                assert!(!on_path.is_empty());
                assigned += on_path.len();
            }
            assert!(assigned >= mc.k(), "lanes={lanes}");
            for &d in &mc.destinations {
                assert!(
                    vc.iter().any(|p| p.path.hops_to(d).is_some()),
                    "lanes={lanes} dest={d} unreachable"
                );
            }
            // Lane ids stay within bounds.
            assert!(vc.iter().all(|p| p.lane < lanes));
        }
    }

    #[test]
    fn more_lanes_reduce_worst_case_reach() {
        let m = Mesh2D::new(8, 8);
        let l = mesh2d_snake(&m);
        let mc = MulticastSet::new(0, (1..=20).map(|i| i * 3 % 64));
        let reach1 = max_dest_hops(&vc_multi_path(&m, &l, &mc, 1), &mc).unwrap();
        let reach4 = max_dest_hops(&vc_multi_path(&m, &l, &mc, 4), &mc).unwrap();
        assert!(reach4 <= reach1, "4 lanes {reach4} > 1 lane {reach1}");
    }

    #[test]
    fn paths_remain_label_monotone_per_lane() {
        let m = Mesh2D::new(6, 6);
        let l = mesh2d_snake(&m);
        let mc = MulticastSet::new(20, [0, 1, 8, 30, 33, 35, 15, 4]);
        for p in vc_multi_path(&m, &l, &mc, 3) {
            let labels: Vec<usize> = p.path.nodes().iter().map(|&n| l.label(n)).collect();
            let inc = labels[1] > labels[0];
            assert!(
                labels.windows(2).all(|w| (w[1] > w[0]) == inc),
                "{labels:?}"
            );
        }
    }

    #[test]
    fn chunking_is_balanced_and_order_preserving() {
        let v: Vec<usize> = (0..10).collect();
        let c = chunk(&v, 3);
        assert_eq!(c.len(), 3);
        assert_eq!(c[0], vec![0, 1, 2, 3]);
        assert_eq!(c[1], vec![4, 5, 6]);
        assert_eq!(c[2], vec![7, 8, 9]);
        assert!(chunk(&v, 0).is_empty());
        assert_eq!(chunk(&v[..2], 5).len(), 2);
    }
}
