//! Fault-aware variants of the path-based multicast planners (§6.2.2,
//! §6.3) that route around a [`FaultMask`].
//!
//! On a healthy network these produce *bit-identical* plans to
//! [`crate::dual_path::dual_path`] / [`crate::multi_path`]: each chain is
//! first extended with the ordinary routing function `R`, and only when a
//! selected hop is dead does the planner fall back. The fallback ladder,
//! per destination, is:
//!
//! 1. **Monotone detour** — a shortest label-monotone path through
//!    surviving channels (stays inside one subnetwork, so Assertion 2's
//!    deadlock-freedom argument is untouched);
//! 2. **Fresh monotone worm** — restart from the source when the current
//!    chain's endpoint is boxed in (equivalent to a multi-path split);
//! 3. **Bitonic "mountain" worm** — ascend the high-channel network to a
//!    peak, then descend the low-channel network to the destination.
//!    Every subnetwork crossing is high→low, so the combined channel
//!    dependency graph gains no low→high edges and stays acyclic: the
//!    scheme remains deadlock-free (the up*/down* argument);
//! 4. **Escape worm** — an unrestricted shortest path over surviving
//!    channels. *Not* covered by the acyclicity argument; plans that
//!    resort to escape worms are flagged so the simulator's recovery
//!    watchdog (mcast-sim) supervises them.
//!
//! Destinations with no surviving path at all are reported per
//! destination rather than panicking, as [`RouteError::Unreachable`]
//! via [`FaultRoutedPaths::require_all`].

use std::collections::VecDeque;

use mcast_topology::{FaultMask, Labeling, NodeId, Topology};

use crate::dual_path::prepare as dual_prepare;
use crate::error::RouteError;
use crate::model::{MulticastSet, PathRoute};
use crate::multi_path::{prepare_by_intervals, prepare_mesh, SubMulticast};
use mcast_topology::Mesh2D;

/// How far down the fallback ladder a worm had to go.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum WormKind {
    /// Entirely label-monotone (possibly with monotone detours): lives in
    /// one subnetwork, deadlock-free by Assertion 2.
    Monotone,
    /// Ascends then descends exactly once: deadlock-free because all
    /// subnetwork crossings are high→low.
    Bitonic,
    /// Unrestricted surviving-channel path: needs watchdog supervision.
    Escape,
}

/// A fault-routed multicast plan: the paths, their fallback depth, and
/// any destinations the surviving network cannot reach.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRoutedPaths {
    /// The delivery paths, each starting at the source.
    pub paths: Vec<PathRoute>,
    /// `kinds[i]` classifies `paths[i]`.
    pub kinds: Vec<WormKind>,
    /// Destinations with no surviving path from the source.
    pub unreachable: Vec<NodeId>,
}

impl FaultRoutedPaths {
    /// Worms at the given fallback depth.
    pub fn count(&self, kind: WormKind) -> usize {
        self.kinds.iter().filter(|&&k| k == kind).count()
    }

    /// Whether every path is covered by a deadlock-freedom argument
    /// (no escape worms).
    pub fn provably_deadlock_free(&self) -> bool {
        self.count(WormKind::Escape) == 0
    }

    /// The paths, or [`RouteError::Unreachable`] for the first
    /// unreachable destination if any.
    pub fn require_all(self, source: NodeId) -> Result<Vec<PathRoute>, RouteError> {
        match self.unreachable.first() {
            Some(&d) => Err(RouteError::Unreachable {
                from: source,
                to: d,
            }),
            None => Ok(self.paths),
        }
    }
}

/// Fault-aware dual-path multicast: the §6.2.2 algorithm with the
/// fallback ladder above. With an empty mask the result is identical to
/// [`crate::dual_path::dual_path`].
pub fn fault_dual_path<T: Topology + ?Sized>(
    topo: &T,
    labeling: &Labeling,
    mask: &FaultMask,
    mc: &MulticastSet,
) -> Result<FaultRoutedPaths, RouteError> {
    if !mask.is_node_alive(mc.source) {
        return Err(RouteError::SourceFailed(mc.source));
    }
    let (high, low) = dual_prepare(labeling, mc);
    let router = FaultRouter {
        topo,
        labeling,
        mask,
    };
    let mut out = FaultRoutedPaths {
        paths: Vec::new(),
        kinds: Vec::new(),
        unreachable: Vec::new(),
    };
    router.route_half(mc.source, None, &high, &mut out);
    router.route_half(mc.source, None, &low, &mut out);
    Ok(out)
}

/// Fault-aware multi-path multicast with the generic interval split of
/// §6.3 (Fig 6.20). With an empty mask the result is identical to
/// [`crate::multi_path::multi_path`].
pub fn fault_multi_path<T: Topology + ?Sized>(
    topo: &T,
    labeling: &Labeling,
    mask: &FaultMask,
    mc: &MulticastSet,
) -> Result<FaultRoutedPaths, RouteError> {
    let subs = prepare_by_intervals(topo, labeling, mc);
    fault_route_subs(topo, labeling, mask, mc, &subs)
}

/// Fault-aware multi-path multicast with the mesh coordinate split of
/// §6.2.2 (Fig 6.14). With an empty mask the result is identical to
/// [`crate::multi_path::multi_path_mesh`].
pub fn fault_multi_path_mesh(
    mesh: &Mesh2D,
    labeling: &Labeling,
    mask: &FaultMask,
    mc: &MulticastSet,
) -> Result<FaultRoutedPaths, RouteError> {
    let subs = prepare_mesh(mesh, labeling, mc);
    fault_route_subs(mesh, labeling, mask, mc, &subs)
}

fn fault_route_subs<T: Topology + ?Sized>(
    topo: &T,
    labeling: &Labeling,
    mask: &FaultMask,
    mc: &MulticastSet,
    subs: &[SubMulticast],
) -> Result<FaultRoutedPaths, RouteError> {
    if !mask.is_node_alive(mc.source) {
        return Err(RouteError::SourceFailed(mc.source));
    }
    let router = FaultRouter {
        topo,
        labeling,
        mask,
    };
    let mut out = FaultRoutedPaths {
        paths: Vec::new(),
        kinds: Vec::new(),
        unreachable: Vec::new(),
    };
    for sub in subs {
        // The first hop to `via` is part of the multi-path contract; if
        // the link died, fall back to chaining from the source directly.
        let via = mask.is_link_alive(mc.source, sub.via).then_some(sub.via);
        router.route_half(mc.source, via, &sub.dests, &mut out);
    }
    Ok(out)
}

struct FaultRouter<'a, T: Topology + ?Sized> {
    topo: &'a T,
    labeling: &'a Labeling,
    mask: &'a FaultMask,
}

impl<T: Topology + ?Sized> FaultRouter<'_, T> {
    /// Routes one sorted (label-monotone order) destination list,
    /// appending the resulting worms to `out`. `via` forces the healthy
    /// first hop of a multi-path sub-multicast.
    fn route_half(
        &self,
        source: NodeId,
        via: Option<NodeId>,
        dests: &[NodeId],
        out: &mut FaultRoutedPaths,
    ) {
        if dests.is_empty() {
            return;
        }
        // The open monotone chain, if any.
        let mut chain: Option<Vec<NodeId>> = via.map(|v| vec![source, v]);
        for &d in dests {
            if !self.mask.is_node_alive(d) {
                out.unreachable.push(d);
                continue;
            }
            if let Some(nodes) = chain.as_mut() {
                let at = *nodes.last().expect("chain is nonempty");
                if at == d {
                    continue; // `via` may itself be a destination
                }
                if self.r_extend_alive(nodes, d) {
                    continue;
                }
                if let Some(seg) = self.monotone_path(at, d) {
                    nodes.extend(seg);
                    continue;
                }
                // Endpoint is boxed in: close this chain, start afresh.
                let closed = chain.take().expect("checked above");
                out.paths.push(PathRoute::new(closed));
                out.kinds.push(WormKind::Monotone);
            }
            // Fresh worm from the source.
            let mut fresh = vec![source];
            if self.r_extend_alive(&mut fresh, d) {
                chain = Some(fresh);
            } else if let Some(seg) = self.monotone_path(source, d) {
                fresh.truncate(1);
                fresh.extend(seg);
                chain = Some(fresh);
            } else if let Some(path) = self.mountain_path(source, d) {
                out.paths.push(PathRoute::new(path));
                out.kinds.push(WormKind::Bitonic);
            } else if let Some(path) = self.escape_path(source, d) {
                out.paths.push(PathRoute::new(path));
                out.kinds.push(WormKind::Escape);
            } else {
                out.unreachable.push(d);
            }
        }
        if let Some(nodes) = chain {
            if nodes.len() > 1 {
                out.paths.push(PathRoute::new(nodes));
                out.kinds.push(WormKind::Monotone);
            }
        }
    }

    /// Extends `nodes` to `d` with the ordinary healthy routing function
    /// `R`, hop by hop, aborting (and restoring `nodes`) if any selected
    /// channel is dead. Keeping `R`'s exact choices is what makes empty-
    /// mask plans identical to the healthy planners.
    fn r_extend_alive(&self, nodes: &mut Vec<NodeId>, d: NodeId) -> bool {
        let len0 = nodes.len();
        let mut cur = *nodes.last().expect("chain is nonempty");
        while cur != d {
            let next = crate::routing_fn::r_step(self.topo, self.labeling, cur, d);
            if !self.mask.is_link_alive(cur, next) {
                nodes.truncate(len0);
                return false;
            }
            nodes.push(next);
            cur = next;
        }
        true
    }

    /// Shortest strictly label-monotone path `u → d` over surviving
    /// channels (exclusive of `u`), by BFS. Monotonicity keeps the path
    /// inside one subnetwork, so using it preserves Assertion 2.
    fn monotone_path(&self, u: NodeId, d: NodeId) -> Option<Vec<NodeId>> {
        let ascending = self.labeling.label(u) < self.labeling.label(d);
        let n = self.topo.num_nodes();
        let mut prev = vec![usize::MAX; n];
        let mut queue = VecDeque::new();
        queue.push_back(u);
        prev[u] = u;
        let mut nb = Vec::new();
        while let Some(v) = queue.pop_front() {
            if v == d {
                return Some(backtrack(&prev, u, d));
            }
            self.topo.neighbors_into(v, &mut nb);
            for &w in &nb {
                let monotone = if ascending {
                    self.labeling.label(w) > self.labeling.label(v)
                } else {
                    self.labeling.label(w) < self.labeling.label(v)
                };
                if monotone && prev[w] == usize::MAX && self.mask.is_link_alive(v, w) {
                    prev[w] = v;
                    queue.push_back(w);
                }
            }
        }
        None
    }

    /// Shortest bitonic "mountain" path `u → d`: strictly ascend, then
    /// strictly descend (either leg may be empty). 0-1 BFS over
    /// `(node, phase)` states with a free ascend→descend switch.
    fn mountain_path(&self, u: NodeId, d: NodeId) -> Option<Vec<NodeId>> {
        let n = self.topo.num_nodes();
        // prev[phase][node] = (prev_node, prev_phase)
        let mut prev = [vec![usize::MAX; n], vec![usize::MAX; n]];
        let mut prev_phase = [vec![0u8; n], vec![0u8; n]];
        let mut queue = VecDeque::new();
        queue.push_back((u, 0u8));
        prev[0][u] = u;
        let mut nb = Vec::new();
        let mut goal: Option<u8> = None;
        'bfs: while let Some((v, phase)) = queue.pop_front() {
            if v == d {
                goal = Some(phase);
                break 'bfs;
            }
            if phase == 0 && prev[1][v] == usize::MAX {
                // Free switch to the descending leg at the peak `v`.
                prev[1][v] = v;
                prev_phase[1][v] = 0;
                queue.push_front((v, 1));
            }
            self.topo.neighbors_into(v, &mut nb);
            for &w in &nb {
                let ok = if phase == 0 {
                    self.labeling.label(w) > self.labeling.label(v)
                } else {
                    self.labeling.label(w) < self.labeling.label(v)
                };
                if ok && prev[phase as usize][w] == usize::MAX && self.mask.is_link_alive(v, w) {
                    prev[phase as usize][w] = v;
                    prev_phase[phase as usize][w] = phase;
                    queue.push_back((w, phase));
                }
            }
        }
        let mut phase = goal?;
        // Backtrack through (node, phase) states.
        let mut path = vec![d];
        let mut cur = d;
        while !(cur == u && phase == 0) {
            let p = prev[phase as usize][cur];
            let pp = prev_phase[phase as usize][cur];
            if p != cur {
                path.push(p);
            }
            cur = p;
            phase = pp;
        }
        path.reverse();
        path.dedup(); // the phase-switch state repeats the peak node
        Some(path)
    }

    /// Unrestricted shortest path over surviving channels. The last
    /// resort: not covered by the CDG acyclicity argument.
    fn escape_path(&self, u: NodeId, d: NodeId) -> Option<Vec<NodeId>> {
        let n = self.topo.num_nodes();
        let mut prev = vec![usize::MAX; n];
        let mut queue = VecDeque::new();
        queue.push_back(u);
        prev[u] = u;
        let mut nb = Vec::new();
        while let Some(v) = queue.pop_front() {
            if v == d {
                let mut path = backtrack(&prev, u, d);
                path.insert(0, u);
                return Some(path);
            }
            self.topo.neighbors_into(v, &mut nb);
            for &w in &nb {
                if prev[w] == usize::MAX && self.mask.is_link_alive(v, w) {
                    prev[w] = v;
                    queue.push_back(w);
                }
            }
        }
        None
    }
}

/// Reconstructs the BFS path `u → d`, exclusive of `u`.
fn backtrack(prev: &[usize], u: NodeId, d: NodeId) -> Vec<NodeId> {
    let mut path = vec![d];
    let mut cur = d;
    while prev[cur] != cur {
        cur = prev[cur];
        path.push(cur);
    }
    debug_assert_eq!(cur, u);
    path.pop(); // drop `u` itself
    path.reverse();
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dual_path::dual_path;
    use crate::model::MulticastRoute;
    use crate::multi_path::{multi_path, multi_path_mesh};
    use mcast_topology::labeling::{hypercube_gray, mesh2d_snake};
    use mcast_topology::{Hypercube, Mesh2D};

    fn example_6_13() -> (Mesh2D, Labeling, MulticastSet) {
        let m = Mesh2D::new(6, 6);
        let l = mesh2d_snake(&m);
        let n = |x: usize, y: usize| m.node(x, y);
        let mc = MulticastSet::new(
            n(3, 2),
            [
                n(0, 0),
                n(0, 2),
                n(0, 5),
                n(1, 3),
                n(4, 5),
                n(5, 0),
                n(5, 1),
                n(5, 3),
                n(5, 4),
            ],
        );
        (m, l, mc)
    }

    #[test]
    fn empty_mask_reproduces_dual_path_exactly() {
        let (m, l, mc) = example_6_13();
        let healthy = dual_path(&m, &l, &mc);
        let routed = fault_dual_path(&m, &l, &FaultMask::none(), &mc).unwrap();
        assert_eq!(routed.paths, healthy);
        assert!(routed.unreachable.is_empty());
        assert!(routed.kinds.iter().all(|&k| k == WormKind::Monotone));
    }

    #[test]
    fn empty_mask_reproduces_multi_path_exactly() {
        let (m, l, mc) = example_6_13();
        assert_eq!(
            fault_multi_path_mesh(&m, &l, &FaultMask::none(), &mc)
                .unwrap()
                .paths,
            multi_path_mesh(&m, &l, &mc)
        );
        let h = Hypercube::new(4);
        let lh = hypercube_gray(&h);
        let mch = MulticastSet::new(0b1100, [0b0100, 0b0011, 0b0111, 0b1000, 0b1111]);
        assert_eq!(
            fault_multi_path(&h, &lh, &FaultMask::none(), &mch)
                .unwrap()
                .paths,
            multi_path(&h, &lh, &mch)
        );
    }

    #[test]
    fn routes_around_a_single_dead_link_monotonically() {
        let (m, l, mc) = example_6_13();
        let healthy = dual_path(&m, &l, &mc);
        // Kill the first hop of the healthy high path.
        let h0 = healthy[0].nodes()[0];
        let h1 = healthy[0].nodes()[1];
        let mut mask = FaultMask::none();
        mask.fail_link(h0, h1);
        let routed = fault_dual_path(&m, &l, &mask, &mc).unwrap();
        assert!(routed.unreachable.is_empty());
        // Still valid and full coverage on the surviving topology.
        let route = MulticastRoute::Star(routed.paths.clone());
        route.validate(&m, &mc).unwrap();
        for p in &routed.paths {
            for w in p.nodes().windows(2) {
                assert!(
                    mask.is_link_alive(w[0], w[1]),
                    "dead channel {}→{} used",
                    w[0],
                    w[1]
                );
            }
        }
        // A single dead link on a mesh leaves monotone alternatives.
        assert!(routed.provably_deadlock_free());
    }

    #[test]
    fn mountain_worm_when_monotone_subnetwork_is_cut() {
        // 1×6 path graph labeled 0..5 left to right. Source label 1,
        // destination label 4: the only monotone route is the line
        // itself, so killing link (2,3) leaves nothing — and no mountain
        // or escape either (the graph is disconnected). But on a 2×3
        // mesh, killing the direct monotone hops forces a detour.
        let m = Mesh2D::new(3, 2);
        let l = mesh2d_snake(&m);
        // Labels: (0,0)=0 (1,0)=1 (2,0)=2 / (2,1)=3 (1,1)=4 (0,1)=5.
        let src = m.node(1, 0); // label 1
        let dst = m.node(2, 0); // label 2
        let mc = MulticastSet::new(src, [dst]);
        let mut mask = FaultMask::none();
        mask.fail_link(src, dst); // the only ascending move to label 2
        let routed = fault_dual_path(&m, &l, &mask, &mc).unwrap();
        assert!(routed.unreachable.is_empty());
        let route = MulticastRoute::Star(routed.paths.clone());
        route.validate(&m, &mc).unwrap();
        // The detour must ascend 1→4→3→2? No: 4→3→2 descends, so the
        // worm is bitonic (ascend to (1,1)=4, descend to (2,1)=3 then
        // (2,0)=2): provably deadlock-free, no escape needed.
        assert_eq!(routed.count(WormKind::Bitonic), 1);
        assert!(routed.provably_deadlock_free());
        for p in &routed.paths {
            for w in p.nodes().windows(2) {
                assert!(mask.is_link_alive(w[0], w[1]));
            }
        }
    }

    #[test]
    fn unreachable_destination_reported_not_panicked() {
        let m = Mesh2D::new(3, 3);
        let l = mesh2d_snake(&m);
        let mc = MulticastSet::new(4, [0, 8]);
        let mut mask = FaultMask::none();
        // Isolate corner 0 completely.
        mask.fail_link(0, 1);
        mask.fail_link(0, 3);
        let routed = fault_dual_path(&m, &l, &mask, &mc).unwrap();
        assert_eq!(routed.unreachable, vec![0]);
        // Node 8 still gets a path.
        assert!(routed.paths.iter().any(|p| p.hops_to(8).is_some()));
        let err = fault_dual_path(&m, &l, &mask, &mc)
            .unwrap()
            .require_all(4)
            .unwrap_err();
        assert_eq!(err, RouteError::Unreachable { from: 4, to: 0 });
    }

    #[test]
    fn failed_source_is_a_typed_error() {
        let m = Mesh2D::new(3, 3);
        let l = mesh2d_snake(&m);
        let mc = MulticastSet::new(4, [0]);
        let mut mask = FaultMask::none();
        mask.fail_node(4);
        assert_eq!(
            fault_dual_path(&m, &l, &mask, &mc).unwrap_err(),
            RouteError::SourceFailed(4)
        );
    }

    #[test]
    fn dead_destination_node_is_unreachable_not_fatal() {
        let m = Mesh2D::new(4, 4);
        let l = mesh2d_snake(&m);
        let mc = MulticastSet::new(0, [5, 10]);
        let mut mask = FaultMask::none();
        mask.fail_node(5);
        let routed = fault_dual_path(&m, &l, &mask, &mc).unwrap();
        assert_eq!(routed.unreachable, vec![5]);
        assert!(routed.paths.iter().any(|p| p.hops_to(10).is_some()));
    }

    #[test]
    fn random_connected_masks_full_delivery_no_dead_channels() {
        // A hand-rolled sweep over seeds; the root-crate property tests
        // re-assert this via the proptest harness at larger scale.
        let m = Mesh2D::new(6, 5);
        let l = mesh2d_snake(&m);
        for seed in 0..40u64 {
            let mask = FaultMask::random_links_connected(&m, 0.3, seed);
            let mc = MulticastSet::new(
                (seed as usize * 7) % m.num_nodes(),
                (0..8).map(|i| (seed as usize * 3 + i * 5) % m.num_nodes()),
            );
            if mc.k() == 0 {
                continue;
            }
            let routed = fault_dual_path(&m, &l, &mask, &mc).unwrap();
            assert!(
                routed.unreachable.is_empty(),
                "seed {seed}: connected mask, all reachable"
            );
            let route = MulticastRoute::Star(routed.paths.clone());
            route.validate(&m, &mc).unwrap();
            for p in &routed.paths {
                for w in p.nodes().windows(2) {
                    assert!(
                        mask.is_link_alive(w[0], w[1]),
                        "seed {seed}: dead channel used"
                    );
                }
            }
        }
    }
}
