//! The multi-path deadlock-free multicast wormhole routing algorithm of
//! §6.2.2 (Fig 6.14, mesh) and §6.3 (Fig 6.20, hypercube).
//!
//! Dual-path's two paths can be long; multi-path relaxes the restriction
//! and uses up to `outdegree(u0)` paths. `D_H` and `D_L` are partitioned
//! further — on a 2D mesh by which side of the source's column a
//! destination lies (Fig 6.15), on a hypercube (and any labeled topology)
//! by the label intervals of the source's higher/lower-labeled neighbors —
//! and each part is routed with the same label-monotone routing function,
//! so deadlock-freedom is inherited (Assertion 3 / Corollary 6.2).

use mcast_topology::{Labeling, Mesh2D, NodeId, Topology};

use crate::dual_path::prepare as dual_prepare;
use crate::model::{MulticastRoute, MulticastSet, PathRoute};

/// A partitioned sub-multicast: the neighbor the copy is first sent to and
/// its sorted destination list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubMulticast {
    /// First-hop neighbor `v_i`.
    pub via: NodeId,
    /// Destinations, already sorted in routing order.
    pub dests: Vec<NodeId>,
}

/// Mesh message preparation (Fig 6.14): split `D_H` by the x-coordinates
/// of the two higher-labeled neighbors (one horizontal, one vertical), and
/// `D_L` symmetrically. Destination lists stay sorted in label order.
pub fn prepare_mesh(mesh: &Mesh2D, labeling: &Labeling, mc: &MulticastSet) -> Vec<SubMulticast> {
    let (high, low) = dual_prepare(labeling, mc);
    let mut subs = Vec::with_capacity(4);
    subs.extend(split_half_mesh(mesh, labeling, mc.source, &high, true));
    subs.extend(split_half_mesh(mesh, labeling, mc.source, &low, false));
    subs
}

fn split_half_mesh(
    mesh: &Mesh2D,
    labeling: &Labeling,
    u0: NodeId,
    half: &[NodeId],
    high: bool,
) -> Vec<SubMulticast> {
    if half.is_empty() {
        return Vec::new();
    }
    let l0 = labeling.label(u0);
    let mut nb = Vec::new();
    mesh.neighbors_into(u0, &mut nb);
    let side: Vec<NodeId> = nb
        .into_iter()
        .filter(|&p| {
            if high {
                labeling.label(p) > l0
            } else {
                labeling.label(p) < l0
            }
        })
        .collect();
    match side.len() {
        0 => unreachable!("nonempty half implies a monotone neighbor exists"),
        1 => vec![SubMulticast {
            via: side[0],
            dests: half.to_vec(),
        }],
        _ => {
            // Exactly two: one horizontal (same row), one vertical.
            let (x0, y0) = mesh.coords(u0);
            let horiz = side
                .iter()
                .copied()
                .find(|&p| mesh.coords(p).1 == y0)
                .expect("one of the two neighbors shares the row");
            let vert = side
                .iter()
                .copied()
                .find(|&p| p != horiz)
                .expect("two neighbors");
            let (hx, _) = mesh.coords(horiz);
            // Destinations on the horizontal neighbor's side of the
            // source's column ride via it; the rest via the vertical one.
            let (dh, dv): (Vec<NodeId>, Vec<NodeId>) = half.iter().partition(|&&d| {
                let (x, _) = mesh.coords(d);
                if hx > x0 {
                    x > x0
                } else {
                    x < x0
                }
            });
            let mut subs = Vec::new();
            if !dh.is_empty() {
                subs.push(SubMulticast {
                    via: horiz,
                    dests: dh,
                });
            }
            if !dv.is_empty() {
                subs.push(SubMulticast {
                    via: vert,
                    dests: dv,
                });
            }
            subs
        }
    }
}

/// Generic (hypercube, 3D-mesh, k-ary) message preparation (Fig 6.20):
/// let `v_1 < v_2 < … < v_d` be the higher-labeled neighbors of `u0`;
/// `D_Hi = {w : ℓ(v_i) ≤ ℓ(w) < ℓ(v_{i+1})}` rides via `v_i` (the last
/// interval is unbounded). `D_L` is partitioned symmetrically.
pub fn prepare_by_intervals<T: Topology + ?Sized>(
    topo: &T,
    labeling: &Labeling,
    mc: &MulticastSet,
) -> Vec<SubMulticast> {
    let (high, low) = dual_prepare(labeling, mc);
    let l0 = labeling.label(mc.source);
    let mut nb = Vec::new();
    topo.neighbors_into(mc.source, &mut nb);

    let mut subs = Vec::new();
    // High side.
    let mut ups: Vec<NodeId> = nb
        .iter()
        .copied()
        .filter(|&p| labeling.label(p) > l0)
        .collect();
    ups.sort_by_key(|&p| labeling.label(p));
    for (i, &v) in ups.iter().enumerate() {
        let lo = labeling.label(v);
        let hi = ups
            .get(i + 1)
            .map(|&n| labeling.label(n))
            .unwrap_or(usize::MAX);
        let dests: Vec<NodeId> = high
            .iter()
            .copied()
            .filter(|&d| {
                let ld = labeling.label(d);
                ld >= lo && (hi == usize::MAX || ld < hi)
            })
            .collect();
        if !dests.is_empty() {
            subs.push(SubMulticast { via: v, dests });
        }
    }
    // Low side (mirror).
    let mut downs: Vec<NodeId> = nb
        .iter()
        .copied()
        .filter(|&p| labeling.label(p) < l0)
        .collect();
    downs.sort_by_key(|&p| std::cmp::Reverse(labeling.label(p)));
    for (i, &v) in downs.iter().enumerate() {
        let hi = labeling.label(v);
        let lo = downs.get(i + 1).map(|&n| labeling.label(n));
        let dests: Vec<NodeId> = low
            .iter()
            .copied()
            .filter(|&d| {
                let ld = labeling.label(d);
                ld <= hi && lo.is_none_or(|lo| ld > lo)
            })
            .collect();
        if !dests.is_empty() {
            subs.push(SubMulticast { via: v, dests });
        }
    }
    subs
}

/// Routes the prepared sub-multicasts: each copy hops to `via`, then
/// follows the routing function through its sorted destination list.
pub fn route_subs<T: Topology + ?Sized>(
    topo: &T,
    labeling: &Labeling,
    source: NodeId,
    subs: &[SubMulticast],
) -> Vec<PathRoute> {
    subs.iter()
        .map(|sub| {
            let mut nodes = vec![source, sub.via];
            for &d in &sub.dests {
                if *nodes.last().unwrap() != d {
                    crate::routing_fn::r_extend(topo, labeling, &mut nodes, d);
                }
            }
            PathRoute::new(nodes)
        })
        .collect()
}

/// Multi-path routing on a 2D mesh (coordinate-split preparation).
pub fn multi_path_mesh(mesh: &Mesh2D, labeling: &Labeling, mc: &MulticastSet) -> Vec<PathRoute> {
    let subs = prepare_mesh(mesh, labeling, mc);
    route_subs(mesh, labeling, mc.source, &subs)
}

/// Multi-path routing on any labeled topology (interval-split
/// preparation) — the hypercube algorithm of §6.3.
pub fn multi_path<T: Topology + ?Sized>(
    topo: &T,
    labeling: &Labeling,
    mc: &MulticastSet,
) -> Vec<PathRoute> {
    let subs = prepare_by_intervals(topo, labeling, mc);
    route_subs(topo, labeling, mc.source, &subs)
}

/// Convenience wrapper returning a [`MulticastRoute::Star`] (mesh split).
pub fn multi_path_mesh_route(
    mesh: &Mesh2D,
    labeling: &Labeling,
    mc: &MulticastSet,
) -> MulticastRoute {
    MulticastRoute::Star(multi_path_mesh(mesh, labeling, mc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_topology::labeling::{hypercube_gray, mesh2d_snake};
    use mcast_topology::Hypercube;

    fn example_6_16() -> (Mesh2D, Labeling, MulticastSet) {
        let m = Mesh2D::new(6, 6);
        let l = mesh2d_snake(&m);
        let n = |x: usize, y: usize| m.node(x, y);
        let mc = MulticastSet::new(
            n(3, 2),
            [
                n(0, 0),
                n(0, 2),
                n(0, 5),
                n(1, 3),
                n(4, 5),
                n(5, 0),
                n(5, 1),
                n(5, 3),
                n(5, 4),
            ],
        );
        (m, l, mc)
    }

    #[test]
    fn section_6_2_2_partition_matches_text() {
        // The text: D_H1 = {(5,3),(5,4),(4,5)}, D_H2 = {(1,3),(0,5)},
        // D_L1 = {(5,1),(5,0)}, D_L2 = {(0,2),(0,0)}.
        let (m, l, mc) = example_6_16();
        let subs = prepare_mesh(&m, &l, &mc);
        assert_eq!(subs.len(), 4);
        let coords =
            |v: &[NodeId]| -> Vec<(usize, usize)> { v.iter().map(|&n| m.coords(n)).collect() };
        // Source (3,2) is on row 2 (even): horizontal high neighbor is
        // (4,2), vertical is (3,3); horizontal low is (2,2), vertical (3,1).
        assert_eq!(coords(&subs[0].dests), vec![(5, 3), (5, 4), (4, 5)]);
        assert_eq!(m.coords(subs[0].via), (4, 2));
        assert_eq!(coords(&subs[1].dests), vec![(1, 3), (0, 5)]);
        assert_eq!(m.coords(subs[1].via), (3, 3));
        // Low side: the horizontal low neighbor (2,2) carries the west
        // destinations, the vertical (3,1) the east ones.
        assert_eq!(coords(&subs[2].dests), vec![(0, 2), (0, 0)]);
        assert_eq!(m.coords(subs[2].via), (2, 2));
        assert_eq!(coords(&subs[3].dests), vec![(5, 1), (5, 0)]);
        assert_eq!(m.coords(subs[3].via), (3, 1));
    }

    #[test]
    fn fig_6_16_traffic_and_max_distance() {
        // Fig 6.16: the text reports 20 channels and max distance 6. The
        // faithful construction gives 21 channels (paths of 6+6+5+4;
        // hand-verified — the drawn figure saves one channel with a
        // different tie-break) and the same max distance 6. Either way
        // multi-path massively improves on dual-path's 33 channels / 18
        // hops for this example.
        let (m, l, mc) = example_6_16();
        let paths = multi_path_mesh(&m, &l, &mc);
        let total: usize = paths.iter().map(PathRoute::len).sum();
        assert_eq!(total, 21);
        let route = MulticastRoute::Star(paths);
        route.validate(&m, &mc).unwrap();
        assert_eq!(route.max_dest_hops(&mc), Some(6));
    }

    #[test]
    fn fig_6_21_hypercube_multi_path() {
        // §6.3 / Fig 6.21: 4-cube, source 1100, same destinations as the
        // dual-path example.
        let h = Hypercube::new(4);
        let l = hypercube_gray(&h);
        let mc = MulticastSet::new(0b1100, [0b0100, 0b0011, 0b0111, 0b1000, 0b1111]);
        let paths = multi_path(&h, &l, &mc);
        let route = MulticastRoute::Star(paths.clone());
        route.validate(&h, &mc).unwrap();
        // Multi-path never exceeds dual-path's channel count here.
        let dual: usize = crate::dual_path::dual_path(&h, &l, &mc)
            .iter()
            .map(PathRoute::len)
            .sum();
        let multi: usize = paths.iter().map(PathRoute::len).sum();
        assert!(multi <= dual, "multi {multi} > dual {dual}");
    }

    #[test]
    fn interval_partition_covers_high_and_low_exactly_once() {
        let h = Hypercube::new(5);
        let l = hypercube_gray(&h);
        let mc = MulticastSet::new(13, [0, 1, 5, 9, 17, 22, 28, 31, 30]);
        let subs = prepare_by_intervals(&h, &l, &mc);
        let mut all: Vec<NodeId> = subs.iter().flat_map(|s| s.dests.clone()).collect();
        all.sort_unstable();
        let mut expect = mc.destinations.clone();
        expect.sort_unstable();
        assert_eq!(all, expect);
        // Every sub-list is label-monotone away from the source.
        let l0 = l.label(mc.source);
        for s in &subs {
            let high = l.label(s.via) > l0;
            assert!(s.dests.windows(2).all(|w| {
                if high {
                    l.label(w[0]) < l.label(w[1])
                } else {
                    l.label(w[0]) > l.label(w[1])
                }
            }));
            // First destination is reachable monotonically from via.
            if high {
                assert!(l.label(s.dests[0]) >= l.label(s.via));
            } else {
                assert!(l.label(s.dests[0]) <= l.label(s.via));
            }
        }
    }

    #[test]
    fn mesh_paths_remain_label_monotone() {
        let (m, l, mc) = example_6_16();
        let l0 = l.label(mc.source);
        for p in multi_path_mesh(&m, &l, &mc) {
            let labels: Vec<usize> = p.nodes().iter().map(|&n| l.label(n)).collect();
            if labels[1] > l0 {
                assert!(labels.windows(2).all(|w| w[0] < w[1]), "{labels:?}");
            } else {
                assert!(labels.windows(2).all(|w| w[0] > w[1]), "{labels:?}");
            }
        }
    }

    #[test]
    fn all_destinations_on_one_column_single_path_each_side() {
        let m = Mesh2D::new(6, 6);
        let l = mesh2d_snake(&m);
        let mc = MulticastSet::new(m.node(3, 2), [m.node(3, 4), m.node(3, 0), m.node(3, 5)]);
        let paths = multi_path_mesh(&m, &l, &mc);
        MulticastRoute::Star(paths).validate(&m, &mc).unwrap();
    }
}
