//! Multicast routing on 3D meshes — the §4.3 direction made executable.
//!
//! Chapter 4's corollaries extend the NP-completeness results to 3D
//! meshes; Chapter 8 notes the path-based schemes apply to "any
//! multicomputer networks that have Hamilton paths" (the 3D snake
//! labeling provides one, so dual/multi/fixed-path work unchanged). This
//! module adds the two pieces that need real 3D generalization:
//!
//! * **X-first-Y-Z multicast trees** — the MT heuristic of Fig 5.5 lifted
//!   one dimension;
//! * **octant-partitioned tree routing** — §6.2.1's quadrant scheme
//!   lifted to eight octant subnetworks `N_{±X,±Y,±Z}`, each containing
//!   one signed direction per axis. Every physical direction appears in
//!   four octants, so the scheme needs **four** channels per direction —
//!   evidence for §6.3's conjecture that tree-like deadlock-free
//!   multicast needs O(n) channels between neighbors.

use mcast_topology::mesh3d::{Dir3, Mesh3D};
use mcast_topology::NodeId;

use crate::model::{MulticastSet, TreeRoute};

/// One of the eight octant subnetworks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Octant {
    /// `+X` (true) or `−X` (false).
    pub pos_x: bool,
    /// `+Y` or `−Y`.
    pub pos_y: bool,
    /// `+Z` or `−Z`.
    pub pos_z: bool,
}

impl Octant {
    /// All eight octants in lexicographic (x, y, z) sign order.
    pub fn all() -> [Octant; 8] {
        let mut out = [Octant {
            pos_x: false,
            pos_y: false,
            pos_z: false,
        }; 8];
        for (i, o) in out.iter_mut().enumerate() {
            o.pos_x = i & 4 != 0;
            o.pos_y = i & 2 != 0;
            o.pos_z = i & 1 != 0;
        }
        out
    }

    /// Index 0..8 (for array storage).
    pub fn index(self) -> usize {
        (usize::from(self.pos_x) << 2) | (usize::from(self.pos_y) << 1) | usize::from(self.pos_z)
    }

    /// The three channel directions this octant's subnetwork contains.
    pub fn directions(self) -> [Dir3; 3] {
        [
            if self.pos_x { Dir3::PosX } else { Dir3::NegX },
            if self.pos_y { Dir3::PosY } else { Dir3::NegY },
            if self.pos_z { Dir3::PosZ } else { Dir3::NegZ },
        ]
    }

    /// Whether a channel of direction `d` belongs to this subnetwork.
    pub fn contains_dir(self, d: Dir3) -> bool {
        self.directions().contains(&d)
    }

    /// The channel class (0..4) of this octant's copy of a physical
    /// channel in direction `d`: each direction appears in exactly four
    /// octants, one class each (indexed by the signs of the *other two*
    /// axes).
    ///
    /// # Panics
    /// Panics if `d` is not one of this octant's directions.
    pub fn channel_class(self, d: Dir3) -> u8 {
        assert!(self.contains_dir(d), "{self:?} has no {d:?} channels");
        let bits: [bool; 2] = match d {
            Dir3::PosX | Dir3::NegX => [self.pos_y, self.pos_z],
            Dir3::PosY | Dir3::NegY => [self.pos_x, self.pos_z],
            Dir3::PosZ | Dir3::NegZ => [self.pos_x, self.pos_y],
        };
        (u8::from(bits[0]) << 1) | u8::from(bits[1])
    }
}

/// The octant a destination falls into relative to `u0`, with half-open
/// tie-breaking generalizing the 2D convention (DESIGN.md §5): ties on an
/// axis inherit the *next* axis's decision, cyclically, so every node
/// except `u0` belongs to exactly one octant and is routable with that
/// octant's three directions.
pub fn octant_of(mesh: &Mesh3D, u0: NodeId, dest: NodeId) -> Option<Octant> {
    if dest == u0 {
        return None;
    }
    let (x0, y0, z0) = mesh.coords(u0);
    let (x, y, z) = mesh.coords(dest);
    // Signs with ties resolved by the first differing later coordinate;
    // any consistent rule works because a tied axis needs no movement.
    let sx = if x != x0 { x > x0 } else { (y, z) > (y0, z0) };
    let sy = if y != y0 { y > y0 } else { (z, x) > (z0, x0) };
    let sz = if z != z0 { z > z0 } else { (x, y) > (x0, y0) };
    Some(Octant {
        pos_x: sx,
        pos_y: sy,
        pos_z: sz,
    })
}

/// Splits destinations by octant ([`Octant::index`] order).
pub fn split_by_octant(mesh: &Mesh3D, u0: NodeId, dests: &[NodeId]) -> [Vec<NodeId>; 8] {
    let mut out: [Vec<NodeId>; 8] = Default::default();
    for &d in dests {
        if let Some(o) = octant_of(mesh, u0, d) {
            out[o.index()].push(d);
        }
    }
    out
}

/// One octant's sub-multicast tree with its subnetwork tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OctantTree {
    /// The subnetwork this tree's channels live in.
    pub octant: Octant,
    /// The tree, rooted at the source.
    pub tree: TreeRoute,
}

/// X-first-Y-Z multicast tree within one octant: advance along the
/// octant's X direction to the nearest destination plane, split off a
/// 2D (Y-Z) subtree there, and continue.
fn octant_tree(mesh: &Mesh3D, source: NodeId, dests: &[NodeId], o: Octant) -> TreeRoute {
    let [dx, dy, dz] = o.directions();
    let mut tree = TreeRoute::new(source);
    // Work items: (node, dests, phase) with phase 0 = X, 1 = Y, 2 = Z.
    let mut work: Vec<(NodeId, Vec<NodeId>, u8)> = vec![(source, dests.to_vec(), 0)];
    while let Some((node, dests, phase)) = work.pop() {
        if dests.is_empty() {
            continue;
        }
        let coord = |n: NodeId, axis: u8| {
            let (x, y, z) = mesh.coords(n);
            [x, y, z][axis as usize]
        };
        let dir_of = |axis: u8| [dx, dy, dz][axis as usize];
        // Work items are only queued with phase < 3: destinations that
        // match the local coordinate on every axis equal the local node
        // and are filtered before re-queuing.
        debug_assert!(phase < 3, "exhausted axes with destinations remaining");
        let axis = phase;
        let here = coord(node, axis);
        // Destinations matching the local coordinate on this axis stay
        // for the next axis; the rest continue along this axis.
        let (stay, go): (Vec<NodeId>, Vec<NodeId>) =
            dests.iter().partition(|&&d| coord(d, axis) == here);
        let stay: Vec<NodeId> = stay.into_iter().filter(|&d| d != node).collect();
        if !stay.is_empty() {
            work.push((node, stay, axis + 1));
        }
        if !go.is_empty() {
            let next = mesh
                .step(node, dir_of(axis))
                .expect("a destination lies further along the octant direction");
            if !tree.contains(next) {
                tree.attach(node, next);
            }
            work.push((next, go, axis));
        }
    }
    tree
}

/// Octant-partitioned deadlock-free tree multicast for 3D meshes: up to
/// eight trees, one per octant subnetwork (requires 4 channel classes).
pub fn octant_multicast(mesh: &Mesh3D, mc: &MulticastSet) -> Vec<OctantTree> {
    split_by_octant(mesh, mc.source, &mc.destinations)
        .into_iter()
        .enumerate()
        .filter(|(_, d)| !d.is_empty())
        .map(|(i, dests)| {
            let octant = Octant::all()[i];
            OctantTree {
                octant,
                tree: octant_tree(mesh, mc.source, &dests, octant),
            }
        })
        .collect()
}

/// Total traffic across octant trees.
pub fn traffic(parts: &[OctantTree]) -> usize {
    parts.iter().map(|p| p.tree.traffic()).sum()
}

/// Plain X-first-Y-Z multicast tree (MT model) for 3D meshes — the
/// Fig 5.5 heuristic lifted one dimension (deadlock-prone without the
/// octant channel classes, like its 2D counterpart).
pub fn xyz_first_tree(mesh: &Mesh3D, mc: &MulticastSet) -> TreeRoute {
    let mut tree = TreeRoute::new(mc.source);
    let mut work: Vec<(NodeId, Vec<NodeId>)> = vec![(mc.source, mc.destinations.clone())];
    while let Some((node, dests)) = work.pop() {
        let (x0, y0, z0) = mesh.coords(node);
        let mut by_dir: std::collections::BTreeMap<usize, Vec<NodeId>> = Default::default();
        for &d in &dests {
            if d == node {
                continue;
            }
            let (x, y, z) = mesh.coords(d);
            let dir = if x > x0 {
                Dir3::PosX
            } else if x < x0 {
                Dir3::NegX
            } else if y > y0 {
                Dir3::PosY
            } else if y < y0 {
                Dir3::NegY
            } else if z > z0 {
                Dir3::PosZ
            } else {
                Dir3::NegZ
            };
            by_dir.entry(dir as usize).or_default().push(d);
        }
        for (dir_idx, sub) in by_dir {
            let dir = Dir3::ALL[dir_idx];
            let next = mesh
                .step(node, dir)
                .expect("destination lies in this direction");
            if !tree.contains(next) {
                tree.attach(node, next);
            }
            work.push((next, sub));
        }
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_topology::Topology;

    fn mesh() -> Mesh3D {
        Mesh3D::new(4, 4, 4)
    }

    fn sets(m: &Mesh3D, seed: usize, k: usize) -> MulticastSet {
        let n = m.num_nodes();
        MulticastSet::new((seed * 7) % n, (0..k).map(|i| (seed * 13 + i * 11 + 3) % n))
    }

    #[test]
    fn octants_partition_all_non_source_nodes() {
        let m = mesh();
        for u0 in 0..m.num_nodes() {
            let mut count = 0;
            for d in 0..m.num_nodes() {
                match octant_of(&m, u0, d) {
                    None => assert_eq!(d, u0),
                    Some(o) => {
                        // Routable: each axis's needed movement matches
                        // the octant's sign (or no movement needed).
                        let (x0, y0, z0) = m.coords(u0);
                        let (x, y, z) = m.coords(d);
                        if x != x0 {
                            assert_eq!(x > x0, o.pos_x, "u0={u0} d={d}");
                        }
                        if y != y0 {
                            assert_eq!(y > y0, o.pos_y, "u0={u0} d={d}");
                        }
                        if z != z0 {
                            assert_eq!(z > z0, o.pos_z, "u0={u0} d={d}");
                        }
                        count += 1;
                    }
                }
            }
            assert_eq!(count, m.num_nodes() - 1);
        }
    }

    #[test]
    fn channel_classes_distinct_within_direction() {
        // The four octants containing a direction get four distinct
        // classes.
        for d in Dir3::ALL {
            let mut classes: Vec<u8> = Octant::all()
                .into_iter()
                .filter(|o| o.contains_dir(d))
                .map(|o| o.channel_class(d))
                .collect();
            classes.sort_unstable();
            assert_eq!(classes, vec![0, 1, 2, 3], "{d:?}");
        }
    }

    #[test]
    fn octant_trees_reach_all_destinations_via_shortest_paths() {
        let m = mesh();
        for seed in 0..40 {
            let mc = sets(&m, seed, 8);
            let parts = octant_multicast(&m, &mc);
            let route = crate::model::MulticastRoute::Forest(
                parts.iter().map(|p| p.tree.clone()).collect(),
            );
            route
                .validate(&m, &mc)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            for &d in &mc.destinations {
                assert_eq!(
                    route.hops_to(d),
                    Some(m.distance(mc.source, d)),
                    "seed {seed} dest {d}"
                );
            }
        }
    }

    #[test]
    fn octant_trees_stay_inside_their_subnetwork() {
        let m = mesh();
        for seed in 0..20 {
            let mc = sets(&m, seed, 10);
            for part in octant_multicast(&m, &mc) {
                for (p, c) in part.tree.edges() {
                    let dir = Dir3::ALL
                        .into_iter()
                        .find(|&d| m.step(p, d) == Some(c))
                        .expect("edge is a link");
                    assert!(part.octant.contains_dir(dir), "seed {seed}: {dir:?}");
                }
            }
        }
    }

    #[test]
    fn xyz_first_tree_is_shortest_path_mt() {
        let m = mesh();
        for seed in 0..40 {
            let mc = sets(&m, seed, 9);
            let t = xyz_first_tree(&m, &mc);
            t.validate(&m).unwrap();
            for &d in &mc.destinations {
                assert_eq!(t.depth_of(d), Some(m.distance(mc.source, d)), "seed {seed}");
            }
        }
    }

    #[test]
    fn octant_subnetworks_are_acyclic() {
        // Channels of one octant all point in three fixed signed
        // directions: any walk strictly increases the signed coordinate
        // sum, so no cycle exists.
        let o = Octant {
            pos_x: true,
            pos_y: false,
            pos_z: true,
        };
        let m = mesh();
        // Verify the potential argument on every contained channel.
        let potential = |n: NodeId| {
            let (x, y, z) = m.coords(n);
            let sx = if o.pos_x { x as isize } else { -(x as isize) };
            let sy = if o.pos_y { y as isize } else { -(y as isize) };
            let sz = if o.pos_z { z as isize } else { -(z as isize) };
            sx + sy + sz
        };
        for c in m.channels() {
            let dir = Dir3::ALL
                .into_iter()
                .find(|&d| m.step(c.from, d) == Some(c.to))
                .unwrap();
            if o.contains_dir(dir) {
                assert!(potential(c.to) > potential(c.from));
            }
        }
    }

    #[test]
    fn dual_path_also_works_on_3d_snake() {
        // The generic path-based schemes cover 3D for free (§8.1).
        use mcast_topology::labeling::mesh3d_snake;
        let m = mesh();
        let l = mesh3d_snake(&m);
        for seed in 0..20 {
            let mc = sets(&m, seed, 8);
            let route =
                crate::model::MulticastRoute::Star(crate::dual_path::dual_path(&m, &l, &mc));
            route.validate(&m, &mc).unwrap();
        }
    }
}
