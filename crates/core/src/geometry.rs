//! Topology-specific routing geometry: deterministic shortest paths and
//! the "nearest node on any shortest path" computation of §5.2.
//!
//! The greedy ST algorithm needs, for nodes `s`, `t`, `u`, the node `v`
//! closest to `u` among all nodes lying on *some* shortest `s–t` path
//! (the set `P_e` of Fig 5.4). The dissertation gives O(1) closed forms for
//! 2D meshes (clamp into the bounding box) and hypercubes (keep agreeing
//! bits, take `u`'s bits where `s` and `t` differ); this module provides
//! those plus a BFS fallback so the algorithms run on any topology.

use mcast_topology::graph::{bfs_distances, bfs_path};
use mcast_topology::{Hypercube, Mesh2D, Mesh3D, NodeId, Topology};

/// Routing geometry used by the Chapter 5 heuristics.
///
/// The default methods are correct on any connected [`Topology`] but cost
/// O(N) per query; the mesh and hypercube implementations override them
/// with the dissertation's constant-time closed forms.
pub trait RoutingGeometry: Topology {
    /// A deterministic shortest path from `s` to `t` (inclusive), the
    /// "underlying shortest path routing algorithm" used to place bypass
    /// nodes: XY routing on meshes, ascending-dimension E-cube on
    /// hypercubes, BFS elsewhere.
    fn shortest_path(&self, s: NodeId, t: NodeId) -> Vec<NodeId> {
        bfs_path(self, s, t).expect("topology must be connected")
    }

    /// The node nearest to `u` among nodes on any shortest `s–t` path
    /// (`argmin_{v ∈ P_(s,t)} d(u, v)`), with deterministic tie-breaking.
    fn nearest_on_shortest_paths(&self, s: NodeId, t: NodeId, u: NodeId) -> NodeId {
        let du = bfs_distances(self, u);
        let ds = bfs_distances(self, s);
        let dt = bfs_distances(self, t);
        let dst = ds[t];
        (0..self.num_nodes())
            .filter(|&v| ds[v] + dt[v] == dst)
            .min_by_key(|&v| (du[v], v))
            .expect("s and t are always on their own shortest paths")
    }
}

impl RoutingGeometry for Mesh2D {
    /// XY (X-first) routing.
    fn shortest_path(&self, s: NodeId, t: NodeId) -> Vec<NodeId> {
        let (sx, sy) = self.coords(s);
        let (tx, ty) = self.coords(t);
        let mut path = Vec::with_capacity(self.distance(s, t) + 1);
        let mut x = sx;
        path.push(s);
        while x != tx {
            x = if tx > x { x + 1 } else { x - 1 };
            path.push(self.node(x, sy));
        }
        let mut y = sy;
        while y != ty {
            y = if ty > y { y + 1 } else { y - 1 };
            path.push(self.node(tx, y));
        }
        path
    }

    /// §5.2's clamp: `v = (clamp(u.x, [min.x, max.x]), clamp(u.y, …))`.
    fn nearest_on_shortest_paths(&self, s: NodeId, t: NodeId, u: NodeId) -> NodeId {
        let (sx, sy) = self.coords(s);
        let (tx, ty) = self.coords(t);
        let (ux, uy) = self.coords(u);
        let vx = ux.clamp(sx.min(tx), sx.max(tx));
        let vy = uy.clamp(sy.min(ty), sy.max(ty));
        self.node(vx, vy)
    }
}

impl RoutingGeometry for Hypercube {
    /// E-cube routing: correct differing bits in ascending dimension
    /// order.
    fn shortest_path(&self, s: NodeId, t: NodeId) -> Vec<NodeId> {
        let mut path = vec![s];
        let mut cur = s;
        for d in self.differing_dims(s, t) {
            cur = self.flip(cur, d);
            path.push(cur);
        }
        path
    }

    /// §5.2's closed form: `v_j = s_j` where `s_j == t_j`, else `u_j`.
    fn nearest_on_shortest_paths(&self, s: NodeId, t: NodeId, u: NodeId) -> NodeId {
        let free = s ^ t; // bits where s and t differ: u's choice
        (u & free) | (s & !free)
    }
}

impl RoutingGeometry for Mesh3D {
    /// XYZ dimension-ordered routing.
    fn shortest_path(&self, s: NodeId, t: NodeId) -> Vec<NodeId> {
        let (sx, sy, sz) = self.coords(s);
        let (tx, ty, tz) = self.coords(t);
        let mut path = vec![s];
        let (mut x, mut y, mut z) = (sx, sy, sz);
        while x != tx {
            x = if tx > x { x + 1 } else { x - 1 };
            path.push(self.node(x, y, z));
        }
        while y != ty {
            y = if ty > y { y + 1 } else { y - 1 };
            path.push(self.node(x, y, z));
        }
        while z != tz {
            z = if tz > z { z + 1 } else { z - 1 };
            path.push(self.node(x, y, z));
        }
        path
    }

    /// Per-axis clamp, the straightforward 3D extension of §5.2.
    fn nearest_on_shortest_paths(&self, s: NodeId, t: NodeId, u: NodeId) -> NodeId {
        let (sx, sy, sz) = self.coords(s);
        let (tx, ty, tz) = self.coords(t);
        let (ux, uy, uz) = self.coords(u);
        self.node(
            ux.clamp(sx.min(tx), sx.max(tx)),
            uy.clamp(sy.min(ty), sy.max(ty)),
            uz.clamp(sz.min(tz), sz.max(tz)),
        )
    }
}

impl RoutingGeometry for mcast_topology::GridGraph {}
impl RoutingGeometry for mcast_topology::KAryNCube {}
impl RoutingGeometry for mcast_topology::CustomGraph {}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_topology::graph::bfs_distance;

    fn check_nearest<T: RoutingGeometry>(topo: &T) {
        // The closed form must match the BFS definition on every triple.
        let n = topo.num_nodes();
        for s in 0..n {
            for t in 0..n {
                let ds = bfs_distances(topo, s);
                let dt = bfs_distances(topo, t);
                for u in 0..n {
                    let v = topo.nearest_on_shortest_paths(s, t, u);
                    // v is on a shortest s-t path:
                    assert_eq!(ds[v] + dt[v], ds[t], "s={s} t={t} u={u} v={v}");
                    // and no node on a shortest path is closer to u:
                    let best = (0..n)
                        .filter(|&w| ds[w] + dt[w] == ds[t])
                        .map(|w| bfs_distance(topo, u, w).unwrap())
                        .min()
                        .unwrap();
                    assert_eq!(bfs_distance(topo, u, v).unwrap(), best, "s={s} t={t} u={u}");
                }
            }
        }
    }

    #[test]
    fn mesh_nearest_matches_definition() {
        check_nearest(&Mesh2D::new(4, 3));
    }

    #[test]
    fn hypercube_nearest_matches_definition() {
        check_nearest(&Hypercube::new(3));
    }

    #[test]
    fn mesh3d_nearest_matches_definition() {
        check_nearest(&Mesh3D::new(2, 3, 2));
    }

    #[test]
    fn xy_path_is_shortest_and_valid() {
        let m = Mesh2D::new(6, 6);
        for s in 0..m.num_nodes() {
            for t in 0..m.num_nodes() {
                let p = m.shortest_path(s, t);
                assert_eq!(p.len() - 1, m.distance(s, t));
                assert!(mcast_topology::graph::is_walk(&m, &p));
                assert_eq!(p[0], s);
                assert_eq!(*p.last().unwrap(), t);
            }
        }
    }

    #[test]
    fn ecube_path_is_shortest_and_valid() {
        let h = Hypercube::new(4);
        for s in 0..h.num_nodes() {
            for t in 0..h.num_nodes() {
                let p = h.shortest_path(s, t);
                assert_eq!(p.len() - 1, h.distance(s, t));
                assert!(mcast_topology::graph::is_walk(&h, &p));
            }
        }
    }

    #[test]
    fn grid_graph_fallback_works() {
        let g = mcast_topology::grid::example_4_1_grid();
        for s in 0..g.num_nodes() {
            for t in 0..g.num_nodes() {
                let p = g.shortest_path(s, t);
                assert_eq!(p.len() - 1, bfs_distance(&g, s, t).unwrap());
            }
        }
        check_nearest(&g);
    }
}
