//! Distributed execution of the path-based routing algorithms, exactly as
//! the dissertation's node programs specify them (Figs 5.2, 6.12): the
//! message carries a sorted destination list in its header; every node
//! that receives the message pops its own address if it leads the list,
//! delivers a copy locally, and forwards toward the (new) first
//! destination using only *local* information — the neighbor labels.
//!
//! The library's planners compute the same routes centrally (the routing
//! decision at each hop depends only on the header, so the whole route is
//! determined at the source). This module executes the genuinely
//! distributed version, records the header at every hop, and the test
//! suite proves the two agree — plus it quantifies the header overhead
//! (addresses carried per hop) that §2.3.1 discusses for source vs
//! distributed routing.

use mcast_topology::{HamiltonCycle, Labeling, NodeId, Topology};

use crate::model::{MulticastSet, PathRoute};

/// One hop of a distributed trace: the node the message arrived at and
/// the header (destination list) it carried *on arrival*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HopRecord {
    /// Node holding the message.
    pub node: NodeId,
    /// Destination addresses in the header after local processing (the
    /// list forwarded to the next node).
    pub header: Vec<NodeId>,
    /// Whether a copy was delivered to the local processor here.
    pub delivered: bool,
}

/// The full trace of one distributed path message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathTrace {
    /// Per-hop records, source first.
    pub hops: Vec<HopRecord>,
}

impl PathTrace {
    /// The node-visiting sequence.
    pub fn path(&self) -> PathRoute {
        PathRoute::new(self.hops.iter().map(|h| h.node).collect())
    }

    /// The largest header (in addresses) carried on any hop — the wire
    /// overhead of distributed routing.
    pub fn max_header_len(&self) -> usize {
        self.hops.iter().map(|h| h.header.len()).max().unwrap_or(0)
    }

    /// Total address-hops: Σ header length over forwarded hops (each
    /// address occupies header flits on every channel it rides). The
    /// recorded header is the post-processing list, which is exactly what
    /// rides the channel out of each node; the final hop forwards
    /// nothing.
    pub fn address_hops(&self) -> usize {
        self.hops.iter().rev().skip(1).map(|h| h.header.len()).sum()
    }
}

/// Executes the dual-path node program (Fig 6.12) for one sorted
/// destination list starting at `source`, using the label-based routing
/// function as each node's local decision.
pub fn run_label_path<T: Topology + ?Sized>(
    topo: &T,
    labeling: &Labeling,
    source: NodeId,
    sorted_dests: &[NodeId],
) -> PathTrace {
    let mut hops = Vec::new();
    let mut header: Vec<NodeId> = sorted_dests.to_vec();
    let mut node = source;
    loop {
        // Step 1: if the local address leads the list, deliver and pop.
        let delivered = header.first() == Some(&node);
        if delivered {
            header.remove(0);
        }
        hops.push(HopRecord {
            node,
            header: header.clone(),
            delivered,
        });
        // Step 2: empty header — done.
        let Some(&next_dest) = header.first() else {
            break;
        };
        // Step 3: forward toward the first destination with R.
        node = crate::routing_fn::r_step(topo, labeling, node, next_dest);
    }
    PathTrace { hops }
}

/// Executes the sorted-MP node program (Fig 5.2) the same way, with the
/// `h`/`f` machinery of a fixed Hamiltonian cycle.
pub fn run_sorted_mp<T: Topology + ?Sized>(
    topo: &T,
    cycle: &HamiltonCycle,
    mc: &MulticastSet,
) -> PathTrace {
    let sorted = crate::sorted_mp::prepare(topo, cycle, mc);
    let mut hops = Vec::new();
    let mut header = sorted;
    let mut node = mc.source;
    loop {
        let delivered = header.first() == Some(&node);
        if delivered {
            header.remove(0);
        }
        hops.push(HopRecord {
            node,
            header: header.clone(),
            delivered,
        });
        let Some(&next_dest) = header.first() else {
            break;
        };
        node = crate::sorted_mp::route_step(topo, cycle, mc.source, node, next_dest);
    }
    PathTrace { hops }
}

/// Executes the full dual-path algorithm distributedly: message
/// preparation at the source (Fig 6.11), then one distributed message per
/// half. Returns `(high trace, low trace)` (either may be `None`).
pub fn run_dual_path<T: Topology + ?Sized>(
    topo: &T,
    labeling: &Labeling,
    mc: &MulticastSet,
) -> (Option<PathTrace>, Option<PathTrace>) {
    let (high, low) = crate::dual_path::prepare(labeling, mc);
    let h = (!high.is_empty()).then(|| run_label_path(topo, labeling, mc.source, &high));
    let l = (!low.is_empty()).then(|| run_label_path(topo, labeling, mc.source, &low));
    (h, l)
}

/// The distributed greedy-ST execution trace (Fig 5.3/5.4 run at every
/// node): each transmission, the replicate nodes (which rebuild the
/// Steiner tree from their header sublist, §5.2's O(k²) implementation),
/// and the local deliveries.
#[derive(Debug, Clone, Default)]
pub struct StTrace {
    /// Every channel transmission `(from, to)` in send order.
    pub sends: Vec<(NodeId, NodeId)>,
    /// Nodes that ran the tree-construction (replication) step.
    pub replicate_nodes: Vec<NodeId>,
    /// Destinations in delivery order.
    pub delivered: Vec<NodeId>,
}

impl StTrace {
    /// Total traffic (channel transmissions).
    pub fn traffic(&self) -> usize {
        self.sends.len()
    }
}

/// Executes the greedy-ST protocol distributedly: the source sorts the
/// destinations (Fig 5.3); every replicate node rebuilds the Steiner tree
/// over its header sublist, splits the list per son subtree, and forwards
/// one copy toward each son (Fig 5.4); bypass nodes just relay (step 1).
pub fn run_greedy_st<T: crate::geometry::RoutingGeometry + ?Sized>(
    topo: &T,
    mc: &MulticastSet,
) -> StTrace {
    let sorted = crate::greedy_st::prepare(topo, mc);
    let mut trace = StTrace::default();
    if sorted.is_empty() {
        return trace;
    }
    // Work items: (current node w, target head u, ordered dest sublist
    // *excluding* u).
    let mut work: Vec<(NodeId, NodeId, Vec<NodeId>)> = vec![(mc.source, mc.source, sorted)];
    let mut fuel = 64 * (mc.k() + 1) * topo.num_nodes();
    while let Some((w, u, list)) = work.pop() {
        fuel = fuel
            .checked_sub(1)
            .expect("distributed ST failed to terminate");
        if w != u {
            // Step 1: bypass node — relay one hop toward u.
            let next = topo.shortest_path(w, u)[1];
            trace.sends.push((w, next));
            work.push((next, u, list));
            continue;
        }
        // Arrived at the head: deliver locally if it is a destination.
        if mc.destinations.contains(&w) && !trace.delivered.contains(&w) {
            trace.delivered.push(w);
        }
        let rest: Vec<NodeId> = list.into_iter().filter(|&d| d != w).collect();
        if rest.is_empty() {
            continue; // step 2
        }
        // Steps 3–4: rebuild the Steiner tree over the carried order.
        trace.replicate_nodes.push(w);
        let tree = crate::greedy_st::build_tree(topo, w, &rest);
        // Step 5: sons of w and their subtree destination sublists.
        let edges = tree.edges().to_vec();
        let sons: Vec<NodeId> = edges
            .iter()
            .filter(|&&(s, _)| s == w)
            .map(|&(_, t)| t)
            .collect();
        for son in sons {
            // Collect the subtree vertex set under `son`.
            let mut subtree = vec![son];
            let mut grew = true;
            while grew {
                grew = false;
                for &(s, t) in &edges {
                    if subtree.contains(&s) && !subtree.contains(&t) {
                        subtree.push(t);
                        grew = true;
                    }
                }
            }
            let d_i: Vec<NodeId> = rest
                .iter()
                .copied()
                .filter(|d| subtree.contains(d))
                .collect();
            // Step 6: forward toward the son with its sublist.
            let next = topo.shortest_path(w, son)[1];
            trace.sends.push((w, next));
            work.push((next, son, d_i));
        }
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_topology::hamiltonian::mesh2d_cycle;
    use mcast_topology::labeling::{hypercube_gray, mesh2d_snake};
    use mcast_topology::{Hypercube, Mesh2D};

    #[test]
    fn distributed_dual_path_equals_planned_route() {
        let m = Mesh2D::new(6, 6);
        let l = mesh2d_snake(&m);
        for seed in 0..30usize {
            let dests: Vec<NodeId> = (0..7).map(|i| (seed * 17 + i * 11 + 2) % 36).collect();
            let mc = MulticastSet::new((seed * 5) % 36, dests);
            let planned = crate::dual_path::dual_path(&m, &l, &mc);
            let (high, low) = run_dual_path(&m, &l, &mc);
            let traces: Vec<PathRoute> = [high, low]
                .into_iter()
                .flatten()
                .map(|t| t.path())
                .collect();
            assert_eq!(traces.len(), planned.len(), "seed {seed}");
            for (a, b) in traces.iter().zip(&planned) {
                assert_eq!(a.nodes(), b.nodes(), "seed {seed}");
            }
        }
    }

    #[test]
    fn distributed_sorted_mp_equals_planned_route() {
        let m = Mesh2D::new(4, 4);
        let c = mesh2d_cycle(&m);
        let mc = MulticastSet::new(9, [0, 1, 6, 12]);
        let trace = run_sorted_mp(&m, &c, &mc);
        let planned = crate::sorted_mp::sorted_mp(&m, &c, &mc);
        assert_eq!(trace.path().nodes(), planned.nodes());
    }

    #[test]
    fn header_shrinks_monotonically_and_empties() {
        let h = Hypercube::new(5);
        let l = hypercube_gray(&h);
        let mc = MulticastSet::new(7, [0, 31, 12, 20, 25]);
        let (high, low) = run_dual_path(&h, &l, &mc);
        for trace in [high, low].into_iter().flatten() {
            let lens: Vec<usize> = trace.hops.iter().map(|hp| hp.header.len()).collect();
            assert!(lens.windows(2).all(|w| w[1] <= w[0]), "{lens:?}");
            assert_eq!(*lens.last().unwrap(), 0, "header must be consumed");
            // Delivered exactly at destinations.
            let delivered: Vec<NodeId> = trace
                .hops
                .iter()
                .filter(|hp| hp.delivered)
                .map(|hp| hp.node)
                .collect();
            for d in &delivered {
                assert!(mc.destinations.contains(d));
            }
        }
    }

    #[test]
    fn distributed_st_delivers_all_destinations_once() {
        let m = Mesh2D::new(8, 8);
        for seed in 0..25usize {
            let dests: Vec<NodeId> = (0..6).map(|i| (seed * 19 + i * 7 + 2) % 64).collect();
            let mc = MulticastSet::new((seed * 3) % 64, dests);
            let trace = run_greedy_st(&m, &mc);
            let mut got = trace.delivered.clone();
            got.sort_unstable();
            let mut want = mc.destinations.clone();
            want.sort_unstable();
            assert_eq!(got, want, "seed {seed}");
        }
    }

    #[test]
    fn distributed_st_matches_section_5_4_example() {
        // §5.4: the source [2,7] outputs D_1 toward the junction [2,5];
        // [2,6] is a bypass node; [2,5] replicates. Our execution must
        // show that structure and traffic equal to the virtual tree's.
        let m = Mesh2D::new(8, 8);
        let n = |x: usize, y: usize| m.node(x, y);
        let mc = MulticastSet::new(n(2, 7), [n(0, 5), n(2, 3), n(4, 1), n(6, 3), n(7, 4)]);
        let trace = run_greedy_st(&m, &mc);
        assert!(
            trace.replicate_nodes.contains(&n(2, 5)),
            "junction [2,5] replicates"
        );
        assert_eq!(
            trace.sends[0],
            (n(2, 7), n(2, 6)),
            "first hop through bypass [2,6]"
        );
        // "In both implementations, the amount of traffic generated is
        // the same": the distributed execution costs what the
        // source-computed tree costs.
        let source_tree = crate::greedy_st::greedy_st(&m, &mc);
        assert_eq!(trace.traffic(), source_tree.traffic(&m));
        // The replicate-node count is bounded by k − 1 (Corollary 5.2).
        assert!(trace.replicate_nodes.len() <= mc.k());
    }

    #[test]
    fn distributed_st_on_hypercube() {
        let h = Hypercube::new(6);
        let mc = MulticastSet::new(0b000110, [0b010101, 0b000001, 0b001101, 0b101001, 0b110001]);
        let trace = run_greedy_st(&h, &mc);
        let mut got = trace.delivered.clone();
        got.sort_unstable();
        let mut want = mc.destinations.clone();
        want.sort_unstable();
        assert_eq!(got, want);
        // Traffic stays within the static tree's (rebuilds from a new
        // root can only match or differ slightly; it must never balloon).
        let source_tree = crate::greedy_st::greedy_st(&h, &mc);
        assert!(trace.traffic() <= source_tree.traffic(&h) * 2);
    }

    #[test]
    fn header_overhead_bounded_by_k() {
        let m = Mesh2D::new(8, 8);
        let l = mesh2d_snake(&m);
        let mc = MulticastSet::new(0, (1..=12).map(|i| i * 5 % 64));
        let (high, _) = run_dual_path(&m, &l, &mc);
        let t = high.expect("high side nonempty");
        assert!(t.max_header_len() <= mc.k());
        assert!(t.address_hops() <= mc.k() * t.hops.len());
    }
}
