//! Multicast routing for multicomputer networks — the primary
//! contribution of X. Lin's dissertation *Multicast Communication in
//! Multicomputer Networks* (Lin & Ni, ICPP 1990), reimplemented as a Rust
//! library.
//!
//! # What's here
//!
//! * **Models** ([`model`]): the multicast path / cycle / Steiner tree /
//!   multicast tree / multicast star route shapes of Chapter 3, with
//!   uniform traffic and latency metrics.
//! * **Chapter 5 heuristics**: [`sorted_mp`] (MP/MC over a fixed
//!   Hamiltonian cycle), [`greedy_st`] (Steiner trees via
//!   nearest-point-on-shortest-path insertion), [`xfirst`] and
//!   [`divided_greedy`] (multicast trees for 2D meshes), plus the
//!   [`kmb`] and [`len`] baselines the dissertation compares against.
//! * **Chapter 6 deadlock-free wormhole schemes**: [`dc_xfirst_tree`]
//!   (double-channel quadrant trees), and the path-based [`dual_path`],
//!   [`multi_path`] and [`fixed_path`] algorithms built on the
//!   label-monotone routing function [`routing_fn`] — the first
//!   deadlock-free multicast wormhole routing algorithms proposed.
//! * **Chapter 4 machinery**: [`exact`] optimal solvers (to measure
//!   heuristic gaps) and the executable NP-completeness [`reduction`]
//!   constructions with machine-checked structural lemmas.
//!
//! # Quick example
//!
//! ```
//! use mcast_core::model::MulticastSet;
//! use mcast_core::dual_path::dual_path;
//! use mcast_topology::labeling::mesh2d_snake;
//! use mcast_topology::Mesh2D;
//!
//! let mesh = Mesh2D::new(6, 6);
//! let labeling = mesh2d_snake(&mesh);
//! let mc = MulticastSet::new(mesh.node(3, 2), [mesh.node(0, 0), mesh.node(5, 4)]);
//! let paths = dual_path(&mesh, &labeling, &mc);
//! assert!(paths.len() <= 2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod broadcast;
pub mod dc_xfirst_tree;
pub mod distributed;
pub mod divided_greedy;
pub mod dual_path;
pub mod error;
pub mod exact;
pub mod fault_route;
pub mod fixed_path;
pub mod geometry;
pub mod greedy_st;
pub mod kmb;
pub mod len;
pub mod mesh3d_multicast;
pub mod model;
pub mod multi_path;
pub mod reduction;
pub mod routing_fn;
pub mod sorted_mp;
pub mod turn_model;
pub mod vc_multi_path;
pub mod xfirst;

pub use error::RouteError;
pub use fault_route::{FaultRoutedPaths, WormKind};
pub use geometry::RoutingGeometry;
pub use model::{MulticastRoute, MulticastSet, PathRoute, TreeRoute};
