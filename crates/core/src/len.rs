//! The LEN greedy multicast-tree heuristic for hypercubes (Lan,
//! Esfahanian & Ni [20]), the comparison baseline of Fig 7.4.
//!
//! At every node holding a residual destination set, LEN repeatedly picks
//! the dimension covering the most destinations (the largest column sum of
//! the relative-address matrix) and forwards one message copy across it
//! with exactly those destinations. Every source→destination path is a
//! shortest path (each hop clears one bit of the relative address), so LEN
//! solves the *multicast tree* (MT) model; the dissertation's greedy ST
//! trades that property away for lower traffic.

use mcast_topology::{Hypercube, NodeId};

use crate::model::{MulticastSet, TreeRoute};

/// One routing decision of LEN at `node` for destination set `dests`:
/// partitions `dests` into per-dimension forwarding sets, greedily by
/// descending column sum. Returns `(dimension, subset)` pairs.
pub fn len_partition(cube: &Hypercube, node: NodeId, dests: &[NodeId]) -> Vec<(u32, Vec<NodeId>)> {
    let mut remaining: Vec<NodeId> = dests.iter().copied().filter(|&d| d != node).collect();
    let mut out = Vec::new();
    while !remaining.is_empty() {
        // Column sums of the relative address matrix.
        let best_dim = (0..cube.dim())
            .max_by_key(|&j| {
                (
                    remaining
                        .iter()
                        .filter(|&&d| (d ^ node) >> j & 1 == 1)
                        .count(),
                    // Tie-break toward lower dimensions, deterministically.
                    cube.dim() - j,
                )
            })
            .expect("cube has at least one dimension");
        let (taken, rest): (Vec<NodeId>, Vec<NodeId>) = remaining
            .iter()
            .partition(|&&d| (d ^ node) >> best_dim & 1 == 1);
        debug_assert!(!taken.is_empty(), "best column sum must be positive");
        out.push((best_dim, taken));
        remaining = rest;
    }
    out
}

/// Runs LEN from the multicast source, returning the complete multicast
/// tree.
pub fn len_tree(cube: &Hypercube, mc: &MulticastSet) -> TreeRoute {
    let mut tree = TreeRoute::new(mc.source);
    let mut work: Vec<(NodeId, Vec<NodeId>)> = vec![(mc.source, mc.destinations.clone())];
    while let Some((node, dests)) = work.pop() {
        for (dim, subset) in len_partition(cube, node, &dests) {
            let next = cube.flip(node, dim);
            if !tree.contains(next) {
                tree.attach(node, next);
            }
            work.push((next, subset));
        }
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_topology::Topology;

    #[test]
    fn len_tree_reaches_all_destinations_by_shortest_paths() {
        let h = Hypercube::new(6);
        let mc = MulticastSet::new(0b000110, [0b010101, 0b000001, 0b001101, 0b101001, 0b110001]);
        let t = len_tree(&h, &mc);
        t.validate(&h).unwrap();
        for &d in &mc.destinations {
            // MT property (Def 3.4(b)): tree distance equals graph distance.
            assert_eq!(t.depth_of(d), Some(h.distance(mc.source, d)), "dest {d:#b}");
        }
    }

    #[test]
    fn len_partition_prefers_heaviest_dimension() {
        let h = Hypercube::new(4);
        // From node 0000 with dests 0001, 0011, 0111: bit 0 appears 3
        // times, bit 1 twice, bit 2 once.
        let parts = len_partition(&h, 0, &[0b0001, 0b0011, 0b0111]);
        assert_eq!(parts[0].0, 0);
        assert_eq!(parts[0].1.len(), 3);
        assert_eq!(parts.len(), 1, "all destinations share bit 0");
    }

    #[test]
    fn len_traffic_between_k_and_broadcast() {
        let h = Hypercube::new(6);
        let mc = MulticastSet::new(7, [1, 62, 33, 20, 55, 9, 48]);
        let t = len_tree(&h, &mc);
        assert!(t.traffic() >= mc.k());
        assert!(t.traffic() < h.num_nodes());
        let route = crate::model::MulticastRoute::Tree(t);
        route.validate(&h, &mc).unwrap();
    }

    #[test]
    fn len_single_destination_is_shortest_path() {
        let h = Hypercube::new(5);
        let mc = MulticastSet::new(0, [0b10110]);
        let t = len_tree(&h, &mc);
        assert_eq!(t.traffic(), 3);
    }
}
