//! The divided greedy multicast (MT) algorithm of §5.3, Fig 5.6.
//!
//! Unlike X-first, which fixes each destination's path from its address
//! alone, divided greedy looks at *all* destination positions to choose
//! branch directions, reducing traffic. The pseudo-code figure is garbled
//! in the source scan; this implementation is reconstructed from the fully
//! worked §5.4 example (see DESIGN.md §5), whose intermediate sets it
//! reproduces exactly:
//!
//! 1. destinations sharing the local row or column have a unique shortest
//!    first hop and go directly to that direction's list;
//! 2. strictly diagonal destinations fall into the quadrant sets
//!    `P_0 (+X+Y), P_1 (−X+Y), P_2 (−X−Y), P_3 (+X−Y)`;
//! 3. each `P_i` splits by dominant axis into `S_ix` (`|dx| > |dy|`) and
//!    `S_iy` (otherwise);
//! 4. each direction's list receives its two adjacent-quadrant candidate
//!    sets (`D_{+X}`: `S_0x, S_3x`; `D_{+Y}`: `S_0y, S_1y`; `D_{−X}`:
//!    `S_1x, S_2x`; `D_{−Y}`: `S_2y, S_3y`); a candidate whose partner set
//!    is empty — the lone opener of its direction — migrates to its
//!    quadrant-sibling direction when that direction is already open
//!    (it has direct destinations or a staying sibling set), merging
//!    branches ("since `S_0x` is empty, its partner `S_3x` is not put to
//!    `D_{+X}`, instead it will be merged with `S_3y`"); when the sibling
//!    direction is not open either, migrating would just move the branch,
//!    so the set keeps its dominant-axis direction.
//!
//! Every hop still reduces the distance to each carried destination, so
//! the result is a multicast tree with shortest source→destination paths.

use mcast_topology::mesh2d::{Dir2, Mesh2D};
use mcast_topology::NodeId;

use crate::model::{MulticastSet, TreeRoute};

/// Direction index in `+X, −X, +Y, −Y` order (matching [`Dir2::ALL`]).
const POS_X: usize = 0;
const NEG_X: usize = 1;
const POS_Y: usize = 2;
const NEG_Y: usize = 3;

/// The quadrant's X and Y forwarding directions, for `P_0..P_3`.
const QUAD_DIRS: [(usize, usize); 4] = [
    (POS_X, POS_Y), // P_0: +X+Y
    (NEG_X, POS_Y), // P_1: −X+Y
    (NEG_X, NEG_Y), // P_2: −X−Y
    (POS_X, NEG_Y), // P_3: +X−Y
];

/// For each direction, the two quadrants whose S-sets are its candidates:
/// `(quadrant using it as X dir, quadrant using it as Y dir)`.
const DIR_CANDIDATES: [(usize, usize); 4] = [
    (0, 3), // +X: S_0x, S_3x
    (1, 2), // −X: S_1x, S_2x
    (0, 1), // +Y: S_0y, S_1y
    (2, 3), // −Y: S_2y, S_3y
];

/// One routing decision of divided greedy: splits `dests` into the four
/// direction sublists (`+X, −X, +Y, −Y` order).
pub fn divided_greedy_split(mesh: &Mesh2D, node: NodeId, dests: &[NodeId]) -> [Vec<NodeId>; 4] {
    let (x0, y0) = mesh.coords(node);
    let mut direct: [Vec<NodeId>; 4] = Default::default();
    // s[i][0] = S_ix, s[i][1] = S_iy.
    let mut s: [[Vec<NodeId>; 2]; 4] = Default::default();
    for &d in dests {
        let (x, y) = mesh.coords(d);
        if x == x0 && y == y0 {
            continue; // delivered locally
        }
        if x == x0 {
            direct[if y > y0 { POS_Y } else { NEG_Y }].push(d);
            continue;
        }
        if y == y0 {
            direct[if x > x0 { POS_X } else { NEG_X }].push(d);
            continue;
        }
        let quad = match (x > x0, y > y0) {
            (true, true) => 0,
            (false, true) => 1,
            (false, false) => 2,
            (true, false) => 3,
        };
        let dominant_x = x.abs_diff(x0) > y.abs_diff(y0);
        s[quad][if dominant_x { 0 } else { 1 }].push(d);
    }

    // Snapshot S-set occupancy so staying/lone status is order-free.
    let occupied: [[bool; 2]; 4] =
        std::array::from_fn(|q| std::array::from_fn(|axis| !s[q][axis].is_empty()));
    // The partner of `s[q][axis]` is the other candidate set for the
    // direction it targets; for an X (Y) direction both candidates are
    // X-sets (Y-sets) of the two adjacent quadrants.
    let partner_occupied = |q: usize, axis: usize| -> bool {
        let dir = if axis == 0 {
            QUAD_DIRS[q].0
        } else {
            QUAD_DIRS[q].1
        };
        let (qa, qb) = DIR_CANDIDATES[dir];
        let pq = if qa == q { qb } else { qa };
        occupied[pq][axis]
    };

    // Pass A: directions already open — they have direct destinations or
    // a *staying* set (one whose partner is also occupied). Staying sets
    // are assigned to their own direction immediately.
    let mut open: [bool; 4] = std::array::from_fn(|d| !direct[d].is_empty());
    let mut out = direct;
    let mut lone: Vec<(usize, usize)> = Vec::new(); // (quadrant, axis)
    for axis in 0..2 {
        for q in 0..4 {
            if !occupied[q][axis] {
                continue;
            }
            let (dir_x, dir_y) = QUAD_DIRS[q];
            let own_dir = if axis == 0 { dir_x } else { dir_y };
            if partner_occupied(q, axis) {
                out[own_dir].extend(std::mem::take(&mut s[q][axis]));
                open[own_dir] = true;
            } else {
                lone.push((q, axis));
            }
        }
    }
    // Pass B: a lone set (the would-be sole opener of its direction)
    // merges into its quadrant-sibling direction when that one is open
    // ("since S_0x is empty, its partner S_3x is not put to D_{+X},
    // instead it will be merged with S_3y"); otherwise it opens its own
    // direction, which later lone sets may then merge into. X-axis sets
    // are processed first (the X-first flavor of the underlying unicast
    // routing), keeping companion destinations on a shared trunk.
    for (q, axis) in lone {
        let (dir_x, dir_y) = QUAD_DIRS[q];
        let own_dir = if axis == 0 { dir_x } else { dir_y };
        let target_dir = if axis == 0 { dir_y } else { dir_x };
        let dests = std::mem::take(&mut s[q][axis]);
        if open[own_dir] {
            // The direction is already served (direct destinations or an
            // earlier lone set): no migration needed.
            out[own_dir].extend(dests);
        } else if open[target_dir] {
            out[target_dir].extend(dests);
        } else {
            out[own_dir].extend(dests);
            open[own_dir] = true;
        }
    }
    out
}

/// Runs divided greedy from the source, returning the multicast tree.
pub fn divided_greedy_tree(mesh: &Mesh2D, mc: &MulticastSet) -> TreeRoute {
    let mut tree = TreeRoute::new(mc.source);
    let mut work: Vec<(NodeId, Vec<NodeId>)> = vec![(mc.source, mc.destinations.clone())];
    while let Some((node, dests)) = work.pop() {
        let split = divided_greedy_split(mesh, node, &dests);
        for (dir, sublist) in Dir2::ALL.into_iter().zip(split) {
            if sublist.is_empty() {
                continue;
            }
            let next = mesh
                .step(node, dir)
                .expect("a forwarded destination lies strictly in direction `dir`");
            if !tree.contains(next) {
                tree.attach(node, next);
            }
            work.push((next, sublist));
        }
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_topology::Topology;

    fn example_6x6() -> (Mesh2D, MulticastSet) {
        let m = Mesh2D::new(6, 6);
        let n = |x: usize, y: usize| m.node(x, y);
        let mc = MulticastSet::new(
            n(3, 2),
            [
                n(2, 0),
                n(3, 0),
                n(4, 0),
                n(1, 1),
                n(5, 1),
                n(0, 2),
                n(1, 3),
                n(2, 5),
                n(3, 5),
                n(5, 5),
            ],
        );
        (m, mc)
    }

    #[test]
    fn section_5_4_source_split_matches_text() {
        // Expected output lists at the source (3,2):
        // D_{+Y} = {(3,5), (2,5), (5,5)}, D_{−X} = {(0,2), (1,3), (1,1)},
        // D_{−Y} = {(3,0), (2,0), (4,0), (5,1)}, D_{+X} = ∅.
        let (m, mc) = example_6x6();
        let split = divided_greedy_split(&m, mc.source, &mc.destinations);
        let coords = |v: &Vec<NodeId>| -> Vec<(usize, usize)> {
            let mut c: Vec<_> = v.iter().map(|&n| m.coords(n)).collect();
            c.sort();
            c
        };
        assert!(split[POS_X].is_empty(), "+X: {:?}", coords(&split[POS_X]));
        assert_eq!(coords(&split[NEG_X]), vec![(0, 2), (1, 1), (1, 3)]);
        assert_eq!(coords(&split[POS_Y]), vec![(2, 5), (3, 5), (5, 5)]);
        assert_eq!(coords(&split[NEG_Y]), vec![(2, 0), (3, 0), (4, 0), (5, 1)]);
    }

    #[test]
    fn section_5_4_traffic_beats_xfirst() {
        // Fig 5.11 vs 5.12: divided greedy (20 channels in the text's
        // drawing) beats X-first (24). Our tie-breaking choices yield an
        // equally valid tree; assert strict improvement and the MT
        // (shortest-path) property.
        let (m, mc) = example_6x6();
        let dg = divided_greedy_tree(&m, &mc);
        dg.validate(&m).unwrap();
        let xf = crate::xfirst::xfirst_tree(&m, &mc);
        assert!(
            dg.traffic() < xf.traffic(),
            "divided greedy {} !< X-first {}",
            dg.traffic(),
            xf.traffic()
        );
        assert!(
            dg.traffic() <= 20,
            "divided greedy should use at most the paper's 20 channels"
        );
        for &d in &mc.destinations {
            assert_eq!(
                dg.depth_of(d),
                Some(m.distance(mc.source, d)),
                "dest {:?}",
                m.coords(d)
            );
        }
    }

    #[test]
    fn shortest_path_property_holds_on_batch() {
        let m = Mesh2D::new(8, 8);
        for seed in 0..50usize {
            let dests: Vec<NodeId> = (0..7).map(|i| (seed * 37 + i * 13 + 5) % 64).collect();
            let mc = MulticastSet::new((seed * 11) % 64, dests);
            let t = divided_greedy_tree(&m, &mc);
            t.validate(&m).unwrap();
            for &d in &mc.destinations {
                assert_eq!(
                    t.depth_of(d),
                    Some(m.distance(mc.source, d)),
                    "seed {seed} dest {d}"
                );
            }
        }
    }

    #[test]
    fn divided_greedy_never_worse_than_xfirst_on_batch() {
        let m = Mesh2D::new(8, 8);
        let mut dg_total = 0usize;
        let mut xf_total = 0usize;
        for seed in 0..100usize {
            let dests: Vec<NodeId> = (0..8).map(|i| (seed * 41 + i * 23 + 3) % 64).collect();
            let mc = MulticastSet::new((seed * 7) % 64, dests);
            dg_total += divided_greedy_tree(&m, &mc).traffic();
            xf_total += crate::xfirst::xfirst_tree(&m, &mc).traffic();
        }
        assert!(
            dg_total < xf_total,
            "aggregate: dg {dg_total} !< xf {xf_total}"
        );
    }

    #[test]
    fn collinear_only_destinations() {
        let m = Mesh2D::new(6, 6);
        let mc = MulticastSet::new(m.node(2, 3), [m.node(0, 3), m.node(5, 3), m.node(2, 0)]);
        let t = divided_greedy_tree(&m, &mc);
        assert_eq!(t.traffic(), 2 + 3 + 3);
    }
}
