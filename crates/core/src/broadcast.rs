//! Broadcast substrates (§1.1: "broadcast … has been directly supported
//! in nCUBE-2 using wormhole routing"): the spanning binomial tree for
//! hypercubes, plus a generic dimension-ordered broadcast for meshes.
//! These are the baselines the static study compares multicast against —
//! broadcast always costs `N − 1` channels regardless of `k`.

use mcast_topology::{Hypercube, Mesh2D, NodeId, Topology};

use crate::model::TreeRoute;

/// The spanning binomial tree of a hypercube rooted at `root`: node `u`'s
/// children are `u ⊕ 2^j` for every `j` below `u`'s lowest set *relative*
/// bit — `log N` deep, one message per link, the classic recursive
/// doubling broadcast.
pub fn binomial_tree(cube: &Hypercube, root: NodeId) -> TreeRoute {
    let mut tree = TreeRoute::new(root);
    let n = cube.dim();
    // Process nodes in order of relative address so parents exist first.
    let mut order: Vec<NodeId> = (0..cube.num_nodes()).collect();
    order.sort_by_key(|&v| (v ^ root).count_ones());
    for v in order {
        if v == root {
            continue;
        }
        let rel = v ^ root;
        // Parent: clear the highest set bit of the relative address.
        let hb = usize::BITS - 1 - rel.leading_zeros();
        let parent = v ^ (1 << hb);
        debug_assert!(hb < n);
        tree.attach(parent, v);
    }
    tree
}

/// Dimension-ordered (row-then-column) broadcast tree for a 2D mesh: the
/// root spans its row, every row node spans its column — the X-first
/// multicast tree with all nodes as destinations.
pub fn mesh_broadcast_tree(mesh: &Mesh2D, root: NodeId) -> TreeRoute {
    let all: Vec<NodeId> = (0..mesh.num_nodes()).collect();
    crate::xfirst::xfirst_tree(mesh, &crate::model::MulticastSet::new(root, all))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_tree_spans_with_log_depth() {
        for dim in 1..=8u32 {
            let h = Hypercube::new(dim);
            for root in [0usize, (1 << dim) - 1, 5 % (1 << dim)] {
                let t = binomial_tree(&h, root);
                t.validate(&h).unwrap();
                assert_eq!(t.traffic(), h.num_nodes() - 1);
                for v in 0..h.num_nodes() {
                    // Depth = Hamming distance: every path is shortest.
                    assert_eq!(t.depth_of(v), Some(h.distance(root, v)), "dim {dim} v {v}");
                }
            }
        }
    }

    #[test]
    fn binomial_degrees_are_binomial() {
        // The root of a binomial tree B_n has degree n.
        let h = Hypercube::new(6);
        let t = binomial_tree(&h, 0);
        let children = t.children_map();
        assert_eq!(children[&0].len(), 6);
    }

    #[test]
    fn mesh_broadcast_spans() {
        let m = Mesh2D::new(5, 4);
        let t = mesh_broadcast_tree(&m, m.node(2, 1));
        t.validate(&m).unwrap();
        assert_eq!(t.traffic(), m.num_nodes() - 1);
        for v in 0..m.num_nodes() {
            assert_eq!(t.depth_of(v), Some(m.distance(m.node(2, 1), v)));
        }
    }
}
