//! The double-channel X-first tree-like deadlock-free multicast routing of
//! §6.2.1 (Fig 6.6).
//!
//! Plain X-first multicast trees can deadlock (Fig 6.4). The fix: double
//! every mesh channel, partition the doubled channels into the four
//! acyclic quadrant subnetworks `N_{±X,±Y}` (Fig 6.5), split the
//! destination set by quadrant relative to the source, and run an X-first
//! Y-next tree inside each subnetwork. Each subnetwork's channels can be
//! ordered by distance from its corner (Fig 6.8), so the scheme is
//! deadlock-free (Assertion 1) — at the price of double channels and
//! tree-like blocking.

use mcast_topology::mesh2d::{Dir2, Mesh2D};
use mcast_topology::partition::{split_by_quadrant, Quadrant};
use mcast_topology::NodeId;

use crate::model::{MulticastRoute, MulticastSet, TreeRoute};

/// One quadrant's sub-multicast tree, tagged with the subnetwork it is
/// routed in (the tag selects channel classes in the simulator).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuadrantTree {
    /// The subnetwork this tree's channels belong to.
    pub quadrant: Quadrant,
    /// The tree, rooted at the multicast source.
    pub tree: TreeRoute,
}

/// Runs double-channel X-first routing: up to four trees, one per
/// quadrant subnetwork.
pub fn dc_xfirst(mesh: &Mesh2D, mc: &MulticastSet) -> Vec<QuadrantTree> {
    let split = split_by_quadrant(mesh, mc.source, &mc.destinations);
    Quadrant::ALL
        .into_iter()
        .zip(split)
        .filter(|(_, dests)| !dests.is_empty())
        .map(|(quadrant, dests)| QuadrantTree {
            quadrant,
            tree: quadrant_tree(mesh, mc.source, &dests, quadrant),
        })
        .collect()
}

/// The X-first Y-next tree of Fig 6.6, generalized to all four quadrants
/// by mirroring: advance along the quadrant's X direction while the local
/// x is short of the nearest destination column; at each destination
/// column split off a Y branch.
fn quadrant_tree(mesh: &Mesh2D, source: NodeId, dests: &[NodeId], q: Quadrant) -> TreeRoute {
    let [dir_x, dir_y] = q.directions();
    let mut tree = TreeRoute::new(source);
    let mut work: Vec<(NodeId, Vec<NodeId>)> = vec![(source, dests.to_vec())];
    while let Some((node, dests)) = work.pop() {
        if dests.is_empty() {
            continue;
        }
        let (x, _) = mesh.coords(node);
        // "x short of the nearest destination column" in the quadrant's X
        // direction: for +X, x < min{x_i}; for −X, x > max{x_i}.
        let needs_x_move = match dir_x {
            Dir2::PosX => dests.iter().all(|&d| mesh.coords(d).0 > x),
            Dir2::NegX => dests.iter().all(|&d| mesh.coords(d).0 < x),
            _ => unreachable!("quadrant X direction is horizontal"),
        };
        if needs_x_move {
            let next = mesh
                .step(node, dir_x)
                .expect("destination column lies further along");
            tree.attach(node, next);
            work.push((next, dests));
            continue;
        }
        // Split: destinations in this column branch off in Y; the rest
        // continue in X.
        let (col, rest): (Vec<NodeId>, Vec<NodeId>) =
            dests.into_iter().partition(|&d| mesh.coords(d).0 == x);
        let col: Vec<NodeId> = col.into_iter().filter(|&d| d != node).collect();
        if !col.is_empty() {
            let next = mesh
                .step(node, dir_y)
                .expect("a column destination lies further in Y");
            tree.attach(node, next);
            work.push((next, col));
        }
        if !rest.is_empty() {
            let next = mesh
                .step(node, dir_x)
                .expect("a destination lies further in X");
            tree.attach(node, next);
            work.push((next, rest));
        }
    }
    tree
}

/// Total traffic across the quadrant trees.
pub fn traffic(parts: &[QuadrantTree]) -> usize {
    parts.iter().map(|p| p.tree.traffic()).sum()
}

/// Wraps the quadrant trees as a [`MulticastRoute::Forest`] for uniform
/// metrics/validation.
pub fn dc_xfirst_route(mesh: &Mesh2D, mc: &MulticastSet) -> MulticastRoute {
    MulticastRoute::Forest(dc_xfirst(mesh, mc).into_iter().map(|p| p.tree).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_topology::Topology;

    fn example() -> (Mesh2D, MulticastSet) {
        // §6.2.1 example (Fig 6.7): 6×6 mesh, source (3,2).
        let m = Mesh2D::new(6, 6);
        let n = |x: usize, y: usize| m.node(x, y);
        let mc = MulticastSet::new(
            n(3, 2),
            [
                n(0, 0),
                n(0, 2),
                n(0, 5),
                n(1, 3),
                n(4, 5),
                n(5, 0),
                n(5, 1),
                n(5, 3),
                n(5, 4),
            ],
        );
        (m, mc)
    }

    #[test]
    fn four_quadrant_trees_cover_all_destinations() {
        let (m, mc) = example();
        let parts = dc_xfirst(&m, &mc);
        assert_eq!(parts.len(), 4);
        let route = dc_xfirst_route(&m, &mc);
        route.validate(&m, &mc).unwrap();
    }

    #[test]
    fn tree_channels_stay_inside_their_subnetwork() {
        let (m, mc) = example();
        for part in dc_xfirst(&m, &mc) {
            for (p, c) in part.tree.edges() {
                let dir = m.direction(p, c);
                assert!(
                    part.quadrant.contains_dir(dir),
                    "{:?} tree uses {dir:?} channel {p}→{c}",
                    part.quadrant
                );
            }
        }
    }

    #[test]
    fn paths_in_tree_are_shortest() {
        // X-first Y-next within a quadrant yields shortest paths.
        let (m, mc) = example();
        let route = dc_xfirst_route(&m, &mc);
        for &d in &mc.destinations {
            assert_eq!(route.hops_to(d), Some(m.distance(mc.source, d)), "dest {d}");
        }
    }

    #[test]
    fn batch_validation_random_like() {
        let m = Mesh2D::new(8, 8);
        for seed in 0..60usize {
            let dests: Vec<NodeId> = (0..5).map(|i| (seed * 43 + i * 29 + 1) % 64).collect();
            let mc = MulticastSet::new((seed * 17) % 64, dests);
            let route = dc_xfirst_route(&m, &mc);
            route.validate(&m, &mc).unwrap();
            for &d in &mc.destinations {
                assert_eq!(route.hops_to(d), Some(m.distance(mc.source, d)));
            }
        }
    }

    #[test]
    fn collinear_destinations_single_trunk() {
        let m = Mesh2D::new(6, 6);
        let mc = MulticastSet::new(m.node(0, 0), [m.node(3, 0), m.node(5, 0)]);
        let parts = dc_xfirst(&m, &mc);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].quadrant, Quadrant::PosXPosY);
        assert_eq!(parts[0].tree.traffic(), 5);
    }
}
