//! The fixed-path deadlock-free multicast routing of §6.2.2 (Fig 6.17),
//! suggested in [49] and used as a simplicity baseline.
//!
//! Like dual-path it uses one high and one low path, but each path simply
//! walks the Hamiltonian path node by node — the upper path visits *all*
//! nodes in increasing label order until the highest-labeled destination,
//! the lower path all nodes in decreasing order until the lowest. Very
//! simple hardware, more traffic: §7.2 shows it matches dual-path only for
//! large destination sets.

use mcast_topology::{Labeling, Topology};

use crate::model::{MulticastRoute, MulticastSet, PathRoute};

/// Runs fixed-path routing, returning up to two paths (high first).
pub fn fixed_path<T: Topology + ?Sized>(
    _topo: &T,
    labeling: &Labeling,
    mc: &MulticastSet,
) -> Vec<PathRoute> {
    let l0 = labeling.label(mc.source);
    let max_l = mc
        .destinations
        .iter()
        .map(|&d| labeling.label(d))
        .filter(|&l| l > l0)
        .max();
    let min_l = mc
        .destinations
        .iter()
        .map(|&d| labeling.label(d))
        .filter(|&l| l < l0)
        .min();
    let mut paths = Vec::with_capacity(2);
    if let Some(hi) = max_l {
        paths.push(PathRoute::new(
            (l0..=hi).map(|l| labeling.node_at(l)).collect(),
        ));
    }
    if let Some(lo) = min_l {
        paths.push(PathRoute::new(
            (lo..=l0).rev().map(|l| labeling.node_at(l)).collect(),
        ));
    }
    paths
}

/// Convenience wrapper returning a [`MulticastRoute::Star`].
pub fn fixed_path_route<T: Topology + ?Sized>(
    topo: &T,
    labeling: &Labeling,
    mc: &MulticastSet,
) -> MulticastRoute {
    MulticastRoute::Star(fixed_path(topo, labeling, mc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_topology::labeling::{hypercube_gray, mesh2d_snake};
    use mcast_topology::{Hypercube, Mesh2D, NodeId};

    #[test]
    fn fig_6_17_traffic_and_max_distance() {
        // Fig 6.17: same example as Figs 6.13/6.16 — fixed-path uses 35
        // channels (20 high + 15 low), max distance 20 hops.
        let m = Mesh2D::new(6, 6);
        let l = mesh2d_snake(&m);
        let n = |x: usize, y: usize| m.node(x, y);
        let mc = MulticastSet::new(
            n(3, 2),
            [
                n(0, 0),
                n(0, 2),
                n(0, 5),
                n(1, 3),
                n(4, 5),
                n(5, 0),
                n(5, 1),
                n(5, 3),
                n(5, 4),
            ],
        );
        let paths = fixed_path(&m, &l, &mc);
        assert_eq!(paths[0].len(), 20, "high path channels");
        assert_eq!(paths[1].len(), 15, "low path channels");
        let route = MulticastRoute::Star(paths);
        route.validate(&m, &mc).unwrap();
        assert_eq!(route.max_dest_hops(&mc), Some(20));
        assert_eq!(route.traffic(), 35);
    }

    #[test]
    fn fixed_path_visits_every_label_in_range() {
        let h = Hypercube::new(4);
        let l = hypercube_gray(&h);
        let mc = MulticastSet::new(0b1100, [0b0100, 0b0011, 0b0111, 0b1000, 0b1111]);
        let paths = fixed_path(&h, &l, &mc);
        for p in &paths {
            let labels: Vec<usize> = p.nodes().iter().map(|&n| l.label(n)).collect();
            // Strictly consecutive labels: the Hamiltonian walk.
            assert!(labels.windows(2).all(|w| w[0].abs_diff(w[1]) == 1));
        }
        MulticastRoute::Star(paths).validate(&h, &mc).unwrap();
    }

    #[test]
    fn fixed_path_always_at_least_dual_path_traffic() {
        let m = Mesh2D::new(8, 8);
        let l = mesh2d_snake(&m);
        for seed in 0..50usize {
            let dests: Vec<NodeId> = (0..6).map(|i| (seed * 29 + i * 19 + 11) % 64).collect();
            let mc = MulticastSet::new((seed * 13) % 64, dests);
            if mc.k() == 0 {
                continue;
            }
            let fp: usize = fixed_path(&m, &l, &mc).iter().map(PathRoute::len).sum();
            let dp: usize = crate::dual_path::dual_path(&m, &l, &mc)
                .iter()
                .map(PathRoute::len)
                .sum();
            assert!(fp >= dp, "seed {seed}: fixed {fp} < dual {dp}");
        }
    }

    #[test]
    fn single_side_destination_sets() {
        let m = Mesh2D::new(4, 4);
        let l = mesh2d_snake(&m);
        let src = l.node_at(15);
        let mc = MulticastSet::new(src, [l.node_at(3), l.node_at(9)]);
        let paths = fixed_path(&m, &l, &mc);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].len(), 12);
    }
}
