//! The Kou–Markowsky–Berman (KMB) Steiner-tree baseline ([55], discussed
//! in §5.2).
//!
//! KMB builds the metric closure over the Steiner (terminal) nodes, takes
//! a minimum spanning tree of it, and expands each MST edge into a
//! shortest path in the host graph, pruning the result back to a tree.
//! §5.2 argues the dissertation's greedy ST algorithm is at least as good
//! in the worst case because it also considers interior nodes of shortest
//! paths as junctions; the benches compare the two.

use std::collections::BTreeSet;

use mcast_topology::NodeId;

use crate::geometry::RoutingGeometry;
use crate::model::MulticastSet;

/// A realized KMB Steiner structure: the union of channels (undirected
/// edges) of the expanded MST paths.
#[derive(Debug, Clone)]
pub struct KmbTree {
    /// Undirected host-graph edges, stored as `(min, max)`.
    pub edges: BTreeSet<(NodeId, NodeId)>,
}

impl KmbTree {
    /// Traffic: the number of links used.
    pub fn traffic(&self) -> usize {
        self.edges.len()
    }

    /// Whether the edge set contains every terminal and is connected and
    /// acyclic (a tree after pruning).
    pub fn validate(&self, mc: &MulticastSet) -> Result<(), String> {
        let mut verts: BTreeSet<NodeId> = BTreeSet::new();
        for &(a, b) in &self.edges {
            verts.insert(a);
            verts.insert(b);
        }
        verts.insert(mc.source);
        for &d in &mc.destinations {
            if !verts.contains(&d) {
                return Err(format!("terminal {d} missing"));
            }
        }
        if !self.edges.is_empty() && self.edges.len() != verts.len() - 1 {
            return Err(format!(
                "{} edges over {} vertices: not a tree",
                self.edges.len(),
                verts.len()
            ));
        }
        // Connectivity via union-find-ish relaxation from the source.
        let mut reach = BTreeSet::new();
        reach.insert(mc.source);
        let mut changed = true;
        while changed {
            changed = false;
            for &(a, b) in &self.edges {
                if reach.contains(&a) && reach.insert(b) {
                    changed = true;
                }
                if reach.contains(&b) && reach.insert(a) {
                    changed = true;
                }
            }
        }
        if reach != verts {
            return Err("KMB structure disconnected".into());
        }
        Ok(())
    }
}

/// Runs KMB for the multicast set, returning the realized (pruned) tree.
pub fn kmb<T: RoutingGeometry + ?Sized>(topo: &T, mc: &MulticastSet) -> KmbTree {
    let mut terminals: Vec<NodeId> = vec![mc.source];
    terminals.extend(&mc.destinations);
    let k = terminals.len();
    if k <= 1 {
        return KmbTree {
            edges: BTreeSet::new(),
        };
    }
    // 1. Metric closure MST over terminals (Prim's).
    let mut in_tree = vec![false; k];
    let mut best_dist = vec![usize::MAX; k];
    let mut best_from = vec![0usize; k];
    in_tree[0] = true;
    for i in 1..k {
        best_dist[i] = topo.distance(terminals[0], terminals[i]);
        best_from[i] = 0;
    }
    let mut mst_edges: Vec<(usize, usize)> = Vec::with_capacity(k - 1);
    for _ in 1..k {
        let next = (0..k)
            .filter(|&i| !in_tree[i])
            .min_by_key(|&i| (best_dist[i], i))
            .expect("terminals remain");
        in_tree[next] = true;
        mst_edges.push((best_from[next], next));
        for i in 0..k {
            if !in_tree[i] {
                let d = topo.distance(terminals[next], terminals[i]);
                if d < best_dist[i] {
                    best_dist[i] = d;
                    best_from[i] = next;
                }
            }
        }
    }
    // 2. Expand MST edges into shortest paths; take the union of links.
    let mut edges: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
    for (a, b) in mst_edges {
        let path = topo.shortest_path(terminals[a], terminals[b]);
        for w in path.windows(2) {
            edges.insert((w[0].min(w[1]), w[0].max(w[1])));
        }
    }
    // 3. Prune: break any cycles introduced by overlapping expansions
    //    (spanning tree of the union), then repeatedly drop non-terminal
    //    leaves.
    let verts: Vec<NodeId> = {
        let mut v: BTreeSet<NodeId> = edges.iter().flat_map(|&(a, b)| [a, b]).collect();
        v.insert(mc.source);
        v.into_iter().collect()
    };
    let vidx = |n: NodeId| verts.binary_search(&n).expect("vertex present");
    // Spanning tree by BFS over the union edges.
    let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); verts.len()];
    for &(a, b) in &edges {
        adj[vidx(a)].push(b);
        adj[vidx(b)].push(a);
    }
    let mut keep: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
    let mut seen = vec![false; verts.len()];
    let mut queue = std::collections::VecDeque::new();
    seen[vidx(mc.source)] = true;
    queue.push_back(mc.source);
    while let Some(u) = queue.pop_front() {
        for &v in &adj[vidx(u)] {
            if !seen[vidx(v)] {
                seen[vidx(v)] = true;
                keep.insert((u.min(v), u.max(v)));
                queue.push_back(v);
            }
        }
    }
    let mut edges = keep;
    // Drop non-terminal leaves until fixpoint.
    let terminal_set: BTreeSet<NodeId> = terminals.iter().copied().collect();
    loop {
        let mut degree: std::collections::BTreeMap<NodeId, usize> = Default::default();
        for &(a, b) in &edges {
            *degree.entry(a).or_insert(0) += 1;
            *degree.entry(b).or_insert(0) += 1;
        }
        let removable: Vec<(NodeId, NodeId)> = edges
            .iter()
            .copied()
            .filter(|&(a, b)| {
                (degree[&a] == 1 && !terminal_set.contains(&a))
                    || (degree[&b] == 1 && !terminal_set.contains(&b))
            })
            .collect();
        if removable.is_empty() {
            break;
        }
        for e in removable {
            edges.remove(&e);
        }
    }
    KmbTree { edges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_topology::{Hypercube, Mesh2D, Topology};

    #[test]
    fn kmb_covers_terminals_and_is_tree() {
        let m = Mesh2D::new(8, 8);
        let mc = MulticastSet::new(0, [7, 56, 63, 27]);
        let t = kmb(&m, &mc);
        t.validate(&mc).unwrap();
    }

    #[test]
    fn kmb_on_hypercube() {
        let h = Hypercube::new(6);
        let mc = MulticastSet::new(5, [62, 17, 44, 3, 33]);
        let t = kmb(&h, &mc);
        t.validate(&mc).unwrap();
        let mu = crate::model::multi_unicast_traffic(&h, &mc);
        assert!(t.traffic() <= mu);
    }

    #[test]
    fn kmb_single_destination_is_shortest_path() {
        let m = Mesh2D::new(6, 6);
        let mc = MulticastSet::new(0, [35]);
        let t = kmb(&m, &mc);
        assert_eq!(t.traffic(), m.distance(0, 35));
    }

    #[test]
    fn greedy_st_is_competitive_with_kmb() {
        // §5.2's claim: the greedy ST algorithm is at least as good as KMB
        // in the worst case. Verify over a deterministic batch.
        let m = Mesh2D::new(8, 8);
        let mut worse = 0usize;
        let mut cases = 0usize;
        for seed in 0..40usize {
            let dests: Vec<NodeId> = (0..6).map(|i| (seed * 31 + i * 17 + 7) % 64).collect();
            let mc = MulticastSet::new(seed % 64, dests);
            if mc.k() == 0 {
                continue;
            }
            cases += 1;
            let g = crate::greedy_st::greedy_st(&m, &mc);
            let kt = kmb(&m, &mc);
            if g.traffic(&m) > kt.traffic() {
                worse += 1;
            }
        }
        // Greedy may occasionally lose on individual instances due to tie
        // breaking, but must not lose broadly.
        assert!(
            worse * 4 <= cases,
            "greedy ST worse than KMB in {worse}/{cases} cases"
        );
    }
}
