//! The X-first multicast (MT) algorithm of §5.3, Fig 5.5 — the natural
//! extension of XY unicast routing to multicast.
//!
//! At each forward node the destination list is split into `D_{+X}`
//! (`x > x0`), `D_{−X}` (`x < x0`), `D_{+Y}` (`x = x0, y > y0`) and
//! `D_{−Y}` (`x = x0, y < y0`); each sublist rides one message copy to the
//! corresponding neighbor. Every source→destination path is an XY shortest
//! path, so the result is a multicast tree in the MT sense — but, as §6.1
//! shows, the scheme is *not* deadlock-free under wormhole switching
//! without channel doubling.

use mcast_topology::mesh2d::{Dir2, Mesh2D};
use mcast_topology::NodeId;

use crate::model::{MulticastSet, TreeRoute};

/// One routing decision (Fig 5.5): splits `dests` by direction from
/// `node`. Returned in `+X, −X, +Y, −Y` order; empty sublists are kept so
/// callers can index by [`Dir2::ALL`].
pub fn xfirst_split(mesh: &Mesh2D, node: NodeId, dests: &[NodeId]) -> [Vec<NodeId>; 4] {
    let (x0, y0) = mesh.coords(node);
    let mut out: [Vec<NodeId>; 4] = Default::default();
    for &d in dests {
        let (x, y) = mesh.coords(d);
        if x > x0 {
            out[0].push(d);
        } else if x < x0 {
            out[1].push(d);
        } else if y > y0 {
            out[2].push(d);
        } else if y < y0 {
            out[3].push(d);
        }
        // x == x0 && y == y0: deliver locally, nothing to forward.
    }
    out
}

/// Runs the X-first multicast algorithm, returning the multicast tree.
pub fn xfirst_tree(mesh: &Mesh2D, mc: &MulticastSet) -> TreeRoute {
    let mut tree = TreeRoute::new(mc.source);
    let mut work: Vec<(NodeId, Vec<NodeId>)> = vec![(mc.source, mc.destinations.clone())];
    while let Some((node, dests)) = work.pop() {
        let split = xfirst_split(mesh, node, &dests);
        for (dir, sublist) in Dir2::ALL.into_iter().zip(split) {
            if sublist.is_empty() {
                continue;
            }
            let next = mesh
                .step(node, dir)
                .expect("a destination in direction `dir` implies the neighbor exists");
            if !tree.contains(next) {
                tree.attach(node, next);
            }
            work.push((next, sublist));
        }
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_topology::Topology;

    fn example_6x6() -> (Mesh2D, MulticastSet) {
        // §5.4 example: 6×6 mesh, source (3,2), destinations (2,0), (3,0),
        // (4,0), (1,1), (5,1), (0,2), (1,3), (2,5), (3,5), (5,5).
        let m = Mesh2D::new(6, 6);
        let n = |x: usize, y: usize| m.node(x, y);
        let mc = MulticastSet::new(
            n(3, 2),
            [
                n(2, 0),
                n(3, 0),
                n(4, 0),
                n(1, 1),
                n(5, 1),
                n(0, 2),
                n(1, 3),
                n(2, 5),
                n(3, 5),
                n(5, 5),
            ],
        );
        (m, mc)
    }

    #[test]
    fn section_5_4_first_split() {
        // The text's split at (3,2):
        // D_{+X} = {(4,0), (5,1), (5,5)}, D_{−X} = {(2,5), (2,0), (1,3),
        // (1,1), (0,2)}, D_{+Y} = {(3,5)}, D_{−Y} = {(3,0)}.
        let (m, mc) = example_6x6();
        let split = xfirst_split(&m, mc.source, &mc.destinations);
        let coords =
            |v: &Vec<NodeId>| -> Vec<(usize, usize)> { v.iter().map(|&n| m.coords(n)).collect() };
        let mut px = coords(&split[0]);
        px.sort();
        assert_eq!(px, vec![(4, 0), (5, 1), (5, 5)]);
        let mut nx = coords(&split[1]);
        nx.sort();
        assert_eq!(nx, vec![(0, 2), (1, 1), (1, 3), (2, 0), (2, 5)]);
        assert_eq!(coords(&split[2]), vec![(3, 5)]);
        assert_eq!(coords(&split[3]), vec![(3, 0)]);
    }

    #[test]
    fn section_5_4_total_traffic() {
        // The text reports 24 for the pattern drawn in Fig 5.11; the
        // algorithm of Fig 5.5 executed faithfully shares one more trunk
        // channel and uses 23 (hand-verified channel-by-channel union of
        // the XY paths). The comparison that matters — X-first uses more
        // traffic than divided greedy — is asserted in
        // `divided_greedy::tests`.
        let (m, mc) = example_6x6();
        let t = xfirst_tree(&m, &mc);
        t.validate(&m).unwrap();
        assert_eq!(t.traffic(), 23);
    }

    #[test]
    fn xfirst_paths_are_shortest() {
        // MT property: every destination is reached at graph distance.
        let (m, mc) = example_6x6();
        let t = xfirst_tree(&m, &mc);
        for &d in &mc.destinations {
            assert_eq!(t.depth_of(d), Some(m.distance(mc.source, d)));
        }
    }

    #[test]
    fn xfirst_handles_collinear_and_local_destinations() {
        let m = Mesh2D::new(5, 5);
        let mc = MulticastSet::new(m.node(2, 2), [m.node(2, 2), m.node(2, 4), m.node(2, 0)]);
        let t = xfirst_tree(&m, &mc);
        assert_eq!(t.traffic(), 4);
        crate::model::MulticastRoute::Tree(t)
            .validate(&m, &mc)
            .unwrap();
    }

    #[test]
    fn xfirst_broadcast_spans_the_mesh() {
        let m = Mesh2D::new(4, 4);
        let all: Vec<NodeId> = (0..16).collect();
        let mc = MulticastSet::new(5, all);
        let t = xfirst_tree(&m, &mc);
        assert_eq!(t.traffic(), 15);
        assert_eq!(t.nodes().len(), 16);
    }
}
