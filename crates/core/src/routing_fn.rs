//! The label-based routing function `R` of §6.2.2 / §6.3, shared by the
//! dual-path, multi-path and fixed-path schemes.
//!
//! Given a Hamiltonian labeling `ℓ`, `R(u, v)` forwards a message at node
//! `u` bound for `v` to the neighbor `w` with
//!
//! * `ℓ(w) = max{ℓ(p) : ℓ(p) ≤ ℓ(v)}` when `ℓ(u) < ℓ(v)` (high-channel
//!   network), or
//! * `ℓ(w) = min{ℓ(p) : ℓ(p) ≥ ℓ(v)}` when `ℓ(u) > ℓ(v)` (low-channel
//!   network),
//!
//! `p` ranging over `u`'s neighbors. Because the Hamiltonian-path successor
//! (predecessor) of `u` is itself a neighbor, `R` always makes label
//! progress, so every selected path is label-monotone — it lives entirely
//! in one of the two acyclic subnetworks. For the dissertation's mesh and
//! hypercube labelings the selected path is also a *shortest* path
//! (Lemmas 6.1 and 6.4), which the test suites verify exhaustively.

use mcast_topology::{Labeling, NodeId, Topology};

/// One step of the routing function `R(u, v)`.
///
/// # Panics
/// Panics if `u == v` (no step needed) — callers check first.
pub fn r_step<T: Topology + ?Sized>(topo: &T, labeling: &Labeling, u: NodeId, v: NodeId) -> NodeId {
    assert_ne!(u, v, "R(u, u) is undefined");
    let lu = labeling.label(u);
    let lv = labeling.label(v);
    let duv = topo.distance(u, v);
    let mut nb = Vec::new();
    topo.neighbors_into(u, &mut nb);
    // Candidates inside the monotone label window. Among them, prefer the
    // distance-reducing ones: Lemma 6.1/6.4's induction constructs, for
    // every (u, v) with ℓ(u) < ℓ(v), a *shortest-path* neighbor with label
    // strictly between ℓ(u) and ℓ(v) — so a reducing candidate always
    // exists on the dissertation's mesh and hypercube labelings, and
    // picking the extreme label among them realizes the lemma's shortest
    // monotone path. (On the 2D mesh the unrestricted extreme choice is
    // already distance-reducing; on the hypercube it is not — e.g.
    // 000→101 under the Gray labeling — which is why the restriction is
    // part of the routing function.) For labelings without the
    // shortest-path property the unrestricted extreme keeps the walk
    // monotone and terminating.
    let pick = |cands: &mut dyn Iterator<Item = NodeId>| -> Option<NodeId> {
        if lu < lv {
            cands.max_by_key(|&p| labeling.label(p))
        } else {
            cands.min_by_key(|&p| labeling.label(p))
        }
    };
    let in_window = |p: NodeId| {
        let lp = labeling.label(p);
        if lu < lv {
            lp > lu && lp <= lv
        } else {
            lp < lu && lp >= lv
        }
    };
    let reducing = pick(
        &mut nb
            .iter()
            .copied()
            .filter(|&p| in_window(p) && topo.distance(p, v) < duv),
    );
    reducing
        .or_else(|| pick(&mut nb.iter().copied().filter(|&p| in_window(p))))
        .expect("Hamiltonian successor/predecessor of u is a neighbor, so a candidate exists")
}

/// The full path selected by `R` from `u` to `v` (inclusive).
///
/// The path is label-monotone; for the dissertation's labelings it is a
/// shortest path.
pub fn r_path<T: Topology + ?Sized>(
    topo: &T,
    labeling: &Labeling,
    u: NodeId,
    v: NodeId,
) -> Vec<NodeId> {
    let mut path = vec![u];
    let mut cur = u;
    while cur != v {
        let next = r_step(topo, labeling, cur, v);
        debug_assert!(
            if labeling.label(u) < labeling.label(v) {
                labeling.label(next) > labeling.label(cur)
            } else {
                labeling.label(next) < labeling.label(cur)
            },
            "R must make monotone label progress"
        );
        path.push(next);
        cur = next;
    }
    path
}

/// Extends `path` (ending at some node `w`) to `v` using `R`, visiting the
/// intermediate nodes. Used by the path-based multicast drivers.
pub fn r_extend<T: Topology + ?Sized>(
    topo: &T,
    labeling: &Labeling,
    path: &mut Vec<NodeId>,
    v: NodeId,
) {
    let mut cur = *path.last().expect("path is never empty");
    while cur != v {
        let next = r_step(topo, labeling, cur, v);
        path.push(next);
        cur = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_topology::labeling::{hypercube_gray, karyn_gray, mesh2d_snake, mesh3d_snake};
    use mcast_topology::{Hypercube, KAryNCube, Mesh2D, Mesh3D};

    fn check_r_shortest_and_monotone<T: Topology>(topo: &T, labeling: &Labeling) {
        for u in 0..topo.num_nodes() {
            for v in 0..topo.num_nodes() {
                if u == v {
                    continue;
                }
                let p = r_path(topo, labeling, u, v);
                assert_eq!(p[0], u);
                assert_eq!(*p.last().unwrap(), v);
                // Monotone labels (partial-order preserved, Lemma 6.1/6.4).
                let labels: Vec<usize> = p.iter().map(|&n| labeling.label(n)).collect();
                if labeling.label(u) < labeling.label(v) {
                    assert!(labels.windows(2).all(|w| w[0] < w[1]), "u={u} v={v}");
                } else {
                    assert!(labels.windows(2).all(|w| w[0] > w[1]), "u={u} v={v}");
                }
                // Shortest (Lemma 6.1 for mesh, 6.4 for cube).
                assert_eq!(p.len() - 1, topo.distance(u, v), "u={u} v={v}");
            }
        }
    }

    #[test]
    fn lemma_6_1_mesh_paths_shortest_and_monotone() {
        for (w, h) in [(4, 3), (3, 4), (6, 6), (5, 5), (2, 8)] {
            let m = Mesh2D::new(w, h);
            let l = mesh2d_snake(&m);
            check_r_shortest_and_monotone(&m, &l);
        }
    }

    #[test]
    fn lemma_6_4_hypercube_paths_shortest_and_monotone() {
        for dim in 1..=6 {
            let c = Hypercube::new(dim);
            let l = hypercube_gray(&c);
            check_r_shortest_and_monotone(&c, &l);
        }
    }

    #[test]
    fn mesh3d_paths_monotone_and_terminate() {
        // The 3D snake labeling gives monotone paths; they are not always
        // shortest (the dissertation only proves shortest-ness for 2D mesh
        // and hypercube), but R must still deliver.
        let m = Mesh3D::new(3, 3, 3);
        let l = mesh3d_snake(&m);
        for u in 0..m.num_nodes() {
            for v in 0..m.num_nodes() {
                if u == v {
                    continue;
                }
                let p = r_path(&m, &l, u, v);
                assert_eq!(*p.last().unwrap(), v);
                let labels: Vec<usize> = p.iter().map(|&n| l.label(n)).collect();
                assert!(
                    labels
                        .windows(2)
                        .all(|w| (w[0] < w[1]) == (l.label(u) < l.label(v))),
                    "u={u} v={v}"
                );
            }
        }
    }

    #[test]
    fn kary_gray_paths_monotone_and_terminate() {
        let t = KAryNCube::mesh(3, 3);
        let l = karyn_gray(&t);
        for u in 0..t.num_nodes() {
            for v in 0..t.num_nodes() {
                if u == v {
                    continue;
                }
                let p = r_path(&t, &l, u, v);
                assert_eq!(*p.last().unwrap(), v);
            }
        }
    }

    #[test]
    fn r_extend_appends_in_place() {
        let m = Mesh2D::new(4, 4);
        let l = mesh2d_snake(&m);
        let mut path = vec![m.node(0, 0)];
        r_extend(&m, &l, &mut path, m.node(2, 0));
        r_extend(&m, &l, &mut path, m.node(3, 2));
        assert_eq!(path[0], m.node(0, 0));
        assert_eq!(*path.last().unwrap(), m.node(3, 2));
        assert!(mcast_topology::graph::is_walk(&m, &path));
    }
}
