//! The sorted MP/MC heuristic of §5.1 (Figs 5.1–5.2).
//!
//! The host graph fixes one Hamiltonian cycle `C = (v_1, …, v_m, v_1)` with
//! the position mapping `h(v_i) = i`. For a multicast from `u0`, every node
//! gets the rotated sorting key `f(x) = h(x) + m` if `h(x) < h(u0)`, else
//! `h(x)`; destinations are visited in ascending `f` order, and each
//! forward node greedily moves to its neighbor with the largest `f` not
//! exceeding the next destination's (Theorem 5.1 proves this always
//! reaches it).
//!
//! The implementation mirrors the dissertation's split into a *message
//! preparation* part (run once at the source) and a *message routing* part
//! (run at every forward node); [`sorted_mp`] / [`sorted_mc`] drive the two
//! to produce the complete route.

use mcast_topology::{HamiltonCycle, NodeId, Topology};

use crate::model::{MulticastRoute, MulticastSet, PathRoute};

/// Message preparation (Fig 5.1): sorts the destinations in ascending `f`
/// order. This is the list carried in the message header.
pub fn prepare<T: Topology + ?Sized>(
    _topo: &T,
    cycle: &HamiltonCycle,
    mc: &MulticastSet,
) -> Vec<NodeId> {
    let mut d = mc.destinations.clone();
    d.sort_by_key(|&x| cycle.f(mc.source, x));
    d
}

/// One routing decision (Fig 5.2, step 3): from local node `w`, the next
/// forward node toward the first remaining destination `d` — the neighbor
/// maximizing `f` among those with `f(p) ≤ f(d)`.
///
/// # Panics
/// Panics if `f(w) ≥ f(d)` (the message is past `d`, which Theorem 5.1
/// shows cannot happen) or no candidate neighbor exists.
pub fn route_step<T: Topology + ?Sized>(
    topo: &T,
    cycle: &HamiltonCycle,
    u0: NodeId,
    w: NodeId,
    d: NodeId,
) -> NodeId {
    let fd = cycle.f(u0, d);
    let fw = cycle.f(u0, w);
    assert!(
        fw < fd,
        "routing invariant violated: f(w) = {fw} >= f(d) = {fd}"
    );
    let mut nb = Vec::new();
    topo.neighbors_into(w, &mut nb);
    nb.into_iter()
        .filter(|&p| cycle.f(u0, p) <= fd)
        .max_by_key(|&p| cycle.f(u0, p))
        .expect("the cycle successor of w is a neighbor with f(w) < f ≤ f(d)")
}

/// Runs the sorted-MP algorithm, returning the multicast path.
pub fn sorted_mp<T: Topology + ?Sized>(
    topo: &T,
    cycle: &HamiltonCycle,
    mc: &MulticastSet,
) -> PathRoute {
    let sorted = prepare(topo, cycle, mc);
    PathRoute::new(drive(topo, cycle, mc.source, mc.source, &sorted))
}

/// Runs the sorted-MC algorithm: the source is appended as a final
/// "destination" so the message returns home, closing the cycle (§5.1's
/// remark: give `u0` position `m + 1`, i.e. key `f(u0) + m`).
pub fn sorted_mc<T: Topology + ?Sized>(
    topo: &T,
    cycle: &HamiltonCycle,
    mc: &MulticastSet,
) -> PathRoute {
    let sorted = prepare(topo, cycle, mc);
    if sorted.is_empty() {
        // Nothing to acknowledge: the degenerate cycle stays at the source.
        return PathRoute::new(vec![mc.source]);
    }
    let mut nodes = drive(topo, cycle, mc.source, mc.source, &sorted);
    // Return leg: keep applying the greedy step with the wrapped key
    // f(u0) + m until the source is reached again.
    let m = cycle.len();
    let target_key = cycle.f(mc.source, mc.source) + m;
    let mut cur = *nodes.last().expect("path nonempty");
    while cur != mc.source || nodes.len() == 1 {
        let mut nb = Vec::new();
        topo.neighbors_into(cur, &mut nb);
        let next = nb
            .into_iter()
            .filter(|&p| wrapped_f(cycle, mc.source, p) <= target_key)
            .max_by_key(|&p| wrapped_f(cycle, mc.source, p))
            .expect("cycle successor always qualifies");
        nodes.push(next);
        cur = next;
        if cur == mc.source {
            break;
        }
    }
    PathRoute::new(nodes)
}

/// `f` extended so the source's *second* visit sorts after everything:
/// the source itself gets key `f(u0) + m`.
fn wrapped_f(cycle: &HamiltonCycle, u0: NodeId, x: NodeId) -> usize {
    if x == u0 {
        cycle.f(u0, u0) + cycle.len()
    } else {
        cycle.f(u0, x)
    }
}

/// Drives the per-hop routing part over a sorted destination list.
fn drive<T: Topology + ?Sized>(
    topo: &T,
    cycle: &HamiltonCycle,
    u0: NodeId,
    start: NodeId,
    sorted: &[NodeId],
) -> Vec<NodeId> {
    let mut nodes = vec![start];
    let mut cur = start;
    for &d in sorted {
        while cur != d {
            let next = route_step(topo, cycle, u0, cur, d);
            nodes.push(next);
            cur = next;
        }
    }
    nodes
}

/// Convenience: the sorted-MP route wrapped as a [`MulticastRoute`].
pub fn sorted_mp_route<T: Topology + ?Sized>(
    topo: &T,
    cycle: &HamiltonCycle,
    mc: &MulticastSet,
) -> MulticastRoute {
    MulticastRoute::Path(sorted_mp(topo, cycle, mc))
}

/// Convenience: the sorted-MC route wrapped as a [`MulticastRoute`].
pub fn sorted_mc_route<T: Topology + ?Sized>(
    topo: &T,
    cycle: &HamiltonCycle,
    mc: &MulticastSet,
) -> MulticastRoute {
    MulticastRoute::Cycle(sorted_mc(topo, cycle, mc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_topology::hamiltonian::{hypercube_cycle, mesh2d_cycle};
    use mcast_topology::{Hypercube, Mesh2D};

    #[test]
    fn section_5_4_mesh_example() {
        // §5.4: 4×4 mesh, K = {9, 0, 1, 6, 12} with u0 = 9. The sorted
        // destination list is (12, 0, 1, 6) and the resulting MP is
        // (9, 13, 12, 8, 4, 0, 1, 2, 6) — Fig 5.7.
        let m = Mesh2D::new(4, 4);
        let c = mesh2d_cycle(&m);
        let mc = MulticastSet::new(9, [0, 1, 6, 12]);
        assert_eq!(prepare(&m, &c, &mc), vec![12, 0, 1, 6]);
        let p = sorted_mp(&m, &c, &mc);
        assert_eq!(p.nodes(), &[9, 13, 12, 8, 4, 0, 1, 2, 6]);
    }

    #[test]
    fn section_5_4_cube_example_prefix() {
        // §5.4: 4-cube, u0 = 0011,
        // K = {0011, 0100, 0111, 1100, 1010, 1111}. Sorted by f (Table
        // 5.4): 0010(4), 0111(6), 0100(8), 1100(9), 1111(11), 1010(13) —
        // destinations only: 0111, 0100, 1100, 1111, 1010.
        let h = Hypercube::new(4);
        let c = hypercube_cycle(&h);
        let mc = MulticastSet::new(0b0011, [0b0100, 0b0111, 0b1100, 0b1010, 0b1111]);
        assert_eq!(
            prepare(&h, &c, &mc),
            vec![0b0111, 0b0100, 0b1100, 0b1111, 0b1010]
        );
        let p = sorted_mp(&h, &c, &mc);
        let route = MulticastRoute::Path(p);
        route.validate(&h, &mc).unwrap();
    }

    #[test]
    fn mp_visits_destinations_in_f_order() {
        let m = Mesh2D::new(6, 6);
        let c = mesh2d_cycle(&m);
        let mc = MulticastSet::new(17, [3, 30, 9, 22, 35, 0]);
        let sorted = prepare(&m, &c, &mc);
        let p = sorted_mp(&m, &c, &mc);
        let mut pos = Vec::new();
        for &d in &sorted {
            pos.push(p.hops_to(d).expect("every destination visited"));
        }
        let mut sorted_pos = pos.clone();
        sorted_pos.sort_unstable();
        assert_eq!(pos, sorted_pos, "visit order follows f order");
    }

    #[test]
    fn f_values_strictly_increase_along_path() {
        // Fact 2 of Theorem 5.1.
        let m = Mesh2D::new(8, 8);
        let c = mesh2d_cycle(&m);
        let mc = MulticastSet::new(20, [1, 13, 40, 63, 7, 55]);
        let p = sorted_mp(&m, &c, &mc);
        let keys: Vec<usize> = p.nodes().iter().map(|&x| c.f(20, x)).collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "keys: {keys:?}");
        p.validate(&m, false).unwrap();
    }

    #[test]
    fn mc_returns_to_source_and_is_valid_cycle() {
        let m = Mesh2D::new(4, 4);
        let c = mesh2d_cycle(&m);
        let mc = MulticastSet::new(9, [0, 1, 6, 12]);
        let cyc = sorted_mc(&m, &c, &mc);
        assert_eq!(cyc.nodes()[0], 9);
        assert_eq!(*cyc.nodes().last().unwrap(), 9);
        let route = MulticastRoute::Cycle(cyc);
        route.validate(&m, &mc).unwrap();
    }

    #[test]
    fn single_destination_mp_is_plain_path() {
        let h = Hypercube::new(5);
        let c = hypercube_cycle(&h);
        let mc = MulticastSet::new(0, [31]);
        let p = sorted_mp(&h, &c, &mc);
        assert_eq!(p.nodes()[0], 0);
        assert_eq!(*p.nodes().last().unwrap(), 31);
        MulticastRoute::Path(p).validate(&h, &mc).unwrap();
    }

    #[test]
    fn worst_case_traffic_bounded_by_cycle_length() {
        // The MP never exceeds m − 1 channels (it walks the Hamiltonian
        // cycle at worst); the MC never exceeds m.
        let m = Mesh2D::new(6, 6);
        let c = mesh2d_cycle(&m);
        let all: Vec<NodeId> = (0..36).collect();
        let mc = MulticastSet::new(0, all);
        let p = sorted_mp(&m, &c, &mc);
        assert!(p.len() <= 35, "got {}", p.len());
        let cy = sorted_mc(&m, &c, &mc);
        assert!(cy.len() <= 36, "got {}", cy.len());
    }
}
