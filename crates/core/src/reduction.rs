//! The NP-completeness reduction constructions of Chapter 4.
//!
//! These are executable versions of the proofs' polynomial-time
//! transformations. They do not (and cannot) prove NP-completeness at run
//! time, but the test suite machine-checks the structural lemmas the
//! proofs rest on:
//!
//! * Theorem 4.1: grid graph `G` → 2D mesh `M` with `K = V(G)`, such that
//!   `G` Hamiltonian-cycle ⇔ `M` has an OMC for `K` of length `|V(G)|`;
//! * Lemma 4.1: `G` → `G'` (four added points `p, q, t, s`) such that `G`
//!   Hamiltonian-cycle ⇔ `G'` has a Hamiltonian path from `s`;
//! * Theorem 4.5: grid graph `G` with `k` nodes → multicast set `K` of
//!   4k-bit hypercube addresses with `d_H(u_i, u_j) = 6` iff
//!   `(v_i, v_j) ∈ E(G)` and `8` otherwise (Lemmas 4.2/4.3), so `G`
//!   Hamiltonian ⇔ the OMC for `K` has length `6k`.

use mcast_topology::graph::bfs_distances;
use mcast_topology::{GridGraph, Mesh2D, NodeId, Topology};

use crate::model::MulticastSet;

/// Theorem 4.1's construction: embed the grid graph in its enclosing mesh
/// and take `K` = the embedded vertices with an arbitrary member (the
/// first) as source.
pub fn omc_instance_from_grid(g: &GridGraph) -> (Mesh2D, MulticastSet) {
    let (mesh, ids) = g.enclosing_mesh();
    let source = ids[0];
    let mc = MulticastSet::new(source, ids.iter().copied().filter(|&n| n != source));
    (mesh, mc)
}

/// Lemma 4.1's construction: given grid graph `G`, build `G'` with the
/// four extra points around the Lemma's corner node `u`, returning
/// `(G', s, t)` where any Hamiltonian path of `G'` from `s` must end at
/// `t`.
pub fn lemma_4_1_extension(g: &GridGraph) -> (GridGraph, NodeId, NodeId) {
    let u = g.lemma_4_1_corner();
    let (ux, uy) = g.point(u);
    let p = (ux - 1, uy);
    let q = (ux - 1, uy + 1);
    let t = (ux - 2, uy + 1);
    let s = (ux - 1, uy - 1);
    for pt in [p, q, t, s] {
        assert!(
            g.node_at(pt).is_none(),
            "added point {pt:?} collides with G"
        );
    }
    let mut points: Vec<(i64, i64)> = g.points().to_vec();
    points.extend([p, q, t, s]);
    let g2 = GridGraph::new(points);
    let s_id = g2.node_at(s).expect("s was added");
    let t_id = g2.node_at(t).expect("t was added");
    (g2, s_id, t_id)
}

/// A hypercube address of dimension `4k` produced by Theorem 4.5's
/// selection procedure, stored as `k` 4-bit blocks. Block `i` holds bits
/// `4i..4i+4` (block 0 in the least significant bits).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockAddress {
    blocks: Vec<u8>,
}

impl BlockAddress {
    /// Number of 4-bit blocks (`k`).
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The 4-bit block `a_i`.
    pub fn block(&self, i: usize) -> u8 {
        self.blocks[i]
    }

    /// Hamming distance between two block addresses.
    pub fn hamming(&self, other: &BlockAddress) -> u32 {
        assert_eq!(self.blocks.len(), other.blocks.len());
        self.blocks
            .iter()
            .zip(&other.blocks)
            .map(|(&a, &b)| (a ^ b).count_ones())
            .sum()
    }

    /// Formats as the dissertation does: blocks MSB-side first, e.g.
    /// `1111 0000 …` for `u_0` (block 0 printed first, matching
    /// Example 4.1's row layout `a_0(q) a_1(q) …`).
    pub fn format(&self) -> String {
        self.blocks
            .iter()
            .map(|&b| format!("{:04b}", b))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// The BFS ordering of Theorem 4.5: nodes sorted by (BFS layer from node
/// 0, node id).
pub fn bfs_order(g: &GridGraph) -> Vec<NodeId> {
    let d = bfs_distances(g, 0);
    let mut order: Vec<NodeId> = (0..g.num_nodes()).collect();
    order.sort_by_key(|&v| (d[v], v));
    order
}

/// Theorem 4.5's selection procedure: builds the multicast set
/// `K = {u_0, …, u_{k−1}}` of `4k`-bit addresses for a connected grid
/// graph with `k` nodes (BFS-ordered as `v_0, …, v_{k−1}`).
///
/// Returns addresses indexed like the BFS order: `result[m]` is `u_m`,
/// the address standing for grid node `bfs_order(g)[m]`.
///
/// # Panics
/// Panics if the grid graph violates the proof's structural facts
/// (`1 ≤ |V_m| ≤ 2` for `m > 0`, `|U_{p,m}| ≤ 3`).
pub fn theorem_4_5_selection(g: &GridGraph) -> Vec<BlockAddress> {
    let order = bfs_order(g);
    let k = order.len();
    // position[v] = m such that order[m] = v.
    let mut position = vec![0usize; k];
    for (m, &v) in order.iter().enumerate() {
        position[v] = m;
    }
    let mut out: Vec<BlockAddress> = Vec::with_capacity(k);
    // u_0: a_0 = 1111.
    let mut u0 = vec![0u8; k];
    u0[0] = 0b1111;
    out.push(BlockAddress { blocks: u0 });
    for m in 1..k {
        let vm = order[m];
        let mut blocks = vec![0u8; k];
        // V_m = earlier neighbors of v_m.
        let vm_neighbors = g.neighbors(vm);
        let v_m: Vec<usize> = vm_neighbors
            .iter()
            .map(|&nb| position[nb])
            .filter(|&p| p < m)
            .collect();
        assert!(
            (1..=2).contains(&v_m.len()),
            "grid graph violates 1 <= |V_m| <= 2 at m={m} (got {})",
            v_m.len()
        );
        for &p in &v_m {
            // U_{p,m} = {v_q : p < q < m, (v_p, v_q) ∈ E(G)}.
            let vp = order[p];
            let u_pm = g
                .neighbors(vp)
                .iter()
                .map(|&nb| position[nb])
                .filter(|&q| p < q && q < m)
                .count();
            blocks[p] = match u_pm {
                0 => 0b1000,
                1 => 0b0100,
                2 => 0b0010,
                3 => 0b0001,
                _ => panic!("grid graph degree bound violated: |U| = {u_pm}"),
            };
        }
        blocks[m] = if v_m.len() == 1 { 0b1110 } else { 0b1100 };
        out.push(BlockAddress { blocks });
    }
    out
}

/// Machine-check of Lemmas 4.2/4.3 for a given grid graph: every pair of
/// selected addresses is at Hamming distance 6 iff the corresponding grid
/// nodes are adjacent, 8 otherwise. Returns `Err` with a witness on
/// failure.
pub fn verify_lemmas_4_2_4_3(g: &GridGraph) -> Result<(), String> {
    let order = bfs_order(g);
    let addrs = theorem_4_5_selection(g);
    for i in 0..order.len() {
        for j in (i + 1)..order.len() {
            let expected = if g.adjacent(order[i], order[j]) { 6 } else { 8 };
            let got = addrs[i].hamming(&addrs[j]);
            if got != expected as u32 {
                return Err(format!(
                    "d_H(u_{i}, u_{j}) = {got}, expected {expected} (grid nodes {} and {})",
                    order[i], order[j]
                ));
            }
        }
    }
    Ok(())
}

/// The full OMC instance of Theorem 4.5: for a `k`-node grid graph, `G`
/// has a Hamiltonian cycle iff the `4k`-cube has a multicast cycle for
/// the selected `K` with length `≤ 6k` (by Lemmas 4.2/4.3 the optimal
/// terminal tour length is exactly `6k` in that case).
///
/// Returns the terminal-tour length of the best cyclic order of `K`
/// (computed by Held–Karp over the pairwise Hamming distances — feasible
/// because `k` is small), which equals `6k` iff `G` is Hamiltonian.
pub fn theorem_4_5_tour_length(g: &GridGraph) -> usize {
    let addrs = theorem_4_5_selection(g);
    let k = addrs.len();
    assert!(k >= 3, "tours need at least 3 nodes");
    assert!(k <= 16, "Held–Karp limited to 16 terminals");
    let dist: Vec<Vec<usize>> = (0..k)
        .map(|i| {
            (0..k)
                .map(|j| addrs[i].hamming(&addrs[j]) as usize)
                .collect()
        })
        .collect();
    // Held–Karp from node 0.
    let full = (1usize << k) - 1;
    let inf = usize::MAX / 4;
    let mut dp = vec![vec![inf; k]; full + 1];
    dp[1][0] = 0;
    for s in 1..=full {
        if s & 1 == 0 {
            continue;
        }
        for last in 0..k {
            if s >> last & 1 == 0 || dp[s][last] == inf {
                continue;
            }
            for next in 1..k {
                if s >> next & 1 == 1 {
                    continue;
                }
                let ns = s | 1 << next;
                let c = dp[s][last] + dist[last][next];
                if c < dp[ns][next] {
                    dp[ns][next] = c;
                }
            }
        }
    }
    (1..k)
        .map(|last| dp[full][last] + dist[last][0])
        .min()
        .expect("k >= 3")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_topology::grid::example_4_1_grid;

    #[test]
    fn example_4_1_addresses_match_dissertation() {
        // Example 4.1 lists the selected addresses for the 8-node grid.
        let g = example_4_1_grid();
        let addrs = theorem_4_5_selection(&g);
        assert_eq!(addrs.len(), 8);
        assert_eq!(addrs[0].format(), "1111 0000 0000 0000 0000 0000 0000 0000");
        // u_1: a_0 = 1000 (|U_{0,1}| = 0), a_1 = 1110 (|V_1| = 1).
        assert_eq!(addrs[1].block(0), 0b1000);
        assert_eq!(addrs[1].block(1), 0b1110);
        // u_2: a_0 = 0100 (|U_{0,2}| = 1 since v_1 ∈ U), a_2 = 1110.
        assert_eq!(addrs[2].block(0), 0b0100);
        assert_eq!(addrs[2].block(2), 0b1110);
        for a in &addrs {
            // Property 1: every address has weight 4.
            let weight: u32 = (0..a.num_blocks()).map(|i| a.block(i).count_ones()).sum();
            assert_eq!(weight, 4, "{}", a.format());
        }
    }

    #[test]
    fn lemmas_4_2_4_3_hold_on_example() {
        verify_lemmas_4_2_4_3(&example_4_1_grid()).unwrap();
    }

    #[test]
    fn lemmas_hold_on_assorted_grids() {
        let grids = [
            GridGraph::new([
                (0, 0),
                (1, 0),
                (2, 0),
                (2, 1),
                (2, 2),
                (1, 2),
                (0, 2),
                (0, 1),
            ]),
            GridGraph::new([(0, 0), (1, 0), (1, 1), (2, 1), (2, 2)]),
            GridGraph::new((0..3).flat_map(|x| (0..3).map(move |y| (x, y)))),
            GridGraph::new([(0, 0), (0, 1), (0, 2), (0, 3)]),
        ];
        for (i, g) in grids.iter().enumerate() {
            assert!(g.is_connected(), "grid {i}");
            verify_lemmas_4_2_4_3(g).unwrap_or_else(|e| panic!("grid {i}: {e}"));
        }
    }

    #[test]
    fn theorem_4_5_detects_hamiltonicity() {
        // The 2×4 block is Hamiltonian: tour length must be exactly 6k.
        let g = example_4_1_grid();
        assert!(g.find_hamiltonian_cycle().is_some());
        assert_eq!(theorem_4_5_tour_length(&g), 6 * g.num_nodes());

        // A 7-node "T" shape is not Hamiltonian: tour must exceed 6k.
        let t = GridGraph::new([(0, 1), (1, 1), (2, 1), (1, 0), (1, 2), (3, 1), (1, 3)]);
        assert!(t.is_connected());
        assert!(t.find_hamiltonian_cycle().is_none());
        assert!(theorem_4_5_tour_length(&t) > 6 * t.num_nodes());
    }

    #[test]
    fn theorem_4_1_instance_on_hamiltonian_grid() {
        // For a Hamiltonian grid graph, the mesh OMC over K = V(G) has
        // length exactly |V(G)|.
        let g = example_4_1_grid();
        let (mesh, mc) = omc_instance_from_grid(&g);
        let (len, _) = crate::exact::optimal_mc(&mesh, &mc).unwrap();
        assert_eq!(len, g.num_nodes());
    }

    #[test]
    fn lemma_4_1_construction_properties() {
        let g = example_4_1_grid();
        let (g2, s, t) = lemma_4_1_extension(&g);
        assert_eq!(g2.num_nodes(), g.num_nodes() + 4);
        // s has degree 1 (only neighbor p) and t has degree 1 (only q).
        assert_eq!(g2.degree(s), 1);
        assert_eq!(g2.degree(t), 1);
        // G Hamiltonian-cycle ⇒ G' has a Hamiltonian path from s.
        assert!(g.find_hamiltonian_cycle().is_some());
        let path = g2
            .find_hamiltonian_path_from(s)
            .expect("lemma 4.1 forward direction");
        assert_eq!(
            *path.last().unwrap(),
            t,
            "the path must end at t (degree-1)"
        );
    }

    #[test]
    fn lemma_4_1_reverse_direction_on_non_hamiltonian_grid() {
        // A path-shaped grid has no Hamiltonian cycle; G' then has no
        // Hamiltonian path from s.
        let g = GridGraph::new([(5, 5), (6, 5), (7, 5)]);
        assert!(g.find_hamiltonian_cycle().is_none());
        let (g2, s, _) = lemma_4_1_extension(&g);
        assert!(g2.find_hamiltonian_path_from(s).is_none());
    }
}
