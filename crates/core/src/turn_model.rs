//! Partially adaptive unicast routing for 2D meshes — the §8.2 research
//! direction ("adaptive routing may be used… some adaptive unicast routing
//! schemes are proposed [36][37]"), implemented as the *west-first* turn
//! model of Glass & Ni [37].
//!
//! West-first forbids the two turns into the `−X` direction: a message
//! makes all of its westward hops first, then routes *adaptively* among
//! the remaining minimal directions (`+X, +Y, −Y`). Removing those two
//! turns breaks every abstract turn cycle, so any minimal west-first
//! route set is deadlock-free — verified here by building the full
//! channel-dependency relation and checking acyclicity.

use mcast_topology::mesh2d::{Dir2, Mesh2D};
use mcast_topology::{Channel, NodeId};

/// Whether the turn `from_dir → to_dir` is permitted by west-first
/// routing (all turns into `−X` are forbidden; 180° reversals never occur
/// in minimal routing).
pub fn turn_allowed(from_dir: Dir2, to_dir: Dir2) -> bool {
    if to_dir == Dir2::NegX {
        from_dir == Dir2::NegX
    } else {
        !matches!(
            (from_dir, to_dir),
            (Dir2::PosX, Dir2::NegX)
                | (Dir2::NegX, Dir2::PosX)
                | (Dir2::PosY, Dir2::NegY)
                | (Dir2::NegY, Dir2::PosY)
        )
    }
}

/// All minimal next hops west-first routing permits from `at` toward
/// `dest`, given the incoming channel (`None` at the source).
///
/// Returns an empty vector only when `at == dest`.
pub fn west_first_next(
    mesh: &Mesh2D,
    at: NodeId,
    incoming: Option<Channel>,
    dest: NodeId,
) -> Vec<Channel> {
    if at == dest {
        return Vec::new();
    }
    let (x, y) = mesh.coords(at);
    let (dx, dy) = mesh.coords(dest);
    // Minimal directions toward the destination.
    let mut dirs = Vec::with_capacity(2);
    if dx < x {
        // Westward traffic first — and *only* westward while west remains.
        dirs.push(Dir2::NegX);
    } else {
        if dx > x {
            dirs.push(Dir2::PosX);
        }
        if dy > y {
            dirs.push(Dir2::PosY);
        }
        if dy < y {
            dirs.push(Dir2::NegY);
        }
    }
    let in_dir = incoming.map(|c| mesh.channel_direction(c));
    dirs.into_iter()
        .filter(|&d| in_dir.is_none_or(|i| turn_allowed(i, d)))
        .map(|d| Channel::new(at, mesh.step(at, d).expect("minimal direction exists")))
        .collect()
}

/// A deterministic minimal west-first path, with `select` choosing among
/// the adaptive candidates at each hop (e.g. by congestion in a router,
/// or round-robin in tests).
pub fn west_first_path<F>(mesh: &Mesh2D, s: NodeId, t: NodeId, mut select: F) -> Vec<NodeId>
where
    F: FnMut(NodeId, &[Channel]) -> usize,
{
    let mut path = vec![s];
    let mut incoming = None;
    let mut cur = s;
    while cur != t {
        let options = west_first_next(mesh, cur, incoming, t);
        assert!(
            !options.is_empty(),
            "west-first always has a minimal option"
        );
        let choice = options[select(cur, &options).min(options.len() - 1)];
        incoming = Some(choice);
        cur = choice.to;
        path.push(cur);
    }
    path
}

/// Degree of adaptivity: the number of distinct minimal west-first paths
/// between two nodes (exponential in principle; computed by DP over the
/// minimal rectangle, valid because west moves are a fixed prefix).
pub fn west_first_path_count(mesh: &Mesh2D, s: NodeId, t: NodeId) -> u128 {
    let (sx, sy) = mesh.coords(s);
    let (tx, ty) = mesh.coords(t);
    if tx < sx {
        // Westward prefix is forced; adaptivity only in the remaining
        // column segment (single path).
        return 1;
    }
    // Fully adaptive within the rectangle: C(dx + dy, dx) minimal paths.
    let dx = (tx - sx) as u128;
    let dy = sy.abs_diff(ty) as u128;
    let mut c: u128 = 1;
    for i in 0..dx.min(dy) {
        c = c * (dx + dy - i) / (i + 1);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_topology::cdg::cdg_from_routing;
    use mcast_topology::Topology;

    #[test]
    fn west_first_paths_are_minimal() {
        let m = Mesh2D::new(6, 6);
        for s in 0..m.num_nodes() {
            for t in 0..m.num_nodes() {
                if s == t {
                    continue;
                }
                // Greedy select 0 (deterministic) and round-robin.
                let p0 = west_first_path(&m, s, t, |_, _| 0);
                assert_eq!(p0.len() - 1, m.distance(s, t), "s={s} t={t}");
                let mut i = 0;
                let prr = west_first_path(&m, s, t, |_, opts| {
                    i += 1;
                    i % opts.len()
                });
                assert_eq!(prr.len() - 1, m.distance(s, t), "rr s={s} t={t}");
            }
        }
    }

    #[test]
    fn full_west_first_relation_is_deadlock_free() {
        // Build the CDG over *every* legal (incoming, destination, next)
        // triple — the union of all adaptive choices — and check
        // acyclicity: the Glass–Ni guarantee.
        let m = Mesh2D::new(5, 5);
        let mut cdg = mcast_topology::cdg::ChannelDependencyGraph::new(m.channels());
        for c in m.channels() {
            for dest in 0..m.num_nodes() {
                if dest == c.to {
                    continue;
                }
                for next in west_first_next(&m, c.to, Some(c), dest) {
                    cdg.add_dependency(c, next);
                }
            }
        }
        assert!(
            cdg.is_acyclic(),
            "west-first turn model must be deadlock-free"
        );
    }

    #[test]
    fn fully_adaptive_relation_has_cycles() {
        // Contrast: allowing all minimal turns (no turn restriction)
        // creates dependency cycles.
        let m = Mesh2D::new(4, 4);
        let mut cdg = mcast_topology::cdg::ChannelDependencyGraph::new(m.channels());
        for c in m.channels() {
            for dest in 0..m.num_nodes() {
                if dest == c.to {
                    continue;
                }
                let (x, y) = m.coords(c.to);
                let (dx, dy) = m.coords(dest);
                let mut dirs = Vec::new();
                if dx > x {
                    dirs.push(Dir2::PosX);
                }
                if dx < x {
                    dirs.push(Dir2::NegX);
                }
                if dy > y {
                    dirs.push(Dir2::PosY);
                }
                if dy < y {
                    dirs.push(Dir2::NegY);
                }
                for d in dirs {
                    let to = m.step(c.to, d).unwrap();
                    if to != c.from {
                        cdg.add_dependency(c, Channel::new(c.to, to));
                    }
                }
            }
        }
        assert!(
            !cdg.is_acyclic(),
            "unrestricted minimal adaptive routing cycles"
        );
    }

    #[test]
    fn xfirst_is_a_west_first_subrelation() {
        // Every XY route is a legal west-first route (X-first makes all X
        // hops — including west — before any Y hop).
        use crate::geometry::RoutingGeometry;
        let m = Mesh2D::new(5, 4);
        for s in 0..m.num_nodes() {
            for t in 0..m.num_nodes() {
                if s == t {
                    continue;
                }
                let xy = m.shortest_path(s, t);
                // Validate each hop against the west-first relation.
                let mut incoming = None;
                for w in xy.windows(2) {
                    let legal = west_first_next(&m, w[0], incoming, t);
                    let hop = Channel::new(w[0], w[1]);
                    assert!(legal.contains(&hop), "XY hop {hop:?} illegal? s={s} t={t}");
                    incoming = Some(hop);
                }
            }
        }
    }

    #[test]
    fn adaptivity_counts() {
        let m = Mesh2D::new(8, 8);
        // East-bound traffic is fully adaptive: C(3+3, 3) = 20 paths.
        assert_eq!(west_first_path_count(&m, m.node(0, 0), m.node(3, 3)), 20);
        // West-bound traffic is deterministic.
        assert_eq!(west_first_path_count(&m, m.node(5, 2), m.node(1, 6)), 1);
        // Straight lines have one path.
        assert_eq!(west_first_path_count(&m, m.node(0, 0), m.node(7, 0)), 1);
    }

    #[test]
    fn cdg_from_routing_compat() {
        // The deterministic select-0 west-first instance is also acyclic
        // via the generic builder.
        let m = Mesh2D::new(4, 4);
        let cdg = cdg_from_routing(m.channels(), m.num_nodes(), |at, inc, dest| {
            west_first_next(&m, at, inc, dest).first().copied()
        });
        assert!(cdg.is_acyclic());
    }
}
