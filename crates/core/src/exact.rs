//! Exact (optimal) solvers for the Chapter 3 optimization problems on
//! *small* instances.
//!
//! Chapter 4 proves OMP, OMC, MST and OMS are NP-complete for meshes and
//! hypercubes, which is precisely why the dissertation develops
//! heuristics. These exponential-time solvers exist to *measure* the
//! heuristics' optimality gap in tests and ablation benches; they are not
//! part of the routing fast path.
//!
//! * OMP/OMC: branch-and-bound over simple paths, pruned with a
//!   visit-all-terminals walk DP lower bound;
//! * MST: the Dreyfus–Wagner / Erickson-style subset DP;
//! * OMS: minimization over set partitions of the destination set, using
//!   the OMP solver per block.

use std::collections::BTreeMap;

use mcast_topology::graph::bfs_distances;
use mcast_topology::{NodeId, Topology};

use crate::model::MulticastSet;

/// Pairwise-distance oracle over the terminal set, precomputed with BFS.
struct Dists {
    /// `dist[t]` = BFS distances from terminal `t` to all nodes.
    from_terminal: Vec<Vec<usize>>,
    terminals: Vec<NodeId>,
}

impl Dists {
    fn new<T: Topology + ?Sized>(topo: &T, terminals: &[NodeId]) -> Self {
        Dists {
            from_terminal: terminals.iter().map(|&t| bfs_distances(topo, t)).collect(),
            terminals: terminals.to_vec(),
        }
    }

    fn d(&self, ti: usize, node: NodeId) -> usize {
        self.from_terminal[ti][node]
    }

    fn tt(&self, ti: usize, tj: usize) -> usize {
        self.from_terminal[ti][self.terminals[tj]]
    }
}

/// Lower bound on the length of any walk from `node` visiting every
/// destination in `remaining` (bitmask over destination indices):
/// `max(nearest remaining, spread of remaining)` — admissible for the
/// branch-and-bound.
fn walk_lower_bound(d: &Dists, node: NodeId, remaining: u32) -> usize {
    if remaining == 0 {
        return 0;
    }
    let mut nearest = usize::MAX;
    let mut spread = 0usize;
    let mut i_mask = remaining;
    while i_mask != 0 {
        let i = i_mask.trailing_zeros() as usize;
        i_mask &= i_mask - 1;
        nearest = nearest.min(d.d(i, node));
        let mut j_mask = remaining;
        while j_mask != 0 {
            let j = j_mask.trailing_zeros() as usize;
            j_mask &= j_mask - 1;
            spread = spread.max(d.tt(i, j));
        }
    }
    nearest.max(spread)
}

/// Exact optimal multicast path (OMP): a minimum-length *simple* path
/// starting at the source and containing every destination (Def 3.1).
///
/// Returns `(length, node sequence)`, or `None` if no MP exists (cannot
/// happen on connected topologies). Exponential time — intended for
/// `k ≲ 6` on networks of a few dozen nodes.
pub fn optimal_mp<T: Topology + ?Sized>(
    topo: &T,
    mc: &MulticastSet,
) -> Option<(usize, Vec<NodeId>)> {
    assert!(mc.k() <= 31, "destination bitmask limited to 31");
    let d = Dists::new(topo, &mc.destinations);
    let mut best_len = usize::MAX;
    let mut best_path: Option<Vec<NodeId>> = None;
    let mut visited = vec![false; topo.num_nodes()];
    visited[mc.source] = true;
    let full: u32 = if mc.k() == 32 {
        u32::MAX
    } else {
        (1u32 << mc.k()) - 1
    };
    let start_mask = dest_mask(mc, mc.source);
    let mut path = vec![mc.source];
    dfs_mp(
        topo,
        &d,
        mc,
        full,
        &mut visited,
        &mut path,
        start_mask,
        0,
        &mut best_len,
        &mut best_path,
    );
    best_path.map(|p| (best_len, p))
}

fn dest_mask(mc: &MulticastSet, node: NodeId) -> u32 {
    mc.destinations
        .iter()
        .enumerate()
        .filter(|&(_, &dd)| dd == node)
        .fold(0u32, |m, (i, _)| m | 1 << i)
}

#[allow(clippy::too_many_arguments)]
fn dfs_mp<T: Topology + ?Sized>(
    topo: &T,
    d: &Dists,
    mc: &MulticastSet,
    full: u32,
    visited: &mut [bool],
    path: &mut Vec<NodeId>,
    covered: u32,
    len: usize,
    best_len: &mut usize,
    best_path: &mut Option<Vec<NodeId>>,
) {
    if covered == full {
        if len < *best_len {
            *best_len = len;
            *best_path = Some(path.clone());
        }
        return;
    }
    let node = *path.last().expect("path nonempty");
    let lb = walk_lower_bound(d, node, full & !covered);
    if len + lb >= *best_len {
        return;
    }
    let mut nb = Vec::new();
    topo.neighbors_into(node, &mut nb);
    for &next in &nb {
        if visited[next] {
            continue;
        }
        visited[next] = true;
        path.push(next);
        dfs_mp(
            topo,
            d,
            mc,
            full,
            visited,
            path,
            covered | dest_mask(mc, next),
            len + 1,
            best_len,
            best_path,
        );
        path.pop();
        visited[next] = false;
    }
}

/// Exact optimal multicast cycle (OMC): minimum-length simple cycle
/// through the source containing every destination (Def 3.2).
pub fn optimal_mc<T: Topology + ?Sized>(
    topo: &T,
    mc: &MulticastSet,
) -> Option<(usize, Vec<NodeId>)> {
    assert!(mc.k() <= 31);
    if mc.k() == 0 {
        return Some((0, vec![mc.source]));
    }
    let d = Dists::new(topo, &mc.destinations);
    let mut best_len = usize::MAX;
    let mut best_path: Option<Vec<NodeId>> = None;
    let mut visited = vec![false; topo.num_nodes()];
    visited[mc.source] = true;
    let full: u32 = (1u32 << mc.k()) - 1;
    let mut path = vec![mc.source];
    dfs_mc(
        topo,
        &d,
        mc,
        full,
        &mut visited,
        &mut path,
        0,
        0,
        &mut best_len,
        &mut best_path,
    );
    best_path.map(|p| (best_len, p))
}

#[allow(clippy::too_many_arguments)]
fn dfs_mc<T: Topology + ?Sized>(
    topo: &T,
    d: &Dists,
    mc: &MulticastSet,
    full: u32,
    visited: &mut [bool],
    path: &mut Vec<NodeId>,
    covered: u32,
    len: usize,
    best_len: &mut usize,
    best_path: &mut Option<Vec<NodeId>>,
) {
    let node = *path.last().expect("path nonempty");
    if covered == full && path.len() > 2 && topo.adjacent(node, mc.source) {
        let total = len + 1;
        if total < *best_len {
            *best_len = total;
            let mut cyc = path.clone();
            cyc.push(mc.source);
            *best_path = Some(cyc);
        }
        // Longer extensions can't beat this closure from the same state,
        // but other branches might; fall through to keep exploring only if
        // beneficial (the bound below prunes).
    }
    let lb = if covered == full {
        1
    } else {
        walk_lower_bound(d, node, full & !covered) + 1
    };
    if len + lb >= *best_len {
        return;
    }
    let mut nb = Vec::new();
    topo.neighbors_into(node, &mut nb);
    for &next in &nb {
        if visited[next] {
            continue;
        }
        visited[next] = true;
        path.push(next);
        dfs_mc(
            topo,
            d,
            mc,
            full,
            visited,
            path,
            covered | dest_mask(mc, next),
            len + 1,
            best_len,
            best_path,
        );
        path.pop();
        visited[next] = false;
    }
}

/// Exact minimal Steiner tree (MST, Def 3.3) cost via the classic subset
/// DP: `dp[S][v]` = minimum cost of a tree containing terminal set `S`
/// and node `v`. O(3^k·N + 2^k·N²)-ish with BFS relaxations; fine for
/// `k ≤ 10` on a few hundred nodes.
pub fn optimal_steiner_cost<T: Topology + ?Sized>(topo: &T, mc: &MulticastSet) -> usize {
    let mut terminals = vec![mc.source];
    terminals.extend(&mc.destinations);
    let k = terminals.len();
    if k <= 1 {
        return 0;
    }
    assert!(k <= 20, "subset DP limited to 20 terminals");
    let n = topo.num_nodes();
    let full = (1usize << k) - 1;
    let inf = usize::MAX / 4;
    let mut dp = vec![vec![inf; n]; full + 1];
    for (i, &t) in terminals.iter().enumerate() {
        for (v, dist) in bfs_distances(topo, t).into_iter().enumerate() {
            dp[1 << i][v] = dist;
        }
    }
    for s in 1..=full {
        if s.count_ones() < 2 {
            continue;
        }
        // Merge sub-splits.
        let mut sub = (s - 1) & s;
        while sub != 0 {
            let other = s & !sub;
            if other != 0 {
                #[allow(clippy::needless_range_loop)]
                // dp[sub]/dp[other]/dp[s] alias the same table
                for v in 0..n {
                    let c = dp[sub][v].saturating_add(dp[other][v]);
                    if c < dp[s][v] {
                        dp[s][v] = c;
                    }
                }
            }
            sub = (sub - 1) & s;
        }
        // Dijkstra-style relaxation over unit edges = BFS from a
        // multi-source priority queue.
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(usize, NodeId)>> = (0..n)
            .filter(|&v| dp[s][v] < inf)
            .map(|v| std::cmp::Reverse((dp[s][v], v)))
            .collect();
        let mut nb = Vec::new();
        while let Some(std::cmp::Reverse((cost, v))) = heap.pop() {
            if cost > dp[s][v] {
                continue;
            }
            topo.neighbors_into(v, &mut nb);
            for &w in &nb {
                if cost + 1 < dp[s][w] {
                    dp[s][w] = cost + 1;
                    heap.push(std::cmp::Reverse((cost + 1, w)));
                }
            }
        }
    }
    dp[full][mc.source]
}

/// Exact optimal multicast star (OMS, Def 3.5) cost: the minimum over all
/// partitions `{D_1, …, D_m}` of the destination set of
/// `Σ OMP(u0, D_i)`. Memoizes the per-subset OMP costs. Practical for
/// `k ≤ 5` on small networks.
pub fn optimal_ms_cost<T: Topology + ?Sized>(topo: &T, mc: &MulticastSet) -> usize {
    let k = mc.k();
    if k == 0 {
        return 0;
    }
    assert!(k <= 12, "partition enumeration limited to 12 destinations");
    let full = (1usize << k) - 1;
    // OMP cost per destination subset.
    let mut omp_cost: BTreeMap<usize, usize> = BTreeMap::new();
    for s in 1..=full {
        let dests: Vec<NodeId> = (0..k)
            .filter(|&i| s >> i & 1 == 1)
            .map(|i| mc.destinations[i])
            .collect();
        let sub = MulticastSet {
            source: mc.source,
            destinations: dests,
        };
        let (len, _) = optimal_mp(topo, &sub).expect("connected topology");
        omp_cost.insert(s, len);
    }
    // dp over subsets: best partition cost.
    let mut dp = vec![usize::MAX; full + 1];
    dp[0] = 0;
    for s in 1..=full {
        // Iterate over the block containing the lowest set bit, to avoid
        // counting partitions multiple times.
        let low = s & s.wrapping_neg();
        let rest = s & !low;
        let mut block = rest;
        loop {
            let b = block | low;
            let c = omp_cost[&b].saturating_add(dp[s & !b]);
            if c < dp[s] {
                dp[s] = c;
            }
            if block == 0 {
                break;
            }
            block = (block - 1) & rest;
        }
    }
    dp[full]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_topology::hamiltonian::mesh2d_cycle;
    use mcast_topology::labeling::mesh2d_snake;
    use mcast_topology::{Hypercube, Mesh2D};

    #[test]
    fn omp_single_destination_is_shortest_path() {
        let m = Mesh2D::new(4, 4);
        let mc = MulticastSet::new(0, [15]);
        let (len, path) = optimal_mp(&m, &mc).unwrap();
        assert_eq!(len, 6);
        assert_eq!(path.len(), 7);
    }

    #[test]
    fn omp_beats_or_matches_sorted_mp() {
        let m = Mesh2D::new(4, 4);
        let c = mesh2d_cycle(&m);
        for seed in 0..10usize {
            let dests: Vec<NodeId> = (0..4).map(|i| (seed * 7 + i * 5 + 1) % 16).collect();
            let mc = MulticastSet::new(seed % 16, dests);
            if mc.k() == 0 {
                continue;
            }
            let heur = crate::sorted_mp::sorted_mp(&m, &c, &mc);
            let (opt, path) = optimal_mp(&m, &mc).unwrap();
            assert!(
                opt <= heur.len(),
                "seed {seed}: opt {opt} > heuristic {}",
                heur.len()
            );
            // Optimal path is simple, valid, covers all.
            let route = crate::model::MulticastRoute::Path(crate::model::PathRoute::new(path));
            route.validate(&m, &mc).unwrap();
        }
    }

    #[test]
    fn omc_on_small_mesh() {
        let m = Mesh2D::new(3, 3);
        let mc = MulticastSet::new(0, [2, 8]);
        let (len, cyc) = optimal_mc(&m, &mc).unwrap();
        // Must loop around: at least the bounding perimeter.
        assert!(len >= 8, "len {len}");
        assert_eq!(cyc[0], 0);
        assert_eq!(*cyc.last().unwrap(), 0);
        let route = crate::model::MulticastRoute::Cycle(crate::model::PathRoute::new(cyc));
        route.validate(&m, &mc).unwrap();
    }

    #[test]
    fn steiner_dp_matches_known_small_cases() {
        let m = Mesh2D::new(3, 3);
        // L-shaped terminals: source (0,0), dests (2,0), (0,2): optimal
        // Steiner = 4 (two arms).
        let mc = MulticastSet::new(0, [2, 6]);
        assert_eq!(optimal_steiner_cost(&m, &mc), 4);
        // Plus the far corner: (2,2) can share e.g. a cross through (1,1):
        // best is 6.
        let mc2 = MulticastSet::new(0, [2, 6, 8]);
        assert_eq!(optimal_steiner_cost(&m, &mc2), 6);
    }

    #[test]
    fn steiner_lower_bounds_heuristics() {
        let h = Hypercube::new(4);
        for seed in 0..8usize {
            let dests: Vec<NodeId> = (0..4).map(|i| (seed * 5 + i * 3 + 2) % 16).collect();
            let mc = MulticastSet::new(seed % 16, dests);
            if mc.k() == 0 {
                continue;
            }
            let opt = optimal_steiner_cost(&h, &mc);
            let greedy = crate::greedy_st::greedy_st(&h, &mc).traffic(&h);
            let kmb = crate::kmb::kmb(&h, &mc).traffic();
            assert!(opt <= greedy, "seed {seed}");
            assert!(opt <= kmb, "seed {seed}");
        }
    }

    #[test]
    fn oms_never_exceeds_omp_and_respects_dual_path() {
        let m = Mesh2D::new(4, 4);
        let l = mesh2d_snake(&m);
        for seed in 0..6usize {
            let dests: Vec<NodeId> = (0..3).map(|i| (seed * 11 + i * 7 + 3) % 16).collect();
            let mc = MulticastSet::new((seed * 3) % 16, dests);
            if mc.k() == 0 {
                continue;
            }
            let (omp, _) = optimal_mp(&m, &mc).unwrap();
            let oms = optimal_ms_cost(&m, &mc);
            assert!(oms <= omp, "a single path is one feasible star");
            let dual: usize = crate::dual_path::dual_path(&m, &l, &mc)
                .iter()
                .map(|p| p.len())
                .sum();
            assert!(oms <= dual, "seed {seed}: oms {oms} > dual {dual}");
        }
    }
}
