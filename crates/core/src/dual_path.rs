//! The dual-path deadlock-free multicast wormhole routing algorithm of
//! §6.2.2 (Figs 6.11–6.12) and §6.3.
//!
//! The destination set is split into `D_H` (labels above the source's,
//! sorted ascending) and `D_L` (below, sorted descending). One message
//! travels the high-channel network visiting all of `D_H` in label order,
//! another travels the low-channel network for `D_L`; each hop uses the
//! label-monotone routing function [`crate::routing_fn::r_step`]. Because
//! both subnetworks are acyclic and a message never crosses between them,
//! the scheme is deadlock-free (Assertion 2 / Corollary 6.1) — the test
//! suite verifies the channel dependency graphs are acyclic.
//!
//! The algorithm is generic over any Hamiltonian [`Labeling`], covering 2D
//! mesh, hypercube, 3D mesh and k-ary n-cubes uniformly (§8.1: "these
//! routing algorithms can be applied to any multicomputer networks that
//! have Hamilton paths").

use mcast_topology::{Labeling, NodeId, Topology};

use crate::model::{MulticastRoute, MulticastSet, PathRoute};
use crate::routing_fn::r_extend;

/// Message preparation (Fig 6.11): `(D_H ascending, D_L descending)` by
/// label.
pub fn prepare(labeling: &Labeling, mc: &MulticastSet) -> (Vec<NodeId>, Vec<NodeId>) {
    let l0 = labeling.label(mc.source);
    let mut high: Vec<NodeId> = mc
        .destinations
        .iter()
        .copied()
        .filter(|&d| labeling.label(d) > l0)
        .collect();
    let mut low: Vec<NodeId> = mc
        .destinations
        .iter()
        .copied()
        .filter(|&d| labeling.label(d) < l0)
        .collect();
    high.sort_by_key(|&d| labeling.label(d));
    low.sort_by_key(|&d| std::cmp::Reverse(labeling.label(d)));
    (high, low)
}

/// Routes one path from `start` through `sorted_dests` (label-monotone
/// order) using the routing function `R` (Fig 6.12 run at every node).
pub fn route_path<T: Topology + ?Sized>(
    topo: &T,
    labeling: &Labeling,
    start: NodeId,
    sorted_dests: &[NodeId],
) -> PathRoute {
    let mut nodes = vec![start];
    for &d in sorted_dests {
        r_extend(topo, labeling, &mut nodes, d);
    }
    PathRoute::new(nodes)
}

/// Runs dual-path routing, returning the multicast star (at most two
/// paths; empty paths are omitted).
///
/// ```
/// use mcast_core::dual_path::dual_path;
/// use mcast_core::model::MulticastSet;
/// use mcast_topology::labeling::mesh2d_snake;
/// use mcast_topology::Mesh2D;
///
/// let mesh = Mesh2D::new(6, 6);
/// let labeling = mesh2d_snake(&mesh);
/// let mc = MulticastSet::new(mesh.node(3, 2), [mesh.node(0, 0), mesh.node(5, 5)]);
/// let paths = dual_path(&mesh, &labeling, &mc);
/// assert_eq!(paths.len(), 2); // one per label side
/// for p in &paths {
///     assert_eq!(p.nodes()[0], mesh.node(3, 2));
/// }
/// ```
pub fn dual_path<T: Topology + ?Sized>(
    topo: &T,
    labeling: &Labeling,
    mc: &MulticastSet,
) -> Vec<PathRoute> {
    let (high, low) = prepare(labeling, mc);
    let mut paths = Vec::with_capacity(2);
    if !high.is_empty() {
        paths.push(route_path(topo, labeling, mc.source, &high));
    }
    if !low.is_empty() {
        paths.push(route_path(topo, labeling, mc.source, &low));
    }
    paths
}

/// Reusable working buffers for [`dual_path_into`]: the `D_H`/`D_L`
/// destination splits and the node sequence under construction. Holding
/// one scratch across a long run makes per-message routing allocation-
/// free once the buffers reach steady-state capacity (DESIGN.md §16).
#[derive(Debug, Default)]
pub struct DualPathScratch {
    high: Vec<NodeId>,
    low: Vec<NodeId>,
    nodes: Vec<NodeId>,
}

impl DualPathScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Allocation-free dual-path routing: computes the same paths as
/// [`dual_path`] but builds them inside `scratch` and hands each
/// finished node sequence to `emit` as a borrowed slice (high side
/// first, empty sides omitted — identical order and contents to
/// `dual_path`).
pub fn dual_path_into<T: Topology + ?Sized>(
    topo: &T,
    labeling: &Labeling,
    mc: &MulticastSet,
    scratch: &mut DualPathScratch,
    mut emit: impl FnMut(&[NodeId]),
) {
    let DualPathScratch { high, low, nodes } = scratch;
    let l0 = labeling.label(mc.source);
    high.clear();
    low.clear();
    for &d in &mc.destinations {
        let l = labeling.label(d);
        if l > l0 {
            high.push(d);
        } else if l < l0 {
            low.push(d);
        }
    }
    high.sort_by_key(|&d| labeling.label(d));
    low.sort_by_key(|&d| std::cmp::Reverse(labeling.label(d)));
    for side in [&*high, &*low] {
        if side.is_empty() {
            continue;
        }
        nodes.clear();
        nodes.push(mc.source);
        for &d in side {
            r_extend(topo, labeling, nodes, d);
        }
        emit(nodes);
    }
}

/// Convenience: dual-path wrapped as a [`MulticastRoute::Star`].
pub fn dual_path_route<T: Topology + ?Sized>(
    topo: &T,
    labeling: &Labeling,
    mc: &MulticastSet,
) -> MulticastRoute {
    MulticastRoute::Star(dual_path(topo, labeling, mc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_topology::labeling::{hypercube_gray, mesh2d_snake, mesh3d_snake};
    use mcast_topology::{Hypercube, Mesh2D, Mesh3D};

    fn example_6_13() -> (Mesh2D, Labeling, MulticastSet) {
        // §6.2.2 running example: 6×6 mesh, source (3,2), destinations
        // (0,0), (0,2), (0,5), (1,3), (4,5), (5,0), (5,1), (5,3), (5,4).
        let m = Mesh2D::new(6, 6);
        let l = mesh2d_snake(&m);
        let n = |x: usize, y: usize| m.node(x, y);
        let mc = MulticastSet::new(
            n(3, 2),
            [
                n(0, 0),
                n(0, 2),
                n(0, 5),
                n(1, 3),
                n(4, 5),
                n(5, 0),
                n(5, 1),
                n(5, 3),
                n(5, 4),
            ],
        );
        (m, l, mc)
    }

    #[test]
    fn fig_6_13_traffic_and_reach() {
        // Fig 6.13: dual-path uses 33 channels (18 high + 15 low) and the
        // farthest destination is 18 hops away.
        let (m, l, mc) = example_6_13();
        let paths = dual_path(&m, &l, &mc);
        assert_eq!(paths.len(), 2);
        let total: usize = paths.iter().map(PathRoute::len).sum();
        assert_eq!(total, 33, "paths: {:?}", paths);
        assert_eq!(paths[0].len().max(paths[1].len()), 18);
        let route = MulticastRoute::Star(paths);
        route.validate(&m, &mc).unwrap();
        assert_eq!(route.max_dest_hops(&mc), Some(18));
    }

    #[test]
    fn high_path_is_label_ascending_low_descending() {
        let (m, l, mc) = example_6_13();
        let (high, low) = prepare(&l, &mc);
        assert!(high.windows(2).all(|w| l.label(w[0]) < l.label(w[1])));
        assert!(low.windows(2).all(|w| l.label(w[0]) > l.label(w[1])));
        let paths = dual_path(&m, &l, &mc);
        let hp: Vec<usize> = paths[0].nodes().iter().map(|&n| l.label(n)).collect();
        assert!(
            hp.windows(2).all(|w| w[0] < w[1]),
            "high path labels: {hp:?}"
        );
        let lp: Vec<usize> = paths[1].nodes().iter().map(|&n| l.label(n)).collect();
        assert!(
            lp.windows(2).all(|w| w[0] > w[1]),
            "low path labels: {lp:?}"
        );
    }

    #[test]
    fn fig_6_19_hypercube_example() {
        // §6.3: 4-cube, source 1100 (label 8), destinations 0100, 0011,
        // 0111, 1000, 1111. D_L = {0100, 0111, 0011} (descending labels
        // 7, 6, 3... wait: labels are ℓ(0100)=7, ℓ(0111)=5, ℓ(0011)=2),
        // D_H = {1111, 1000} (labels 10, 15). From 1100 the high path's
        // first hop is 1101 (per the text's routing-function walkthrough).
        let h = Hypercube::new(4);
        let l = hypercube_gray(&h);
        let mc = MulticastSet::new(0b1100, [0b0100, 0b0011, 0b0111, 0b1000, 0b1111]);
        let (high, low) = prepare(&l, &mc);
        assert_eq!(high, vec![0b1111, 0b1000]);
        assert_eq!(low, vec![0b0100, 0b0111, 0b0011]);
        let paths = dual_path(&h, &l, &mc);
        assert_eq!(paths[0].nodes()[1], 0b1101, "first high hop per §6.3");
        MulticastRoute::Star(paths).validate(&h, &mc).unwrap();
    }

    #[test]
    fn every_destination_exactly_once_theorem_6_1() {
        let (m, l, mc) = example_6_13();
        let paths = dual_path(&m, &l, &mc);
        for &d in &mc.destinations {
            let visits: usize = paths
                .iter()
                .map(|p| p.nodes().iter().filter(|&&n| n == d).count())
                .sum();
            assert_eq!(visits, 1, "destination {d} visited {visits} times");
        }
    }

    #[test]
    fn works_on_3d_mesh_labeling() {
        let m = Mesh3D::new(3, 3, 3);
        let l = mesh3d_snake(&m);
        let mc = MulticastSet::new(13, [0, 26, 7, 19, 22]);
        let paths = dual_path(&m, &l, &mc);
        MulticastRoute::Star(paths).validate(&m, &mc).unwrap();
    }

    #[test]
    fn dual_path_into_matches_dual_path_exactly() {
        let (m, l, mc) = example_6_13();
        let mut scratch = DualPathScratch::new();
        // Same scratch reused across messages: results must still match
        // the allocating path node-for-node, in the same order.
        for mc in [
            mc,
            MulticastSet::new(0, [35, 17]),
            MulticastSet::new(35, [0]),
            MulticastSet::new(14, [2, 33, 15, 20]),
        ] {
            let want: Vec<Vec<NodeId>> = dual_path(&m, &l, &mc)
                .iter()
                .map(|p| p.nodes().to_vec())
                .collect();
            let mut got: Vec<Vec<NodeId>> = Vec::new();
            dual_path_into(&m, &l, &mc, &mut scratch, |nodes| got.push(nodes.to_vec()));
            assert_eq!(got, want);
        }
    }

    #[test]
    fn source_at_label_extremes_uses_single_path() {
        let m = Mesh2D::new(4, 4);
        let l = mesh2d_snake(&m);
        // Source with label 0: everything is in D_H.
        let mc = MulticastSet::new(l.node_at(0), [5, 9, 15]);
        let paths = dual_path(&m, &l, &mc);
        assert_eq!(paths.len(), 1);
        MulticastRoute::Star(paths).validate(&m, &mc).unwrap();
    }
}
