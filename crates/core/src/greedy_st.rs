//! The greedy Steiner-tree heuristic of §5.2 (Figs 5.3–5.4).
//!
//! The source sorts the destinations by distance, then grows a *virtual*
//! tree: each iteration attaches the next destination `u_i` at the node
//! `v` nearest to `u_i` among all nodes lying on shortest paths between
//! the endpoints of existing virtual edges (computed in O(1) by
//! [`crate::geometry::RoutingGeometry::nearest_on_shortest_paths`]). A
//! virtual edge `(s, t)` is realized by the underlying deterministic
//! shortest-path routing (XY / E-cube), so the tree's traffic is the sum
//! of virtual-edge distances.

use std::collections::BTreeSet;

use mcast_topology::NodeId;

use crate::geometry::RoutingGeometry;
use crate::model::MulticastSet;

/// The virtual Steiner tree produced by the greedy ST algorithm: edges
/// join possibly non-adjacent nodes; each stands for a shortest path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SteinerTree {
    root: NodeId,
    /// Virtual edges `(s, t)`; `s` is the endpoint closer to the root in
    /// tree order.
    edges: Vec<(NodeId, NodeId)>,
}

impl SteinerTree {
    /// The root (multicast source).
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The virtual edges.
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// Total traffic: Σ `d(s, t)` over virtual edges — the number of
    /// channel transmissions after realization.
    pub fn traffic<T: RoutingGeometry + ?Sized>(&self, topo: &T) -> usize {
        self.edges.iter().map(|&(s, t)| topo.distance(s, t)).sum()
    }

    /// Nodes appearing as virtual-edge endpoints (root included).
    pub fn vertices(&self) -> BTreeSet<NodeId> {
        let mut v: BTreeSet<NodeId> = self.edges.iter().flat_map(|&(s, t)| [s, t]).collect();
        v.insert(self.root);
        v
    }

    /// Realizes every virtual edge as a concrete shortest path using the
    /// topology's deterministic routing; returns the per-edge node paths.
    pub fn realize<T: RoutingGeometry + ?Sized>(&self, topo: &T) -> Vec<Vec<NodeId>> {
        self.edges
            .iter()
            .map(|&(s, t)| topo.shortest_path(s, t))
            .collect()
    }

    /// Whether the virtual edges form a tree over [`SteinerTree::vertices`]
    /// that contains every node of `mc` (Theorem 5.2's conclusion).
    pub fn validate(&self, mc: &MulticastSet) -> Result<(), String> {
        let verts = self.vertices();
        // |E| = |V| − 1 and connected ⇒ tree.
        if !verts.is_empty() && self.edges.len() != verts.len() - 1 {
            return Err(format!(
                "{} edges over {} vertices is not a tree",
                self.edges.len(),
                verts.len()
            ));
        }
        // Connectivity from the root by repeated relaxation.
        let mut reached = BTreeSet::new();
        reached.insert(self.root);
        let mut changed = true;
        while changed {
            changed = false;
            for &(s, t) in &self.edges {
                if reached.contains(&s) && reached.insert(t) {
                    changed = true;
                }
                if reached.contains(&t) && reached.insert(s) {
                    changed = true;
                }
            }
        }
        if reached != verts {
            return Err("virtual tree is disconnected".into());
        }
        for &d in &mc.destinations {
            if !verts.contains(&d) {
                return Err(format!("destination {d} not in Steiner tree"));
            }
        }
        Ok(())
    }
}

/// Message preparation (Fig 5.3): destinations sorted by ascending
/// distance from the source.
pub fn prepare<T: RoutingGeometry + ?Sized>(topo: &T, mc: &MulticastSet) -> Vec<NodeId> {
    let mut d = mc.destinations.clone();
    d.sort_by_key(|&x| (topo.distance(mc.source, x), x));
    d
}

/// The greedy ST algorithm (Fig 5.4's tree-construction loop, run at the
/// source with the complete destination list).
///
/// ```
/// use mcast_core::greedy_st::greedy_st;
/// use mcast_core::model::{multi_unicast_traffic, MulticastSet};
/// use mcast_topology::Hypercube;
///
/// let cube = Hypercube::new(6);
/// let mc = MulticastSet::new(0, [63, 21, 42, 7]);
/// let tree = greedy_st(&cube, &mc);
/// tree.validate(&mc).unwrap();
/// assert!(tree.traffic(&cube) <= multi_unicast_traffic(&cube, &mc));
/// ```
pub fn greedy_st<T: RoutingGeometry + ?Sized>(topo: &T, mc: &MulticastSet) -> SteinerTree {
    let sorted = prepare(topo, mc);
    build_tree(topo, mc.source, &sorted)
}

/// Fig 5.4's tree-construction steps 3–4 over an *already ordered*
/// destination list — the routine every replicate node runs in the
/// distributed protocol (the list order is fixed by the source's
/// preparation and carried in the header).
pub fn build_tree<T: RoutingGeometry + ?Sized>(
    topo: &T,
    u: NodeId,
    sorted: &[NodeId],
) -> SteinerTree {
    let mut tree = SteinerTree {
        root: u,
        edges: Vec::new(),
    };
    let sorted: Vec<NodeId> = sorted.iter().copied().filter(|&d| d != u).collect();
    if sorted.is_empty() {
        return tree;
    }
    // Step 3: E(T) ← {(u, u1)}.
    tree.edges.push((u, sorted[0]));
    let mut verts: BTreeSet<NodeId> = BTreeSet::new();
    verts.insert(u);
    verts.insert(sorted[0]);
    // Step 4: attach each remaining destination at the nearest point on
    // any existing virtual edge's shortest paths.
    for &ui in &sorted[1..] {
        if verts.contains(&ui) {
            continue; // already covered (e.g. chosen as a junction)
        }
        let mut best: Option<(usize, usize, NodeId)> = None; // (dist, edge idx, v)
        for (ei, &(s, t)) in tree.edges.iter().enumerate() {
            let v = topo.nearest_on_shortest_paths(s, t, ui);
            let dist = topo.distance(ui, v);
            if best.is_none_or(|(bd, _, bv)| dist < bd || (dist == bd && v < bv)) {
                best = Some((dist, ei, v));
            }
        }
        let (_, ei, v) = best.expect("tree has at least one edge");
        let (s, t) = tree.edges[ei];
        if v != s && v != t {
            // Step 4(c): split the edge at the junction v.
            tree.edges.swap_remove(ei);
            tree.edges.push((s, v));
            tree.edges.push((v, t));
            verts.insert(v);
        }
        if ui != v {
            // Step 4(d): hang the destination off the junction.
            tree.edges.push((v, ui));
        }
        verts.insert(ui);
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_topology::{Hypercube, Mesh2D, Topology};

    #[test]
    fn section_5_4_mesh_example_tree() {
        // §5.4: 8×8 mesh, source [2,7], destinations [0,5], [2,3], [4,1],
        // [6,3], [7,4]. Expected final virtual edge set (Fig 5.9):
        // ([2,7],[2,5]), ([2,5],[0,5]), ([2,5],[2,3]), ([2,3],[4,3]),
        // ([4,3],[4,1]), ([4,3],[6,3]), ([6,3],[7,4]).
        let m = Mesh2D::new(8, 8);
        let n = |x: usize, y: usize| m.node(x, y);
        let mc = MulticastSet::new(n(2, 7), [n(0, 5), n(2, 3), n(4, 1), n(6, 3), n(7, 4)]);
        let t = greedy_st(&m, &mc);
        t.validate(&mc).unwrap();
        let mut edges: Vec<((usize, usize), (usize, usize))> = t
            .edges()
            .iter()
            .map(|&(s, v)| (m.coords(s), m.coords(v)))
            .collect();
        let norm = |e: ((usize, usize), (usize, usize))| {
            if e.0 <= e.1 {
                e
            } else {
                (e.1, e.0)
            }
        };
        let mut edges_n: Vec<_> = edges.drain(..).map(norm).collect();
        edges_n.sort();
        let mut expected: Vec<_> = [
            ((2, 7), (2, 5)),
            ((2, 5), (0, 5)),
            ((2, 5), (2, 3)),
            ((2, 3), (4, 3)),
            ((4, 3), (4, 1)),
            ((4, 3), (6, 3)),
            ((6, 3), (7, 4)),
        ]
        .into_iter()
        .map(norm)
        .collect();
        expected.sort();
        assert_eq!(edges_n, expected);
        // Traffic: 2+2+2+2+2+2+2 = 14.
        assert_eq!(t.traffic(&m), 14);
    }

    #[test]
    fn section_5_4_cube_example_tree() {
        // §5.4 / Fig 5.10: 6-cube, source 000110, destinations 010101,
        // 000001, 001101, 101001, 110001. First junction is 000101.
        let h = Hypercube::new(6);
        let mc = MulticastSet::new(0b000110, [0b010101, 0b000001, 0b001101, 0b101001, 0b110001]);
        // Distances from the source are (3, 3, 3, 5, 5); the text breaks
        // the three-way tie arbitrarily, we break it by node id.
        assert_eq!(
            prepare(&h, &mc),
            vec![0b000001, 0b001101, 0b010101, 0b101001, 0b110001],
        );
        let t = greedy_st(&h, &mc);
        t.validate(&mc).unwrap();
        // Junction 000101 connects source side and destination side.
        assert!(t.vertices().contains(&0b000101), "edges: {:?}", t.edges());
    }

    #[test]
    fn st_traffic_never_exceeds_multi_unicast() {
        let m = Mesh2D::new(8, 8);
        let mc = MulticastSet::new(0, [7, 56, 63, 27, 36, 44]);
        let t = greedy_st(&m, &mc);
        t.validate(&mc).unwrap();
        let mu = crate::model::multi_unicast_traffic(&m, &mc);
        assert!(t.traffic(&m) <= mu, "{} > {}", t.traffic(&m), mu);
    }

    #[test]
    fn st_realization_paths_are_shortest() {
        let h = Hypercube::new(5);
        let mc = MulticastSet::new(0, [31, 5, 18, 12]);
        let t = greedy_st(&h, &mc);
        for (path, &(s, e)) in t.realize(&h).iter().zip(t.edges()) {
            assert_eq!(path[0], s);
            assert_eq!(*path.last().unwrap(), e);
            assert_eq!(path.len() - 1, h.distance(s, e));
        }
    }

    #[test]
    fn single_destination_is_one_edge() {
        let m = Mesh2D::new(4, 4);
        let mc = MulticastSet::new(0, [15]);
        let t = greedy_st(&m, &mc);
        assert_eq!(t.edges(), &[(0, 15)]);
        assert_eq!(t.traffic(&m), 6);
    }

    #[test]
    fn empty_destination_set_is_empty_tree() {
        let m = Mesh2D::new(4, 4);
        let mc = MulticastSet::new(0, []);
        let t = greedy_st(&m, &mc);
        assert!(t.edges().is_empty());
        t.validate(&mc).unwrap();
    }
}
