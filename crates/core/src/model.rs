//! The multicast communication models of Chapter 3.
//!
//! A multicast is described by a [`MulticastSet`] `K = {u0, u1, …, uk}`
//! (source plus destinations). Depending on switching technique and routing
//! criteria, a route takes one of the shapes of Chapter 3:
//!
//! * **multicast path** (MP, Def 3.1) — one path from the source visiting
//!   every destination; no replication (wormhole/circuit switching without
//!   replication hardware);
//! * **multicast cycle** (MC, Def 3.2) — a closed path returning to the
//!   source, giving implicit acknowledgement;
//! * **Steiner tree** (ST, Def 3.3) — minimal-traffic tree when replication
//!   hardware exists;
//! * **multicast tree** (MT, Def 3.4) — tree whose source→destination paths
//!   are all shortest (store-and-forward latency first, then traffic);
//! * **multicast star** (MS, Def 3.5) — a collection of paths from the
//!   source covering disjoint destination subsets (deadlock-free wormhole
//!   routing, Chapter 6).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use mcast_topology::{NodeId, Topology};

/// A multicast set `K`: the source `u0` and `k ≥ 1` destinations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MulticastSet {
    /// The source node `u0`.
    pub source: NodeId,
    /// Destination nodes `u1..uk` (order may matter to algorithms that
    /// don't re-sort; duplicates and the source itself are tolerated and
    /// deduplicated by [`MulticastSet::new`]).
    pub destinations: Vec<NodeId>,
}

impl MulticastSet {
    /// Creates a multicast set, dropping duplicate destinations and any
    /// destination equal to the source (the local delivery is free).
    pub fn new(source: NodeId, destinations: impl IntoIterator<Item = NodeId>) -> Self {
        let mut seen = BTreeSet::new();
        let destinations = destinations
            .into_iter()
            .filter(|&d| d != source && seen.insert(d))
            .collect();
        MulticastSet {
            source,
            destinations,
        }
    }

    /// Number of destinations `k`.
    pub fn k(&self) -> usize {
        self.destinations.len()
    }

    /// Whether `n` is a member of `K` (source or destination).
    pub fn contains(&self, n: NodeId) -> bool {
        n == self.source || self.destinations.contains(&n)
    }
}

/// A route realized as a node-visiting sequence (an MP, or one path of an
/// MS).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathRoute {
    nodes: Vec<NodeId>,
}

impl PathRoute {
    /// Wraps a node sequence. Must be nonempty.
    pub fn new(nodes: Vec<NodeId>) -> Self {
        assert!(!nodes.is_empty(), "a path route has at least its source");
        PathRoute { nodes }
    }

    /// The visit sequence, source first.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The source node.
    pub fn source(&self) -> NodeId {
        self.nodes[0]
    }

    /// Path length in channels (traffic of this path).
    pub fn len(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Whether the path has no channels.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Number of channels traversed before first reaching `n`, if the path
    /// visits it.
    pub fn hops_to(&self, n: NodeId) -> Option<usize> {
        self.nodes.iter().position(|&v| v == n)
    }

    /// Checks the path is a valid walk of `topo` with no repeated node
    /// (except that a *cycle* repeats its first node at the end, allowed
    /// when `closed`).
    pub fn validate<T: Topology + ?Sized>(&self, topo: &T, closed: bool) -> Result<(), String> {
        for w in self.nodes.windows(2) {
            if !topo.adjacent(w[0], w[1]) {
                return Err(format!("nodes {} and {} are not adjacent", w[0], w[1]));
            }
        }
        let mut seen = BTreeSet::new();
        let body: &[NodeId] = if closed {
            if self.nodes.len() < 2 || self.nodes[0] != *self.nodes.last().unwrap() {
                return Err("cycle must end at its starting node".into());
            }
            &self.nodes[..self.nodes.len() - 1]
        } else {
            &self.nodes
        };
        for &v in body {
            if !seen.insert(v) {
                return Err(format!("node {v} visited twice"));
            }
        }
        Ok(())
    }
}

/// A route realized as a tree rooted at the source (ST, MT, or one of the
/// quadrant trees of the double-channel scheme).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeRoute {
    root: NodeId,
    /// child → parent. The root has no entry.
    parent: BTreeMap<NodeId, NodeId>,
}

impl TreeRoute {
    /// Creates a tree containing only the root.
    pub fn new(root: NodeId) -> Self {
        TreeRoute {
            root,
            parent: BTreeMap::new(),
        }
    }

    /// Builds a tree from directed edges `(parent, child)`.
    ///
    /// # Panics
    /// Panics if the edges do not form a tree rooted at `root`.
    pub fn from_edges(root: NodeId, edges: impl IntoIterator<Item = (NodeId, NodeId)>) -> Self {
        let mut t = TreeRoute::new(root);
        // Attach edges in reachability order; repeated passes handle
        // arbitrary input order.
        let mut rest: Vec<(NodeId, NodeId)> = edges.into_iter().collect();
        while !rest.is_empty() {
            let before = rest.len();
            rest.retain(|&(p, c)| {
                if t.contains(p) {
                    t.attach(p, c); // panics on duplicate child (not a tree)
                    false
                } else {
                    true
                }
            });
            assert!(
                rest.len() < before,
                "edges do not form a tree rooted at {root}"
            );
        }
        t
    }

    /// The root (source) node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Whether the tree contains node `n`.
    pub fn contains(&self, n: NodeId) -> bool {
        n == self.root || self.parent.contains_key(&n)
    }

    /// Adds the edge `parent → child`.
    ///
    /// # Panics
    /// Panics if `parent` is not in the tree or `child` already is.
    pub fn attach(&mut self, parent: NodeId, child: NodeId) {
        assert!(self.contains(parent), "parent {parent} not in tree");
        assert!(!self.contains(child), "child {child} already in tree");
        self.parent.insert(child, parent);
    }

    /// The parent of `n` (`None` for the root or non-members).
    pub fn parent(&self, n: NodeId) -> Option<NodeId> {
        self.parent.get(&n).copied()
    }

    /// All nodes of the tree (root included), ascending.
    pub fn nodes(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.parent.keys().copied().collect();
        v.push(self.root);
        v.sort_unstable();
        v.dedup();
        v
    }

    /// All directed edges `(parent, child)`.
    pub fn edges(&self) -> Vec<(NodeId, NodeId)> {
        self.parent.iter().map(|(&c, &p)| (p, c)).collect()
    }

    /// Children of each node, as a map (deterministic order).
    pub fn children_map(&self) -> BTreeMap<NodeId, Vec<NodeId>> {
        let mut m: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
        for (&c, &p) in &self.parent {
            m.entry(p).or_default().push(c);
        }
        m
    }

    /// Number of tree edges (traffic).
    pub fn traffic(&self) -> usize {
        self.parent.len()
    }

    /// Distance from the root to `n` along tree edges.
    pub fn depth_of(&self, n: NodeId) -> Option<usize> {
        if !self.contains(n) {
            return None;
        }
        let mut d = 0;
        let mut cur = n;
        while cur != self.root {
            cur = self.parent[&cur];
            d += 1;
        }
        Some(d)
    }

    /// Checks the tree is a subgraph of `topo` (every edge a link) and
    /// acyclic-by-construction invariants hold.
    pub fn validate<T: Topology + ?Sized>(&self, topo: &T) -> Result<(), String> {
        for (&c, &p) in &self.parent {
            if !topo.adjacent(p, c) {
                return Err(format!("tree edge {p}→{c} is not a link"));
            }
            // Walk to root, guarding against cycles.
            let mut cur = c;
            let mut steps = 0;
            while cur != self.root {
                cur = *self
                    .parent
                    .get(&cur)
                    .ok_or_else(|| format!("node {cur} detached from root"))?;
                steps += 1;
                if steps > self.parent.len() {
                    return Err("parent pointers contain a cycle".into());
                }
            }
        }
        Ok(())
    }
}

/// Any realized multicast route, with uniform traffic/latency accessors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MulticastRoute {
    /// A multicast path (MP).
    Path(PathRoute),
    /// A multicast cycle (MC) — the sequence ends back at the source.
    Cycle(PathRoute),
    /// A tree (ST or MT) in a single-channel network.
    Tree(TreeRoute),
    /// A multicast star (MS): disjoint paths from the source.
    Star(Vec<PathRoute>),
    /// A forest of trees, each confined to a (sub)network partition —
    /// the double-channel tree scheme of §6.2.1.
    Forest(Vec<TreeRoute>),
}

impl MulticastRoute {
    /// Total traffic: the number of channels used to deliver the message
    /// (Chapter 3's *traffic* parameter).
    pub fn traffic(&self) -> usize {
        match self {
            MulticastRoute::Path(p) | MulticastRoute::Cycle(p) => p.len(),
            MulticastRoute::Tree(t) => t.traffic(),
            MulticastRoute::Star(paths) => paths.iter().map(PathRoute::len).sum(),
            MulticastRoute::Forest(trees) => trees.iter().map(TreeRoute::traffic).sum(),
        }
    }

    /// Channels traversed before the message first reaches `dest`
    /// (the store-and-forward *time* parameter, in hops).
    pub fn hops_to(&self, dest: NodeId) -> Option<usize> {
        match self {
            MulticastRoute::Path(p) | MulticastRoute::Cycle(p) => p.hops_to(dest),
            MulticastRoute::Tree(t) => t.depth_of(dest),
            MulticastRoute::Star(paths) => paths.iter().find_map(|p| p.hops_to(dest)),
            MulticastRoute::Forest(trees) => trees.iter().find_map(|t| t.depth_of(dest)),
        }
    }

    /// The maximum of [`MulticastRoute::hops_to`] over the destinations of
    /// `mc` (the "maximum distance from the source to a destination"
    /// reported for Figs 6.13/6.16/6.17).
    pub fn max_dest_hops(&self, mc: &MulticastSet) -> Option<usize> {
        mc.destinations
            .iter()
            .map(|&d| self.hops_to(d))
            .max()
            .flatten()
    }

    /// Validates the route delivers to every destination of `mc` and is a
    /// legal subgraph/walk of `topo`.
    pub fn validate<T: Topology + ?Sized>(
        &self,
        topo: &T,
        mc: &MulticastSet,
    ) -> Result<(), String> {
        match self {
            MulticastRoute::Path(p) => {
                p.validate(topo, false)?;
                if p.source() != mc.source {
                    return Err("path does not start at the source".into());
                }
            }
            MulticastRoute::Cycle(p) => {
                p.validate(topo, true)?;
                if p.source() != mc.source {
                    return Err("cycle does not start at the source".into());
                }
            }
            MulticastRoute::Tree(t) => {
                t.validate(topo)?;
                if t.root() != mc.source {
                    return Err("tree not rooted at the source".into());
                }
            }
            MulticastRoute::Star(paths) => {
                for p in paths {
                    p.validate(topo, false)?;
                    if p.source() != mc.source {
                        return Err("star path does not start at the source".into());
                    }
                }
                // MS definition: the destination subsets are disjoint —
                // each destination lies on exactly one path.
                for &d in &mc.destinations {
                    let n = paths.iter().filter(|p| p.hops_to(d).is_some()).count();
                    if n == 0 {
                        return Err(format!("destination {d} not covered"));
                    }
                }
            }
            MulticastRoute::Forest(trees) => {
                for t in trees {
                    t.validate(topo)?;
                    if t.root() != mc.source {
                        return Err("forest tree not rooted at the source".into());
                    }
                }
            }
        }
        for &d in &mc.destinations {
            if self.hops_to(d).is_none() {
                return Err(format!("destination {d} unreachable by the route"));
            }
        }
        Ok(())
    }
}

/// Computes the traffic of delivering `mc` by separate unicasts along
/// shortest paths (the "multiple one-to-one" lower-bound-per-destination
/// comparison of §7.1): the sum of source→destination distances.
pub fn multi_unicast_traffic<T: Topology + ?Sized>(topo: &T, mc: &MulticastSet) -> usize {
    mc.destinations
        .iter()
        .map(|&d| topo.distance(mc.source, d))
        .sum()
}

/// A spanning BFS tree of the whole network rooted at `source` — the
/// *broadcast* comparison of §7.1 (traffic is always `N − 1`).
pub fn broadcast_tree<T: Topology + ?Sized>(topo: &T, source: NodeId) -> TreeRoute {
    let mut t = TreeRoute::new(source);
    let mut q = VecDeque::new();
    q.push_back(source);
    let mut nb = Vec::new();
    while let Some(u) = q.pop_front() {
        topo.neighbors_into(u, &mut nb);
        for &v in &nb {
            if !t.contains(v) {
                t.attach(u, v);
                q.push_back(v);
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_topology::Mesh2D;

    #[test]
    fn multicast_set_dedupes() {
        let mc = MulticastSet::new(3, [1, 2, 2, 3, 4, 1]);
        assert_eq!(mc.destinations, vec![1, 2, 4]);
        assert_eq!(mc.k(), 3);
        assert!(mc.contains(3));
        assert!(mc.contains(4));
        assert!(!mc.contains(5));
    }

    #[test]
    fn path_route_metrics() {
        let m = Mesh2D::new(4, 4);
        let p = PathRoute::new(vec![0, 1, 2, 6, 10]);
        assert_eq!(p.len(), 4);
        assert_eq!(p.hops_to(6), Some(3));
        assert_eq!(p.hops_to(9), None);
        p.validate(&m, false).unwrap();
    }

    #[test]
    fn cycle_validation() {
        let m = Mesh2D::new(2, 2);
        let c = PathRoute::new(vec![0, 1, 3, 2, 0]);
        c.validate(&m, true).unwrap();
        assert!(
            c.validate(&m, false).is_err(),
            "open-path validation must reject repeats"
        );
        let bad = PathRoute::new(vec![0, 1, 3]);
        assert!(bad.validate(&m, true).is_err(), "cycle must close");
    }

    #[test]
    fn tree_route_construction_and_depth() {
        let m = Mesh2D::new(3, 3);
        let mut t = TreeRoute::new(4);
        t.attach(4, 1);
        t.attach(4, 5);
        t.attach(1, 0);
        t.attach(1, 2);
        assert_eq!(t.traffic(), 4);
        assert_eq!(t.depth_of(0), Some(2));
        assert_eq!(t.depth_of(4), Some(0));
        assert_eq!(t.depth_of(8), None);
        t.validate(&m).unwrap();
        let children = t.children_map();
        assert_eq!(children[&4], vec![1, 5]);
        assert_eq!(children[&1], vec![0, 2]);
    }

    #[test]
    fn tree_from_edges_handles_any_order() {
        let edges = [(1usize, 0usize), (4, 1), (1, 2), (4, 5)];
        let t = TreeRoute::from_edges(4, edges);
        assert_eq!(t.traffic(), 4);
        assert_eq!(t.depth_of(0), Some(2));
    }

    #[test]
    #[should_panic(expected = "do not form a tree")]
    fn tree_from_disconnected_edges_panics() {
        let _ = TreeRoute::from_edges(0, [(5usize, 6usize)]);
    }

    #[test]
    fn broadcast_tree_spans_network() {
        let m = Mesh2D::new(4, 4);
        let t = broadcast_tree(&m, 5);
        assert_eq!(t.traffic(), 15);
        assert_eq!(t.nodes().len(), 16);
        t.validate(&m).unwrap();
    }

    #[test]
    fn route_enum_traffic_and_validation() {
        let m = Mesh2D::new(4, 4);
        let mc = MulticastSet::new(0, [3, 12]);
        let star = MulticastRoute::Star(vec![
            PathRoute::new(vec![0, 1, 2, 3]),
            PathRoute::new(vec![0, 4, 8, 12]),
        ]);
        assert_eq!(star.traffic(), 6);
        assert_eq!(star.hops_to(12), Some(3));
        star.validate(&m, &mc).unwrap();
        assert_eq!(star.max_dest_hops(&mc), Some(3));

        let missing = MulticastRoute::Star(vec![PathRoute::new(vec![0, 1, 2, 3])]);
        assert!(missing.validate(&m, &mc).is_err());
    }

    #[test]
    fn multi_unicast_traffic_is_distance_sum() {
        let m = Mesh2D::new(4, 4);
        let mc = MulticastSet::new(0, [3, 15]);
        assert_eq!(multi_unicast_traffic(&m, &mc), 3 + 6);
    }
}
