//! Tiny dependency-free argument parsing for the `mcast` CLI.

use std::collections::BTreeMap;

/// Parsed command line: a subcommand, an optional action, plus
/// `--key value` options.
#[derive(Debug, Clone)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    /// An optional second positional argument, used by subcommands with
    /// verbs of their own (e.g. `mcast topo validate --graph …`).
    pub action: Option<String>,
    /// `--key value` pairs.
    pub options: BTreeMap<String, String>,
}

/// Parsing failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A CLI failure, split by what the user should do about it.
///
/// * [`CliError::Usage`] — the invocation itself was wrong (unknown
///   flag, bad value): print the message *and* the usage block, exit 2.
/// * [`CliError::Runtime`] — the invocation was fine but the work
///   failed (missing spec file, malformed JSON, unwritable output,
///   violated invariant): print only the actionable message, exit 1.
///   Re-printing the usage block for these would bury the diagnosis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// Bad invocation; prints usage and exits 2.
    Usage(String),
    /// The work failed; prints the message and exits 1.
    Runtime(String),
}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Usage(e.0)
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) | CliError::Runtime(m) => write!(f, "{m}"),
        }
    }
}

impl Args {
    /// Parses `argv[1..]`: one subcommand, an optional bare action
    /// word, then `--key value` pairs. A `--key` immediately followed
    /// by another option (or the end of the line) is a bare boolean
    /// flag and parses as `--key true` (e.g. `mcast verify --quick`).
    pub fn parse(argv: &[String]) -> Result<Args, ArgError> {
        let mut it = argv.iter().peekable();
        let command = it
            .next()
            .ok_or_else(|| ArgError("missing subcommand (try `mcast help`)".into()))?
            .clone();
        let action = match it.peek() {
            Some(v) if !v.starts_with("--") => Some(it.next().expect("peeked").clone()),
            _ => None,
        };
        let mut options = BTreeMap::new();
        while let Some(key) = it.next() {
            let key = key
                .strip_prefix("--")
                .ok_or_else(|| ArgError(format!("expected --option, got {key:?}")))?;
            let value = match it.peek() {
                Some(v) if !v.starts_with("--") => it.next().expect("peeked").clone(),
                _ => "true".to_string(),
            };
            options.insert(key.to_string(), value);
        }
        Ok(Args {
            command,
            action,
            options,
        })
    }

    /// A boolean flag: `--key`, `--key true` → true; absent or
    /// `--key false` → false.
    pub fn flag(&self, key: &str) -> bool {
        self.get_or(key, "false") == "true"
    }

    /// A required option.
    pub fn require(&self, key: &str) -> Result<&str, ArgError> {
        self.options
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| ArgError(format!("missing required --{key}")))
    }

    /// An optional option with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.options.get(key).map(String::as_str).unwrap_or(default)
    }

    /// Parses an option as a number.
    pub fn number<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{key} {v:?} is not a valid number"))),
        }
    }
}

/// Parses a comma-separated list of node ids / binary addresses (binary
/// accepted when `bits > 0`, e.g. `0b0110` or plain decimal).
pub fn parse_nodes(s: &str) -> Result<Vec<usize>, ArgError> {
    s.split(',')
        .filter(|part| !part.is_empty())
        .map(|part| {
            let part = part.trim();
            if let Some(bin) = part.strip_prefix("0b") {
                usize::from_str_radix(bin, 2)
                    .map_err(|_| ArgError(format!("bad binary node {part:?}")))
            } else {
                part.parse()
                    .map_err(|_| ArgError(format!("bad node {part:?}")))
            }
        })
        .collect()
}

/// Parses a coordinate like `3x2` (or `4x3x2` for 3D) into its
/// dimensions. Two or three dimensions, all positive.
pub fn parse_dims(s: &str) -> Result<Vec<usize>, ArgError> {
    let dims: Vec<usize> = s
        .split('x')
        .map(|part| {
            part.parse()
                .map_err(|_| ArgError(format!("bad dimension {part:?} in {s:?}")))
        })
        .collect::<Result<_, _>>()?;
    if dims.len() < 2 || dims.len() > 3 {
        return Err(ArgError(format!(
            "expected WxH or WxHxD, got {s:?} ({} dimensions)",
            dims.len()
        )));
    }
    if dims.contains(&0) {
        return Err(ArgError(format!("zero-sized dimension in {s:?}")));
    }
    Ok(dims)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_command_and_options() {
        let a = Args::parse(&argv(&["route", "--topology", "mesh:8x8", "--source", "5"])).unwrap();
        assert_eq!(a.command, "route");
        assert_eq!(a.require("topology").unwrap(), "mesh:8x8");
        assert_eq!(a.number::<usize>("source", 0).unwrap(), 5);
        assert_eq!(a.get_or("algorithm", "dual-path"), "dual-path");
    }

    #[test]
    fn malformed_lines_are_errors() {
        assert!(Args::parse(&argv(&[])).is_err());
        assert!(Args::parse(&argv(&["x", "notanoption", "v"])).is_err());
    }

    #[test]
    fn bare_flags_parse_as_true() {
        let a = Args::parse(&argv(&["verify", "--quick", "--seed", "2"])).unwrap();
        assert!(a.flag("quick"));
        assert_eq!(a.number::<u64>("seed", 0).unwrap(), 2);
        assert!(!a.flag("chaos"));
        let b = Args::parse(&argv(&["verify", "--quick", "false"])).unwrap();
        assert!(!b.flag("quick"));
        let c = Args::parse(&argv(&["verify", "--quick"])).unwrap();
        assert!(c.flag("quick"));
    }

    #[test]
    fn action_word_parses() {
        let a = Args::parse(&argv(&["topo", "validate", "--graph", "g.json"])).unwrap();
        assert_eq!(a.command, "topo");
        assert_eq!(a.action.as_deref(), Some("validate"));
        assert_eq!(a.require("graph").unwrap(), "g.json");
        let b = Args::parse(&argv(&["route", "--topology", "mesh:4x4"])).unwrap();
        assert_eq!(b.action, None);
    }

    #[test]
    fn node_lists() {
        assert_eq!(parse_nodes("1,2,3").unwrap(), vec![1, 2, 3]);
        assert_eq!(parse_nodes("0b101,7").unwrap(), vec![5, 7]);
        assert!(parse_nodes("1,x").is_err());
    }

    #[test]
    fn dims() {
        assert_eq!(parse_dims("8x8").unwrap(), vec![8, 8]);
        assert_eq!(parse_dims("4x3x2").unwrap(), vec![4, 3, 2]);
        assert!(parse_dims("8").is_err());
        assert!(parse_dims("2x2x2x2").is_err());
        assert!(parse_dims("4x0").is_err());
        assert!(parse_dims("4xx2").is_err());
    }
}
