//! Subcommand implementations for the `mcast` CLI.

use mcast_core::model::{MulticastRoute, MulticastSet};
use mcast_obs::{
    chrome_trace, latency_csv, utilization_csv, Metrics, MetricsSnapshot, Recording, Sink, Tee,
    TraceMeta, TraceOptions,
};
use mcast_sim::deadlock::{
    fig_6_1_broadcasts, fig_6_4_multicasts, run_closed_scenario, run_closed_scenario_recovering,
};
use mcast_sim::engine::{Engine, SimConfig};
use mcast_sim::network::Network;
use mcast_sim::recovery::{
    FaultDualPathRouter, FaultMultiPathRouter, FaultMulticastRouter, ObliviousRouter,
    RecoveryPolicy,
};
use mcast_sim::routers::{
    DoubleChannelTreeRouter, DualPathRouter, EcubeTreeRouter, FixedPathRouter, MultiPathCubeRouter,
    MultiPathMeshRouter, MulticastRouter, VcMultiPathRouter, XFirstTreeRouter,
};
use mcast_topology::hamiltonian::{hypercube_cycle, mesh2d_cycle};
use mcast_topology::labeling::{hypercube_gray, mesh2d_snake};
use mcast_topology::{Hypercube, Mesh2D, Topology};
use mcast_workload::fault_sweep::{run_fault_sweep, FaultSweepConfig, FaultSweepRow};
use mcast_workload::gen::MulticastGen;
use mcast_workload::{
    aggregate_sweep, resolve_jobs, run_dynamic, run_dynamic_sweep, DynamicConfig, SweepConfig,
    SweepRow,
};

use crate::args::{parse_dims, parse_nodes, ArgError, Args};

/// The help text.
pub const USAGE: &str = "\
mcast — multicast routing for multicomputer networks

USAGE:
  mcast route    --topology <T> --algorithm <A> --source <N> --dests <N,N,...>
  mcast simulate --topology <T> --algorithm <A> [--interarrival-us <F>]
                 [--dests <K>] [--seed <S>]
  mcast sweep    [--topology <T>] [--algorithms <A,A,...>] [--loads-us <F,F,...>]
                 [--replications <R>] [--dests <K>] [--seed <S>]
                 [--jobs <N>] [--compare-serial true|false]
  mcast deadlock --scenario fig6_1|fig6_4 [--algorithm <A>] [--recover true]
  mcast fault-sweep --topology <T> [--algorithm <A>] [--fault-rates 0,0.02,0.05,0.1]
                 [--messages <N>] [--dests <K>] [--seed <S>]
                 [--format table|csv|json] [--keep-connected true|false]
  mcast trace    [--topology <T>] [--algorithm <A>] [--pattern hotspot|uniform]
                 [--messages <N>] [--dests <K>] [--interarrival-us <F>] [--seed <S>]
                 [--out trace.json] [--metrics-out <F>] [--util-csv <F>]
                 [--latency-csv <F>] [--flits true]
  mcast metrics  [--topology <T>] [--algorithm <A>] [--pattern hotspot|uniform]
                 [--messages <N>] [--dests <K>] [--interarrival-us <F>] [--seed <S>]
                 [--out <F>] [--json true]
  mcast help

TOPOLOGIES:   mesh:WxH   cube:N
ALGORITHMS:   dual-path  multi-path  fixed-path  vc-multi-path:<lanes>
              dc-tree  xfirst-tree  ecube-tree (cube)
ROUTE-ONLY:   sorted-mp  greedy-st  divided-greedy (mesh)
FAULT-SWEEP:  dual-path and multi-path plan around faults; any other
              algorithm runs fault-oblivious under abort-and-retry
TRACE:        trace.json is Chrome trace-event JSON — open it at
              ui.perfetto.dev (or chrome://tracing)
SWEEP:        fans load x algorithm x replication across --jobs threads
              (default: all cores, or MCAST_JOBS / RAYON_NUM_THREADS);
              --compare-serial also runs the serial reference and checks
              the parallel results are bit-identical
NODES:        decimal ids, or 0b... binary addresses on cubes";

enum Topo {
    Mesh(Mesh2D),
    Cube(Hypercube),
}

fn parse_topology(spec: &str) -> Result<Topo, ArgError> {
    let (kind, rest) = spec
        .split_once(':')
        .ok_or_else(|| ArgError(format!("expected mesh:WxH or cube:N, got {spec:?}")))?;
    match kind {
        "mesh" => {
            let (w, h) = parse_dims(rest)?;
            Ok(Topo::Mesh(Mesh2D::new(w, h)))
        }
        "cube" => {
            let n: u32 = rest
                .parse()
                .map_err(|_| ArgError(format!("bad cube dimension {rest:?}")))?;
            Ok(Topo::Cube(Hypercube::new(n)))
        }
        other => Err(ArgError(format!("unknown topology kind {other:?}"))),
    }
}

fn make_router(
    topo: &Topo,
    algorithm: &str,
) -> Result<Box<dyn MulticastRouter + Send + Sync>, ArgError> {
    let (alg, lanes) = match algorithm.split_once(':') {
        Some((a, l)) => (
            a,
            Some(
                l.parse::<u8>()
                    .map_err(|_| ArgError(format!("bad lane count {l:?}")))?,
            ),
        ),
        None => (algorithm, None),
    };
    Ok(match (topo, alg) {
        (Topo::Mesh(m), "dual-path") => Box::new(DualPathRouter::mesh(*m)),
        (Topo::Mesh(m), "multi-path") => Box::new(MultiPathMeshRouter::new(*m)),
        (Topo::Mesh(m), "fixed-path") => Box::new(FixedPathRouter::mesh(*m)),
        (Topo::Mesh(m), "vc-multi-path") => {
            Box::new(VcMultiPathRouter::mesh(*m, lanes.unwrap_or(2)))
        }
        (Topo::Mesh(m), "dc-tree") => Box::new(DoubleChannelTreeRouter::new(*m)),
        (Topo::Mesh(m), "xfirst-tree") => Box::new(XFirstTreeRouter::new(*m)),
        (Topo::Cube(c), "dual-path") => Box::new(DualPathRouter::hypercube(*c)),
        (Topo::Cube(c), "multi-path") => Box::new(MultiPathCubeRouter::new(*c)),
        (Topo::Cube(c), "fixed-path") => Box::new(FixedPathRouter::hypercube(*c)),
        (Topo::Cube(c), "vc-multi-path") => {
            Box::new(VcMultiPathRouter::hypercube(*c, lanes.unwrap_or(2)))
        }
        (Topo::Cube(c), "ecube-tree") => Box::new(EcubeTreeRouter::new(*c)),
        _ => {
            return Err(ArgError(format!(
                "algorithm {algorithm:?} not available on this topology"
            )))
        }
    })
}

fn format_node(topo: &Topo, n: usize) -> String {
    match topo {
        Topo::Mesh(m) => {
            let (x, y) = m.coords(n);
            format!("{n}=({x},{y})")
        }
        Topo::Cube(c) => format!("{n}={}", c.format_addr(n)),
    }
}

/// `mcast route …`
pub fn route(a: &Args) -> Result<(), ArgError> {
    let topo = parse_topology(a.require("topology")?)?;
    let algorithm = a.get_or("algorithm", "dual-path");
    let source = parse_nodes(a.require("source")?)?
        .first()
        .copied()
        .ok_or_else(|| ArgError("empty --source".into()))?;
    let dests = parse_nodes(a.require("dests")?)?;
    let num_nodes = match &topo {
        Topo::Mesh(m) => m.num_nodes(),
        Topo::Cube(c) => c.num_nodes(),
    };
    for &n in dests.iter().chain([&source]) {
        if n >= num_nodes {
            return Err(ArgError(format!("node {n} out of range (N={num_nodes})")));
        }
    }
    let mc = MulticastSet::new(source, dests);

    // Route-only algorithms print their route shape directly; router
    // algorithms print their plan paths/trees.
    let mc_route: MulticastRoute =
        match (&topo, algorithm) {
            (Topo::Mesh(m), "sorted-mp") => {
                let cycle = mesh2d_cycle(m);
                MulticastRoute::Path(mcast_core::sorted_mp::sorted_mp(m, &cycle, &mc))
            }
            (Topo::Cube(c), "sorted-mp") => {
                let cycle = hypercube_cycle(c);
                MulticastRoute::Path(mcast_core::sorted_mp::sorted_mp(c, &cycle, &mc))
            }
            (Topo::Mesh(m), "divided-greedy") => {
                MulticastRoute::Tree(mcast_core::divided_greedy::divided_greedy_tree(m, &mc))
            }
            (Topo::Mesh(m), "greedy-st") => {
                let st = mcast_core::greedy_st::greedy_st(m, &mc);
                println!("greedy Steiner tree, virtual edges:");
                for &(s, t) in st.edges() {
                    println!("  {} -- {}", format_node(&topo, s), format_node(&topo, t));
                }
                println!("traffic: {}", st.traffic(m));
                return Ok(());
            }
            (Topo::Cube(c), "greedy-st") => {
                let st = mcast_core::greedy_st::greedy_st(c, &mc);
                println!("greedy Steiner tree, virtual edges:");
                for &(s, t) in st.edges() {
                    println!("  {} -- {}", format_node(&topo, s), format_node(&topo, t));
                }
                println!("traffic: {}", st.traffic(c));
                return Ok(());
            }
            (Topo::Mesh(m), "dual-path") => {
                MulticastRoute::Star(mcast_core::dual_path::dual_path(m, &mesh2d_snake(m), &mc))
            }
            (Topo::Cube(c), "dual-path") => {
                MulticastRoute::Star(mcast_core::dual_path::dual_path(c, &hypercube_gray(c), &mc))
            }
            (Topo::Mesh(m), "multi-path") => MulticastRoute::Star(
                mcast_core::multi_path::multi_path_mesh(m, &mesh2d_snake(m), &mc),
            ),
            (Topo::Cube(c), "multi-path") => MulticastRoute::Star(
                mcast_core::multi_path::multi_path(c, &hypercube_gray(c), &mc),
            ),
            (Topo::Mesh(m), "fixed-path") => {
                MulticastRoute::Star(mcast_core::fixed_path::fixed_path(m, &mesh2d_snake(m), &mc))
            }
            (Topo::Cube(c), "fixed-path") => MulticastRoute::Star(
                mcast_core::fixed_path::fixed_path(c, &hypercube_gray(c), &mc),
            ),
            (Topo::Mesh(m), "xfirst-tree") => {
                MulticastRoute::Tree(mcast_core::xfirst::xfirst_tree(m, &mc))
            }
            (Topo::Mesh(m), "dc-tree") => MulticastRoute::Forest(
                mcast_core::dc_xfirst_tree::dc_xfirst(m, &mc)
                    .into_iter()
                    .map(|p| p.tree)
                    .collect(),
            ),
            _ => {
                return Err(ArgError(format!(
                    "algorithm {algorithm:?} not available on this topology"
                )))
            }
        };
    match &topo {
        Topo::Mesh(m) => mc_route.validate(m, &mc),
        Topo::Cube(c) => mc_route.validate(c, &mc),
    }
    .map_err(ArgError)?;
    print_route(&topo, &mc_route);
    println!("traffic: {} channels", mc_route.traffic());
    if let Some(h) = mc_route.max_dest_hops(&mc) {
        println!("max destination distance: {h} hops");
    }
    for &d in &mc.destinations {
        println!(
            "  {}: {} hops",
            format_node(&topo, d),
            mc_route.hops_to(d).expect("validated")
        );
    }
    Ok(())
}

fn print_route(topo: &Topo, route: &MulticastRoute) {
    match route {
        MulticastRoute::Path(p) | MulticastRoute::Cycle(p) => {
            println!(
                "path: {}",
                p.nodes()
                    .iter()
                    .map(|&n| format_node(topo, n))
                    .collect::<Vec<_>>()
                    .join(" -> ")
            );
        }
        MulticastRoute::Star(paths) => {
            for (i, p) in paths.iter().enumerate() {
                println!(
                    "path {}: {}",
                    i + 1,
                    p.nodes()
                        .iter()
                        .map(|&n| format_node(topo, n))
                        .collect::<Vec<_>>()
                        .join(" -> ")
                );
            }
        }
        MulticastRoute::Tree(t) => {
            println!("tree edges:");
            for (p, c) in t.edges() {
                println!("  {} -> {}", format_node(topo, p), format_node(topo, c));
            }
        }
        MulticastRoute::Forest(trees) => {
            for (i, t) in trees.iter().enumerate() {
                println!("tree {}:", i + 1);
                for (p, c) in t.edges() {
                    println!("  {} -> {}", format_node(topo, p), format_node(topo, c));
                }
            }
        }
    }
}

/// `mcast simulate …`
pub fn simulate(a: &Args) -> Result<(), ArgError> {
    let topo = parse_topology(a.require("topology")?)?;
    let router = make_router(&topo, a.get_or("algorithm", "dual-path"))?;
    let cfg = DynamicConfig {
        mean_interarrival_ns: a.number::<f64>("interarrival-us", 600.0)? * 1000.0,
        destinations: a.number("dests", 10)?,
        seed: a.number("seed", 7)?,
        ..DynamicConfig::default()
    };
    let result = match &topo {
        Topo::Mesh(m) => run_dynamic(m, router.as_ref(), &cfg),
        Topo::Cube(c) => run_dynamic(c, router.as_ref(), &cfg),
    };
    println!("algorithm: {}", router.name());
    println!(
        "interarrival: {:.0} us/node, k = {}",
        cfg.mean_interarrival_ns / 1000.0,
        cfg.destinations
    );
    if result.saturated {
        println!("result: SATURATED (open-loop backlog grew without bound)");
    } else {
        println!(
            "mean network latency: {:.1} us  (95% CI ±{:.1}, {} batches, {} messages)",
            result.mean_latency_us, result.ci_us, result.batches, result.measured
        );
        println!("mean traffic: {:.1} channels/message", result.mean_traffic);
    }
    println!("simulated time: {:.1} ms", result.sim_time_ns as f64 / 1e6);
    Ok(())
}

/// `mcast sweep …` — the Chapter-7 grid (loads × algorithms ×
/// replications) fanned across worker threads, with an optional serial
/// reference leg proving the parallel run changes nothing.
pub fn sweep(a: &Args) -> Result<(), ArgError> {
    let topo = parse_topology(a.get_or("topology", "mesh:8x8"))?;
    let algorithms: Vec<String> = a
        .get_or("algorithms", "dual-path,multi-path")
        .split(',')
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    if algorithms.is_empty() {
        return Err(ArgError("empty --algorithms".into()));
    }
    let loads_us: Vec<f64> = a
        .get_or("loads-us", "600,450,350")
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.trim()
                .parse::<f64>()
                .map_err(|_| ArgError(format!("bad load {s:?} in --loads-us")))
        })
        .collect::<Result<_, _>>()?;
    if loads_us.is_empty() {
        return Err(ArgError("empty --loads-us".into()));
    }
    let jobs = match a.number::<usize>("jobs", 0)? {
        0 => resolve_jobs(None),
        n => n,
    };
    let compare_serial = a.get_or("compare-serial", "true") == "true";
    let cfg = SweepConfig {
        base: DynamicConfig {
            destinations: a.number("dests", 8)?,
            seed: a.number("seed", 7)?,
            ..DynamicConfig::default()
        },
        loads_ns: loads_us.iter().map(|&us| us * 1000.0).collect(),
        replications: a.number("replications", 3)?,
    };
    let routers: Vec<Box<dyn MulticastRouter + Send + Sync>> = algorithms
        .iter()
        .map(|alg| make_router(&topo, alg))
        .collect::<Result<_, _>>()?;
    let named: Vec<(&str, &(dyn MulticastRouter + Sync))> = algorithms
        .iter()
        .zip(&routers)
        .map(|(name, r)| (name.as_str(), r.as_ref() as &(dyn MulticastRouter + Sync)))
        .collect();

    let run = |jobs: usize| -> (Vec<SweepRow>, f64) {
        let start = std::time::Instant::now();
        let rows = match &topo {
            Topo::Mesh(m) => run_dynamic_sweep(m, &named, &cfg, jobs),
            Topo::Cube(c) => run_dynamic_sweep(c, &named, &cfg, jobs),
        };
        (rows, start.elapsed().as_secs_f64() * 1000.0)
    };

    let (rows, parallel_ms) = run(jobs);
    println!("scheme        load_us  reps  sat  mean_us     ci_us  completed");
    for agg in aggregate_sweep(&rows) {
        println!(
            "{:<13} {:>7.0} {:>5} {:>4}  {:>7.1}  {:>8.2}  {:>9}",
            agg.scheme,
            agg.mean_interarrival_ns / 1000.0,
            agg.replications,
            agg.saturated,
            agg.latency_us.mean(),
            agg.latency_us.ci_half_width_95(),
            agg.completed,
        );
    }
    if compare_serial {
        let (serial_rows, serial_ms) = run(1);
        let identical = rows.len() == serial_rows.len()
            && rows.iter().zip(&serial_rows).all(|(p, s)| {
                p.point == s.point
                    && p.result.mean_latency_us == s.result.mean_latency_us
                    && p.result.saturated == s.result.saturated
                    && p.result.completed == s.result.completed
                    && p.result.sim_time_ns == s.result.sim_time_ns
            });
        println!(
            "sweep: {} points in {:.1} ms with {} jobs (serial {:.1} ms, speedup {:.2}x, {})",
            rows.len(),
            parallel_ms,
            jobs,
            serial_ms,
            if parallel_ms > 0.0 {
                serial_ms / parallel_ms
            } else {
                0.0
            },
            if identical {
                "results bit-identical"
            } else {
                "RESULTS DIVERGED"
            }
        );
        if !identical {
            return Err(ArgError(
                "parallel sweep diverged from the serial reference".into(),
            ));
        }
    } else {
        println!(
            "sweep: {} points in {:.1} ms with {} jobs",
            rows.len(),
            parallel_ms,
            jobs
        );
    }
    Ok(())
}

/// `mcast deadlock …`
pub fn deadlock(a: &Args) -> Result<(), ArgError> {
    let scenario = a.require("scenario")?;
    let recover = a.get_or("recover", "false") == "true";
    let (topo, algorithm, multicasts) = match scenario {
        "fig6_1" => {
            let cube = Hypercube::new(3);
            (
                Topo::Cube(cube),
                a.get_or("algorithm", "ecube-tree"),
                fig_6_1_broadcasts(cube),
            )
        }
        "fig6_4" => {
            let mesh = Mesh2D::new(4, 3);
            (
                Topo::Mesh(mesh),
                a.get_or("algorithm", "xfirst-tree"),
                fig_6_4_multicasts(&mesh),
            )
        }
        other => return Err(ArgError(format!("unknown scenario {other:?}"))),
    };
    let router = make_router(&topo, algorithm)?;
    let network = match &topo {
        Topo::Mesh(m) => Network::new(m, router.required_classes()),
        Topo::Cube(c) => Network::new(c, router.required_classes()),
    };
    if recover {
        let supervised = ObliviousRouter::new(router);
        let (outcome, stats, events) = run_closed_scenario_recovering(
            &supervised,
            network,
            SimConfig::default(),
            RecoveryPolicy::default(),
            &multicasts,
        );
        report(
            algorithm,
            outcome.completed,
            outcome.stuck_messages,
            outcome.finished_at,
        );
        println!(
            "recovery: {} aborts, {} retries, {} drops ({} events logged)",
            stats.aborts,
            stats.retries,
            stats.dropped,
            events.len()
        );
    } else {
        let outcome = run_closed_scenario(&router, network, SimConfig::default(), &multicasts);
        report(
            algorithm,
            outcome.completed,
            outcome.stuck_messages,
            outcome.finished_at,
        );
        for s in &outcome.stuck {
            println!(
                "  message {} holds {} channels, awaits {:?}",
                s.message,
                s.holds.len(),
                s.awaits
                    .iter()
                    .map(|c| format!("{}->{}", c.from, c.to))
                    .collect::<Vec<_>>()
            );
        }
    }
    Ok(())
}

fn report(algorithm: &str, completed: bool, stuck: usize, at: u64) {
    if completed {
        println!("{algorithm}: completed at t = {:.1} us", at as f64 / 1000.0);
    } else {
        println!("{algorithm}: DEADLOCKED — {stuck} messages wedged forever");
    }
}

fn parse_rates(s: &str) -> Result<Vec<f64>, ArgError> {
    let rates: Vec<f64> = s
        .split(',')
        .filter(|p| !p.is_empty())
        .map(|p| {
            p.trim()
                .parse()
                .map_err(|_| ArgError(format!("bad fault rate {p:?}")))
        })
        .collect::<Result<_, _>>()?;
    if rates.is_empty() {
        return Err(ArgError("empty --fault-rates".into()));
    }
    if let Some(&bad) = rates.iter().find(|r| !(0.0..=1.0).contains(*r)) {
        return Err(ArgError(format!("fault rate {bad} out of [0, 1]")));
    }
    Ok(rates)
}

fn make_fault_router(
    topo: &Topo,
    algorithm: &str,
) -> Result<Box<dyn FaultMulticastRouter>, ArgError> {
    Ok(match (topo, algorithm) {
        (Topo::Mesh(m), "dual-path") => Box::new(FaultDualPathRouter::mesh(*m)),
        (Topo::Cube(c), "dual-path") => Box::new(FaultDualPathRouter::hypercube(*c)),
        (Topo::Mesh(m), "multi-path") => Box::new(FaultMultiPathRouter::mesh(*m)),
        (Topo::Cube(c), "multi-path") => Box::new(FaultMultiPathRouter::hypercube(*c)),
        // Everything else runs fault-oblivious under the recovery engine.
        _ => Box::new(ObliviousRouter::new(make_router(topo, algorithm)?)),
    })
}

fn sweep_record(row: &FaultSweepRow) -> Vec<(&'static str, String)> {
    vec![
        ("algorithm", format!("{:?}", row.algorithm)),
        ("fault_rate", format!("{}", row.fault_rate)),
        ("failed_links", format!("{}", row.failed_links)),
        ("messages", format!("{}", row.messages)),
        ("destinations_total", format!("{}", row.destinations_total)),
        (
            "destinations_delivered",
            format!("{}", row.destinations_delivered),
        ),
        ("delivery_ratio", format!("{:.4}", row.delivery_ratio)),
        (
            "mean_latency_us",
            if row.mean_latency_us.is_finite() {
                format!("{:.2}", row.mean_latency_us)
            } else {
                "null".to_string()
            },
        ),
        ("aborts", format!("{}", row.aborts)),
        ("retries", format!("{}", row.retries)),
        ("drops", format!("{}", row.drops)),
        ("escapes", format!("{}", row.escapes)),
    ]
}

/// `mcast fault-sweep …`
pub fn fault_sweep(a: &Args) -> Result<(), ArgError> {
    let topo = parse_topology(a.require("topology")?)?;
    let algorithm = a.get_or("algorithm", "dual-path");
    let router = make_fault_router(&topo, algorithm)?;
    let cfg = FaultSweepConfig {
        fault_rates: parse_rates(a.get_or("fault-rates", "0,0.02,0.05,0.1"))?,
        messages: a.number("messages", 64)?,
        destinations: a.number("dests", 4)?,
        seed: a.number("seed", 7)?,
        keep_connected: a.get_or("keep-connected", "true") == "true",
        ..FaultSweepConfig::default()
    };
    let rows = match &topo {
        Topo::Mesh(m) => run_fault_sweep(m, router.as_ref(), &cfg),
        Topo::Cube(c) => run_fault_sweep(c, router.as_ref(), &cfg),
    };
    match a.get_or("format", "table") {
        "table" => {
            println!(
                "{:<24} {:>6} {:>6} {:>11} {:>7} {:>11} {:>7} {:>8} {:>6} {:>8}",
                "algorithm",
                "rate",
                "links",
                "delivered",
                "ratio",
                "latency us",
                "aborts",
                "retries",
                "drops",
                "escapes"
            );
            for r in &rows {
                println!(
                    "{:<24} {:>6.2} {:>6} {:>11} {:>7.3} {:>11} {:>7} {:>8} {:>6} {:>8}",
                    r.algorithm,
                    r.fault_rate,
                    r.failed_links,
                    format!("{}/{}", r.destinations_delivered, r.destinations_total),
                    r.delivery_ratio,
                    if r.mean_latency_us.is_finite() {
                        format!("{:.1}", r.mean_latency_us)
                    } else {
                        "n/a".to_string()
                    },
                    r.aborts,
                    r.retries,
                    r.drops,
                    r.escapes,
                );
            }
        }
        "csv" => {
            let fields: Vec<&str> = sweep_record(&rows[0]).iter().map(|(k, _)| *k).collect();
            println!("{}", fields.join(","));
            for r in &rows {
                let vals: Vec<String> = sweep_record(r)
                    .into_iter()
                    .map(|(k, v)| {
                        if k == "algorithm" {
                            r.algorithm.to_string()
                        } else {
                            v
                        }
                    })
                    .map(|v| if v == "null" { String::new() } else { v })
                    .collect();
                println!("{}", vals.join(","));
            }
        }
        "json" => {
            println!("[");
            for (i, r) in rows.iter().enumerate() {
                let fields: Vec<String> = sweep_record(r)
                    .into_iter()
                    .map(|(k, v)| format!("\"{k}\": {v}"))
                    .collect();
                let comma = if i + 1 < rows.len() { "," } else { "" };
                println!("  {{{}}}{comma}", fields.join(", "));
            }
            println!("]");
        }
        other => return Err(ArgError(format!("unknown format {other:?}"))),
    }
    Ok(())
}

/// Traffic/observability parameters shared by `trace` and `metrics`.
struct TraceRun {
    pattern: String,
    messages: usize,
    destinations: usize,
    mean_interarrival_ns: f64,
    seed: u64,
}

impl TraceRun {
    fn from_args(a: &Args) -> Result<TraceRun, ArgError> {
        let pattern = a.get_or("pattern", "hotspot").to_string();
        if pattern != "hotspot" && pattern != "uniform" {
            return Err(ArgError(format!(
                "unknown pattern {pattern:?} (expected hotspot or uniform)"
            )));
        }
        Ok(TraceRun {
            pattern,
            messages: a.number("messages", 128)?,
            destinations: a.number("dests", 5)?,
            mean_interarrival_ns: a.number::<f64>("interarrival-us", 60.0)? * 1000.0,
            seed: a.number("seed", 7)?,
        })
    }
}

/// The hot-spot node of a topology: the mesh center, or the mid-address
/// cube node — every hot-spot multicast addresses it, concentrating
/// contention the way §7.2's non-uniform loads do.
fn hotspot_node(topo: &Topo) -> usize {
    match topo {
        Topo::Mesh(m) => m.node(m.width() / 2, m.height() / 2),
        Topo::Cube(c) => c.num_nodes() / 2,
    }
}

fn topo_nodes(topo: &Topo) -> usize {
    match topo {
        Topo::Mesh(m) => m.num_nodes(),
        Topo::Cube(c) => c.num_nodes(),
    }
}

/// Human-readable channel labels for the trace/heatmap exporters.
fn channel_names(topo: &Topo, network: &Network) -> Vec<String> {
    (0..network.num_channels())
        .map(|id| {
            let c = network.channel(id);
            match topo {
                Topo::Mesh(m) => {
                    let (fx, fy) = m.coords(c.from);
                    let (tx, ty) = m.coords(c.to);
                    format!("({fx},{fy})->({tx},{ty}) c{}", c.class)
                }
                Topo::Cube(cu) => format!(
                    "{}->{} c{}",
                    cu.format_addr(c.from),
                    cu.format_addr(c.to),
                    c.class
                ),
            }
        })
        .collect()
}

/// Injects `run.messages` Poisson-arrival multicasts (per-node
/// generators, as in the §7.2 dynamic experiments) through `router` with
/// the given sink installed, then drains the network. Returns whether
/// the network quiesced and the final simulated time (ns).
fn run_traffic(
    topo: &Topo,
    router: &dyn MulticastRouter,
    run: &TraceRun,
    sink: Box<dyn Sink>,
) -> (bool, u64) {
    let network = match topo {
        Topo::Mesh(m) => Network::new(m, router.required_classes()),
        Topo::Cube(c) => Network::new(c, router.required_classes()),
    };
    let mut engine = Engine::new(network, SimConfig::default());
    engine.set_sink(sink);
    let n = topo_nodes(topo);
    let hot = hotspot_node(topo);
    let k = run.destinations.min(n - 1);
    let mut gen = MulticastGen::new(n, run.seed);
    let mut next_gen: Vec<(u64, usize)> = (0..n)
        .map(|node| (gen.exponential_ns(run.mean_interarrival_ns), node))
        .collect();
    for _ in 0..run.messages {
        let (&(t, node), _) = next_gen
            .iter()
            .zip(0..)
            .min_by_key(|((t, node), _)| (*t, *node))
            .expect("generators exist");
        engine.run_until(t);
        let mut mc = gen.multicast_distinct(node, k);
        if run.pattern == "hotspot" && node != hot && !mc.destinations.contains(&hot) {
            mc.destinations[0] = hot;
            mc = MulticastSet::new(node, mc.destinations);
        }
        engine.inject(&router.plan(&mc));
        next_gen[node].0 = t + gen.exponential_ns(run.mean_interarrival_ns);
    }
    let quiesced = engine.run_to_quiescence();
    (quiesced, engine.now())
}

fn write_file(path: &str, contents: &str) -> Result<(), ArgError> {
    std::fs::write(path, contents).map_err(|e| ArgError(format!("writing {path}: {e}")))
}

fn print_latency_summary(snap: &MetricsSnapshot) {
    let h = &snap.latency_ns;
    if h.count() > 0 {
        println!(
            "latency: p50 {:.1} us, p90 {:.1} us, p99 {:.1} us, max {:.1} us ({} messages)",
            h.p50() as f64 / 1000.0,
            h.p90() as f64 / 1000.0,
            h.p99() as f64 / 1000.0,
            h.max() as f64 / 1000.0,
            h.count()
        );
    }
}

/// `mcast trace …` — run a traced scenario and export a Chrome
/// trace-event JSON file (Perfetto-loadable), plus optional metrics /
/// CSV side channels.
pub fn trace(a: &Args) -> Result<(), ArgError> {
    let topo = parse_topology(a.get_or("topology", "mesh:16x16"))?;
    let router = make_router(&topo, a.get_or("algorithm", "dual-path"))?;
    let run = TraceRun::from_args(a)?;
    let out = a.get_or("out", "trace.json");

    let recording = Recording::new();
    let metrics = Metrics::new();
    let sink = Tee::new()
        .with(Box::new(recording.clone()))
        .with(Box::new(metrics.clone()));
    let (quiesced, finished_ns) = run_traffic(&topo, router.as_ref(), &run, Box::new(sink));

    let network = match &topo {
        Topo::Mesh(m) => Network::new(m, router.required_classes()),
        Topo::Cube(c) => Network::new(c, router.required_classes()),
    };
    let meta = TraceMeta {
        channel_names: channel_names(&topo, &network),
    };
    let events = recording.take();
    let snap = metrics.snapshot();

    let flits = a.get_or("flits", "false") == "true";
    write_file(out, &chrome_trace(&events, &meta, &TraceOptions { flits }))?;
    if let Some(path) = a.options.get("metrics-out") {
        write_file(path, &snap.to_registry().to_json())?;
    }
    if let Some(path) = a.options.get("util-csv") {
        write_file(path, &utilization_csv(&snap, &meta))?;
    }
    if let Some(path) = a.options.get("latency-csv") {
        write_file(path, &latency_csv(&events))?;
    }

    println!(
        "{}: {} events from {} messages ({} pattern) -> {out}",
        router.name(),
        events.len(),
        run.messages,
        run.pattern
    );
    println!(
        "simulated {:.1} us, {} completed, {} flit hops{}",
        finished_ns as f64 / 1000.0,
        snap.completed,
        snap.flits,
        if quiesced { "" } else { " — DID NOT QUIESCE" }
    );
    print_latency_summary(&snap);
    println!("open {out} at ui.perfetto.dev (or chrome://tracing)");
    Ok(())
}

/// Renders per-node peak outgoing-channel utilization as an ASCII
/// heatmap of the mesh (top row = highest y, matching Fig 3.2's layout).
fn mesh_heatmap(m: &Mesh2D, network: &Network, snap: &MetricsSnapshot) -> String {
    const SHADES: &[u8] = b".:-=+*#%@";
    let mut util = vec![0.0f64; m.num_nodes()];
    for id in 0..network.num_channels() {
        let c = network.channel(id);
        let u = snap.utilization(id);
        if u > util[c.from] {
            util[c.from] = u;
        }
    }
    let mut out = String::new();
    for y in (0..m.height()).rev() {
        for x in 0..m.width() {
            let u = util[m.node(x, y)];
            let idx = ((u * SHADES.len() as f64) as usize).min(SHADES.len() - 1);
            out.push(if u == 0.0 { ' ' } else { SHADES[idx] as char });
        }
        out.push('\n');
    }
    out
}

/// `mcast metrics …` — run a scenario under the metrics collector only
/// and print the snapshot: counters, latency percentiles, and (on
/// meshes) a per-node channel-utilization heatmap.
pub fn metrics(a: &Args) -> Result<(), ArgError> {
    let topo = parse_topology(a.get_or("topology", "mesh:16x16"))?;
    let router = make_router(&topo, a.get_or("algorithm", "dual-path"))?;
    let run = TraceRun::from_args(a)?;

    let metrics = Metrics::new();
    let (quiesced, finished_ns) =
        run_traffic(&topo, router.as_ref(), &run, Box::new(metrics.clone()));
    let snap = metrics.snapshot();
    let registry = snap.to_registry();

    if let Some(path) = a.options.get("out") {
        write_file(path, &registry.to_json())?;
    }
    if a.get_or("json", "false") == "true" {
        println!("{}", registry.to_json());
        return Ok(());
    }

    println!(
        "{}: {} messages ({} pattern), simulated {:.1} us{}",
        router.name(),
        run.messages,
        run.pattern,
        finished_ns as f64 / 1000.0,
        if quiesced { "" } else { " — DID NOT QUIESCE" }
    );
    println!(
        "injected {}, completed {}, aborted {}, {} destination deliveries, {} flit hops",
        snap.injected, snap.completed, snap.aborted, snap.delivered, snap.flits
    );
    print_latency_summary(&snap);
    let peak = (0..snap.channels.len())
        .map(|i| snap.utilization(i))
        .fold(0.0f64, f64::max);
    println!("peak channel utilization: {:.1}%", peak * 100.0);
    if let Topo::Mesh(m) = &topo {
        let network = Network::new(m, router.required_classes());
        println!(
            "per-node peak outgoing utilization ({}x{} mesh):",
            m.width(),
            m.height()
        );
        print!("{}", mesh_heatmap(m, &network, &snap));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(parts: &[&str]) -> Args {
        Args::parse(&parts.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn route_command_end_to_end() {
        for alg in [
            "dual-path",
            "multi-path",
            "fixed-path",
            "dc-tree",
            "xfirst-tree",
            "divided-greedy",
            "sorted-mp",
            "greedy-st",
        ] {
            route(&args(&[
                "route",
                "--topology",
                "mesh:6x6",
                "--algorithm",
                alg,
                "--source",
                "15",
                "--dests",
                "0,5,30,35",
            ]))
            .unwrap_or_else(|e| panic!("{alg}: {e}"));
        }
    }

    #[test]
    fn route_on_cube_with_binary_addresses() {
        for alg in ["dual-path", "multi-path", "sorted-mp", "greedy-st"] {
            route(&args(&[
                "route",
                "--topology",
                "cube:4",
                "--algorithm",
                alg,
                "--source",
                "0b1100",
                "--dests",
                "0b0100,0b1111,0b0011",
            ]))
            .unwrap_or_else(|e| panic!("{alg}: {e}"));
        }
    }

    #[test]
    fn deadlock_scenarios() {
        deadlock(&args(&["deadlock", "--scenario", "fig6_1"])).unwrap();
        deadlock(&args(&["deadlock", "--scenario", "fig6_4"])).unwrap();
        deadlock(&args(&[
            "deadlock",
            "--scenario",
            "fig6_4",
            "--algorithm",
            "dual-path",
        ]))
        .unwrap();
        assert!(deadlock(&args(&["deadlock", "--scenario", "nope"])).is_err());
    }

    #[test]
    fn deadlock_scenarios_recover() {
        // The §6.1/§6.4 deadlocks complete under the recovery engine.
        deadlock(&args(&[
            "deadlock",
            "--scenario",
            "fig6_1",
            "--recover",
            "true",
        ]))
        .unwrap();
        deadlock(&args(&[
            "deadlock",
            "--scenario",
            "fig6_4",
            "--recover",
            "true",
        ]))
        .unwrap();
    }

    #[test]
    fn fault_sweep_all_formats_and_routers() {
        for format in ["table", "csv", "json"] {
            fault_sweep(&args(&[
                "fault-sweep",
                "--topology",
                "mesh:4x4",
                "--algorithm",
                "dual-path",
                "--fault-rates",
                "0,0.05,0.1,0.2",
                "--messages",
                "12",
                "--format",
                format,
            ]))
            .unwrap_or_else(|e| panic!("{format}: {e}"));
        }
        // Fault-aware multi-path on a cube, and an oblivious tree.
        fault_sweep(&args(&[
            "fault-sweep",
            "--topology",
            "cube:3",
            "--algorithm",
            "multi-path",
            "--messages",
            "8",
        ]))
        .unwrap();
        fault_sweep(&args(&[
            "fault-sweep",
            "--topology",
            "mesh:4x4",
            "--algorithm",
            "xfirst-tree",
            "--messages",
            "8",
        ]))
        .unwrap();
        assert!(fault_sweep(&args(&[
            "fault-sweep",
            "--topology",
            "mesh:4x4",
            "--fault-rates",
            "0,2.0"
        ]))
        .is_err());
        assert!(fault_sweep(&args(&[
            "fault-sweep",
            "--topology",
            "mesh:4x4",
            "--format",
            "yaml"
        ]))
        .is_err());
    }

    #[test]
    fn trace_command_emits_valid_chrome_trace() {
        let dir = std::env::temp_dir();
        let out = dir.join("mcast_cli_test_trace.json");
        let mout = dir.join("mcast_cli_test_metrics.json");
        let ucsv = dir.join("mcast_cli_test_util.csv");
        trace(&args(&[
            "trace",
            "--topology",
            "mesh:6x6",
            "--messages",
            "40",
            "--dests",
            "4",
            "--interarrival-us",
            "40",
            "--out",
            out.to_str().unwrap(),
            "--metrics-out",
            mout.to_str().unwrap(),
            "--util-csv",
            ucsv.to_str().unwrap(),
            "--flits",
            "true",
        ]))
        .unwrap();
        let s = std::fs::read_to_string(&out).unwrap();
        mcast_obs::validate_json(&s).unwrap_or_else(|e| panic!("trace JSON invalid: {e}"));
        assert!(s.contains("traceEvents"));
        let m = std::fs::read_to_string(&mout).unwrap();
        mcast_obs::validate_json(&m).unwrap_or_else(|e| panic!("metrics JSON invalid: {e}"));
        assert!(m.contains("latency.ns"));
        assert!(std::fs::read_to_string(&ucsv)
            .unwrap()
            .starts_with("channel,"));
        for p in [&out, &mout, &ucsv] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn sweep_command_runs_and_verifies_serial_parity() {
        // Tiny grid; --compare-serial true errors out if the parallel
        // rows diverge from the serial reference, so .unwrap() is the
        // determinism assertion.
        sweep(&args(&[
            "sweep",
            "--topology",
            "mesh:4x4",
            "--algorithms",
            "dual-path,multi-path",
            "--loads-us",
            "800,500",
            "--replications",
            "2",
            "--dests",
            "4",
            "--jobs",
            "3",
            "--compare-serial",
            "true",
        ]))
        .unwrap();
        assert!(sweep(&args(&["sweep", "--algorithms", ""])).is_err());
        assert!(sweep(&args(&["sweep", "--loads-us", "abc"])).is_err());
    }

    #[test]
    fn metrics_command_runs_on_mesh_and_cube() {
        metrics(&args(&[
            "metrics",
            "--topology",
            "mesh:6x6",
            "--messages",
            "30",
            "--pattern",
            "hotspot",
        ]))
        .unwrap();
        metrics(&args(&[
            "metrics",
            "--topology",
            "cube:4",
            "--messages",
            "20",
            "--pattern",
            "uniform",
            "--json",
            "true",
        ]))
        .unwrap();
        assert!(metrics(&args(&["metrics", "--pattern", "nope"])).is_err());
    }

    #[test]
    fn bad_inputs_rejected() {
        assert!(route(&args(&[
            "route",
            "--topology",
            "mesh:6x6",
            "--source",
            "99",
            "--dests",
            "1"
        ]))
        .is_err());
        assert!(parse_topology("ring:5").is_err());
        assert!(make_router(&Topo::Mesh(Mesh2D::new(4, 4)), "ecube-tree").is_err());
    }
}
