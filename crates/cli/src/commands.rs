//! Subcommand implementations for the `mcast` CLI.
//!
//! Every subcommand resolves topologies and routing schemes through
//! `mcast_sim::registry` ([`TopoSpec`] + [`SchemeId`]) and expresses its
//! run as an [`ExperimentSpec`] where one applies — the CLI owns flag
//! parsing and table formatting, nothing else. `mcast run --spec` skips
//! the flags entirely and executes a spec file.

use mcast_core::model::{MulticastRoute, MulticastSet};
use mcast_obs::{
    chrome_trace, latency_csv, utilization_csv, Metrics, MetricsSnapshot, Recording, Sink, Tee,
    TraceMeta, TraceOptions,
};
use mcast_sim::deadlock::{
    fig_6_1_broadcasts, fig_6_4_multicasts, run_closed_scenario, run_closed_scenario_recovering,
};
use mcast_sim::engine::{Engine, SimConfig};
use mcast_sim::network::Network;
use mcast_sim::recovery::{ObliviousRouter, RecoveryPolicy};
use mcast_sim::registry::{
    build_route, build_router, channel_names, RegistryError, RoutePlan, SchemeId, TopoSpec,
};
use mcast_sim::routers::MulticastRouter;
use mcast_sim::topograph::load_custom;
use mcast_topology::{synthesize, Mesh2D, RoutingKind, Topology};
use mcast_workload::fault_sweep::{FaultSweepConfig, FaultSweepRow};
use mcast_workload::gen::MulticastGen;
use mcast_workload::{
    aggregate_sweep, chaos_self_test, check_scenario, inbox_dir, resolve_jobs, run_dynamic,
    run_verify, spec_inbox_filename, DynamicConfig, ExperimentSpec, FaultSpec, JobServer,
    PatternSpec, RetryPolicy, ServeConfig, SweepRow, TrafficPattern, VerifyScenario,
};

use crate::args::{parse_dims, parse_nodes, ArgError, Args, CliError};

/// The help text.
pub const USAGE: &str = "\
mcast — multicast routing for multicomputer networks

USAGE:
  mcast route    --topology <T> --algorithm <A> --source <N> --dests <N,N,...>
  mcast simulate --topology <T> --algorithm <A> [--interarrival-us <F>]
                 [--dests <K>] [--seed <S>]
  mcast sweep    [--topology <T>] [--algorithms <A,A,...>] [--loads-us <F,F,...>]
                 [--replications <R>] [--dests <K>] [--seed <S>]
                 [--jobs <N>] [--engine-jobs <N>] [--compare-serial true|false]
  mcast run      --spec <file.json> [--dry-run true] [--jobs <N>]
                 [--engine-jobs <N>] [--stream true] [--messages <N>]
                 [--duration-ms <MS>]
  mcast deadlock --scenario fig6_1|fig6_4 [--algorithm <A>] [--recover true]
  mcast fault-sweep --topology <T> [--algorithm <A>] [--fault-rates 0,0.02,0.05,0.1]
                 [--messages <N>] [--dests <K>] [--seed <S>]
                 [--format table|csv|json] [--keep-connected true|false]
  mcast trace    [--topology <T>] [--algorithm <A>] [--pattern hotspot|uniform]
                 [--messages <N>] [--dests <K>] [--interarrival-us <F>] [--seed <S>]
                 [--out trace.json] [--metrics-out <F>] [--util-csv <F>]
                 [--latency-csv <F>] [--flits true]
  mcast metrics  [--topology <T>] [--algorithm <A>] [--pattern hotspot|uniform]
                 [--messages <N>] [--dests <K>] [--interarrival-us <F>] [--seed <S>]
                 [--out <F>] [--json true]
  mcast verify   [--seed <S>] [--cases <K>] [--quick] [--spec <file.json>]
                 [--chaos swap-class] [--out <dir>]
  mcast topo     validate|synthesize|route|deadlock --graph <SRC>
                 [--source <N> --dests <N,N,...>]
  mcast serve    --journal <dir> [--jobs <N>] [--engine-jobs <N>] [--batch]
                 [--poll-ms <MS>] [--queue-cap <N>] [--retries <N>]
                 [--deadline-ms <MS>] [--step-budget <N>] [--metrics-out <F>]
                 [--chaos [--seed <S>]]
  mcast submit   --journal <dir> --spec <file.json> [--force]
  mcast help

TOPOLOGIES:   mesh:WxH  mesh:WxHxD  cube:N  kary:KxN  torus:KxN
              custom:<graph.json|graph.dot>  custom:rand:NxSEED
              custom:lmesh:WxHxSEED  custom:ftree:KxSEED
ALGORITHMS:   dual-path  multi-path  fixed-path  vc-multi-path:<lanes>
              circuit-dual-path  dc-tree (2D mesh)  octant-tree (3D mesh)
              xfirst-tree (2D mesh)  ecube-tree (cube)
MODERN:       dpm  binomial  recursive-doubling  binomial-reliable
              (every topology; DESIGN.md 17)
ROUTE-ONLY:   sorted-mp  greedy-st  divided-greedy (mesh)
RUN:          executes a declarative ExperimentSpec JSON file — the
              load sweep, plus the fault sweep when the spec has a
              fault section; --dry-run validates without running;
              --stream true runs every point through the bounded-memory
              streaming engine (DESIGN.md §16, O(in-flight) memory);
              --messages <N> bounds each point at N injected multicasts
              instead of the batch-means stopping rule, and
              --duration-ms <MS> bounds it by simulated wall time
              (combined, whichever bound trips first ends injection)
FAULT-SWEEP:  dual-path and multi-path plan around faults; any other
              algorithm runs fault-oblivious under abort-and-retry
TRACE:        trace.json is Chrome trace-event JSON — open it at
              ui.perfetto.dev (or chrome://tracing)
VERIFY:       differential conformance of the optimized engine against
              the reference simulator (DESIGN.md §12) across the full
              (topology, scheme) registry; --quick is the 64-case CI
              profile, --spec replays one reproducer, failures shrink
              to minimal reproducer specs written under --out
SWEEP:        fans load x algorithm x replication across --jobs threads
              (default: all cores, or MCAST_JOBS / RAYON_NUM_THREADS);
              --engine-jobs <N> additionally runs every *single*
              simulation on N worker lanes via the space-parallel
              deterministic engine (DESIGN.md §15) — bit-identical to
              serial, composes with --jobs; --compare-serial also runs
              the fully serial reference (1 job, 1 engine lane) and
              checks the parallel results are bit-identical
TOPO:         custom-topology toolkit — <SRC> is a graph file (JSON or
              a DOT subset) or a generator form (rand:/lmesh:/ftree:);
              synthesize certifies the up*/down* (duplex) or
              shortest-path (directed) routing function deadlock-free
              via channel-dependency-graph acyclicity, deadlock prints
              the verdict (exit 1 names the cycle when uncertifiable),
              route prints synthesized paths; custom graphs route and
              simulate via the updown-mc / updown-tree schemes
SERVE:        supervised job-execution service over a crash-safe journal
              (DESIGN.md §13): submissions land in <dir>/inbox, results
              are cached by canonical spec bytes, panics / deadlines /
              step budgets are retried with capped backoff, overload is
              shed, and a kill+restart resumes incomplete jobs from the
              journal; --batch drains once and exits, --chaos runs the
              built-in fault-injection self-test
SUBMIT:       validates a spec file and drops its canonical bytes into
              the serve inbox (--force submits unvalidated bytes, e.g.
              to exercise the server's poisoned-spec path)
NODES:        decimal ids, or 0b... binary addresses on cubes";

fn to_arg(e: RegistryError) -> ArgError {
    ArgError(e.0)
}

/// Parses `--topology`: meshes go through [`parse_dims`] (2D or 3D),
/// everything else through [`TopoSpec::parse`]. A bad flag value is a
/// usage error, but a custom graph *file* that is missing or malformed
/// is the work failing, not the invocation — that maps to a runtime
/// error (exit 1, path and reason, no usage dump), mirroring how spec
/// files are handled.
fn parse_topology(spec: &str) -> Result<TopoSpec, CliError> {
    if let Some(rest) = spec.strip_prefix("mesh:") {
        return match *parse_dims(rest)?.as_slice() {
            [w, h] => Ok(TopoSpec::Mesh2D { w, h }),
            [w, h, d] => Ok(TopoSpec::Mesh3D { w, h, d }),
            _ => unreachable!("parse_dims yields 2 or 3 dims"),
        };
    }
    let file_form = spec
        .strip_prefix("custom:")
        .is_some_and(|r| [".json", ".dot", ".gv"].iter().any(|ext| r.ends_with(ext)));
    TopoSpec::parse(spec).map_err(|e| {
        if file_form {
            CliError::Runtime(e.0)
        } else {
            CliError::Usage(e.0)
        }
    })
}

fn parse_scheme(algorithm: &str) -> Result<SchemeId, ArgError> {
    SchemeId::parse(algorithm).map_err(to_arg)
}

fn make_router(
    topo: &TopoSpec,
    algorithm: &str,
) -> Result<Box<dyn MulticastRouter + Send + Sync>, ArgError> {
    build_router(topo, &parse_scheme(algorithm)?).map_err(to_arg)
}

fn format_node(topo: &TopoSpec, n: usize) -> String {
    format!("{n}={}", topo.node_name(n))
}

/// `mcast route …`
pub fn route(a: &Args) -> Result<(), CliError> {
    let topo = parse_topology(a.require("topology")?)?;
    let scheme = parse_scheme(a.get_or("algorithm", "dual-path"))?;
    let source = parse_nodes(a.require("source")?)?
        .first()
        .copied()
        .ok_or_else(|| ArgError("empty --source".into()))?;
    let dests = parse_nodes(a.require("dests")?)?;
    let num_nodes = topo.num_nodes();
    for &n in dests.iter().chain([&source]) {
        if n >= num_nodes {
            return Err(ArgError(format!("node {n} out of range (N={num_nodes})")).into());
        }
    }
    let mc = MulticastSet::new(source, dests);
    let mc_route = match build_route(&topo, &scheme, &mc).map_err(to_arg)? {
        RoutePlan::Steiner { edges, traffic } => {
            println!("greedy Steiner tree, virtual edges:");
            for (s, t) in edges {
                println!("  {} -- {}", format_node(&topo, s), format_node(&topo, t));
            }
            println!("traffic: {traffic}");
            return Ok(());
        }
        RoutePlan::Route(route) => route,
    };
    print_route(&topo, &mc_route);
    println!("traffic: {} channels", mc_route.traffic());
    if let Some(h) = mc_route.max_dest_hops(&mc) {
        println!("max destination distance: {h} hops");
    }
    for &d in &mc.destinations {
        println!(
            "  {}: {} hops",
            format_node(&topo, d),
            mc_route.hops_to(d).expect("validated")
        );
    }
    Ok(())
}

fn print_route(topo: &TopoSpec, route: &MulticastRoute) {
    match route {
        MulticastRoute::Path(p) | MulticastRoute::Cycle(p) => {
            println!(
                "path: {}",
                p.nodes()
                    .iter()
                    .map(|&n| format_node(topo, n))
                    .collect::<Vec<_>>()
                    .join(" -> ")
            );
        }
        MulticastRoute::Star(paths) => {
            for (i, p) in paths.iter().enumerate() {
                println!(
                    "path {}: {}",
                    i + 1,
                    p.nodes()
                        .iter()
                        .map(|&n| format_node(topo, n))
                        .collect::<Vec<_>>()
                        .join(" -> ")
                );
            }
        }
        MulticastRoute::Tree(t) => {
            println!("tree edges:");
            for (p, c) in t.edges() {
                println!("  {} -> {}", format_node(topo, p), format_node(topo, c));
            }
        }
        MulticastRoute::Forest(trees) => {
            for (i, t) in trees.iter().enumerate() {
                println!("tree {}:", i + 1);
                for (p, c) in t.edges() {
                    println!("  {} -> {}", format_node(topo, p), format_node(topo, c));
                }
            }
        }
    }
}

/// `mcast simulate …`
pub fn simulate(a: &Args) -> Result<(), CliError> {
    let topo = parse_topology(a.require("topology")?)?;
    let router = make_router(&topo, a.get_or("algorithm", "dual-path"))?;
    let cfg = DynamicConfig {
        mean_interarrival_ns: a.number::<f64>("interarrival-us", 600.0)? * 1000.0,
        destinations: a.number("dests", 10)?,
        seed: a.number("seed", 7)?,
        ..DynamicConfig::default()
    };
    let built = topo.build();
    let result = run_dynamic(built.as_dyn(), router.as_ref(), &cfg);
    println!("algorithm: {}", router.name());
    println!(
        "interarrival: {:.0} us/node, k = {}",
        cfg.mean_interarrival_ns / 1000.0,
        cfg.destinations
    );
    if result.saturated {
        println!("result: SATURATED (open-loop backlog grew without bound)");
    } else {
        println!(
            "mean network latency: {:.1} us  (95% CI ±{:.1}, {} batches, {} messages)",
            result.mean_latency_us, result.ci_us, result.batches, result.measured
        );
        println!("mean traffic: {:.1} channels/message", result.mean_traffic);
    }
    println!("simulated time: {:.1} ms", result.sim_time_ns as f64 / 1e6);
    Ok(())
}

fn print_sweep_table(rows: &[SweepRow]) {
    println!("scheme        load_us  reps  sat  mean_us     ci_us  completed");
    for agg in aggregate_sweep(rows) {
        println!(
            "{:<13} {:>7.0} {:>5} {:>4}  {:>7.1}  {:>8.2}  {:>9}",
            agg.scheme,
            agg.mean_interarrival_ns / 1000.0,
            agg.replications,
            agg.saturated,
            agg.latency_us.mean(),
            agg.latency_us.ci_half_width_95(),
            agg.completed,
        );
    }
}

/// Builds the [`ExperimentSpec`] behind `mcast sweep`'s flags.
fn sweep_spec(a: &Args) -> Result<ExperimentSpec, CliError> {
    let schemes = a
        .get_or("algorithms", "dual-path,multi-path")
        .split(',')
        .filter(|s| !s.is_empty())
        .map(parse_scheme)
        .collect::<Result<Vec<_>, _>>()?;
    if schemes.is_empty() {
        return Err(ArgError("empty --algorithms".into()).into());
    }
    let loads_us: Vec<f64> = a
        .get_or("loads-us", "600,450,350")
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.trim()
                .parse::<f64>()
                .map_err(|_| ArgError(format!("bad load {s:?} in --loads-us")))
        })
        .collect::<Result<_, _>>()?;
    if loads_us.is_empty() {
        return Err(ArgError("empty --loads-us".into()).into());
    }
    let mut spec = ExperimentSpec::new("sweep", parse_topology(a.get_or("topology", "mesh:8x8"))?);
    spec.schemes = schemes;
    spec.loads_us = loads_us;
    spec.destinations = a.number("dests", 8)?;
    spec.replications = a.number("replications", 3)?;
    spec.seed = a.number("seed", 7)?;
    spec.engine_jobs = engine_jobs_flag(a)?;
    Ok(spec)
}

/// Parses `--engine-jobs` (single-run engine lanes, DESIGN.md §15);
/// 0 / absent means 1 lane (the plain serial engine). Requesting more
/// lanes than the host has cores is allowed — results are bit-identical
/// at any lane count — but warns, since the extra lanes only add
/// windowing overhead.
fn engine_jobs_flag(a: &Args) -> Result<usize, ArgError> {
    Ok(match a.number::<usize>("engine-jobs", 0)? {
        0 => 1,
        n => {
            if let Some(host) = host_cpus() {
                if n > host {
                    eprintln!(
                        "warning: --engine-jobs {n} exceeds this host's {host} available \
                         core(s); results are identical but lanes beyond the core count \
                         only add overhead"
                    );
                }
            }
            n
        }
    })
}

/// Cores available to this process (`None` if the platform won't say).
fn host_cpus() -> Option<usize> {
    std::thread::available_parallelism().ok().map(|n| n.get())
}

/// `mcast sweep …` — the Chapter-7 grid (loads × algorithms ×
/// replications) fanned across worker threads, with an optional serial
/// reference leg proving the parallel run changes nothing.
pub fn sweep(a: &Args) -> Result<(), CliError> {
    let spec = sweep_spec(a)?;
    let jobs = match a.number::<usize>("jobs", 0)? {
        0 => resolve_jobs(None),
        n => n,
    };
    let compare_serial = a.get_or("compare-serial", "true") == "true";

    let run = |jobs: usize, spec: &ExperimentSpec| -> Result<(Vec<SweepRow>, f64), ArgError> {
        let start = std::time::Instant::now();
        let rows = spec.run_sweep(jobs).map_err(to_arg)?;
        Ok((rows, start.elapsed().as_secs_f64() * 1000.0))
    };

    let (rows, parallel_ms) = run(jobs, &spec)?;
    print_sweep_table(&rows);
    if compare_serial {
        // The reference leg is fully serial: one sweep thread AND one
        // engine lane, so the comparison also proves the space-parallel
        // engine (when --engine-jobs > 1) changed nothing.
        let serial_spec = ExperimentSpec {
            engine_jobs: 1,
            ..spec.clone()
        };
        let (serial_rows, serial_ms) = run(1, &serial_spec)?;
        let identical = rows.len() == serial_rows.len()
            && rows.iter().zip(&serial_rows).all(|(p, s)| {
                p.point == s.point
                    && p.result.mean_latency_us == s.result.mean_latency_us
                    && p.result.saturated == s.result.saturated
                    && p.result.completed == s.result.completed
                    && p.result.sim_time_ns == s.result.sim_time_ns
            });
        println!(
            "sweep: {} points in {:.1} ms with {} jobs (serial {:.1} ms, speedup {:.2}x, {})",
            rows.len(),
            parallel_ms,
            jobs,
            serial_ms,
            if parallel_ms > 0.0 {
                serial_ms / parallel_ms
            } else {
                0.0
            },
            if identical {
                "results bit-identical"
            } else {
                "RESULTS DIVERGED"
            }
        );
        if !identical {
            return Err(CliError::Runtime(
                "parallel sweep diverged from the serial reference".into(),
            ));
        }
    } else {
        println!(
            "sweep: {} points in {:.1} ms with {} jobs",
            rows.len(),
            parallel_ms,
            jobs
        );
    }
    Ok(())
}

/// `mcast run …` — execute a declarative spec file end-to-end.
pub fn run(a: &Args) -> Result<(), CliError> {
    let path = a.require("spec")?;
    let mut spec = read_spec_file(path)?;
    // --engine-jobs overrides the spec's engine lanes; results are
    // bit-identical either way (DESIGN.md §15), so the override never
    // changes what the spec means, only how fast it runs.
    if let n @ 2.. = engine_jobs_flag(a)? {
        spec.engine_jobs = n;
    }
    // --stream / --messages / --duration-ms turn on (or tighten) the
    // spec's streaming section: bounded-memory open-loop points
    // (DESIGN.md §16). --duration-ms bounds each point by simulated
    // wall time; combined with --messages, whichever bound trips first
    // ends injection.
    let messages = a.number::<u64>("messages", 0)?;
    let duration_ms = a.number::<u64>("duration-ms", 0)?;
    if a.options.contains_key("duration-ms") && duration_ms == 0 {
        return Err(CliError::Usage("--duration-ms must be at least 1".into()));
    }
    if a.get_or("stream", "false") == "true" || messages > 0 || duration_ms > 0 {
        let mut stream = spec.stream.unwrap_or_default();
        if messages > 0 {
            stream.messages = Some(messages);
        }
        if duration_ms > 0 {
            stream.duration_ns = Some(duration_ms * 1_000_000);
        }
        spec.stream = Some(stream);
    }
    println!(
        "spec {:?}: {} | {} schemes x {} loads x {} replications, k = {}",
        spec.name,
        spec.topology,
        spec.schemes.len(),
        spec.loads_us.len(),
        spec.replications,
        spec.destinations
    );
    if a.get_or("dry-run", "false") == "true" {
        println!("dry run: spec validates, all routers resolve");
        return Ok(());
    }
    let jobs = match a.number::<usize>("jobs", 0)? {
        0 => resolve_jobs(None),
        n => n,
    };
    let rows = spec
        .run_sweep(jobs)
        .map_err(|e| CliError::Runtime(format!("running spec {path}: {}", e.0)))?;
    print_sweep_table(&rows);
    if spec.stream.is_some() {
        // The memory gauges are the point of streaming: report the
        // worst case across every point of the grid.
        let worms = rows.iter().map(|r| r.result.peak_live_worms).max();
        let msgs = rows.iter().map(|r| r.result.peak_in_flight).max();
        println!(
            "stream: peak {} live worm(s), peak {} in-flight message(s) across all points",
            worms.unwrap_or(0),
            msgs.unwrap_or(0)
        );
    }
    if spec.fault.is_some() {
        let fault_rows = spec
            .run_fault_sweep()
            .map_err(|e| CliError::Runtime(format!("running fault sweep in {path}: {}", e.0)))?;
        println!();
        print_fault_rows(&fault_rows, "table")?;
    }
    Ok(())
}

/// Reads and canonicalizes an [`ExperimentSpec`] file with actionable
/// runtime diagnostics (missing file vs. malformed JSON vs. invalid
/// spec) rather than a usage dump.
fn read_spec_file(path: &str) -> Result<ExperimentSpec, CliError> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        CliError::Runtime(format!(
            "cannot read spec file {path}: {e} (does the file exist and is it readable?)"
        ))
    })?;
    let spec = ExperimentSpec::from_json(&text)
        .map_err(|e| CliError::Runtime(format!("spec file {path} is not a valid spec: {}", e.0)))?;
    spec.validate()
        .map_err(|e| CliError::Runtime(format!("spec file {path} failed validation: {}", e.0)))?;
    Ok(spec)
}

/// `mcast deadlock …`
pub fn deadlock(a: &Args) -> Result<(), CliError> {
    let scenario = a.require("scenario")?;
    let recover = a.get_or("recover", "false") == "true";
    let (topo, algorithm, multicasts) = match scenario {
        "fig6_1" => {
            let topo = TopoSpec::Hypercube { dim: 3 };
            let mcs = match topo.build() {
                mcast_sim::registry::BuiltTopo::Hypercube(c) => fig_6_1_broadcasts(c),
                _ => unreachable!(),
            };
            (topo, a.get_or("algorithm", "ecube-tree"), mcs)
        }
        "fig6_4" => {
            let topo = TopoSpec::Mesh2D { w: 4, h: 3 };
            (
                topo,
                a.get_or("algorithm", "xfirst-tree"),
                fig_6_4_multicasts(&Mesh2D::new(4, 3)),
            )
        }
        other => return Err(ArgError(format!("unknown scenario {other:?}")).into()),
    };
    let router = make_router(&topo, algorithm)?;
    let built = topo.build();
    let network = Network::new(built.as_dyn(), router.required_classes());
    if recover {
        let supervised = ObliviousRouter::new(router);
        let (outcome, stats, events) = run_closed_scenario_recovering(
            &supervised,
            network,
            SimConfig::default(),
            RecoveryPolicy::default(),
            &multicasts,
        );
        report(
            algorithm,
            outcome.completed,
            outcome.stuck_messages,
            outcome.finished_at,
        );
        println!(
            "recovery: {} aborts, {} retries, {} drops ({} events logged)",
            stats.aborts,
            stats.retries,
            stats.dropped,
            events.len()
        );
    } else {
        let outcome = run_closed_scenario(&router, network, SimConfig::default(), &multicasts);
        report(
            algorithm,
            outcome.completed,
            outcome.stuck_messages,
            outcome.finished_at,
        );
        for s in &outcome.stuck {
            println!(
                "  message {} holds {} channels, awaits {:?}",
                s.message,
                s.holds.len(),
                s.awaits
                    .iter()
                    .map(|c| format!("{}->{}", c.from, c.to))
                    .collect::<Vec<_>>()
            );
        }
    }
    Ok(())
}

fn report(algorithm: &str, completed: bool, stuck: usize, at: u64) {
    if completed {
        println!("{algorithm}: completed at t = {:.1} us", at as f64 / 1000.0);
    } else {
        println!("{algorithm}: DEADLOCKED — {stuck} messages wedged forever");
    }
}

fn parse_rates(s: &str) -> Result<Vec<f64>, ArgError> {
    let rates: Vec<f64> = s
        .split(',')
        .filter(|p| !p.is_empty())
        .map(|p| {
            p.trim()
                .parse()
                .map_err(|_| ArgError(format!("bad fault rate {p:?}")))
        })
        .collect::<Result<_, _>>()?;
    if rates.is_empty() {
        return Err(ArgError("empty --fault-rates".into()));
    }
    if let Some(&bad) = rates.iter().find(|r| !(0.0..=1.0).contains(*r)) {
        return Err(ArgError(format!("fault rate {bad} out of [0, 1]")));
    }
    Ok(rates)
}

fn sweep_record(row: &FaultSweepRow) -> Vec<(&'static str, String)> {
    vec![
        ("algorithm", format!("{:?}", row.algorithm)),
        ("fault_rate", format!("{}", row.fault_rate)),
        ("failed_links", format!("{}", row.failed_links)),
        ("messages", format!("{}", row.messages)),
        ("destinations_total", format!("{}", row.destinations_total)),
        (
            "destinations_delivered",
            format!("{}", row.destinations_delivered),
        ),
        ("delivery_ratio", format!("{:.4}", row.delivery_ratio)),
        (
            "mean_latency_us",
            if row.mean_latency_us.is_finite() {
                format!("{:.2}", row.mean_latency_us)
            } else {
                "null".to_string()
            },
        ),
        ("aborts", format!("{}", row.aborts)),
        ("retries", format!("{}", row.retries)),
        ("drops", format!("{}", row.drops)),
        ("escapes", format!("{}", row.escapes)),
    ]
}

fn print_fault_rows(rows: &[FaultSweepRow], format: &str) -> Result<(), ArgError> {
    match format {
        "table" => {
            println!(
                "{:<24} {:>6} {:>6} {:>11} {:>7} {:>11} {:>7} {:>8} {:>6} {:>8}",
                "algorithm",
                "rate",
                "links",
                "delivered",
                "ratio",
                "latency us",
                "aborts",
                "retries",
                "drops",
                "escapes"
            );
            for r in rows {
                println!(
                    "{:<24} {:>6.2} {:>6} {:>11} {:>7.3} {:>11} {:>7} {:>8} {:>6} {:>8}",
                    r.algorithm,
                    r.fault_rate,
                    r.failed_links,
                    format!("{}/{}", r.destinations_delivered, r.destinations_total),
                    r.delivery_ratio,
                    if r.mean_latency_us.is_finite() {
                        format!("{:.1}", r.mean_latency_us)
                    } else {
                        "n/a".to_string()
                    },
                    r.aborts,
                    r.retries,
                    r.drops,
                    r.escapes,
                );
            }
        }
        "csv" => {
            let fields: Vec<&str> = sweep_record(&rows[0]).iter().map(|(k, _)| *k).collect();
            println!("{}", fields.join(","));
            for r in rows {
                let vals: Vec<String> = sweep_record(r)
                    .into_iter()
                    .map(|(k, v)| {
                        if k == "algorithm" {
                            r.algorithm.to_string()
                        } else {
                            v
                        }
                    })
                    .map(|v| if v == "null" { String::new() } else { v })
                    .collect();
                println!("{}", vals.join(","));
            }
        }
        "json" => {
            println!("[");
            for (i, r) in rows.iter().enumerate() {
                let fields: Vec<String> = sweep_record(r)
                    .into_iter()
                    .map(|(k, v)| format!("\"{k}\": {v}"))
                    .collect();
                let comma = if i + 1 < rows.len() { "," } else { "" };
                println!("  {{{}}}{comma}", fields.join(", "));
            }
            println!("]");
        }
        other => return Err(ArgError(format!("unknown format {other:?}"))),
    }
    Ok(())
}

/// `mcast fault-sweep …`
pub fn fault_sweep(a: &Args) -> Result<(), CliError> {
    let topo = parse_topology(a.require("topology")?)?;
    let format = a.get_or("format", "table");
    if !["table", "csv", "json"].contains(&format) {
        return Err(ArgError(format!("unknown format {format:?}")).into());
    }
    let mut spec = ExperimentSpec::new("fault-sweep", topo);
    spec.schemes = vec![parse_scheme(a.get_or("algorithm", "dual-path"))?];
    spec.loads_us = vec![FaultSweepConfig::default().mean_interarrival_ns / 1000.0];
    spec.destinations = a.number("dests", 4)?;
    spec.seed = a.number("seed", 7)?;
    spec.fault = Some(FaultSpec {
        rates: parse_rates(a.get_or("fault-rates", "0,0.02,0.05,0.1"))?,
        messages: a.number("messages", 64)?,
        keep_connected: a.get_or("keep-connected", "true") == "true",
    });
    let rows = spec
        .run_fault_sweep()
        .map_err(|e| CliError::Runtime(format!("running fault sweep: {}", e.0)))?;
    print_fault_rows(&rows, format)?;
    Ok(())
}

/// Traffic/observability parameters shared by `trace` and `metrics`.
struct TraceRun {
    pattern: String,
    messages: usize,
    destinations: usize,
    mean_interarrival_ns: f64,
    seed: u64,
}

impl TraceRun {
    fn from_args(a: &Args) -> Result<TraceRun, ArgError> {
        let pattern = a.get_or("pattern", "hotspot").to_string();
        if pattern != "hotspot" && pattern != "uniform" {
            return Err(ArgError(format!(
                "unknown pattern {pattern:?} (expected hotspot or uniform)"
            )));
        }
        Ok(TraceRun {
            pattern,
            messages: a.number("messages", 128)?,
            destinations: a.number("dests", 5)?,
            mean_interarrival_ns: a.number::<f64>("interarrival-us", 60.0)? * 1000.0,
            seed: a.number("seed", 7)?,
        })
    }

    /// The resolved traffic pattern for this topology.
    fn traffic_pattern(&self, topo: &TopoSpec) -> TrafficPattern {
        if self.pattern == "hotspot" {
            PatternSpec::Hotspot
        } else {
            PatternSpec::Uniform
        }
        .resolve(topo)
    }
}

/// Injects `run.messages` Poisson-arrival multicasts (per-node
/// generators, as in the §7.2 dynamic experiments) through `router` with
/// the given sink installed, then drains the network. Returns whether
/// the network quiesced and the final simulated time (ns).
fn run_traffic(
    topo: &TopoSpec,
    router: &dyn MulticastRouter,
    run: &TraceRun,
    sink: Box<dyn Sink>,
) -> (bool, u64) {
    let built = topo.build();
    let network = Network::new(built.as_dyn(), router.required_classes());
    let mut engine = Engine::new(network, SimConfig::default());
    engine.set_sink(sink);
    let n = topo.num_nodes();
    let pattern = run.traffic_pattern(topo);
    let k = run.destinations.min(n - 1);
    let mut gen = MulticastGen::new(n, run.seed);
    let mut next_gen: Vec<(u64, usize)> = (0..n)
        .map(|node| (gen.exponential_ns(run.mean_interarrival_ns), node))
        .collect();
    for seq in 0..run.messages {
        let (&(t, node), _) = next_gen
            .iter()
            .zip(0..)
            .min_by_key(|((t, node), _)| (*t, *node))
            .expect("generators exist");
        engine.run_until(t);
        let mc = pattern.apply(seq as u64, gen.multicast_distinct(node, k));
        engine.inject(&router.plan(&mc));
        next_gen[node].0 = t + gen.exponential_ns(run.mean_interarrival_ns);
    }
    let quiesced = engine.run_to_quiescence();
    (quiesced, engine.now())
}

/// Writes an output artifact, creating missing parent directories so
/// `--out results/deep/trace.json` works on a fresh checkout. Failures
/// are runtime errors with the failing path in the message.
fn write_file(path: &str, contents: &str) -> Result<(), CliError> {
    let parent = std::path::Path::new(path).parent();
    if let Some(dir) = parent.filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir).map_err(|e| {
            CliError::Runtime(format!(
                "cannot create output directory {}: {e}",
                dir.display()
            ))
        })?;
    }
    std::fs::write(path, contents).map_err(|e| {
        CliError::Runtime(format!(
            "cannot write {path}: {e} (is the location writable?)"
        ))
    })
}

fn print_latency_summary(snap: &MetricsSnapshot) {
    let h = &snap.latency_ns;
    if h.count() > 0 {
        println!(
            "latency: p50 {:.1} us, p90 {:.1} us, p99 {:.1} us, max {:.1} us ({} messages)",
            h.p50() as f64 / 1000.0,
            h.p90() as f64 / 1000.0,
            h.p99() as f64 / 1000.0,
            h.max() as f64 / 1000.0,
            h.count()
        );
    }
}

/// `mcast trace …` — run a traced scenario and export a Chrome
/// trace-event JSON file (Perfetto-loadable), plus optional metrics /
/// CSV side channels.
pub fn trace(a: &Args) -> Result<(), CliError> {
    let topo = parse_topology(a.get_or("topology", "mesh:16x16"))?;
    let router = make_router(&topo, a.get_or("algorithm", "dual-path"))?;
    let run = TraceRun::from_args(a)?;
    let out = a.get_or("out", "trace.json");

    let recording = Recording::new();
    let metrics = Metrics::new();
    let sink = Tee::new()
        .with(Box::new(recording.clone()))
        .with(Box::new(metrics.clone()));
    let (quiesced, finished_ns) = run_traffic(&topo, router.as_ref(), &run, Box::new(sink));

    let built = topo.build();
    let network = Network::new(built.as_dyn(), router.required_classes());
    let meta = TraceMeta {
        channel_names: channel_names(&topo, &network),
    };
    let events = recording.take();
    let snap = metrics.snapshot();

    let flits = a.get_or("flits", "false") == "true";
    write_file(out, &chrome_trace(&events, &meta, &TraceOptions { flits }))?;
    if let Some(path) = a.options.get("metrics-out") {
        write_file(path, &snap.to_registry().to_json())?;
    }
    if let Some(path) = a.options.get("util-csv") {
        write_file(path, &utilization_csv(&snap, &meta))?;
    }
    if let Some(path) = a.options.get("latency-csv") {
        write_file(path, &latency_csv(&events))?;
    }

    println!(
        "{}: {} events from {} messages ({} pattern) -> {out}",
        router.name(),
        events.len(),
        run.messages,
        run.pattern
    );
    println!(
        "simulated {:.1} us, {} completed, {} flit hops{}",
        finished_ns as f64 / 1000.0,
        snap.completed,
        snap.flits,
        if quiesced { "" } else { " — DID NOT QUIESCE" }
    );
    print_latency_summary(&snap);
    println!("open {out} at ui.perfetto.dev (or chrome://tracing)");
    Ok(())
}

/// Renders per-node peak outgoing-channel utilization as an ASCII
/// heatmap of the mesh (top row = highest y, matching Fig 3.2's layout).
fn mesh_heatmap(m: &Mesh2D, network: &Network, snap: &MetricsSnapshot) -> String {
    const SHADES: &[u8] = b".:-=+*#%@";
    let mut util = vec![0.0f64; m.num_nodes()];
    for id in 0..network.num_channels() {
        let c = network.channel(id);
        let u = snap.utilization(id);
        if u > util[c.from] {
            util[c.from] = u;
        }
    }
    let mut out = String::new();
    for y in (0..m.height()).rev() {
        for x in 0..m.width() {
            let u = util[m.node(x, y)];
            let idx = ((u * SHADES.len() as f64) as usize).min(SHADES.len() - 1);
            out.push(if u == 0.0 { ' ' } else { SHADES[idx] as char });
        }
        out.push('\n');
    }
    out
}

/// `mcast metrics …` — run a scenario under the metrics collector only
/// and print the snapshot: counters, latency percentiles, and (on 2D
/// meshes) a per-node channel-utilization heatmap.
pub fn metrics(a: &Args) -> Result<(), CliError> {
    let topo = parse_topology(a.get_or("topology", "mesh:16x16"))?;
    let router = make_router(&topo, a.get_or("algorithm", "dual-path"))?;
    let run = TraceRun::from_args(a)?;

    let metrics = Metrics::new();
    let (quiesced, finished_ns) =
        run_traffic(&topo, router.as_ref(), &run, Box::new(metrics.clone()));
    let snap = metrics.snapshot();
    let registry = snap.to_registry();

    if let Some(path) = a.options.get("out") {
        write_file(path, &registry.to_json())?;
    }
    if a.get_or("json", "false") == "true" {
        println!("{}", registry.to_json());
        return Ok(());
    }

    println!(
        "{}: {} messages ({} pattern), simulated {:.1} us{}",
        router.name(),
        run.messages,
        run.pattern,
        finished_ns as f64 / 1000.0,
        if quiesced { "" } else { " — DID NOT QUIESCE" }
    );
    println!(
        "injected {}, completed {}, aborted {}, {} destination deliveries, {} flit hops",
        snap.injected, snap.completed, snap.aborted, snap.delivered, snap.flits
    );
    print_latency_summary(&snap);
    let peak = (0..snap.channels.len())
        .map(|i| snap.utilization(i))
        .fold(0.0f64, f64::max);
    println!("peak channel utilization: {:.1}%", peak * 100.0);
    if let TopoSpec::Mesh2D { w, h } = topo {
        let m = Mesh2D::new(w, h);
        let network = Network::new(&m, router.required_classes());
        println!("per-node peak outgoing utilization ({w}x{h} mesh):");
        print!("{}", mesh_heatmap(&m, &network, &snap));
    }
    Ok(())
}

/// `mcast verify …` — differential conformance of the optimized engine
/// against the naive reference simulator (DESIGN.md §12). Without
/// `--spec`, fuzzes `--cases` seeded scenarios across the registry;
/// with it, replays one reproducer spec. Returns an error (non-zero
/// exit) when any case fails, after writing shrunk reproducer specs
/// under `--out`.
pub fn verify(a: &Args) -> Result<(), CliError> {
    let chaos = match a.get_or("chaos", "none") {
        "none" | "false" => false,
        "swap-class" => true,
        other => {
            return Err(ArgError(format!("unknown --chaos {other:?} (expected swap-class)")).into())
        }
    };
    if let Some(path) = a.options.get("spec") {
        let spec = read_spec_file(path)?;
        let scenario = VerifyScenario::from_spec(&spec)
            .map_err(|e| CliError::Runtime(format!("spec file {path}: {}", e.0)))?;
        println!("replaying {scenario}");
        let problems = check_scenario(&scenario, chaos)
            .map_err(|e| CliError::Runtime(format!("replaying {path}: {}", e.0)))?;
        if problems.is_empty() {
            println!("conforms: engines agree, all invariants hold");
            return Ok(());
        }
        for p in &problems {
            println!("  {p}");
        }
        return Err(CliError::Runtime(format!(
            "{} conformance problem(s) in {path}",
            problems.len()
        )));
    }
    let seed = a.number::<u64>("seed", 1)?;
    let cases = a.number::<usize>("cases", if a.flag("quick") { 64 } else { 256 })?;
    let report = run_verify(seed, cases, chaos).map_err(to_arg)?;
    println!(
        "verify: {} cases from seed {}, {} (topology, scheme) pairs covered",
        report.cases, seed, report.pairs_covered
    );
    if report.failures.is_empty() {
        println!("all cases conform: traces bit-identical, invariants hold");
        return Ok(());
    }
    let out_dir = a.get_or("out", ".");
    for f in &report.failures {
        println!("case {} FAILED: {}", f.case, f.scenario);
        for p in &f.problems {
            println!("    {p}");
        }
        println!("  shrunk to {} message(s): {}", f.shrunk.messages, f.shrunk);
        for p in &f.shrunk_problems {
            println!("    {p}");
        }
        let path = format!("{out_dir}/verify-repro-case{}.json", f.case);
        write_file(&path, &f.reproducer_spec().to_json())?;
        println!("  reproducer: {path} (replay with mcast verify --spec)");
    }
    Err(CliError::Runtime(format!(
        "{} of {} cases failed conformance",
        report.failures.len(),
        report.cases
    )))
}

/// `mcast topo …` — inspect a custom topology graph. `validate` checks
/// ingestion and prints the graph summary; `synthesize` constructs the
/// routing function and certifies it deadlock-free against the
/// channel-dependency-graph acyclicity checker; `route` prints the
/// synthesized source→destination paths; `deadlock` reports just the
/// certification verdict. A graph with no certifiable deadlock-free
/// routing is a runtime error (exit 1) naming the offending
/// channel-dependency cycle.
pub fn topo(a: &Args) -> Result<(), CliError> {
    let action = a.action.as_deref().unwrap_or("validate");
    if !["validate", "synthesize", "route", "deadlock"].contains(&action) {
        return Err(ArgError(format!(
            "unknown topo action {action:?} (expected validate, synthesize, route, or deadlock)"
        ))
        .into());
    }
    let raw = a.require("graph")?;
    let src = raw.strip_prefix("custom:").unwrap_or(raw);
    let graph =
        load_custom(src).map_err(|e| CliError::Runtime(format!("custom topology {src:?}: {e}")))?;
    println!("{}", graph.describe());
    println!(
        "duplex: {}, diameter: {}, max-degree node: {}",
        if graph.is_duplex() { "yes" } else { "no" },
        graph.diameter(),
        graph.node_name(graph.max_degree_node()),
    );
    if action == "validate" {
        println!("graph validates: connected, no self-loops or duplicate channels");
        return Ok(());
    }
    let routing = synthesize(&graph)
        .map_err(|e| CliError::Runtime(format!("custom topology {src:?}: {e}")))?;
    let kind = match routing.kind() {
        RoutingKind::UpDown => "up*/down*",
        RoutingKind::ShortestPath => "shortest-path",
    };
    match action {
        "synthesize" | "deadlock" => {
            let cdg = routing.cdg();
            print!("routing: {kind}");
            if let Some(root) = routing.root() {
                print!(", root {}", graph.node_name(root));
            }
            println!();
            println!(
                "certified deadlock-free: {} channel-dependency edge(s) over {} channel(s), acyclic",
                cdg.num_dependencies(),
                cdg.num_channels()
            );
        }
        "route" => {
            let source = parse_nodes(a.require("source")?)?
                .first()
                .copied()
                .ok_or_else(|| ArgError("empty --source".into()))?;
            let dests = parse_nodes(a.require("dests")?)?;
            let n = graph.num_nodes();
            for &node in dests.iter().chain([&source]) {
                if node >= n {
                    return Err(ArgError(format!("node {node} out of range (N={n})")).into());
                }
            }
            println!("routing: {kind}");
            for &d in &dests {
                let path = routing.path(source, d);
                println!(
                    "  {}: {} ({} hops)",
                    graph.node_name(d),
                    path.iter()
                        .map(|&v| graph.node_name(v).to_string())
                        .collect::<Vec<_>>()
                        .join(" -> "),
                    path.len() - 1
                );
            }
        }
        _ => unreachable!("action validated above"),
    }
    Ok(())
}

/// `mcast serve …` — the supervised job-execution service (DESIGN.md
/// §13). Opens (or resumes) the journal at `--journal`, ingests specs
/// from its inbox, and drains them through the worker pool. `--batch`
/// does one ingest-and-drain pass and exits non-zero if the ledger
/// invariant breaks; without it the server polls the inbox forever.
/// `--chaos` runs the built-in fault-injection self-test instead.
pub fn serve(a: &Args) -> Result<(), CliError> {
    let dir = std::path::PathBuf::from(a.require("journal")?);
    if a.flag("chaos") {
        let seed = a.number::<u64>("seed", 0xc4a05)?;
        // The self-test injects worker panics on purpose; the default
        // hook would spray backtraces over the report, so silence it
        // for the duration (the supervision layer catches them all).
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = chaos_self_test(&dir, seed);
        std::panic::set_hook(hook);
        let report =
            result.map_err(|e| CliError::Runtime(format!("chaos self-test FAILED: {e}")))?;
        println!("{report}");
        println!("chaos self-test passed: no jobs lost, ledger balances");
        return Ok(());
    }
    let cfg = ServeConfig {
        workers: match a.number::<usize>("jobs", 0)? {
            0 => resolve_jobs(None),
            n => n,
        },
        engine_jobs: a.number("engine-jobs", 0)?,
        queue_cap: a.number("queue-cap", ServeConfig::default().queue_cap)?,
        deadline_ms: a.number("deadline-ms", 0)?,
        step_budget: a.number("step-budget", 0)?,
        retry: RetryPolicy {
            max_retries: a.number("retries", RetryPolicy::default().max_retries)?,
            ..RetryPolicy::default()
        },
        ..ServeConfig::default()
    };
    let batch = a.flag("batch");
    let poll_ms = a.number::<u64>("poll-ms", 200)?;
    let workers = cfg.workers;
    let server = JobServer::open(&dir, cfg).map_err(|e| CliError::Runtime(e.0))?;
    let replayed = server.ledger();
    println!(
        "serve: journal {} | {} worker(s) | replayed {replayed} | {} job(s) requeued",
        server.journal().path().display(),
        workers,
        server.queued()
    );
    loop {
        let ingested = server.ingest_inbox().map_err(|e| CliError::Runtime(e.0))?;
        if ingested > 0 {
            println!("ingested {ingested} spec(s) from inbox");
        }
        if ingested > 0 || server.queued() > 0 {
            server.run_until_drained();
            println!("LEDGER {}", server.ledger());
        }
        if batch {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(poll_ms));
    }
    let ledger = server.ledger();
    println!("LEDGER {ledger}");
    if let Some(path) = a.options.get("metrics-out") {
        write_file(path, &server.metrics_registry().to_json())?;
    }
    if !ledger.balanced() {
        return Err(CliError::Runtime(format!(
            "ledger invariant violated: {ledger}"
        )));
    }
    Ok(())
}

/// `mcast submit …` — validate a spec file and drop its canonical bytes
/// into the serve inbox (write-then-rename, so a concurrently polling
/// server never reads a torn file). `--force` skips validation and
/// submits the raw bytes, which is how the CI smoke test feeds the
/// server a poisoned spec.
pub fn submit(a: &Args) -> Result<(), CliError> {
    let dir = std::path::PathBuf::from(a.require("journal")?);
    let path = a.require("spec")?;
    let text = if a.flag("force") {
        std::fs::read_to_string(path).map_err(|e| {
            CliError::Runtime(format!(
                "cannot read spec file {path}: {e} (does the file exist and is it readable?)"
            ))
        })?
    } else {
        read_spec_file(path)?.to_json()
    };
    let inbox = inbox_dir(&dir);
    std::fs::create_dir_all(&inbox)
        .map_err(|e| CliError::Runtime(format!("cannot create inbox {}: {e}", inbox.display())))?;
    let name = spec_inbox_filename(&text);
    let target = inbox.join(&name);
    let tmp = inbox.join(format!(".{name}.tmp{}", std::process::id()));
    std::fs::write(&tmp, &text)
        .map_err(|e| CliError::Runtime(format!("cannot write {}: {e}", tmp.display())))?;
    std::fs::rename(&tmp, &target).map_err(|e| {
        CliError::Runtime(format!("cannot move spec into {}: {e}", target.display()))
    })?;
    println!("submitted {path} -> {}", target.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(parts: &[&str]) -> Args {
        Args::parse(&parts.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn spec_file_matches_flag_driven_sweep_row_for_row() {
        // The legacy flag path and the serialized-spec path must agree
        // cell-for-cell on a 4x4 mesh (the spec is the flags, made
        // durable).
        let flag_spec = sweep_spec(&args(&[
            "sweep",
            "--topology",
            "mesh:4x4",
            "--algorithms",
            "dual-path,multi-path",
            "--loads-us",
            "800,500",
            "--dests",
            "4",
            "--replications",
            "2",
        ]))
        .unwrap();
        let from_file = ExperimentSpec::from_json(&flag_spec.to_json()).unwrap();
        let flag_rows = flag_spec.run_sweep(2).unwrap();
        let spec_rows = from_file.run_sweep(1).unwrap();
        assert_eq!(flag_rows.len(), 2 * 2 * 2);
        assert_eq!(flag_rows.len(), spec_rows.len());
        for (a, b) in flag_rows.iter().zip(&spec_rows) {
            assert_eq!(a.point.scheme, b.point.scheme);
            assert_eq!(a.point.mean_interarrival_ns, b.point.mean_interarrival_ns);
            assert_eq!(a.point.replication, b.point.replication);
            assert_eq!(a.point.seed, b.point.seed);
            assert_eq!(a.result.mean_latency_us, b.result.mean_latency_us);
            assert_eq!(a.result.completed, b.result.completed);
        }
    }

    #[test]
    fn route_command_end_to_end() {
        for alg in [
            "dual-path",
            "multi-path",
            "fixed-path",
            "dc-tree",
            "xfirst-tree",
            "divided-greedy",
            "sorted-mp",
            "greedy-st",
        ] {
            route(&args(&[
                "route",
                "--topology",
                "mesh:6x6",
                "--algorithm",
                alg,
                "--source",
                "15",
                "--dests",
                "0,5,30,35",
            ]))
            .unwrap_or_else(|e| panic!("{alg}: {e}"));
        }
    }

    #[test]
    fn route_on_cube_with_binary_addresses() {
        for alg in ["dual-path", "multi-path", "sorted-mp", "greedy-st"] {
            route(&args(&[
                "route",
                "--topology",
                "cube:4",
                "--algorithm",
                alg,
                "--source",
                "0b1100",
                "--dests",
                "0b0100,0b1111,0b0011",
            ]))
            .unwrap_or_else(|e| panic!("{alg}: {e}"));
        }
    }

    #[test]
    fn route_on_mesh3d_and_torus() {
        for (topo, alg) in [
            ("mesh:3x3x3", "dual-path"),
            ("mesh:3x3x3", "multi-path"),
            ("mesh:3x3x3", "greedy-st"),
            ("torus:4x2", "dual-path"),
            ("kary:3x2", "fixed-path"),
        ] {
            route(&args(&[
                "route",
                "--topology",
                topo,
                "--algorithm",
                alg,
                "--source",
                "0",
                "--dests",
                "1,5,7",
            ]))
            .unwrap_or_else(|e| panic!("{topo}/{alg}: {e}"));
        }
    }

    #[test]
    fn deadlock_scenarios() {
        deadlock(&args(&["deadlock", "--scenario", "fig6_1"])).unwrap();
        deadlock(&args(&["deadlock", "--scenario", "fig6_4"])).unwrap();
        deadlock(&args(&[
            "deadlock",
            "--scenario",
            "fig6_4",
            "--algorithm",
            "dual-path",
        ]))
        .unwrap();
        assert!(deadlock(&args(&["deadlock", "--scenario", "nope"])).is_err());
    }

    #[test]
    fn deadlock_scenarios_recover() {
        // The §6.1/§6.4 deadlocks complete under the recovery engine.
        deadlock(&args(&[
            "deadlock",
            "--scenario",
            "fig6_1",
            "--recover",
            "true",
        ]))
        .unwrap();
        deadlock(&args(&[
            "deadlock",
            "--scenario",
            "fig6_4",
            "--recover",
            "true",
        ]))
        .unwrap();
    }

    #[test]
    fn fault_sweep_all_formats_and_routers() {
        for format in ["table", "csv", "json"] {
            fault_sweep(&args(&[
                "fault-sweep",
                "--topology",
                "mesh:4x4",
                "--algorithm",
                "dual-path",
                "--fault-rates",
                "0,0.05,0.1,0.2",
                "--messages",
                "12",
                "--format",
                format,
            ]))
            .unwrap_or_else(|e| panic!("{format}: {e}"));
        }
        // Fault-aware multi-path on a cube, and an oblivious tree.
        fault_sweep(&args(&[
            "fault-sweep",
            "--topology",
            "cube:3",
            "--algorithm",
            "multi-path",
            "--messages",
            "8",
        ]))
        .unwrap();
        fault_sweep(&args(&[
            "fault-sweep",
            "--topology",
            "mesh:4x4",
            "--algorithm",
            "xfirst-tree",
            "--messages",
            "8",
        ]))
        .unwrap();
        assert!(fault_sweep(&args(&[
            "fault-sweep",
            "--topology",
            "mesh:4x4",
            "--fault-rates",
            "0,2.0"
        ]))
        .is_err());
        assert!(fault_sweep(&args(&[
            "fault-sweep",
            "--topology",
            "mesh:4x4",
            "--format",
            "yaml"
        ]))
        .is_err());
    }

    #[test]
    fn fault_sweep_on_mesh3d_and_torus() {
        for topo in ["mesh:3x3x2", "torus:3x2"] {
            fault_sweep(&args(&[
                "fault-sweep",
                "--topology",
                topo,
                "--algorithm",
                "multi-path",
                "--fault-rates",
                "0,0.1",
                "--messages",
                "8",
                "--dests",
                "3",
            ]))
            .unwrap_or_else(|e| panic!("{topo}: {e}"));
        }
    }

    #[test]
    fn trace_command_emits_valid_chrome_trace() {
        let dir = std::env::temp_dir();
        let out = dir.join("mcast_cli_test_trace.json");
        let mout = dir.join("mcast_cli_test_metrics.json");
        let ucsv = dir.join("mcast_cli_test_util.csv");
        trace(&args(&[
            "trace",
            "--topology",
            "mesh:6x6",
            "--messages",
            "40",
            "--dests",
            "4",
            "--interarrival-us",
            "40",
            "--out",
            out.to_str().unwrap(),
            "--metrics-out",
            mout.to_str().unwrap(),
            "--util-csv",
            ucsv.to_str().unwrap(),
            "--flits",
            "true",
        ]))
        .unwrap();
        let s = std::fs::read_to_string(&out).unwrap();
        mcast_obs::validate_json(&s).unwrap_or_else(|e| panic!("trace JSON invalid: {e}"));
        assert!(s.contains("traceEvents"));
        let m = std::fs::read_to_string(&mout).unwrap();
        mcast_obs::validate_json(&m).unwrap_or_else(|e| panic!("metrics JSON invalid: {e}"));
        assert!(m.contains("latency.ns"));
        assert!(std::fs::read_to_string(&ucsv)
            .unwrap()
            .starts_with("channel,"));
        for p in [&out, &mout, &ucsv] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn trace_command_works_on_every_topology_kind() {
        let dir = std::env::temp_dir();
        for (i, topo) in ["mesh:3x3x2", "cube:3", "torus:3x2"].iter().enumerate() {
            let out = dir.join(format!("mcast_cli_test_trace_topo{i}.json"));
            trace(&args(&[
                "trace",
                "--topology",
                topo,
                "--messages",
                "16",
                "--dests",
                "3",
                "--interarrival-us",
                "40",
                "--out",
                out.to_str().unwrap(),
            ]))
            .unwrap_or_else(|e| panic!("{topo}: {e}"));
            let s = std::fs::read_to_string(&out).unwrap();
            mcast_obs::validate_json(&s).unwrap_or_else(|e| panic!("{topo} trace invalid: {e}"));
            let _ = std::fs::remove_file(&out);
        }
    }

    #[test]
    fn sweep_command_runs_and_verifies_serial_parity() {
        // Tiny grid; --compare-serial true errors out if the parallel
        // rows diverge from the serial reference, so .unwrap() is the
        // determinism assertion.
        sweep(&args(&[
            "sweep",
            "--topology",
            "mesh:4x4",
            "--algorithms",
            "dual-path,multi-path",
            "--loads-us",
            "800,500",
            "--replications",
            "2",
            "--dests",
            "4",
            "--jobs",
            "3",
            "--compare-serial",
            "true",
        ]))
        .unwrap();
        assert!(sweep(&args(&["sweep", "--algorithms", ""])).is_err());
        assert!(sweep(&args(&["sweep", "--loads-us", "abc"])).is_err());
    }

    #[test]
    fn run_command_executes_spec_files() {
        let dir = std::env::temp_dir();
        let path = dir.join("mcast_cli_test_spec.json");
        std::fs::write(
            &path,
            r#"{"name": "cli-test", "topology": "mesh:4x4",
                "schemes": ["dual-path", "vc-multi-path:2"],
                "loads_us": [800], "destinations": 4, "replications": 1,
                "stopping": {"warmup": 20, "batch_size": 10,
                             "min_batches": 2, "max_batches": 3},
                "fault": {"rates": [0, 0.1], "messages": 8}}"#,
        )
        .unwrap();
        let p = path.to_str().unwrap();
        run(&args(&["run", "--spec", p, "--dry-run", "true"])).unwrap();
        run(&args(&["run", "--spec", p, "--jobs", "2"])).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(run(&args(&["run", "--spec", "/nonexistent.json"])).is_err());
    }

    #[test]
    fn run_command_streams_with_message_bound() {
        // --stream / --messages turn the spec's points into
        // bounded-memory streaming runs; a spec with its own stream
        // section needs no flags at all.
        let dir = std::env::temp_dir();
        let path = dir.join("mcast_cli_test_stream_spec.json");
        std::fs::write(
            &path,
            r#"{"name": "cli-stream", "topology": "mesh:4x4",
                "schemes": ["dual-path"], "loads_us": [500],
                "destinations": 4, "replications": 1,
                "stopping": {"warmup": 20, "batch_size": 10,
                             "min_batches": 2, "max_batches": 3}}"#,
        )
        .unwrap();
        let p = path.to_str().unwrap();
        run(&args(&["run", "--spec", p, "--stream", "true"])).unwrap();
        run(&args(&["run", "--spec", p, "--messages", "300"])).unwrap();
        run(&args(&[
            "run",
            "--spec",
            p,
            "--stream",
            "true",
            "--messages",
            "300",
            "--engine-jobs",
            "2",
        ]))
        .unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn run_command_duration_bound_streams_and_rejects_zero() {
        // --duration-ms turns on streaming with a simulated-wall-time
        // bound; zero is a usage error (a zero-length run is always a
        // mistake), matching spec validation of stream.duration_ns.
        let dir = std::env::temp_dir();
        let path = dir.join("mcast_cli_test_duration_spec.json");
        std::fs::write(
            &path,
            r#"{"name": "cli-duration", "topology": "mesh:4x4",
                "schemes": ["dual-path"], "loads_us": [500],
                "destinations": 4, "replications": 1,
                "stopping": {"warmup": 20, "batch_size": 10,
                             "min_batches": 2, "max_batches": 3}}"#,
        )
        .unwrap();
        let p = path.to_str().unwrap();
        run(&args(&["run", "--spec", p, "--duration-ms", "5"])).unwrap();
        run(&args(&[
            "run",
            "--spec",
            p,
            "--duration-ms",
            "5",
            "--messages",
            "300",
        ]))
        .unwrap();
        let zero = run(&args(&["run", "--spec", p, "--duration-ms", "0"])).unwrap_err();
        assert!(
            matches!(zero, CliError::Usage(ref m) if m.contains("duration-ms")),
            "{zero:?}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn engine_jobs_flag_accepts_oversubscription() {
        // More lanes than cores stays valid (results are lane-count
        // independent); the flag parses and only warns on stderr.
        let a = args(&["sweep", "--engine-jobs", "4096"]);
        assert_eq!(engine_jobs_flag(&a).unwrap(), 4096);
        assert!(host_cpus().is_none_or(|n| n >= 1));
    }

    #[test]
    fn file_errors_are_runtime_not_usage() {
        // A missing or malformed spec file is the work failing, not the
        // invocation: it must exit 1 without re-printing the usage
        // block. A missing flag stays a usage error.
        let missing = run(&args(&["run", "--spec", "/nonexistent.json"])).unwrap_err();
        assert!(matches!(missing, CliError::Runtime(ref m) if m.contains("/nonexistent.json")));
        let dir = std::env::temp_dir();
        let bad = dir.join("mcast_cli_test_bad_spec.json");
        std::fs::write(&bad, "{\"name\": ").unwrap();
        let malformed = run(&args(&["run", "--spec", bad.to_str().unwrap()])).unwrap_err();
        assert!(matches!(malformed, CliError::Runtime(ref m) if m.contains("not a valid spec")));
        let _ = std::fs::remove_file(&bad);
        let no_flag = run(&args(&["run"])).unwrap_err();
        assert!(matches!(no_flag, CliError::Usage(_)));
    }

    #[test]
    fn write_file_creates_parent_directories() {
        let dir = std::env::temp_dir()
            .join(format!("mcast-cli-outdirs-{}", std::process::id()))
            .join("deep/nested");
        let path = dir.join("artifact.json");
        write_file(path.to_str().unwrap(), "{}\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{}\n");
        let _ = std::fs::remove_dir_all(dir.parent().unwrap().parent().unwrap());
    }

    #[test]
    fn submit_then_serve_batch_round_trip() {
        let dir = std::env::temp_dir().join(format!("mcast-cli-serve-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let spec_path = dir.join("spec.json");
        std::fs::write(
            &spec_path,
            r#"{"name": "cli-serve", "topology": "mesh:4x4",
                "schemes": ["dual-path"], "loads_us": [800],
                "destinations": 3, "replications": 1,
                "stopping": {"warmup": 10, "batch_size": 10,
                             "min_batches": 2, "max_batches": 3}}"#,
        )
        .unwrap();
        let journal = dir.join("journal");
        let j = journal.to_str().unwrap();
        submit(&args(&[
            "submit",
            "--journal",
            j,
            "--spec",
            spec_path.to_str().unwrap(),
        ]))
        .unwrap();
        serve(&args(&["serve", "--journal", j, "--batch", "--jobs", "2"])).unwrap();
        // A custom-graph spec flows through the same submit/serve path.
        let custom_spec = dir.join("custom.json");
        std::fs::write(
            &custom_spec,
            r#"{"name": "serve-custom", "topology": "custom:rand:8x2",
                "schemes": ["updown-mc"], "loads_us": [400],
                "destinations": 3, "replications": 1,
                "stopping": {"warmup": 10, "batch_size": 10,
                             "min_batches": 2, "max_batches": 3}}"#,
        )
        .unwrap();
        submit(&args(&[
            "submit",
            "--journal",
            j,
            "--spec",
            custom_spec.to_str().unwrap(),
        ]))
        .unwrap();
        // Restarting the server replays the journal: the first job must
        // be completed already, the custom job drains, and the ledger
        // stays balanced.
        serve(&args(&["serve", "--journal", j, "--batch"])).unwrap();
        // Submitting a spec to a path we cannot create is a runtime
        // error with the failing path in the message.
        let err = submit(&args(&[
            "submit",
            "--journal",
            "/proc/definitely-unwritable",
            "--spec",
            spec_path.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::Runtime(_)), "{err:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_command_runs_on_mesh_and_cube() {
        metrics(&args(&[
            "metrics",
            "--topology",
            "mesh:6x6",
            "--messages",
            "30",
            "--pattern",
            "hotspot",
        ]))
        .unwrap();
        metrics(&args(&[
            "metrics",
            "--topology",
            "cube:4",
            "--messages",
            "20",
            "--pattern",
            "uniform",
            "--json",
            "true",
        ]))
        .unwrap();
        assert!(metrics(&args(&["metrics", "--pattern", "nope"])).is_err());
    }

    #[test]
    fn sweep_jobs_and_engine_jobs_compose_bit_identically() {
        // Satellite of DESIGN.md §15: two sweep threads, each running
        // its simulations on two engine lanes, against the fully serial
        // reference (1 job, 1 lane). sweep() exits non-zero on any
        // divergence, so a clean return IS the parity assertion.
        sweep(&args(&[
            "sweep",
            "--topology",
            "mesh:4x4",
            "--algorithms",
            "dual-path,multi-path",
            "--loads-us",
            "800,500",
            "--dests",
            "4",
            "--replications",
            "2",
            "--jobs",
            "2",
            "--engine-jobs",
            "2",
            "--compare-serial",
            "true",
        ]))
        .unwrap();
    }

    #[test]
    fn verify_quick_profile_passes_cleanly() {
        // The acceptance sweep: 64 cases from seed 1 must conform with
        // zero mismatches across every registry (topology, scheme) pair.
        verify(&args(&["verify", "--seed", "1", "--cases", "64"])).unwrap();
        assert!(verify(&args(&["verify", "--chaos", "nope"])).is_err());
    }

    #[test]
    fn verify_replays_specs_and_catches_the_chaos_bug() {
        let dir = std::env::temp_dir();
        let path = dir.join("mcast_cli_test_verify_spec.json");
        // A dc-tree scenario pins Fixed channel classes, so the
        // test-only swapped-class bug must break conformance — and the
        // same spec must pass with the bug off.
        let scenario = VerifyScenario {
            topology: parse_topology("mesh:4x4").unwrap(),
            scheme: parse_scheme("dc-tree").unwrap(),
            pattern: PatternSpec::Uniform,
            load_us: 10.0,
            destinations: 4,
            messages: 4,
            seed: 3,
            fault_rate: 0.0,
            engine_jobs: 2,
            stream: true,
        };
        std::fs::write(&path, scenario.to_spec().to_json()).unwrap();
        let p = path.to_str().unwrap();
        verify(&args(&["verify", "--spec", p])).unwrap();
        assert!(verify(&args(&["verify", "--spec", p, "--chaos", "swap-class"])).is_err());
        let _ = std::fs::remove_file(&path);
        assert!(verify(&args(&["verify", "--spec", "/nonexistent.json"])).is_err());
    }

    #[test]
    fn topo_command_actions_end_to_end() {
        // The checked-in example graphs must validate, synthesize a
        // certified routing, and answer route/deadlock queries.
        let json = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../examples/graph_dragonfly_small.json"
        );
        let dot = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../examples/graph_lesioned_mesh.dot"
        );
        for graph in [json, dot] {
            topo(&args(&["topo", "--graph", graph])).unwrap();
            topo(&args(&["topo", "synthesize", "--graph", graph])).unwrap();
            topo(&args(&["topo", "deadlock", "--graph", graph])).unwrap();
            topo(&args(&[
                "topo", "route", "--graph", graph, "--source", "0", "--dests", "1,5,7",
            ]))
            .unwrap();
        }
        // Generator forms resolve with or without the custom: prefix.
        topo(&args(&[
            "topo",
            "synthesize",
            "--graph",
            "custom:lmesh:4x3x1",
        ]))
        .unwrap();
        topo(&args(&["topo", "deadlock", "--graph", "ftree:2x9"])).unwrap();
        // A bad action or an out-of-range node is a usage error.
        assert!(matches!(
            topo(&args(&["topo", "frobnicate", "--graph", dot])).unwrap_err(),
            CliError::Usage(_)
        ));
        assert!(matches!(
            topo(&args(&[
                "topo", "route", "--graph", dot, "--source", "99", "--dests", "1",
            ]))
            .unwrap_err(),
            CliError::Usage(_)
        ));
    }

    #[test]
    fn graph_file_errors_are_runtime_not_usage() {
        // A missing or malformed graph file is the work failing — exit
        // 1 with the path and reason, never a usage dump (exit 2) and
        // never a panic.
        let missing =
            topo(&args(&["topo", "validate", "--graph", "/nonexistent.dot"])).unwrap_err();
        assert!(matches!(missing, CliError::Runtime(ref m) if m.contains("/nonexistent.dot")));
        let dir = std::env::temp_dir();
        let bad = dir.join("mcast_cli_test_bad_graph.json");
        std::fs::write(&bad, "{\"nodes\": ").unwrap();
        let malformed = topo(&args(&[
            "topo",
            "validate",
            "--graph",
            bad.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(matches!(malformed, CliError::Runtime(ref m) if m.contains("bad_graph")));
        let _ = std::fs::remove_file(&bad);
        // The same discipline holds when the graph arrives through
        // --topology custom:<file> on an ordinary routing command…
        let route_err = route(&args(&[
            "route",
            "--topology",
            "custom:/nonexistent.json",
            "--algorithm",
            "updown-mc",
            "--source",
            "0",
            "--dests",
            "1",
        ]))
        .unwrap_err();
        assert!(matches!(route_err, CliError::Runtime(ref m) if m.contains("/nonexistent.json")));
        // …while a malformed generator form stays a usage error.
        assert!(matches!(
            parse_topology("custom:rand:banana").unwrap_err(),
            CliError::Usage(_)
        ));
        // A graph with no certifiable deadlock-free routing is a
        // runtime error naming the offending cycle.
        let ring = dir.join("mcast_cli_test_uniring.json");
        std::fs::write(
            &ring,
            r#"{"nodes": 4, "duplex": false, "edges": [[0,1],[1,2],[2,3],[3,0]]}"#,
        )
        .unwrap();
        let cyclic = topo(&args(&[
            "topo",
            "deadlock",
            "--graph",
            ring.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(
            matches!(cyclic, CliError::Runtime(ref m) if m.contains("channel-dependency cycle")),
            "{cyclic:?}"
        );
        let _ = std::fs::remove_file(&ring);
    }

    #[test]
    fn route_and_run_on_custom_graphs() {
        // The up*/down* schemes and the generic greedy-st heuristic
        // route on generator-form custom graphs…
        for alg in ["updown-mc", "updown-tree", "greedy-st"] {
            route(&args(&[
                "route",
                "--topology",
                "custom:rand:10x3",
                "--algorithm",
                alg,
                "--source",
                "0",
                "--dests",
                "1,5,7",
            ]))
            .unwrap_or_else(|e| panic!("{alg}: {e}"));
        }
        // …the checked-in custom-graph spec dry-runs (validates and
        // resolves every router)…
        let spec = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../examples/spec_custom_graph.json"
        );
        run(&args(&["run", "--spec", spec, "--dry-run", "true"])).unwrap();
        // …and a small custom-graph spec executes end-to-end.
        let dir = std::env::temp_dir();
        let path = dir.join("mcast_cli_test_custom_spec.json");
        std::fs::write(
            &path,
            r#"{"name": "cli-custom", "topology": "custom:rand:8x5",
                "schemes": ["updown-mc", "updown-tree"],
                "loads_us": [400], "destinations": 3, "replications": 1,
                "stopping": {"warmup": 10, "batch_size": 10,
                             "min_batches": 2, "max_batches": 3}}"#,
        )
        .unwrap();
        run(&args(&[
            "run",
            "--spec",
            path.to_str().unwrap(),
            "--jobs",
            "2",
        ]))
        .unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bad_inputs_rejected() {
        assert!(route(&args(&[
            "route",
            "--topology",
            "mesh:6x6",
            "--source",
            "99",
            "--dests",
            "1"
        ]))
        .is_err());
        assert!(parse_topology("ring:5").is_err());
        assert!(parse_topology("mesh:4x0").is_err());
        assert!(make_router(&TopoSpec::Mesh2D { w: 4, h: 4 }, "ecube-tree").is_err());
        assert!(make_router(&TopoSpec::Mesh2D { w: 4, h: 4 }, "dual-path:3").is_err());
    }
}
