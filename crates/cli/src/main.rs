//! `mcast` — route multicasts, run flit-level wormhole simulations, and
//! replay the dissertation's deadlock scenarios from the command line.
//!
//! ```text
//! mcast route    --topology mesh:6x6 --algorithm dual-path --source 15 --dests 0,5,30,35
//! mcast route    --topology cube:4  --algorithm multi-path --source 0b1100 --dests 0b0100,0b1111
//! mcast simulate --topology mesh:8x8 --algorithm multi-path --interarrival-us 400 --dests 10
//! mcast run      --spec examples/spec_fig7_5.json
//! mcast deadlock --scenario fig6_4 --algorithm xfirst-tree
//! mcast help
//! ```

mod args;
mod commands;

use args::Args;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match Args::parse(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::USAGE);
            std::process::exit(2);
        }
    };
    let result = match parsed.command.as_str() {
        "route" => commands::route(&parsed),
        "simulate" => commands::simulate(&parsed),
        "sweep" => commands::sweep(&parsed),
        "run" => commands::run(&parsed),
        "deadlock" => commands::deadlock(&parsed),
        "fault-sweep" => commands::fault_sweep(&parsed),
        "trace" => commands::trace(&parsed),
        "metrics" => commands::metrics(&parsed),
        "verify" => commands::verify(&parsed),
        "topo" => commands::topo(&parsed),
        "serve" => commands::serve(&parsed),
        "submit" => commands::submit(&parsed),
        "help" | "--help" | "-h" => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        other => Err(args::CliError::Usage(format!(
            "unknown subcommand {other:?}"
        ))),
    };
    // Usage errors re-print the help block and exit 2; runtime errors
    // (missing spec file, failed run, broken invariant) print only the
    // actionable message and exit 1.
    match result {
        Ok(()) => {}
        Err(args::CliError::Usage(msg)) => {
            eprintln!("error: {msg}");
            eprintln!("{}", commands::USAGE);
            std::process::exit(2);
        }
        Err(args::CliError::Runtime(msg)) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    }
}
