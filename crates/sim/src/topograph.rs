//! Custom-topology ingestion and routing for the simulator (DESIGN.md
//! §14): parses user-supplied graphs from JSON and a pragmatic DOT
//! subset into validated [`CustomGraph`]s, resolves the `custom:*` spec
//! source forms (files and seeded generators), and adapts the certified
//! up*/down* routing synthesizer into [`MulticastRouter`]s.
//!
//! ## JSON graph format
//!
//! ```json
//! {
//!   "name": "my-net",
//!   "nodes": ["a", "b", "c"],
//!   "duplex": true,
//!   "edges": [["a", "b"], ["b", "c", 2], [0, 2]]
//! }
//! ```
//!
//! `nodes` is either a list of names or a count (anonymous `n0..nK`);
//! edge entries are `[from, to]` or `[from, to, latency]` with
//! endpoints by name or index; `duplex: true` (the default) expands
//! each entry into both directions.
//!
//! ## DOT subset
//!
//! `graph name { a -- b [latency=2]; b -- c; }` — `graph`/`digraph`
//! headers, edge statements with `--` (duplex pair) or `->` (one
//! directed channel), an optional `[latency=N]` attribute, bare node
//! statements, and `//`/`#` comments. Everything else is rejected with
//! a typed parse error.

use std::sync::Arc;

use mcast_core::model::{MulticastSet, PathRoute, TreeRoute};
use mcast_obs::json::Json;
use mcast_topology::topograph::generators;
use mcast_topology::topograph::synth::{synthesize, CertifiedRouting};
use mcast_topology::{CustomGraph, NodeId, TopographError};

use crate::plan::{ClassChoice, DeliveryPlan};
use crate::routers::MulticastRouter;

/// A typed ingestion failure: every malformed input is one of these —
/// the parsers never panic on user data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestError {
    /// The text is not a graph in the supported JSON/DOT subset.
    Parse {
        /// What was wrong, with enough context to fix the input.
        reason: String,
    },
    /// The text parsed but the graph failed validation (or routing
    /// synthesis failed certification).
    Graph(TopographError),
    /// The graph file could not be read.
    Io {
        /// The path that failed.
        path: String,
        /// The OS error.
        reason: String,
    },
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Parse { reason } => write!(f, "{reason}"),
            IngestError::Graph(e) => write!(f, "{e}"),
            IngestError::Io { path, reason } => write!(f, "cannot read {path}: {reason}"),
        }
    }
}

impl std::error::Error for IngestError {}

impl From<TopographError> for IngestError {
    fn from(e: TopographError) -> Self {
        IngestError::Graph(e)
    }
}

fn parse_err(reason: impl Into<String>) -> IngestError {
    IngestError::Parse {
        reason: reason.into(),
    }
}

/// Resolves a node reference (name or index) against the node table.
fn resolve_node(v: &Json, names: &[String]) -> Result<NodeId, IngestError> {
    if let Some(s) = v.as_str() {
        return names
            .iter()
            .position(|n| n == s)
            .ok_or_else(|| parse_err(format!("unknown node name {s:?} in edges")));
    }
    if let Some(x) = v.as_num() {
        if x.fract() == 0.0 && x >= 0.0 && x < names.len() as f64 {
            return Ok(x as NodeId);
        }
        return Err(parse_err(format!(
            "node index {x} out of range (graph has {} nodes)",
            names.len()
        )));
    }
    Err(parse_err("edge endpoints must be node names or indices"))
}

/// Parses a graph from the JSON format described in the module docs.
pub fn parse_graph_json(text: &str) -> Result<CustomGraph, IngestError> {
    let doc = Json::parse(text).map_err(|e| parse_err(format!("invalid JSON: {e}")))?;
    if !matches!(doc, Json::Obj(_)) {
        return Err(parse_err("top-level JSON value must be an object"));
    }
    for key in doc.keys() {
        if !["name", "nodes", "duplex", "edges"].contains(&key) {
            return Err(parse_err(format!(
                "unknown key {key:?} (expected name, nodes, duplex, edges)"
            )));
        }
    }
    let name = match doc.get("name") {
        Some(v) => v
            .as_str()
            .ok_or_else(|| parse_err("\"name\" must be a string"))?
            .to_string(),
        None => "custom".to_string(),
    };
    let nodes = doc
        .get("nodes")
        .ok_or_else(|| parse_err("missing \"nodes\""))?;
    let node_names: Vec<String> = if let Some(items) = nodes.as_arr() {
        let names: Vec<String> = items
            .iter()
            .map(|v| {
                v.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| parse_err("\"nodes\" entries must be strings"))
            })
            .collect::<Result<_, _>>()?;
        for (i, n) in names.iter().enumerate() {
            if names[..i].contains(n) {
                return Err(parse_err(format!("duplicate node name {n:?}")));
            }
        }
        names
    } else if let Some(x) = nodes.as_num() {
        if x.fract() != 0.0 || !(0.0..=100_000.0).contains(&x) {
            return Err(parse_err(format!("bad node count {x}")));
        }
        CustomGraph::anon_names(x as usize)
    } else {
        return Err(parse_err("\"nodes\" must be a name list or a count"));
    };
    let duplex = match doc.get("duplex") {
        Some(v) => v
            .as_bool()
            .ok_or_else(|| parse_err("\"duplex\" must be a boolean"))?,
        None => true,
    };
    let entries = doc
        .get("edges")
        .and_then(|e| e.as_arr())
        .ok_or_else(|| parse_err("missing \"edges\" array"))?;
    let mut edges = Vec::new();
    for entry in entries {
        let parts = entry
            .as_arr()
            .ok_or_else(|| parse_err("each edge must be [from, to] or [from, to, latency]"))?;
        if parts.len() < 2 || parts.len() > 3 {
            return Err(parse_err(format!(
                "each edge must be [from, to] or [from, to, latency], got {} fields",
                parts.len()
            )));
        }
        let from = resolve_node(&parts[0], &node_names)?;
        let to = resolve_node(&parts[1], &node_names)?;
        let latency = match parts.get(2) {
            None => 1,
            Some(v) => {
                let x = v
                    .as_num()
                    .ok_or_else(|| parse_err("edge latency must be a number"))?;
                if x.fract() != 0.0 || !(0.0..=1e12).contains(&x) {
                    return Err(parse_err(format!("bad edge latency {x}")));
                }
                x as u64
            }
        };
        edges.push((from, to, latency));
        if duplex {
            edges.push((to, from, latency));
        }
    }
    Ok(CustomGraph::build(name, node_names, &edges)?)
}

/// Tokenizer for the DOT subset: identifiers, `{ } ; , = [ ]`, and the
/// edge operators `--` / `->`. Comments (`//`, `#`) run to end of line.
fn dot_tokens(text: &str) -> Result<Vec<String>, IngestError> {
    let mut tokens = Vec::new();
    let mut chars = text.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if c == '#' {
            for c in chars.by_ref() {
                if c == '\n' {
                    break;
                }
            }
        } else if c == '/' {
            chars.next();
            if chars.peek() == Some(&'/') {
                for c in chars.by_ref() {
                    if c == '\n' {
                        break;
                    }
                }
            } else {
                return Err(parse_err("stray '/' (only // comments are supported)"));
            }
        } else if c == '-' {
            chars.next();
            match chars.next() {
                Some('-') => tokens.push("--".to_string()),
                Some('>') => tokens.push("->".to_string()),
                other => {
                    return Err(parse_err(format!(
                        "expected -- or -> after '-', got {other:?}"
                    )))
                }
            }
        } else if "{};,=[]".contains(c) {
            chars.next();
            tokens.push(c.to_string());
        } else if c.is_alphanumeric() || c == '_' || c == '.' {
            let mut ident = String::new();
            while let Some(&c) = chars.peek() {
                if c.is_alphanumeric() || c == '_' || c == '.' {
                    ident.push(c);
                    chars.next();
                } else {
                    break;
                }
            }
            tokens.push(ident);
        } else {
            return Err(parse_err(format!("unexpected character {c:?}")));
        }
    }
    Ok(tokens)
}

/// Parses a graph from the pragmatic DOT subset described in the
/// module docs.
pub fn parse_graph_dot(text: &str) -> Result<CustomGraph, IngestError> {
    let tokens = dot_tokens(text)?;
    let mut it = tokens.iter().peekable();
    let header = it
        .next()
        .ok_or_else(|| parse_err("empty input (expected graph/digraph)"))?;
    if header != "graph" && header != "digraph" {
        return Err(parse_err(format!(
            "expected graph or digraph, got {header:?}"
        )));
    }
    let mut name = "dot".to_string();
    match it.next() {
        Some(t) if t == "{" => {}
        Some(t) => {
            name = t.clone();
            if it.next().map(String::as_str) != Some("{") {
                return Err(parse_err("expected '{' after the graph name"));
            }
        }
        None => return Err(parse_err("truncated input: expected '{'")),
    }
    let mut node_names: Vec<String> = Vec::new();
    let mut edges: Vec<(NodeId, NodeId, u64)> = Vec::new();
    let node_id = |names: &mut Vec<String>, ident: &str| -> NodeId {
        match names.iter().position(|n| n == ident) {
            Some(i) => i,
            None => {
                names.push(ident.to_string());
                names.len() - 1
            }
        }
    };
    let mut closed = false;
    while let Some(tok) = it.next() {
        if tok == "}" {
            closed = true;
            break;
        }
        if tok == ";" {
            continue;
        }
        if ["{", "=", "[", "]", ",", "--", "->"].contains(&tok.as_str()) {
            return Err(parse_err(format!(
                "unexpected {tok:?} (expected a node id)"
            )));
        }
        // A statement: node id, then an optional chain of edges.
        let mut prev = node_id(&mut node_names, tok);
        let mut chain: Vec<(NodeId, NodeId, bool)> = Vec::new();
        while matches!(it.peek().map(|t| t.as_str()), Some("--") | Some("->")) {
            let op = it.next().expect("peeked");
            let target = it
                .next()
                .ok_or_else(|| parse_err("truncated edge: missing target node"))?;
            if ["{", "}", ";", "=", "[", "]", ",", "--", "->"].contains(&target.as_str()) {
                return Err(parse_err(format!(
                    "expected a node id after {op:?}, got {target:?}"
                )));
            }
            let t = node_id(&mut node_names, target);
            chain.push((prev, t, op == "--"));
            prev = t;
        }
        // Optional attribute list, applying to the whole chain.
        let mut latency = 1;
        if it.peek().map(|t| t.as_str()) == Some("[") {
            if chain.is_empty() {
                return Err(parse_err("node attributes are not supported"));
            }
            it.next();
            loop {
                let key = it
                    .next()
                    .ok_or_else(|| parse_err("truncated attribute list"))?;
                if key == "]" {
                    break;
                }
                if key == "," {
                    continue;
                }
                if it.next().map(String::as_str) != Some("=") {
                    return Err(parse_err(format!("expected = after attribute {key:?}")));
                }
                let value = it
                    .next()
                    .ok_or_else(|| parse_err("truncated attribute value"))?;
                if key == "latency" {
                    latency = value
                        .parse::<u64>()
                        .map_err(|_| parse_err(format!("bad latency {value:?}")))?;
                } else {
                    return Err(parse_err(format!(
                        "unsupported edge attribute {key:?} (only latency)"
                    )));
                }
            }
        }
        for (a, b, duplex) in chain {
            edges.push((a, b, latency));
            if duplex {
                edges.push((b, a, latency));
            }
        }
    }
    if !closed {
        return Err(parse_err("truncated input: missing closing '}'"));
    }
    if it.next().is_some() {
        return Err(parse_err("trailing tokens after closing '}'"));
    }
    Ok(CustomGraph::build(name, node_names, &edges)?)
}

/// Parses the `<w>x<h>[x<d>]`-style numeric tail of a generator form.
fn gen_fields(rest: &str, want: usize, form: &str) -> Result<Vec<u64>, IngestError> {
    let parts: Vec<u64> = rest
        .split('x')
        .map(|p| {
            p.parse::<u64>()
                .map_err(|_| parse_err(format!("bad field {p:?} in custom:{form}")))
        })
        .collect::<Result<_, _>>()?;
    if parts.len() != want {
        return Err(parse_err(format!(
            "custom:{form} takes {want} x-separated fields, got {}",
            parts.len()
        )));
    }
    Ok(parts)
}

/// Resolves a `custom:` topology source into a validated graph.
///
/// Generator forms need no file system and are what specs should use
/// when they must work from any directory:
///
/// * `rand:<nodes>x<seed>` — random connected graph;
/// * `lmesh:<w>x<h>x<seed>` — lesioned mesh;
/// * `ftree:<k>x<seed>` — two-level fat-tree sample.
///
/// Anything ending in `.json`, `.dot` or `.gv` is read as a graph
/// file, relative to the current directory.
pub fn load_custom(source: &str) -> Result<CustomGraph, IngestError> {
    if let Some(rest) = source.strip_prefix("rand:") {
        let f = gen_fields(rest, 2, "rand:<nodes>x<seed>")?;
        return Ok(generators::random_connected(f[0] as usize, f[1]));
    }
    if let Some(rest) = source.strip_prefix("lmesh:") {
        let f = gen_fields(rest, 3, "lmesh:<w>x<h>x<seed>")?;
        return Ok(generators::lesioned_mesh(
            f[0] as usize,
            f[1] as usize,
            f[2],
        ));
    }
    if let Some(rest) = source.strip_prefix("ftree:") {
        let f = gen_fields(rest, 2, "ftree:<k>x<seed>")?;
        return Ok(generators::fat_tree_ish(f[0] as usize, f[1]));
    }
    let read = |path: &str| {
        std::fs::read_to_string(path).map_err(|e| IngestError::Io {
            path: path.to_string(),
            reason: e.to_string(),
        })
    };
    if source.ends_with(".json") {
        return parse_graph_json(&read(source)?);
    }
    if source.ends_with(".dot") || source.ends_with(".gv") {
        return parse_graph_dot(&read(source)?);
    }
    Err(parse_err(format!(
        "unrecognized custom topology source {source:?}: expected rand:NxS, \
         lmesh:WxHxS, ftree:KxS, or a .json/.dot graph file"
    )))
}

/// Like [`load_custom`], wrapped in an `Arc` for [`crate::registry::TopoSpec::Custom`].
pub fn load_custom_arc(source: &str) -> Result<Arc<CustomGraph>, IngestError> {
    load_custom(source).map(Arc::new)
}

/// Software multicast over the synthesized unicast routes: one path
/// worm per destination, each following the certified up*/down* (or
/// shortest-path) route. Deadlock-free — every worm's channel sequence
/// is a path through the certified acyclic CDG.
pub struct UpDownMulticastRouter {
    routing: CertifiedRouting,
}

impl UpDownMulticastRouter {
    /// Synthesizes and certifies routing for `graph`; fails with the
    /// witness cycle if no certified function is found.
    pub fn new(graph: &CustomGraph) -> Result<Self, TopographError> {
        Ok(UpDownMulticastRouter {
            routing: synthesize(graph)?,
        })
    }
}

impl MulticastRouter for UpDownMulticastRouter {
    fn name(&self) -> &'static str {
        "updown-mc"
    }

    fn plan(&self, mc: &MulticastSet) -> DeliveryPlan {
        let paths: Vec<PathRoute> = mc
            .destinations
            .iter()
            .map(|&d| PathRoute::new(self.routing.path(mc.source, d)))
            .collect();
        DeliveryPlan::from_paths(mc, &paths, ClassChoice::Any)
    }
}

/// The tree baseline on custom graphs: merges the per-destination
/// certified unicast routes into one lock-step replication tree (the
/// same construction as the hypercube `ecube-tree`). Like the other
/// tree schemes it is *not* claimed deadlock-free under strict
/// single-flit wormhole replication.
pub struct UpDownTreeRouter {
    routing: CertifiedRouting,
}

impl UpDownTreeRouter {
    /// Synthesizes and certifies routing for `graph`.
    pub fn new(graph: &CustomGraph) -> Result<Self, TopographError> {
        Ok(UpDownTreeRouter {
            routing: synthesize(graph)?,
        })
    }
}

impl MulticastRouter for UpDownTreeRouter {
    fn name(&self) -> &'static str {
        "updown-tree"
    }

    fn plan(&self, mc: &MulticastSet) -> DeliveryPlan {
        let mut tree = TreeRoute::new(mc.source);
        for &d in &mc.destinations {
            let path = self.routing.path(mc.source, d);
            for w in path.windows(2) {
                if !tree.contains(w[1]) {
                    tree.attach(w[0], w[1]);
                }
            }
        }
        DeliveryPlan::from_tree(mc, &tree, ClassChoice::Any)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_topology::topograph::generators::SplitMix64;
    use mcast_topology::Topology;

    const JSON_TRIANGLE: &str = r#"{
  "name": "tri",
  "nodes": ["a", "b", "c"],
  "edges": [["a", "b"], ["b", "c", 2], ["a", "c"]]
}"#;

    const DOT_SQUARE: &str = "graph square {\n  // a 4-cycle with one slow side\n  n0 -- n1 [latency=3];\n  n1 -- n2;\n  n2 -- n3;\n  n3 -- n0;\n}\n";

    #[test]
    fn json_graph_parses_with_names_indices_and_latencies() {
        let g = parse_graph_json(JSON_TRIANGLE).unwrap();
        assert_eq!(g.name(), "tri");
        assert_eq!(g.num_nodes(), 3);
        assert!(g.is_duplex());
        assert_eq!(g.latency(1, 2), Some(2));
        assert_eq!(g.latency(2, 1), Some(2));
        assert_eq!(g.node_name(0), "a");
        // Non-duplex with numeric indices.
        let g = parse_graph_json(
            r#"{"nodes": 3, "duplex": false,
                "edges": [[0,1],[1,0],[1,2],[2,1],[0,2],[2,0]]}"#,
        )
        .unwrap();
        assert!(g.is_duplex()); // both directions listed explicitly
        assert_eq!(g.node_name(0), "n0");
    }

    #[test]
    fn json_rejections_are_typed() {
        let cases: &[(&str, &str)] = &[
            ("{", "invalid JSON"),
            ("[1, 2]", "must be an object"),
            (r#"{"nodes": 2, "edges": [], "extra": 1}"#, "unknown key"),
            (r#"{"edges": []}"#, "missing \"nodes\""),
            (r#"{"nodes": 2}"#, "missing \"edges\""),
            (r#"{"nodes": 2.5, "edges": []}"#, "bad node count"),
            (
                r#"{"nodes": ["a", "a"], "edges": []}"#,
                "duplicate node name",
            ),
            (r#"{"nodes": 3, "edges": [[0]]}"#, "each edge"),
            (r#"{"nodes": 3, "edges": [[0, 7]]}"#, "out of range"),
            (
                r#"{"nodes": ["a","b"], "edges": [["a","z"]]}"#,
                "unknown node name",
            ),
            (
                r#"{"nodes": 3, "edges": [[0, 1, 1.5]]}"#,
                "bad edge latency",
            ),
            (
                r#"{"nodes": 2, "duplex": 1, "edges": []}"#,
                "must be a boolean",
            ),
        ];
        for (text, needle) in cases {
            match parse_graph_json(text) {
                Err(IngestError::Parse { reason }) => {
                    assert!(reason.contains(needle), "{text}: {reason}")
                }
                other => panic!("{text}: expected parse error, got {other:?}"),
            }
        }
    }

    #[test]
    fn structural_rejections_surface_the_graph_error() {
        let self_loop = r#"{"nodes": 2, "edges": [[0, 0], [0, 1]]}"#;
        assert!(matches!(
            parse_graph_json(self_loop),
            Err(IngestError::Graph(TopographError::SelfLoop { node: 0 }))
        ));
        let dup = r#"{"nodes": 2, "duplex": false, "edges": [[0, 1], [0, 1], [1, 0]]}"#;
        assert!(matches!(
            parse_graph_json(dup),
            Err(IngestError::Graph(TopographError::DuplicateEdge { .. }))
        ));
        let zero = r#"{"nodes": 2, "edges": [[0, 1, 0]]}"#;
        assert!(matches!(
            parse_graph_json(zero),
            Err(IngestError::Graph(TopographError::ZeroLatency { .. }))
        ));
        let disconnected = r#"{"nodes": 4, "edges": [[0, 1], [2, 3]]}"#;
        assert!(matches!(
            parse_graph_json(disconnected),
            Err(IngestError::Graph(TopographError::NotConnected { .. }))
        ));
    }

    #[test]
    fn dot_graph_parses_edges_chains_and_comments() {
        let g = parse_graph_dot(DOT_SQUARE).unwrap();
        assert_eq!(g.name(), "square");
        assert_eq!(g.num_nodes(), 4);
        assert!(g.is_duplex());
        assert_eq!(g.latency(0, 1), Some(3));
        assert_eq!(g.latency(1, 2), Some(1));
        // Chains and digraph arrows; `--` still adds both directions.
        let g = parse_graph_dot("digraph { a -> b -> c; c -> a; c -- d; }").unwrap();
        assert!(!g.is_duplex());
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.latency(0, 1), Some(1));
        assert_eq!(g.latency(1, 0), None);
        assert_eq!(g.latency(2, 3), Some(1));
        assert_eq!(g.latency(3, 2), Some(1));
    }

    #[test]
    fn dot_rejections_are_typed() {
        let cases: &[(&str, &str)] = &[
            ("", "empty input"),
            ("strict graph {}", "expected graph or digraph"),
            ("graph g", "expected '{'"),
            ("graph g { a -- b; ", "missing closing '}'"),
            ("graph g { a -- ; }", "expected a node id"),
            ("graph g { a -- b [latency=x]; }", "bad latency"),
            (
                "graph g { a -- b [weight=2]; }",
                "unsupported edge attribute",
            ),
            ("graph g { a [shape=box]; }", "node attributes"),
            ("graph g { a -- b; } trailing", "trailing tokens"),
            ("graph g { a - b; }", "expected -- or ->"),
            ("graph g { a -- b @ }", "unexpected character"),
        ];
        for (text, needle) in cases {
            match parse_graph_dot(text) {
                Err(IngestError::Parse { reason }) => {
                    assert!(reason.contains(needle), "{text}: {reason}")
                }
                other => panic!("{text}: expected parse error, got {other:?}"),
            }
        }
        // A one-node DOT graph parses but fails graph validation.
        assert!(matches!(
            parse_graph_dot("graph g { a; }"),
            Err(IngestError::Graph(TopographError::TooFewNodes { nodes: 1 }))
        ));
    }

    /// Satellite: seeded fuzz over the ingestion path — random
    /// truncations and single-character corruptions of valid inputs
    /// must produce `Ok` or a typed `IngestError`, never a panic.
    #[test]
    fn ingestion_fuzz_never_panics() {
        type Parser = fn(&str) -> Result<CustomGraph, IngestError>;
        let seeds: Vec<(Parser, &str)> = vec![
            (parse_graph_json, JSON_TRIANGLE),
            (parse_graph_dot, DOT_SQUARE),
        ];
        let mut rng = SplitMix64::new(0xF022);
        for (parse, base) in seeds {
            // Every prefix truncation (at char boundaries).
            for end in 0..base.len() {
                if base.is_char_boundary(end) {
                    let _ = parse(&base[..end]);
                }
            }
            // Random single-character corruptions.
            let corruptions = b"{}[]=,;x0-\"";
            for _ in 0..500 {
                let mut bytes = base.as_bytes().to_vec();
                let at = rng.below(bytes.len());
                bytes[at] = corruptions[rng.below(corruptions.len())];
                if let Ok(s) = std::str::from_utf8(&bytes) {
                    let _ = parse(s);
                }
            }
            // Random line duplications / deletions.
            for _ in 0..100 {
                let mut lines: Vec<&str> = base.lines().collect();
                let at = rng.below(lines.len());
                if rng.below(2) == 0 {
                    lines.remove(at);
                } else {
                    let l = lines[at];
                    lines.insert(at, l);
                }
                let _ = parse(&lines.join("\n"));
            }
        }
    }

    #[test]
    fn load_custom_resolves_generator_forms() {
        let g = load_custom("rand:10x3").unwrap();
        assert_eq!(g.num_nodes(), 10);
        let g = load_custom("lmesh:4x4x2").unwrap();
        assert_eq!(g.num_nodes(), 16);
        let g = load_custom("ftree:2x1").unwrap();
        assert_eq!(g.num_nodes(), 6);
        assert!(matches!(
            load_custom("rand:10"),
            Err(IngestError::Parse { .. })
        ));
        assert!(matches!(
            load_custom("nonsense"),
            Err(IngestError::Parse { .. })
        ));
        assert!(matches!(
            load_custom("no/such/file.json"),
            Err(IngestError::Io { .. })
        ));
    }

    #[test]
    fn custom_routers_cover_destinations() {
        let g = generators::lesioned_mesh(4, 4, 7);
        let mc = MulticastSet::new(3, [0, 5, 10, 15]);
        let mcr = UpDownMulticastRouter::new(&g).unwrap();
        let plan = mcr.plan(&mc);
        assert_eq!(plan.source, 3);
        assert_eq!(plan.worms.len(), 4);
        let tree = UpDownTreeRouter::new(&g).unwrap();
        let plan = tree.plan(&mc);
        assert_eq!(plan.source, 3);
        assert!(!plan.worms.is_empty());
    }
}
