//! The scheme/topology registry: data-driven router construction
//! (DESIGN.md §11).
//!
//! Historically every consumer of the simulator — the CLI subcommands,
//! the bench figure drivers, the fault-sweep harness — carried its own
//! `match (&topo, algorithm)` ladder naming concrete router
//! constructors, so each new topology or scheme meant editing half a
//! dozen dispatch sites and dynamic runs were effectively limited to
//! `Mesh2D` plus a partial `Hypercube` path. This module replaces all of
//! them with two small value types and three factory functions:
//!
//! * [`TopoSpec`] — a parsed topology description (`mesh:WxH`,
//!   `mesh:WxHxD`, `cube:N`, `kary:KxN`, `torus:KxN`, or
//!   `custom:<source>` for arbitrary validated graphs, DESIGN.md §14)
//!   that can [`TopoSpec::build`] the concrete graph and answer naming
//!   questions ([`TopoSpec::node_name`], [`TopoSpec::hotspot_node`]);
//! * [`SchemeId`] — a routing-scheme name plus the optional `:lanes`
//!   suffix (`vc-multi-path:4`);
//! * [`build_router`] / [`build_fault_router`] / [`build_route`] — the
//!   single dispatch points resolving a (topology, scheme) pair into a
//!   boxed router, a fault-aware router, or a static route.
//!
//! Every Chapter 6/7 scheme is registered for every topology where its
//! construction applies: the Hamiltonian-path schemes (dual-path,
//! multi-path, fixed-path, vc-multi-path, and the circuit-switched
//! dual-path baseline) work on all four topologies via the generic
//! `with_labeling` constructors and the snake/Gray labelings; the tree
//! schemes are topology-specific (dc-tree on 2D meshes, octant-tree on
//! 3D meshes, ecube-tree on hypercubes, xfirst-tree on 2D meshes).
//! Custom graphs carry no Hamiltonian labeling, so they register the
//! synthesized-routing schemes instead: `updown-mc` (one worm per
//! destination over certified up*/down* routes, deadlock-free by the
//! certified acyclic CDG) and `updown-tree` (the merged-tree baseline).
//! [`SchemeInfo::deadlock_free`] records which schemes the dissertation
//! proves deadlock-free — the registry exhaustiveness test asserts an
//! acyclic channel dependency graph for exactly those.

use std::sync::Arc;

use mcast_core::model::{MulticastRoute, MulticastSet, PathRoute, TreeRoute};
use mcast_topology::hamiltonian::{hypercube_cycle, mesh2d_cycle};
use mcast_topology::labeling::{hypercube_gray, karyn_gray, mesh2d_snake, mesh3d_snake};
use mcast_topology::topograph::bfs_order_path;
use mcast_topology::{
    CustomGraph, Hypercube, KAryNCube, Labeling, Mesh2D, Mesh3D, NodeId, Topology,
};

use crate::collectives::{CollectiveKind, CollectiveRouter, DpmRouter, UnicastRouting};
use crate::network::Network;
use crate::recovery::{
    FaultDualPathRouter, FaultMultiPathRouter, FaultMulticastRouter, ObliviousRouter,
};
use crate::routers::{
    CircuitDualPathRouter, DoubleChannelTreeRouter, DualPathRouter, EcubeTreeRouter,
    FixedPathRouter, MultiPathMeshRouter, MultiPathRouter, MulticastRouter, OctantTreeRouter,
    VcMultiPathRouter, XFirstTreeRouter,
};
use crate::topograph::{load_custom_arc, UpDownMulticastRouter, UpDownTreeRouter};

/// A registry lookup failure (unknown scheme, unknown topology kind,
/// or a scheme not registered for the requested topology).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistryError(pub String);

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for RegistryError {}

fn err(msg: impl Into<String>) -> RegistryError {
    RegistryError(msg.into())
}

/// A parsed topology description — the data form of "which network".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopoSpec {
    /// `mesh:WxH` — a W×H 2D mesh.
    Mesh2D {
        /// Width (x extent).
        w: usize,
        /// Height (y extent).
        h: usize,
    },
    /// `mesh:WxHxD` — a W×H×D 3D mesh.
    Mesh3D {
        /// Width (x extent).
        w: usize,
        /// Height (y extent).
        h: usize,
        /// Depth (z extent).
        d: usize,
    },
    /// `cube:N` — an N-dimensional binary hypercube.
    Hypercube {
        /// Dimension (2^dim nodes).
        dim: u32,
    },
    /// `kary:KxN` (mesh) or `torus:KxN` (wrapped) — a k-ary n-cube.
    KAryNCube {
        /// Radix per dimension.
        k: usize,
        /// Number of dimensions.
        n: u32,
        /// Whether the dimensions wrap (torus).
        wraps: bool,
    },
    /// `custom:<source>` — an arbitrary validated graph (DESIGN.md §14).
    /// The source is a generator form (`rand:10x3`, `lmesh:4x4x2`,
    /// `ftree:3x1`) or a `.json`/`.dot` graph file path; the resolved
    /// graph rides along so parsing happens exactly once.
    Custom {
        /// The source string the graph was resolved from (everything
        /// after `custom:`); `Display` round-trips through it.
        source: String,
        /// The validated graph.
        graph: Arc<CustomGraph>,
    },
}

impl TopoSpec {
    /// Parses a topology spec string: `mesh:WxH`, `mesh:WxHxD`,
    /// `cube:N`, `kary:KxN`, `torus:KxN`, or `custom:<source>` (see
    /// [`crate::topograph::load_custom`] for the source forms; file
    /// sources are read and validated here, so the error carries the
    /// path and reason).
    pub fn parse(spec: &str) -> Result<TopoSpec, RegistryError> {
        let (kind, rest) = spec.split_once(':').ok_or_else(|| {
            err(format!(
                "expected mesh:WxH, mesh:WxHxD, cube:N, kary:KxN, torus:KxN \
                 or custom:<graph>, got {spec:?}"
            ))
        })?;
        let dims = |s: &str| -> Result<Vec<usize>, RegistryError> {
            let parts: Vec<usize> = s
                .split('x')
                .map(|p| {
                    p.parse::<usize>()
                        .map_err(|_| err(format!("bad dimension {p:?} in {spec:?}")))
                })
                .collect::<Result<_, _>>()?;
            if parts.contains(&0) {
                return Err(err(format!("zero-sized dimension in {spec:?}")));
            }
            Ok(parts)
        };
        match kind {
            "mesh" => match dims(rest)?.as_slice() {
                &[w, h] => Ok(TopoSpec::Mesh2D { w, h }),
                &[w, h, d] => Ok(TopoSpec::Mesh3D { w, h, d }),
                other => Err(err(format!(
                    "mesh takes 2 or 3 dimensions, got {}",
                    other.len()
                ))),
            },
            "cube" => {
                let dim: u32 = rest
                    .parse()
                    .map_err(|_| err(format!("bad cube dimension {rest:?}")))?;
                Ok(TopoSpec::Hypercube { dim })
            }
            "kary" | "torus" => match dims(rest)?.as_slice() {
                &[k, n] => Ok(TopoSpec::KAryNCube {
                    k,
                    n: n as u32,
                    wraps: kind == "torus",
                }),
                other => Err(err(format!(
                    "{kind} takes KxN (radix x dimensions), got {} fields",
                    other.len()
                ))),
            },
            "custom" => {
                let graph = load_custom_arc(rest)
                    .map_err(|e| err(format!("custom topology {rest:?}: {e}")))?;
                Ok(TopoSpec::Custom {
                    source: rest.to_string(),
                    graph,
                })
            }
            other => Err(err(format!("unknown topology kind {other:?}"))),
        }
    }

    /// Builds the concrete topology.
    pub fn build(&self) -> BuiltTopo {
        match *self {
            TopoSpec::Mesh2D { w, h } => BuiltTopo::Mesh2D(Mesh2D::new(w, h)),
            TopoSpec::Mesh3D { w, h, d } => BuiltTopo::Mesh3D(Mesh3D::new(w, h, d)),
            TopoSpec::Hypercube { dim } => BuiltTopo::Hypercube(Hypercube::new(dim)),
            TopoSpec::KAryNCube { k, n, wraps } => BuiltTopo::KAryNCube(if wraps {
                KAryNCube::torus(k, n)
            } else {
                KAryNCube::mesh(k, n)
            }),
            TopoSpec::Custom { ref graph, .. } => BuiltTopo::Custom(Arc::clone(graph)),
        }
    }

    /// Number of nodes in the network.
    pub fn num_nodes(&self) -> usize {
        match *self {
            TopoSpec::Mesh2D { w, h } => w * h,
            TopoSpec::Mesh3D { w, h, d } => w * h * d,
            TopoSpec::Hypercube { dim } => 1usize << dim,
            TopoSpec::KAryNCube { k, n, .. } => k.pow(n),
            TopoSpec::Custom { ref graph, .. } => graph.num_nodes(),
        }
    }

    /// The label order used by the Hamiltonian-path schemes:
    /// boustrophedon snakes on meshes, reflected Gray codes on cubes.
    /// Custom graphs get their deterministic BFS order — a permutation
    /// but *not* a Hamiltonian path, so the path schemes are not
    /// registered for them (see [`schemes_for`]).
    pub fn labeling(&self) -> Labeling {
        match self.build() {
            BuiltTopo::Mesh2D(m) => mesh2d_snake(&m),
            BuiltTopo::Mesh3D(m) => mesh3d_snake(&m),
            BuiltTopo::Hypercube(c) => hypercube_gray(&c),
            BuiltTopo::KAryNCube(c) => karyn_gray(&c),
            BuiltTopo::Custom(g) => Labeling::from_path(bfs_order_path(&g)),
        }
    }

    /// A human-readable node name: mesh coordinates, cube binary
    /// addresses, k-ary digit strings, custom-graph node names.
    pub fn node_name(&self, n: NodeId) -> String {
        match self.build() {
            BuiltTopo::Mesh2D(m) => {
                let (x, y) = m.coords(n);
                format!("({x},{y})")
            }
            BuiltTopo::Mesh3D(m) => {
                let (x, y, z) = m.coords(n);
                format!("({x},{y},{z})")
            }
            BuiltTopo::Hypercube(c) => c.format_addr(n),
            BuiltTopo::KAryNCube(c) => {
                let digits: Vec<String> = c.digits(n).iter().map(|d| d.to_string()).collect();
                format!("[{}]", digits.join("."))
            }
            BuiltTopo::Custom(g) => g.node_name(n).to_string(),
        }
    }

    /// The hot-spot node: the network center, where §7.2's non-uniform
    /// loads concentrate contention — the mesh midpoint, the
    /// mid-address cube node, the all-⌊k/2⌋ k-ary node, the
    /// max-degree node of a custom graph.
    pub fn hotspot_node(&self) -> NodeId {
        match self.build() {
            BuiltTopo::Mesh2D(m) => m.node(m.width() / 2, m.height() / 2),
            BuiltTopo::Mesh3D(m) => m.node(m.width() / 2, m.height() / 2, m.depth() / 2),
            BuiltTopo::Hypercube(c) => c.num_nodes() / 2,
            BuiltTopo::KAryNCube(c) => {
                let mid = vec![c.k() / 2; c.n() as usize];
                c.from_digits(&mid)
            }
            BuiltTopo::Custom(g) => g.max_degree_node(),
        }
    }
}

impl std::fmt::Display for TopoSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            TopoSpec::Mesh2D { w, h } => write!(f, "mesh:{w}x{h}"),
            TopoSpec::Mesh3D { w, h, d } => write!(f, "mesh:{w}x{h}x{d}"),
            TopoSpec::Hypercube { dim } => write!(f, "cube:{dim}"),
            TopoSpec::KAryNCube { k, n, wraps } => {
                write!(f, "{}:{k}x{n}", if wraps { "torus" } else { "kary" })
            }
            TopoSpec::Custom { ref source, .. } => write!(f, "custom:{source}"),
        }
    }
}

/// A built topology, holding whichever concrete graph the spec named.
/// [`BuiltTopo::as_dyn`] erases it for the generic runners
/// (`run_dynamic`, `run_dynamic_sweep`, `run_fault_sweep`, and
/// [`Network::new`] are all `T: Topology + ?Sized`).
#[derive(Debug, Clone)]
pub enum BuiltTopo {
    /// A 2D mesh.
    Mesh2D(Mesh2D),
    /// A 3D mesh.
    Mesh3D(Mesh3D),
    /// A binary hypercube.
    Hypercube(Hypercube),
    /// A k-ary n-cube (mesh or torus).
    KAryNCube(KAryNCube),
    /// A validated custom graph (shared, so clones stay cheap).
    Custom(Arc<CustomGraph>),
}

impl BuiltTopo {
    /// The topology as a trait object (`Sync` so the parallel sweep
    /// runner can share it across worker threads).
    pub fn as_dyn(&self) -> &(dyn Topology + Sync) {
        match self {
            BuiltTopo::Mesh2D(m) => m,
            BuiltTopo::Mesh3D(m) => m,
            BuiltTopo::Hypercube(c) => c,
            BuiltTopo::KAryNCube(c) => c,
            BuiltTopo::Custom(g) => g.as_ref(),
        }
    }
}

/// A routing-scheme identifier: name plus the optional `:lanes` suffix
/// (`"vc-multi-path:4"` → name `vc-multi-path`, lanes 4).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SchemeId {
    /// The scheme name (`"dual-path"`, `"vc-multi-path"`, ...).
    pub name: String,
    /// Virtual-channel lane count, for lane-parameterized schemes.
    pub lanes: Option<u8>,
}

impl SchemeId {
    /// Parses `name` or `name:lanes`.
    pub fn parse(s: &str) -> Result<SchemeId, RegistryError> {
        let (name, lanes) = match s.split_once(':') {
            Some((n, l)) => {
                let lanes: u8 = l
                    .parse()
                    .map_err(|_| err(format!("bad lane count {l:?} in {s:?}")))?;
                if lanes == 0 {
                    return Err(err(format!("lane count must be positive in {s:?}")));
                }
                (n, Some(lanes))
            }
            None => (s, None),
        };
        if name.is_empty() {
            return Err(err("empty scheme name"));
        }
        Ok(SchemeId {
            name: name.to_string(),
            lanes,
        })
    }

    /// A plain (no-lanes) scheme id.
    pub fn named(name: &str) -> SchemeId {
        SchemeId {
            name: name.to_string(),
            lanes: None,
        }
    }

    /// The lane count for lane-parameterized schemes (default 2).
    pub fn lanes_or_default(&self) -> u8 {
        self.lanes.unwrap_or(2)
    }
}

impl std::fmt::Display for SchemeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.lanes {
            Some(l) => write!(f, "{}:{l}", self.name),
            None => f.write_str(&self.name),
        }
    }
}

/// Registry metadata for one scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchemeInfo {
    /// The scheme name ([`SchemeId::name`]).
    pub name: &'static str,
    /// Whether the dissertation proves the scheme deadlock-free.
    pub deadlock_free: bool,
    /// Whether the scheme takes a `:lanes` suffix.
    pub takes_lanes: bool,
    /// Whether the scheme is simulable (has a [`MulticastRouter`]) or
    /// route-only (Chapter 5 heuristics usable via [`build_route`]).
    pub simulable: bool,
}

/// Every registered scheme, simulable and route-only.
pub const SCHEMES: &[SchemeInfo] = &[
    SchemeInfo {
        name: "dual-path",
        deadlock_free: true,
        takes_lanes: false,
        simulable: true,
    },
    SchemeInfo {
        name: "multi-path",
        deadlock_free: true,
        takes_lanes: false,
        simulable: true,
    },
    SchemeInfo {
        name: "fixed-path",
        deadlock_free: true,
        takes_lanes: false,
        simulable: true,
    },
    SchemeInfo {
        name: "vc-multi-path",
        deadlock_free: true,
        takes_lanes: true,
        simulable: true,
    },
    SchemeInfo {
        name: "dc-tree",
        deadlock_free: true,
        takes_lanes: false,
        simulable: true,
    },
    SchemeInfo {
        name: "octant-tree",
        deadlock_free: true,
        takes_lanes: false,
        simulable: true,
    },
    SchemeInfo {
        name: "circuit-dual-path",
        deadlock_free: true,
        takes_lanes: false,
        simulable: true,
    },
    SchemeInfo {
        name: "xfirst-tree",
        deadlock_free: false,
        takes_lanes: false,
        simulable: true,
    },
    SchemeInfo {
        name: "ecube-tree",
        deadlock_free: false,
        takes_lanes: false,
        simulable: true,
    },
    SchemeInfo {
        name: "updown-mc",
        deadlock_free: true,
        takes_lanes: false,
        simulable: true,
    },
    SchemeInfo {
        name: "updown-tree",
        deadlock_free: false,
        takes_lanes: false,
        simulable: true,
    },
    SchemeInfo {
        name: "dpm",
        deadlock_free: true,
        takes_lanes: false,
        simulable: true,
    },
    SchemeInfo {
        name: "binomial",
        deadlock_free: true,
        takes_lanes: false,
        simulable: true,
    },
    SchemeInfo {
        name: "recursive-doubling",
        deadlock_free: true,
        takes_lanes: false,
        simulable: true,
    },
    SchemeInfo {
        name: "binomial-reliable",
        deadlock_free: true,
        takes_lanes: false,
        simulable: true,
    },
    SchemeInfo {
        name: "sorted-mp",
        deadlock_free: false,
        takes_lanes: false,
        simulable: false,
    },
    SchemeInfo {
        name: "greedy-st",
        deadlock_free: false,
        takes_lanes: false,
        simulable: false,
    },
    SchemeInfo {
        name: "divided-greedy",
        deadlock_free: false,
        takes_lanes: false,
        simulable: false,
    },
];

/// Looks up a scheme's registry metadata.
pub fn scheme_info(name: &str) -> Option<&'static SchemeInfo> {
    SCHEMES.iter().find(|s| s.name == name)
}

/// The simulable schemes registered for a topology — the pairs the
/// exhaustiveness test iterates and `schemes_for` experiments sweep.
pub fn schemes_for(topo: &TopoSpec) -> Vec<SchemeId> {
    // The modern competitors (DESIGN.md §17) route over each topology's
    // certified base unicast routing, so they register everywhere —
    // including custom graphs, where the base routing is the
    // synthesized up*/down* function.
    let modern = ["dpm", "binomial", "recursive-doubling", "binomial-reliable"];
    // Custom graphs have no Hamiltonian-path labeling, so only the
    // synthesized up*/down* schemes (plus the modern competitors) apply
    // there.
    if let TopoSpec::Custom { .. } = topo {
        let mut out = vec![SchemeId::named("updown-mc"), SchemeId::named("updown-tree")];
        out.extend(modern.iter().map(|n| SchemeId::named(n)));
        return out;
    }
    let mut out: Vec<SchemeId> = ["dual-path", "multi-path", "fixed-path", "circuit-dual-path"]
        .iter()
        .map(|n| SchemeId::named(n))
        .collect();
    out.push(SchemeId {
        name: "vc-multi-path".to_string(),
        lanes: Some(2),
    });
    match topo {
        TopoSpec::Mesh2D { .. } => {
            out.push(SchemeId::named("dc-tree"));
            out.push(SchemeId::named("xfirst-tree"));
        }
        TopoSpec::Mesh3D { .. } => out.push(SchemeId::named("octant-tree")),
        TopoSpec::Hypercube { .. } => out.push(SchemeId::named("ecube-tree")),
        TopoSpec::KAryNCube { .. } | TopoSpec::Custom { .. } => {}
    }
    out.extend(modern.iter().map(|n| SchemeId::named(n)));
    out
}

/// Whether a scheme's deadlock-freedom claim holds *on this topology*.
///
/// [`SchemeInfo::deadlock_free`] is the scheme's global claim; the
/// modern competitors (DESIGN.md §17) inherit theirs from the base
/// dimension-ordered unicast routing, which cycles through the wrap
/// rings of a torus. The conformance harness certifies an acyclic CDG
/// for exactly the `(topology, scheme)` pairs this returns `true` for.
pub fn scheme_deadlock_free(topo: &TopoSpec, name: &str) -> bool {
    match name {
        "dpm" | "binomial" | "recursive-doubling" | "binomial-reliable" => {
            !matches!(topo, TopoSpec::KAryNCube { wraps: true, .. })
        }
        _ => scheme_info(name).is_some_and(|i| i.deadlock_free),
    }
}

fn not_available(topo: &TopoSpec, scheme: &SchemeId) -> RegistryError {
    err(format!("scheme {scheme:?} not available on {topo}"))
}

fn check_lanes(scheme: &SchemeId) -> Result<(), RegistryError> {
    match scheme_info(&scheme.name) {
        Some(info) if !info.takes_lanes && scheme.lanes.is_some() => Err(err(format!(
            "scheme {} does not take a :lanes suffix",
            scheme.name
        ))),
        _ => Ok(()),
    }
}

/// Resolves a (topology, scheme) pair to a simulable router — the
/// single router-construction dispatch point for the CLI, benches and
/// experiment specs.
pub fn build_router(
    topo: &TopoSpec,
    scheme: &SchemeId,
) -> Result<Box<dyn MulticastRouter + Send + Sync>, RegistryError> {
    check_lanes(scheme)?;
    let built = topo.build();
    let lanes = scheme.lanes_or_default();
    // Custom graphs route over synthesized certified functions; the
    // synthesis failure (a cyclic CDG on a directed graph) surfaces
    // here with the witness cycle in the message.
    if let BuiltTopo::Custom(graph) = &built {
        let fail = |e: mcast_topology::TopographError| err(format!("{topo}: {e}"));
        return match scheme.name.as_str() {
            "updown-mc" => Ok(Box::new(UpDownMulticastRouter::new(graph).map_err(fail)?)),
            "updown-tree" => Ok(Box::new(UpDownTreeRouter::new(graph).map_err(fail)?)),
            "dpm" => Ok(Box::new(DpmRouter::new(
                UnicastRouting::custom(graph).map_err(fail)?,
            ))),
            "binomial" | "recursive-doubling" | "binomial-reliable" => {
                Ok(Box::new(CollectiveRouter::new(
                    UnicastRouting::custom(graph).map_err(fail)?,
                    collective_kind(&scheme.name).expect("matched above"),
                )))
            }
            _ => Err(not_available(topo, scheme)),
        };
    }
    Ok(match (built, scheme.name.as_str()) {
        // The Hamiltonian-path schemes run on every labeled topology.
        (BuiltTopo::Mesh2D(m), "dual-path") => Box::new(DualPathRouter::mesh(m)),
        (BuiltTopo::Hypercube(c), "dual-path") => Box::new(DualPathRouter::hypercube(c)),
        (t, "dual-path") => dual_path_generic(t),
        (BuiltTopo::Mesh2D(m), "multi-path") => Box::new(MultiPathMeshRouter::new(m)),
        (t, "multi-path") => multi_path_generic(t, topo.labeling()),
        (BuiltTopo::Mesh2D(m), "fixed-path") => Box::new(FixedPathRouter::mesh(m)),
        (BuiltTopo::Hypercube(c), "fixed-path") => Box::new(FixedPathRouter::hypercube(c)),
        (t, "fixed-path") => fixed_path_generic(t),
        (BuiltTopo::Mesh2D(m), "vc-multi-path") => Box::new(VcMultiPathRouter::mesh(m, lanes)),
        (BuiltTopo::Hypercube(c), "vc-multi-path") => {
            Box::new(VcMultiPathRouter::hypercube(c, lanes))
        }
        (t, "vc-multi-path") => vc_multi_path_generic(t, lanes),
        (BuiltTopo::Mesh2D(m), "circuit-dual-path") => Box::new(CircuitDualPathRouter::mesh(m)),
        (t, "circuit-dual-path") => circuit_generic(t),
        // Tree schemes are topology-specific.
        (BuiltTopo::Mesh2D(m), "dc-tree") => Box::new(DoubleChannelTreeRouter::new(m)),
        (BuiltTopo::Mesh3D(m), "octant-tree") => Box::new(OctantTreeRouter::new(m)),
        (BuiltTopo::Mesh2D(m), "xfirst-tree") => Box::new(XFirstTreeRouter::new(m)),
        (BuiltTopo::Hypercube(c), "ecube-tree") => Box::new(EcubeTreeRouter::new(c)),
        // The modern competitors (DESIGN.md §17) run on every topology
        // over its certified base unicast routing.
        (t, "dpm") => Box::new(DpmRouter::new(unicast_for(&t))),
        (t, name @ ("binomial" | "recursive-doubling" | "binomial-reliable")) => {
            Box::new(CollectiveRouter::new(
                unicast_for(&t),
                collective_kind(name).expect("matched above"),
            ))
        }
        _ => return Err(not_available(topo, scheme)),
    })
}

fn collective_kind(name: &str) -> Option<CollectiveKind> {
    match name {
        "binomial" => Some(CollectiveKind::Binomial),
        "recursive-doubling" => Some(CollectiveKind::RecursiveDoubling),
        "binomial-reliable" => Some(CollectiveKind::BinomialReliable),
        _ => None,
    }
}

/// The base unicast routing for static-route construction — same
/// dispatch as [`unicast_for`], plus custom graphs via their certified
/// up*/down* synthesis (whose failure carries the witness cycle).
fn route_unicast(topo: &TopoSpec, built: &BuiltTopo) -> Result<UnicastRouting, RegistryError> {
    match built {
        BuiltTopo::Custom(g) => UnicastRouting::custom(g).map_err(|e| err(format!("{topo}: {e}"))),
        t => Ok(unicast_for(t)),
    }
}

fn unicast_for(t: &BuiltTopo) -> UnicastRouting {
    match t {
        BuiltTopo::Mesh2D(m) => UnicastRouting::Mesh2D(*m),
        BuiltTopo::Mesh3D(m) => UnicastRouting::Mesh3D(*m),
        BuiltTopo::Hypercube(c) => UnicastRouting::Hypercube(*c),
        BuiltTopo::KAryNCube(c) => UnicastRouting::KAry(*c),
        BuiltTopo::Custom(_) => {
            unreachable!(
                "custom graphs dispatch to the up*/down* routers before the generic constructors"
            )
        }
    }
}

fn dual_path_generic(t: BuiltTopo) -> Box<dyn MulticastRouter + Send + Sync> {
    match t {
        BuiltTopo::Mesh2D(m) => Box::new(DualPathRouter::with_labeling(m, mesh2d_snake(&m))),
        BuiltTopo::Mesh3D(m) => Box::new(DualPathRouter::with_labeling(m, mesh3d_snake(&m))),
        BuiltTopo::Hypercube(c) => Box::new(DualPathRouter::with_labeling(c, hypercube_gray(&c))),
        BuiltTopo::KAryNCube(c) => Box::new(DualPathRouter::with_labeling(c, karyn_gray(&c))),
        BuiltTopo::Custom(_) => {
            unreachable!(
                "custom graphs dispatch to the up*/down* routers before the generic constructors"
            )
        }
    }
}

fn multi_path_generic(t: BuiltTopo, labeling: Labeling) -> Box<dyn MulticastRouter + Send + Sync> {
    match t {
        BuiltTopo::Mesh2D(m) => Box::new(MultiPathRouter::with_labeling(m, labeling)),
        BuiltTopo::Mesh3D(m) => Box::new(MultiPathRouter::with_labeling(m, labeling)),
        BuiltTopo::Hypercube(c) => Box::new(MultiPathRouter::with_labeling(c, labeling)),
        BuiltTopo::KAryNCube(c) => Box::new(MultiPathRouter::with_labeling(c, labeling)),
        BuiltTopo::Custom(_) => {
            unreachable!(
                "custom graphs dispatch to the up*/down* routers before the generic constructors"
            )
        }
    }
}

fn fixed_path_generic(t: BuiltTopo) -> Box<dyn MulticastRouter + Send + Sync> {
    match t {
        BuiltTopo::Mesh2D(m) => Box::new(FixedPathRouter::with_labeling(m, mesh2d_snake(&m))),
        BuiltTopo::Mesh3D(m) => Box::new(FixedPathRouter::with_labeling(m, mesh3d_snake(&m))),
        BuiltTopo::Hypercube(c) => Box::new(FixedPathRouter::with_labeling(c, hypercube_gray(&c))),
        BuiltTopo::KAryNCube(c) => Box::new(FixedPathRouter::with_labeling(c, karyn_gray(&c))),
        BuiltTopo::Custom(_) => {
            unreachable!(
                "custom graphs dispatch to the up*/down* routers before the generic constructors"
            )
        }
    }
}

fn vc_multi_path_generic(t: BuiltTopo, lanes: u8) -> Box<dyn MulticastRouter + Send + Sync> {
    match t {
        BuiltTopo::Mesh2D(m) => {
            Box::new(VcMultiPathRouter::with_labeling(m, mesh2d_snake(&m), lanes))
        }
        BuiltTopo::Mesh3D(m) => {
            Box::new(VcMultiPathRouter::with_labeling(m, mesh3d_snake(&m), lanes))
        }
        BuiltTopo::Hypercube(c) => Box::new(VcMultiPathRouter::with_labeling(
            c,
            hypercube_gray(&c),
            lanes,
        )),
        BuiltTopo::KAryNCube(c) => {
            Box::new(VcMultiPathRouter::with_labeling(c, karyn_gray(&c), lanes))
        }
        BuiltTopo::Custom(_) => {
            unreachable!(
                "custom graphs dispatch to the up*/down* routers before the generic constructors"
            )
        }
    }
}

fn circuit_generic(t: BuiltTopo) -> Box<dyn MulticastRouter + Send + Sync> {
    match t {
        BuiltTopo::Mesh2D(m) => Box::new(CircuitDualPathRouter::with_labeling(m, mesh2d_snake(&m))),
        BuiltTopo::Mesh3D(m) => Box::new(CircuitDualPathRouter::with_labeling(m, mesh3d_snake(&m))),
        BuiltTopo::Hypercube(c) => {
            Box::new(CircuitDualPathRouter::with_labeling(c, hypercube_gray(&c)))
        }
        BuiltTopo::KAryNCube(c) => {
            Box::new(CircuitDualPathRouter::with_labeling(c, karyn_gray(&c)))
        }
        BuiltTopo::Custom(_) => {
            unreachable!(
                "custom graphs dispatch to the up*/down* routers before the generic constructors"
            )
        }
    }
}

/// Resolves a (topology, scheme) pair to a fault-aware router:
/// dual-path and multi-path plan around faults on every topology, and
/// any other registered scheme runs fault-*oblivious* under the
/// recovery engine's abort-and-retry (the comparison baseline).
pub fn build_fault_router(
    topo: &TopoSpec,
    scheme: &SchemeId,
) -> Result<Box<dyn FaultMulticastRouter + Send + Sync>, RegistryError> {
    check_lanes(scheme)?;
    Ok(match (topo.build(), scheme.name.as_str()) {
        (BuiltTopo::Mesh2D(m), "dual-path") => Box::new(FaultDualPathRouter::mesh(m)),
        (BuiltTopo::Hypercube(c), "dual-path") => Box::new(FaultDualPathRouter::hypercube(c)),
        (BuiltTopo::Mesh3D(m), "dual-path") => {
            Box::new(FaultDualPathRouter::with_labeling(m, mesh3d_snake(&m)))
        }
        (BuiltTopo::KAryNCube(c), "dual-path") => {
            Box::new(FaultDualPathRouter::with_labeling(c, karyn_gray(&c)))
        }
        (BuiltTopo::Mesh2D(m), "multi-path") => Box::new(FaultMultiPathRouter::mesh(m)),
        (BuiltTopo::Hypercube(c), "multi-path") => Box::new(FaultMultiPathRouter::hypercube(c)),
        (BuiltTopo::Mesh3D(m), "multi-path") => {
            Box::new(FaultMultiPathRouter::with_labeling(m, mesh3d_snake(&m)))
        }
        (BuiltTopo::KAryNCube(c), "multi-path") => {
            Box::new(FaultMultiPathRouter::with_labeling(c, karyn_gray(&c)))
        }
        // Everything else runs fault-oblivious under the recovery engine.
        _ => Box::new(ObliviousRouter::new(build_router(topo, scheme)?)),
    })
}

/// A static route produced by [`build_route`]: either one of the
/// concrete [`MulticastRoute`] shapes, or a greedy Steiner tree whose
/// edges are virtual (multi-hop) — the Chapter 5 `greedy-st` heuristic.
pub enum RoutePlan {
    /// A validated path/star/tree/forest route.
    Route(MulticastRoute),
    /// A greedy Steiner tree over virtual edges, with its traffic.
    Steiner {
        /// The virtual (endpoint-pair) edges of the tree.
        edges: Vec<(NodeId, NodeId)>,
        /// Total channel traffic when each edge is shortest-path routed.
        traffic: usize,
    },
}

/// Routes a single multicast statically — the `mcast route` dispatch
/// point, covering both the simulable schemes and the route-only
/// Chapter 5 heuristics (`sorted-mp`, `greedy-st`, `divided-greedy`).
pub fn build_route(
    topo: &TopoSpec,
    scheme: &SchemeId,
    mc: &MulticastSet,
) -> Result<RoutePlan, RegistryError> {
    check_lanes(scheme)?;
    let built = topo.build();
    let route = match (&built, scheme.name.as_str()) {
        (BuiltTopo::Mesh2D(m), "sorted-mp") => {
            let cycle = mesh2d_cycle(m);
            MulticastRoute::Path(mcast_core::sorted_mp::sorted_mp(m, &cycle, mc))
        }
        (BuiltTopo::Hypercube(c), "sorted-mp") => {
            let cycle = hypercube_cycle(c);
            MulticastRoute::Path(mcast_core::sorted_mp::sorted_mp(c, &cycle, mc))
        }
        (BuiltTopo::Mesh2D(m), "divided-greedy") => {
            MulticastRoute::Tree(mcast_core::divided_greedy::divided_greedy_tree(m, mc))
        }
        (built, "greedy-st") => {
            let (st, traffic) = match built {
                BuiltTopo::Mesh2D(m) => {
                    let st = mcast_core::greedy_st::greedy_st(m, mc);
                    let t = st.traffic(m);
                    (st, t)
                }
                BuiltTopo::Mesh3D(m) => {
                    let st = mcast_core::greedy_st::greedy_st(m, mc);
                    let t = st.traffic(m);
                    (st, t)
                }
                BuiltTopo::Hypercube(c) => {
                    let st = mcast_core::greedy_st::greedy_st(c, mc);
                    let t = st.traffic(c);
                    (st, t)
                }
                BuiltTopo::KAryNCube(c) => {
                    let st = mcast_core::greedy_st::greedy_st(c, mc);
                    let t = st.traffic(c);
                    (st, t)
                }
                BuiltTopo::Custom(g) => {
                    let st = mcast_core::greedy_st::greedy_st(g.as_ref(), mc);
                    let t = st.traffic(g.as_ref());
                    (st, t)
                }
            };
            return Ok(RoutePlan::Steiner {
                edges: st.edges().to_vec(),
                traffic,
            });
        }
        // The modern competitors (DESIGN.md §17) as static routes:
        // DPM's kept partitions are a star of base-routing paths, and
        // a collective schedule's sends merge (round-major) into one
        // delivery tree rooted at the source.
        (built, "dpm") => {
            let router = DpmRouter::new(route_unicast(topo, built)?);
            MulticastRoute::Star(
                router
                    .partitions(mc)
                    .into_iter()
                    .map(PathRoute::new)
                    .collect(),
            )
        }
        (built, "binomial" | "recursive-doubling" | "binomial-reliable") => {
            let unicast = route_unicast(topo, built)?;
            let ranks = CollectiveRouter::ranks(mc);
            let sends = match collective_kind(&scheme.name).expect("matched above") {
                CollectiveKind::Binomial | CollectiveKind::BinomialReliable => {
                    crate::collectives::binomial_schedule(ranks.len())
                }
                CollectiveKind::RecursiveDoubling => {
                    crate::collectives::recursive_doubling_schedule(ranks.len())
                }
            };
            let mut tree = TreeRoute::new(mc.source);
            for s in sends {
                for w in unicast.path(ranks[s.from], ranks[s.to]).windows(2) {
                    if !tree.contains(w[1]) {
                        tree.attach(w[0], w[1]);
                    }
                }
            }
            MulticastRoute::Tree(tree)
        }
        // Custom graphs: the synthesized-unicast schemes, as static
        // routes — a star of certified per-destination paths, or their
        // merged tree.
        (BuiltTopo::Custom(g), "updown-mc") => {
            let routing = mcast_topology::synthesize(g).map_err(|e| err(format!("{topo}: {e}")))?;
            MulticastRoute::Star(
                mc.destinations
                    .iter()
                    .map(|&d| PathRoute::new(routing.path(mc.source, d)))
                    .collect(),
            )
        }
        (BuiltTopo::Custom(g), "updown-tree") => {
            let routing = mcast_topology::synthesize(g).map_err(|e| err(format!("{topo}: {e}")))?;
            let mut tree = TreeRoute::new(mc.source);
            for &d in &mc.destinations {
                let path = routing.path(mc.source, d);
                for w in path.windows(2) {
                    if !tree.contains(w[1]) {
                        tree.attach(w[0], w[1]);
                    }
                }
            }
            MulticastRoute::Tree(tree)
        }
        (BuiltTopo::Custom(_), _) => return Err(not_available(topo, scheme)),
        (BuiltTopo::Mesh2D(m), "dual-path") => {
            MulticastRoute::Star(mcast_core::dual_path::dual_path(m, &mesh2d_snake(m), mc))
        }
        (built, "dual-path") => MulticastRoute::Star(mcast_core::dual_path::dual_path(
            built.as_dyn(),
            &topo.labeling(),
            mc,
        )),
        (BuiltTopo::Mesh2D(m), "multi-path") => MulticastRoute::Star(
            mcast_core::multi_path::multi_path_mesh(m, &mesh2d_snake(m), mc),
        ),
        (built, "multi-path") => MulticastRoute::Star(mcast_core::multi_path::multi_path(
            built.as_dyn(),
            &topo.labeling(),
            mc,
        )),
        (built, "fixed-path") => MulticastRoute::Star(mcast_core::fixed_path::fixed_path(
            built.as_dyn(),
            &topo.labeling(),
            mc,
        )),
        (BuiltTopo::Mesh2D(m), "xfirst-tree") => {
            MulticastRoute::Tree(mcast_core::xfirst::xfirst_tree(m, mc))
        }
        (BuiltTopo::Mesh2D(m), "dc-tree") => MulticastRoute::Forest(
            mcast_core::dc_xfirst_tree::dc_xfirst(m, mc)
                .into_iter()
                .map(|p| p.tree)
                .collect(),
        ),
        _ => return Err(not_available(topo, scheme)),
    };
    route.validate(built.as_dyn(), mc).map_err(RegistryError)?;
    Ok(RoutePlan::Route(route))
}

/// Human-readable channel labels for the trace/heatmap exporters,
/// derived from [`TopoSpec::node_name`].
pub fn channel_names(topo: &TopoSpec, network: &Network) -> Vec<String> {
    (0..network.num_channels())
        .map(|id| {
            let c = network.channel(id);
            format!(
                "{}->{} c{}",
                topo.node_name(c.from),
                topo.node_name(c.to),
                c.class
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modern_schemes_build_static_routes_everywhere_registered() {
        // `mcast route` goes through build_route, not build_router —
        // every registered modern pair must produce a validated static
        // route there too (DPM: star of kept partitions; collectives:
        // the schedule's sends merged into a delivery tree).
        for topo_s in [
            "mesh:6x6",
            "cube:4",
            "kary:4x2",
            "torus:3x2",
            "custom:rand:10x3",
        ] {
            let topo = TopoSpec::parse(topo_s).unwrap();
            let n = topo.num_nodes();
            let mc = MulticastSet::new(1, vec![0, n / 2, n - 1]);
            for name in ["dpm", "binomial", "recursive-doubling", "binomial-reliable"] {
                let plan = build_route(&topo, &SchemeId::named(name), &mc)
                    .unwrap_or_else(|e| panic!("{topo_s}/{name}: {}", e.0));
                match plan {
                    RoutePlan::Route(MulticastRoute::Star(_)) => assert_eq!(name, "dpm"),
                    RoutePlan::Route(MulticastRoute::Tree(_)) => assert_ne!(name, "dpm"),
                    _ => panic!("{topo_s}/{name}: unexpected plan shape"),
                }
            }
        }
    }

    #[test]
    fn topo_spec_parse_display_round_trip() {
        for s in ["mesh:8x8", "mesh:4x3x2", "cube:6", "kary:4x3", "torus:5x2"] {
            let spec = TopoSpec::parse(s).unwrap();
            assert_eq!(spec.to_string(), s);
            assert_eq!(TopoSpec::parse(&spec.to_string()).unwrap(), spec);
            assert_eq!(spec.build().as_dyn().num_nodes(), spec.num_nodes());
        }
        assert!(TopoSpec::parse("mesh:0x4").is_err());
        assert!(TopoSpec::parse("mesh:4").is_err());
        assert!(TopoSpec::parse("mesh:2x2x2x2").is_err());
        assert!(TopoSpec::parse("ring:5").is_err());
        assert!(TopoSpec::parse("kary:4").is_err());
    }

    #[test]
    fn scheme_id_parse_display() {
        let s = SchemeId::parse("vc-multi-path:4").unwrap();
        assert_eq!(s.name, "vc-multi-path");
        assert_eq!(s.lanes, Some(4));
        assert_eq!(s.to_string(), "vc-multi-path:4");
        assert_eq!(SchemeId::parse("dual-path").unwrap().lanes, None);
        assert!(SchemeId::parse("vc-multi-path:0").is_err());
        assert!(SchemeId::parse("vc-multi-path:x").is_err());
        assert!(SchemeId::parse("").is_err());
    }

    #[test]
    fn build_router_covers_all_topologies() {
        for topo in ["mesh:4x4", "mesh:3x3x3", "cube:4", "kary:3x3", "torus:3x3"] {
            let spec = TopoSpec::parse(topo).unwrap();
            for scheme in schemes_for(&spec) {
                let r =
                    build_router(&spec, &scheme).unwrap_or_else(|e| panic!("{topo}/{scheme}: {e}"));
                assert!(!r.name().is_empty());
                assert!(r.required_classes() >= 1);
            }
        }
    }

    #[test]
    fn lanes_rejected_on_non_lane_schemes() {
        let spec = TopoSpec::parse("mesh:4x4").unwrap();
        let bad = SchemeId {
            name: "dual-path".to_string(),
            lanes: Some(3),
        };
        assert!(build_router(&spec, &bad).is_err());
        let vc = SchemeId::parse("vc-multi-path:3").unwrap();
        assert_eq!(build_router(&spec, &vc).unwrap().required_classes(), 3);
    }

    #[test]
    fn fault_router_covers_all_topologies() {
        for topo in ["mesh:4x4", "mesh:3x3x3", "cube:3", "kary:3x2"] {
            let spec = TopoSpec::parse(topo).unwrap();
            for name in ["dual-path", "multi-path", "fixed-path"] {
                let r = build_fault_router(&spec, &SchemeId::named(name))
                    .unwrap_or_else(|e| panic!("{topo}/{name}: {e}"));
                assert!(!r.name().is_empty());
            }
        }
    }

    #[test]
    fn hotspot_and_names_cover_all_topologies() {
        for topo in ["mesh:4x4", "mesh:3x3x3", "cube:4", "torus:3x3"] {
            let spec = TopoSpec::parse(topo).unwrap();
            let hot = spec.hotspot_node();
            assert!(hot < spec.num_nodes(), "{topo}");
            assert!(!spec.node_name(hot).is_empty());
            let network = Network::new(spec.build().as_dyn(), 1);
            let names = channel_names(&spec, &network);
            assert_eq!(names.len(), network.num_channels());
        }
        assert_eq!(
            TopoSpec::parse("mesh:3x3x3").unwrap().node_name(13),
            "(1,1,1)"
        );
    }
}
