//! Closed-scenario replays of the dissertation's deadlock configurations
//! (§6.1) and their resolutions (§6.2).
//!
//! Each scenario injects a fixed set of simultaneous multicasts into an
//! otherwise idle network and runs to quiescence; a `false` return from
//! the engine means the worms are wedged holding channels — an actual
//! deadlock, observed rather than asserted.

use mcast_core::model::MulticastSet;
use mcast_topology::{Channel, Hypercube, Mesh2D, Topology};

use crate::engine::{Engine, MessageId, SimConfig};
use crate::network::Network;
use crate::recovery::{
    FaultMulticastRouter, RecoveryEngine, RecoveryEvent, RecoveryPolicy, RecoveryStats,
};
use crate::routers::MulticastRouter;

/// Per-message diagnosis of a wedged worm: the channels it holds and
/// the channels it is queued on — the raw material of the wait-for
/// cycle (rendered by [`crate::diagnose`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StuckMessage {
    /// The wedged message.
    pub message: MessageId,
    /// Channels its worms currently hold.
    pub holds: Vec<Channel>,
    /// Channels its worms are queued on (held by someone else).
    pub awaits: Vec<Channel>,
}

/// Outcome of a closed scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioOutcome {
    /// Whether every message was delivered.
    pub completed: bool,
    /// Messages still in flight at quiescence (0 when completed).
    pub stuck_messages: usize,
    /// Simulated time at quiescence (ns).
    pub finished_at: u64,
    /// Per-message holds/awaits for each message still in flight
    /// (empty when completed).
    pub stuck: Vec<StuckMessage>,
}

fn stuck_diagnostics(engine: &Engine) -> Vec<StuckMessage> {
    let to_chan = |ids: Vec<usize>| {
        ids.into_iter()
            .map(|id| engine.network().channel(id))
            .collect()
    };
    let mut awaited: std::collections::HashMap<MessageId, Vec<Channel>> = engine
        .awaited_channels()
        .into_iter()
        .map(|(m, ids)| (m, to_chan(ids)))
        .collect();
    engine
        .held_channels()
        .into_iter()
        .map(|(m, ids)| StuckMessage {
            message: m,
            holds: to_chan(ids),
            awaits: awaited.remove(&m).unwrap_or_default(),
        })
        .collect()
}

/// Injects every multicast at `t = 0` through `router` and runs to
/// quiescence.
pub fn run_closed_scenario(
    router: &dyn MulticastRouter,
    topo_network: Network,
    config: SimConfig,
    multicasts: &[MulticastSet],
) -> ScenarioOutcome {
    run_closed_scenario_with_sink(router, topo_network, config, multicasts, None)
}

/// [`run_closed_scenario`] with an optional observability sink on the
/// engine. The outcome is bit-identical with or without a sink (the
/// determinism property the workspace root tests enforce).
pub fn run_closed_scenario_with_sink(
    router: &dyn MulticastRouter,
    topo_network: Network,
    config: SimConfig,
    multicasts: &[MulticastSet],
    sink: Option<Box<dyn mcast_obs::Sink>>,
) -> ScenarioOutcome {
    let mut engine = Engine::new(topo_network, config);
    if let Some(s) = sink {
        engine.set_sink(s);
    }
    for mc in multicasts {
        let plan = router.plan(mc);
        engine.inject(&plan);
    }
    let completed = engine.run_to_quiescence();
    ScenarioOutcome {
        completed,
        stuck_messages: engine.in_flight(),
        finished_at: engine.now(),
        stuck: if completed {
            Vec::new()
        } else {
            stuck_diagnostics(&engine)
        },
    }
}

/// Like [`run_closed_scenario`], but under the recovery engine: wedged
/// messages are aborted and retried per `policy` instead of blocking
/// forever. Returns the outcome plus the recovery accounting and the
/// structured event log.
pub fn run_closed_scenario_recovering(
    router: &dyn FaultMulticastRouter,
    topo_network: Network,
    config: SimConfig,
    policy: RecoveryPolicy,
    multicasts: &[MulticastSet],
) -> (ScenarioOutcome, RecoveryStats, Vec<RecoveryEvent>) {
    run_closed_scenario_recovering_with_sink(router, topo_network, config, policy, multicasts, None)
}

/// [`run_closed_scenario_recovering`] with an optional observability
/// sink on the supervised engine (recovery lifecycle events included).
pub fn run_closed_scenario_recovering_with_sink(
    router: &dyn FaultMulticastRouter,
    topo_network: Network,
    config: SimConfig,
    policy: RecoveryPolicy,
    multicasts: &[MulticastSet],
    sink: Option<Box<dyn mcast_obs::Sink>>,
) -> (ScenarioOutcome, RecoveryStats, Vec<RecoveryEvent>) {
    let mut rec = RecoveryEngine::new(topo_network, config, router, policy);
    if let Some(s) = sink {
        rec.set_sink(s);
    }
    for mc in multicasts {
        rec.submit(mc.clone());
    }
    let completed = rec.run();
    let stuck_messages = rec
        .outcomes()
        .iter()
        .filter(|o| !o.undelivered.is_empty())
        .count();
    let outcome = ScenarioOutcome {
        completed,
        stuck_messages,
        finished_at: rec.now(),
        stuck: stuck_diagnostics(rec.engine()),
    };
    (outcome, rec.stats().clone(), rec.events().to_vec())
}

/// Fig 6.1's configuration: nodes 000 and 001 of a 3-cube simultaneously
/// broadcast with nCUBE-2 (E-cube tree) routing.
pub fn fig_6_1_broadcasts(cube: Hypercube) -> Vec<MulticastSet> {
    let all: Vec<usize> = (0..cube.num_nodes()).collect();
    vec![
        MulticastSet::new(0b000, all.clone()),
        MulticastSet::new(0b001, all),
    ]
}

/// Fig 6.4's configuration on a 3×4 (width 4, height 3) mesh: two
/// multicasts whose X-first trees hold each other's channels.
///
/// `M0`: source (1,1), destinations (0,1)-side and (3,1)-side;
/// `M1`: source (2,1), destinations (0,1) and (3,0).
pub fn fig_6_4_multicasts(mesh: &Mesh2D) -> Vec<MulticastSet> {
    vec![
        MulticastSet::new(mesh.node(1, 1), [mesh.node(0, 2), mesh.node(3, 1)]),
        MulticastSet::new(mesh.node(2, 1), [mesh.node(0, 1), mesh.node(3, 0)]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routers::{
        DoubleChannelTreeRouter, DualPathRouter, EcubeTreeRouter, MultiPathMeshRouter,
        XFirstTreeRouter,
    };

    #[test]
    fn fig_6_1_ncube2_broadcasts_deadlock() {
        // §6.1: "The two broadcasts will block forever."
        let cube = Hypercube::new(3);
        let router = EcubeTreeRouter::new(cube);
        let outcome = run_closed_scenario(
            &router,
            Network::new(&cube, 1),
            SimConfig::default(),
            &fig_6_1_broadcasts(cube),
        );
        assert!(
            !outcome.completed,
            "nCUBE-2 style broadcast trees must deadlock"
        );
        assert_eq!(outcome.stuck_messages, 2);
        // The wedged configuration is diagnosable: each broadcast holds
        // channels while queued on channels the other holds.
        assert_eq!(outcome.stuck.len(), 2);
        for s in &outcome.stuck {
            assert!(!s.holds.is_empty(), "a wedged tree worm holds channels");
            assert!(!s.awaits.is_empty(), "a wedged tree worm awaits channels");
        }
        let held: Vec<_> = outcome.stuck.iter().flat_map(|s| s.holds.iter()).collect();
        for s in &outcome.stuck {
            assert!(
                s.awaits.iter().all(|c| held.contains(&c)),
                "every awaited channel is held by a wedged peer"
            );
        }
    }

    #[test]
    fn fig_6_4_xfirst_trees_deadlock() {
        let mesh = Mesh2D::new(4, 3);
        let router = XFirstTreeRouter::new(mesh);
        let outcome = run_closed_scenario(
            &router,
            Network::new(&mesh, 1),
            SimConfig::default(),
            &fig_6_4_multicasts(&mesh),
        );
        assert!(
            !outcome.completed,
            "X-first multicast trees must deadlock (Fig 6.4)"
        );
        assert_eq!(outcome.stuck_messages, 2);
    }

    #[test]
    fn double_channel_tree_resolves_fig_6_4() {
        // Assertion 1: the double-channel scheme is deadlock-free.
        let mesh = Mesh2D::new(4, 3);
        let router = DoubleChannelTreeRouter::new(mesh);
        let outcome = run_closed_scenario(
            &router,
            Network::new(&mesh, router.required_classes()),
            SimConfig::default(),
            &fig_6_4_multicasts(&mesh),
        );
        assert!(outcome.completed, "double-channel X-first must complete");
    }

    #[test]
    fn dual_path_resolves_both_configurations() {
        let mesh = Mesh2D::new(4, 3);
        let router = DualPathRouter::mesh(mesh);
        let outcome = run_closed_scenario(
            &router,
            Network::new(&mesh, 1),
            SimConfig::default(),
            &fig_6_4_multicasts(&mesh),
        );
        assert!(outcome.completed);

        let cube = Hypercube::new(3);
        let router = DualPathRouter::hypercube(cube);
        let outcome = run_closed_scenario(
            &router,
            Network::new(&cube, 1),
            SimConfig::default(),
            &fig_6_1_broadcasts(cube),
        );
        assert!(outcome.completed, "dual-path broadcasts must not deadlock");
    }

    #[test]
    fn recovery_resolves_fig_6_4_xfirst_trees() {
        use crate::recovery::ObliviousRouter;
        let mesh = Mesh2D::new(4, 3);
        let router = ObliviousRouter::new(XFirstTreeRouter::new(mesh));
        let (outcome, stats, events) = run_closed_scenario_recovering(
            &router,
            Network::new(&mesh, 1),
            SimConfig::default(),
            RecoveryPolicy::default(),
            &fig_6_4_multicasts(&mesh),
        );
        assert!(
            outcome.completed,
            "recovery must resolve the Fig 6.4 deadlock"
        );
        assert_eq!(outcome.stuck_messages, 0);
        assert!(outcome.stuck.is_empty());
        assert!(stats.aborts > 0);
        assert!(!events.is_empty());
    }

    #[test]
    fn saturating_simultaneous_multicasts_complete_with_path_routing() {
        // Stress: every node of a 4×4 mesh simultaneously multicasts to 5
        // destinations; path-based routing must drain completely.
        let mesh = Mesh2D::new(4, 4);
        for router in [true, false] {
            let mcs: Vec<MulticastSet> = (0..16)
                .map(|s| MulticastSet::new(s, (1..=5).map(|i| (s + i * 3) % 16)))
                .collect();
            let outcome = if router {
                run_closed_scenario(
                    &DualPathRouter::mesh(mesh),
                    Network::new(&mesh, 1),
                    SimConfig::default(),
                    &mcs,
                )
            } else {
                run_closed_scenario(
                    &MultiPathMeshRouter::new(mesh),
                    Network::new(&mesh, 1),
                    SimConfig::default(),
                    &mcs,
                )
            };
            assert!(outcome.completed, "path routing drained (dual={router})");
            assert_eq!(outcome.stuck_messages, 0);
        }
    }
}
