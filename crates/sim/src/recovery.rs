//! Fault injection and deadlock recovery supervision for the wormhole
//! engine (DESIGN.md §8).
//!
//! The dissertation's algorithms make deadlock *avoidance* guarantees on
//! healthy networks; this module handles the other regime — channels
//! failing mid-flight, routers that were never deadlock-free (the §6.1
//! tree schemes), and escape worms outside the provably-acyclic
//! subnetworks. A [`RecoveryEngine`] wraps the flit-level engine with a
//! watchdog:
//!
//! * **wedge detection** — the engine quiescing with messages in flight
//!   is a proof of no-progress (no event can ever fire again); the
//!   watchdog picks a victim from the wait-for cycle
//!   ([`crate::diagnose::find_wait_cycle`]) or the set of worms stalled
//!   on all-dead hops;
//! * **per-message timeout** — messages in flight past their deadline
//!   are presumed wedged even if the network is still busy;
//! * **abort–drain–retry** — a victim is torn out of the network
//!   (releasing its channels, which wakes queued waiters), re-planned
//!   against the *current* fault state for its still-undelivered
//!   destinations, and re-injected after a capped exponential backoff;
//!   a bounded retry budget turns persistent failures into recorded
//!   drops instead of livelock.
//!
//! Every action is logged as a [`RecoveryEvent`] and aggregated into
//! [`RecoveryStats`] — the abort/retry/drop counts and delivery ratios
//! the fault-sweep experiments report.

use std::collections::HashMap;

use mcast_core::fault_route::{fault_dual_path, fault_multi_path, fault_multi_path_mesh};
use mcast_core::model::MulticastSet;
use mcast_core::RouteError;
use mcast_topology::labeling::{hypercube_gray, mesh2d_snake};
use mcast_topology::{
    FaultEvent, FaultMask, FaultSchedule, Hypercube, Labeling, Mesh2D, NodeId, Topology,
};

use mcast_obs::{AbortCode, SimEvent, Sink};

use crate::diagnose::find_wait_cycle;
use crate::engine::{Engine, MessageId, SimConfig, Time};
use crate::network::Network;
use crate::plan::DeliveryPlan;
use crate::routers::MulticastRouter;

/// A delivery plan produced under a fault mask.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// The plan; its `destinations` cover exactly the reachable targets.
    pub plan: DeliveryPlan,
    /// Destinations the planner could not reach on the surviving
    /// network (dead nodes or disconnected survivors).
    pub unreachable: Vec<NodeId>,
    /// Worms routed outside the provably deadlock-free subnetworks
    /// (escape paths) — they need watchdog supervision.
    pub escapes: usize,
}

/// A multicast router that can plan around a [`FaultMask`].
///
/// The contract mirrors [`crate::routers::MulticastRouter`], with the
/// mask as an extra input and typed failure instead of panics: planners
/// report dead sources via [`RouteError::SourceFailed`] and per-target
/// unreachability via [`FaultPlan::unreachable`].
pub trait FaultMulticastRouter {
    /// Short name for reports (e.g. `"fault-dual-path"`).
    fn name(&self) -> &'static str;

    /// Channel classes the scheme needs.
    fn required_classes(&self) -> u8 {
        1
    }

    /// Produces a delivery plan for `mc` avoiding everything `mask`
    /// declares dead.
    fn plan(&self, mc: &MulticastSet, mask: &FaultMask) -> Result<FaultPlan, RouteError>;
}

/// Watchdog and retry parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Per-message delivery deadline: a message in flight longer than
    /// this (per attempt) is aborted and retried.
    pub timeout_ns: Time,
    /// Backoff before the first retry.
    pub backoff_base_ns: Time,
    /// Backoff ceiling (the exponential doubling is capped here).
    pub backoff_cap_ns: Time,
    /// Maximum aborts per message before it is dropped.
    pub max_retries: u32,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            timeout_ns: 2_000_000,
            backoff_base_ns: 5_000,
            backoff_cap_ns: 200_000,
            max_retries: 8,
        }
    }
}

/// Why the watchdog aborted a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// The per-message deadline expired.
    Timeout,
    /// The engine wedged (quiescent with messages in flight) and this
    /// message was chosen from the wait-for cycle.
    Deadlock,
    /// A channel failure physically severed the message's worms, or
    /// every copy of a needed hop is dead.
    Broken,
}

impl AbortReason {
    /// The dependency-free observability mirror of this reason.
    fn code(self) -> AbortCode {
        match self {
            AbortReason::Timeout => AbortCode::Timeout,
            AbortReason::Deadlock => AbortCode::Deadlock,
            AbortReason::Broken => AbortCode::Broken,
        }
    }
}

/// One structured recovery action, timestamped in simulated time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryEvent {
    /// A physical link failed (both directions, all classes).
    LinkFailed {
        /// Failure time.
        at: Time,
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// A node failed (all incident links died).
    NodeFailed {
        /// Failure time.
        at: Time,
        /// The failed node.
        node: NodeId,
    },
    /// A message was torn out of the network.
    Aborted {
        /// Abort time.
        at: Time,
        /// Logical message index.
        message: usize,
        /// Aborts of this message so far (1 = first).
        attempt: u32,
        /// What triggered the abort.
        reason: AbortReason,
    },
    /// A message was re-planned and re-injected.
    Retried {
        /// Re-injection time.
        at: Time,
        /// Logical message index.
        message: usize,
        /// Abort count preceding this retry.
        attempt: u32,
        /// Destinations still pending in the retry plan.
        pending: usize,
    },
    /// A message gave up with undelivered destinations.
    Dropped {
        /// Drop time.
        at: Time,
        /// Logical message index.
        message: usize,
        /// Destinations never delivered.
        undelivered: usize,
    },
    /// Every destination of a message was delivered.
    Completed {
        /// Completion time (last destination's tail).
        at: Time,
        /// Logical message index.
        message: usize,
    },
}

/// Aggregated recovery accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Messages submitted.
    pub submitted: usize,
    /// Messages whose every pending destination was delivered.
    pub completed: usize,
    /// Messages dropped with undelivered destinations.
    pub dropped: usize,
    /// Watchdog aborts (all reasons).
    pub aborts: usize,
    /// Successful re-injections.
    pub retries: usize,
    /// Link failures applied.
    pub link_failures: usize,
    /// Node failures applied.
    pub node_failures: usize,
    /// Destinations declared unreachable by the planner.
    pub unreachable_destinations: usize,
    /// Escape worms injected (supervised, not provably deadlock-free).
    pub escape_worms: usize,
}

/// Final per-message record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessageOutcome {
    /// Source node.
    pub source: NodeId,
    /// The full original destination set.
    pub destinations: Vec<NodeId>,
    /// Delivered destinations with their delivery times.
    pub delivered: Vec<(NodeId, Time)>,
    /// Destinations never delivered (unreachable or dropped).
    pub undelivered: Vec<NodeId>,
    /// Abort count.
    pub attempts: u32,
    /// Submission time.
    pub submitted_at: Time,
    /// Time the last pending destination was delivered (`None` if the
    /// message was dropped).
    pub finished_at: Option<Time>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Live,
    WaitingRetry(Time),
    Done,
    Dropped,
}

#[derive(Debug)]
struct Logical {
    source: NodeId,
    destinations: Vec<NodeId>,
    delivered: Vec<(NodeId, Time)>,
    /// Destinations still wanted (the retry set).
    pending: Vec<NodeId>,
    /// Destinations given up on.
    undelivered: Vec<NodeId>,
    attempts: u32,
    submitted_at: Time,
    finished_at: Option<Time>,
    engine_id: Option<MessageId>,
    deadline: Time,
    state: State,
}

/// The supervised engine: faults, watchdog, abort–drain–retry.
pub struct RecoveryEngine<'a> {
    engine: Engine,
    router: &'a dyn FaultMulticastRouter,
    policy: RecoveryPolicy,
    mask: FaultMask,
    schedule: FaultSchedule,
    schedule_pos: usize,
    msgs: Vec<Logical>,
    by_engine: HashMap<MessageId, usize>,
    /// Future submissions, kept sorted by time ascending.
    submissions: Vec<(Time, MulticastSet)>,
    events: Vec<RecoveryEvent>,
    stats: RecoveryStats,
}

impl<'a> RecoveryEngine<'a> {
    /// Creates a supervised engine over `network`.
    pub fn new(
        network: Network,
        config: SimConfig,
        router: &'a dyn FaultMulticastRouter,
        policy: RecoveryPolicy,
    ) -> Self {
        RecoveryEngine {
            engine: Engine::new(network, config),
            router,
            policy,
            mask: FaultMask::none(),
            schedule: FaultSchedule::none(),
            schedule_pos: 0,
            msgs: Vec::new(),
            by_engine: HashMap::new(),
            submissions: Vec::new(),
            events: Vec::new(),
            stats: RecoveryStats::default(),
        }
    }

    /// Applies a static fault mask before traffic starts (failures
    /// present from `t = 0`).
    pub fn with_initial_faults(mut self, mask: &FaultMask) -> Self {
        self.mask = mask.clone();
        self.engine.apply_fault_mask(mask);
        self
    }

    /// Installs a timed fault schedule (failures injected mid-run).
    pub fn set_schedule(&mut self, schedule: FaultSchedule) {
        self.schedule = schedule;
        self.schedule_pos = 0;
    }

    /// The current fault state.
    pub fn mask(&self) -> &FaultMask {
        &self.mask
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.engine.now()
    }

    /// The wrapped engine (read access for diagnostics).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Sets the wrapped engine's worker-lane count (DESIGN.md §15).
    /// Recovery supervision composes freely with space-parallel
    /// execution: the parallel engine is bit-identical to serial, so
    /// abort/retry decisions — which read engine state between events —
    /// see exactly the serial state at exactly the serial times.
    pub fn set_engine_jobs(&mut self, jobs: usize) {
        self.engine.set_engine_jobs(jobs);
    }

    /// Installs an observability sink on the wrapped engine. Beyond the
    /// engine's own events, the supervisor emits the recovery lifecycle
    /// ([`SimEvent::RecoveryAborted`] / `RecoveryRetried` /
    /// `RecoveryDropped` / `RecoveryCompleted`, carrying *logical*
    /// message indices) into the same stream.
    pub fn set_sink(&mut self, sink: Box<dyn Sink>) {
        self.engine.set_sink(sink);
    }

    /// Removes and returns the installed sink, if any.
    pub fn take_sink(&mut self) -> Option<Box<dyn Sink>> {
        self.engine.take_sink()
    }

    /// The recovery event log.
    pub fn events(&self) -> &[RecoveryEvent] {
        &self.events
    }

    /// Aggregated recovery accounting.
    pub fn stats(&self) -> &RecoveryStats {
        &self.stats
    }

    /// Submits a multicast for delivery at the current simulated time.
    /// Returns its logical index.
    pub fn submit(&mut self, mc: MulticastSet) -> usize {
        self.submit_at(self.engine.now(), mc)
    }

    /// Schedules a multicast submission at simulated time `t` (clamped
    /// to now). Returns its logical index.
    pub fn submit_at(&mut self, t: Time, mc: MulticastSet) -> usize {
        let idx = self.msgs.len();
        let t = t.max(self.engine.now());
        self.msgs.push(Logical {
            source: mc.source,
            destinations: mc.destinations.clone(),
            delivered: Vec::new(),
            pending: mc.destinations.clone(),
            undelivered: Vec::new(),
            attempts: 0,
            submitted_at: t,
            finished_at: None,
            engine_id: None,
            deadline: Time::MAX,
            // Parked until its submission time comes due.
            state: State::WaitingRetry(t),
        });
        let pos = self.submissions.partition_point(|&(st, _)| st <= t);
        self.submissions.insert(pos, (t, mc));
        self.stats.submitted += 1;
        idx
    }

    /// Runs until every submitted message is resolved (delivered or
    /// dropped) and the fault schedule is exhausted. Returns `true` iff
    /// every destination of every message was delivered.
    pub fn run(&mut self) -> bool {
        loop {
            self.drain_completed();
            let now = self.engine.now();
            self.apply_due_faults(now);
            self.launch_due(now);
            self.apply_timeouts(now);
            self.drain_completed();

            let next_ext = self.next_external_time();
            // Process engine events, but only up to the next external
            // action (fault, retry release, deadline) — and stop the
            // moment the engine quiesces, so a wedge is caught at the
            // time it forms rather than at the next deadline.
            let mut stepped = false;
            while let Some(te) = self.engine.next_event_time() {
                if next_ext.is_some_and(|x| te > x) {
                    break;
                }
                self.engine.step();
                stepped = true;
            }
            if stepped {
                continue;
            }
            // No engine event before the next external action. Messages
            // in flight on a quiescent engine are wedged: no event can
            // ever fire again without intervention.
            if !self.engine.has_events() && self.engine.in_flight() > 0 {
                self.watchdog_abort();
                continue;
            }
            match next_ext {
                Some(t) => {
                    // Nothing to simulate until the next fault, retry,
                    // or submission — advance the clock.
                    self.engine.run_until(t);
                }
                None => break,
            }
        }
        self.msgs
            .iter()
            .all(|m| m.state == State::Done && m.undelivered.is_empty())
    }

    /// Per-message final records (call after [`RecoveryEngine::run`]).
    pub fn outcomes(&self) -> Vec<MessageOutcome> {
        self.msgs
            .iter()
            .map(|m| MessageOutcome {
                source: m.source,
                destinations: m.destinations.clone(),
                delivered: m.delivered.clone(),
                undelivered: m.undelivered.clone(),
                attempts: m.attempts,
                submitted_at: m.submitted_at,
                finished_at: m.finished_at,
            })
            .collect()
    }

    /// Delivered / total destination counts over all messages.
    pub fn delivery_counts(&self) -> (usize, usize) {
        let delivered = self.msgs.iter().map(|m| m.delivered.len()).sum();
        let total = self.msgs.iter().map(|m| m.destinations.len()).sum();
        (delivered, total)
    }

    fn backoff(&self, attempt: u32) -> Time {
        let shift = attempt.saturating_sub(1).min(20);
        self.policy
            .backoff_base_ns
            .saturating_mul(1u64 << shift)
            .min(self.policy.backoff_cap_ns)
            .max(1)
    }

    /// Deterministic per-message stagger added to the backoff: peers
    /// aborted at the same instant (mutual deadlock, shared link
    /// failure) must not retry in lock-step, or they recreate the same
    /// conflict every round until their budgets run out.
    fn jitter(&self, li: usize) -> Time {
        (li as u64 % 7) * (self.policy.backoff_base_ns / 4).max(1)
    }

    fn next_external_time(&self) -> Option<Time> {
        let mut next: Option<Time> = None;
        let mut consider = |t: Time| {
            next = Some(next.map_or(t, |n: Time| n.min(t)));
        };
        if let Some(&(t, _)) = self.schedule.events().get(self.schedule_pos) {
            consider(t);
        }
        for m in &self.msgs {
            match m.state {
                State::WaitingRetry(t) => consider(t),
                State::Live => consider(m.deadline),
                _ => {}
            }
        }
        next
    }

    fn apply_due_faults(&mut self, now: Time) {
        while let Some(&(t, ev)) = self.schedule.events().get(self.schedule_pos) {
            if t > now {
                break;
            }
            self.schedule_pos += 1;
            let broken = match ev {
                FaultEvent::LinkDown(a, b) => {
                    self.mask.fail_link(a, b);
                    self.stats.link_failures += 1;
                    self.events
                        .push(RecoveryEvent::LinkFailed { at: now, a, b });
                    self.engine.fail_link(a, b)
                }
                FaultEvent::NodeDown(n) => {
                    self.mask.fail_node(n);
                    self.stats.node_failures += 1;
                    self.events
                        .push(RecoveryEvent::NodeFailed { at: now, node: n });
                    self.engine.fail_node(n)
                }
            };
            for engine_id in broken {
                self.abort_and_reschedule(engine_id, AbortReason::Broken);
            }
        }
    }

    fn launch_due(&mut self, now: Time) {
        // First-time submissions whose clock came due.
        while let Some(&(t, _)) = self.submissions.first() {
            if t > now {
                break;
            }
            let (_, mc) = self.submissions.remove(0);
            // Its Logical slot was created by submit_at in order.
            let li = self
                .msgs
                .iter()
                .position(|m| {
                    m.engine_id.is_none()
                        && m.attempts == 0
                        && m.state == State::WaitingRetry(t)
                        && m.source == mc.source
                        && m.destinations == mc.destinations
                })
                .expect("submission has a logical slot");
            self.launch(li, now);
        }
        // Retries whose backoff expired.
        for li in 0..self.msgs.len() {
            if let State::WaitingRetry(t) = self.msgs[li].state {
                if t <= now && self.msgs[li].attempts > 0 {
                    self.launch(li, now);
                }
            }
        }
    }

    fn launch(&mut self, li: usize, now: Time) {
        let source = self.msgs[li].source;
        let pending = self.msgs[li].pending.clone();
        if pending.is_empty() {
            self.finalize(li, now);
            return;
        }
        let mc = MulticastSet::new(source, pending);
        let fault_plan = match self.router.plan(&mc, &self.mask) {
            Ok(fp) => fp,
            Err(_) => {
                // Source dead or planner failure: nothing more can be
                // delivered — drop with everything pending undelivered.
                let rest = std::mem::take(&mut self.msgs[li].pending);
                self.stats.unreachable_destinations += rest.len();
                self.msgs[li].undelivered.extend(rest);
                self.drop_message(li, now);
                return;
            }
        };
        // Unreachable destinations are undeliverable under the current
        // mask; give up on them (a later mask change could revive them,
        // but the fault model here is fail-stop).
        if !fault_plan.unreachable.is_empty() {
            self.stats.unreachable_destinations += fault_plan.unreachable.len();
            self.msgs[li]
                .pending
                .retain(|d| !fault_plan.unreachable.contains(d));
            self.msgs[li]
                .undelivered
                .extend(fault_plan.unreachable.iter().copied());
        }
        if self.msgs[li].pending.is_empty() {
            self.finalize(li, now);
            return;
        }
        self.stats.escape_worms += fault_plan.escapes;
        match self.engine.inject_checked(&fault_plan.plan) {
            Ok(engine_id) => {
                self.by_engine.insert(engine_id, li);
                self.msgs[li].engine_id = Some(engine_id);
                self.msgs[li].deadline = now + self.policy.timeout_ns;
                self.msgs[li].state = State::Live;
                if self.msgs[li].attempts > 0 {
                    self.stats.retries += 1;
                    self.events.push(RecoveryEvent::Retried {
                        at: now,
                        message: li,
                        attempt: self.msgs[li].attempts,
                        pending: self.msgs[li].pending.len(),
                    });
                    let (attempt, pending) = (self.msgs[li].attempts, self.msgs[li].pending.len());
                    self.engine.emit(SimEvent::RecoveryRetried {
                        at: now,
                        message: li,
                        attempt,
                        pending,
                    });
                }
            }
            Err(_) => {
                // The plan is stale against the live fault state (a
                // fault-oblivious router planning through dead hops).
                // Burn an attempt and back off; the budget converts a
                // persistent failure into a drop.
                self.msgs[li].attempts += 1;
                if self.msgs[li].attempts > self.policy.max_retries {
                    let rest = std::mem::take(&mut self.msgs[li].pending);
                    self.msgs[li].undelivered.extend(rest);
                    self.drop_message(li, now);
                } else {
                    let due = now + self.backoff(self.msgs[li].attempts) + self.jitter(li);
                    self.msgs[li].state = State::WaitingRetry(due);
                }
            }
        }
    }

    fn apply_timeouts(&mut self, now: Time) {
        let overdue: Vec<MessageId> = self
            .msgs
            .iter()
            .filter(|m| m.state == State::Live && m.deadline <= now)
            .filter_map(|m| m.engine_id)
            .collect();
        for engine_id in overdue {
            self.abort_and_reschedule(engine_id, AbortReason::Timeout);
        }
    }

    fn watchdog_abort(&mut self) {
        // Victim order: every dead-stalled message first (their releases
        // may unwedge the rest), then one victim from the wait-for
        // cycle, then — defensively — the lowest live id, so the loop
        // always makes progress.
        let stalled = self.engine.stalled_messages();
        let (victims, reason) = if !stalled.is_empty() {
            (stalled, AbortReason::Broken)
        } else if let Some(cycle) = find_wait_cycle(&self.engine) {
            (vec![cycle[0].message], AbortReason::Deadlock)
        } else {
            (
                self.engine.live_messages().into_iter().take(1).collect(),
                AbortReason::Deadlock,
            )
        };
        for v in victims {
            self.abort_and_reschedule(v, reason);
        }
    }

    fn abort_and_reschedule(&mut self, engine_id: MessageId, reason: AbortReason) {
        let Some(aborted) = self.engine.abort_message(engine_id) else {
            return;
        };
        let now = self.engine.now();
        let Some(li) = self.by_engine.remove(&engine_id) else {
            return;
        };
        let m = &mut self.msgs[li];
        for &(d, t) in &aborted.delivered {
            if m.pending.contains(&d) {
                m.delivered.push((d, t));
                m.pending.retain(|&p| p != d);
            }
        }
        m.engine_id = None;
        m.attempts += 1;
        self.stats.aborts += 1;
        let attempt = m.attempts;
        self.events.push(RecoveryEvent::Aborted {
            at: now,
            message: li,
            attempt,
            reason,
        });
        self.engine.emit(SimEvent::RecoveryAborted {
            at: now,
            message: li,
            attempt,
            reason: reason.code(),
        });
        if self.msgs[li].pending.is_empty() {
            // Every destination had already received its tail; only
            // forwarding worms were still draining.
            self.finalize(li, now);
        } else if attempt > self.policy.max_retries {
            let rest = std::mem::take(&mut self.msgs[li].pending);
            self.msgs[li].undelivered.extend(rest);
            self.drop_message(li, now);
        } else {
            let due = now + self.backoff(attempt) + self.jitter(li);
            self.msgs[li].state = State::WaitingRetry(due);
        }
    }

    fn drain_completed(&mut self) {
        for done in self.engine.take_completed() {
            let Some(li) = self.by_engine.remove(&done.id) else {
                continue;
            };
            let m = &mut self.msgs[li];
            for &(d, t) in &done.deliveries {
                if m.pending.contains(&d) {
                    m.delivered.push((d, t));
                    m.pending.retain(|&p| p != d);
                }
            }
            m.engine_id = None;
            if m.pending.is_empty() {
                self.finalize(li, done.completed_at);
            } else {
                // Defensive: the plan should cover every pending
                // destination; if not, retry immediately.
                self.msgs[li].state = State::WaitingRetry(done.completed_at);
            }
        }
    }

    fn finalize(&mut self, li: usize, at: Time) {
        let m = &mut self.msgs[li];
        m.state = State::Done;
        m.finished_at = Some(m.delivered.iter().map(|&(_, t)| t).max().unwrap_or(at));
        self.stats.completed += 1;
        self.events
            .push(RecoveryEvent::Completed { at, message: li });
        self.engine
            .emit(SimEvent::RecoveryCompleted { at, message: li });
    }

    fn drop_message(&mut self, li: usize, at: Time) {
        let m = &mut self.msgs[li];
        m.state = State::Dropped;
        self.stats.dropped += 1;
        let undelivered = m.undelivered.len();
        self.events.push(RecoveryEvent::Dropped {
            at,
            message: li,
            undelivered,
        });
        self.engine.emit(SimEvent::RecoveryDropped {
            at,
            message: li,
            undelivered,
        });
    }
}

// ---------------------------------------------------------------------------
// Fault-aware router implementations
// ---------------------------------------------------------------------------

fn plan_from_fault_paths(
    mc: &MulticastSet,
    routed: mcast_core::FaultRoutedPaths,
) -> Result<FaultPlan, RouteError> {
    // The plan's destination set must cover exactly the reachable
    // targets: the engine treats every plan destination as a delivery
    // obligation, and an unreachable one would wedge the message.
    let reachable: Vec<NodeId> = mc
        .destinations
        .iter()
        .copied()
        .filter(|d| !routed.unreachable.contains(d))
        .collect();
    let trimmed = MulticastSet::new(mc.source, reachable);
    let escapes = routed.count(mcast_core::WormKind::Escape);
    let plan = DeliveryPlan::from_paths(&trimmed, &routed.paths, crate::plan::ClassChoice::Any);
    Ok(FaultPlan {
        plan,
        unreachable: routed.unreachable,
        escapes,
    })
}

/// Fault-aware dual-path routing (§6.2.2 with the fallback ladder of
/// [`mcast_core::fault_route`]) over any labeled topology.
pub struct FaultDualPathRouter<T: Topology> {
    topo: T,
    labeling: Labeling,
}

impl FaultDualPathRouter<Mesh2D> {
    /// Fault-aware dual-path on a snake-labeled 2D mesh.
    pub fn mesh(mesh: Mesh2D) -> Self {
        let labeling = mesh2d_snake(&mesh);
        FaultDualPathRouter {
            topo: mesh,
            labeling,
        }
    }
}

impl FaultDualPathRouter<Hypercube> {
    /// Fault-aware dual-path on a Gray-labeled hypercube.
    pub fn hypercube(cube: Hypercube) -> Self {
        let labeling = hypercube_gray(&cube);
        FaultDualPathRouter {
            topo: cube,
            labeling,
        }
    }
}

impl<T: Topology> FaultDualPathRouter<T> {
    /// Fault-aware dual-path on any topology with a caller-supplied
    /// Hamiltonian-path labeling.
    pub fn with_labeling(topo: T, labeling: Labeling) -> Self {
        FaultDualPathRouter { topo, labeling }
    }
}

impl<T: Topology> FaultMulticastRouter for FaultDualPathRouter<T> {
    fn name(&self) -> &'static str {
        "fault-dual-path"
    }

    fn plan(&self, mc: &MulticastSet, mask: &FaultMask) -> Result<FaultPlan, RouteError> {
        let routed = fault_dual_path(&self.topo, &self.labeling, mask, mc)?;
        plan_from_fault_paths(mc, routed)
    }
}

/// Fault-aware multi-path routing on a snake-labeled 2D mesh (§6.2.2
/// coordinate split) or Gray-labeled hypercube (§6.3 interval split).
pub struct FaultMultiPathRouter<T: Topology> {
    topo: T,
    labeling: Labeling,
    mesh_split: bool,
}

impl FaultMultiPathRouter<Mesh2D> {
    /// Fault-aware multi-path on a snake-labeled 2D mesh.
    pub fn mesh(mesh: Mesh2D) -> Self {
        let labeling = mesh2d_snake(&mesh);
        FaultMultiPathRouter {
            topo: mesh,
            labeling,
            mesh_split: true,
        }
    }
}

impl FaultMultiPathRouter<Hypercube> {
    /// Fault-aware multi-path on a Gray-labeled hypercube.
    pub fn hypercube(cube: Hypercube) -> Self {
        let labeling = hypercube_gray(&cube);
        FaultMultiPathRouter {
            topo: cube,
            labeling,
            mesh_split: false,
        }
    }
}

impl<T: Topology> FaultMultiPathRouter<T> {
    /// Fault-aware interval-split multi-path on a caller-labeled
    /// topology (the §6.3 construction; no mesh coordinate split).
    pub fn with_labeling(topo: T, labeling: Labeling) -> Self {
        FaultMultiPathRouter {
            topo,
            labeling,
            mesh_split: false,
        }
    }
}

/// The interval-split (§6.3) `FaultMulticastRouter` impl, instantiated
/// per concrete topology — a blanket impl would conflict with the
/// `Mesh2D` coordinate-split specialization above.
macro_rules! interval_fault_multi_path {
    ($($t:ty),+) => {$(
        impl FaultMulticastRouter for FaultMultiPathRouter<$t> {
            fn name(&self) -> &'static str {
                "fault-multi-path"
            }

            fn plan(&self, mc: &MulticastSet, mask: &FaultMask) -> Result<FaultPlan, RouteError> {
                if !mask.is_node_alive(mc.source) {
                    return Err(RouteError::SourceFailed(mc.source));
                }
                let routed = fault_multi_path(&self.topo, &self.labeling, mask, mc)?;
                plan_from_fault_paths(mc, routed)
            }
        }
    )+};
}

interval_fault_multi_path!(Hypercube, mcast_topology::Mesh3D, mcast_topology::KAryNCube);

impl FaultMulticastRouter for FaultMultiPathRouter<Mesh2D> {
    fn name(&self) -> &'static str {
        "fault-multi-path"
    }

    fn plan(&self, mc: &MulticastSet, mask: &FaultMask) -> Result<FaultPlan, RouteError> {
        if !mask.is_node_alive(mc.source) {
            return Err(RouteError::SourceFailed(mc.source));
        }
        let routed = if self.mesh_split {
            fault_multi_path_mesh(&self.topo, &self.labeling, mask, mc)?
        } else {
            fault_multi_path(&self.topo, &self.labeling, mask, mc)?
        };
        plan_from_fault_paths(mc, routed)
    }
}

/// Adapter running a fault-*oblivious* [`MulticastRouter`] under the
/// recovery engine: it plans as if the network were healthy (only a dead
/// source is rejected). Stale plans through dead channels are caught by
/// `inject_checked` and burn retry attempts until the budget drops the
/// message — the baseline the fault-aware planners are compared against.
pub struct ObliviousRouter<R: MulticastRouter> {
    inner: R,
}

impl<R: MulticastRouter> ObliviousRouter<R> {
    /// Wraps a fault-oblivious router.
    pub fn new(inner: R) -> Self {
        ObliviousRouter { inner }
    }
}

impl<R: MulticastRouter> FaultMulticastRouter for ObliviousRouter<R> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn required_classes(&self) -> u8 {
        self.inner.required_classes()
    }

    fn plan(&self, mc: &MulticastSet, mask: &FaultMask) -> Result<FaultPlan, RouteError> {
        if !mask.is_node_alive(mc.source) {
            return Err(RouteError::SourceFailed(mc.source));
        }
        // Destinations on dead nodes can never be delivered; report them
        // so the supervisor doesn't wait for the impossible. Everything
        // else is planned blind.
        let (reachable, unreachable): (Vec<NodeId>, Vec<NodeId>) = mc
            .destinations
            .iter()
            .partition(|&&d| mask.is_node_alive(d));
        if reachable.is_empty() {
            return Ok(FaultPlan {
                plan: DeliveryPlan::from_paths(
                    &MulticastSet::new(mc.source, Vec::new()),
                    &[],
                    crate::plan::ClassChoice::Any,
                ),
                unreachable,
                escapes: 0,
            });
        }
        let trimmed = MulticastSet::new(mc.source, reachable);
        let plan = self.inner.plan(&trimmed);
        Ok(FaultPlan {
            plan,
            unreachable,
            escapes: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deadlock::fig_6_1_broadcasts;
    use crate::routers::{DualPathRouter, EcubeTreeRouter};

    fn has_abort(events: &[RecoveryEvent], reason: AbortReason) -> bool {
        events
            .iter()
            .any(|e| matches!(e, RecoveryEvent::Aborted { reason: r, .. } if *r == reason))
    }

    /// The ISSUE acceptance scenario: the §6.1 tree-broadcast deadlock
    /// (Fig 6.1) wedges the plain engine forever, but completes under
    /// the recovery engine with recorded abort/retry events.
    #[test]
    fn fig_6_1_tree_deadlock_completes_under_recovery() {
        let cube = Hypercube::new(3);
        let router = ObliviousRouter::new(EcubeTreeRouter::new(cube));
        let network = Network::new(&cube, router.required_classes());
        let mut rec = RecoveryEngine::new(
            network,
            SimConfig::default(),
            &router,
            RecoveryPolicy::default(),
        );
        for mc in fig_6_1_broadcasts(cube) {
            rec.submit(mc);
        }
        assert!(rec.run(), "both broadcasts must fully deliver");
        let stats = rec.stats();
        assert!(
            stats.aborts > 0,
            "the deadlock must trigger at least one abort"
        );
        assert!(stats.retries > 0, "the aborted broadcast must be retried");
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.dropped, 0);
        assert!(has_abort(rec.events(), AbortReason::Deadlock));
        let (delivered, total) = rec.delivery_counts();
        assert_eq!(delivered, total);
        for o in rec.outcomes() {
            assert!(o.undelivered.is_empty());
            assert!(o.finished_at.is_some());
        }
    }

    /// A link failing mid-flight severs the worm; the supervisor aborts
    /// it and the fault-aware planner reroutes around the dead link.
    #[test]
    fn mid_flight_link_failure_is_rerouted() {
        let mesh = Mesh2D::new(4, 4);
        let router = FaultDualPathRouter::mesh(mesh);
        // Find the first hop the healthy plan takes out of the source, so
        // the scheduled failure is guaranteed to hit a held channel.
        let mc = MulticastSet::new(0, [15usize]);
        let healthy = router.plan(&mc, &FaultMask::none()).unwrap();
        let first = match &healthy.plan.worms[0] {
            crate::plan::PlanWorm::Path(p) => (p.nodes[0], p.nodes[1]),
            _ => unreachable!("dual-path plans are paths"),
        };

        let network = Network::new(&mesh, router.required_classes());
        let mut rec = RecoveryEngine::new(
            network,
            SimConfig::default(),
            &router,
            RecoveryPolicy::default(),
        );
        let mut schedule = FaultSchedule::none();
        // 128 B / 20 MB/s = 6.4 us of tail time; 1 us is mid-transfer.
        schedule.push(1_000, FaultEvent::LinkDown(first.0, first.1));
        rec.set_schedule(schedule);
        rec.submit(mc);
        assert!(rec.run(), "the rerouted retry must deliver");
        let stats = rec.stats();
        assert_eq!(stats.link_failures, 1);
        assert!(stats.aborts >= 1);
        assert!(stats.retries >= 1);
        assert!(has_abort(rec.events(), AbortReason::Broken));
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.dropped, 0);
    }

    /// Static faults present from t=0: the fault-aware planner routes
    /// around them and no recovery action is ever needed.
    #[test]
    fn initial_fault_mask_needs_no_recovery() {
        let mesh = Mesh2D::new(4, 4);
        let router = FaultDualPathRouter::mesh(mesh);
        let mut mask = FaultMask::none();
        mask.fail_link(0, 1);
        mask.fail_link(5, 6);
        let network = Network::new(&mesh, router.required_classes());
        let mut rec = RecoveryEngine::new(
            network,
            SimConfig::default(),
            &router,
            RecoveryPolicy::default(),
        )
        .with_initial_faults(&mask);
        rec.submit(MulticastSet::new(0, [3usize, 12, 15]));
        rec.submit(MulticastSet::new(10, [0usize, 5]));
        assert!(rec.run());
        assert_eq!(rec.stats().aborts, 0);
        assert_eq!(rec.stats().retries, 0);
        assert_eq!(rec.stats().completed, 2);
    }

    /// An oblivious router facing a dead link on its only route burns
    /// its retry budget and the message is dropped, not livelocked.
    #[test]
    fn oblivious_router_exhausts_budget_and_drops() {
        let mesh = Mesh2D::new(4, 1); // a line: no detour exists
        let router = ObliviousRouter::new(DualPathRouter::mesh(mesh));
        let mut mask = FaultMask::none();
        mask.fail_link(1, 2);
        let network = Network::new(&mesh, router.required_classes());
        let policy = RecoveryPolicy {
            max_retries: 3,
            ..RecoveryPolicy::default()
        };
        let mut rec = RecoveryEngine::new(network, SimConfig::default(), &router, policy)
            .with_initial_faults(&mask);
        rec.submit(MulticastSet::new(0, [3usize]));
        assert!(!rec.run(), "the line is severed; delivery must fail");
        let stats = rec.stats();
        assert_eq!(stats.dropped, 1);
        assert_eq!(stats.completed, 0);
        let outcomes = rec.outcomes();
        assert_eq!(outcomes[0].undelivered, vec![3]);
        assert!(outcomes[0].finished_at.is_none());
    }

    /// A node failure mid-run: messages destined to the dead node give
    /// up on it (unreachable), everything else still delivers.
    #[test]
    fn node_failure_marks_dead_destination_unreachable() {
        let mesh = Mesh2D::new(4, 4);
        let router = FaultDualPathRouter::mesh(mesh);
        let network = Network::new(&mesh, router.required_classes());
        let mut rec = RecoveryEngine::new(
            network,
            SimConfig::default(),
            &router,
            RecoveryPolicy::default(),
        );
        let mut schedule = FaultSchedule::none();
        schedule.push(500, FaultEvent::NodeDown(5));
        rec.set_schedule(schedule);
        rec.submit(MulticastSet::new(0, [5usize, 15]));
        assert!(!rec.run(), "node 5 can never be reached");
        let (delivered, total) = rec.delivery_counts();
        assert_eq!(total, 2);
        assert_eq!(delivered, 1, "node 15 still delivers");
        assert_eq!(rec.stats().node_failures, 1);
        assert!(rec.stats().unreachable_destinations >= 1);
        let outcomes = rec.outcomes();
        assert!(outcomes[0].delivered.iter().any(|&(d, _)| d == 15));
        assert_eq!(outcomes[0].undelivered, vec![5]);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mesh = Mesh2D::new(2, 2);
        let router = FaultDualPathRouter::mesh(mesh);
        let network = Network::new(&mesh, 1);
        let policy = RecoveryPolicy {
            backoff_base_ns: 100,
            backoff_cap_ns: 1000,
            ..RecoveryPolicy::default()
        };
        let rec = RecoveryEngine::new(network, SimConfig::default(), &router, policy);
        assert_eq!(rec.backoff(1), 100);
        assert_eq!(rec.backoff(2), 200);
        assert_eq!(rec.backoff(3), 400);
        assert_eq!(rec.backoff(5), 1000, "capped");
        assert_eq!(rec.backoff(40), 1000, "shift clamp holds");
    }

    /// `max_retries: 0` is a legal budget: the first abort drops the
    /// message immediately — no retry, no livelock, outcome recorded.
    #[test]
    fn zero_retry_budget_drops_on_first_abort() {
        let mesh = Mesh2D::new(4, 1); // a line: no detour exists
        let router = ObliviousRouter::new(DualPathRouter::mesh(mesh));
        let mut mask = FaultMask::none();
        mask.fail_link(1, 2);
        let network = Network::new(&mesh, router.required_classes());
        let policy = RecoveryPolicy {
            max_retries: 0,
            ..RecoveryPolicy::default()
        };
        let mut rec = RecoveryEngine::new(network, SimConfig::default(), &router, policy)
            .with_initial_faults(&mask);
        rec.submit(MulticastSet::new(0, [3usize]));
        assert!(!rec.run());
        let stats = rec.stats();
        assert_eq!(stats.dropped, 1);
        assert_eq!(
            stats.retries, 0,
            "a zero budget must never schedule a retry"
        );
        assert_eq!(rec.outcomes()[0].undelivered, vec![3]);
    }

    /// Backoff near the `Time` (u64) limits must saturate, not wrap: a
    /// pathological base close to `u64::MAX` stays pinned at the cap,
    /// and a cap of `u64::MAX` exposes the saturating multiply itself.
    #[test]
    fn backoff_saturates_at_time_limits() {
        let mesh = Mesh2D::new(2, 2);
        let router = FaultDualPathRouter::mesh(mesh);
        let policy = RecoveryPolicy {
            backoff_base_ns: u64::MAX - 1,
            backoff_cap_ns: u64::MAX,
            ..RecoveryPolicy::default()
        };
        let rec = RecoveryEngine::new(
            Network::new(&mesh, 1),
            SimConfig::default(),
            &router,
            policy,
        );
        assert_eq!(rec.backoff(1), u64::MAX - 1);
        assert_eq!(rec.backoff(2), u64::MAX, "2x must saturate, not wrap");
        assert_eq!(rec.backoff(21), u64::MAX, "shift clamp + saturation");
        let capped = RecoveryPolicy {
            backoff_base_ns: u64::MAX / 2,
            backoff_cap_ns: 5_000,
            ..RecoveryPolicy::default()
        };
        let rec = RecoveryEngine::new(
            Network::new(&mesh, 1),
            SimConfig::default(),
            &router,
            capped,
        );
        for attempt in 1..=64 {
            assert_eq!(rec.backoff(attempt), 5_000, "cap pins attempt {attempt}");
        }
        // A zero base degenerates to the 1 ns floor, never to a zero
        // (busy-spin) backoff.
        let zero = RecoveryPolicy {
            backoff_base_ns: 0,
            backoff_cap_ns: 1_000,
            ..RecoveryPolicy::default()
        };
        let rec = RecoveryEngine::new(Network::new(&mesh, 1), SimConfig::default(), &router, zero);
        assert_eq!(rec.backoff(1), 1);
        assert_eq!(rec.backoff(10), 1);
    }

    /// Jitter is a pure function of (message id, policy): two engines
    /// built with the same policy agree on every stagger, the stagger
    /// cycle covers 0..7 quarter-base multiples, and a sub-4 ns base
    /// still produces distinct non-degenerate offsets.
    #[test]
    fn jitter_is_deterministic_for_fixed_policy() {
        let mesh = Mesh2D::new(2, 2);
        let router = FaultDualPathRouter::mesh(mesh);
        let policy = RecoveryPolicy {
            backoff_base_ns: 400,
            ..RecoveryPolicy::default()
        };
        let a = RecoveryEngine::new(
            Network::new(&mesh, 1),
            SimConfig::default(),
            &router,
            policy,
        );
        let b = RecoveryEngine::new(
            Network::new(&mesh, 1),
            SimConfig::default(),
            &router,
            policy,
        );
        for li in 0..32 {
            assert_eq!(a.jitter(li), b.jitter(li), "message {li}");
            assert_eq!(a.jitter(li), ((li as u64) % 7) * 100);
        }
        assert_ne!(
            a.jitter(0),
            a.jitter(1),
            "peers must not retry in lock-step"
        );
        let tiny = RecoveryPolicy {
            backoff_base_ns: 3, // base/4 == 0: the .max(1) floor applies
            ..RecoveryPolicy::default()
        };
        let t = RecoveryEngine::new(Network::new(&mesh, 1), SimConfig::default(), &router, tiny);
        assert_eq!(t.jitter(6), 6);
        assert_eq!(t.jitter(7), 0, "cycle wraps at 7");
    }
}
