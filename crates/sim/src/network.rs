//! The simulated network fabric: a dense table of directed (possibly
//! multi-class) channels over a topology.
//!
//! Wormhole routers allocate *directed channels*; a physical link
//! contributes one channel per direction per class. Single-channel
//! networks have one class; the double-channel networks of §6.2.1 and the
//! Fig 7.8/7.9 experiments have two.

use mcast_topology::{Channel, FaultMask, NodeId, Topology};

/// Dense channel identifier within a [`Network`].
pub type ChannelId = usize;

/// The channel table of a simulated network.
///
/// Channel ids are assigned link-major: the class copies of one directed
/// link occupy consecutive ids `base..base + classes`. Lookups go through
/// a CSR adjacency over the `from` node (a handful of neighbors per node)
/// instead of a hash map — `id_of`/`link_base` sit on the engine's
/// channel-request hot path.
#[derive(Debug, Clone)]
pub struct Network {
    channels: Vec<Channel>,
    classes: u8,
    num_nodes: usize,
    /// Per-channel liveness: a failed physical link marks every class of
    /// both directions dead. Dead channels are never granted.
    alive: Vec<bool>,
    /// CSR row offsets: node `n`'s outgoing links are
    /// `adj[adj_start[n]..adj_start[n + 1]]`.
    adj_start: Vec<u32>,
    /// `(to, base id)` per directed link, grouped by `from`.
    adj: Vec<(NodeId, ChannelId)>,
}

impl Network {
    /// Builds the channel table for `topo` with `classes` copies of every
    /// directed channel (1 = single-channel, 2 = double-channel).
    pub fn new<T: Topology + ?Sized>(topo: &T, classes: u8) -> Self {
        assert!(classes >= 1, "at least one channel class");
        let num_nodes = topo.num_nodes();
        let mut channels = Vec::new();
        let mut links: Vec<(NodeId, NodeId, ChannelId)> = Vec::new();
        for base in topo.channels() {
            links.push((base.from, base.to, channels.len()));
            for class in 0..classes {
                channels.push(Channel::with_class(base.from, base.to, class));
            }
        }
        let mut adj_start = vec![0u32; num_nodes + 1];
        for &(from, _, _) in &links {
            adj_start[from + 1] += 1;
        }
        for n in 0..num_nodes {
            adj_start[n + 1] += adj_start[n];
        }
        let mut adj = vec![(0, 0); links.len()];
        let mut cursor: Vec<u32> = adj_start.clone();
        for &(from, to, base) in &links {
            adj[cursor[from] as usize] = (to, base);
            cursor[from] += 1;
        }
        let alive = vec![true; channels.len()];
        Network {
            channels,
            classes,
            num_nodes,
            alive,
            adj_start,
            adj,
        }
    }

    /// Number of channels (all classes).
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Number of nodes in the underlying topology.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of channel classes.
    pub fn classes(&self) -> u8 {
        self.classes
    }

    /// The channel with a given id.
    pub fn channel(&self, id: ChannelId) -> Channel {
        self.channels[id]
    }

    /// The base (class-0) channel id of the directed `from → to` link;
    /// its class copies occupy the consecutive ids
    /// `base..base + classes`.
    #[inline]
    pub fn link_base(&self, from: NodeId, to: NodeId) -> Option<ChannelId> {
        if from >= self.num_nodes {
            return None;
        }
        let row = self.adj_start[from] as usize..self.adj_start[from + 1] as usize;
        self.adj[row]
            .iter()
            .find(|&&(t, _)| t == to)
            .map(|&(_, base)| base)
    }

    /// Looks up a specific `(from, to, class)` channel.
    pub fn id_of(&self, c: Channel) -> Option<ChannelId> {
        if c.class >= self.classes {
            return None;
        }
        self.link_base(c.from, c.to)
            .map(|base| base + c.class as usize)
    }

    /// All channel ids for the `(from, to)` direction, one per class.
    pub fn ids_of_link(&self, from: NodeId, to: NodeId) -> Vec<ChannelId> {
        match self.link_base(from, to) {
            Some(base) => (base..base + self.classes as usize).collect(),
            None => Vec::new(),
        }
    }

    /// Whether a channel is alive (failed channels are never granted).
    pub fn is_alive(&self, id: ChannelId) -> bool {
        self.alive[id]
    }

    /// Number of channels still alive.
    pub fn num_alive(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Kills one directed channel. Returns `true` if it was alive.
    pub fn kill_channel(&mut self, id: ChannelId) -> bool {
        std::mem::replace(&mut self.alive[id], false)
    }

    /// Kills the physical link between `a` and `b`: every class of both
    /// directions. Returns the ids of the channels that died (those that
    /// were still alive).
    pub fn kill_link(&mut self, a: NodeId, b: NodeId) -> Vec<ChannelId> {
        let mut died = Vec::new();
        for (from, to) in [(a, b), (b, a)] {
            for id in self.ids_of_link(from, to) {
                if self.kill_channel(id) {
                    died.push(id);
                }
            }
        }
        died
    }

    /// Kills every link incident to `node` (node failure = all its
    /// channels fail, §DESIGN.md fault model). Returns the dead channels.
    pub fn kill_node(&mut self, node: NodeId) -> Vec<ChannelId> {
        let mut died = Vec::new();
        for id in 0..self.channels.len() {
            let c = self.channels[id];
            if (c.from == node || c.to == node) && self.kill_channel(id) {
                died.push(id);
            }
        }
        died
    }

    /// Applies a [`FaultMask`]: kills every channel the mask declares
    /// dead. Returns the newly dead channel ids.
    pub fn apply_fault_mask(&mut self, mask: &FaultMask) -> Vec<ChannelId> {
        let mut died = Vec::new();
        for id in 0..self.channels.len() {
            let c = self.channels[id];
            if self.alive[id] && !mask.is_channel_alive(c) {
                self.alive[id] = false;
                died.push(id);
            }
        }
        died
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_topology::Mesh2D;

    #[test]
    fn single_class_table_matches_topology() {
        let m = Mesh2D::new(4, 3);
        let n = Network::new(&m, 1);
        assert_eq!(n.num_channels(), m.num_channels());
        for id in 0..n.num_channels() {
            assert_eq!(n.id_of(n.channel(id)), Some(id));
        }
    }

    #[test]
    fn class_copies_are_consecutive_from_link_base() {
        let m = Mesh2D::new(4, 3);
        let n = Network::new(&m, 2);
        for id in 0..n.num_channels() {
            let c = n.channel(id);
            let base = n.link_base(c.from, c.to).expect("link exists");
            assert_eq!(base + c.class as usize, id);
            assert_eq!(n.channel(base).class, 0);
        }
        assert_eq!(n.link_base(0, 5), None, "0 and 5 are not adjacent");
        assert_eq!(n.link_base(m.num_nodes(), 0), None);
    }

    #[test]
    fn double_channel_table_doubles() {
        let m = Mesh2D::new(4, 3);
        let n = Network::new(&m, 2);
        assert_eq!(n.num_channels(), 2 * m.num_channels());
        let pair = n.ids_of_link(0, 1);
        assert_eq!(pair.len(), 2);
        assert_ne!(pair[0], pair[1]);
        assert_eq!(n.channel(pair[0]).class, 0);
        assert_eq!(n.channel(pair[1]).class, 1);
    }

    #[test]
    fn killing_a_link_kills_both_directions_and_all_classes() {
        let m = Mesh2D::new(4, 3);
        let mut n = Network::new(&m, 2);
        let before = n.num_alive();
        let died = n.kill_link(0, 1);
        assert_eq!(died.len(), 4, "2 classes x 2 directions");
        assert_eq!(n.num_alive(), before - 4);
        for id in n.ids_of_link(0, 1).into_iter().chain(n.ids_of_link(1, 0)) {
            assert!(!n.is_alive(id));
        }
        // Killing again reports nothing new.
        assert!(n.kill_link(0, 1).is_empty());
    }

    #[test]
    fn killing_a_node_kills_incident_channels_only() {
        let m = Mesh2D::new(3, 3);
        let mut n = Network::new(&m, 1);
        let died = n.kill_node(4); // center: 4 neighbors, 8 directed channels
        assert_eq!(died.len(), 8);
        assert!(n.is_alive(n.ids_of_link(0, 1)[0]));
    }

    #[test]
    fn fault_mask_application_matches_mask_semantics() {
        use mcast_topology::FaultMask;
        let m = Mesh2D::new(4, 3);
        let mut n = Network::new(&m, 1);
        let mut mask = FaultMask::none();
        mask.fail_link(0, 1);
        mask.fail_node(5);
        let died = n.apply_fault_mask(&mask);
        assert!(!died.is_empty());
        for id in 0..n.num_channels() {
            assert_eq!(n.is_alive(id), mask.is_channel_alive(n.channel(id)));
        }
    }
}
