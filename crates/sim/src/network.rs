//! The simulated network fabric: a dense table of directed (possibly
//! multi-class) channels over a topology.
//!
//! Wormhole routers allocate *directed channels*; a physical link
//! contributes one channel per direction per class. Single-channel
//! networks have one class; the double-channel networks of §6.2.1 and the
//! Fig 7.8/7.9 experiments have two.

use std::collections::HashMap;

use mcast_topology::{Channel, NodeId, Topology};

/// Dense channel identifier within a [`Network`].
pub type ChannelId = usize;

/// The channel table of a simulated network.
#[derive(Debug, Clone)]
pub struct Network {
    channels: Vec<Channel>,
    index: HashMap<Channel, ChannelId>,
    classes: u8,
    num_nodes: usize,
}

impl Network {
    /// Builds the channel table for `topo` with `classes` copies of every
    /// directed channel (1 = single-channel, 2 = double-channel).
    pub fn new<T: Topology + ?Sized>(topo: &T, classes: u8) -> Self {
        assert!(classes >= 1, "at least one channel class");
        let mut channels = Vec::new();
        for base in topo.channels() {
            for class in 0..classes {
                channels.push(Channel::with_class(base.from, base.to, class));
            }
        }
        let index = channels.iter().copied().enumerate().map(|(i, c)| (c, i)).collect();
        Network { channels, index, classes, num_nodes: topo.num_nodes() }
    }

    /// Number of channels (all classes).
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Number of nodes in the underlying topology.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of channel classes.
    pub fn classes(&self) -> u8 {
        self.classes
    }

    /// The channel with a given id.
    pub fn channel(&self, id: ChannelId) -> Channel {
        self.channels[id]
    }

    /// Looks up a specific `(from, to, class)` channel.
    pub fn id_of(&self, c: Channel) -> Option<ChannelId> {
        self.index.get(&c).copied()
    }

    /// All channel ids for the `(from, to)` direction, one per class.
    pub fn ids_of_link(&self, from: NodeId, to: NodeId) -> Vec<ChannelId> {
        (0..self.classes)
            .filter_map(|class| self.id_of(Channel::with_class(from, to, class)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_topology::Mesh2D;

    #[test]
    fn single_class_table_matches_topology() {
        let m = Mesh2D::new(4, 3);
        let n = Network::new(&m, 1);
        assert_eq!(n.num_channels(), m.num_channels());
        for id in 0..n.num_channels() {
            assert_eq!(n.id_of(n.channel(id)), Some(id));
        }
    }

    #[test]
    fn double_channel_table_doubles() {
        let m = Mesh2D::new(4, 3);
        let n = Network::new(&m, 2);
        assert_eq!(n.num_channels(), 2 * m.num_channels());
        let pair = n.ids_of_link(0, 1);
        assert_eq!(pair.len(), 2);
        assert_ne!(pair[0], pair[1]);
        assert_eq!(n.channel(pair[0]).class, 0);
        assert_eq!(n.channel(pair[1]).class, 1);
    }
}
