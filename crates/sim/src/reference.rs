//! The golden reference simulator (DESIGN.md §12).
//!
//! A deliberately naive re-implementation of the wormhole engine's
//! semantics, used as the executable oracle of the differential
//! conformance harness (`mcast_workload::conform`, `mcast verify`). It
//! trades every optimization the hot engine carries for obviousness:
//!
//! * a plain `BinaryHeap<Reverse<(Time, seq, Event)>>` instead of the
//!   two-level calendar queue (`equeue.rs`);
//! * Vec-of-structs worm state with per-edge `Vec<usize>` child lists
//!   and per-group `Vec<usize>` member lists instead of the shared
//!   index arenas;
//! * freshly allocated worm slots per message — no free-list reuse, no
//!   incarnation counters, no scratch tables.
//!
//! What it must share with [`crate::engine::Engine`] — the *semantics
//! contract* — is spelled out in DESIGN.md §12: the global event order
//! `(time, insertion seq)`, the channel grant policy (first live idle
//! class copy, else FIFO on the least-loaded live copy with the lowest
//! class winning ties), whole-worm-exclusive channels, single-flit
//! input buffering with credit at transfer start, the lock-step
//! all-or-nothing branch groups of §6.1, circuit establishment
//! chaining, per-hop timing (`flit_time`, header `routing_delay`), and
//! delivery at the tail crossing of a destination's incoming channel.
//! Two engines honoring that contract produce bit-identical delivery
//! traces; the fuzzer asserts exactly that.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use mcast_topology::{FaultMask, NodeId};

use crate::engine::{CompletedMessage, MessageId, SimConfig, Time};
use crate::error::SimError;
use crate::network::{ChannelId, Network};
use crate::plan::{ClassChoice, DeliveryPlan, PlanWorm};

/// One edge of a worm, self-contained (no arenas).
#[derive(Debug, Clone)]
struct RefEdge {
    from: NodeId,
    to: NodeId,
    class: ClassChoice,
    /// Edge feeding this one (`None` = fed directly by the source).
    upstream: Option<usize>,
    /// Edges fed by this edge's head node, ascending edge index.
    children: Vec<usize>,
    /// Branch group (siblings sharing a feed node).
    group: usize,
    channel: Option<ChannelId>,
    waiting: bool,
    crossed: u32,
    busy: bool,
    done: bool,
}

/// A branch group: the all-or-nothing acquisition unit of §6.1.
#[derive(Debug, Clone)]
struct RefGroup {
    /// Member edges, ascending edge index.
    members: Vec<usize>,
    owned: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RefKind {
    Path,
    Tree,
    Circuit,
}

#[derive(Debug)]
struct RefWorm {
    message: MessageId,
    kind: RefKind,
    edges: Vec<RefEdge>,
    groups: Vec<RefGroup>,
    edges_done: usize,
    active: bool,
    stalled: bool,
    /// Staged worms: feeders not yet complete. Held at the source (no
    /// channel requested) while nonzero.
    deps_pending: u32,
    /// Worms released in-cascade by this worm's completion event.
    dependents: Vec<usize>,
}

#[derive(Debug, Default)]
struct RefChan {
    owner: Option<(usize, usize)>,
    queue: VecDeque<(usize, usize)>,
}

#[derive(Debug)]
struct RefMessage {
    id: MessageId,
    source: NodeId,
    injected_at: Time,
    deliveries: Vec<(NodeId, Option<Time>)>,
    worms_total: usize,
    worms_done: usize,
    traffic: usize,
}

/// Events, totally ordered by `(time, seq)` exactly as the engine's
/// calendar queue orders them. The derived `Ord` on the payload never
/// decides (seq is unique) but `BinaryHeap` requires it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum RefEvent {
    TransferComplete { worm: usize, edge: usize },
    RequestChannel { worm: usize, edge: usize },
}

/// The obviously-correct reference wormhole simulator.
///
/// Mirrors the public result-producing surface of
/// [`Engine`](crate::engine::Engine) — `inject`/`inject_checked`,
/// `run_until`, `run_to_quiescence`, `take_completed`, `flit_hops` —
/// over the same [`Network`] and [`DeliveryPlan`] types, so the
/// conformance harness can drive both with identical inputs and demand
/// identical outputs.
pub struct ReferenceEngine {
    config: SimConfig,
    network: Network,
    channels: Vec<RefChan>,
    worms: Vec<RefWorm>,
    messages: Vec<Option<RefMessage>>,
    completed: Vec<CompletedMessage>,
    events: BinaryHeap<Reverse<(Time, u64, RefEvent)>>,
    next_seq: u64,
    now: Time,
    in_flight: usize,
    next_message_id: MessageId,
    flit_time: Time,
    flits: u32,
    flit_hops: u64,
}

impl ReferenceEngine {
    /// Creates a reference engine over a network with the given
    /// physical parameters.
    pub fn new(network: Network, config: SimConfig) -> Self {
        let channels = (0..network.num_channels())
            .map(|_| RefChan::default())
            .collect();
        ReferenceEngine {
            flit_time: config.flit_time_ns(),
            flits: config.flits_per_message(),
            config,
            network,
            channels,
            worms: Vec::new(),
            messages: Vec::new(),
            completed: Vec::new(),
            events: BinaryHeap::new(),
            next_seq: 0,
            now: 0,
            in_flight: 0,
            next_message_id: 0,
            flit_hops: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The physical configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The network fabric.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Messages injected but not yet fully delivered.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Total flit hops simulated so far.
    pub fn flit_hops(&self) -> u64 {
        self.flit_hops
    }

    /// Drains the list of completed messages.
    pub fn take_completed(&mut self) -> Vec<CompletedMessage> {
        std::mem::take(&mut self.completed)
    }

    /// Ids of messages injected but not completed.
    pub fn live_messages(&self) -> Vec<MessageId> {
        self.messages
            .iter()
            .enumerate()
            .filter_map(|(i, m)| m.as_ref().map(|_| i))
            .collect()
    }

    /// Applies a [`FaultMask`] to the fabric before any traffic runs.
    /// The reference engine models static (pre-run) faults only — the
    /// dynamic fail-abort-retry machinery stays with the optimized
    /// engine and its recovery layer.
    pub fn apply_fault_mask(&mut self, mask: &FaultMask) {
        assert_eq!(
            self.in_flight, 0,
            "reference engine supports pre-injection fault masks only"
        );
        self.network.apply_fault_mask(mask);
    }

    /// Injects a multicast message at the current simulation time.
    /// Returns its id. Zero-worm plans complete immediately.
    pub fn inject(&mut self, plan: &DeliveryPlan) -> MessageId {
        let id = self.next_message_id;
        self.next_message_id += 1;
        let mut deliveries: Vec<(NodeId, Option<Time>)> =
            plan.destinations.iter().map(|&d| (d, None)).collect();
        // Degenerate source-only "deliveries" complete at injection.
        for (d, t) in deliveries.iter_mut() {
            if *d == plan.source {
                *t = Some(self.now);
            }
        }
        self.messages.push(Some(RefMessage {
            id,
            source: plan.source,
            injected_at: self.now,
            deliveries,
            worms_total: plan.worms.len(),
            worms_done: 0,
            traffic: plan.traffic(),
        }));
        self.in_flight += 1;
        if plan.worms.is_empty() {
            self.finish_message(id);
            return id;
        }
        // Build every worm first so staged dependencies can be wired by
        // plan index, then issue root requests in worm order — the same
        // request order as the engine.
        let mut slots: Vec<usize> = Vec::with_capacity(plan.worms.len());
        for w in &plan.worms {
            slots.push(self.build_worm(id, w));
        }
        for (i, pw) in plan.worms.iter().enumerate() {
            if let PlanWorm::Staged(s) = pw {
                let widx = slots[i];
                self.worms[widx].deps_pending = s.after.len() as u32;
                for &a in &s.after {
                    debug_assert!(
                        (a as usize) < i,
                        "staged worm {i} depends on worm {a}, not an earlier one"
                    );
                    let feeder = slots[a as usize];
                    self.worms[feeder].dependents.push(widx);
                }
            }
        }
        for &widx in &slots {
            if self.worms[widx].deps_pending > 0 {
                // Held at the source until the last feeder completes.
                continue;
            }
            match self.worms[widx].kind {
                RefKind::Circuit => {
                    // The control packet claims one channel at a time.
                    self.request_channel(widx, 0);
                }
                RefKind::Path | RefKind::Tree => {
                    for e in 0..self.worms[widx].edges.len() {
                        if self.worms[widx].edges[e].upstream.is_none() {
                            self.request_channel(widx, e);
                        }
                    }
                }
            }
        }
        id
    }

    /// Like [`ReferenceEngine::inject`], but validates every hop against
    /// the channel table and the current fault state first — the same
    /// screen as [`Engine::inject_checked`](crate::Engine::inject_checked).
    pub fn inject_checked(&mut self, plan: &DeliveryPlan) -> Result<MessageId, SimError> {
        for (i, w) in plan.worms.iter().enumerate() {
            match w {
                PlanWorm::Path(p) | PlanWorm::Circuit(p) => {
                    if p.nodes.len() < 2 {
                        return Err(SimError::EmptyWorm);
                    }
                    for hop in p.nodes.windows(2) {
                        self.check_hop(hop[0], hop[1], p.class)?;
                    }
                }
                PlanWorm::Staged(s) => {
                    if s.path.nodes.len() < 2 {
                        return Err(SimError::EmptyWorm);
                    }
                    for hop in s.path.nodes.windows(2) {
                        self.check_hop(hop[0], hop[1], s.path.class)?;
                    }
                    if s.after.iter().any(|&a| a as usize >= i) {
                        return Err(SimError::BadDependency { worm: i });
                    }
                }
                PlanWorm::Tree(t) => {
                    if t.edges.is_empty() {
                        return Err(SimError::EmptyWorm);
                    }
                    for &(from, to, class) in &t.edges {
                        self.check_hop(from, to, class)?;
                    }
                }
            }
        }
        Ok(self.inject(plan))
    }

    fn check_hop(&self, from: NodeId, to: NodeId, class: ClassChoice) -> Result<(), SimError> {
        let ids: Vec<ChannelId> = match class {
            ClassChoice::Fixed(c) => self
                .network
                .id_of(mcast_topology::Channel::with_class(from, to, c))
                .into_iter()
                .collect(),
            ClassChoice::Any => self.network.ids_of_link(from, to),
        };
        if ids.is_empty() {
            return Err(SimError::UnknownChannel { from, to });
        }
        if !ids.iter().any(|&c| self.network.is_alive(c)) {
            return Err(SimError::DeadChannel { from, to });
        }
        Ok(())
    }

    fn build_worm(&mut self, message: MessageId, plan: &PlanWorm) -> usize {
        let kind = match plan {
            PlanWorm::Path(_) | PlanWorm::Staged(_) => RefKind::Path,
            PlanWorm::Tree(_) => RefKind::Tree,
            PlanWorm::Circuit(_) => RefKind::Circuit,
        };
        let mut edges: Vec<RefEdge> = Vec::new();
        match plan {
            PlanWorm::Path(p)
            | PlanWorm::Circuit(p)
            | PlanWorm::Staged(crate::plan::PlanStage { path: p, .. }) => {
                assert!(p.nodes.len() >= 2, "path worm needs at least one hop");
                let hops = p.nodes.len() - 1;
                for (i, win) in p.nodes.windows(2).enumerate() {
                    edges.push(RefEdge {
                        from: win[0],
                        to: win[1],
                        class: p.class,
                        upstream: if i == 0 { None } else { Some(i - 1) },
                        children: if i + 1 < hops {
                            vec![i + 1]
                        } else {
                            Vec::new()
                        },
                        group: 0, // assigned below
                        channel: None,
                        waiting: false,
                        crossed: 0,
                        busy: false,
                        done: false,
                    });
                }
            }
            PlanWorm::Tree(t) => {
                assert!(!t.edges.is_empty(), "tree worm needs at least one edge");
                // `feeder[node]` = edge index that feeds `node`.
                let mut feeder: HashMap<NodeId, usize> = HashMap::new();
                for (i, &(from, to, class)) in t.edges.iter().enumerate() {
                    let upstream = if from == t.root {
                        None
                    } else {
                        Some(
                            *feeder
                                .get(&from)
                                .unwrap_or_else(|| panic!("tree edge {from}->{to} has no feeder")),
                        )
                    };
                    assert!(
                        !feeder.contains_key(&to),
                        "tree plan visits node {to} twice"
                    );
                    feeder.insert(to, i);
                    edges.push(RefEdge {
                        from,
                        to,
                        class,
                        upstream,
                        children: Vec::new(),
                        group: 0, // assigned below
                        channel: None,
                        waiting: false,
                        crossed: 0,
                        busy: false,
                        done: false,
                    });
                }
                // Children in ascending edge index order.
                for i in 0..edges.len() {
                    if let Some(u) = edges[i].upstream {
                        edges[u].children.push(i);
                    }
                }
            }
        }
        // Group assignment: siblings sharing the same feeding edge (or
        // the root) form one branch group. Circuits are one group.
        let mut groups: Vec<RefGroup> = Vec::new();
        match kind {
            RefKind::Circuit => {
                groups.push(RefGroup {
                    members: (0..edges.len()).collect(),
                    owned: 0,
                });
            }
            RefKind::Path => {
                for (i, e) in edges.iter_mut().enumerate() {
                    e.group = i;
                    groups.push(RefGroup {
                        members: vec![i],
                        owned: 0,
                    });
                }
            }
            RefKind::Tree => {
                // First occurrence of a feed key creates the group;
                // members accumulate in ascending edge index order.
                let mut key_to_group: HashMap<Option<usize>, usize> = HashMap::new();
                for (i, e) in edges.iter_mut().enumerate() {
                    let g = *key_to_group.entry(e.upstream).or_insert_with(|| {
                        groups.push(RefGroup {
                            members: Vec::new(),
                            owned: 0,
                        });
                        groups.len() - 1
                    });
                    e.group = g;
                    groups[g].members.push(i);
                }
            }
        }
        self.worms.push(RefWorm {
            message,
            kind,
            edges,
            groups,
            edges_done: 0,
            active: true,
            stalled: false,
            deps_pending: 0,
            dependents: Vec::new(),
        });
        self.worms.len() - 1
    }

    /// Requests a channel for edge `e` of worm `w`: grants the first
    /// live idle class copy, otherwise queues FIFO on the least-loaded
    /// live copy (lowest class wins queue-length ties).
    fn request_channel(&mut self, w: usize, e: usize) {
        let (from, to, class) = {
            let es = &self.worms[w].edges[e];
            if es.channel.is_some() || es.waiting || es.done {
                // Idempotence, as in the engine: circuit establishment
                // and header arrival may both ask for the same edge.
                return;
            }
            (es.from, es.to, es.class)
        };
        let (base, count) = match class {
            ClassChoice::Fixed(c) => {
                let id = self
                    .network
                    .id_of(mcast_topology::Channel::with_class(from, to, c))
                    .unwrap_or_else(|| panic!("channel {from}->{to} class {c} not in network"));
                (id, 1)
            }
            ClassChoice::Any => {
                let base = self
                    .network
                    .link_base(from, to)
                    .unwrap_or_else(|| panic!("no channel {from}->{to} in network"));
                (base, self.network.classes() as usize)
            }
        };
        let mut best: Option<(usize, ChannelId)> = None;
        for chan in base..base + count {
            if !self.network.is_alive(chan) {
                continue;
            }
            if self.channels[chan].owner.is_none() {
                self.grant(chan, w, e);
                return;
            }
            let qlen = self.channels[chan].queue.len();
            if best.is_none_or(|(len, _)| qlen < len) {
                best = Some((qlen, chan));
            }
        }
        let Some((_, target)) = best else {
            // Every copy of this hop is dead: wedged by hardware.
            self.worms[w].stalled = true;
            return;
        };
        self.channels[target].queue.push_back((w, e));
        self.worms[w].edges[e].waiting = true;
    }

    fn grant(&mut self, chan: ChannelId, w: usize, e: usize) {
        assert!(
            self.channels[chan].owner.is_none(),
            "double grant of channel {chan}"
        );
        self.channels[chan].owner = Some((w, e));
        let g = self.worms[w].edges[e].group;
        self.worms[w].edges[e].channel = Some(chan);
        self.worms[w].edges[e].waiting = false;
        self.worms[w].groups[g].owned += 1;
        if self.worms[w].kind == RefKind::Circuit {
            // Circuit establishment: the control packet advances to the
            // next hop after its per-hop setup time.
            let next = e + 1;
            if next < self.worms[w].edges.len() {
                self.schedule(
                    self.now + self.config.circuit_setup_ns,
                    RefEvent::RequestChannel {
                        worm: w,
                        edge: next,
                    },
                );
            }
        }
        if self.worms[w].groups[g].owned == self.worms[w].groups[g].members.len() {
            // Group open: all its edges may start moving flits
            // (ascending edge index, matching the engine's arena walk).
            let members = self.worms[w].groups[g].members.clone();
            for i in members {
                self.try_start(w, i);
            }
        }
    }

    fn release(&mut self, chan: ChannelId) {
        self.channels[chan].owner = None;
        if !self.network.is_alive(chan) {
            let waiters: Vec<(usize, usize)> = self.channels[chan].queue.drain(..).collect();
            for (w, e) in waiters {
                if self.worms[w].active && self.worms[w].edges[e].waiting {
                    self.worms[w].edges[e].waiting = false;
                    self.request_channel(w, e);
                }
            }
            return;
        }
        while let Some((w, e)) = self.channels[chan].queue.pop_front() {
            // Skip stale entries (worm granted elsewhere or finished).
            if self.worms[w].active && self.worms[w].edges[e].waiting {
                self.grant(chan, w, e);
                return;
            }
        }
    }

    /// Whether edge `e` can transfer its next flit now; if so, schedule
    /// the completion event. The condition set and the retry order are
    /// the semantics contract of DESIGN.md §12, mirrored line for line
    /// from the engine.
    fn try_start(&mut self, w: usize, e: usize) {
        let wst = &self.worms[w];
        if !wst.active {
            return;
        }
        let es = &wst.edges[e];
        if es.channel.is_none() {
            return;
        }
        if es.busy || es.done {
            return;
        }
        let flit = es.crossed;
        if flit >= self.flits {
            return;
        }
        let grp = &wst.groups[es.group];
        if grp.owned < grp.members.len() {
            return; // lock-step: the branch group is not fully owned yet
        }
        let upstream = es.upstream;
        // Upstream flit availability.
        if let Some(u) = upstream {
            if wst.edges[u].crossed <= flit {
                return;
            }
        } else if wst.kind == RefKind::Tree {
            // Source-fed tree edges replicate from one injection buffer:
            // a flit leaves it only when every root branch took it.
            let mut min_taken = u32::MAX;
            for &s in &grp.members {
                let sib = &wst.edges[s];
                min_taken = min_taken.min(sib.crossed + u32::from(sib.busy));
            }
            if flit >= min_taken + self.config.buffer_flits {
                return;
            }
        }
        // Downstream buffer space at the head node (credit frees at
        // transfer start, so children mid-transfer count as outflow).
        if !es.children.is_empty() {
            let mut outflow = u32::MAX;
            for &c in &es.children {
                let ch = &wst.edges[c];
                outflow = outflow.min(ch.crossed + u32::from(ch.busy));
            }
            if es.crossed - outflow.min(es.crossed) >= self.config.buffer_flits {
                return;
            }
        }
        let kind = wst.kind;
        // Start the transfer: headers pay the routing delay.
        let dt = self.flit_time
            + if flit == 0 {
                self.config.routing_delay_ns
            } else {
                0
            };
        self.worms[w].edges[e].busy = true;
        self.flit_hops += 1;
        self.schedule(
            self.now + dt,
            RefEvent::TransferComplete { worm: w, edge: e },
        );
        // Starting frees a buffer slot upstream: retry the feeder, or
        // the root-group siblings.
        if let Some(u) = upstream {
            self.try_start(w, u);
        } else if kind == RefKind::Tree {
            self.try_start_siblings(w, e);
        }
    }

    /// Retries every group sibling of edge `e` (ascending edge index,
    /// skipping `e` itself).
    fn try_start_siblings(&mut self, w: usize, e: usize) {
        let members = self.worms[w].groups[self.worms[w].edges[e].group]
            .members
            .clone();
        for s in members {
            if s != e {
                self.try_start(w, s);
            }
        }
    }

    fn schedule(&mut self, at: Time, ev: RefEvent) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push(Reverse((at, seq, ev)));
    }

    /// Processes a single event. Returns `false` if no events remain.
    pub fn step(&mut self) -> bool {
        let Some(Reverse((t, _, ev))) = self.events.pop() else {
            return false;
        };
        debug_assert!(t >= self.now, "time must not go backwards");
        self.now = t;
        match ev {
            RefEvent::TransferComplete { worm, edge } => {
                if self.worms[worm].active {
                    self.on_transfer_complete(worm, edge);
                }
            }
            RefEvent::RequestChannel { worm, edge } => {
                if self.worms[worm].active
                    && self.worms[worm].edges[edge].channel.is_none()
                    && !self.worms[worm].edges[edge].waiting
                {
                    self.request_channel(worm, edge);
                }
            }
        }
        true
    }

    /// Runs until no events remain or the simulation time would exceed
    /// `until`. Returns the number of events processed.
    pub fn run_until(&mut self, until: Time) -> usize {
        let mut n = 0;
        while let Some(&Reverse((t, _, _))) = self.events.peek() {
            if t > until {
                break;
            }
            self.step();
            n += 1;
        }
        self.now = self.now.max(until);
        n
    }

    /// Runs until quiescent. Returns `true` if every injected message
    /// completed — `false` means the network is deadlocked.
    pub fn run_to_quiescence(&mut self) -> bool {
        while self.step() {}
        self.in_flight == 0
    }

    fn on_transfer_complete(&mut self, w: usize, e: usize) {
        let (crossed, upstream, children, kind) = {
            let wst = &mut self.worms[w];
            let kind = wst.kind;
            let es = &mut wst.edges[e];
            es.busy = false;
            es.crossed += 1;
            (es.crossed, es.upstream, es.children.clone(), kind)
        };
        if crossed == 1 && kind != RefKind::Circuit {
            // Header arrived at head(e): claim the next channels.
            for &c in &children {
                self.request_channel(w, c);
            }
        }
        if crossed == self.flits {
            // Tail crossed: release the channel, record delivery.
            let chan = self.worms[w].edges[e]
                .channel
                .take()
                .expect("owned while crossing");
            self.worms[w].edges[e].done = true;
            self.release(chan);
            let head = self.worms[w].edges[e].to;
            let msg_id = self.worms[w].message;
            self.record_delivery(msg_id, head);
            self.worms[w].edges_done += 1;
            if self.worms[w].edges_done == self.worms[w].edges.len() {
                self.worms[w].active = false;
                // Release staged dependents in-cascade — same position
                // as the engine, so event seq assignment matches bit
                // for bit.
                let deps = std::mem::take(&mut self.worms[w].dependents);
                for d in deps {
                    if self.worms[d].active && self.worms[d].deps_pending > 0 {
                        self.worms[d].deps_pending -= 1;
                        if self.worms[d].deps_pending == 0 {
                            // A staged worm is a path worm: its single
                            // root is edge 0.
                            self.request_channel(d, 0);
                        }
                    }
                }
                let m = self.messages[msg_id].as_mut().expect("message live");
                m.worms_done += 1;
                if m.worms_done == m.worms_total {
                    self.finish_message(msg_id);
                }
            }
        }
        // Progress may unblock this edge, the upstream edge, the
        // children, and — for root edges — the group siblings.
        self.try_start(w, e);
        if let Some(u) = upstream {
            self.try_start(w, u);
        } else if kind == RefKind::Tree {
            self.try_start_siblings(w, e);
        }
        for &c in &children {
            self.try_start(w, c);
        }
    }

    fn record_delivery(&mut self, msg: MessageId, node: NodeId) {
        let now = self.now;
        let m = self.messages[msg].as_mut().expect("message live");
        for (d, t) in m.deliveries.iter_mut() {
            if *d == node && t.is_none() {
                *t = Some(now);
            }
        }
    }

    fn finish_message(&mut self, msg: MessageId) {
        let m = self.messages[msg].take().expect("message live");
        let deliveries: Vec<(NodeId, Time)> = m
            .deliveries
            .iter()
            .map(|&(d, t)| {
                (
                    d,
                    t.unwrap_or_else(|| {
                        panic!("destination {d} never delivered by message {}", m.id)
                    }),
                )
            })
            .collect();
        let completed_at = deliveries
            .iter()
            .map(|&(_, t)| t)
            .max()
            .unwrap_or(m.injected_at);
        self.completed.push(CompletedMessage {
            id: m.id,
            source: m.source,
            injected_at: m.injected_at,
            completed_at,
            deliveries,
            traffic: m.traffic,
        });
        self.in_flight -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::plan::{PlanPath, PlanTree};
    use mcast_topology::Mesh2D;

    fn path_plan(nodes: Vec<NodeId>, dests: Vec<NodeId>) -> DeliveryPlan {
        DeliveryPlan {
            source: nodes[0],
            destinations: dests,
            worms: vec![PlanWorm::Path(PlanPath {
                nodes,
                class: ClassChoice::Any,
            })],
        }
    }

    #[test]
    fn single_hop_latency_matches_formula() {
        let m = Mesh2D::new(4, 4);
        let mut e = ReferenceEngine::new(Network::new(&m, 1), SimConfig::default());
        let cfg = *e.config();
        e.inject(&path_plan(vec![0, 1], vec![1]));
        assert!(e.run_to_quiescence());
        let done = e.take_completed();
        let expect = cfg.routing_delay_ns + cfg.flit_time_ns() * cfg.flits_per_message() as u64;
        assert_eq!(done[0].completed_at, expect);
    }

    #[test]
    fn crossing_lockstep_trees_deadlock() {
        // The Fig 6.4 mechanism must reproduce in the reference too.
        let m = Mesh2D::new(4, 1);
        let mut e = ReferenceEngine::new(Network::new(&m, 1), SimConfig::default());
        e.inject(&DeliveryPlan {
            source: 1,
            destinations: vec![0, 3],
            worms: vec![PlanWorm::Tree(PlanTree {
                root: 1,
                edges: vec![
                    (1, 0, ClassChoice::Any),
                    (1, 2, ClassChoice::Any),
                    (2, 3, ClassChoice::Any),
                ],
            })],
        });
        e.inject(&DeliveryPlan {
            source: 2,
            destinations: vec![0, 3],
            worms: vec![PlanWorm::Tree(PlanTree {
                root: 2,
                edges: vec![
                    (2, 3, ClassChoice::Any),
                    (2, 1, ClassChoice::Any),
                    (1, 0, ClassChoice::Any),
                ],
            })],
        });
        assert!(
            !e.run_to_quiescence(),
            "crossing lock-step trees must deadlock"
        );
        assert_eq!(e.in_flight(), 2);
    }

    #[test]
    fn matches_engine_on_contended_mixed_worms() {
        // Paths, a tree, and a circuit contending on a small mesh: the
        // optimized engine and the reference must agree on every
        // delivery time, the hop total, and the quiescence time.
        let m = Mesh2D::new(4, 4);
        let plans = [
            path_plan(vec![0, 1, 2, 3], vec![2, 3]),
            path_plan(vec![4, 5, 6], vec![6]),
            DeliveryPlan {
                source: 1,
                destinations: vec![0, 9],
                worms: vec![PlanWorm::Tree(PlanTree {
                    root: 1,
                    edges: vec![
                        (1, 0, ClassChoice::Any),
                        (1, 5, ClassChoice::Any),
                        (5, 9, ClassChoice::Any),
                    ],
                })],
            },
            DeliveryPlan {
                source: 8,
                destinations: vec![10],
                worms: vec![PlanWorm::Circuit(PlanPath {
                    nodes: vec![8, 9, 10],
                    class: ClassChoice::Any,
                })],
            },
        ];
        let mut fast = Engine::new(Network::new(&m, 1), SimConfig::default());
        let mut refr = ReferenceEngine::new(Network::new(&m, 1), SimConfig::default());
        for (i, p) in plans.iter().enumerate() {
            let t = 100 * i as Time;
            fast.run_until(t);
            refr.run_until(t);
            fast.inject(p);
            refr.inject(p);
        }
        let ok_fast = fast.run_to_quiescence();
        let ok_ref = refr.run_to_quiescence();
        assert_eq!(ok_fast, ok_ref);
        assert_eq!(fast.now(), refr.now());
        assert_eq!(fast.flit_hops(), refr.flit_hops());
        let mut df = fast.take_completed();
        let mut dr = refr.take_completed();
        df.sort_by_key(|c| c.id);
        dr.sort_by_key(|c| c.id);
        assert_eq!(df.len(), dr.len());
        for (a, b) in df.iter().zip(&dr) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.completed_at, b.completed_at);
            assert_eq!(a.deliveries, b.deliveries);
            assert_eq!(a.traffic, b.traffic);
        }
    }

    #[test]
    fn dead_channels_screened_by_inject_checked() {
        let m = Mesh2D::new(4, 4);
        let mut e = ReferenceEngine::new(Network::new(&m, 1), SimConfig::default());
        let mut mask = FaultMask::none();
        mask.fail_link(0, 1);
        e.apply_fault_mask(&mask);
        let err = e.inject_checked(&path_plan(vec![0, 1], vec![1]));
        assert!(matches!(err, Err(SimError::DeadChannel { .. })));
        assert_eq!(e.in_flight(), 0);
    }

    #[test]
    fn matches_engine_on_staged_collective_plans() {
        // Staged-worm relay chains contending with plain traffic: the
        // optimized engine and the reference must agree event for
        // event, including the staged release times.
        use crate::plan::PlanStage;
        let m = Mesh2D::new(4, 4);
        let staged = |after: Vec<u32>, nodes: Vec<NodeId>| {
            PlanWorm::Staged(PlanStage {
                after,
                path: PlanPath {
                    nodes,
                    class: ClassChoice::Any,
                },
            })
        };
        let plans = [
            DeliveryPlan {
                source: 0,
                destinations: vec![1, 2, 3, 7],
                worms: vec![
                    PlanWorm::Path(PlanPath {
                        nodes: vec![0, 1],
                        class: ClassChoice::Any,
                    }),
                    staged(vec![0], vec![1, 2]),
                    staged(vec![0, 1], vec![2, 3, 7]),
                ],
            },
            path_plan(vec![2, 1, 0], vec![0]),
            DeliveryPlan {
                source: 5,
                destinations: vec![6, 7],
                worms: vec![
                    PlanWorm::Path(PlanPath {
                        nodes: vec![5, 6],
                        class: ClassChoice::Any,
                    }),
                    staged(vec![0], vec![6, 7]),
                ],
            },
        ];
        let mut fast = Engine::new(Network::new(&m, 1), SimConfig::default());
        let mut refr = ReferenceEngine::new(Network::new(&m, 1), SimConfig::default());
        for (i, p) in plans.iter().enumerate() {
            let t = 60 * i as Time;
            fast.run_until(t);
            refr.run_until(t);
            fast.inject(p);
            refr.inject(p);
        }
        assert!(fast.run_to_quiescence());
        assert!(refr.run_to_quiescence());
        assert_eq!(fast.now(), refr.now());
        assert_eq!(fast.flit_hops(), refr.flit_hops());
        let mut df = fast.take_completed();
        let mut dr = refr.take_completed();
        df.sort_by_key(|c| c.id);
        dr.sort_by_key(|c| c.id);
        assert_eq!(df.len(), dr.len());
        for (a, b) in df.iter().zip(&dr) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.completed_at, b.completed_at);
            assert_eq!(a.deliveries, b.deliveries);
            assert_eq!(a.traffic, b.traffic);
        }
    }
}
