//! A two-level calendar event queue for the simulation hot path.
//!
//! The wormhole engine schedules almost every event within a handful of
//! flit times of `now` (flit transfers, routing delays, circuit-setup
//! chains), so a ring of flit-time-wide buckets absorbs the bulk of the
//! traffic with O(1) pushes and pops; the rare far-future event (idle
//! inter-arrival gaps under light load) spills into a binary-heap
//! overflow and migrates into the ring as the horizon advances.
//!
//! Pops are globally ordered by `(time, insertion sequence)` — exactly
//! the total order the previous `BinaryHeap<Reverse<(Time, u64, Event)>>`
//! produced — so swapping the queue changes no simulation result.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::engine::Time;

/// Number of ring buckets. Power of two so the slot index is a mask.
const RING_BUCKETS: u64 = 512;

/// Far-future overflow entry, min-ordered by `(time, seq)` (the payload
/// never participates in the ordering — `seq` is unique).
#[derive(Debug)]
struct Far<T>(Time, u64, T);

impl<T> PartialEq for Far<T> {
    fn eq(&self, other: &Self) -> bool {
        (self.0, self.1) == (other.0, other.1)
    }
}

impl<T> Eq for Far<T> {}

impl<T> PartialOrd for Far<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Far<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed so `BinaryHeap` (a max-heap) yields the earliest first.
        (other.0, other.1).cmp(&(self.0, self.1))
    }
}

/// Calendar queue: a ring of `width`-ns buckets over the near future,
/// the current bucket kept as a sorted run consumed by cursor, and a
/// heap overflow for events beyond the ring horizon.
#[derive(Debug)]
pub(crate) struct EventQueue<T> {
    /// Bucket width in nanoseconds (the flit time).
    width: Time,
    /// Current bucket number (monotonically increasing).
    bucket: u64,
    /// Exclusive upper time bound of the `ready` run: events below it
    /// sort into `ready`, events at or above it into the ring/overflow.
    boundary: Time,
    /// Ring of future buckets; slot `b % RING_BUCKETS` holds bucket `b`
    /// for `bucket < b <= bucket + RING_BUCKETS`.
    ring: Vec<Vec<(Time, u64, T)>>,
    /// Total events across the ring slots.
    in_ring: usize,
    /// The current bucket, sorted ascending by `(time, seq)`; the next
    /// event sits at `head` (consuming by cursor instead of popping from
    /// the front avoids any memmove, and inserting a later event — the
    /// common case — is an O(1) append).
    /// INVARIANT: `head < ready.len()` whenever the queue is nonempty —
    /// `push` and `pop` eagerly refill the run, which keeps `peek_time`
    /// O(1) for the supervisor's per-event polling loop.
    ready: Vec<(Time, u64, T)>,
    /// Cursor of the next unconsumed `ready` event.
    head: usize,
    /// Events beyond the ring horizon.
    overflow: BinaryHeap<Far<T>>,
    /// Insertion sequence: the deterministic FIFO tie-break within a
    /// timestamp.
    seq: u64,
    len: usize,
}

impl<T: Copy> EventQueue<T> {
    pub fn new(width: Time) -> Self {
        let width = width.max(1);
        EventQueue {
            width,
            bucket: 0,
            boundary: width,
            ring: (0..RING_BUCKETS).map(|_| Vec::new()).collect(),
            in_ring: 0,
            ready: Vec::new(),
            head: 0,
            overflow: BinaryHeap::new(),
            seq: 0,
            len: 0,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Earliest pending event time — O(1) by the `ready` invariant.
    pub fn peek_time(&self) -> Option<Time> {
        self.ready.get(self.head).map(|&(t, _, _)| t)
    }

    pub fn push(&mut self, t: Time, payload: T) {
        self.seq += 1;
        let s = self.seq;
        self.len += 1;
        if t < self.boundary {
            // Belongs in the current run (routing delays and circuit
            // setups shorter than a flit time land here): sorted insert
            // into the unconsumed tail, usually right at the end.
            let idx = self.head
                + self.ready[self.head..].partition_point(|&(rt, rs, _)| (rt, rs) < (t, s));
            self.ready.insert(idx, (t, s, payload));
            return;
        }
        // The overwhelmingly common case is `t = now + flit_time`, which
        // lands exactly one bucket ahead — recognise it without the
        // hardware division (this function runs once per flit hop).
        let b = if t - self.boundary < self.width {
            self.bucket + 1
        } else {
            t / self.width
        };
        if b - self.bucket <= RING_BUCKETS {
            self.ring[(b % RING_BUCKETS) as usize].push((t, s, payload));
            self.in_ring += 1;
        } else {
            self.overflow.push(Far(t, s, payload));
        }
        if self.ready.is_empty() {
            self.advance();
        }
    }

    pub fn pop(&mut self) -> Option<(Time, u64, T)> {
        let ev = *self.ready.get(self.head)?;
        self.head += 1;
        self.len -= 1;
        if self.head == self.ready.len() {
            // Run consumed: recycle the buffer and refill eagerly so the
            // `peek_time` invariant holds.
            self.ready.clear();
            self.head = 0;
            if self.len > 0 {
                self.advance();
            }
        }
        Some(ev)
    }

    /// Refills `ready` from the ring (migrating overflow as the horizon
    /// moves). Caller guarantees the queue is nonempty and `ready` empty.
    fn advance(&mut self) {
        debug_assert!(self.ready.is_empty() && self.head == 0 && self.len > 0);
        if self.in_ring == 0 {
            // Everything pending lies beyond the horizon: jump the cursor
            // so the earliest overflow bucket lands just inside it.
            let t = self.overflow.peek().expect("queue nonempty").0;
            self.bucket = t / self.width - 1;
        }
        loop {
            self.bucket += 1;
            // Migrate up to one bucket SHORT of the horizon: bucket
            // `bucket + RING_BUCKETS` shares a slot with the bucket under
            // examination, and mixing two buckets in one slot would let a
            // far-future tail into `ready` ahead of nearer ring events.
            while let Some(f) = self.overflow.peek() {
                let b = f.0 / self.width;
                if b >= self.bucket + RING_BUCKETS {
                    break;
                }
                let Far(t, s, payload) = self.overflow.pop().expect("just peeked");
                self.ring[(b % RING_BUCKETS) as usize].push((t, s, payload));
                self.in_ring += 1;
            }
            let slot = (self.bucket % RING_BUCKETS) as usize;
            if !self.ring[slot].is_empty() {
                // Swap keeps both vecs' capacity alive across buckets.
                std::mem::swap(&mut self.ready, &mut self.ring[slot]);
                self.in_ring -= self.ready.len();
                // Simulation time is monotone, so a bucket's events
                // usually arrived already ordered; verify with one cheap
                // pass and sort only the exceptions (overflow migrations
                // interleaved with direct pushes, header routing delays).
                let sorted = self
                    .ready
                    .windows(2)
                    .all(|p| (p[0].0, p[0].1) <= (p[1].0, p[1].1));
                if !sorted {
                    self.ready.sort_unstable_by_key(|&(t, s, _)| (t, s));
                }
                self.boundary = (self.bucket + 1).saturating_mul(self.width);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;

    /// Deterministic xorshift so the test needs no RNG dependency.
    struct XorShift(u64);

    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    /// The queue must reproduce the exact pop order of the reference
    /// `BinaryHeap<Reverse<(Time, u64, T)>>` under interleaved pushes and
    /// pops with near, far, equal-time, and sub-boundary timestamps.
    #[test]
    fn matches_reference_heap_order() {
        let mut q: EventQueue<u32> = EventQueue::new(400);
        let mut reference: BinaryHeap<Reverse<(Time, u64, u32)>> = BinaryHeap::new();
        let mut rng = XorShift(0x9E3779B97F4A7C15);
        let mut seq = 0u64;
        let mut now: Time = 0;
        let mut payload = 0u32;
        for round in 0..2000 {
            let burst = 1 + (rng.next() % 4);
            for _ in 0..burst {
                // Mix of sub-flit, near, and far-future offsets.
                let dt = match rng.next() % 10 {
                    0..=3 => rng.next() % 400,
                    4..=7 => rng.next() % (400 * 16),
                    8 => rng.next() % (400 * 600),
                    _ => rng.next() % (400 * 5000),
                };
                // Occasionally collide timestamps to exercise seq order.
                let t = now
                    + if rng.next().is_multiple_of(5) {
                        400
                    } else {
                        dt
                    };
                seq += 1;
                payload += 1;
                q.push(t, payload);
                reference.push(Reverse((t, seq, payload)));
            }
            let pops = if round % 7 == 0 { burst + 1 } else { burst };
            for _ in 0..pops {
                let got = q.pop();
                let want = reference.pop().map(|Reverse(e)| e);
                assert_eq!(got, want, "divergence at round {round}");
                if let Some((t, _, _)) = got {
                    assert!(t >= now, "time went backwards");
                    now = t;
                }
            }
            assert_eq!(q.peek_time(), reference.peek().map(|r| r.0 .0));
        }
        while let Some(want) = reference.pop() {
            assert_eq!(q.pop(), Some(want.0));
        }
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new(1);
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        assert_eq!(q.pop(), None);
        q.push(5, ());
        assert_eq!(q.peek_time(), Some(5));
        assert_eq!(q.pop(), Some((5, 1, ())));
        assert!(q.is_empty());
    }

    /// Property: the (time, seq) total order survives slot-index
    /// wraparound deep into the ring — times at and beyond 512 whole
    /// ring spans (512 buckets × width each), where every slot index
    /// has wrapped hundreds of times and `b % RING_BUCKETS` aliases
    /// many distinct buckets per slot.
    #[test]
    fn wraparound_beyond_512_ring_spans() {
        const WIDTH: Time = 400;
        const SPAN: Time = WIDTH * RING_BUCKETS; // one full ring revolution
        let mut q: EventQueue<u32> = EventQueue::new(WIDTH);
        let mut reference: BinaryHeap<Reverse<(Time, u64, u32)>> = BinaryHeap::new();
        let mut rng = XorShift(0xD1B54A32D192ED03);
        let mut seq = 0u64;
        let mut now: Time = 0;
        // March time past 600 ring spans (> 512×) in irregular strides,
        // mixing in-span offsets with multi-span jumps that alias slots.
        for round in 0..600 {
            for _ in 0..3 {
                let dt = match rng.next() % 3 {
                    0 => rng.next() % WIDTH,          // same bucket
                    1 => rng.next() % SPAN,           // within one span
                    _ => SPAN * (1 + rng.next() % 4), // whole-span jumps
                };
                seq += 1;
                q.push(now + dt, seq as u32);
                reference.push(Reverse((now + dt, seq, seq as u32)));
            }
            for _ in 0..3 {
                let got = q.pop();
                let want = reference.pop().map(|Reverse(e)| e);
                assert_eq!(got, want, "divergence at round {round} (now = {now})");
                now = got.expect("pushed more than popped").0;
            }
            now += SPAN; // force a span crossing every round
        }
        assert!(now >= 512 * SPAN, "test must actually cross 512 spans");
        while let Some(Reverse(want)) = reference.pop() {
            assert_eq!(q.pop(), Some(want));
        }
        assert!(q.is_empty());
    }

    /// Property: a timestamp tie between an event that entered through
    /// the heap overflow (pushed while its time lay beyond the ring
    /// horizon) and events that entered through the ring or the ready
    /// run (pushed after the horizon advanced) still resolves by
    /// insertion seq — the overflow path must not reorder ties.
    #[test]
    fn time_seq_ties_across_ring_heap_boundary() {
        const WIDTH: Time = 100;
        let t = WIDTH * 2000; // far beyond the 512-bucket horizon at push
        let mut q: EventQueue<u8> = EventQueue::new(WIDTH);
        q.push(t, 1); // → overflow (seq 1)
        q.push(t, 2); // → overflow (seq 2)
        q.push(50, 0); // near event keeps the horizon where it is
        assert_eq!(q.pop(), Some((50, 3, 0)));
        // The pop advanced the horizon past `t`, migrating the overflow
        // ties into the ready run; the same timestamp now lands there.
        q.push(t, 3); // → ready run (seq 4)
        q.push(t + WIDTH, 9); // later bucket, must stay behind the ties
        q.push(t, 4); // → ready run (seq 6)
        assert_eq!(q.pop(), Some((t, 1, 1)), "overflow tie pops first");
        assert_eq!(q.pop(), Some((t, 2, 2)));
        assert_eq!(q.pop(), Some((t, 4, 3)), "then the ring-side ties");
        assert_eq!(q.pop(), Some((t, 6, 4)));
        assert_eq!(q.pop(), Some((t + WIDTH, 5, 9)));
        assert_eq!(q.pop(), None);
    }

    /// Property: draining the queue to empty (which recycles the
    /// `ready` buffer through its internal clear) leaves it fully
    /// reusable — repeated fill/drain cycles at ever-later times keep
    /// the reference pop order, and `seq` keeps ticking monotonically
    /// across cycles instead of resetting.
    #[test]
    fn pop_after_clear_reuse() {
        const WIDTH: Time = 400;
        let mut q: EventQueue<u32> = EventQueue::new(WIDTH);
        let mut reference: BinaryHeap<Reverse<(Time, u64, u32)>> = BinaryHeap::new();
        let mut rng = XorShift(0x2545F4914F6CDD1D);
        let mut seq = 0u64;
        let mut base: Time = 0;
        for cycle in 0..50 {
            for _ in 0..20 {
                let t = base + rng.next() % (WIDTH * 700); // ring + overflow
                seq += 1;
                q.push(t, seq as u32);
                reference.push(Reverse((t, seq, seq as u32)));
            }
            let mut last: Time = 0;
            while let Some(got) = q.pop() {
                assert_eq!(Some(got), reference.pop().map(|Reverse(e)| e));
                last = got.0;
            }
            assert!(q.is_empty(), "cycle {cycle} drained");
            assert_eq!(q.pop(), None);
            assert_eq!(q.peek_time(), None);
            assert!(reference.is_empty());
            // Next cycle resumes later in time, as the engine would.
            base = last + 1 + rng.next() % (WIDTH * RING_BUCKETS * 2);
        }
    }

    #[test]
    fn far_future_jump_lands_on_overflow_bucket() {
        let mut q: EventQueue<u8> = EventQueue::new(100);
        // Way beyond the 512-bucket horizon.
        q.push(100 * 100_000, 1);
        q.push(100 * 100_000 + 7, 2);
        q.push(50, 0);
        assert_eq!(q.pop(), Some((50, 3, 0)));
        assert_eq!(q.peek_time(), Some(100 * 100_000));
        assert_eq!(q.pop(), Some((100 * 100_000, 1, 1)));
        assert_eq!(q.pop(), Some((100 * 100_000 + 7, 2, 2)));
        assert_eq!(q.pop(), None);
    }
}
