//! Window-parallel deterministic execution of a single simulation
//! (DESIGN.md §15).
//!
//! The serial engine pops events one at a time in `(time, seq)` order.
//! This module instead pops a *window cohort* — every pending event
//! with `t < t0 + L`, where the lookahead `L` is the minimum delta any
//! event cascade can schedule at (`min(flit_time, circuit_setup_ns)`,
//! floored at 1 ns) — and executes the cohort's *conflict components*
//! concurrently:
//!
//! 1. **Collect** the cohort in canonical pop order, charging the run
//!    budget per pop exactly as the serial loop does.
//! 2. **Cluster** events with union-find over the state they can
//!    reach: every event touches its worm's *message* (`Msg` key), and
//!    channel-touching events union the class-independent *link*
//!    (`Link` key) of the hop they acquire or release. Two events land
//!    in one component iff their reachable state could overlap; events
//!    in different components are proven disjoint.
//! 3. **Check out** each component's worms, channels, and messages by
//!    value (`mem::replace` / `mem::take` — 100% safe, no sharing),
//!    run the shared [`exec_event`] cascade against a buffering
//!    [`ExecCtx`] on a worker thread, recording per-event effect
//!    marks.
//! 4. **Merge**: restore the checked-out state, then replay buffered
//!    effects (queue pushes, sink emits, completions, worm frees) in
//!    global cohort order. The event queue assigns its insertion seq
//!    only at push time, so replaying pushes in the order the serial
//!    loop would have made them reproduces the serial seq assignment —
//!    and therefore every future pop — exactly.
//!
//! Determinism argument (why `--engine-jobs N` is bit-identical to
//! serial): the cohort *is* the serial pop order (collection pops the
//! same queue); generated events land at `t >= t0 + L` when `L > 1`
//! (every cascade schedules at `now + dt` with `dt >= L`), or — in the
//! degenerate `L = 1` single-timestamp window — at the same timestamp
//! but with a strictly higher seq than every cohort member, so in both
//! cases the serial loop would also have drained the whole cohort
//! before touching them. Within the window, same-component events run
//! sequentially in cohort order against the same state the serial
//! loop would see (components are disjoint, so concurrent components
//! cannot observe each other), and the canonical effect merge restores
//! the serial order of every side effect with order sensitivity: queue
//! seqs, sink emission order (Welford accumulators are
//! order-sensitive in the last bits), `completed` order, and
//! `worm_free` order (slot reuse).

use std::collections::{BTreeSet, HashMap};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use mcast_obs::SimEvent;
use mcast_topology::NodeId;

use crate::engine::{
    exec_event, ChanState, CompletedMessage, Deliveries, Engine, Event, ExecCtx, MessageState,
    SimEnv, Time, WormState,
};
use crate::network::ChannelId;

/// Cohorts below this size skip clustering and run inline on the
/// coordinator — the window machinery costs more than it saves when
/// there is almost nothing to overlap. (Forced executors never skip:
/// the test hook exists precisely to exercise the machinery.)
const INLINE_COHORT: usize = 8;

/// State-reachability key for conflict clustering. `Msg` covers a
/// message, all its worms, and their cascades (try_start chains never
/// leave a worm); `Link` covers every class copy of one physical link
/// (grant/release/queue traffic for a hop stays within the hop's
/// link — an `Any`-class request scans exactly the link's copies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Key {
    Msg(usize),
    Link(ChannelId),
}

/// The window-parallel executor installed on an [`Engine`] by
/// `set_engine_jobs`. Pure scratch: it owns worker threads and
/// per-window buffers, never simulation state — between windows the
/// engine fields are the only authority.
#[derive(Debug)]
pub(crate) struct ParallelExec {
    jobs: usize,
    /// Test mode: always run the full window machinery (clustering,
    /// checkout, canonical merge), even for tiny cohorts or `jobs = 1`.
    forced: bool,
    pool: Option<Pool>,
}

impl ParallelExec {
    pub(crate) fn new(jobs: usize) -> Self {
        let jobs = jobs.max(1);
        ParallelExec {
            jobs,
            forced: false,
            pool: (jobs > 1).then(|| Pool::new(jobs - 1)),
        }
    }

    /// Test hook behind `Engine::set_engine_jobs_forced`.
    pub(crate) fn forced(jobs: usize) -> Self {
        let mut p = ParallelExec::new(jobs);
        p.forced = true;
        p
    }

    pub(crate) fn jobs(&self) -> usize {
        self.jobs
    }
}

/// A persistent worker pool: `jobs - 1` threads (the coordinator is
/// the remaining lane) pulling [`CompCtx`] tasks from a shared stack.
struct Pool {
    shared: Arc<Shared>,
    results: Receiver<(usize, std::thread::Result<CompCtx>)>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("workers", &self.handles.len())
            .finish()
    }
}

struct Shared {
    queue: Mutex<Vec<(usize, CompCtx)>>,
    cv: Condvar,
    shutdown: AtomicBool,
}

impl Pool {
    fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Vec::new()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let (tx, results) = channel();
        let handles = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let tx: Sender<(usize, std::thread::Result<CompCtx>)> = tx.clone();
                std::thread::Builder::new()
                    .name(format!("mcast-engine-{i}"))
                    .spawn(move || worker_loop(&shared, &tx))
                    .expect("spawn engine worker")
            })
            .collect();
        Pool {
            shared,
            results,
            handles,
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.cv.notify_all();
        for h in self.handles.drain(..) {
            // A worker that panicked already reported through the
            // results channel; don't double-panic out of drop.
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, tx: &Sender<(usize, std::thread::Result<CompCtx>)>) {
    loop {
        let task = {
            let mut q = shared.queue.lock().expect("engine pool lock");
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(t) = q.pop() {
                    break t;
                }
                q = shared.cv.wait(q).expect("engine pool lock");
            }
        };
        let (idx, mut ctx) = task;
        // Components are independent; a panic in one (a tripwire
        // assertion, an engine bug) is captured and re-raised on the
        // coordinator so it surfaces exactly like a serial panic.
        let res = catch_unwind(AssertUnwindSafe(move || {
            run_component(&mut ctx);
            ctx
        }));
        if tx.send((idx, res)).is_err() {
            return;
        }
    }
}

/// A conflict component checked out of the engine: the worms,
/// channels, and messages its events can reach, plus buffers for every
/// engine-global side effect. Implements [`ExecCtx`], so the cascade
/// code running here is byte-for-byte the code the serial engine runs.
struct CompCtx {
    env: SimEnv,
    now: Time,
    sink_on: bool,
    /// The component's slice of the cohort, in canonical order.
    events: Vec<(Time, Event)>,
    /// Sorted worm ids ∥ their checked-out state.
    worm_ids: Vec<usize>,
    worms: Vec<WormState>,
    /// Sorted channel ids ∥ state ∥ fault-liveness snapshot (faults
    /// only change between run calls, never mid-window).
    chan_ids: Vec<ChannelId>,
    chans: Vec<ChanState>,
    alive: Vec<bool>,
    /// Sorted message ids ∥ their checked-out slots.
    msg_ids: Vec<usize>,
    msgs: Vec<Option<MessageState>>,
    // ---- buffered effects, replayed in canonical cohort order ----
    pushes: Vec<(Time, Event)>,
    emits: Vec<SimEvent>,
    completed: Vec<CompletedMessage>,
    freed: Vec<usize>,
    /// Retired message slots (streaming mode) with their delivery
    /// buffers — replayed through `Engine::retire_slot` in canonical
    /// cohort order so `msg_free` matches serial exactly. `Option` so
    /// the merge can move each entry out of a shared borrow.
    retired: Vec<Option<(usize, Deliveries)>>,
    /// `(channel, dt)` utilization charges — a commutative sum, so
    /// merge order is irrelevant.
    busy: Vec<(ChannelId, Time)>,
    flit_hops: u64,
    in_flight_dec: usize,
    /// Effect-buffer end offsets after each local event — the merge
    /// uses these to interleave effects from different components in
    /// global cohort order.
    marks: Vec<Marks>,
}

#[derive(Debug, Clone, Copy, Default)]
struct Marks {
    pushes: usize,
    emits: usize,
    completed: usize,
    freed: usize,
    retired: usize,
}

impl CompCtx {
    fn widx(&self, w: usize) -> usize {
        // A miss here means an event reached state outside its
        // component — a clustering soundness bug. Panic loudly (the
        // worker's catch_unwind re-raises on the coordinator) rather
        // than silently diverging from serial.
        self.worm_ids
            .binary_search(&w)
            .unwrap_or_else(|_| panic!("worm {w} not in conflict component"))
    }

    fn cidx(&self, c: ChannelId) -> usize {
        self.chan_ids
            .binary_search(&c)
            .unwrap_or_else(|_| panic!("channel {c} not in conflict component"))
    }

    fn midx(&self, m: usize) -> usize {
        self.msg_ids
            .binary_search(&m)
            .unwrap_or_else(|_| panic!("message {m} not in conflict component"))
    }
}

impl ExecCtx for CompCtx {
    fn now(&self) -> Time {
        self.now
    }
    fn env(&self) -> SimEnv {
        self.env
    }
    fn worm(&mut self, w: usize) -> &mut WormState {
        let i = self.widx(w);
        &mut self.worms[i]
    }
    fn worm_ref(&self, w: usize) -> &WormState {
        &self.worms[self.widx(w)]
    }
    fn chan(&mut self, c: ChannelId) -> &mut ChanState {
        let i = self.cidx(c);
        &mut self.chans[i]
    }
    fn chan_ref(&self, c: ChannelId) -> &ChanState {
        &self.chans[self.cidx(c)]
    }
    fn chan_alive(&self, c: ChannelId) -> bool {
        self.alive[self.cidx(c)]
    }
    fn msg(&mut self, m: usize) -> &mut Option<MessageState> {
        let i = self.midx(m);
        &mut self.msgs[i]
    }
    fn sched(&mut self, at: Time, ev: Event) {
        self.pushes.push((at, ev));
    }
    fn add_busy(&mut self, c: ChannelId, dt: Time) {
        self.busy.push((c, dt));
    }
    fn count_flit_hop(&mut self) {
        self.flit_hops += 1;
    }
    fn sink_on(&self) -> bool {
        self.sink_on
    }
    fn emit_ev(&mut self, ev: SimEvent) {
        if self.sink_on {
            self.emits.push(ev);
        }
    }
    fn trace_on(&self, _c: ChannelId) -> bool {
        // `set_engine_jobs` refuses to install the executor while
        // MCAST_TRACE_CHAN is set; the forced test hook simply loses
        // the stderr trace (simulation state is unaffected).
        false
    }
    fn push_completed(&mut self, done: CompletedMessage) {
        self.completed.push(done);
    }
    fn free_worm(&mut self, w: usize) {
        self.freed.push(w);
    }
    fn dec_in_flight(&mut self) {
        self.in_flight_dec += 1;
    }
    fn retire_msg(&mut self, slot: usize, d: Deliveries) {
        self.retired.push(Some((slot, d)));
    }
    fn take_done_buf(&mut self) -> Vec<(NodeId, Time)> {
        // Components cannot reach the engine's spare pool; a fresh
        // buffer holds identical values (capacity is not observable).
        Vec::new()
    }
}

/// Runs a component's cohort slice sequentially, recording effect
/// marks after each event.
fn run_component(ctx: &mut CompCtx) {
    for i in 0..ctx.events.len() {
        let (t, ev) = ctx.events[i];
        ctx.now = t;
        exec_event(ctx, ev);
        ctx.marks.push(Marks {
            pushes: ctx.pushes.len(),
            emits: ctx.emits.len(),
            completed: ctx.completed.len(),
            freed: ctx.freed.len(),
            retired: ctx.retired.len(),
        });
    }
}

/// Minimum schedulable event delta: every cascade schedules at
/// `now + flit_time` (± the header routing delay, which only adds) or
/// `now + circuit_setup_ns`, so no event generated inside the window
/// `[t0, t0 + L)` can land inside it — except when the minimum is 0
/// (`circuit_setup_ns = 0`), where the floor of 1 makes each window a
/// single timestamp and same-time generated events sort strictly after
/// the cohort by insertion seq. Both cases preserve the serial order.
fn window_lookahead(env: &SimEnv) -> Time {
    env.flit_time.min(env.circuit_setup_ns).max(1)
}

/// Windowed counterpart of the serial `run_until` loop: identical
/// event set, budget accounting, and `now` semantics (no clamp to
/// `until` on a budget stop).
pub(crate) fn run_windowed_until(engine: &mut Engine, until: Time) -> usize {
    // Take the executor out for the duration of the run so the engine
    // can be borrowed mutably alongside it (it is pure scratch).
    let mut par = engine
        .par
        .take()
        .expect("windowed dispatch requires executor");
    let lookahead = window_lookahead(&ExecCtx::env(engine));
    let mut n = 0usize;
    let mut cohort: Vec<(Time, Event)> = Vec::new();
    while let Some(t0) = engine.next_event_time() {
        if t0 > until {
            break;
        }
        let end = t0.saturating_add(lookahead);
        cohort.clear();
        let mut budget_stop = false;
        while let Some(t) = engine.next_event_time() {
            if t >= end || t > until {
                break;
            }
            if engine.charge_budget() {
                budget_stop = true;
                break;
            }
            let (t, _, ev) = engine.events.pop().expect("just peeked");
            cohort.push((t, ev));
        }
        n += cohort.len();
        execute_window(engine, &mut par, &cohort);
        if budget_stop {
            // Serial parity: a budget stop returns without advancing
            // `now` to `until`.
            engine.par = Some(par);
            return n;
        }
    }
    engine.now = engine.now.max(until);
    engine.par = Some(par);
    n
}

/// Windowed counterpart of the serial `run_to_quiescence` loop.
pub(crate) fn run_windowed_quiesce(engine: &mut Engine) -> bool {
    let mut par = engine
        .par
        .take()
        .expect("windowed dispatch requires executor");
    let lookahead = window_lookahead(&ExecCtx::env(engine));
    let mut cohort: Vec<(Time, Event)> = Vec::new();
    let done = loop {
        if engine.next_event_time().is_none() {
            break engine.in_flight == 0;
        }
        let t0 = engine.next_event_time().expect("just checked");
        let end = t0.saturating_add(lookahead);
        cohort.clear();
        let mut budget_stop = false;
        while let Some(t) = engine.next_event_time() {
            if t >= end {
                break;
            }
            if engine.charge_budget() {
                budget_stop = true;
                break;
            }
            let (t, _, ev) = engine.events.pop().expect("just peeked");
            cohort.push((t, ev));
        }
        execute_window(engine, &mut par, &cohort);
        if budget_stop {
            break false;
        }
    };
    engine.par = Some(par);
    done
}

/// Executes one collected cohort. Every path (inline fast path or
/// full clustering) produces bit-identical engine state.
fn execute_window(engine: &mut Engine, par: &mut ParallelExec, cohort: &[(Time, Event)]) {
    if cohort.is_empty() {
        return;
    }
    engine.steps += cohort.len() as u64;
    // Fast path: tiny cohorts (the common case under light load) and
    // jobs=1 executors gain nothing from clustering — run the cohort
    // inline through the identical cascade.
    if !par.forced && (par.pool.is_none() || cohort.len() < INLINE_COHORT) {
        serial_exec(engine, cohort);
        return;
    }

    // ---- 1. classify + cluster ----
    let env = ExecCtx::env(engine);
    let mut uf = UnionFind::default();
    // Per-event key/queue-worm slices into flat buffers, or `None`
    // for events that are provably stale at collection time (gen
    // bumps and worm builds only happen between run calls, so
    // staleness observed here is permanent).
    let mut ev_keys: Vec<Option<(usize, usize)>> = Vec::with_capacity(cohort.len());
    let mut keys: Vec<Key> = Vec::new();
    let mut qworm_ranges: Vec<(usize, usize)> = Vec::with_capacity(cohort.len());
    let mut qworms: Vec<usize> = Vec::new();
    for &(_, ev) in cohort {
        let (w, e, gen) = match ev {
            Event::TransferComplete { worm, edge, gen }
            | Event::RequestChannel { worm, edge, gen } => (worm as usize, edge as usize, gen),
        };
        let qw0 = qworms.len();
        let k0 = keys.len();
        let wst = &engine.worms[w];
        if wst.gen != gen || !wst.active {
            ev_keys.push(None);
            qworm_ranges.push((qw0, qw0));
            continue;
        }
        keys.push(Key::Msg(wst.message));
        match ev {
            Event::RequestChannel { .. } => keys.push(Key::Link(wst.edges[e].link_key)),
            Event::TransferComplete { .. } => {
                let es = &wst.edges[e];
                // `crossed` is stable until this event executes: only
                // the edge's own TransferComplete bumps it, and an
                // edge has at most one in flight (`busy` gates the
                // next transfer on this completion).
                let next = es.crossed + 1;
                if next == 1 && wst.kind != crate::engine::WormKind::Circuit {
                    for k in es.child_start..es.child_start + es.child_count {
                        let c = wst.children[k as usize] as usize;
                        keys.push(Key::Link(wst.edges[c].link_key));
                    }
                }
                if next == env.flits {
                    // Tail: releases the owned channel, which may
                    // grant (and cascade into) any waiter queued on
                    // it — union their messages too. Waiters added
                    // *during* the window come from events that share
                    // this Link key, so they are already in-component.
                    keys.push(Key::Link(es.link_key));
                    if let Some(chan) = es.channel {
                        for &(w2, _) in engine.channels[chan].queue.iter() {
                            qworms.push(w2);
                            keys.push(Key::Msg(engine.worms[w2].message));
                        }
                    }
                    // A tail crossing may complete the worm, whose
                    // cascade releases its staged dependents — each
                    // then requests its root link (edge 0). `dependents`
                    // is stable here: it is filled at inject and
                    // drained only by the completion itself (which
                    // would have marked this event stale). The
                    // dependents share this worm's message, so the Msg
                    // key already joins them; their root links must be
                    // unioned explicitly. `edges_done` may still grow
                    // inside the window, so no completion gate here —
                    // over-approximating the component is always safe.
                    for &(d, g) in wst.dependents.iter() {
                        let dep = &engine.worms[d as usize];
                        if dep.gen == g && dep.active {
                            qworms.push(d as usize);
                            keys.push(Key::Link(dep.edges[0].link_key));
                        }
                    }
                }
            }
        }
        ev_keys.push(Some((k0, keys.len())));
        qworm_ranges.push((qw0, qworms.len()));
        let first = uf.intern(keys[k0]);
        for &k in &keys[k0 + 1..] {
            let id = uf.intern(k);
            uf.union(first, id);
        }
    }

    // ---- 2. assemble components in first-seen order ----
    let classes = engine.network.classes() as usize;
    let mut root_comp: HashMap<usize, usize> = HashMap::new();
    let mut comps: Vec<CompBuild> = Vec::new();
    // Global cohort index -> (component, local index); `None` = stale.
    let mut loc: Vec<Option<(usize, usize)>> = Vec::with_capacity(cohort.len());
    for (i, &(t, ev)) in cohort.iter().enumerate() {
        let Some((k0, k1)) = ev_keys[i] else {
            loc.push(None);
            continue;
        };
        let first = uf.intern(keys[k0]);
        let root = uf.find(first);
        let next = comps.len();
        let ci = *root_comp.entry(root).or_insert(next);
        if ci == next {
            comps.push(CompBuild::default());
        }
        let cb = &mut comps[ci];
        loc.push(Some((ci, cb.events.len())));
        cb.events.push((t, ev));
        let (w, _) = match ev {
            Event::TransferComplete { worm, edge, .. }
            | Event::RequestChannel { worm, edge, .. } => (worm as usize, edge as usize),
        };
        cb.worms.insert(w);
        cb.msgs.insert(engine.worms[w].message);
        let (q0, q1) = qworm_ranges[i];
        for &w2 in &qworms[q0..q1] {
            cb.worms.insert(w2);
            cb.msgs.insert(engine.worms[w2].message);
        }
        for &k in &keys[k0..k1] {
            if let Key::Link(base) = k {
                for c in base..base + classes {
                    cb.chans.insert(c);
                }
            }
        }
    }

    // Single live component (or none): nothing to overlap.
    if comps.len() <= 1 && !par.forced {
        serial_exec(engine, cohort);
        return;
    }

    // ---- 3. check out + execute ----
    let sink_on = ExecCtx::sink_on(engine);
    let mut tasks: Vec<(usize, CompCtx)> = Vec::with_capacity(comps.len());
    for (ci, cb) in comps.into_iter().enumerate() {
        let worm_ids: Vec<usize> = cb.worms.into_iter().collect();
        let worms = worm_ids
            .iter()
            .map(|&w| std::mem::replace(&mut engine.worms[w], WormState::vacant()))
            .collect();
        let chan_ids: Vec<ChannelId> = cb.chans.into_iter().collect();
        let chans = chan_ids
            .iter()
            .map(|&c| std::mem::take(&mut engine.channels[c]))
            .collect();
        let alive = chan_ids
            .iter()
            .map(|&c| engine.network.is_alive(c))
            .collect();
        let msg_ids: Vec<usize> = cb.msgs.into_iter().collect();
        let msgs = msg_ids.iter().map(|&m| engine.messages[m].take()).collect();
        let n_ev = cb.events.len();
        tasks.push((
            ci,
            CompCtx {
                env,
                now: 0,
                sink_on,
                events: cb.events,
                worm_ids,
                worms,
                chan_ids,
                chans,
                alive,
                msg_ids,
                msgs,
                pushes: Vec::new(),
                emits: Vec::new(),
                completed: Vec::new(),
                freed: Vec::new(),
                retired: Vec::new(),
                busy: Vec::new(),
                flit_hops: 0,
                in_flight_dec: 0,
                marks: Vec::with_capacity(n_ev),
            },
        ));
    }
    let n_comp = tasks.len();
    let mut results: Vec<Option<CompCtx>> = (0..n_comp).map(|_| None).collect();
    match &par.pool {
        Some(pool) => {
            {
                let mut q = pool.shared.queue.lock().expect("engine pool lock");
                q.extend(tasks);
            }
            pool.shared.cv.notify_all();
            let mut done = 0;
            // The coordinator is a full worker lane: drain tasks
            // locally until the shared stack is empty, then collect
            // what the workers produced.
            loop {
                let task = pool.shared.queue.lock().expect("engine pool lock").pop();
                let Some((ci, mut ctx)) = task else { break };
                run_component(&mut ctx);
                results[ci] = Some(ctx);
                done += 1;
            }
            while done < n_comp {
                let (ci, res) = pool
                    .results
                    .recv()
                    .expect("engine worker hung up without result");
                match res {
                    Ok(ctx) => {
                        results[ci] = Some(ctx);
                        done += 1;
                    }
                    Err(panic) => resume_unwind(panic),
                }
            }
        }
        None => {
            // Forced jobs=1: full machinery, coordinator-only.
            for (ci, mut ctx) in tasks {
                run_component(&mut ctx);
                results[ci] = Some(ctx);
            }
        }
    }

    // ---- 4. restore + canonical merge ----
    let mut results: Vec<CompCtx> = results
        .into_iter()
        .map(|r| r.expect("every component produced a result"))
        .collect();
    for ctx in &mut results {
        for (&w, st) in ctx.worm_ids.iter().zip(ctx.worms.drain(..)) {
            engine.worms[w] = st;
        }
        for (&c, st) in ctx.chan_ids.iter().zip(ctx.chans.drain(..)) {
            engine.channels[c] = st;
        }
        for (&m, st) in ctx.msg_ids.iter().zip(ctx.msgs.drain(..)) {
            engine.messages[m] = st;
        }
        // Commutative integer sums: order across components is
        // irrelevant to the exact result.
        for &(c, dt) in &ctx.busy {
            engine.busy_ns[c] += dt;
        }
        engine.flit_hops += ctx.flit_hops;
        engine.in_flight -= ctx.in_flight_dec;
    }
    // Order-sensitive effects replay in global cohort order; each
    // component's buffers are consumed monotonically via its marks.
    for l in &loc {
        let &Some((ci, k)) = l else { continue };
        let (lo, hi) = {
            let ctx = &results[ci];
            let lo = if k == 0 {
                Marks::default()
            } else {
                ctx.marks[k - 1]
            };
            let hi = ctx.marks[k];
            for &(at, ev) in &ctx.pushes[lo.pushes..hi.pushes] {
                engine.events.push(at, ev);
            }
            for &ev in &ctx.emits[lo.emits..hi.emits] {
                engine.emit(ev);
            }
            for done in &ctx.completed[lo.completed..hi.completed] {
                engine.completed.push(done.clone());
            }
            for &w in &ctx.freed[lo.freed..hi.freed] {
                engine.worm_free.push(w);
            }
            (lo, hi)
        };
        // Retirements recycle message slots: replaying them here, in
        // the same canonical order, makes the streaming `msg_free`
        // stack bit-identical to serial execution (slot reuse order is
        // observable through later checkouts and `Key::Msg` keys).
        for j in lo.retired..hi.retired {
            let (slot, d) = results[ci].retired[j]
                .take()
                .expect("retired slot replayed exactly once");
            engine.retire_slot(slot, d);
        }
    }
    engine.now = cohort[cohort.len() - 1].0;
}

/// Inline serial execution of a cohort — the fast path. The cohort was
/// already popped and budget-charged, so this is exactly the serial
/// loop body repeated.
fn serial_exec(engine: &mut Engine, cohort: &[(Time, Event)]) {
    for &(t, ev) in cohort {
        engine.now = t;
        exec_event(engine, ev);
    }
}

#[derive(Default)]
struct CompBuild {
    events: Vec<(Time, Event)>,
    worms: BTreeSet<usize>,
    chans: BTreeSet<ChannelId>,
    msgs: BTreeSet<usize>,
}

/// Union-find over interned keys, path-halving, union by size.
#[derive(Default)]
struct UnionFind {
    ids: HashMap<Key, usize>,
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl UnionFind {
    fn intern(&mut self, k: Key) -> usize {
        if let Some(&i) = self.ids.get(&k) {
            return i;
        }
        let i = self.parent.len();
        self.ids.insert(k, i);
        self.parent.push(i);
        self.size.push(1);
        i
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        self.size[big] += self.size[small];
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::{Engine, RunBudget, SimConfig, Time};
    use crate::network::Network;
    use crate::plan::{ClassChoice, DeliveryPlan, PlanPath, PlanWorm};
    use crate::routers::{DualPathRouter, MulticastRouter};
    use mcast_core::model::MulticastSet;
    use mcast_topology::Mesh2D;

    /// Everything order- or state-sensitive the engine exposes,
    /// Debug-rendered so a single assert covers completion order,
    /// per-destination delivery times, counters, and utilization.
    fn fingerprint(e: &mut Engine) -> String {
        let done = e.take_completed();
        format!(
            "steps={} now={} hops={} inflight={} busy={:?} done={done:?}",
            e.steps(),
            e.now,
            e.flit_hops,
            e.in_flight,
            e.busy_ns,
        )
    }

    /// A contended 8×8 dual-path workload: enough simultaneous
    /// multicasts that window cohorts exceed the inline threshold and
    /// split into several conflict components.
    fn inject_dense(e: &mut Engine, router: &DualPathRouter<Mesh2D>, n: usize) {
        let mut x = 0x9E3779B97F4A7C15u64;
        for _ in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let src = (x % 64) as usize;
            let d1 = ((x >> 8) % 64) as usize;
            let d2 = ((x >> 16) % 64) as usize;
            let d3 = ((x >> 24) % 64) as usize;
            let dests: Vec<usize> = [d1, d2, d3].into_iter().filter(|&d| d != src).collect();
            if dests.is_empty() {
                continue;
            }
            e.inject(&router.plan(&MulticastSet::new(src, dests)));
        }
    }

    fn run_pair(jobs: usize, forced: bool, cfg: SimConfig) -> (String, String) {
        let mesh = Mesh2D::new(8, 8);
        let router = DualPathRouter::mesh(mesh);
        let mk = || Engine::new(Network::new(&Mesh2D::new(8, 8), 1), cfg);
        let mut serial = mk();
        let mut par = mk();
        if forced {
            par.set_engine_jobs_forced(jobs);
        } else {
            par.set_engine_jobs(jobs);
        }
        for e in [&mut serial, &mut par] {
            inject_dense(e, &router, 48);
            // Slice the run so windowed `run_until` is exercised with
            // mid-flight boundaries, then drain.
            for slice in 1..6 {
                e.run_until(slice * 2_500);
            }
            assert!(e.run_to_quiescence(), "workload must drain");
            // A second wave after quiescence exercises slot reuse
            // (worm_free order) under the windowed executor.
            inject_dense(e, &router, 24);
            assert!(e.run_to_quiescence(), "second wave must drain");
        }
        (fingerprint(&mut serial), fingerprint(&mut par))
    }

    #[test]
    fn forced_machinery_matches_serial() {
        let (s, p) = run_pair(1, true, SimConfig::default());
        assert_eq!(s, p, "forced jobs=1 window machinery must be bit-identical");
    }

    #[test]
    fn forced_two_lane_matches_serial() {
        let (s, p) = run_pair(2, true, SimConfig::default());
        assert_eq!(
            s, p,
            "forced jobs=2 (1 worker thread) must be bit-identical"
        );
    }

    #[test]
    fn pooled_four_lane_matches_serial() {
        let (s, p) = run_pair(4, false, SimConfig::default());
        assert_eq!(s, p, "production jobs=4 must be bit-identical");
    }

    #[test]
    fn zero_circuit_setup_degenerate_lookahead_matches_serial() {
        // circuit_setup_ns = 0 floors the lookahead at 1 ns: every
        // window is a single timestamp and same-time generated events
        // must still sort after the cohort by insertion seq.
        let cfg = SimConfig {
            circuit_setup_ns: 0,
            ..SimConfig::default()
        };
        let mesh = Mesh2D::new(4, 4);
        let mk = || Engine::new(Network::new(&mesh, 1), cfg);
        let mut serial = mk();
        let mut par = mk();
        par.set_engine_jobs_forced(2);
        for e in [&mut serial, &mut par] {
            // Circuit worms chain RequestChannel events at +0 ns;
            // overlapping same-direction rows force contention.
            for nodes in [
                vec![0usize, 1, 2, 3],
                vec![1, 2, 3, 7],
                vec![0, 4, 8, 12],
                vec![4, 8, 12, 13],
            ] {
                let (src, dst) = (nodes[0], *nodes.last().expect("nonempty"));
                e.inject(&DeliveryPlan {
                    source: src,
                    destinations: vec![dst],
                    worms: vec![PlanWorm::Circuit(PlanPath {
                        nodes,
                        class: ClassChoice::Any,
                    })],
                });
            }
            e.run_to_quiescence();
        }
        assert_eq!(fingerprint(&mut serial), fingerprint(&mut par));
    }

    #[test]
    fn budget_stop_matches_serial_exactly() {
        let mesh = Mesh2D::new(8, 8);
        let router = DualPathRouter::mesh(mesh);
        let mk = || Engine::new(Network::new(&Mesh2D::new(8, 8), 1), SimConfig::default());
        for cap in [1u64, 7, 50, 333] {
            let mut serial = mk();
            let mut par = mk();
            par.set_engine_jobs_forced(2);
            for e in [&mut serial, &mut par] {
                e.set_budget(RunBudget::with_max_steps(cap));
                inject_dense(e, &router, 16);
                let done = e.run_to_quiescence();
                assert!(!done || !e.budget_exhausted());
            }
            assert_eq!(
                serial.budget_exhausted(),
                par.budget_exhausted(),
                "cap={cap}"
            );
            assert_eq!(
                fingerprint(&mut serial),
                fingerprint(&mut par),
                "budget stop at cap={cap} must leave identical state"
            );
        }
    }

    #[test]
    fn run_until_boundary_and_now_semantics_match() {
        let mesh = Mesh2D::new(8, 8);
        let router = DualPathRouter::mesh(mesh);
        let mk = || Engine::new(Network::new(&Mesh2D::new(8, 8), 1), SimConfig::default());
        let mut serial = mk();
        let mut par = mk();
        par.set_engine_jobs_forced(3);
        for e in [&mut serial, &mut par] {
            inject_dense(e, &router, 32);
            // Boundaries chosen to land mid-window, on exact event
            // times (multiples of 400), and past quiescence.
            let mut processed = Vec::new();
            for until in [1u64, 399, 400, 401, 850, 4_000, 1_000_000] {
                processed.push(e.run_until(until));
                processed.push(e.now as usize);
            }
            assert_eq!(e.in_flight, 0, "drained by the last boundary");
        }
        assert_eq!(fingerprint(&mut serial), fingerprint(&mut par));
    }

    /// The executor survives fault injection + drain cycles driven at
    /// `step()` granularity between windowed runs (the recovery
    /// supervisor's access pattern): engine state is the only
    /// authority between windows.
    #[test]
    fn interoperates_with_external_stepping() {
        let mesh = Mesh2D::new(8, 8);
        let router = DualPathRouter::mesh(mesh);
        let mk = || Engine::new(Network::new(&Mesh2D::new(8, 8), 1), SimConfig::default());
        let mut serial = mk();
        let mut par = mk();
        par.set_engine_jobs_forced(2);
        for e in [&mut serial, &mut par] {
            inject_dense(e, &router, 24);
            // Interleave single steps (always serial) with windowed
            // run_until calls.
            for _ in 0..10 {
                e.step();
            }
            e.run_until(5_000);
            for _ in 0..25 {
                e.step();
            }
            assert!(e.run_to_quiescence());
        }
        assert_eq!(fingerprint(&mut serial), fingerprint(&mut par));
    }

    #[test]
    fn engine_jobs_accessors() {
        let mesh = Mesh2D::new(4, 4);
        let mut e = Engine::new(Network::new(&mesh, 1), SimConfig::default());
        assert_eq!(e.engine_jobs(), 1);
        e.set_engine_jobs(4);
        assert_eq!(e.engine_jobs(), 4);
        e.set_engine_jobs(1);
        assert_eq!(e.engine_jobs(), 1);
        e.set_engine_jobs(0);
        assert_eq!(e.engine_jobs(), 1);
    }

    #[test]
    fn lookahead_floor() {
        let cfg = SimConfig::default();
        let env_t: Time = cfg.flit_time_ns().min(cfg.circuit_setup_ns).max(1);
        assert!(env_t >= 1);
    }
}
