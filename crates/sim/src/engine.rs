//! The flit-level discrete-event wormhole engine (the CSIM substitute).
//!
//! Mechanics (DESIGN.md §5):
//!
//! * a message is one or more *worms*; each worm claims a fixed set of
//!   channels (its plan) as its header advances;
//! * channels are granted whole-worm-exclusive, FIFO per channel; a
//!   blocked header waits in the queue while the worm's flits stay in the
//!   network (wormhole, not virtual cut-through);
//! * each node buffers at most `buffer_flits` flits per worm (single-flit
//!   input buffers by default), so a blocked header exerts backpressure
//!   up the worm;
//! * tree worms replicate flits at branch nodes; a flit is retained until
//!   *every* branch has taken it, and no flit flows through a branch node
//!   until the worm owns *all* of that node's branch channels — the
//!   lock-step, all-channels-before-transmission behaviour of §6.1 that
//!   makes undoubled tree multicast deadlock;
//! * a flit takes `flit_time` to cross a channel; header flits pay an
//!   extra `routing_delay` (the per-node routing decision);
//! * a destination has fully received the message when the tail flit
//!   crosses its incoming channel; message latency is measured to the
//!   last destination.

use std::collections::{BTreeSet, VecDeque};

use mcast_obs::{SimEvent, Sink};
use mcast_topology::{FaultMask, NodeId};

use crate::equeue::EventQueue;
use crate::error::SimError;
use crate::network::{ChannelId, Network};
use crate::plan::{ClassChoice, DeliveryPlan, PlanWorm};

/// Simulated time in nanoseconds.
pub type Time = u64;

/// Message id handed back by [`Engine::inject`].
pub type MessageId = usize;

/// Physical parameters of the simulated machine (§7.2 defaults: 20
/// Mbyte/s channels, 128-byte messages).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Flit width in bytes (per-flit channel transfer granularity).
    pub flit_bytes: u32,
    /// Channel bandwidth in bytes per second.
    pub channel_bandwidth: u64,
    /// Extra delay charged to the header flit at every hop (routing
    /// decision time).
    pub routing_delay_ns: u64,
    /// Input-buffer capacity per channel, in flits.
    pub buffer_flits: u32,
    /// Message payload size in bytes.
    pub message_bytes: u32,
    /// Per-hop circuit-establishment time for circuit-switched worms
    /// (control packet transfer + routing decision, §2.2.3).
    pub circuit_setup_ns: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            flit_bytes: 8,
            channel_bandwidth: 20_000_000,
            routing_delay_ns: 50,
            buffer_flits: 1,
            message_bytes: 128,
            // 8-byte control packet at 20 Mbyte/s plus the routing delay.
            circuit_setup_ns: 450,
        }
    }
}

impl SimConfig {
    /// Time for one flit to cross a channel, in nanoseconds.
    pub fn flit_time_ns(&self) -> Time {
        (self.flit_bytes as u64 * 1_000_000_000).div_ceil(self.channel_bandwidth)
    }

    /// Flits per message: payload plus one header flit.
    pub fn flits_per_message(&self) -> u32 {
        self.message_bytes.div_ceil(self.flit_bytes) + 1
    }
}

/// A finished multicast delivery.
#[derive(Debug, Clone)]
pub struct CompletedMessage {
    /// Message id.
    pub id: MessageId,
    /// Source node.
    pub source: NodeId,
    /// Injection time (when the message entered the source queue).
    pub injected_at: Time,
    /// Time the last destination finished receiving.
    pub completed_at: Time,
    /// Per-destination completion times (plan order).
    pub deliveries: Vec<(NodeId, Time)>,
    /// Channels the message claimed (its traffic).
    pub traffic: usize,
}

/// The remains of a message torn out of the network by
/// [`Engine::abort_message`] — what the recovery layer needs to decide
/// whether and how to retry.
#[derive(Debug, Clone)]
pub struct AbortedMessage {
    /// Message id.
    pub id: MessageId,
    /// Source node.
    pub source: NodeId,
    /// Injection time.
    pub injected_at: Time,
    /// Destinations that finished receiving before the abort.
    pub delivered: Vec<(NodeId, Time)>,
    /// Destinations still undelivered — the retry set.
    pub pending: Vec<NodeId>,
    /// Channels the plan claimed (its traffic).
    pub traffic: usize,
}

#[derive(Debug, Default)]
pub(crate) struct ChanState {
    pub(crate) owner: Option<(usize, usize)>,
    pub(crate) queue: VecDeque<(usize, usize)>,
}

/// One edge of a worm. Flat (no per-edge heap allocation): child and
/// group membership live in per-worm index arenas.
#[derive(Debug, Clone)]
pub(crate) struct EdgeState {
    pub(crate) from: NodeId,
    pub(crate) to: NodeId,
    pub(crate) class: ClassChoice,
    /// Edge feeding this one (`None` = fed directly by the source).
    pub(crate) upstream: Option<u32>,
    /// Start of this edge's slice of the worm's `children` arena.
    pub(crate) child_start: u32,
    /// Number of edges fed by this edge's head node.
    pub(crate) child_count: u32,
    /// Branch group this edge belongs to (siblings sharing a feed node).
    pub(crate) group: u32,
    /// First candidate channel id for this hop, resolved at worm-build
    /// time (class copies of a link have consecutive ids). The cascade
    /// never consults the network topology after build.
    pub(crate) cand_base: ChannelId,
    /// Number of candidate class copies (1 for `ClassChoice::Fixed`).
    pub(crate) cand_count: u32,
    /// Class-independent link id (`link_base` of the hop) — the
    /// conflict-clustering key for window-parallel execution.
    pub(crate) link_key: ChannelId,
    /// Channel granted to this edge.
    pub(crate) channel: Option<ChannelId>,
    /// Whether a channel request is pending in some queue.
    pub(crate) waiting: bool,
    /// The channel whose queue holds this edge's pending request —
    /// `Some` exactly while `waiting` (stuck diagnostics + abort scrub).
    pub(crate) queued_on: Option<ChannelId>,
    /// Flits that have fully crossed this edge.
    pub(crate) crossed: u32,
    /// Transfer in progress.
    pub(crate) busy: bool,
    /// Tail has crossed and the channel was released.
    pub(crate) done: bool,
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct GroupState {
    /// Start of this group's slice of the worm's `group_members` arena.
    pub(crate) start: u32,
    pub(crate) members: u32,
    pub(crate) owned: u32,
}

/// How a worm moves its flits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WormKind {
    /// Pipelined wormhole path.
    Path,
    /// Lock-step replicated tree.
    Tree,
    /// Circuit-switched path: reserve the whole circuit before streaming.
    Circuit,
}

#[derive(Debug)]
pub(crate) struct WormState {
    pub(crate) message: MessageId,
    pub(crate) kind: WormKind,
    pub(crate) edges: Vec<EdgeState>,
    pub(crate) groups: Vec<GroupState>,
    /// Child-edge arena: edge `e` feeds
    /// `children[e.child_start..e.child_start + e.child_count]`.
    pub(crate) children: Vec<u32>,
    /// Group-member arena: group `g` owns
    /// `group_members[g.start..g.start + g.members]`, ascending by edge
    /// index. Immutable for the worm's lifetime once built.
    pub(crate) group_members: Vec<u32>,
    pub(crate) edges_done: usize,
    pub(crate) active: bool,
    /// Incarnation counter for this worm *slot*: bumped on abort so
    /// events scheduled for a torn-down worm are recognized as stale
    /// after the slot is reused (events carry the gen they were
    /// scheduled under).
    pub(crate) gen: u32,
    /// Set when a channel request found every copy of a hop dead — the
    /// worm can never advance and needs recovery-layer intervention.
    pub(crate) stalled: bool,
    /// Staged worms: number of same-plan feeder worms that must complete
    /// before this worm requests its first channel. Zero for every other
    /// kind, and for a staged worm once released.
    pub(crate) deps_pending: u32,
    /// Worm slots (with their injection-time `gen`) released in-cascade
    /// by this worm's completion event.
    pub(crate) dependents: Vec<(u32, u32)>,
}

impl WormState {
    /// An inactive placeholder; `build_worm` fills slots in place so a
    /// reused slot keeps its vec capacities (and its `gen`). Also the
    /// stand-in left behind while window-parallel execution has a
    /// worm's state checked out into a component (`partition.rs`).
    pub(crate) fn vacant() -> Self {
        WormState {
            message: 0,
            kind: WormKind::Path,
            edges: Vec::new(),
            groups: Vec::new(),
            children: Vec::new(),
            group_members: Vec::new(),
            edges_done: 0,
            active: false,
            gen: 0,
            stalled: false,
            deps_pending: 0,
            dependents: Vec::new(),
        }
    }
}

/// Per-destination delivery slots. Single-destination unicasts — the
/// bulk of a mixed workload — keep theirs inline instead of paying a
/// heap allocation per message. `pub(crate)` so the window-parallel
/// executor can buffer retired slots for canonical-order replay.
#[derive(Debug)]
pub(crate) enum Deliveries {
    One((NodeId, Option<Time>)),
    Many(Vec<(NodeId, Option<Time>)>),
}

impl Deliveries {
    fn new(destinations: &[NodeId]) -> Self {
        match destinations {
            &[d] => Deliveries::One((d, None)),
            ds => Deliveries::Many(ds.iter().map(|&d| (d, None)).collect()),
        }
    }

    fn slots(&self) -> &[(NodeId, Option<Time>)] {
        match self {
            Deliveries::One(s) => std::slice::from_ref(s),
            Deliveries::Many(v) => v,
        }
    }

    fn slots_mut(&mut self) -> &mut [(NodeId, Option<Time>)] {
        match self {
            Deliveries::One(s) => std::slice::from_mut(s),
            Deliveries::Many(v) => v,
        }
    }
}

#[derive(Debug)]
pub(crate) struct MessageState {
    id: MessageId,
    source: NodeId,
    injected_at: Time,
    deliveries: Deliveries,
    worms_total: usize,
    worms_done: usize,
    traffic: usize,
    /// Deliveries recorded so far.
    delivered_count: usize,
}

#[derive(Debug, Clone, Copy)]
pub(crate) enum Event {
    TransferComplete {
        worm: u32,
        edge: u32,
        gen: u32,
    },
    /// Deferred channel request (circuit establishment chaining).
    RequestChannel {
        worm: u32,
        edge: u32,
        gen: u32,
    },
}

/// A cooperative execution budget shared by every engine a job drives
/// (DESIGN.md §13). The budget is `Arc`-backed so a sweep spanning many
/// engine instances charges one shared step account, and so a
/// supervisor thread can cancel a runaway simulation from outside —
/// the engine's run loops poll [`RunBudget::exhausted`] between events
/// and stop cleanly instead of wedging.
///
/// Engines without a budget installed pay nothing: the hot path only
/// checks an `Option` that is `None` by default.
#[derive(Debug, Clone)]
pub struct RunBudget {
    inner: std::sync::Arc<BudgetInner>,
}

#[derive(Debug)]
struct BudgetInner {
    /// Step ceiling across every engine charging this budget
    /// (`u64::MAX` = unlimited).
    max_steps: u64,
    /// Steps charged so far.
    steps: std::sync::atomic::AtomicU64,
    /// Asynchronous cancellation (deadline supervisor, shutdown).
    cancel: std::sync::atomic::AtomicBool,
}

impl RunBudget {
    /// A budget with no step ceiling (cancellation only).
    pub fn unlimited() -> Self {
        Self::with_max_steps(u64::MAX)
    }

    /// A budget that exhausts after `max_steps` engine events across
    /// all engines charging it.
    pub fn with_max_steps(max_steps: u64) -> Self {
        RunBudget {
            inner: std::sync::Arc::new(BudgetInner {
                max_steps,
                steps: std::sync::atomic::AtomicU64::new(0),
                cancel: std::sync::atomic::AtomicBool::new(false),
            }),
        }
    }

    /// Requests cancellation: every engine polling this budget stops at
    /// its next event boundary.
    pub fn cancel(&self) {
        self.inner
            .cancel
            .store(true, std::sync::atomic::Ordering::Relaxed);
    }

    /// Whether [`RunBudget::cancel`] was called.
    pub fn cancelled(&self) -> bool {
        self.inner.cancel.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Steps charged so far.
    pub fn steps_spent(&self) -> u64 {
        self.inner.steps.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Whether the budget is spent or cancelled.
    pub fn exhausted(&self) -> bool {
        self.cancelled() || self.steps_spent() >= self.inner.max_steps
    }

    /// Charges `n` steps and reports whether the budget is now
    /// exhausted (spent or cancelled).
    fn charge(&self, n: u64) -> bool {
        let prev = self
            .inner
            .steps
            .fetch_add(n, std::sync::atomic::Ordering::Relaxed);
        prev + n >= self.inner.max_steps || self.cancelled()
    }
}

/// The discrete-event wormhole simulator.
///
/// ```
/// use mcast_core::model::MulticastSet;
/// use mcast_sim::engine::{Engine, SimConfig};
/// use mcast_sim::network::Network;
/// use mcast_sim::routers::{DualPathRouter, MulticastRouter};
/// use mcast_topology::Mesh2D;
///
/// let mesh = Mesh2D::new(4, 4);
/// let router = DualPathRouter::mesh(mesh);
/// let mut engine = Engine::new(Network::new(&mesh, 1), SimConfig::default());
/// engine.inject(&router.plan(&MulticastSet::new(0, [15, 3, 12])));
/// assert!(engine.run_to_quiescence());
/// let done = engine.take_completed();
/// assert_eq!(done[0].deliveries.len(), 3);
/// ```
pub struct Engine {
    config: SimConfig,
    pub(crate) network: Network,
    pub(crate) channels: Vec<ChanState>,
    pub(crate) worms: Vec<WormState>,
    pub(crate) worm_free: Vec<usize>,
    pub(crate) messages: Vec<Option<MessageState>>,
    pub(crate) completed: Vec<CompletedMessage>,
    /// Calendar/bucket queue keyed on flit-time granularity, with a heap
    /// fallback for far-future events (DESIGN.md §10).
    pub(crate) events: EventQueue<Event>,
    pub(crate) now: Time,
    pub(crate) in_flight: usize,
    /// Events processed by this engine instance (the machine-insensitive
    /// work metric the BENCH probes report).
    pub(crate) steps: u64,
    /// Optional cooperative budget; `None` (the default) keeps the run
    /// loops budget-free.
    budget: Option<RunBudget>,
    /// Latched the first time the installed budget reported exhaustion.
    budget_hit: bool,
    next_message_id: MessageId,
    /// Streaming mode (DESIGN.md §16): retired message *slots* are
    /// recycled through `msg_free`, so `messages` stays bounded by the
    /// in-flight high-water mark instead of growing O(total injected).
    /// Off by default — then slot == external id and every result is
    /// byte-identical to the pre-streaming engine.
    stream: bool,
    /// Free message slots (streaming mode only; mirrors `worm_free`).
    msg_free: Vec<usize>,
    /// Recycled `Deliveries::Many` buffers (streaming mode only).
    spare_slots: Vec<Vec<(NodeId, Option<Time>)>>,
    /// Recycled `CompletedMessage::deliveries` buffers, refilled by
    /// [`Engine::drain_completed`] (streaming mode only).
    spare_done: Vec<Vec<(NodeId, Time)>>,
    /// High-water mark of live worm slots — the memory gauge proving a
    /// streaming run's footprint tracks in-flight traffic, not message
    /// count. Updated at worm build (injection happens between run
    /// calls, so the gauge is engine-jobs independent).
    peak_live_worms: usize,
    /// High-water mark of in-flight messages.
    peak_in_flight: usize,
    flit_time: Time,
    flits: u32,
    /// Cumulative transfer time per channel (utilization accounting).
    pub(crate) busy_ns: Vec<Time>,
    /// Total flit hops started (one per channel traversal of one flit) —
    /// the simulator's throughput denominator, counted unconditionally so
    /// benchmarks don't need a sink installed to read it.
    pub(crate) flit_hops: u64,
    /// Channel whose grant/release history is traced to stderr (debug aid,
    /// set from the `MCAST_TRACE_CHAN` environment variable).
    trace_chan: Option<ChannelId>,
    /// Test-only injected bug (DESIGN.md §12): when set, the channel-class
    /// check is swapped — `ClassChoice::Fixed(c)` resolves to the mirrored
    /// class `classes - 1 - c`. Exists so the conformance harness can
    /// prove it catches a real engine defect; never set in production.
    chaos_swap_class: bool,
    /// Optional observability sink (DESIGN.md §9). `None` — the default —
    /// skips event construction entirely, keeping the uninstrumented hot
    /// path unchanged.
    sink: Option<Box<dyn Sink>>,
    /// Worm-build scratch: node → edge feeding it (`u32::MAX` = none).
    /// Sized to the node count; touched entries are reset after each
    /// build so no per-message map allocation happens.
    scratch_feeder: Vec<u32>,
    /// Worm-build scratch: group keys and arena cursors.
    scratch_idx: Vec<u32>,
    /// Inject scratch: plan-index → worm-slot map for wiring staged
    /// dependencies without a per-inject allocation.
    scratch_slots: Vec<u32>,
    /// Window-parallel executor (DESIGN.md §15): `Some` routes
    /// `run_until`/`run_to_quiescence` through the deterministic
    /// window-cohort path in `partition.rs`; `None` (the default) is
    /// the untouched serial event loop. All executor state is scratch —
    /// between windows the engine fields are the only authority, so
    /// `step()`-level callers (the recovery supervisor, saturation
    /// probes) interoperate freely with windowed runs.
    pub(crate) par: Option<crate::partition::ParallelExec>,
}

impl Engine {
    /// Creates an engine over a network with the given physical
    /// parameters.
    pub fn new(network: Network, config: SimConfig) -> Self {
        let channels = (0..network.num_channels())
            .map(|_| ChanState::default())
            .collect();
        Engine {
            flit_time: config.flit_time_ns(),
            flits: config.flits_per_message(),
            busy_ns: vec![0; network.num_channels()],
            flit_hops: 0,
            trace_chan: std::env::var("MCAST_TRACE_CHAN")
                .ok()
                .and_then(|v| v.parse().ok()),
            chaos_swap_class: false,
            events: EventQueue::new(config.flit_time_ns()),
            scratch_feeder: vec![u32::MAX; network.num_nodes()],
            scratch_idx: Vec::new(),
            scratch_slots: Vec::new(),
            config,
            network,
            channels,
            worms: Vec::new(),
            worm_free: Vec::new(),
            messages: Vec::new(),
            completed: Vec::new(),
            now: 0,
            in_flight: 0,
            steps: 0,
            budget: None,
            budget_hit: false,
            next_message_id: 0,
            stream: false,
            msg_free: Vec::new(),
            spare_slots: Vec::new(),
            spare_done: Vec::new(),
            peak_live_worms: 0,
            peak_in_flight: 0,
            sink: None,
            par: None,
        }
    }

    /// Sets the number of worker lanes for single-run parallelism
    /// (DESIGN.md §15). `1` (the default) is the plain serial event
    /// loop; `N > 1` routes `run_until`/`run_to_quiescence` through the
    /// deterministic window-cohort executor, whose output is
    /// bit-identical to serial. `MCAST_TRACE_CHAN` tracing needs the
    /// serial interleaving to be readable, so it forces jobs back to 1.
    pub fn set_engine_jobs(&mut self, jobs: usize) {
        if jobs <= 1 || self.trace_chan.is_some() {
            self.par = None;
        } else {
            self.par = Some(crate::partition::ParallelExec::new(jobs));
        }
    }

    /// Worker lanes the run loops will use (1 = serial path).
    pub fn engine_jobs(&self) -> usize {
        self.par.as_ref().map_or(1, |p| p.jobs())
    }

    /// Test hook: install the window-cohort executor even for `jobs <=
    /// 1`, so the windowed path (cohort collection, conflict
    /// clustering, take/merge) is exercised without needing spare
    /// cores. Production callers use [`Engine::set_engine_jobs`].
    #[doc(hidden)]
    pub fn set_engine_jobs_forced(&mut self, jobs: usize) {
        self.par = Some(crate::partition::ParallelExec::forced(jobs.max(1)));
    }

    /// Installs a cooperative [`RunBudget`]: the run loops charge one
    /// step per processed event and stop at the next event boundary
    /// once the budget is spent or cancelled. Check
    /// [`Engine::budget_exhausted`] after a run loop returns to
    /// distinguish a budget stop from quiescence.
    pub fn set_budget(&mut self, budget: RunBudget) {
        self.budget = Some(budget);
    }

    /// Whether an installed budget stopped a run loop (spent or
    /// cancelled). Always `false` without a budget.
    pub fn budget_exhausted(&self) -> bool {
        self.budget_hit
    }

    /// Events processed by this engine so far — an environment-
    /// insensitive work metric (identical across machines for the same
    /// seed, unlike wall-clock).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Charges one step to the installed budget (if any); returns
    /// `true` when the run loop should stop. `pub(crate)`: the windowed
    /// executor charges per popped event, exactly like the serial loop.
    #[inline]
    pub(crate) fn charge_budget(&mut self) -> bool {
        if let Some(b) = &self.budget {
            if self.budget_hit || b.charge(1) {
                self.budget_hit = true;
                return true;
            }
        }
        false
    }

    /// Installs an observability sink; subsequent simulation activity is
    /// emitted as [`SimEvent`]s. Sinks observe only — installing one must
    /// not change any simulation result (enforced by the determinism
    /// property tests in the workspace root).
    pub fn set_sink(&mut self, sink: Box<dyn Sink>) {
        self.sink = Some(sink);
    }

    /// Removes and returns the installed sink, if any.
    pub fn take_sink(&mut self) -> Option<Box<dyn Sink>> {
        self.sink.take()
    }

    /// Test-only fault injection for the conformance harness: swaps the
    /// channel-class check so `ClassChoice::Fixed(c)` resolves to the
    /// mirrored class `classes - 1 - c`. The differential fuzzer
    /// (DESIGN.md §12) must detect this as a class-containment
    /// violation and shrink it to a minimal reproducer. Class
    /// resolution happens at worm-build time, so arm this **before**
    /// injecting. Never enable outside verification tests.
    #[doc(hidden)]
    pub fn set_chaos_swap_class(&mut self, on: bool) {
        self.chaos_swap_class = on;
    }

    /// Emits one event into the sink, if one is installed. `pub(crate)`
    /// so the recovery supervisor can emit through its wrapped engine.
    #[inline]
    pub(crate) fn emit(&mut self, ev: SimEvent) {
        if let Some(s) = self.sink.as_mut() {
            s.record(&ev);
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The physical configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The network fabric.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Messages injected but not yet fully delivered.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Total flit hops simulated so far (each flit crossing each channel
    /// counts once — the same quantity a [`Sink`] sees as `FlitHop`
    /// events, but available without instrumentation overhead).
    pub fn flit_hops(&self) -> u64 {
        self.flit_hops
    }

    /// Drains the list of completed messages.
    pub fn take_completed(&mut self) -> Vec<CompletedMessage> {
        std::mem::take(&mut self.completed)
    }

    /// Visits and discards every completed message without surrendering
    /// the backing storage: the batch vec keeps its capacity and, in
    /// streaming mode, each message's `deliveries` vec returns to the
    /// engine's spare pool for the next injection — the O(in-flight)
    /// alternative to [`Engine::take_completed`]'s per-harvest
    /// allocation (DESIGN.md §16).
    pub fn drain_completed(&mut self, mut f: impl FnMut(&CompletedMessage)) {
        let mut batch = std::mem::take(&mut self.completed);
        for done in batch.drain(..) {
            f(&done);
            if self.stream {
                let mut v = done.deliveries;
                v.clear();
                self.spare_done.push(v);
            }
        }
        self.completed = batch;
    }

    /// Enables or disables streaming (slot-recycling) injection. Must
    /// be set before the first injection: in streaming mode message
    /// slots are reused after retirement, so externally reported ids
    /// (sink events, [`CompletedMessage::id`]) stay monotone while the
    /// handles returned by [`Engine::inject`] and accepted by
    /// [`Engine::abort_message`]/[`Engine::delivery_status`] denote
    /// *live* messages only. Off (the default), slot == id and the
    /// engine behaves exactly as before.
    pub fn set_stream_mode(&mut self, on: bool) {
        self.stream = on;
    }

    /// Whether streaming (slot-recycling) injection is enabled.
    pub fn stream_mode(&self) -> bool {
        self.stream
    }

    /// Worm slots currently live (allocated and not on the freelist).
    pub fn live_worms(&self) -> usize {
        self.worms.len() - self.worm_free.len()
    }

    /// High-water mark of live worm slots over the engine's lifetime —
    /// in a streaming run this is bounded by in-flight traffic, not by
    /// the number of messages injected.
    pub fn peak_live_worms(&self) -> usize {
        self.peak_live_worms
    }

    /// High-water mark of in-flight messages.
    pub fn peak_in_flight(&self) -> usize {
        self.peak_in_flight
    }

    /// Message slots allocated (live + free). Grows O(messages) without
    /// streaming, O(peak in-flight) with it.
    pub fn message_slots(&self) -> usize {
        self.messages.len()
    }

    /// Injects a multicast message at the current simulation time.
    /// Returns its handle — equal to the externally reported id unless
    /// streaming mode recycled a slot ([`Engine::set_stream_mode`]).
    /// Zero-worm plans complete immediately.
    pub fn inject(&mut self, plan: &DeliveryPlan) -> MessageId {
        let id = self.next_message_id;
        self.next_message_id += 1;
        let traffic = plan.traffic();
        let deliveries = if self.stream {
            match plan.destinations[..] {
                [d] => Deliveries::One((d, None)),
                ref ds => {
                    let mut v = self.spare_slots.pop().unwrap_or_default();
                    v.extend(ds.iter().map(|&d| (d, None)));
                    Deliveries::Many(v)
                }
            }
        } else {
            Deliveries::new(&plan.destinations)
        };
        let msg = MessageState {
            id,
            source: plan.source,
            injected_at: self.now,
            deliveries,
            worms_total: plan.worms.len(),
            worms_done: 0,
            traffic,
            delivered_count: 0,
        };
        let msg_slot = match self.msg_free.pop() {
            Some(slot) => {
                debug_assert!(self.stream && self.messages[slot].is_none());
                self.messages[slot] = Some(msg);
                slot
            }
            None => {
                self.messages.push(Some(msg));
                let slot = self.messages.len() - 1;
                debug_assert!(self.stream || slot == id);
                slot
            }
        };
        self.in_flight += 1;
        self.peak_in_flight = self.peak_in_flight.max(self.in_flight);
        if self.sink.is_some() {
            self.emit(SimEvent::MessageInjected {
                at: self.now,
                message: id,
                source: plan.source,
                worms: plan.worms.len(),
                destinations: plan.destinations.len(),
            });
        }

        // Degenerate source-only "deliveries" (destination == source)
        // complete at injection.
        {
            let now = self.now;
            let m = self.messages[msg_slot].as_mut().expect("just inserted");
            let source = m.source;
            let mut newly = 0;
            for (d, t) in m.deliveries.slots_mut() {
                if *d == source {
                    *t = Some(now);
                    newly += 1;
                }
            }
            m.delivered_count += newly;
            if newly > 0 {
                self.emit(SimEvent::Delivered {
                    at: now,
                    message: id,
                    node: plan.source,
                });
            }
        }

        if plan.worms.is_empty() {
            finish_message(self, msg_slot);
            return msg_slot;
        }

        // Build every worm first so staged dependencies can be wired by
        // plan index, then issue root requests in worm order — the same
        // request order as the old build-and-request interleaving, since
        // building touches no channel or event state.
        let mut slots = std::mem::take(&mut self.scratch_slots);
        slots.clear();
        for w in &plan.worms {
            let widx = self.build_worm(msg_slot, w);
            slots.push(widx as u32);
        }
        for (i, pw) in plan.worms.iter().enumerate() {
            if let PlanWorm::Staged(s) = pw {
                let widx = slots[i] as usize;
                let wgen = self.worms[widx].gen;
                self.worms[widx].deps_pending = s.after.len() as u32;
                for &a in &s.after {
                    debug_assert!(
                        (a as usize) < i,
                        "staged worm {i} depends on worm {a}, not an earlier one"
                    );
                    let feeder = slots[a as usize] as usize;
                    self.worms[feeder].dependents.push((widx as u32, wgen));
                }
            }
        }
        for &slot in &slots {
            let widx = slot as usize;
            if self.worms[widx].deps_pending > 0 {
                // Held at the source until its last feeder's completion
                // cascade releases it.
                continue;
            }
            match self.worms[widx].kind {
                WormKind::Circuit => {
                    // The control packet claims one channel at a time.
                    request_channel(self, widx, 0);
                }
                WormKind::Path | WormKind::Tree => {
                    // Request the root-group channels. Requests never
                    // touch the upstream topology of other edges, so a
                    // plain forward scan needs no collected list.
                    for e in 0..self.worms[widx].edges.len() {
                        if self.worms[widx].edges[e].upstream.is_none() {
                            request_channel(self, widx, e);
                        }
                    }
                }
            }
        }
        self.scratch_slots = slots;
        msg_slot
    }

    fn build_worm(&mut self, message: MessageId, plan: &PlanWorm) -> usize {
        // Fill a free slot in place: its vec capacities survive reuse and
        // its incarnation counter carries forward, so events scheduled
        // for the previous (aborted) occupant stay stale.
        let slot = match self.worm_free.pop() {
            Some(slot) => slot,
            None => {
                self.worms.push(WormState::vacant());
                self.worms.len() - 1
            }
        };
        self.peak_live_worms = self
            .peak_live_worms
            .max(self.worms.len() - self.worm_free.len());
        let kind = match plan {
            PlanWorm::Path(_) | PlanWorm::Staged(_) => WormKind::Path,
            PlanWorm::Tree(_) => WormKind::Tree,
            PlanWorm::Circuit(_) => WormKind::Circuit,
        };
        let Engine {
            worms,
            scratch_feeder,
            scratch_idx,
            ..
        } = self;
        let w = &mut worms[slot];
        w.message = message;
        w.kind = kind;
        w.edges.clear();
        w.groups.clear();
        w.children.clear();
        w.group_members.clear();
        w.edges_done = 0;
        w.active = true;
        w.stalled = false;
        w.deps_pending = 0;
        w.dependents.clear();
        match plan {
            PlanWorm::Path(p)
            | PlanWorm::Circuit(p)
            | PlanWorm::Staged(crate::plan::PlanStage { path: p, .. }) => {
                assert!(p.nodes.len() >= 2, "path worm needs at least one hop");
                let hops = p.nodes.len() - 1;
                for (i, win) in p.nodes.windows(2).enumerate() {
                    let has_child = i + 1 < hops;
                    if has_child {
                        w.children.push(i as u32 + 1);
                    }
                    w.edges.push(EdgeState {
                        from: win[0],
                        to: win[1],
                        class: p.class,
                        upstream: if i == 0 { None } else { Some(i as u32 - 1) },
                        child_start: i as u32,
                        child_count: u32::from(has_child),
                        group: i as u32, // every path edge is its own group
                        cand_base: 0,    // resolved below
                        cand_count: 0,
                        link_key: 0,
                        channel: None,
                        waiting: false,
                        queued_on: None,
                        crossed: 0,
                        busy: false,
                        done: false,
                    });
                }
            }
            PlanWorm::Tree(t) => {
                assert!(!t.edges.is_empty(), "tree worm needs at least one edge");
                // `scratch_feeder[node]` = edge that feeds `node`.
                for (i, &(from, to, class)) in t.edges.iter().enumerate() {
                    let upstream = if from == t.root {
                        None
                    } else {
                        let f = scratch_feeder[from];
                        assert!(f != u32::MAX, "tree edge {from}->{to} has no feeder");
                        Some(f)
                    };
                    assert!(
                        scratch_feeder[to] == u32::MAX,
                        "tree plan visits node {to} twice"
                    );
                    scratch_feeder[to] = i as u32;
                    w.edges.push(EdgeState {
                        from,
                        to,
                        class,
                        upstream,
                        child_start: 0, // carved below
                        child_count: 0,
                        group: u32::MAX, // assigned below
                        cand_base: 0,    // resolved below
                        cand_count: 0,
                        link_key: 0,
                        channel: None,
                        waiting: false,
                        queued_on: None,
                        crossed: 0,
                        busy: false,
                        done: false,
                    });
                }
                for &(_, to, _) in &t.edges {
                    scratch_feeder[to] = u32::MAX;
                }
                // Carve per-edge child ranges out of the arena: count,
                // prefix-sum, then fill (ascending edge index, the same
                // order the old per-edge vecs were pushed in).
                for i in 0..w.edges.len() {
                    if let Some(u) = w.edges[i].upstream {
                        w.edges[u as usize].child_count += 1;
                    }
                }
                let mut start = 0u32;
                for e in w.edges.iter_mut() {
                    e.child_start = start;
                    start += e.child_count;
                }
                w.children.resize(start as usize, 0);
                scratch_idx.clear();
                scratch_idx.extend(w.edges.iter().map(|e| e.child_start));
                for i in 0..w.edges.len() {
                    if let Some(u) = w.edges[i].upstream {
                        let c = scratch_idx[u as usize];
                        w.children[c as usize] = i as u32;
                        scratch_idx[u as usize] = c + 1;
                    }
                }
            }
        }
        // Group assignment: siblings sharing the same feeding edge (or the
        // root) form one branch group — the nCUBE-2 all-or-nothing
        // acquisition unit.
        match kind {
            WormKind::Circuit => {
                // The whole circuit is one all-or-nothing reservation unit.
                let n = w.edges.len() as u32;
                w.groups.push(GroupState {
                    start: 0,
                    members: n,
                    owned: 0,
                });
                for i in 0..n {
                    w.edges[i as usize].group = 0;
                    w.group_members.push(i);
                }
            }
            WormKind::Path => {
                for i in 0..w.edges.len() as u32 {
                    w.groups.push(GroupState {
                        start: i,
                        members: 1,
                        owned: 0,
                    });
                    w.group_members.push(i);
                }
            }
            WormKind::Tree => {
                // `scratch_idx[upstream + 1]` (0 = root-fed) = group id;
                // first occurrence creates the group, matching the old
                // hash-map entry() walk's creation order.
                scratch_idx.clear();
                scratch_idx.resize(w.edges.len() + 1, u32::MAX);
                for i in 0..w.edges.len() {
                    let key = match w.edges[i].upstream {
                        None => 0,
                        Some(u) => u as usize + 1,
                    };
                    let g = if scratch_idx[key] == u32::MAX {
                        w.groups.push(GroupState {
                            start: 0,
                            members: 0,
                            owned: 0,
                        });
                        let g = w.groups.len() as u32 - 1;
                        scratch_idx[key] = g;
                        g
                    } else {
                        scratch_idx[key]
                    };
                    w.edges[i].group = g;
                    w.groups[g as usize].members += 1;
                }
                let mut start = 0u32;
                for g in w.groups.iter_mut() {
                    g.start = start;
                    start += g.members;
                }
                w.group_members.resize(start as usize, 0);
                scratch_idx.clear();
                scratch_idx.extend(w.groups.iter().map(|g| g.start));
                for i in 0..w.edges.len() {
                    let g = w.edges[i].group as usize;
                    w.group_members[scratch_idx[g] as usize] = i as u32;
                    scratch_idx[g] += 1;
                }
            }
        }
        // Resolve every hop's channel-candidate range once, here at
        // build time, so the event cascade never consults the network —
        // the property that lets window-parallel components run against
        // fully detached state (partition.rs). `link_key` is the
        // class-independent link id used for conflict clustering. The
        // chaos class swap (DESIGN.md §12) resolves here too, which is
        // why it must be armed before injection.
        //
        // INVARIANT: plans are built from the same topology as the
        // network, so every hop names an existing channel table entry; a
        // miss is a malformed plan (caller bug), not a runtime condition
        // — `inject_checked` screens untrusted plans before they get
        // here. Class copies of a link have consecutive ids
        // (class-ascending), so one range scan covers the candidates.
        for i in 0..self.worms[slot].edges.len() {
            let (from, to, class) = {
                let es = &self.worms[slot].edges[i];
                (es.from, es.to, es.class)
            };
            let link_key = self
                .network
                .link_base(from, to)
                .unwrap_or_else(|| panic!("no channel {from}->{to} in network"));
            let (base, count) = match class {
                ClassChoice::Fixed(c) => {
                    let c = if self.chaos_swap_class {
                        self.network.classes() - 1 - c
                    } else {
                        c
                    };
                    let id = self
                        .network
                        .id_of(mcast_topology::Channel::with_class(from, to, c))
                        .unwrap_or_else(|| panic!("channel {from}->{to} class {c} not in network"));
                    (id, 1)
                }
                ClassChoice::Any => (link_key, self.network.classes() as u32),
            };
            let es = &mut self.worms[slot].edges[i];
            es.cand_base = base;
            es.cand_count = count;
            es.link_key = link_key;
        }
        slot
    }

    /// Processes a single event. Returns `false` if no events remain.
    pub fn step(&mut self) -> bool {
        let Some((t, _, ev)) = self.events.pop() else {
            return false;
        };
        debug_assert!(t >= self.now, "time must not go backwards");
        self.now = t;
        self.steps += 1;
        exec_event(self, ev);
        true
    }

    /// Runs until no events remain or the simulation time would exceed
    /// `until`. Returns the number of events processed.
    pub fn run_until(&mut self, until: Time) -> usize {
        if self.par.is_some() {
            return crate::partition::run_windowed_until(self, until);
        }
        let mut n = 0;
        while let Some(t) = self.events.peek_time() {
            if t > until {
                break;
            }
            if self.charge_budget() {
                return n;
            }
            self.step();
            n += 1;
        }
        self.now = self.now.max(until);
        n
    }

    /// Runs until quiescent (no events pending). Returns `true` if all
    /// injected messages completed — `false` means the network is
    /// **deadlocked**: worms hold channels but none can make progress —
    /// or, with a [`RunBudget`] installed, that the budget ran out
    /// (check [`Engine::budget_exhausted`] to tell the two apart).
    pub fn run_to_quiescence(&mut self) -> bool {
        if self.par.is_some() {
            return crate::partition::run_windowed_quiesce(self);
        }
        while self.has_events() {
            if self.charge_budget() {
                return false;
            }
            self.step();
        }
        self.in_flight == 0
    }

    /// Cumulative transfer (busy) time per channel, in nanoseconds —
    /// utilization accounting for hot-spot analysis (§7.2).
    pub fn channel_busy_ns(&self) -> &[Time] {
        &self.busy_ns
    }

    /// Utilization of a channel over the elapsed simulation time (0..=1).
    pub fn channel_utilization(&self, chan: ChannelId) -> f64 {
        if self.now == 0 {
            0.0
        } else {
            self.busy_ns[chan] as f64 / self.now as f64
        }
    }

    /// Pending channel requests per active worm: `(message, from, to)`
    /// triples whose edge sits in some channel queue — the "requiring"
    /// half of the Fig 6.4-style deadlock listings.
    pub fn waiting_requests(&self) -> Vec<(MessageId, NodeId, NodeId)> {
        let mut out = Vec::new();
        for w in &self.worms {
            if !w.active {
                continue;
            }
            for e in &w.edges {
                if e.waiting {
                    out.push((w.message, e.from, e.to));
                }
            }
        }
        out
    }

    /// Channels currently held per worm message — exposed for deadlock
    /// diagnostics (the Fig 6.1/6.2-style wait-for analysis).
    pub fn held_channels(&self) -> Vec<(MessageId, Vec<ChannelId>)> {
        let mut out = Vec::new();
        for w in &self.worms {
            if !w.active {
                continue;
            }
            let held: Vec<ChannelId> = w
                .edges
                .iter()
                .filter(|e| !e.done)
                .filter_map(|e| e.channel)
                .collect();
            out.push((w.message, held));
        }
        out
    }

    /// Channels each active worm is queued on, per message — the exact
    /// "requires" half of a stuck diagnostic (unlike
    /// [`Engine::waiting_requests`], this names the specific class copy
    /// the request sits behind).
    pub fn awaited_channels(&self) -> Vec<(MessageId, Vec<ChannelId>)> {
        let mut out = Vec::new();
        for w in &self.worms {
            if !w.active {
                continue;
            }
            let awaited: Vec<ChannelId> = w
                .edges
                .iter()
                .filter(|e| e.waiting)
                .filter_map(|e| e.queued_on)
                .collect();
            out.push((w.message, awaited));
        }
        out
    }

    /// Messages owning a worm that stalled on an all-dead hop: they can
    /// never finish without recovery intervention.
    pub fn stalled_messages(&self) -> Vec<MessageId> {
        let set: BTreeSet<MessageId> = self
            .worms
            .iter()
            .filter(|w| w.active && w.stalled)
            .map(|w| w.message)
            .collect();
        set.into_iter().collect()
    }

    /// Ids of messages injected but neither completed nor aborted.
    /// These are *slot* handles: under streaming injection slots
    /// recycle, so prefer [`Engine::live_message_ids`] when comparing
    /// runs.
    pub fn live_messages(&self) -> Vec<MessageId> {
        self.messages
            .iter()
            .enumerate()
            .filter_map(|(i, m)| m.as_ref().map(|_| i))
            .collect()
    }

    /// External ids of live messages, ascending — stable across
    /// streaming and non-streaming runs (external ids never recycle;
    /// without streaming this equals [`Engine::live_messages`]).
    pub fn live_message_ids(&self) -> Vec<MessageId> {
        let mut ids: Vec<MessageId> = self.messages.iter().flatten().map(|m| m.id).collect();
        ids.sort_unstable();
        ids
    }

    /// Per-destination delivery times of a live message (`None` entries
    /// are still pending). Returns `None` if the message is not live.
    pub fn delivery_status(&self, msg: MessageId) -> Option<Vec<(NodeId, Option<Time>)>> {
        let m = self.messages.get(msg)?.as_ref()?;
        Some(m.deliveries.slots().to_vec())
    }

    /// Injection time of a live message.
    pub fn message_injected_at(&self, msg: MessageId) -> Option<Time> {
        self.messages.get(msg)?.as_ref().map(|m| m.injected_at)
    }

    /// Whether any event is still pending (a quiescent engine with
    /// messages in flight is wedged).
    pub fn has_events(&self) -> bool {
        !self.events.is_empty()
    }

    /// Time of the next pending event, if any. A supervisor uses this to
    /// process events only up to its next external action and to catch
    /// the engine at the exact moment it wedges. O(1): the calendar
    /// queue keeps its current bucket sorted.
    pub fn next_event_time(&self) -> Option<Time> {
        self.events.peek_time()
    }

    /// Like [`Engine::inject`], but validates the plan against the
    /// channel table and the current fault state first: unknown hops,
    /// hops whose channels all died, and empty worms become a
    /// [`SimError`] instead of a panic deep in the event loop.
    pub fn inject_checked(&mut self, plan: &DeliveryPlan) -> Result<MessageId, SimError> {
        for (i, w) in plan.worms.iter().enumerate() {
            match w {
                PlanWorm::Path(p) | PlanWorm::Circuit(p) => {
                    if p.nodes.len() < 2 {
                        return Err(SimError::EmptyWorm);
                    }
                    for hop in p.nodes.windows(2) {
                        self.check_hop(hop[0], hop[1], p.class)?;
                    }
                }
                PlanWorm::Staged(s) => {
                    if s.path.nodes.len() < 2 {
                        return Err(SimError::EmptyWorm);
                    }
                    for hop in s.path.nodes.windows(2) {
                        self.check_hop(hop[0], hop[1], s.path.class)?;
                    }
                    if s.after.iter().any(|&a| a as usize >= i) {
                        return Err(SimError::BadDependency { worm: i });
                    }
                }
                PlanWorm::Tree(t) => {
                    if t.edges.is_empty() {
                        return Err(SimError::EmptyWorm);
                    }
                    for &(from, to, class) in &t.edges {
                        self.check_hop(from, to, class)?;
                    }
                }
            }
        }
        Ok(self.inject(plan))
    }

    fn check_hop(&self, from: NodeId, to: NodeId, class: ClassChoice) -> Result<(), SimError> {
        let ids: Vec<ChannelId> = match class {
            ClassChoice::Fixed(c) => self
                .network
                .id_of(mcast_topology::Channel::with_class(from, to, c))
                .into_iter()
                .collect(),
            ClassChoice::Any => self.network.ids_of_link(from, to),
        };
        if ids.is_empty() {
            return Err(SimError::UnknownChannel { from, to });
        }
        if !ids.iter().any(|&c| self.network.is_alive(c)) {
            return Err(SimError::DeadChannel { from, to });
        }
        Ok(())
    }

    /// Fails the physical link between `a` and `b` (both directions, all
    /// classes). Returns the messages broken by the failure — worms that
    /// *owned* a dead channel (their flits straddle the severed wire) or
    /// stalled re-routing a queued request. **The caller must abort the
    /// returned messages**; the engine does not tear them down itself.
    pub fn fail_link(&mut self, a: NodeId, b: NodeId) -> Vec<MessageId> {
        self.emit(SimEvent::LinkFailed { at: self.now, a, b });
        let died = self.network.kill_link(a, b);
        self.on_channels_died(&died)
    }

    /// Fails a node: every incident link dies. Returns the broken
    /// messages, as for [`Engine::fail_link`].
    pub fn fail_node(&mut self, node: NodeId) -> Vec<MessageId> {
        self.emit(SimEvent::NodeFailed { at: self.now, node });
        let died = self.network.kill_node(node);
        self.on_channels_died(&died)
    }

    /// Applies a [`FaultMask`] to the fabric (kills every channel the
    /// mask declares dead). Returns the broken messages, as for
    /// [`Engine::fail_link`].
    pub fn apply_fault_mask(&mut self, mask: &FaultMask) -> Vec<MessageId> {
        let died = self.network.apply_fault_mask(mask);
        self.on_channels_died(&died)
    }

    fn on_channels_died(&mut self, died: &[ChannelId]) -> Vec<MessageId> {
        let mut affected: BTreeSet<MessageId> = BTreeSet::new();
        for &chan in died {
            // The owning worm is physically severed.
            if let Some((w, _)) = self.channels[chan].owner {
                if self.worms[w].active {
                    affected.insert(self.worms[w].message);
                }
            }
            // Queued waiters re-request: a surviving class copy absorbs
            // them, otherwise they stall and are reported broken too.
            let waiters: Vec<(usize, usize)> = self.channels[chan].queue.drain(..).collect();
            for (w, e) in waiters {
                if self.worms[w].active && self.worms[w].edges[e].waiting {
                    self.worms[w].edges[e].waiting = false;
                    self.worms[w].edges[e].queued_on = None;
                    request_channel(self, w, e);
                    if self.worms[w].stalled {
                        affected.insert(self.worms[w].message);
                    }
                }
            }
        }
        affected.into_iter().collect()
    }

    /// Tears a message out of the network: releases every channel its
    /// worms hold (waking queued waiters), scrubs its pending requests
    /// from channel queues, invalidates its in-flight events, and frees
    /// its worm slots. Returns what was delivered and what remains — the
    /// recovery layer's retry set. `None` if the message is not live.
    pub fn abort_message(&mut self, msg: MessageId) -> Option<AbortedMessage> {
        self.messages.get(msg)?.as_ref()?;
        for w in 0..self.worms.len() {
            if !(self.worms[w].active && self.worms[w].message == msg) {
                continue;
            }
            self.worms[w].active = false;
            // Stale-event guard: anything scheduled under the old gen is
            // dropped on pop, even after this slot is reused.
            self.worms[w].gen = self.worms[w].gen.wrapping_add(1);
            for e in 0..self.worms[w].edges.len() {
                if let Some(c) = self.worms[w].edges[e].queued_on.take() {
                    self.channels[c]
                        .queue
                        .retain(|&(qw, qe)| !(qw == w && qe == e));
                }
                self.worms[w].edges[e].waiting = false;
                self.worms[w].edges[e].busy = false;
                if let Some(chan) = self.worms[w].edges[e].channel.take() {
                    release(self, chan);
                }
            }
            self.worm_free.push(w);
        }
        let m = self.messages[msg].take().expect("liveness checked above");
        self.in_flight -= 1;
        let mut delivered = Vec::new();
        let mut pending = Vec::new();
        for &(d, t) in m.deliveries.slots() {
            match t {
                Some(t) => delivered.push((d, t)),
                None => pending.push(d),
            }
        }
        self.emit(SimEvent::MessageAborted {
            at: self.now,
            message: m.id,
            delivered: delivered.len(),
            pending: pending.len(),
        });
        if self.stream {
            if let Deliveries::Many(mut v) = m.deliveries {
                v.clear();
                self.spare_slots.push(v);
            }
            self.msg_free.push(msg);
        }
        Some(AbortedMessage {
            id: m.id,
            source: m.source,
            injected_at: m.injected_at,
            delivered,
            pending,
            traffic: m.traffic,
        })
    }

    /// Retires message slot `slot`, recycling its delivery buffer — the
    /// serial half of [`ExecCtx::retire_msg`], also called by the
    /// window-parallel merge when it replays buffered retirements in
    /// canonical cohort order (so `msg_free` ends up in the exact order
    /// serial execution would produce). A no-op (beyond dropping the
    /// buffer) when streaming is off, preserving the grow-only slot ==
    /// id invariant byte-for-byte.
    pub(crate) fn retire_slot(&mut self, slot: usize, d: Deliveries) {
        if self.stream {
            if let Deliveries::Many(mut v) = d {
                v.clear();
                self.spare_slots.push(v);
            }
            self.msg_free.push(slot);
        }
    }
}

/// The physical timing constants the event cascade needs, detached
/// from the engine so window-parallel component execution
/// (`partition.rs`) can run the same cascade against checked-out state.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SimEnv {
    pub(crate) flit_time: Time,
    pub(crate) flits: u32,
    pub(crate) routing_delay_ns: u64,
    pub(crate) buffer_flits: u32,
    pub(crate) circuit_setup_ns: u64,
}

/// Execution context for the event cascade — the single code path
/// behind both the serial engine (effects applied immediately) and the
/// window-parallel component executor (effects buffered, then merged in
/// canonical cohort order; DESIGN.md §15). Everything the cascade
/// touches goes through this trait, which is what makes
/// `--engine-jobs N` bit-identical to serial *by construction*: there
/// is no second cascade implementation to drift. The serial impl is a
/// set of `#[inline]` field accessors, so the monomorphized serial
/// cascade compiles to the same code the former `&mut self` methods
/// did.
pub(crate) trait ExecCtx {
    fn now(&self) -> Time;
    fn env(&self) -> SimEnv;
    fn worm(&mut self, w: usize) -> &mut WormState;
    fn worm_ref(&self, w: usize) -> &WormState;
    fn chan(&mut self, c: ChannelId) -> &mut ChanState;
    fn chan_ref(&self, c: ChannelId) -> &ChanState;
    /// Channel liveness. Fault state is frozen for the duration of a
    /// window — faults are injected between run calls, never mid-event
    /// — so the parallel executor snapshots it per component.
    fn chan_alive(&self, c: ChannelId) -> bool;
    fn msg(&mut self, m: MessageId) -> &mut Option<MessageState>;
    /// Schedules an event (serial: straight into the calendar queue;
    /// parallel: buffered, pushed in canonical cohort order so the
    /// queue's insertion-seq tiebreaker assigns the same values serial
    /// would).
    fn sched(&mut self, at: Time, ev: Event);
    /// Charges transfer time to a channel's utilization counter (a
    /// commutative sum — merge order cannot matter).
    fn add_busy(&mut self, c: ChannelId, dt: Time);
    fn count_flit_hop(&mut self);
    /// Whether a sink is installed (gates event construction).
    fn sink_on(&self) -> bool;
    /// Emits into the sink; a no-op when no sink is installed.
    fn emit_ev(&mut self, ev: SimEvent);
    /// Whether `MCAST_TRACE_CHAN` tracing targets this channel (always
    /// false under the parallel executor, which refuses to install
    /// itself while tracing is on).
    fn trace_on(&self, c: ChannelId) -> bool;
    fn push_completed(&mut self, done: CompletedMessage);
    fn free_worm(&mut self, w: usize);
    fn dec_in_flight(&mut self);
    /// Externally reported id of the live message in `slot` (equal to
    /// `slot` unless streaming mode recycled it). Sink events carry
    /// this, never the slot, so streamed and non-streamed runs emit
    /// identical event streams.
    fn msg_id(&mut self, slot: MessageId) -> MessageId {
        self.msg(slot).as_ref().map_or(slot, |m| m.id)
    }
    /// Retires a finished message slot, recycling its delivery buffer
    /// (serial: immediately; parallel: buffered and replayed in
    /// canonical cohort order at merge).
    fn retire_msg(&mut self, slot: MessageId, d: Deliveries);
    /// An empty buffer for a completed message's delivery list —
    /// pooled in streaming mode, freshly allocated otherwise.
    fn take_done_buf(&mut self) -> Vec<(NodeId, Time)>;
}

impl ExecCtx for Engine {
    #[inline]
    fn now(&self) -> Time {
        self.now
    }
    #[inline]
    fn env(&self) -> SimEnv {
        SimEnv {
            flit_time: self.flit_time,
            flits: self.flits,
            routing_delay_ns: self.config.routing_delay_ns,
            buffer_flits: self.config.buffer_flits,
            circuit_setup_ns: self.config.circuit_setup_ns,
        }
    }
    #[inline]
    fn worm(&mut self, w: usize) -> &mut WormState {
        &mut self.worms[w]
    }
    #[inline]
    fn worm_ref(&self, w: usize) -> &WormState {
        &self.worms[w]
    }
    #[inline]
    fn chan(&mut self, c: ChannelId) -> &mut ChanState {
        &mut self.channels[c]
    }
    #[inline]
    fn chan_ref(&self, c: ChannelId) -> &ChanState {
        &self.channels[c]
    }
    #[inline]
    fn chan_alive(&self, c: ChannelId) -> bool {
        self.network.is_alive(c)
    }
    #[inline]
    fn msg(&mut self, m: MessageId) -> &mut Option<MessageState> {
        &mut self.messages[m]
    }
    #[inline]
    fn sched(&mut self, at: Time, ev: Event) {
        self.events.push(at, ev);
    }
    #[inline]
    fn add_busy(&mut self, c: ChannelId, dt: Time) {
        self.busy_ns[c] += dt;
    }
    #[inline]
    fn count_flit_hop(&mut self) {
        self.flit_hops += 1;
    }
    #[inline]
    fn sink_on(&self) -> bool {
        self.sink.is_some()
    }
    #[inline]
    fn emit_ev(&mut self, ev: SimEvent) {
        self.emit(ev);
    }
    #[inline]
    fn trace_on(&self, c: ChannelId) -> bool {
        self.trace_chan == Some(c)
    }
    #[inline]
    fn push_completed(&mut self, done: CompletedMessage) {
        self.completed.push(done);
    }
    #[inline]
    fn free_worm(&mut self, w: usize) {
        self.worm_free.push(w);
    }
    #[inline]
    fn dec_in_flight(&mut self) {
        self.in_flight -= 1;
    }
    #[inline]
    fn retire_msg(&mut self, slot: MessageId, d: Deliveries) {
        self.retire_slot(slot, d);
    }
    #[inline]
    fn take_done_buf(&mut self) -> Vec<(NodeId, Time)> {
        if self.stream {
            self.spare_done.pop().unwrap_or_default()
        } else {
            Vec::new()
        }
    }
}

/// Applies one popped event: the stale-generation / inactive-worm
/// guards, then the transfer or request cascade. Shared verbatim by
/// [`Engine::step`] and the window-parallel component executor.
pub(crate) fn exec_event<C: ExecCtx>(cx: &mut C, ev: Event) {
    match ev {
        // Events for a bumped generation belong to an aborted worm
        // whose slot may have been reused — drop them silently.
        Event::TransferComplete { worm, edge, gen } => {
            let (worm, edge) = (worm as usize, edge as usize);
            let wst = cx.worm_ref(worm);
            if wst.gen == gen && wst.active {
                on_transfer_complete(cx, worm, edge);
            }
        }
        Event::RequestChannel { worm, edge, gen } => {
            let (worm, edge) = (worm as usize, edge as usize);
            let wst = cx.worm_ref(worm);
            if wst.gen == gen
                && wst.active
                && wst.edges[edge].channel.is_none()
                && !wst.edges[edge].waiting
            {
                request_channel(cx, worm, edge);
            }
        }
    }
}

/// Requests a channel for edge `e` of worm `w`: grabs an idle copy if
/// one exists, otherwise queues on the shortest queue (class 0 on
/// ties). Candidate channel ids were resolved at worm-build time
/// (`cand_base`/`cand_count`), so the cascade never consults the
/// network topology.
pub(crate) fn request_channel<C: ExecCtx>(cx: &mut C, w: usize, e: usize) {
    let (base, count) = {
        let es = &cx.worm_ref(w).edges[e];
        if es.channel.is_some() || es.waiting || es.done {
            // Idempotence: circuit establishment and header arrival can
            // both ask for the same edge; a second request must not
            // enqueue a duplicate (a stale duplicate would re-grant an
            // already-released channel to a finished worm, orphaning
            // it forever).
            return;
        }
        (es.cand_base, es.cand_count as usize)
    };
    // Dead channels are never granted and never queued on. Grant the
    // first live idle copy; otherwise remember the least-loaded live
    // copy (strict `<` keeps the lowest class on queue-length ties,
    // as the old `min_by_key` over (len, class) did).
    let mut best: Option<(usize, ChannelId)> = None;
    for chan in base..base + count {
        if !cx.chan_alive(chan) {
            continue;
        }
        if cx.chan_ref(chan).owner.is_none() {
            grant(cx, chan, w, e);
            return;
        }
        let qlen = cx.chan_ref(chan).queue.len();
        if best.is_none_or(|(len, _)| qlen < len) {
            best = Some((qlen, chan));
        }
    }
    let Some((_, target)) = best else {
        // Every copy of this hop is dead: the worm is wedged by
        // hardware, not by contention — flag it stalled for the
        // recovery layer (the plain engine then reports it via
        // `stalled_messages`).
        cx.worm(w).stalled = true;
        let at = cx.now();
        let slot = cx.worm_ref(w).message;
        let message = cx.msg_id(slot);
        cx.emit_ev(SimEvent::WormStalled { at, message });
        return;
    };
    cx.chan(target).queue.push_back((w, e));
    {
        let es = &mut cx.worm(w).edges[e];
        es.waiting = true;
        es.queued_on = Some(target);
    }
    if cx.sink_on() {
        let at = cx.now();
        let slot = cx.worm_ref(w).message;
        let message = cx.msg_id(slot);
        cx.emit_ev(SimEvent::ChannelBlocked {
            at,
            channel: target,
            message,
        });
    }
}

fn grant<C: ExecCtx>(cx: &mut C, chan: ChannelId, w: usize, e: usize) {
    if cx.trace_on(chan) {
        eprintln!(
            "t={} GRANT chan {chan} -> worm {w} edge {e} (msg {})",
            cx.now(),
            cx.worm_ref(w).message
        );
    }
    assert!(
        cx.chan_ref(chan).owner.is_none(),
        "double grant of channel {chan}"
    );
    debug_assert!(cx.chan_alive(chan), "granting a dead channel");
    cx.chan(chan).owner = Some((w, e));
    if cx.sink_on() {
        let at = cx.now();
        let slot = cx.worm_ref(w).message;
        let message = cx.msg_id(slot);
        cx.emit_ev(SimEvent::ChannelAcquired {
            at,
            channel: chan,
            message,
        });
    }
    let g = cx.worm_ref(w).edges[e].group as usize;
    {
        let wst = cx.worm(w);
        wst.edges[e].channel = Some(chan);
        wst.edges[e].waiting = false;
        wst.edges[e].queued_on = None;
        wst.groups[g].owned += 1;
    }
    if cx.worm_ref(w).kind == WormKind::Circuit {
        // Circuit establishment: the control packet advances to the
        // next hop after its per-hop setup time.
        let next = e + 1;
        if next < cx.worm_ref(w).edges.len() {
            let gen = cx.worm_ref(w).gen;
            cx.sched(
                cx.now() + cx.env().circuit_setup_ns,
                Event::RequestChannel {
                    worm: w as u32,
                    edge: next as u32,
                    gen,
                },
            );
        }
    }
    let grp = cx.worm_ref(w).groups[g];
    if grp.owned == grp.members {
        // Group open: all its edges may start moving flits. The
        // member arena is immutable while the worm lives, so walk it
        // by index (ascending edge order, as before).
        for k in grp.start..grp.start + grp.members {
            let i = cx.worm_ref(w).group_members[k as usize] as usize;
            try_start(cx, w, i);
        }
    }
}

fn release<C: ExecCtx>(cx: &mut C, chan: ChannelId) {
    if cx.trace_on(chan) {
        eprintln!(
            "t={} RELEASE chan {chan} (owner {:?})",
            cx.now(),
            cx.chan_ref(chan).owner
        );
    }
    if cx.sink_on() {
        if let Some((w, _)) = cx.chan_ref(chan).owner {
            let at = cx.now();
            let slot = cx.worm_ref(w).message;
            let message = cx.msg_id(slot);
            cx.emit_ev(SimEvent::ChannelReleased {
                at,
                channel: chan,
                message,
            });
        }
    }
    cx.chan(chan).owner = None;
    if !cx.chan_alive(chan) {
        // A channel that died while owned grants nobody once the
        // owner lets go: re-route its queued waiters — they may have
        // a surviving Any-class copy, or they stall for recovery.
        let waiters: Vec<(usize, usize)> = cx.chan(chan).queue.drain(..).collect();
        for (w, e) in waiters {
            if cx.worm_ref(w).active && cx.worm_ref(w).edges[e].waiting {
                {
                    let es = &mut cx.worm(w).edges[e];
                    es.waiting = false;
                    es.queued_on = None;
                }
                request_channel(cx, w, e);
            }
        }
        return;
    }
    while let Some((w, e)) = cx.chan(chan).queue.pop_front() {
        // Stale entries can linger if a worm was granted a different
        // copy; skip anything no longer waiting.
        if cx.worm_ref(w).active && cx.worm_ref(w).edges[e].waiting {
            grant(cx, chan, w, e);
            return;
        }
    }
}

/// Whether edge `e` can transfer its next flit now; if so, schedule
/// the completion event.
fn try_start<C: ExecCtx>(cx: &mut C, w: usize, e: usize) {
    let env = cx.env();
    // One read-only pass over the worm decides whether the flit can
    // move — `worms[w]`/`edges[e]` are bounds-checked once instead of
    // once per condition (this runs several times per flit hop).
    let wst = cx.worm_ref(w);
    if !wst.active {
        return;
    }
    let es = &wst.edges[e];
    let Some(chan) = es.channel else { return };
    if es.busy || es.done {
        return;
    }
    let flit = es.crossed;
    if flit >= env.flits {
        return;
    }
    let grp = wst.groups[es.group as usize];
    if grp.owned < grp.members {
        return; // lock-step: the branch group is not fully owned yet
    }
    let upstream = es.upstream;
    // Upstream flit availability.
    if let Some(u) = upstream {
        if wst.edges[u as usize].crossed <= flit {
            return;
        }
    } else if wst.kind == WormKind::Tree {
        // Source-fed tree edge: the branches replicate flits from a
        // single injection buffer of `buffer_flits` capacity, so a
        // flit is discarded (making room for the next) only when
        // *every* root branch has taken it — the source-side
        // lock-step of §6.1. (Path and circuit worms stream from the
        // source unconstrained.)
        let mut min_taken = u32::MAX;
        for k in grp.start..grp.start + grp.members {
            let s = &wst.edges[wst.group_members[k as usize] as usize];
            min_taken = min_taken.min(s.crossed + u32::from(s.busy));
        }
        if flit >= min_taken + env.buffer_flits {
            return;
        }
    }
    // Downstream buffer space at the head node: flits that crossed e
    // but have not left through every child yet. A flit currently on
    // the wire of a child channel has already left the buffer (its
    // slot frees at transfer start, as in credit-based flow control),
    // so children mid-transfer count toward the outflow.
    if es.child_count > 0 {
        let mut outflow = u32::MAX;
        for k in es.child_start..es.child_start + es.child_count {
            let ch = &wst.edges[wst.children[k as usize] as usize];
            outflow = outflow.min(ch.crossed + u32::from(ch.busy));
        }
        if es.crossed - outflow.min(es.crossed) >= env.buffer_flits {
            return;
        }
    }
    let kind = wst.kind;
    let gen = wst.gen;
    let message = wst.message;
    // Start the transfer.
    let dt = env.flit_time + if flit == 0 { env.routing_delay_ns } else { 0 };
    cx.worm(w).edges[e].busy = true;
    cx.add_busy(chan, dt);
    cx.count_flit_hop();
    if cx.sink_on() {
        let start = cx.now();
        let message = cx.msg_id(message);
        cx.emit_ev(SimEvent::FlitHop {
            start,
            end: start + dt,
            channel: chan,
            message,
            flit,
        });
    }
    cx.sched(
        cx.now() + dt,
        Event::TransferComplete {
            worm: w as u32,
            edge: e as u32,
            gen,
        },
    );
    // Starting frees a buffer slot upstream (flow-control credit at
    // transfer start): retry the feeder, or the root-group siblings.
    if let Some(u) = upstream {
        try_start(cx, w, u as usize);
    } else if kind == WormKind::Tree {
        try_start_siblings(cx, w, e);
    }
}

/// Retries every group sibling of edge `e` (ascending edge index,
/// skipping `e` itself) — the shared-buffer wakeup for root-fed tree
/// branches. Walks the immutable member arena by index, so no
/// sibling list is allocated.
fn try_start_siblings<C: ExecCtx>(cx: &mut C, w: usize, e: usize) {
    let grp = cx.worm_ref(w).groups[cx.worm_ref(w).edges[e].group as usize];
    for k in grp.start..grp.start + grp.members {
        let s = cx.worm_ref(w).group_members[k as usize] as usize;
        if s != e {
            try_start(cx, w, s);
        }
    }
}

fn on_transfer_complete<C: ExecCtx>(cx: &mut C, w: usize, e: usize) {
    // Snapshot the immutable topology of the edge (feeder, child
    // range, worm kind) in the same pass that bumps its flit count,
    // so the retry cascade below doesn't re-index the worm per field.
    let (crossed, upstream, cs, cn, kind) = {
        let wst = cx.worm(w);
        let kind = wst.kind;
        let es = &mut wst.edges[e];
        es.busy = false;
        es.crossed += 1;
        (
            es.crossed,
            es.upstream,
            es.child_start,
            es.child_count,
            kind,
        )
    };
    if crossed == 1 && kind != WormKind::Circuit {
        // Header arrived at head(e): claim the next channels. (Circuit
        // worms acquire through the establishment chain instead.)
        // The child arena is immutable while the worm lives, so walk
        // it by index instead of cloning a per-flit list.
        for k in cs..cs + cn {
            let c = cx.worm_ref(w).children[k as usize] as usize;
            request_channel(cx, w, c);
        }
    }
    if crossed == cx.env().flits {
        // Tail crossed: release the channel, record delivery.
        let chan = cx.worm(w).edges[e]
            .channel
            .take()
            .expect("owned while crossing");
        cx.worm(w).edges[e].done = true;
        release(cx, chan);
        let (head, msg_id) = {
            let wst = cx.worm_ref(w);
            (wst.edges[e].to, wst.message)
        };
        record_delivery(cx, msg_id, head);
        cx.worm(w).edges_done += 1;
        if cx.worm_ref(w).edges_done == cx.worm_ref(w).edges.len() {
            cx.worm(w).active = false;
            // Release staged dependents in-cascade, exactly like a
            // channel release granting a queued waiter. A zero-delta
            // scheduled event would land inside the current lookahead
            // window and break the window-parallel executor's
            // determinism invariant; a direct release stays inside the
            // feeder's own event in every execution mode. Feeder and
            // dependents share one message, so the windowed executor
            // already clusters them into one component (plus the
            // dependents' root links, added at classification). The
            // drained vec goes back to keep its capacity across slot
            // reuse.
            let mut deps = std::mem::take(&mut cx.worm(w).dependents);
            for &(d, g) in &deps {
                let d = d as usize;
                let wst = cx.worm_ref(d);
                if wst.gen == g && wst.active && wst.deps_pending > 0 {
                    let left = {
                        let ws = cx.worm(d);
                        ws.deps_pending -= 1;
                        ws.deps_pending
                    };
                    if left == 0 {
                        // A staged worm is a path worm: its single
                        // root is edge 0.
                        request_channel(cx, d, 0);
                    }
                }
            }
            deps.clear();
            cx.worm(w).dependents = deps;
            let slot_msg = cx.worm_ref(w).message;
            let finished = {
                let m = cx.msg(slot_msg).as_mut().expect("message live");
                m.worms_done += 1;
                m.worms_done == m.worms_total
            };
            if finished {
                finish_message(cx, slot_msg);
            }
            cx.free_worm(w);
        }
    }
    // Progress may unblock this edge (next flit), the upstream edge
    // (space freed), the children (flit available), and — for root
    // edges — the group siblings sharing the injection buffer.
    try_start(cx, w, e);
    if let Some(u) = upstream {
        try_start(cx, w, u as usize);
    } else if kind == WormKind::Tree {
        try_start_siblings(cx, w, e);
    }
    for k in cs..cs + cn {
        let c = cx.worm_ref(w).children[k as usize] as usize;
        try_start(cx, w, c);
    }
}

fn record_delivery<C: ExecCtx>(cx: &mut C, msg: MessageId, node: NodeId) {
    let now = cx.now();
    let (newly, id) = {
        let m = cx.msg(msg).as_mut().expect("message live");
        let mut newly = 0;
        for (d, t) in m.deliveries.slots_mut() {
            if *d == node && t.is_none() {
                *t = Some(now);
                newly += 1;
            }
        }
        m.delivered_count += newly;
        (newly, m.id)
    };
    if newly > 0 && cx.sink_on() {
        cx.emit_ev(SimEvent::Delivered {
            at: now,
            message: id,
            node,
        });
    }
}

fn finish_message<C: ExecCtx>(cx: &mut C, msg: MessageId) {
    let m = cx.msg(msg).take().expect("message live");
    let mut deliveries = cx.take_done_buf();
    deliveries.extend(m.deliveries.slots().iter().map(|&(d, t)| {
        (
            d,
            // INVARIANT: finish_message runs only when every worm
            // completed, every plan covers its destination set,
            // and aborted messages exit via abort_message (which
            // reports partial delivery) — so a hole here means a
            // plan/engine bug, not a runtime condition.
            t.unwrap_or_else(|| panic!("destination {d} never delivered by message {}", m.id)),
        )
    }));
    let completed_at = deliveries
        .iter()
        .map(|&(_, t)| t)
        .max()
        .unwrap_or(m.injected_at);
    cx.push_completed(CompletedMessage {
        id: m.id,
        source: m.source,
        injected_at: m.injected_at,
        completed_at,
        deliveries,
        traffic: m.traffic,
    });
    cx.dec_in_flight();
    cx.emit_ev(SimEvent::MessageCompleted {
        at: completed_at,
        message: m.id,
        latency_ns: completed_at - m.injected_at,
    });
    cx.retire_msg(msg, m.deliveries);
}

impl Engine {
    /// Debug: the (message, edge) currently owning a channel, if any.
    pub fn debug_owner(&self, chan: ChannelId) -> Option<(MessageId, usize)> {
        self.channels[chan]
            .owner
            .map(|(w, e)| (self.worms[w].message, e))
    }
}

impl Engine {
    /// Debug: raw owner slot info for a channel: (worm slot, edge, message, active).
    pub fn debug_owner_full(&self, chan: ChannelId) -> Option<(usize, usize, MessageId, bool)> {
        self.channels[chan]
            .owner
            .map(|(w, e)| (w, e, self.worms[w].message, self.worms[w].active))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{DeliveryPlan, PlanPath, PlanTree};
    use mcast_core::model::MulticastSet;
    use mcast_topology::Mesh2D;

    fn engine_4x4() -> Engine {
        let m = Mesh2D::new(4, 4);
        Engine::new(Network::new(&m, 1), SimConfig::default())
    }

    fn path_plan(nodes: Vec<NodeId>, dests: Vec<NodeId>) -> DeliveryPlan {
        let src = nodes[0];
        DeliveryPlan {
            source: src,
            destinations: dests,
            worms: vec![PlanWorm::Path(PlanPath {
                nodes,
                class: ClassChoice::Any,
            })],
        }
    }

    #[test]
    fn single_hop_latency_is_pipeline_fill() {
        let mut e = engine_4x4();
        let cfg = *e.config();
        e.inject(&path_plan(vec![0, 1], vec![1]));
        assert!(e.run_to_quiescence());
        let done = e.take_completed();
        assert_eq!(done.len(), 1);
        // One channel: header (t_f + t_r) + 16 payload flits × t_f.
        let expect = cfg.routing_delay_ns + cfg.flit_time_ns() * cfg.flits_per_message() as u64;
        assert_eq!(done[0].completed_at, expect);
    }

    #[test]
    fn pipeline_latency_nearly_distance_independent() {
        // Wormhole's signature: latency ≈ L/B + D·(t_f + t_r), so doubling
        // distance adds only per-hop header time (§2.2.4).
        let mut e = engine_4x4();
        let cfg = *e.config();
        e.inject(&path_plan(vec![0, 1, 2, 3], vec![3]));
        assert!(e.run_to_quiescence());
        let t3 = e.take_completed()[0].completed_at;
        let mut e2 = engine_4x4();
        e2.inject(&path_plan(vec![0, 1], vec![1]));
        assert!(e2.run_to_quiescence());
        let t1 = e2.take_completed()[0].completed_at;
        assert_eq!(t3 - t1, 2 * (cfg.flit_time_ns() + cfg.routing_delay_ns));
    }

    #[test]
    fn intermediate_destination_receives_before_final() {
        let mut e = engine_4x4();
        e.inject(&path_plan(vec![0, 1, 2, 3], vec![1, 3]));
        assert!(e.run_to_quiescence());
        let done = e.take_completed();
        let d: std::collections::HashMap<NodeId, Time> =
            done[0].deliveries.iter().copied().collect();
        assert!(d[&1] < d[&3], "upstream destination finishes first");
        assert_eq!(done[0].completed_at, d[&3]);
    }

    #[test]
    fn contending_messages_serialize_on_shared_channel() {
        let mut e = engine_4x4();
        let cfg = *e.config();
        e.inject(&path_plan(vec![0, 1], vec![1]));
        e.inject(&path_plan(vec![0, 1], vec![1]));
        assert!(e.run_to_quiescence());
        let done = e.take_completed();
        assert_eq!(done.len(), 2);
        let t0 = done.iter().find(|c| c.id == 0).unwrap().completed_at;
        let t1 = done.iter().find(|c| c.id == 1).unwrap().completed_at;
        // Second message waits for the first to release the channel.
        let single = cfg.routing_delay_ns + cfg.flit_time_ns() * cfg.flits_per_message() as u64;
        assert_eq!(t0, single);
        assert_eq!(t1, 2 * single);
    }

    #[test]
    fn tree_worm_delivers_all_leaves() {
        let m = Mesh2D::new(4, 4);
        let mc = MulticastSet::new(5, [1, 6, 9, 4]);
        let tree = mcast_core::xfirst::xfirst_tree(&m, &mc);
        let plan = DeliveryPlan::from_tree(&mc, &tree, ClassChoice::Any);
        let mut e = engine_4x4();
        e.inject(&plan);
        assert!(e.run_to_quiescence());
        let done = e.take_completed();
        assert_eq!(done[0].deliveries.len(), 4);
    }

    #[test]
    fn two_crossing_tree_worms_deadlock() {
        // Fig 6.4's mechanism, distilled: two 2-branch tree worms each
        // grab one of the other's needed channels and wait forever.
        let m = Mesh2D::new(4, 1);
        let net = Network::new(&m, 1);
        let mut e = Engine::new(net, SimConfig::default());
        // Worm A at node 1 branches to 0 and 2→3; worm B at node 2
        // branches to 3 and 1→0. A needs [1,2], B holds it via its branch
        // [2,1],[1,0]; B needs [2,3], A holds [1,2]? Construct:
        let plan_a = DeliveryPlan {
            source: 1,
            destinations: vec![0, 3],
            worms: vec![PlanWorm::Tree(PlanTree {
                root: 1,
                edges: vec![
                    (1, 0, ClassChoice::Any),
                    (1, 2, ClassChoice::Any),
                    (2, 3, ClassChoice::Any),
                ],
            })],
        };
        let plan_b = DeliveryPlan {
            source: 2,
            destinations: vec![0, 3],
            worms: vec![PlanWorm::Tree(PlanTree {
                root: 2,
                edges: vec![
                    (2, 3, ClassChoice::Any),
                    (2, 1, ClassChoice::Any),
                    (1, 0, ClassChoice::Any),
                ],
            })],
        };
        e.inject(&plan_a);
        e.inject(&plan_b);
        let ok = e.run_to_quiescence();
        assert!(!ok, "crossing lock-step trees must deadlock");
        assert_eq!(e.in_flight(), 2);
        let held = e.held_channels();
        assert_eq!(held.len(), 2);
    }

    #[test]
    fn multi_worm_star_message_completes_when_all_paths_do() {
        let mut e = engine_4x4();
        let plan = DeliveryPlan {
            source: 5,
            destinations: vec![7, 13],
            worms: vec![
                PlanWorm::Path(PlanPath {
                    nodes: vec![5, 6, 7],
                    class: ClassChoice::Any,
                }),
                PlanWorm::Path(PlanPath {
                    nodes: vec![5, 9, 13],
                    class: ClassChoice::Any,
                }),
            ],
        };
        e.inject(&plan);
        assert!(e.run_to_quiescence());
        let done = e.take_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].traffic, 4);
    }

    #[test]
    fn double_channels_resolve_the_tree_deadlock() {
        // The same crossing trees as above, but on a doubled network with
        // Any-class selection: each worm grabs a free copy and both
        // complete.
        let m = Mesh2D::new(4, 1);
        let net = Network::new(&m, 2);
        let mut e = Engine::new(net, SimConfig::default());
        let plan_a = DeliveryPlan {
            source: 1,
            destinations: vec![0, 3],
            worms: vec![PlanWorm::Tree(PlanTree {
                root: 1,
                edges: vec![
                    (1, 0, ClassChoice::Any),
                    (1, 2, ClassChoice::Any),
                    (2, 3, ClassChoice::Any),
                ],
            })],
        };
        let plan_b = DeliveryPlan {
            source: 2,
            destinations: vec![0, 3],
            worms: vec![PlanWorm::Tree(PlanTree {
                root: 2,
                edges: vec![
                    (2, 3, ClassChoice::Any),
                    (2, 1, ClassChoice::Any),
                    (1, 0, ClassChoice::Any),
                ],
            })],
        };
        e.inject(&plan_a);
        e.inject(&plan_b);
        assert!(e.run_to_quiescence(), "double channels break the cycle");
    }

    #[test]
    fn circuit_switching_reserves_then_streams() {
        // A circuit worm over D hops completes at about
        // D·setup + stream + pipeline drain — and later than an identical
        // wormhole worm, because no flit moves before the reservation
        // finishes.
        let m = Mesh2D::new(8, 1);
        let nodes: Vec<NodeId> = (0..8).collect();
        let mut ew = Engine::new(Network::new(&m, 1), SimConfig::default());
        ew.inject(&DeliveryPlan {
            source: 0,
            destinations: vec![7],
            worms: vec![PlanWorm::Path(PlanPath {
                nodes: nodes.clone(),
                class: ClassChoice::Any,
            })],
        });
        assert!(ew.run_to_quiescence());
        let worm_t = ew.take_completed()[0].completed_at;

        let mut ec = Engine::new(Network::new(&m, 1), SimConfig::default());
        ec.inject(&DeliveryPlan {
            source: 0,
            destinations: vec![7],
            worms: vec![PlanWorm::Circuit(PlanPath {
                nodes,
                class: ClassChoice::Any,
            })],
        });
        assert!(ec.run_to_quiescence());
        let circ_t = ec.take_completed()[0].completed_at;
        assert!(circ_t > worm_t, "circuit {circ_t} vs wormhole {worm_t}");
        // Setup phase: 7 hops of circuit_setup after the first grant.
        let cfg = SimConfig::default();
        let setup = 6 * cfg.circuit_setup_ns; // chain requests after edge 0
        assert!(circ_t >= setup, "circuit completion before setup finished");
    }

    #[test]
    fn ring_of_circuits_deadlocks_like_fig_2_4() {
        // Fig 2.4's four-message configuration on a 2×2 mesh: each circuit
        // reserves its first channel and waits forever for the next one,
        // held by its neighbor — the classic channel-deadlock cycle.
        let m = Mesh2D::new(2, 2);
        let mut e = Engine::new(Network::new(&m, 1), SimConfig::default());
        // Ring order of node ids: 0 → 1 → 3 → 2 → 0.
        let ring = [0usize, 1, 3, 2];
        for i in 0..4 {
            let a = ring[i];
            let b = ring[(i + 1) % 4];
            let c = ring[(i + 2) % 4];
            e.inject(&DeliveryPlan {
                source: a,
                destinations: vec![c],
                worms: vec![PlanWorm::Circuit(PlanPath {
                    nodes: vec![a, b, c],
                    class: ClassChoice::Any,
                })],
            });
        }
        let ok = e.run_to_quiescence();
        assert!(!ok, "the Fig 2.4 circuit ring must deadlock");
        assert_eq!(e.in_flight(), 4);
    }

    #[test]
    fn label_monotone_circuits_never_deadlock() {
        // Dual-path routes carried by circuit switching stay deadlock-free
        // (§2.3.4: the subnetwork solution "can also be applied to circuit
        // switching"): saturating closed load drains.
        use mcast_topology::labeling::mesh2d_snake;
        let m = Mesh2D::new(4, 4);
        let l = mesh2d_snake(&m);
        let mut e = Engine::new(Network::new(&m, 1), SimConfig::default());
        for s in 0..16usize {
            let mc = MulticastSet::new(s, (1..=5).map(|i| (s + i * 3) % 16));
            let paths = mcast_core::dual_path::dual_path(&m, &l, &mc);
            e.inject(&DeliveryPlan {
                source: s,
                destinations: mc.destinations.clone(),
                worms: paths
                    .into_iter()
                    .map(|p| {
                        PlanWorm::Circuit(PlanPath {
                            nodes: p.nodes().to_vec(),
                            class: ClassChoice::Any,
                        })
                    })
                    .collect(),
            });
        }
        assert!(e.run_to_quiescence(), "label-monotone circuits wedged");
        assert_eq!(e.take_completed().len(), 16);
    }

    #[test]
    fn streaming_bounds_slots_and_reports_identical_results() {
        // 60 sequential multicasts: the plain engine grows one message
        // slot per injection; the streaming engine recycles retired
        // slots, so its slot table stays at the in-flight high-water
        // mark — while every reported result (external ids included)
        // is identical.
        let mut plain = engine_4x4();
        let mut stream = engine_4x4();
        stream.set_stream_mode(true);
        fn xy(mut a: usize, b: usize) -> Vec<NodeId> {
            let mut v = vec![a];
            while a % 4 != b % 4 {
                a = if b % 4 > a % 4 { a + 1 } else { a - 1 };
                v.push(a);
            }
            while a / 4 != b / 4 {
                a = if b / 4 > a / 4 { a + 4 } else { a - 4 };
                v.push(a);
            }
            v
        }
        let mut plain_done = Vec::new();
        let mut stream_done = Vec::new();
        for i in 0..60usize {
            let src = i % 16;
            let dst = (i * 7 + 3) % 16;
            if dst == src {
                continue;
            }
            let nodes = xy(src, dst);
            let dests = if nodes.len() > 2 {
                vec![nodes[nodes.len() / 2], dst]
            } else {
                vec![dst]
            };
            let plan = path_plan(nodes, dests);
            plain.inject(&plan);
            stream.inject(&plan);
            assert!(plain.run_to_quiescence());
            assert!(stream.run_to_quiescence());
            plain_done.extend(plain.take_completed().iter().map(|c| format!("{c:?}")));
            stream.drain_completed(|c| stream_done.push(format!("{c:?}")));
        }
        assert_eq!(plain_done, stream_done);
        assert_eq!(plain.message_slots(), 60);
        assert!(
            stream.message_slots() <= stream.peak_in_flight(),
            "stream slots {} > peak in-flight {}",
            stream.message_slots(),
            stream.peak_in_flight()
        );
        assert_eq!(stream.peak_in_flight(), 1);
        assert!(stream.peak_live_worms() >= 1);
        assert_eq!(stream.live_worms(), 0);
    }

    #[test]
    fn streaming_multi_dest_paths_match_and_pool_buffers() {
        // Multi-destination paths exercise the Deliveries::Many pool
        // and the pooled done-buffers; overlap several messages so
        // slots recycle out of order.
        let mut plain = engine_4x4();
        let mut stream = engine_4x4();
        stream.set_stream_mode(true);
        for e in [&mut plain, &mut stream] {
            for s in 0..4usize {
                e.inject(&path_plan(
                    vec![s, s + 4, s + 8, s + 12],
                    vec![s + 4, s + 12],
                ));
            }
            assert!(e.run_to_quiescence());
            for s in 0..4usize {
                e.inject(&path_plan(
                    vec![s * 4, s * 4 + 1, s * 4 + 2],
                    vec![s * 4 + 2],
                ));
            }
            assert!(e.run_to_quiescence());
        }
        let a = plain.take_completed();
        let mut b = Vec::new();
        stream.drain_completed(|c| b.push(format!("{c:?}")));
        assert_eq!(a.iter().map(|c| format!("{c:?}")).collect::<Vec<_>>(), b);
        assert!(
            stream.message_slots() <= 4,
            "slots: {}",
            stream.message_slots()
        );
    }

    #[test]
    fn source_destination_delivered_at_injection() {
        let mut e = engine_4x4();
        let plan = DeliveryPlan {
            source: 0,
            destinations: vec![0],
            worms: vec![],
        };
        e.inject(&plan);
        assert!(e.run_to_quiescence());
        let done = e.take_completed();
        assert_eq!(done[0].completed_at, done[0].injected_at);
    }

    fn staged(after: Vec<u32>, nodes: Vec<NodeId>) -> PlanWorm {
        PlanWorm::Staged(crate::plan::PlanStage {
            after,
            path: PlanPath {
                nodes,
                class: ClassChoice::Any,
            },
        })
    }

    #[test]
    fn staged_worm_starts_only_after_its_feeder_completes() {
        // A two-round relay 0 -> 1 -> 2: the staged leg may not claim
        // its first channel before the feeder's tail retires, so the
        // relayed destination completes exactly two full message times
        // plus one extra hop of pipeline fill after injection.
        let mut e = engine_4x4();
        let cfg = *e.config();
        e.inject(&DeliveryPlan {
            source: 0,
            destinations: vec![1, 2],
            worms: vec![
                PlanWorm::Path(PlanPath {
                    nodes: vec![0, 1],
                    class: ClassChoice::Any,
                }),
                staged(vec![0], vec![1, 2]),
            ],
        });
        assert!(e.run_to_quiescence());
        let done = e.take_completed();
        let d: std::collections::HashMap<NodeId, Time> =
            done[0].deliveries.iter().copied().collect();
        let single = cfg.routing_delay_ns + cfg.flit_time_ns() * cfg.flits_per_message() as u64;
        assert_eq!(d[&1], single);
        assert_eq!(d[&2], 2 * single, "relay waited for the feeder");
    }

    #[test]
    fn staged_worm_with_multiple_feeders_waits_for_the_last() {
        // Two feeders of different lengths; the staged worm fires when
        // the *slower* one retires.
        let mut e = engine_4x4();
        let cfg = *e.config();
        e.inject(&DeliveryPlan {
            source: 0,
            destinations: vec![1, 3, 7],
            worms: vec![
                PlanWorm::Path(PlanPath {
                    nodes: vec![0, 1],
                    class: ClassChoice::Any,
                }),
                PlanWorm::Path(PlanPath {
                    nodes: vec![0, 4, 5, 6, 7],
                    class: ClassChoice::Any,
                }),
                staged(vec![0, 1], vec![1, 2, 3]),
            ],
        });
        assert!(e.run_to_quiescence());
        let done = e.take_completed();
        let d: std::collections::HashMap<NodeId, Time> =
            done[0].deliveries.iter().copied().collect();
        let hop = cfg.flit_time_ns() + cfg.routing_delay_ns;
        let single = cfg.routing_delay_ns + cfg.flit_time_ns() * cfg.flits_per_message() as u64;
        // The long feeder finishes 3 hops of fill after the short one.
        assert_eq!(d[&7], single + 3 * hop);
        // The staged leg starts there, not at the short feeder's end.
        assert_eq!(d[&3], d[&7] + single + hop);
    }

    #[test]
    fn held_staged_worm_claims_no_channels() {
        // While held, a staged worm must not appear on any channel
        // queue: an unrelated message over the same links proceeds at
        // the uncontended latency.
        let mut e = engine_4x4();
        let cfg = *e.config();
        e.inject(&DeliveryPlan {
            source: 0,
            destinations: vec![3, 2],
            worms: vec![
                PlanWorm::Path(PlanPath {
                    nodes: vec![0, 4, 5, 6, 7, 3],
                    class: ClassChoice::Any,
                }),
                staged(vec![0], vec![0, 1, 2]),
            ],
        });
        // The competitor uses the staged worm's 0->1->2 links.
        e.inject(&path_plan(vec![0, 1, 2], vec![2]));
        assert!(e.run_to_quiescence());
        let done = e.take_completed();
        let competitor = done.iter().find(|c| c.id == 1).unwrap();
        let single = cfg.routing_delay_ns + cfg.flit_time_ns() * cfg.flits_per_message() as u64;
        let hop = cfg.flit_time_ns() + cfg.routing_delay_ns;
        assert_eq!(
            competitor.completed_at,
            single + hop,
            "competitor ran unblocked while the staged worm was held"
        );
    }

    #[test]
    fn inject_checked_rejects_bad_dependencies() {
        use crate::error::SimError;
        let mut e = engine_4x4();
        // Self-dependency.
        let plan = DeliveryPlan {
            source: 0,
            destinations: vec![1],
            worms: vec![staged(vec![0], vec![0, 1])],
        };
        assert_eq!(
            e.inject_checked(&plan),
            Err(SimError::BadDependency { worm: 0 })
        );
        // Forward dependency.
        let plan = DeliveryPlan {
            source: 0,
            destinations: vec![1, 2],
            worms: vec![
                staged(vec![1], vec![0, 1]),
                PlanWorm::Path(PlanPath {
                    nodes: vec![0, 1, 2],
                    class: ClassChoice::Any,
                }),
            ],
        };
        assert_eq!(
            e.inject_checked(&plan),
            Err(SimError::BadDependency { worm: 0 })
        );
        assert_eq!(e.in_flight(), 0, "rejected plans leave nothing behind");
        assert!(e.run_to_quiescence());
    }

    #[test]
    fn staged_chain_of_dependencies_serializes_rounds() {
        // A three-round chain on one row: each staged worm waits for
        // the previous round, so completion times are strictly spaced
        // full message times apart.
        let mut e = engine_4x4();
        let cfg = *e.config();
        e.inject(&DeliveryPlan {
            source: 0,
            destinations: vec![1, 2, 3],
            worms: vec![
                PlanWorm::Path(PlanPath {
                    nodes: vec![0, 1],
                    class: ClassChoice::Any,
                }),
                staged(vec![0], vec![1, 2]),
                staged(vec![1], vec![2, 3]),
            ],
        });
        assert!(e.run_to_quiescence());
        let done = e.take_completed();
        let d: std::collections::HashMap<NodeId, Time> =
            done[0].deliveries.iter().copied().collect();
        let single = cfg.routing_delay_ns + cfg.flit_time_ns() * cfg.flits_per_message() as u64;
        assert_eq!(d[&1], single);
        assert_eq!(d[&2], 2 * single);
        assert_eq!(d[&3], 3 * single);
    }
}
