//! Adapters turning the `mcast-core` routing algorithms into
//! [`DeliveryPlan`] factories for the engine.
//!
//! Each router corresponds to one scheme evaluated in Chapter 7. Routers
//! also declare how many channel classes their network needs (1, or 2 for
//! the double-channel tree scheme) so experiment harnesses can build the
//! right [`crate::network::Network`].

use mcast_core::model::MulticastSet;
use mcast_topology::labeling::{hypercube_gray, mesh2d_snake};
use mcast_topology::{Hypercube, Labeling, Mesh2D, Topology};

use crate::plan::{ClassChoice, DeliveryPlan, PlanArena, PlanPath, PlanWorm};

/// A multicast routing scheme usable by the simulator.
pub trait MulticastRouter {
    /// Short name for reports (e.g. `"dual-path"`).
    fn name(&self) -> &'static str;

    /// Channel classes the scheme needs (1 = single, 2 = double).
    fn required_classes(&self) -> u8 {
        1
    }

    /// Produces the delivery plan for a multicast set.
    fn plan(&self, mc: &MulticastSet) -> DeliveryPlan;

    /// Builds the plan for `mc` into `out`, recycling `out`'s previous
    /// buffers through `arena` (DESIGN.md §16). The result must be
    /// identical to `plan(mc)`; the default implementation guarantees
    /// that by delegating. Routers on the streaming hot path override
    /// this to reuse arena buffers instead of allocating.
    fn plan_into(&self, mc: &MulticastSet, arena: &mut PlanArena, out: &mut DeliveryPlan) {
        arena.recycle(out);
        *out = self.plan(mc);
    }
}

impl<R: MulticastRouter + ?Sized> MulticastRouter for Box<R> {
    fn name(&self) -> &'static str {
        self.as_ref().name()
    }

    fn required_classes(&self) -> u8 {
        self.as_ref().required_classes()
    }

    fn plan(&self, mc: &MulticastSet) -> DeliveryPlan {
        self.as_ref().plan(mc)
    }

    fn plan_into(&self, mc: &MulticastSet, arena: &mut PlanArena, out: &mut DeliveryPlan) {
        self.as_ref().plan_into(mc, arena, out)
    }
}

/// Dual-path routing (§6.2.2 / §6.3) over any labeled topology.
pub struct DualPathRouter<T: Topology> {
    topo: T,
    labeling: Labeling,
    class: ClassChoice,
}

impl DualPathRouter<Mesh2D> {
    /// Dual-path on a snake-labeled 2D mesh.
    pub fn mesh(mesh: Mesh2D) -> Self {
        let labeling = mesh2d_snake(&mesh);
        DualPathRouter {
            topo: mesh,
            labeling,
            class: ClassChoice::Any,
        }
    }
}

impl DualPathRouter<Hypercube> {
    /// Dual-path on a Gray-labeled hypercube.
    pub fn hypercube(cube: Hypercube) -> Self {
        let labeling = hypercube_gray(&cube);
        DualPathRouter {
            topo: cube,
            labeling,
            class: ClassChoice::Any,
        }
    }
}

impl<T: Topology> DualPathRouter<T> {
    /// Dual-path on any topology with a caller-supplied Hamiltonian-path
    /// labeling (the §6.2.2 construction only needs the label order).
    pub fn with_labeling(topo: T, labeling: Labeling) -> Self {
        DualPathRouter {
            topo,
            labeling,
            class: ClassChoice::Any,
        }
    }
}

impl<T: Topology> MulticastRouter for DualPathRouter<T> {
    fn name(&self) -> &'static str {
        "dual-path"
    }

    fn plan(&self, mc: &MulticastSet) -> DeliveryPlan {
        let paths = mcast_core::dual_path::dual_path(&self.topo, &self.labeling, mc);
        DeliveryPlan::from_paths(mc, &paths, self.class)
    }

    fn plan_into(&self, mc: &MulticastSet, arena: &mut PlanArena, out: &mut DeliveryPlan) {
        arena.recycle(out);
        out.source = mc.source;
        let mut dests = arena.node_buf();
        dests.extend_from_slice(&mc.destinations);
        out.destinations = dests;
        // At most two paths (high/low); pre-draw their buffers so the
        // emit closure never touches the arena while the scratch is
        // borrowed out of it.
        let mut bufs = [Some(arena.node_buf()), Some(arena.node_buf())];
        let mut next = 0;
        let class = self.class;
        mcast_core::dual_path::dual_path_into(
            &self.topo,
            &self.labeling,
            mc,
            arena.dual_scratch(),
            |nodes| {
                let mut buf = bufs[next]
                    .take()
                    .expect("dual-path emits at most two paths");
                next += 1;
                buf.extend_from_slice(nodes);
                out.worms
                    .push(PlanWorm::Path(PlanPath { nodes: buf, class }));
            },
        );
        for b in bufs.into_iter().flatten() {
            arena.put_node_buf(b);
        }
    }
}

/// Multi-path routing (§6.2.2 Fig 6.14) on a 2D mesh.
pub struct MultiPathMeshRouter {
    mesh: Mesh2D,
    labeling: Labeling,
}

impl MultiPathMeshRouter {
    /// Multi-path on a snake-labeled 2D mesh.
    pub fn new(mesh: Mesh2D) -> Self {
        let labeling = mesh2d_snake(&mesh);
        MultiPathMeshRouter { mesh, labeling }
    }
}

impl MulticastRouter for MultiPathMeshRouter {
    fn name(&self) -> &'static str {
        "multi-path"
    }

    fn plan(&self, mc: &MulticastSet) -> DeliveryPlan {
        let paths = mcast_core::multi_path::multi_path_mesh(&self.mesh, &self.labeling, mc);
        DeliveryPlan::from_paths(mc, &paths, ClassChoice::Any)
    }
}

/// Multi-path routing (§6.3 Fig 6.20) on a hypercube (interval split).
pub struct MultiPathCubeRouter {
    cube: Hypercube,
    labeling: Labeling,
}

impl MultiPathCubeRouter {
    /// Multi-path on a Gray-labeled hypercube.
    pub fn new(cube: Hypercube) -> Self {
        let labeling = hypercube_gray(&cube);
        MultiPathCubeRouter { cube, labeling }
    }
}

impl MulticastRouter for MultiPathCubeRouter {
    fn name(&self) -> &'static str {
        "multi-path"
    }

    fn plan(&self, mc: &MulticastSet) -> DeliveryPlan {
        let paths = mcast_core::multi_path::multi_path(&self.cube, &self.labeling, mc);
        DeliveryPlan::from_paths(mc, &paths, ClassChoice::Any)
    }
}

/// Multi-path routing via the generic label-interval split (§6.3) on any
/// labeled topology — the construction `MultiPathCubeRouter` uses,
/// available wherever a Hamiltonian-path labeling exists (3D meshes,
/// k-ary n-cubes, ...).
pub struct MultiPathRouter<T: Topology> {
    topo: T,
    labeling: Labeling,
}

impl<T: Topology> MultiPathRouter<T> {
    /// Interval-split multi-path on a caller-labeled topology.
    pub fn with_labeling(topo: T, labeling: Labeling) -> Self {
        MultiPathRouter { topo, labeling }
    }
}

impl<T: Topology> MulticastRouter for MultiPathRouter<T> {
    fn name(&self) -> &'static str {
        "multi-path"
    }

    fn plan(&self, mc: &MulticastSet) -> DeliveryPlan {
        let paths = mcast_core::multi_path::multi_path(&self.topo, &self.labeling, mc);
        DeliveryPlan::from_paths(mc, &paths, ClassChoice::Any)
    }
}

/// Fixed-path routing (§6.2.2 Fig 6.17) over any labeled topology.
pub struct FixedPathRouter<T: Topology> {
    topo: T,
    labeling: Labeling,
}

impl FixedPathRouter<Mesh2D> {
    /// Fixed-path on a snake-labeled 2D mesh.
    pub fn mesh(mesh: Mesh2D) -> Self {
        let labeling = mesh2d_snake(&mesh);
        FixedPathRouter {
            topo: mesh,
            labeling,
        }
    }
}

impl FixedPathRouter<Hypercube> {
    /// Fixed-path on a Gray-labeled hypercube.
    pub fn hypercube(cube: Hypercube) -> Self {
        let labeling = hypercube_gray(&cube);
        FixedPathRouter {
            topo: cube,
            labeling,
        }
    }
}

impl<T: Topology> FixedPathRouter<T> {
    /// Fixed-path on a caller-labeled topology.
    pub fn with_labeling(topo: T, labeling: Labeling) -> Self {
        FixedPathRouter { topo, labeling }
    }
}

impl<T: Topology> MulticastRouter for FixedPathRouter<T> {
    fn name(&self) -> &'static str {
        "fixed-path"
    }

    fn plan(&self, mc: &MulticastSet) -> DeliveryPlan {
        let paths = mcast_core::fixed_path::fixed_path(&self.topo, &self.labeling, mc);
        DeliveryPlan::from_paths(mc, &paths, ClassChoice::Any)
    }
}

/// The double-channel X-first tree scheme (§6.2.1): quadrant trees with
/// fixed channel classes, requiring a 2-class network.
pub struct DoubleChannelTreeRouter {
    mesh: Mesh2D,
}

impl DoubleChannelTreeRouter {
    /// Double-channel tree routing on a 2D mesh.
    pub fn new(mesh: Mesh2D) -> Self {
        DoubleChannelTreeRouter { mesh }
    }
}

impl MulticastRouter for DoubleChannelTreeRouter {
    fn name(&self) -> &'static str {
        "dc-tree"
    }

    fn required_classes(&self) -> u8 {
        2
    }

    fn plan(&self, mc: &MulticastSet) -> DeliveryPlan {
        let parts = mcast_core::dc_xfirst_tree::dc_xfirst(&self.mesh, mc);
        let mesh = self.mesh;
        let quadrants: Vec<_> = parts.iter().map(|p| p.quadrant).collect();
        let trees: Vec<_> = parts.into_iter().map(|p| p.tree).collect();
        DeliveryPlan::from_forest(mc, &trees, |i, (from, to)| {
            let q = quadrants[i];
            ClassChoice::Fixed(q.channel_class(mesh.direction(from, to)))
        })
    }
}

/// Dual-path routes carried by *circuit switching* instead of wormhole
/// (§2.2.3): the §2.3.4 subnetwork argument applies to both, so the same
/// label-monotone paths stay deadlock-free while the switching costs
/// differ — used by the switching ablation.
pub struct CircuitDualPathRouter<T: Topology> {
    inner: DualPathRouter<T>,
}

impl CircuitDualPathRouter<Mesh2D> {
    /// Circuit-switched dual-path on a snake-labeled 2D mesh.
    pub fn mesh(mesh: Mesh2D) -> Self {
        CircuitDualPathRouter {
            inner: DualPathRouter::mesh(mesh),
        }
    }
}

impl<T: Topology> CircuitDualPathRouter<T> {
    /// Circuit-switched dual-path on a caller-labeled topology.
    pub fn with_labeling(topo: T, labeling: Labeling) -> Self {
        CircuitDualPathRouter {
            inner: DualPathRouter::with_labeling(topo, labeling),
        }
    }
}

impl<T: Topology> MulticastRouter for CircuitDualPathRouter<T> {
    fn name(&self) -> &'static str {
        "dual-path/circuit"
    }

    fn plan(&self, mc: &MulticastSet) -> DeliveryPlan {
        let mut plan = self.inner.plan(mc);
        for w in &mut plan.worms {
            if let crate::plan::PlanWorm::Path(p) = w {
                *w = crate::plan::PlanWorm::Circuit(p.clone());
            }
        }
        plan
    }

    fn plan_into(&self, mc: &MulticastSet, arena: &mut PlanArena, out: &mut DeliveryPlan) {
        self.inner.plan_into(mc, arena, out);
        for w in &mut out.worms {
            if let PlanWorm::Path(p) = w {
                let class = p.class;
                let nodes = std::mem::take(&mut p.nodes);
                *w = PlanWorm::Circuit(PlanPath { nodes, class });
            }
        }
    }
}

/// Runs any scheme on a network with (at least) a given number of
/// channel classes — the Fig 7.8/7.9 "level playing field", where the
/// path schemes are compared on the double-channel network the tree
/// scheme needs. Harnesses size the network from `required_classes`, so
/// overriding it here is all it takes.
pub struct ClassOverrideRouter<R> {
    inner: R,
    classes: u8,
}

impl<R: MulticastRouter> ClassOverrideRouter<R> {
    /// Wraps `inner`, reporting at least `classes` required classes
    /// (never fewer than the scheme itself needs).
    pub fn new(inner: R, classes: u8) -> Self {
        ClassOverrideRouter { inner, classes }
    }
}

impl<R: MulticastRouter> MulticastRouter for ClassOverrideRouter<R> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn required_classes(&self) -> u8 {
        self.classes.max(self.inner.required_classes())
    }

    fn plan(&self, mc: &MulticastSet) -> DeliveryPlan {
        self.inner.plan(mc)
    }

    fn plan_into(&self, mc: &MulticastSet, arena: &mut PlanArena, out: &mut DeliveryPlan) {
        self.inner.plan_into(mc, arena, out)
    }
}

/// Virtual-channel partitioned multicast (§8.2 future work implemented):
/// `lanes` virtual copies of the high/low subnetworks, destinations
/// spread across lanes in contiguous label ranges.
pub struct VcMultiPathRouter<T: Topology> {
    topo: T,
    labeling: Labeling,
    lanes: u8,
}

impl VcMultiPathRouter<Mesh2D> {
    /// Virtual-channel multicast on a snake-labeled 2D mesh.
    pub fn mesh(mesh: Mesh2D, lanes: u8) -> Self {
        let labeling = mesh2d_snake(&mesh);
        VcMultiPathRouter {
            topo: mesh,
            labeling,
            lanes,
        }
    }
}

impl VcMultiPathRouter<Hypercube> {
    /// Virtual-channel multicast on a Gray-labeled hypercube.
    pub fn hypercube(cube: Hypercube, lanes: u8) -> Self {
        let labeling = hypercube_gray(&cube);
        VcMultiPathRouter {
            topo: cube,
            labeling,
            lanes,
        }
    }
}

impl<T: Topology> VcMultiPathRouter<T> {
    /// Virtual-channel multicast on a caller-labeled topology.
    pub fn with_labeling(topo: T, labeling: Labeling, lanes: u8) -> Self {
        VcMultiPathRouter {
            topo,
            labeling,
            lanes,
        }
    }
}

impl<T: Topology> MulticastRouter for VcMultiPathRouter<T> {
    fn name(&self) -> &'static str {
        "vc-multi-path"
    }

    fn required_classes(&self) -> u8 {
        self.lanes
    }

    fn plan(&self, mc: &MulticastSet) -> DeliveryPlan {
        let lane_paths =
            mcast_core::vc_multi_path::vc_multi_path(&self.topo, &self.labeling, mc, self.lanes);
        DeliveryPlan {
            source: mc.source,
            destinations: mc.destinations.clone(),
            worms: lane_paths
                .into_iter()
                .filter(|p| !p.path.is_empty())
                .map(|p| {
                    crate::plan::PlanWorm::Path(crate::plan::PlanPath {
                        nodes: p.path.nodes().to_vec(),
                        class: ClassChoice::Fixed(p.lane),
                    })
                })
                .collect(),
        }
    }
}

/// Octant-partitioned tree multicast for 3D meshes (the §6.2.1 scheme
/// lifted one dimension — see `mcast_core::mesh3d_multicast`): requires
/// four channel classes per direction.
pub struct OctantTreeRouter {
    mesh: mcast_topology::Mesh3D,
}

impl OctantTreeRouter {
    /// Octant tree routing on a 3D mesh.
    pub fn new(mesh: mcast_topology::Mesh3D) -> Self {
        OctantTreeRouter { mesh }
    }
}

impl MulticastRouter for OctantTreeRouter {
    fn name(&self) -> &'static str {
        "octant-tree"
    }

    fn required_classes(&self) -> u8 {
        4
    }

    fn plan(&self, mc: &MulticastSet) -> DeliveryPlan {
        let parts = mcast_core::mesh3d_multicast::octant_multicast(&self.mesh, mc);
        let mesh = self.mesh;
        let octants: Vec<_> = parts.iter().map(|p| p.octant).collect();
        let trees: Vec<_> = parts.into_iter().map(|p| p.tree).collect();
        DeliveryPlan::from_forest(mc, &trees, |i, (from, to)| {
            let o = octants[i];
            let dir = mcast_topology::mesh3d::Dir3::ALL
                .into_iter()
                .find(|&d| mesh.step(from, d) == Some(to))
                .expect("tree edge is a link");
            ClassChoice::Fixed(o.channel_class(dir))
        })
    }
}

/// Plain (deadlock-prone) X-first multicast trees on single channels —
/// §6.1's broken extension, used to demonstrate the Fig 6.4 deadlock.
pub struct XFirstTreeRouter {
    mesh: Mesh2D,
}

impl XFirstTreeRouter {
    /// Naive X-first tree multicast on a 2D mesh.
    pub fn new(mesh: Mesh2D) -> Self {
        XFirstTreeRouter { mesh }
    }
}

impl MulticastRouter for XFirstTreeRouter {
    fn name(&self) -> &'static str {
        "xfirst-tree"
    }

    fn plan(&self, mc: &MulticastSet) -> DeliveryPlan {
        let tree = mcast_core::xfirst::xfirst_tree(&self.mesh, mc);
        DeliveryPlan::from_tree(mc, &tree, ClassChoice::Any)
    }
}

/// The nCUBE-2 style E-cube broadcast/multicast tree on a hypercube —
/// §6.1's Fig 6.1 deadlock subject.
pub struct EcubeTreeRouter {
    cube: Hypercube,
}

impl EcubeTreeRouter {
    /// E-cube tree multicast on a hypercube.
    pub fn new(cube: Hypercube) -> Self {
        EcubeTreeRouter { cube }
    }
}

impl MulticastRouter for EcubeTreeRouter {
    fn name(&self) -> &'static str {
        "ecube-tree"
    }

    fn plan(&self, mc: &MulticastSet) -> DeliveryPlan {
        // The tree that merges the per-destination E-cube (ascending
        // dimension) unicast paths, as the nCUBE-2 broadcast does.
        use mcast_core::geometry::RoutingGeometry;
        let mut tree = mcast_core::model::TreeRoute::new(mc.source);
        for &d in &mc.destinations {
            let path = self.cube.shortest_path(mc.source, d);
            for w in path.windows(2) {
                if !tree.contains(w[1]) {
                    tree.attach(w[0], w[1]);
                }
            }
        }
        DeliveryPlan::from_tree(mc, &tree, ClassChoice::Any)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn router_plans_cover_destinations() {
        let mesh = Mesh2D::new(6, 6);
        let mc = MulticastSet::new(14, [0, 35, 7, 29, 22]);
        let routers: Vec<Box<dyn MulticastRouter>> = vec![
            Box::new(DualPathRouter::mesh(mesh)),
            Box::new(MultiPathMeshRouter::new(mesh)),
            Box::new(FixedPathRouter::mesh(mesh)),
            Box::new(DoubleChannelTreeRouter::new(mesh)),
            Box::new(XFirstTreeRouter::new(mesh)),
        ];
        for r in &routers {
            let plan = r.plan(&mc);
            assert_eq!(plan.source, mc.source, "{}", r.name());
            assert!(!plan.worms.is_empty(), "{}", r.name());
            assert!(plan.traffic() >= mc.k().min(5), "{}", r.name());
        }
    }

    #[test]
    fn hypercube_router_plans() {
        let cube = Hypercube::new(6);
        let mc = MulticastSet::new(9, [0, 63, 17, 44]);
        let routers: Vec<Box<dyn MulticastRouter>> = vec![
            Box::new(DualPathRouter::hypercube(cube)),
            Box::new(MultiPathCubeRouter::new(cube)),
            Box::new(FixedPathRouter::hypercube(cube)),
            Box::new(EcubeTreeRouter::new(cube)),
        ];
        for r in &routers {
            let plan = r.plan(&mc);
            assert!(plan.traffic() >= 4, "{}", r.name());
        }
    }

    #[test]
    fn plan_into_matches_plan_for_every_router() {
        // One shared arena + plan reused across routers and messages:
        // the streamed construction must equal the allocating one
        // exactly (same worms, same order, same classes).
        let mesh = Mesh2D::new(6, 6);
        let routers: Vec<Box<dyn MulticastRouter>> = vec![
            Box::new(DualPathRouter::mesh(mesh)),
            Box::new(CircuitDualPathRouter::mesh(mesh)),
            Box::new(ClassOverrideRouter::new(DualPathRouter::mesh(mesh), 2)),
            Box::new(MultiPathMeshRouter::new(mesh)),
            Box::new(DoubleChannelTreeRouter::new(mesh)),
        ];
        let mut arena = PlanArena::new();
        let mut out = DeliveryPlan {
            source: 0,
            destinations: Vec::new(),
            worms: Vec::new(),
        };
        for r in &routers {
            for (src, dests) in [(14usize, vec![0, 35, 7]), (0, vec![20]), (35, vec![1, 2])] {
                let mc = MulticastSet::new(src, dests);
                r.plan_into(&mc, &mut arena, &mut out);
                assert_eq!(out, r.plan(&mc), "{}", r.name());
            }
        }
    }

    #[test]
    fn dc_tree_requires_two_classes() {
        let mesh = Mesh2D::new(4, 4);
        let r = DoubleChannelTreeRouter::new(mesh);
        assert_eq!(r.required_classes(), 2);
        let mc = MulticastSet::new(5, [0, 15, 3, 12]);
        let plan = r.plan(&mc);
        // Every edge uses a fixed class.
        for w in &plan.worms {
            if let crate::plan::PlanWorm::Tree(t) = w {
                for &(_, _, c) in &t.edges {
                    assert!(matches!(c, ClassChoice::Fixed(_)));
                }
            }
        }
    }
}

#[cfg(test)]
mod octant_tests {
    use super::*;
    use crate::engine::{Engine, SimConfig};
    use crate::network::Network;
    use mcast_topology::Mesh3D;

    #[test]
    fn octant_router_delivers_on_quadruple_channels() {
        let mesh = Mesh3D::new(3, 3, 3);
        let router = OctantTreeRouter::new(mesh);
        assert_eq!(router.required_classes(), 4);
        let mut engine = Engine::new(
            Network::new(&mesh, router.required_classes()),
            SimConfig::default(),
        );
        for s in 0..mesh.num_nodes() {
            let mc = MulticastSet::new(s, (1..=5).map(|i| (s + i * 4 + 1) % 27));
            engine.inject(&router.plan(&mc));
        }
        assert!(
            engine.run_to_quiescence(),
            "octant trees on 4 classes wedged under closed saturating load"
        );
        assert_eq!(engine.take_completed().len(), 27);
    }
}
