//! Delivery plans: the bridge between the routing algorithms of
//! `mcast-core` and the worm mechanics of the engine.
//!
//! A plan fixes, before injection, the exact set of channels each message
//! copy will claim — matching the dissertation's distributed algorithms,
//! whose per-hop decisions depend only on the header's destination list
//! and are therefore fully determined at the source. Path plans spawn one
//! worm per path (multicast star); tree plans spawn one lock-step tree
//! worm per tree (multicast tree / the nCUBE-2 style of §6.1).

use mcast_core::model::{MulticastSet, PathRoute, TreeRoute};
use mcast_topology::NodeId;

/// Channel-class selection for one hop of a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassChoice {
    /// Use exactly this class (e.g. a quadrant subnetwork's copy).
    Fixed(u8),
    /// Use any class; the engine picks an idle copy, else the
    /// shortest queue (deterministic tie-break toward class 0).
    Any,
}

/// One path worm: the node visiting sequence plus the class policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanPath {
    /// Visited nodes, source first. A path of one node makes no worm.
    pub nodes: Vec<NodeId>,
    /// Channel-class policy for every hop.
    pub class: ClassChoice,
}

/// One tree worm: edges in parent-before-child order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanTree {
    /// The root (source) node.
    pub root: NodeId,
    /// Edges `(from, to, class)`; every `from` is the root or appears as a
    /// `to` earlier in the list.
    pub edges: Vec<(NodeId, NodeId, ClassChoice)>,
}

/// A complete delivery plan for one multicast message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeliveryPlan {
    /// The source node.
    pub source: NodeId,
    /// Destinations that must observe delivery.
    pub destinations: Vec<NodeId>,
    /// The worms to inject.
    pub worms: Vec<PlanWorm>,
}

/// One worm of a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanWorm {
    /// A pipelined path worm (wormhole switching).
    Path(PlanPath),
    /// A lock-step replicated tree worm.
    Tree(PlanTree),
    /// A circuit-switched path (§2.2.3): the whole circuit is reserved by
    /// a control packet, hop by hop, before any data flit moves; channels
    /// release as the tail passes. Deadlock behaviour matches wormhole
    /// ("channels are the critical resources… the solution can also be
    /// applied to circuit switching", §2.3.4).
    Circuit(PlanPath),
    /// A path worm held at the source until other worms of the *same
    /// plan* complete — the engine-level primitive behind software
    /// collectives, where a relay may forward a message only after the
    /// round that delivered it to the relay has finished. A staged worm
    /// claims no channel and occupies no queue slot while held, so it
    /// cannot participate in deadlock before its dependencies retire.
    Staged(PlanStage),
}

/// A staged path worm: the path plus its intra-plan dependencies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanStage {
    /// Indices into the owning plan's `worms` that must complete before
    /// this worm starts requesting channels. Every index must refer to
    /// an *earlier* worm in the list (no forward or self dependencies).
    pub after: Vec<u32>,
    /// The path to follow once released.
    pub path: PlanPath,
}

impl DeliveryPlan {
    /// Builds a star plan (one worm per path) from path routes.
    pub fn from_paths(mc: &MulticastSet, paths: &[PathRoute], class: ClassChoice) -> Self {
        DeliveryPlan {
            source: mc.source,
            destinations: mc.destinations.clone(),
            worms: paths
                .iter()
                .filter(|p| !p.is_empty())
                .map(|p| {
                    PlanWorm::Path(PlanPath {
                        nodes: p.nodes().to_vec(),
                        class,
                    })
                })
                .collect(),
        }
    }

    /// Builds a single-tree plan from a tree route. `class` applies to
    /// every edge.
    pub fn from_tree(mc: &MulticastSet, tree: &TreeRoute, class: ClassChoice) -> Self {
        DeliveryPlan {
            source: mc.source,
            destinations: mc.destinations.clone(),
            worms: if tree.traffic() == 0 {
                Vec::new()
            } else {
                vec![PlanWorm::Tree(plan_tree(tree, |_, _| class))]
            },
        }
    }

    /// Builds a forest plan (one tree worm per tree) with per-edge class
    /// assignment.
    pub fn from_forest<F>(mc: &MulticastSet, trees: &[TreeRoute], mut class_of: F) -> Self
    where
        F: FnMut(usize, (NodeId, NodeId)) -> ClassChoice,
    {
        DeliveryPlan {
            source: mc.source,
            destinations: mc.destinations.clone(),
            worms: trees
                .iter()
                .enumerate()
                .filter(|(_, t)| t.traffic() > 0)
                .map(|(i, t)| PlanWorm::Tree(plan_tree(t, |f, to| class_of(i, (f, to)))))
                .collect(),
        }
    }

    /// Total channels claimed across all worms (the plan's traffic).
    pub fn traffic(&self) -> usize {
        self.worms
            .iter()
            .map(|w| match w {
                PlanWorm::Path(p) | PlanWorm::Circuit(p) => p.nodes.len() - 1,
                PlanWorm::Staged(s) => s.path.nodes.len() - 1,
                PlanWorm::Tree(t) => t.edges.len(),
            })
            .sum()
    }
}

/// A reusable buffer pool for building `DeliveryPlan`s without
/// per-message allocation (DESIGN.md §16). Routers that implement
/// `plan_into` draw node/edge buffers from the arena and the streaming
/// runner recycles the finished plan back into it, so steady-state plan
/// construction performs no heap allocation at all once the pools warm
/// up.
#[derive(Debug, Default)]
pub struct PlanArena {
    node_bufs: Vec<Vec<NodeId>>,
    edge_bufs: Vec<Vec<(NodeId, NodeId, ClassChoice)>>,
    dep_bufs: Vec<Vec<u32>>,
    dual_scratch: mcast_core::dual_path::DualPathScratch,
}

impl PlanArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes an empty node buffer from the pool (or allocates one).
    pub fn node_buf(&mut self) -> Vec<NodeId> {
        self.node_bufs.pop().unwrap_or_default()
    }

    /// Returns an unused node buffer to the pool.
    pub fn put_node_buf(&mut self, mut buf: Vec<NodeId>) {
        buf.clear();
        self.node_bufs.push(buf);
    }

    /// Working buffers for the dual-path routing family, kept here so a
    /// `&mut PlanArena` is the only state `plan_into` needs.
    pub fn dual_scratch(&mut self) -> &mut mcast_core::dual_path::DualPathScratch {
        &mut self.dual_scratch
    }

    /// Takes an empty edge buffer from the pool (or allocates one).
    pub fn edge_buf(&mut self) -> Vec<(NodeId, NodeId, ClassChoice)> {
        self.edge_bufs.pop().unwrap_or_default()
    }

    /// Takes an empty staged-worm dependency buffer from the pool (or
    /// allocates one).
    pub fn dep_buf(&mut self) -> Vec<u32> {
        self.dep_bufs.pop().unwrap_or_default()
    }

    /// Returns every buffer inside `plan` to the pool, leaving the plan
    /// empty but with its `worms` capacity intact for reuse.
    pub fn recycle(&mut self, plan: &mut DeliveryPlan) {
        let mut dests = std::mem::take(&mut plan.destinations);
        dests.clear();
        self.node_bufs.push(dests);
        for worm in plan.worms.drain(..) {
            match worm {
                PlanWorm::Path(p) | PlanWorm::Circuit(p) => {
                    let mut nodes = p.nodes;
                    nodes.clear();
                    self.node_bufs.push(nodes);
                }
                PlanWorm::Staged(s) => {
                    let mut nodes = s.path.nodes;
                    nodes.clear();
                    self.node_bufs.push(nodes);
                    let mut after = s.after;
                    after.clear();
                    self.dep_bufs.push(after);
                }
                PlanWorm::Tree(t) => {
                    let mut edges = t.edges;
                    edges.clear();
                    self.edge_bufs.push(edges);
                }
            }
        }
    }

    /// Number of pooled buffers (diagnostic; bounds allocation churn).
    pub fn pooled(&self) -> usize {
        self.node_bufs.len() + self.edge_bufs.len() + self.dep_bufs.len()
    }
}

fn plan_tree<F>(tree: &TreeRoute, mut class_of: F) -> PlanTree
where
    F: FnMut(NodeId, NodeId) -> ClassChoice,
{
    // Emit edges in BFS order so parents precede children.
    let children = tree.children_map();
    let mut edges = Vec::with_capacity(tree.traffic());
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(tree.root());
    while let Some(n) = queue.pop_front() {
        if let Some(kids) = children.get(&n) {
            for &c in kids {
                edges.push((n, c, class_of(n, c)));
                queue.push_back(c);
            }
        }
    }
    PlanTree {
        root: tree.root(),
        edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_plan_edges_parent_first() {
        let mut t = TreeRoute::new(4);
        t.attach(4, 1);
        t.attach(1, 0);
        t.attach(4, 5);
        t.attach(5, 6);
        let mc = MulticastSet::new(4, [0, 6]);
        let plan = DeliveryPlan::from_tree(&mc, &t, ClassChoice::Fixed(0));
        let PlanWorm::Tree(pt) = &plan.worms[0] else {
            panic!("tree expected")
        };
        assert_eq!(pt.edges.len(), 4);
        // Every from is root or an earlier to.
        let mut seen = vec![pt.root];
        for &(f, to, _) in &pt.edges {
            assert!(seen.contains(&f), "edge {f}->{to} before its parent");
            seen.push(to);
        }
        assert_eq!(plan.traffic(), 4);
    }

    #[test]
    fn arena_recycles_every_buffer() {
        let mut arena = PlanArena::new();
        let mc = MulticastSet::new(0, [2, 3]);
        let paths = vec![PathRoute::new(vec![0, 1, 2]), PathRoute::new(vec![0, 3])];
        let mut plan = DeliveryPlan::from_paths(&mc, &paths, ClassChoice::Any);
        let mut t = TreeRoute::new(0);
        t.attach(0, 1);
        plan.worms
            .push(PlanWorm::Tree(plan_tree(&t, |_, _| ClassChoice::Any)));
        arena.recycle(&mut plan);
        // destinations + two path node buffers + one tree edge buffer.
        assert_eq!(arena.pooled(), 4);
        assert!(plan.worms.is_empty());
        assert!(plan.destinations.is_empty());
        // Buffers come back empty and are reused, not reallocated.
        let b = arena.node_buf();
        assert!(b.is_empty() && b.capacity() > 0);
    }

    #[test]
    fn path_plan_skips_empty_paths() {
        let mc = MulticastSet::new(0, [2]);
        let paths = vec![PathRoute::new(vec![0, 1, 2]), PathRoute::new(vec![0])];
        let plan = DeliveryPlan::from_paths(&mc, &paths, ClassChoice::Any);
        assert_eq!(plan.worms.len(), 1);
        assert_eq!(plan.traffic(), 2);
    }
}
