//! A flit-level discrete-event simulator for wormhole-routed
//! multicomputer networks — the substrate for the dynamic performance
//! study of Chapter 7 (the dissertation used C + CSIM; this crate is the
//! from-scratch Rust equivalent, see DESIGN.md §2).
//!
//! * [`network`]: the channel fabric (single- or double-channel);
//! * [`plan`]: delivery plans bridging `mcast-core` routes to worms;
//! * [`engine`]: the event engine — per-flit channel transfers, FIFO
//!   channel queues, pipelined path worms and lock-step tree worms,
//!   destination delivery tracking and deadlock observation;
//! * [`routers`]: plan factories for every Chapter 6/7 routing scheme;
//! * [`registry`]: the data-driven (topology, scheme) → router
//!   resolution layer — [`TopoSpec`] + [`SchemeId`] → boxed routers;
//! * [`deadlock`]: closed-scenario replays of the §6.1 deadlock
//!   configurations.
//!
//! Observability: [`Engine::set_sink`] installs an `mcast-obs` sink
//! (re-exported here as [`obs`]) that receives typed [`obs::SimEvent`]s
//! — flit hops, channel acquire/block/release, message lifecycle, and
//! recovery transitions — without perturbing simulation results.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod collectives;
pub mod deadlock;
pub mod diagnose;
pub mod engine;
mod equeue;
pub mod error;
pub mod network;
mod partition;
pub mod plan;
pub mod recovery;
pub mod reference;
pub mod registry;
pub mod routers;
pub mod switching;
pub mod topograph;

pub use mcast_obs as obs;

pub use collectives::{CollectiveKind, CollectiveRouter, DpmRouter, UnicastRouting};
pub use engine::{AbortedMessage, CompletedMessage, Engine, MessageId, RunBudget, SimConfig, Time};
pub use error::SimError;
pub use network::{ChannelId, Network};
pub use plan::{ClassChoice, DeliveryPlan, PlanArena, PlanPath, PlanStage, PlanTree, PlanWorm};
pub use recovery::{
    AbortReason, FaultDualPathRouter, FaultMultiPathRouter, FaultMulticastRouter, FaultPlan,
    MessageOutcome, ObliviousRouter, RecoveryEngine, RecoveryEvent, RecoveryPolicy, RecoveryStats,
};
pub use reference::ReferenceEngine;
pub use registry::{
    build_fault_router, build_route, build_router, scheme_deadlock_free, schemes_for, BuiltTopo,
    RegistryError, RoutePlan, SchemeId, SchemeInfo, TopoSpec,
};
pub use routers::MulticastRouter;
pub use topograph::{
    load_custom, parse_graph_dot, parse_graph_json, IngestError, UpDownMulticastRouter,
    UpDownTreeRouter,
};
