//! The four switching technologies of §2.2 — store-and-forward, virtual
//! cut-through, circuit switching, and wormhole routing — as contention-
//! free latency models (the Fig 2.3 comparison) and as an event-driven
//! store-and-forward packet simulator with the structured buffer pools of
//! §2.3.4.
//!
//! The closed forms are the dissertation's own:
//!
//! * store-and-forward: `(L/B)(D + 1)`
//! * virtual cut-through: `(L_h/B)·D + L/B`
//! * circuit switching: `(L_c/B)·D + L/B`
//! * wormhole: `(L_f/B)·D + L/B`

/// Parameters of the §2.2 latency models.
#[derive(Debug, Clone, Copy)]
pub struct SwitchingParams {
    /// Message length `L` in bytes.
    pub message_bytes: f64,
    /// Channel bandwidth `B` in bytes/second.
    pub bandwidth: f64,
    /// Header length `L_h` (virtual cut-through), bytes.
    pub header_bytes: f64,
    /// Control packet length `L_c` (circuit establishment), bytes.
    pub control_bytes: f64,
    /// Flit length `L_f` (wormhole), bytes.
    pub flit_bytes: f64,
}

impl Default for SwitchingParams {
    fn default() -> Self {
        SwitchingParams {
            message_bytes: 128.0,
            bandwidth: 20e6,
            header_bytes: 8.0,
            control_bytes: 8.0,
            flit_bytes: 8.0,
        }
    }
}

/// The switching technique being modeled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Switching {
    /// Store the whole packet at every intermediate node (§2.2.1).
    StoreAndForward,
    /// Forward as soon as the header is decoded; buffer on block (§2.2.2).
    VirtualCutThrough,
    /// Reserve a source→destination circuit, then stream (§2.2.3).
    CircuitSwitching,
    /// Pipeline flits behind the header; block in place (§2.2.4).
    Wormhole,
}

impl Switching {
    /// All four techniques in presentation order.
    pub const ALL: [Switching; 4] = [
        Switching::StoreAndForward,
        Switching::VirtualCutThrough,
        Switching::CircuitSwitching,
        Switching::Wormhole,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Switching::StoreAndForward => "store-and-forward",
            Switching::VirtualCutThrough => "virtual cut-through",
            Switching::CircuitSwitching => "circuit switching",
            Switching::Wormhole => "wormhole",
        }
    }

    /// Contention-free network latency over `distance` hops, in seconds
    /// (the §2.2 closed forms; `T_p·D + L/B` with the technique's `T_p`).
    pub fn latency(self, p: &SwitchingParams, distance: usize) -> f64 {
        let d = distance as f64;
        let stream = p.message_bytes / p.bandwidth;
        match self {
            // The dissertation's SAF form is (L/B)(D+1): the full packet
            // crosses every one of the D channels.
            Switching::StoreAndForward => stream * (d + 1.0),
            Switching::VirtualCutThrough => (p.header_bytes / p.bandwidth) * d + stream,
            Switching::CircuitSwitching => (p.control_bytes / p.bandwidth) * d + stream,
            Switching::Wormhole => (p.flit_bytes / p.bandwidth) * d + stream,
        }
    }
}

/// The structured buffer pool of §2.3.4 for store-and-forward networks:
/// buffers at every node are split into classes `0..=C` (`C` = longest
/// route); a packet that has traversed `i` hops may only occupy a buffer
/// of class `i`, which imposes a partial order on buffer acquisition and
/// rules out buffer deadlock.
#[derive(Debug, Clone)]
pub struct BufferPool {
    /// `free[node][class]` = free buffers of that class.
    free: Vec<Vec<u32>>,
    capacity_per_class: u32,
}

impl BufferPool {
    /// Creates a pool with `classes` classes of `capacity` buffers at each
    /// of `nodes` nodes.
    pub fn new(nodes: usize, classes: usize, capacity: u32) -> Self {
        assert!(classes >= 1 && capacity >= 1);
        BufferPool {
            free: vec![vec![capacity; classes]; nodes],
            capacity_per_class: capacity,
        }
    }

    /// Number of buffer classes.
    pub fn classes(&self) -> usize {
        self.free[0].len()
    }

    /// Buffers per class per node.
    pub fn capacity_per_class(&self) -> u32 {
        self.capacity_per_class
    }

    /// Tries to acquire a buffer of `class` at `node`.
    pub fn try_acquire(&mut self, node: usize, class: usize) -> bool {
        if self.free[node][class] > 0 {
            self.free[node][class] -= 1;
            true
        } else {
            false
        }
    }

    /// Releases a buffer of `class` at `node`.
    ///
    /// # Panics
    /// Panics on over-release.
    pub fn release(&mut self, node: usize, class: usize) {
        assert!(
            self.free[node][class] < self.capacity_per_class,
            "over-release at node {node} class {class}"
        );
        self.free[node][class] += 1;
    }

    /// Free buffers of `class` at `node`.
    pub fn available(&self, node: usize, class: usize) -> u32 {
        self.free[node][class]
    }
}

/// A store-and-forward hop-by-hop transfer schedule for a set of packets,
/// used to demonstrate §2.3.4's claim: with *unclassed* finite buffers a
/// cyclic packet pattern wedges; with the structured pool (class = hops
/// traversed) every packet always drains.
///
/// The model is intentionally minimal: time advances in rounds; in each
/// round every head-of-route packet tries to advance one hop, needing a
/// free buffer (of the right class, when classed) at the next node.
/// Returns `Some(rounds)` if all packets arrived, `None` if a round makes
/// no progress (deadlock).
pub fn saf_drain(
    routes: &[Vec<usize>],
    num_nodes: usize,
    classed: bool,
    buffers_per_node: u32,
) -> Option<usize> {
    let max_len = routes.iter().map(|r| r.len()).max().unwrap_or(0);
    if max_len == 0 {
        return Some(0);
    }
    let classes = if classed { max_len } else { 1 };
    let mut pool = BufferPool::new(num_nodes, classes, buffers_per_node);
    // Packet state: (route, position index, holding class at current node).
    // Position 0 = still at source (source buffers are not contended).
    let mut pos: Vec<usize> = vec![0; routes.len()];
    let mut holding: Vec<Option<usize>> = vec![None; routes.len()];
    let mut arrived = vec![false; routes.len()];
    let mut rounds = 0usize;
    loop {
        if arrived.iter().all(|&a| a) {
            return Some(rounds);
        }
        rounds += 1;
        let mut progress = false;
        for i in 0..routes.len() {
            if arrived[i] {
                continue;
            }
            let route = &routes[i];
            let next_idx = pos[i] + 1;
            if next_idx >= route.len() {
                // Consume at destination: release held buffer.
                if let Some(c) = holding[i].take() {
                    pool.release(route[pos[i]], c);
                }
                arrived[i] = true;
                progress = true;
                continue;
            }
            let next_node = route[next_idx];
            let next_class = if classed { next_idx - 1 } else { 0 };
            // A packet at the final position consumes without a buffer.
            let is_final = next_idx == route.len() - 1;
            if is_final || pool.try_acquire(next_node, next_class) {
                if let Some(c) = holding[i].take() {
                    pool.release(route[pos[i]], c);
                }
                pos[i] = next_idx;
                holding[i] = if is_final { None } else { Some(next_class) };
                if is_final {
                    arrived[i] = true;
                }
                progress = true;
            }
        }
        if !progress {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_formulas_match_section_2_2() {
        let p = SwitchingParams::default();
        let stream = 128.0 / 20e6;
        let d = 10usize;
        assert!((Switching::StoreAndForward.latency(&p, d) - stream * 11.0).abs() < 1e-12);
        assert!((Switching::Wormhole.latency(&p, d) - (8.0 / 20e6 * 10.0 + stream)).abs() < 1e-12);
        // Pipelined techniques are nearly distance-independent: doubling D
        // adds only the per-hop flit term (5 · L_f/B here), not another
        // message time.
        let w1 = Switching::Wormhole.latency(&p, 5);
        let w2 = Switching::Wormhole.latency(&p, 10);
        assert!((w2 - w1 - 5.0 * 8.0 / 20e6).abs() < 1e-12);
        assert!(
            (w2 - w1) < stream,
            "extra distance costs less than one message time"
        );
        // SAF is linear in distance.
        let s1 = Switching::StoreAndForward.latency(&p, 5);
        let s2 = Switching::StoreAndForward.latency(&p, 10);
        assert!((s2 / s1 - 11.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn wormhole_always_fastest_at_long_distance() {
        let p = SwitchingParams::default();
        for d in [5usize, 20, 50] {
            let w = Switching::Wormhole.latency(&p, d);
            let s = Switching::StoreAndForward.latency(&p, d);
            assert!(w < s, "d={d}");
        }
    }

    #[test]
    fn unclassed_buffers_deadlock_on_a_cycle() {
        // Four packets chasing each other around a 4-node ring, each
        // needing the buffer the next one holds (Fig 2.4's configuration).
        // One buffer per node: after every packet advances one hop, all
        // buffers are full and the pattern wedges.
        let routes = vec![
            vec![0, 1, 2, 3],
            vec![1, 2, 3, 0],
            vec![2, 3, 0, 1],
            vec![3, 0, 1, 2],
        ];
        assert_eq!(
            saf_drain(&routes, 4, false, 1),
            None,
            "cyclic SAF must wedge"
        );
    }

    #[test]
    fn structured_pool_drains_the_same_cycle() {
        // §2.3.4: "the structure buffer pool algorithm is deadlock free
        // since it assigns a partial order to resources."
        let routes = vec![
            vec![0, 1, 2, 3],
            vec![1, 2, 3, 0],
            vec![2, 3, 0, 1],
            vec![3, 0, 1, 2],
        ];
        let rounds = saf_drain(&routes, 4, true, 1).expect("classed pool must drain");
        assert!(rounds > 0);
    }

    #[test]
    fn pool_accounting() {
        let mut p = BufferPool::new(2, 3, 2);
        assert!(p.try_acquire(0, 1));
        assert!(p.try_acquire(0, 1));
        assert!(!p.try_acquire(0, 1));
        assert_eq!(p.available(0, 1), 0);
        p.release(0, 1);
        assert_eq!(p.available(0, 1), 1);
        assert_eq!(p.classes(), 3);
    }

    #[test]
    #[should_panic(expected = "over-release")]
    fn over_release_detected() {
        let mut p = BufferPool::new(1, 1, 1);
        p.release(0, 0);
    }

    #[test]
    fn big_random_batch_drains_with_classes() {
        // Many packets on a ring with classed buffers: always drains.
        let n = 8usize;
        let mut routes = Vec::new();
        for s in 0..n {
            for len in 2..=5usize {
                let route: Vec<usize> = (0..=len).map(|i| (s + i) % n).collect();
                routes.push(route);
            }
        }
        assert!(saf_drain(&routes, n, true, 1).is_some());
    }
}
