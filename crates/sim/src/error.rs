//! Typed simulator errors.
//!
//! The engine's hot path keeps its documented-invariant panics (a
//! malformed plan is a caller bug), but fault-aware callers inject plans
//! onto degraded networks where a plan can *legitimately* be stale — a
//! channel it names may have died between planning and injection. Those
//! callers use [`crate::engine::Engine::inject_checked`], which reports a
//! [`SimError`] instead of panicking mid-simulation.

use mcast_topology::NodeId;
use std::fmt;

use crate::engine::MessageId;

/// An error surfaced by the simulator's fallible entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A plan names a `(from, to)` hop with no channel in the network
    /// (any class).
    UnknownChannel {
        /// Tail node of the missing channel.
        from: NodeId,
        /// Head node of the missing channel.
        to: NodeId,
    },
    /// A plan names a hop whose channels all died (the plan is stale
    /// with respect to the current fault state).
    DeadChannel {
        /// Tail node of the dead hop.
        from: NodeId,
        /// Head node of the dead hop.
        to: NodeId,
    },
    /// A plan worm has no hops (a path of fewer than two nodes or a tree
    /// with no edges).
    EmptyWorm,
    /// A staged worm's `after` list references itself or a later worm —
    /// dependencies must point strictly backwards in the plan.
    BadDependency {
        /// Index of the offending worm in the plan.
        worm: usize,
    },
    /// The referenced message is not live in the engine (already
    /// completed, aborted, or never injected).
    MessageNotLive(MessageId),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownChannel { from, to } => {
                write!(f, "no channel {from} -> {to} in the network")
            }
            SimError::DeadChannel { from, to } => {
                write!(f, "every channel {from} -> {to} is failed")
            }
            SimError::EmptyWorm => write!(f, "plan worm has no hops"),
            SimError::BadDependency { worm } => {
                write!(f, "staged worm {worm} depends on itself or a later worm")
            }
            SimError::MessageNotLive(id) => write!(f, "message {id} is not live"),
        }
    }
}

impl std::error::Error for SimError {}
