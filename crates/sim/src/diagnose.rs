//! Deadlock diagnosis: extracts the wait-for cycle from a wedged engine —
//! the programmatic form of Fig 6.2's "detailed diagram of the deadlock
//! configuration".
//!
//! A wedged network (quiescent with messages in flight) always contains a
//! cycle in the worm wait-for graph: worm `A` waits on a channel owned by
//! worm `B`, which (transitively, through its own blocked branches) waits
//! back on `A`. [`find_wait_cycle`] reconstructs one such cycle as
//! `(message, waited channel)` steps.

use mcast_topology::Channel;

use crate::engine::{Engine, MessageId};
use crate::network::ChannelId;

/// One step of a wait-for cycle: `message` is blocked waiting for
/// `waited`, which is currently owned by the next step's message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaitStep {
    /// The blocked message.
    pub message: MessageId,
    /// The channel it is queued on.
    pub waited: Channel,
}

/// Finds a cycle in the wait-for graph of a (presumably wedged) engine.
///
/// Returns `None` when no cycle exists — e.g. the engine is merely
/// congested, or has drained. The returned steps chain: step `i`'s waited
/// channel is owned by step `i+1`'s message (wrapping around).
pub fn find_wait_cycle(engine: &Engine) -> Option<Vec<WaitStep>> {
    // Build message -> (waited channel, owner message) edges.
    let waiting = engine.waiting_requests();
    let mut edges: Vec<(MessageId, ChannelId, MessageId)> = Vec::new();
    for (msg, from, to) in waiting {
        // The request sits on exactly one candidate channel's queue; the
        // blocking owner is whichever candidate is held by another worm.
        for chan in engine.network().ids_of_link(from, to) {
            if let Some((owner_msg, _)) = engine.debug_owner(chan) {
                if owner_msg != msg {
                    edges.push((msg, chan, owner_msg));
                }
            }
        }
    }
    // DFS over the message wait-for graph.
    use std::collections::BTreeMap;
    let mut out: BTreeMap<MessageId, Vec<(ChannelId, MessageId)>> = BTreeMap::new();
    for (m, c, o) in edges {
        out.entry(m).or_default().push((c, o));
    }
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let ids: Vec<MessageId> = out.keys().copied().collect();
    let mut color: BTreeMap<MessageId, Color> = ids.iter().map(|&m| (m, Color::White)).collect();
    // Stack of (message, edge index); parents tracked for reconstruction.
    for &start in &ids {
        if color[&start] != Color::White {
            continue;
        }
        let mut stack: Vec<(MessageId, usize)> = vec![(start, 0)];
        color.insert(start, Color::Gray);
        let mut parent: BTreeMap<MessageId, (MessageId, ChannelId)> = BTreeMap::new();
        while let Some(&(m, i)) = stack.last() {
            let succs = out.get(&m).map(Vec::as_slice).unwrap_or(&[]);
            if i < succs.len() {
                stack.last_mut().expect("stack nonempty").1 += 1;
                let (chan, next) = succs[i];
                match color.get(&next).copied().unwrap_or(Color::Black) {
                    Color::White => {
                        color.insert(next, Color::Gray);
                        parent.insert(next, (m, chan));
                        stack.push((next, 0));
                    }
                    Color::Gray => {
                        // Cycle: next → … → m → next.
                        let mut cyc = vec![WaitStep {
                            message: m,
                            waited: engine.network().channel(chan),
                        }];
                        let mut cur = m;
                        while cur != next {
                            let (p, pc) = parent[&cur];
                            cyc.push(WaitStep {
                                message: p,
                                waited: engine.network().channel(pc),
                            });
                            cur = p;
                        }
                        cyc.reverse();
                        return Some(cyc);
                    }
                    Color::Black => {}
                }
            } else {
                color.insert(m, Color::Black);
                stack.pop();
            }
        }
    }
    None
}

/// Renders a wait cycle in the Fig 6.4 listing style.
pub fn render_wait_cycle(cycle: &[WaitStep]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    for (i, step) in cycle.iter().enumerate() {
        let next = &cycle[(i + 1) % cycle.len()];
        let _ = writeln!(
            s,
            "message {} requires [{} -> {}] (class {}) held by message {}",
            step.message, step.waited.from, step.waited.to, step.waited.class, next.message
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deadlock::{fig_6_1_broadcasts, fig_6_4_multicasts};
    use crate::engine::SimConfig;
    use crate::network::Network;
    use crate::routers::{EcubeTreeRouter, MulticastRouter, XFirstTreeRouter};
    use mcast_topology::{Hypercube, Mesh2D};

    #[test]
    fn fig_6_4_wedge_yields_a_wait_cycle() {
        let mesh = Mesh2D::new(4, 3);
        let router = XFirstTreeRouter::new(mesh);
        let mut engine = crate::engine::Engine::new(Network::new(&mesh, 1), SimConfig::default());
        for mc in fig_6_4_multicasts(&mesh) {
            engine.inject(&router.plan(&mc));
        }
        assert!(!engine.run_to_quiescence());
        let cycle = find_wait_cycle(&engine).expect("wedged engine must show a wait cycle");
        assert!(cycle.len() >= 2);
        // Cycle chains: each waited channel owned by the next message.
        for (i, step) in cycle.iter().enumerate() {
            let next = cycle[(i + 1) % cycle.len()].message;
            let chan = engine
                .network()
                .id_of(step.waited)
                .expect("cycle channels exist");
            let (owner, _) = engine.debug_owner(chan).expect("waited channel is held");
            assert_eq!(owner, next, "step {i} owner mismatch");
        }
        let rendered = render_wait_cycle(&cycle);
        assert!(rendered.contains("requires"));
    }

    #[test]
    fn fig_6_1_wedge_yields_a_wait_cycle() {
        let cube = Hypercube::new(3);
        let router = EcubeTreeRouter::new(cube);
        let mut engine = crate::engine::Engine::new(Network::new(&cube, 1), SimConfig::default());
        for mc in fig_6_1_broadcasts(cube) {
            engine.inject(&router.plan(&mc));
        }
        assert!(!engine.run_to_quiescence());
        let cycle = find_wait_cycle(&engine).expect("Fig 6.1 wedge shows a cycle");
        // Exactly the two broadcasts of §6.1 block each other.
        let msgs: std::collections::BTreeSet<_> = cycle.iter().map(|s| s.message).collect();
        assert_eq!(msgs.len(), 2);
    }

    #[test]
    fn drained_engine_has_no_cycle() {
        let mesh = Mesh2D::new(4, 3);
        let router = crate::routers::DualPathRouter::mesh(mesh);
        let mut engine = crate::engine::Engine::new(Network::new(&mesh, 1), SimConfig::default());
        for mc in fig_6_4_multicasts(&mesh) {
            engine.inject(&router.plan(&mc));
        }
        assert!(engine.run_to_quiescence());
        assert!(find_wait_cycle(&engine).is_none());
    }
}
