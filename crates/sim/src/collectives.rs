//! Modern competitor schemes: DPM multicast and software collectives.
//!
//! The dissertation's Chapter 6/7 schemes predate two families that
//! dominate practice today. This module adds both, on the same
//! [`MulticastRouter`] plumbing, so the 1990 algorithms and their modern
//! competitors run under one engine and one conformance harness:
//!
//! * [`DpmRouter`] — *destination partitioning with merge* (after
//!   Tiwari et al., "DPM: deadlock-free packet multicasting",
//!   arXiv:2108.00566). Each destination gets the topology's certified
//!   deadlock-free *unicast* path; partitions whose paths overlap are
//!   merged by absorbing every destination that lies on a longer
//!   partition's path. Every emitted worm is a prefix-closed base-routing
//!   path, so the scheme's channel-dependence graph is a subgraph of the
//!   base routing's CDG — DPM is deadlock-free exactly where the base
//!   dimension-ordered/up*‑down* routing is (everywhere in the registry
//!   except wrapped k-ary n-cubes, whose rings cycle the CDG).
//!
//! * [`CollectiveRouter`] — software multicast as O(log n) rounds of
//!   unicast sends over the ranks `[source] ++ sorted destinations`
//!   (binomial tree and recursive doubling, the MPI broadcast
//!   workhorses). A relay can only forward *after* the round that
//!   delivered its copy retires, which is precisely the engine's
//!   staged-worm primitive ([`PlanWorm::Staged`]): each send worm lists
//!   the plan-internal worms it must wait for and holds no channel while
//!   held. The `binomial-reliable` variant adds per-round completion
//!   tracking — every round-`r` send waits for *all* of round `r-1`, a
//!   barrier schedule whose delivery of round `r-1` is complete before
//!   any round-`r` flit moves.

use std::collections::HashSet;
use std::sync::Arc;

use mcast_core::model::MulticastSet;
use mcast_core::RoutingGeometry;
use mcast_topology::{
    synthesize, CertifiedRouting, CustomGraph, Hypercube, KAryNCube, Mesh2D, Mesh3D, NodeId,
    TopographError,
};

use crate::plan::{ClassChoice, DeliveryPlan, PlanPath, PlanStage, PlanWorm};
use crate::routers::MulticastRouter;

/// The certified deadlock-free unicast routing function of one
/// topology — the base routing both DPM partitions and collective sends
/// travel on.
///
/// Meshes and hypercubes use their closed-form dimension-ordered
/// geometry paths; k-ary n-cubes use dimension-ordered digit correction
/// (shorter wrap direction on tori, ties broken toward `+1`); custom
/// graphs use the synthesized certified up*/down* routing.
#[derive(Debug, Clone)]
pub enum UnicastRouting {
    /// XY dimension-ordered routing on a 2D mesh.
    Mesh2D(Mesh2D),
    /// XYZ dimension-ordered routing on a 3D mesh.
    Mesh3D(Mesh3D),
    /// Ascending e-cube routing on a hypercube.
    Hypercube(Hypercube),
    /// Dimension-ordered digit correction on a k-ary n-cube.
    KAry(KAryNCube),
    /// Synthesized certified routing on an arbitrary graph.
    Custom(CertifiedRouting),
}

impl UnicastRouting {
    /// Builds the certified routing for a custom graph (fails exactly
    /// when up*/down* synthesis does — a cyclic CDG witness).
    pub fn custom(graph: &Arc<CustomGraph>) -> Result<UnicastRouting, TopographError> {
        Ok(UnicastRouting::Custom(synthesize(graph)?))
    }

    /// The base-routing path from `s` to `t` (inclusive; `[s]` when
    /// `s == t`).
    pub fn path(&self, s: NodeId, t: NodeId) -> Vec<NodeId> {
        match self {
            UnicastRouting::Mesh2D(m) => m.shortest_path(s, t),
            UnicastRouting::Mesh3D(m) => m.shortest_path(s, t),
            UnicastRouting::Hypercube(c) => c.shortest_path(s, t),
            UnicastRouting::KAry(c) => kary_dim_order_path(c, s, t),
            UnicastRouting::Custom(r) => r.path(s, t),
        }
    }
}

/// Dimension-ordered digit correction on a k-ary n-cube: correct digit
/// 0 first, then digit 1, and so on. On tori each digit takes the
/// shorter wrap direction (ties toward `+1`); on non-wrapped cubes the
/// direction is the sign of the digit difference. Within one dimension
/// every hop moves the same way, so the channel-dependence graph is
/// acyclic on meshes (monotone per dimension, dimensions ordered) and
/// cyclic only through torus wrap rings.
fn kary_dim_order_path(c: &KAryNCube, s: NodeId, t: NodeId) -> Vec<NodeId> {
    let k = c.k() as isize;
    let mut nodes = vec![s];
    let mut cur = s;
    for d in 0..c.n() {
        let cd = c.digit(cur, d) as isize;
        let td = c.digit(t, d) as isize;
        if cd == td {
            continue;
        }
        let delta = if c.wraps() {
            let fwd = (td - cd).rem_euclid(k);
            let bwd = (cd - td).rem_euclid(k);
            if fwd <= bwd {
                1
            } else {
                -1
            }
        } else if td > cd {
            1
        } else {
            -1
        };
        while c.digit(cur, d) != c.digit(t, d) {
            cur = c
                .step(cur, d, delta)
                .expect("digit correction steps stay inside the cube");
            nodes.push(cur);
        }
    }
    nodes
}

/// Destination-partitioning-with-merge multicast (DPM).
///
/// Planning: route every destination's base unicast path, order the
/// partitions by `(path length desc, destination asc)`, then greedily
/// keep the longest partition still uncovered and absorb every
/// destination lying *on* its path. Each kept partition becomes one
/// path worm. The merge only ever deletes worms — it never reroutes —
/// so the plan's channel set stays inside the base routing's and the
/// deadlock-freedom claim is inherited from it.
pub struct DpmRouter {
    unicast: UnicastRouting,
}

impl DpmRouter {
    /// A DPM router over the given base unicast routing.
    pub fn new(unicast: UnicastRouting) -> DpmRouter {
        DpmRouter { unicast }
    }

    /// The merged partition paths for a multicast (exposed for CDG
    /// certification and tests; `plan` wraps these in worms).
    pub fn partitions(&self, mc: &MulticastSet) -> Vec<Vec<NodeId>> {
        let mut routed: Vec<(Vec<NodeId>, NodeId)> = mc
            .destinations
            .iter()
            .map(|&d| (self.unicast.path(mc.source, d), d))
            .collect();
        routed.sort_by(|a, b| b.0.len().cmp(&a.0.len()).then(a.1.cmp(&b.1)));
        let mut covered: HashSet<NodeId> = HashSet::new();
        let mut kept = Vec::new();
        for (path, dest) in routed {
            if covered.contains(&dest) || path.len() < 2 {
                continue;
            }
            covered.extend(path.iter().copied());
            kept.push(path);
        }
        kept
    }
}

impl MulticastRouter for DpmRouter {
    fn name(&self) -> &'static str {
        "dpm"
    }

    fn plan(&self, mc: &MulticastSet) -> DeliveryPlan {
        DeliveryPlan {
            source: mc.source,
            destinations: mc.destinations.clone(),
            worms: self
                .partitions(mc)
                .into_iter()
                .map(|nodes| {
                    PlanWorm::Path(PlanPath {
                        nodes,
                        class: ClassChoice::Any,
                    })
                })
                .collect(),
        }
    }
}

/// Which collective schedule a [`CollectiveRouter`] emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectiveKind {
    /// Binomial broadcast tree: in round `r`, every rank `< 2^r` that
    /// holds the message sends to rank `+2^r`.
    Binomial,
    /// Recursive doubling (halving distances): round `r` sends over
    /// stride `2^(m-1-r)` where `m = ⌈log₂ n⌉`.
    RecursiveDoubling,
    /// Binomial schedule with per-round completion tracking: a round-`r`
    /// send waits for *every* round-`r-1` send, not just its own feeder.
    BinomialReliable,
}

impl CollectiveKind {
    fn name(self) -> &'static str {
        match self {
            CollectiveKind::Binomial => "binomial",
            CollectiveKind::RecursiveDoubling => "recursive-doubling",
            CollectiveKind::BinomialReliable => "binomial-reliable",
        }
    }
}

/// One send of a collective schedule (ranks index the rank list).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectiveSend {
    /// Sending rank.
    pub from: usize,
    /// Receiving rank.
    pub to: usize,
    /// Round index (0-based).
    pub round: usize,
}

/// The binomial-tree schedule over `n` ranks, round-major with
/// ascending senders inside each round. Every rank `1..n` receives
/// exactly once, within `⌈log₂ n⌉` rounds.
pub fn binomial_schedule(n: usize) -> Vec<CollectiveSend> {
    let mut sends = Vec::new();
    let mut gap = 1;
    let mut round = 0;
    while gap < n {
        for i in 0..gap.min(n - gap) {
            sends.push(CollectiveSend {
                from: i,
                to: i + gap,
                round,
            });
        }
        gap *= 2;
        round += 1;
    }
    sends
}

/// The recursive-doubling schedule over `n` ranks: strides halve from
/// `2^(m-1)` down to 1, round-major with ascending senders. Same
/// `⌈log₂ n⌉` round count as binomial but a different send pattern
/// whenever `n` is not a power of two.
pub fn recursive_doubling_schedule(n: usize) -> Vec<CollectiveSend> {
    let mut sends = Vec::new();
    let m = ceil_log2(n);
    for round in 0..m {
        let stride = 1usize << (m - 1 - round);
        let mut i = 0;
        while i + stride < n {
            sends.push(CollectiveSend {
                from: i,
                to: i + stride,
                round,
            });
            i += 2 * stride;
        }
    }
    sends
}

/// `⌈log₂ n⌉` (0 for `n <= 1`) — the round bound of both schedules.
pub fn ceil_log2(n: usize) -> usize {
    if n <= 1 {
        0
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as usize
    }
}

/// Software-collective multicast: the schedule's sends become unicast
/// worms, staged on their intra-plan feeders (see module docs).
pub struct CollectiveRouter {
    unicast: UnicastRouting,
    kind: CollectiveKind,
}

impl CollectiveRouter {
    /// A collective router of the given kind over the base routing.
    pub fn new(unicast: UnicastRouting, kind: CollectiveKind) -> CollectiveRouter {
        CollectiveRouter { unicast, kind }
    }

    /// The rank list for a multicast: source first, then the
    /// destinations sorted and deduplicated (source excluded).
    pub fn ranks(mc: &MulticastSet) -> Vec<NodeId> {
        let mut ranks = vec![mc.source];
        let mut dests: Vec<NodeId> = mc
            .destinations
            .iter()
            .copied()
            .filter(|&d| d != mc.source)
            .collect();
        dests.sort_unstable();
        dests.dedup();
        ranks.extend(dests);
        ranks
    }

    /// The schedule this router runs over `n` ranks.
    pub fn schedule(&self, n: usize) -> Vec<CollectiveSend> {
        match self.kind {
            CollectiveKind::Binomial | CollectiveKind::BinomialReliable => binomial_schedule(n),
            CollectiveKind::RecursiveDoubling => recursive_doubling_schedule(n),
        }
    }
}

impl MulticastRouter for CollectiveRouter {
    fn name(&self) -> &'static str {
        self.kind.name()
    }

    fn plan(&self, mc: &MulticastSet) -> DeliveryPlan {
        let ranks = Self::ranks(mc);
        let sends = self.schedule(ranks.len());
        let reliable = self.kind == CollectiveKind::BinomialReliable;
        // For each rank: the worm that delivered its copy and its own
        // latest send (the single-port model — one outstanding send per
        // node). Round-major emission makes every dependency point
        // strictly backwards, as `PlanWorm::Staged` requires.
        let mut recv_worm: Vec<Option<u32>> = vec![None; ranks.len()];
        let mut last_send: Vec<Option<u32>> = vec![None; ranks.len()];
        let mut round_worms: Vec<Vec<u32>> = Vec::new();
        let mut worms = Vec::with_capacity(sends.len());
        for s in sends {
            let widx = worms.len() as u32;
            let mut after: Vec<u32> = Vec::new();
            if reliable {
                if s.round > 0 {
                    after.extend(&round_worms[s.round - 1]);
                }
            } else {
                after.extend(recv_worm[s.from]);
                after.extend(last_send[s.from]);
                after.sort_unstable();
                after.dedup();
            }
            let path = PlanPath {
                nodes: self.unicast.path(ranks[s.from], ranks[s.to]),
                class: ClassChoice::Any,
            };
            worms.push(if after.is_empty() {
                PlanWorm::Path(path)
            } else {
                PlanWorm::Staged(PlanStage { after, path })
            });
            recv_worm[s.to] = Some(widx);
            last_send[s.from] = Some(widx);
            while round_worms.len() <= s.round {
                round_worms.push(Vec::new());
            }
            round_worms[s.round].push(widx);
        }
        DeliveryPlan {
            source: mc.source,
            destinations: mc.destinations.clone(),
            worms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn receivers(sends: &[CollectiveSend]) -> Vec<usize> {
        sends.iter().map(|s| s.to).collect()
    }

    #[test]
    fn binomial_delivers_each_rank_once_in_log_rounds() {
        for n in 1..40 {
            let sends = binomial_schedule(n);
            let mut got = receivers(&sends);
            got.sort_unstable();
            assert_eq!(got, (1..n).collect::<Vec<_>>(), "n={n}");
            let rounds = sends.iter().map(|s| s.round + 1).max().unwrap_or(0);
            assert_eq!(rounds, ceil_log2(n), "n={n}");
            // Every sender already holds the message when it sends.
            let mut have = vec![false; n.max(1)];
            have[0] = true;
            for s in &sends {
                assert!(have[s.from], "n={n}: rank {} sent without data", s.from);
                have[s.to] = true;
            }
        }
    }

    #[test]
    fn recursive_doubling_delivers_each_rank_once_in_log_rounds() {
        for n in 1..40 {
            let sends = recursive_doubling_schedule(n);
            let mut got = receivers(&sends);
            got.sort_unstable();
            assert_eq!(got, (1..n).collect::<Vec<_>>(), "n={n}");
            let rounds = sends.iter().map(|s| s.round + 1).max().unwrap_or(0);
            assert_eq!(rounds, ceil_log2(n), "n={n}");
            let mut have = vec![false; n.max(1)];
            have[0] = true;
            for s in &sends {
                assert!(have[s.from], "n={n}: rank {} sent without data", s.from);
                have[s.to] = true;
            }
        }
    }

    #[test]
    fn schedules_differ_off_powers_of_two() {
        // At powers of two the two schedules coincide (up to round
        // relabeling); off them the send sets differ — the two schemes
        // are genuinely distinct competitors.
        let b: HashSet<(usize, usize)> = binomial_schedule(6)
            .iter()
            .map(|s| (s.from, s.to))
            .collect();
        let r: HashSet<(usize, usize)> = recursive_doubling_schedule(6)
            .iter()
            .map(|s| (s.from, s.to))
            .collect();
        assert_ne!(b, r);
    }

    #[test]
    fn kary_digit_correction_is_dimension_ordered_and_minimal_on_torus() {
        use mcast_topology::Topology;
        let c = KAryNCube::torus(5, 2);
        for s in 0..c.num_nodes() {
            for t in 0..c.num_nodes() {
                let p = kary_dim_order_path(&c, s, t);
                assert_eq!(*p.first().unwrap(), s);
                assert_eq!(*p.last().unwrap(), t);
                // Minimal: each digit moves by the shorter ring arc.
                let mut want = 1;
                for d in 0..c.n() {
                    let diff = (c.digit(t, d) as isize - c.digit(s, d) as isize).rem_euclid(5);
                    want += diff.min(5 - diff) as usize;
                }
                assert_eq!(p.len(), want, "{s}->{t}");
                // Dimension-ordered: digit d is settled before d+1 moves.
                let mut max_moved = 0;
                for w in p.windows(2) {
                    let d = (0..c.n())
                        .find(|&d| c.digit(w[0], d) != c.digit(w[1], d))
                        .unwrap();
                    assert!(d as usize >= max_moved, "{s}->{t}: {p:?}");
                    max_moved = d as usize;
                }
            }
        }
    }

    #[test]
    fn dpm_absorbs_destinations_on_kept_paths() {
        // mesh:4x4, XY routing: 0 -> 3 passes through 1 and 2, so the
        // three destinations merge into one partition.
        let m = Mesh2D::new(4, 4);
        let router = DpmRouter::new(UnicastRouting::Mesh2D(m));
        let mc = MulticastSet::new(0, [1, 2, 3]);
        let parts = router.partitions(&mc);
        assert_eq!(parts, vec![vec![0, 1, 2, 3]]);
        // A destination off every other path keeps its own partition.
        let mc = MulticastSet::new(0, [3, 4]);
        let parts = router.partitions(&mc);
        assert_eq!(parts.len(), 2);
    }

    #[test]
    fn collective_plan_covers_destinations_and_stages_backwards() {
        let m = Mesh2D::new(4, 4);
        for kind in [
            CollectiveKind::Binomial,
            CollectiveKind::RecursiveDoubling,
            CollectiveKind::BinomialReliable,
        ] {
            let router = CollectiveRouter::new(UnicastRouting::Mesh2D(m), kind);
            let mc = MulticastSet::new(5, [0, 3, 9, 12, 15]);
            let plan = router.plan(&mc);
            assert_eq!(plan.worms.len(), 5, "{kind:?}: one send per receiver");
            let mut delivered: HashSet<NodeId> = HashSet::new();
            for (i, w) in plan.worms.iter().enumerate() {
                let (after, path): (&[u32], &PlanPath) = match w {
                    PlanWorm::Path(p) => (&[], p),
                    PlanWorm::Staged(s) => (&s.after, &s.path),
                    other => panic!("unexpected worm {other:?}"),
                };
                assert!(after.iter().all(|&a| (a as usize) < i), "{kind:?}");
                delivered.insert(*path.nodes.last().unwrap());
            }
            for d in &mc.destinations {
                assert!(delivered.contains(d), "{kind:?}: {d} undelivered");
            }
        }
    }
}
