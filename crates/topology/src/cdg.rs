//! Channel dependency graphs (§2.3.4, Dally & Seitz [44]).
//!
//! For a network `I` and routing function `R`, the CDG has a vertex per
//! channel and an edge `(c_i, c_j)` whenever a message that entered on
//! `c_i` may be forwarded onto `c_j`. A routing algorithm is deadlock-free
//! iff its CDG is acyclic; this module builds CDGs and checks acyclicity,
//! and is used throughout the test suite to *verify* the deadlock-freedom
//! assertions of Chapter 6 and to *exhibit* the cycles in the broken
//! schemes of §6.1.

use std::collections::HashMap;

use crate::fault::FaultMask;
use crate::graph::{Channel, NodeId, Topology};
use crate::labeling::Labeling;

/// A channel dependency graph over an explicit channel set.
#[derive(Debug, Clone)]
pub struct ChannelDependencyGraph {
    channels: Vec<Channel>,
    index: HashMap<Channel, usize>,
    /// Adjacency: `adj[i]` lists channel indices that depend on channel `i`
    /// (i.e. edges `c_i → c_j`).
    adj: Vec<Vec<usize>>,
}

impl ChannelDependencyGraph {
    /// Creates an empty CDG over the given channel set.
    pub fn new(channels: Vec<Channel>) -> Self {
        let index = channels
            .iter()
            .copied()
            .enumerate()
            .map(|(i, c)| (c, i))
            .collect();
        let adj = vec![Vec::new(); channels.len()];
        ChannelDependencyGraph {
            channels,
            index,
            adj,
        }
    }

    /// Number of channel vertices.
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// The channel set.
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// The index of a channel, if it is part of this CDG.
    pub fn channel_index(&self, c: Channel) -> Option<usize> {
        self.index.get(&c).copied()
    }

    /// Adds the dependency edge `from → to`.
    ///
    /// # Panics
    /// Panics if either channel is not in the CDG's channel set.
    pub fn add_dependency(&mut self, from: Channel, to: Channel) {
        let i = self.index[&from];
        let j = self.index[&to];
        if !self.adj[i].contains(&j) {
            self.adj[i].push(j);
        }
    }

    /// Number of dependency edges.
    pub fn num_dependencies(&self) -> usize {
        self.adj.iter().map(|v| v.len()).sum()
    }

    /// Whether the CDG contains a cycle. Returns one witness cycle (as a
    /// channel sequence, first channel repeated at the end) if so.
    pub fn find_cycle(&self) -> Option<Vec<Channel>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let n = self.channels.len();
        let mut color = vec![Color::White; n];
        let mut parent = vec![usize::MAX; n];
        for start in 0..n {
            if color[start] != Color::White {
                continue;
            }
            // Iterative DFS keeping an explicit stack of (node, next-edge).
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            color[start] = Color::Gray;
            while let Some(&(u, next)) = stack.last() {
                if next < self.adj[u].len() {
                    stack.last_mut().expect("stack nonempty").1 += 1;
                    let v = self.adj[u][next];
                    match color[v] {
                        Color::White => {
                            color[v] = Color::Gray;
                            parent[v] = u;
                            stack.push((v, 0));
                        }
                        Color::Gray => {
                            // Found a back edge u → v: reconstruct cycle.
                            let mut cyc = vec![self.channels[v]];
                            let mut cur = u;
                            while cur != v {
                                cyc.push(self.channels[cur]);
                                cur = parent[cur];
                            }
                            cyc.push(self.channels[v]);
                            // Built v, u, parent(u), …, v — reverse to get
                            // forward edge order v → … → u → v.
                            cyc.reverse();
                            return Some(cyc);
                        }
                        Color::Black => {}
                    }
                } else {
                    color[u] = Color::Black;
                    stack.pop();
                }
            }
        }
        None
    }

    /// Whether the CDG is acyclic (the Dally–Seitz deadlock-freedom
    /// criterion).
    pub fn is_acyclic(&self) -> bool {
        self.find_cycle().is_none()
    }

    /// The CDG restricted to channels for which `alive` holds: dead
    /// channels are dropped as vertices, along with every dependency
    /// touching them. Used to revalidate deadlock-freedom after faults —
    /// removing vertices can only remove cycles, but the *interesting*
    /// question is whether the surviving channels still carry an acyclic
    /// dependency relation for the (rerouted) traffic, which callers
    /// check by rebuilding with [`cdg_from_routing`] or by masking a
    /// hand-built CDG here.
    pub fn masked<F: Fn(Channel) -> bool>(&self, alive: F) -> ChannelDependencyGraph {
        let keep: Vec<usize> = (0..self.channels.len())
            .filter(|&i| alive(self.channels[i]))
            .collect();
        let mut renumber = vec![usize::MAX; self.channels.len()];
        for (new, &old) in keep.iter().enumerate() {
            renumber[old] = new;
        }
        let channels: Vec<Channel> = keep.iter().map(|&i| self.channels[i]).collect();
        let mut out = ChannelDependencyGraph::new(channels);
        for &old_from in &keep {
            for &old_to in &self.adj[old_from] {
                if renumber[old_to] != usize::MAX {
                    out.adj[renumber[old_from]].push(renumber[old_to]);
                }
            }
        }
        out
    }

    /// A topological order of the channels, if the CDG is acyclic.
    pub fn topological_order(&self) -> Option<Vec<Channel>> {
        let n = self.channels.len();
        let mut indeg = vec![0usize; n];
        for edges in &self.adj {
            for &j in edges {
                indeg[j] += 1;
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = queue.pop() {
            order.push(self.channels[i]);
            for &j in &self.adj[i] {
                indeg[j] -= 1;
                if indeg[j] == 0 {
                    queue.push(j);
                }
            }
        }
        (order.len() == n).then_some(order)
    }
}

/// Builds the CDG of a *unicast* routing function over an arbitrary channel
/// set: `next(current_node, incoming, dest)` returns the outgoing channel a
/// message bound for `dest` takes from `current_node` after having arrived
/// on `incoming` (`None` at the source). Dependencies are enumerated over
/// every (channel, destination) pair, which is exact for the deterministic
/// routing functions of this crate.
pub fn cdg_from_routing<F>(
    channels: Vec<Channel>,
    num_nodes: usize,
    next: F,
) -> ChannelDependencyGraph
where
    F: Fn(NodeId, Option<Channel>, NodeId) -> Option<Channel>,
{
    let mut cdg = ChannelDependencyGraph::new(channels.clone());
    for &c in &channels {
        for dest in 0..num_nodes {
            if dest == c.to {
                continue;
            }
            if let Some(c2) = next(c.to, Some(c), dest) {
                if cdg.channel_index(c2).is_some() {
                    cdg.add_dependency(c, c2);
                }
            }
        }
    }
    cdg
}

/// Post-fault health report for the high/low-channel subnetworks of a
/// Hamiltonian labeling (§6.2.2's deadlock-freedom structure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SurvivorReport {
    /// Whether the surviving high-channel subnetwork's label-order CDG is
    /// acyclic (it always is — monotone labels admit no cycle — so a
    /// `false` here would indicate a corrupted labeling).
    pub high_acyclic: bool,
    /// Whether the surviving low-channel subnetwork's CDG is acyclic.
    pub low_acyclic: bool,
    /// Surviving channels in the high subnetwork.
    pub high_channels: usize,
    /// Surviving channels in the low subnetwork.
    pub low_channels: usize,
    /// Total surviving channels (= `high_channels + low_channels`).
    pub surviving_channels: usize,
    /// Whether the surviving network is still connected (ignoring
    /// direction), i.e. whether rerouting can reach every live node.
    pub connected: bool,
}

impl SurvivorReport {
    /// Whether label-monotone routing on the survivors is still provably
    /// deadlock-free by the Dally–Seitz criterion.
    pub fn deadlock_free(&self) -> bool {
        self.high_acyclic && self.low_acyclic
    }
}

/// Revalidates the high/low-channel subnetworks of `labeling` on the
/// survivors of `mask`: builds the label-order dependency relation
/// (channel `a→b` depends on `b→c` when a monotone route may chain them)
/// restricted to surviving channels and checks acyclicity per subnetwork.
pub fn survivor_report<T: Topology + ?Sized>(
    topo: &T,
    labeling: &Labeling,
    mask: &FaultMask,
) -> SurvivorReport {
    let build = |want_high: bool| -> ChannelDependencyGraph {
        let channels: Vec<Channel> = topo
            .channels()
            .into_iter()
            .filter(|&c| labeling.is_high(c) == want_high && mask.is_channel_alive(c))
            .collect();
        let mut cdg = ChannelDependencyGraph::new(channels.clone());
        for &a in &channels {
            for &b in &channels {
                if a.to == b.from && a != b {
                    // Monotone routing may forward from a onto b: in the
                    // high network labels keep ascending, in the low
                    // network descending, so the chain condition is just
                    // head-to-tail adjacency within the subnetwork.
                    cdg.add_dependency(a, b);
                }
            }
        }
        cdg
    };
    let high = build(true);
    let low = build(false);
    SurvivorReport {
        high_acyclic: high.is_acyclic(),
        low_acyclic: low.is_acyclic(),
        high_channels: high.num_channels(),
        low_channels: low.num_channels(),
        surviving_channels: high.num_channels() + low.num_channels(),
        connected: mask.keeps_connected(topo),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Topology;
    use crate::labeling::mesh2d_snake;
    use crate::mesh2d::{Dir2, Mesh2D};

    /// XY (X-first) unicast routing as a channel-to-channel routing
    /// relation: horizontal moves first, then vertical. A message that
    /// arrived on a vertical channel never needs a horizontal move, so
    /// such (incoming, dest) pairs are outside the relation's domain
    /// (`None`) — exactly the restriction that makes the Fig 2.5 CDG
    /// acyclic.
    fn xy_next(
        mesh: &Mesh2D,
        at: NodeId,
        incoming: Option<Channel>,
        dest: NodeId,
    ) -> Option<Channel> {
        let (x, y) = mesh.coords(at);
        let (dx, dy) = mesh.coords(dest);
        let dir = if dx > x {
            Dir2::PosX
        } else if dx < x {
            Dir2::NegX
        } else if dy > y {
            Dir2::PosY
        } else if dy < y {
            Dir2::NegY
        } else {
            return None;
        };
        if let Some(c) = incoming {
            let in_dir = mesh.channel_direction(c);
            let in_vertical = matches!(in_dir, Dir2::PosY | Dir2::NegY);
            let out_horizontal = matches!(dir, Dir2::PosX | Dir2::NegX);
            let reversal = matches!(
                (in_dir, dir),
                (Dir2::PosX, Dir2::NegX)
                    | (Dir2::NegX, Dir2::PosX)
                    | (Dir2::PosY, Dir2::NegY)
                    | (Dir2::NegY, Dir2::PosY)
            );
            if (in_vertical && out_horizontal) || reversal {
                // Unreachable message states under minimal X-first routing:
                // a message on a vertical channel never turns back to X,
                // and a minimal route never makes a 180° turn.
                return None;
            }
        }
        Some(Channel::new(at, mesh.step(at, dir).unwrap()))
    }

    #[test]
    fn xy_routing_cdg_is_acyclic() {
        // Fig 2.5: X-first routing has an acyclic CDG.
        let m = Mesh2D::new(4, 4);
        let cdg = cdg_from_routing(m.channels(), m.num_nodes(), |at, inc, dest| {
            xy_next(&m, at, inc, dest)
        });
        assert!(cdg.is_acyclic());
        assert!(cdg.topological_order().is_some());
    }

    #[test]
    fn yx_then_xy_mixture_has_cycle() {
        // A routing function that goes Y-first for some destinations and
        // X-first for others creates the classic turn cycle (Fig 2.4).
        let m = Mesh2D::new(3, 3);
        let next = |at: NodeId, _inc: Option<Channel>, dest: NodeId| -> Option<Channel> {
            let (x, y) = m.coords(at);
            let (dx, dy) = m.coords(dest);
            // Destinations in the top half route Y-first, others X-first:
            // together all four turn types occur, so a cycle exists.
            let yfirst = dy >= 2;
            let dir = if yfirst {
                if dy > y {
                    Some(Dir2::PosY)
                } else if dy < y {
                    Some(Dir2::NegY)
                } else if dx > x {
                    Some(Dir2::PosX)
                } else if dx < x {
                    Some(Dir2::NegX)
                } else {
                    None
                }
            } else if dx > x {
                Some(Dir2::PosX)
            } else if dx < x {
                Some(Dir2::NegX)
            } else if dy > y {
                Some(Dir2::PosY)
            } else if dy < y {
                Some(Dir2::NegY)
            } else {
                None
            }?;
            Some(Channel::new(at, m.step(at, dir)?))
        };
        let cdg = cdg_from_routing(m.channels(), m.num_nodes(), next);
        let cyc = cdg
            .find_cycle()
            .expect("mixed XY/YX routing must have a dependency cycle");
        // Witness cycle is closed and consists of consecutive channels.
        assert_eq!(cyc.first(), cyc.last());
        for w in cyc.windows(2) {
            assert_eq!(w[0].to, w[1].from, "cycle edges must chain head-to-tail");
        }
    }

    #[test]
    fn empty_and_single_edge_graphs() {
        let mut cdg = ChannelDependencyGraph::new(vec![Channel::new(0, 1), Channel::new(1, 2)]);
        assert!(cdg.is_acyclic());
        cdg.add_dependency(Channel::new(0, 1), Channel::new(1, 2));
        assert!(cdg.is_acyclic());
        assert_eq!(cdg.num_dependencies(), 1);
        let order = cdg.topological_order().unwrap();
        assert_eq!(order.len(), 2);
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut cdg = ChannelDependencyGraph::new(vec![Channel::new(0, 1)]);
        cdg.add_dependency(Channel::new(0, 1), Channel::new(0, 1));
        let cyc = cdg.find_cycle().unwrap();
        assert_eq!(cyc, vec![Channel::new(0, 1), Channel::new(0, 1)]);
        assert!(cdg.topological_order().is_none());
    }

    #[test]
    fn masked_cdg_drops_dead_vertices_and_their_edges() {
        let a = Channel::new(0, 1);
        let b = Channel::new(1, 2);
        let c = Channel::new(2, 0);
        let mut cdg = ChannelDependencyGraph::new(vec![a, b, c]);
        cdg.add_dependency(a, b);
        cdg.add_dependency(b, c);
        cdg.add_dependency(c, a);
        assert!(!cdg.is_acyclic());
        // Killing any one channel of the 3-cycle restores acyclicity.
        let masked = cdg.masked(|ch| ch != b);
        assert_eq!(masked.num_channels(), 2);
        assert_eq!(masked.num_dependencies(), 1);
        assert!(masked.is_acyclic());
    }

    #[test]
    fn survivor_report_on_healthy_mesh() {
        let m = Mesh2D::new(4, 3);
        let l = mesh2d_snake(&m);
        let report = survivor_report(&m, &l, &crate::fault::FaultMask::none());
        assert!(report.deadlock_free());
        assert!(report.connected);
        assert_eq!(report.surviving_channels, m.num_channels());
        // The two subnetworks are mirror images (§6.2.2).
        assert_eq!(report.high_channels, report.low_channels);
    }

    #[test]
    fn survivor_report_counts_losses_and_disconnection() {
        let m = Mesh2D::new(3, 3);
        let l = mesh2d_snake(&m);
        let mut mask = crate::fault::FaultMask::none();
        mask.fail_link(0, 1);
        mask.fail_link(0, 3);
        let report = survivor_report(&m, &l, &mask);
        // Each dead link removes one high and one low channel.
        assert_eq!(report.high_channels, m.num_channels() / 2 - 2);
        assert_eq!(report.low_channels, m.num_channels() / 2 - 2);
        assert!(report.deadlock_free(), "monotone survivors stay acyclic");
        assert!(!report.connected, "corner 0 is isolated");
    }

    #[test]
    fn two_cycle_detected() {
        let a = Channel::new(0, 1);
        let b = Channel::new(1, 0);
        let mut cdg = ChannelDependencyGraph::new(vec![a, b]);
        cdg.add_dependency(a, b);
        cdg.add_dependency(b, a);
        assert!(!cdg.is_acyclic());
    }
}
