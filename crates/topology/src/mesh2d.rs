//! The 2D mesh (non-wraparound rectangular grid) topology of §2.1.2 and
//! Definition 4.1, as adopted by the Ametek 2010 / Symult and Intel
//! Touchstone machines.
//!
//! Nodes are addressed by integer coordinates `(x, y)` with
//! `0 <= x < width`, `0 <= y < height`, flattened to dense ids
//! `id = y * width + x`.

use crate::graph::{Channel, NodeId, Topology};

/// Axis-aligned unit direction in a 2D mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir2 {
    /// Increasing x.
    PosX,
    /// Decreasing x.
    NegX,
    /// Increasing y.
    PosY,
    /// Decreasing y.
    NegY,
}

impl Dir2 {
    /// All four directions in the canonical order used throughout.
    pub const ALL: [Dir2; 4] = [Dir2::PosX, Dir2::NegX, Dir2::PosY, Dir2::NegY];

    /// Coordinate delta of the direction.
    pub const fn delta(self) -> (isize, isize) {
        match self {
            Dir2::PosX => (1, 0),
            Dir2::NegX => (-1, 0),
            Dir2::PosY => (0, 1),
            Dir2::NegY => (0, -1),
        }
    }
}

/// A `width × height` 2D mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mesh2D {
    width: usize,
    height: usize,
}

impl Mesh2D {
    /// Creates a `width × height` mesh.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be positive");
        Mesh2D { width, height }
    }

    /// Width (extent of the x dimension).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height (extent of the y dimension).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Flattens a coordinate to a node id.
    ///
    /// # Panics
    /// Panics (debug) if the coordinate is out of bounds.
    pub fn node(&self, x: usize, y: usize) -> NodeId {
        debug_assert!(x < self.width && y < self.height, "({x},{y}) out of bounds");
        y * self.width + x
    }

    /// Recovers the `(x, y)` coordinate of a node id.
    pub fn coords(&self, n: NodeId) -> (usize, usize) {
        debug_assert!(n < self.num_nodes());
        (n % self.width, n / self.width)
    }

    /// The neighbor of `n` in direction `d`, if it exists (mesh edges have
    /// no wraparound).
    pub fn step(&self, n: NodeId, d: Dir2) -> Option<NodeId> {
        let (x, y) = self.coords(n);
        let (dx, dy) = d.delta();
        let nx = x as isize + dx;
        let ny = y as isize + dy;
        if nx < 0 || ny < 0 || nx as usize >= self.width || ny as usize >= self.height {
            None
        } else {
            Some(self.node(nx as usize, ny as usize))
        }
    }

    /// The direction of the link from `a` to adjacent node `b`.
    ///
    /// # Panics
    /// Panics if `a` and `b` are not adjacent.
    pub fn direction(&self, a: NodeId, b: NodeId) -> Dir2 {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        match (bx as isize - ax as isize, by as isize - ay as isize) {
            (1, 0) => Dir2::PosX,
            (-1, 0) => Dir2::NegX,
            (0, 1) => Dir2::PosY,
            (0, -1) => Dir2::NegY,
            _ => panic!("nodes {a} and {b} are not adjacent"),
        }
    }

    /// The direction a channel points in.
    pub fn channel_direction(&self, c: Channel) -> Dir2 {
        self.direction(c.from, c.to)
    }
}

impl Topology for Mesh2D {
    fn num_nodes(&self) -> usize {
        self.width * self.height
    }

    /// Neighbors in the canonical order `+X, -X, +Y, -Y` (existing ones
    /// only).
    fn neighbors_into(&self, n: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        for d in Dir2::ALL {
            if let Some(m) = self.step(n, d) {
                out.push(m);
            }
        }
    }

    fn adjacent(&self, a: NodeId, b: NodeId) -> bool {
        self.distance(a, b) == 1
    }

    fn distance(&self, a: NodeId, b: NodeId) -> usize {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        ax.abs_diff(bx) + ay.abs_diff(by)
    }

    fn diameter(&self) -> usize {
        self.width - 1 + self.height - 1
    }

    fn describe(&self) -> String {
        format!("{}x{} mesh", self.width, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::bfs_distance;

    #[test]
    fn node_coord_roundtrip() {
        let m = Mesh2D::new(6, 4);
        for y in 0..4 {
            for x in 0..6 {
                let n = m.node(x, y);
                assert_eq!(m.coords(n), (x, y));
            }
        }
    }

    #[test]
    fn corner_and_interior_degrees() {
        let m = Mesh2D::new(4, 3);
        assert_eq!(m.degree(m.node(0, 0)), 2);
        assert_eq!(m.degree(m.node(1, 0)), 3);
        assert_eq!(m.degree(m.node(1, 1)), 4);
        assert_eq!(m.degree(m.node(3, 2)), 2);
    }

    #[test]
    fn closed_form_distance_matches_bfs() {
        let m = Mesh2D::new(5, 4);
        for a in 0..m.num_nodes() {
            for b in 0..m.num_nodes() {
                assert_eq!(m.distance(a, b), bfs_distance(&m, a, b).unwrap());
            }
        }
    }

    #[test]
    fn channel_count_is_internal_links_doubled() {
        // A w×h mesh has h(w-1) horizontal + w(h-1) vertical links, each
        // giving two directed channels.
        let m = Mesh2D::new(7, 5);
        let expected = 2 * (5 * 6 + 7 * 4);
        assert_eq!(m.num_channels(), expected);
        assert_eq!(m.channels().len(), expected);
    }

    #[test]
    fn direction_of_every_channel_is_consistent() {
        let m = Mesh2D::new(4, 4);
        for c in m.channels() {
            let d = m.channel_direction(c);
            assert_eq!(m.step(c.from, d), Some(c.to));
        }
    }

    #[test]
    fn diameter_is_corner_to_corner() {
        let m = Mesh2D::new(8, 8);
        assert_eq!(m.diameter(), 14);
        assert_eq!(m.distance(m.node(0, 0), m.node(7, 7)), 14);
    }

    #[test]
    #[should_panic]
    fn zero_dimension_rejected() {
        let _ = Mesh2D::new(0, 3);
    }
}
