//! The 3D mesh topology of §2.1.3 and §4.3, as adopted by the MIT J-machine
//! and Caltech MOSAIC.
//!
//! Nodes are addressed by integer coordinates `(x, y, z)` flattened to
//! `id = (z * height + y) * width + x`.

use crate::graph::{NodeId, Topology};

/// Axis-aligned unit direction in a 3D mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir3 {
    /// Increasing x.
    PosX,
    /// Decreasing x.
    NegX,
    /// Increasing y.
    PosY,
    /// Decreasing y.
    NegY,
    /// Increasing z.
    PosZ,
    /// Decreasing z.
    NegZ,
}

impl Dir3 {
    /// All six directions in the canonical order used throughout.
    pub const ALL: [Dir3; 6] = [
        Dir3::PosX,
        Dir3::NegX,
        Dir3::PosY,
        Dir3::NegY,
        Dir3::PosZ,
        Dir3::NegZ,
    ];

    /// Coordinate delta of the direction.
    pub const fn delta(self) -> (isize, isize, isize) {
        match self {
            Dir3::PosX => (1, 0, 0),
            Dir3::NegX => (-1, 0, 0),
            Dir3::PosY => (0, 1, 0),
            Dir3::NegY => (0, -1, 0),
            Dir3::PosZ => (0, 0, 1),
            Dir3::NegZ => (0, 0, -1),
        }
    }
}

/// A `width × height × depth` 3D mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mesh3D {
    width: usize,
    height: usize,
    depth: usize,
}

impl Mesh3D {
    /// Creates a `width × height × depth` mesh.
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn new(width: usize, height: usize, depth: usize) -> Self {
        assert!(
            width > 0 && height > 0 && depth > 0,
            "mesh dimensions must be positive"
        );
        Mesh3D {
            width,
            height,
            depth,
        }
    }

    /// Width (x extent).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height (y extent).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Depth (z extent).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Flattens a coordinate to a node id.
    pub fn node(&self, x: usize, y: usize, z: usize) -> NodeId {
        debug_assert!(x < self.width && y < self.height && z < self.depth);
        (z * self.height + y) * self.width + x
    }

    /// Recovers the `(x, y, z)` coordinate of a node id.
    pub fn coords(&self, n: NodeId) -> (usize, usize, usize) {
        debug_assert!(n < self.num_nodes());
        let x = n % self.width;
        let rest = n / self.width;
        (x, rest % self.height, rest / self.height)
    }

    /// The neighbor of `n` in direction `d`, if it exists.
    pub fn step(&self, n: NodeId, d: Dir3) -> Option<NodeId> {
        let (x, y, z) = self.coords(n);
        let (dx, dy, dz) = d.delta();
        let nx = x as isize + dx;
        let ny = y as isize + dy;
        let nz = z as isize + dz;
        if nx < 0
            || ny < 0
            || nz < 0
            || nx as usize >= self.width
            || ny as usize >= self.height
            || nz as usize >= self.depth
        {
            None
        } else {
            Some(self.node(nx as usize, ny as usize, nz as usize))
        }
    }
}

impl Topology for Mesh3D {
    fn num_nodes(&self) -> usize {
        self.width * self.height * self.depth
    }

    /// Neighbors in the canonical order `+X, -X, +Y, -Y, +Z, -Z`.
    fn neighbors_into(&self, n: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        for d in Dir3::ALL {
            if let Some(m) = self.step(n, d) {
                out.push(m);
            }
        }
    }

    fn adjacent(&self, a: NodeId, b: NodeId) -> bool {
        self.distance(a, b) == 1
    }

    fn distance(&self, a: NodeId, b: NodeId) -> usize {
        let (ax, ay, az) = self.coords(a);
        let (bx, by, bz) = self.coords(b);
        ax.abs_diff(bx) + ay.abs_diff(by) + az.abs_diff(bz)
    }

    fn diameter(&self) -> usize {
        self.width + self.height + self.depth - 3
    }

    fn describe(&self) -> String {
        format!("{}x{}x{} mesh", self.width, self.height, self.depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::bfs_distance;

    #[test]
    fn node_coord_roundtrip() {
        let m = Mesh3D::new(3, 4, 5);
        for z in 0..5 {
            for y in 0..4 {
                for x in 0..3 {
                    assert_eq!(m.coords(m.node(x, y, z)), (x, y, z));
                }
            }
        }
    }

    #[test]
    fn closed_form_distance_matches_bfs() {
        let m = Mesh3D::new(3, 3, 3);
        for a in 0..m.num_nodes() {
            for b in 0..m.num_nodes() {
                assert_eq!(m.distance(a, b), bfs_distance(&m, a, b).unwrap());
            }
        }
    }

    #[test]
    fn degrees_range_from_3_to_6() {
        let m = Mesh3D::new(3, 3, 3);
        assert_eq!(m.degree(m.node(0, 0, 0)), 3);
        assert_eq!(m.degree(m.node(1, 1, 1)), 6);
        assert_eq!(m.degree(m.node(1, 0, 0)), 4);
        assert_eq!(m.degree(m.node(1, 1, 0)), 5);
    }

    #[test]
    fn diameter_is_corner_to_corner() {
        let m = Mesh3D::new(4, 5, 6);
        assert_eq!(m.diameter(), m.distance(m.node(0, 0, 0), m.node(3, 4, 5)));
    }
}
