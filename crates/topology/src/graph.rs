//! Core graph abstractions shared by every topology.
//!
//! A multicomputer network is modeled as a *host graph* `G(V, E)` (Chapter 3
//! of the dissertation): nodes are processors, edges are bidirectional
//! communication links realized as a pair of directed *channels*. All
//! topologies in this crate expose a dense node-id space `0..num_nodes()`,
//! so algorithms can use flat arrays keyed by [`NodeId`].

use std::collections::VecDeque;

/// Dense node identifier, `0..Topology::num_nodes()`.
pub type NodeId = usize;

/// A directed communication channel between two adjacent nodes.
///
/// Physical links are bidirectional, but wormhole routing allocates each
/// *direction* independently, so channels are directed. `class` distinguishes
/// multiple (physical or virtual) channels in the same direction — e.g. the
/// double-channel network of §6.2.1 uses classes 0 and 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Channel {
    /// Transmitting node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Channel class (0 for single-channel networks).
    pub class: u8,
}

impl Channel {
    /// Class-0 channel from `from` to `to`.
    pub const fn new(from: NodeId, to: NodeId) -> Self {
        Channel { from, to, class: 0 }
    }

    /// Channel with an explicit class.
    pub const fn with_class(from: NodeId, to: NodeId, class: u8) -> Self {
        Channel { from, to, class }
    }

    /// The channel running in the opposite direction (same class).
    pub const fn reversed(self) -> Self {
        Channel {
            from: self.to,
            to: self.from,
            class: self.class,
        }
    }
}

/// An interconnection topology: a regular host graph with a dense node-id
/// space.
///
/// Implementations provide constant-time adjacency and (where the topology
/// permits) closed-form shortest-path distances; the trait supplies generic
/// BFS-based defaults so irregular graphs (e.g. [`crate::grid::GridGraph`])
/// can participate in the same algorithms.
pub trait Topology {
    /// Number of nodes `N = |V|`.
    fn num_nodes(&self) -> usize;

    /// Appends the neighbors of `n` to `out` (cleared first).
    ///
    /// The order is deterministic and documented per topology; several
    /// routing algorithms (e.g. multi-path destination partitioning) rely on
    /// enumerating neighbors in a fixed order.
    fn neighbors_into(&self, n: NodeId, out: &mut Vec<NodeId>);

    /// The neighbors of `n` as a freshly allocated vector.
    fn neighbors(&self, n: NodeId) -> Vec<NodeId> {
        let mut v = Vec::new();
        self.neighbors_into(n, &mut v);
        v
    }

    /// Node degree.
    fn degree(&self, n: NodeId) -> usize {
        self.neighbors(n).len()
    }

    /// Whether `a` and `b` are joined by a link.
    fn adjacent(&self, a: NodeId, b: NodeId) -> bool {
        self.neighbors(a).contains(&b)
    }

    /// Length of a shortest path from `a` to `b` (number of links).
    ///
    /// The default runs a BFS; regular topologies override this with a
    /// closed form (`|Δx|+|Δy|` for meshes, Hamming distance for cubes).
    fn distance(&self, a: NodeId, b: NodeId) -> usize {
        bfs_distance(self, a, b).expect("topology must be connected")
    }

    /// Maximum distance between any pair of nodes.
    fn diameter(&self) -> usize;

    /// Short human-readable description, e.g. `"8x8 mesh"` or `"6-cube"`.
    fn describe(&self) -> String;

    /// Every directed class-0 channel of the topology, in a deterministic
    /// order (ascending `from`, then the topology's neighbor order).
    fn channels(&self) -> Vec<Channel> {
        let mut out = Vec::new();
        let mut nb = Vec::new();
        for n in 0..self.num_nodes() {
            self.neighbors_into(n, &mut nb);
            for &m in &nb {
                out.push(Channel::new(n, m));
            }
        }
        out
    }

    /// Number of directed class-0 channels.
    fn num_channels(&self) -> usize {
        (0..self.num_nodes()).map(|n| self.degree(n)).sum()
    }
}

/// BFS shortest-path distance; `None` if `b` is unreachable from `a`.
pub fn bfs_distance<T: Topology + ?Sized>(topo: &T, a: NodeId, b: NodeId) -> Option<usize> {
    if a == b {
        return Some(0);
    }
    let n = topo.num_nodes();
    let mut dist = vec![usize::MAX; n];
    dist[a] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(a);
    let mut nb = Vec::new();
    while let Some(u) = queue.pop_front() {
        topo.neighbors_into(u, &mut nb);
        for &v in &nb {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                if v == b {
                    return Some(dist[v]);
                }
                queue.push_back(v);
            }
        }
    }
    None
}

/// BFS distances from `a` to every node (`usize::MAX` where unreachable).
pub fn bfs_distances<T: Topology + ?Sized>(topo: &T, a: NodeId) -> Vec<usize> {
    let n = topo.num_nodes();
    let mut dist = vec![usize::MAX; n];
    dist[a] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(a);
    let mut nb = Vec::new();
    while let Some(u) = queue.pop_front() {
        topo.neighbors_into(u, &mut nb);
        for &v in &nb {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// A shortest path from `a` to `b` (inclusive of both endpoints), found by
/// BFS with deterministic tie-breaking (the topology's neighbor order).
pub fn bfs_path<T: Topology + ?Sized>(topo: &T, a: NodeId, b: NodeId) -> Option<Vec<NodeId>> {
    if a == b {
        return Some(vec![a]);
    }
    let n = topo.num_nodes();
    let mut parent = vec![usize::MAX; n];
    parent[a] = a;
    let mut queue = VecDeque::new();
    queue.push_back(a);
    let mut nb = Vec::new();
    'outer: while let Some(u) = queue.pop_front() {
        topo.neighbors_into(u, &mut nb);
        for &v in &nb {
            if parent[v] == usize::MAX {
                parent[v] = u;
                if v == b {
                    break 'outer;
                }
                queue.push_back(v);
            }
        }
    }
    if parent[b] == usize::MAX {
        return None;
    }
    let mut path = vec![b];
    let mut cur = b;
    while cur != a {
        cur = parent[cur];
        path.push(cur);
    }
    path.reverse();
    Some(path)
}

/// Whether the sequence `path` is a valid walk in `topo` (every consecutive
/// pair adjacent).
pub fn is_walk<T: Topology + ?Sized>(topo: &T, path: &[NodeId]) -> bool {
    path.windows(2).all(|w| topo.adjacent(w[0], w[1]))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 4-cycle used to exercise the generic defaults.
    struct Ring(usize);

    impl Topology for Ring {
        fn num_nodes(&self) -> usize {
            self.0
        }
        fn neighbors_into(&self, n: NodeId, out: &mut Vec<NodeId>) {
            out.clear();
            out.push((n + 1) % self.0);
            out.push((n + self.0 - 1) % self.0);
        }
        fn diameter(&self) -> usize {
            self.0 / 2
        }
        fn describe(&self) -> String {
            format!("{}-ring", self.0)
        }
    }

    #[test]
    fn channel_reverse_roundtrips() {
        let c = Channel::with_class(3, 7, 1);
        assert_eq!(c.reversed().reversed(), c);
        assert_eq!(c.reversed(), Channel::with_class(7, 3, 1));
    }

    #[test]
    fn bfs_distance_on_ring() {
        let r = Ring(8);
        assert_eq!(r.distance(0, 0), 0);
        assert_eq!(r.distance(0, 1), 1);
        assert_eq!(r.distance(0, 4), 4);
        assert_eq!(r.distance(0, 5), 3);
    }

    #[test]
    fn bfs_path_is_shortest_walk() {
        let r = Ring(10);
        let p = bfs_path(&r, 2, 7).unwrap();
        assert_eq!(p.len() - 1, r.distance(2, 7));
        assert!(is_walk(&r, &p));
        assert_eq!(p[0], 2);
        assert_eq!(*p.last().unwrap(), 7);
    }

    #[test]
    fn channels_enumeration_counts_degree_sum() {
        let r = Ring(6);
        assert_eq!(r.channels().len(), 12);
        assert_eq!(r.num_channels(), 12);
    }

    #[test]
    fn bfs_distances_matches_pointwise() {
        let r = Ring(9);
        let d = bfs_distances(&r, 3);
        for (v, &dist) in d.iter().enumerate() {
            assert_eq!(dist, r.distance(3, v));
        }
    }
}
