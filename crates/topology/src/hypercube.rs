//! The binary hypercube (n-cube) topology of §2.1.1 and Definition 4.2, as
//! adopted by the nCUBE-2 and iPSC/2 machines.
//!
//! Each node has a unique `n`-bit binary address; nodes are adjacent iff
//! their addresses differ in exactly one bit, so the node id *is* the
//! address and `distance(a, b) = popcount(a XOR b)`.

use crate::graph::{NodeId, Topology};

/// An `n`-dimensional binary hypercube with `2^n` nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hypercube {
    dim: u32,
}

impl Hypercube {
    /// Creates an `n`-cube.
    ///
    /// # Panics
    /// Panics if `dim` is 0 or would overflow the node-id space.
    pub fn new(dim: u32) -> Self {
        assert!(dim >= 1, "hypercube dimension must be at least 1");
        assert!(dim < usize::BITS - 1, "hypercube dimension too large");
        Hypercube { dim }
    }

    /// The dimension `n`.
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// The neighbor of `n` across dimension `d` (flipping bit `d`).
    ///
    /// # Panics
    /// Panics (debug) if `d >= dim`.
    pub fn flip(&self, n: NodeId, d: u32) -> NodeId {
        debug_assert!(d < self.dim);
        n ^ (1 << d)
    }

    /// The dimensions in which `a` and `b` differ, lowest first.
    pub fn differing_dims(&self, a: NodeId, b: NodeId) -> Vec<u32> {
        let mut x = a ^ b;
        let mut out = Vec::with_capacity(x.count_ones() as usize);
        while x != 0 {
            let d = x.trailing_zeros();
            out.push(d);
            x &= x - 1;
        }
        out
    }

    /// Formats a node address as an `n`-bit binary string (MSB first), as
    /// used in the dissertation's figures (e.g. `1100`).
    pub fn format_addr(&self, n: NodeId) -> String {
        (0..self.dim)
            .rev()
            .map(|b| if n >> b & 1 == 1 { '1' } else { '0' })
            .collect()
    }

    /// Parses an `n`-bit binary address string (MSB first).
    pub fn parse_addr(&self, s: &str) -> Option<NodeId> {
        if s.len() != self.dim as usize {
            return None;
        }
        let mut n = 0;
        for c in s.chars() {
            n = n << 1
                | match c {
                    '0' => 0,
                    '1' => 1,
                    _ => return None,
                };
        }
        Some(n)
    }
}

impl Topology for Hypercube {
    fn num_nodes(&self) -> usize {
        1 << self.dim
    }

    /// Neighbors in ascending dimension order (bit 0 first).
    fn neighbors_into(&self, n: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        for d in 0..self.dim {
            out.push(self.flip(n, d));
        }
    }

    fn degree(&self, _n: NodeId) -> usize {
        self.dim as usize
    }

    fn adjacent(&self, a: NodeId, b: NodeId) -> bool {
        (a ^ b).count_ones() == 1
    }

    fn distance(&self, a: NodeId, b: NodeId) -> usize {
        (a ^ b).count_ones() as usize
    }

    fn diameter(&self) -> usize {
        self.dim as usize
    }

    fn describe(&self) -> String {
        format!("{}-cube", self.dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::bfs_distance;

    #[test]
    fn hamming_distance_matches_bfs() {
        let h = Hypercube::new(4);
        for a in 0..h.num_nodes() {
            for b in 0..h.num_nodes() {
                assert_eq!(h.distance(a, b), bfs_distance(&h, a, b).unwrap());
            }
        }
    }

    #[test]
    fn degree_equals_dimension() {
        let h = Hypercube::new(6);
        for n in 0..h.num_nodes() {
            assert_eq!(h.degree(n), 6);
            assert_eq!(h.neighbors(n).len(), 6);
        }
    }

    #[test]
    fn address_formatting_roundtrips() {
        let h = Hypercube::new(4);
        assert_eq!(h.format_addr(0b1100), "1100");
        assert_eq!(h.parse_addr("1100"), Some(0b1100));
        for n in 0..h.num_nodes() {
            assert_eq!(h.parse_addr(&h.format_addr(n)), Some(n));
        }
        assert_eq!(h.parse_addr("10"), None);
        assert_eq!(h.parse_addr("10x0"), None);
    }

    #[test]
    fn differing_dims_enumerates_xor_bits() {
        let h = Hypercube::new(5);
        assert_eq!(h.differing_dims(0b10110, 0b00011), vec![0, 2, 4]);
        assert!(h.differing_dims(7, 7).is_empty());
    }

    #[test]
    fn channel_count() {
        // n * 2^n directed channels.
        let h = Hypercube::new(5);
        assert_eq!(h.num_channels(), 5 * 32);
    }

    #[test]
    fn flip_is_involutive_and_adjacent() {
        let h = Hypercube::new(7);
        for n in [0usize, 5, 100, 127] {
            for d in 0..7 {
                let m = h.flip(n, d);
                assert!(h.adjacent(n, m));
                assert_eq!(h.flip(m, d), n);
            }
        }
    }
}
