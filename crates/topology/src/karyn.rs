//! The general k-ary n-cube family of §2.1.3: `n` dimensions with `k` nodes
//! per dimension connected as a ring (torus) or a line (mesh).
//!
//! Hypercubes (`k = 2`) and 2D meshes (`n = 2`, no wraparound) are special
//! cases; this generalization lets the Hamiltonian-labeling routing schemes
//! of Chapter 6 be exercised on the wider family the dissertation's
//! conclusions point at ("these routing algorithms can be applied to any
//! multicomputer networks that have Hamilton paths").

use crate::graph::{NodeId, Topology};

/// A k-ary n-cube. Node ids are radix-`k` numbers with digit `i` being the
/// coordinate along dimension `i` (dimension 0 is the least significant
/// digit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KAryNCube {
    k: usize,
    n: u32,
    /// Whether each dimension wraps around (torus) or not (mesh).
    wrap: bool,
}

impl KAryNCube {
    /// Creates a k-ary n-cube with wraparound rings in each dimension.
    ///
    /// # Panics
    /// Panics if `k < 2`, `n < 1`, or `k^n` overflows.
    pub fn torus(k: usize, n: u32) -> Self {
        Self::with_wrap(k, n, true)
    }

    /// Creates a k-ary n-cube without wraparound (an n-dimensional mesh
    /// with side `k`).
    pub fn mesh(k: usize, n: u32) -> Self {
        Self::with_wrap(k, n, false)
    }

    fn with_wrap(k: usize, n: u32, wrap: bool) -> Self {
        assert!(k >= 2, "radix must be at least 2");
        assert!(n >= 1, "dimension must be at least 1");
        let mut size: usize = 1;
        for _ in 0..n {
            size = size.checked_mul(k).expect("k^n overflows usize");
        }
        KAryNCube { k, n, wrap }
    }

    /// The radix `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The dimension `n`.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Whether dimensions wrap around.
    pub fn wraps(&self) -> bool {
        // k == 2 rings are single links; treat as non-wrapping to avoid
        // duplicate channels.
        self.wrap && self.k > 2
    }

    /// Digit (coordinate) of `node` along dimension `d`.
    pub fn digit(&self, node: NodeId, d: u32) -> usize {
        debug_assert!(d < self.n);
        node / self.k.pow(d) % self.k
    }

    /// All `n` digits of `node`, dimension 0 first.
    pub fn digits(&self, node: NodeId) -> Vec<usize> {
        (0..self.n).map(|d| self.digit(node, d)).collect()
    }

    /// Builds a node id from digits (dimension 0 first).
    pub fn from_digits(&self, digits: &[usize]) -> NodeId {
        debug_assert_eq!(digits.len(), self.n as usize);
        digits.iter().rev().fold(0, |acc, &d| {
            debug_assert!(d < self.k);
            acc * self.k + d
        })
    }

    /// Moves one step along dimension `d` in direction `delta ∈ {+1, -1}`,
    /// if the neighbor exists.
    pub fn step(&self, node: NodeId, d: u32, delta: isize) -> Option<NodeId> {
        debug_assert!(delta == 1 || delta == -1);
        let stride = self.k.pow(d);
        let digit = self.digit(node, d) as isize;
        let next = digit + delta;
        let next = if self.wraps() {
            next.rem_euclid(self.k as isize) as usize
        } else if next < 0 || next as usize >= self.k {
            return None;
        } else {
            next as usize
        };
        Some(node - digit as usize * stride + next * stride)
    }
}

impl Topology for KAryNCube {
    fn num_nodes(&self) -> usize {
        self.k.pow(self.n)
    }

    /// Neighbors in order: for each dimension 0..n, the `+1` then `-1`
    /// neighbor (existing ones only, deduplicated for wrapped `k = 3`
    /// rings where +1 and −1 coincide... they never coincide for k ≥ 3).
    fn neighbors_into(&self, n: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        for d in 0..self.n {
            if let Some(m) = self.step(n, d, 1) {
                out.push(m);
            }
            if let Some(m) = self.step(n, d, -1) {
                if !out.contains(&m) {
                    out.push(m);
                }
            }
        }
    }

    fn distance(&self, a: NodeId, b: NodeId) -> usize {
        (0..self.n)
            .map(|d| {
                let da = self.digit(a, d);
                let db = self.digit(b, d);
                let lin = da.abs_diff(db);
                if self.wraps() {
                    lin.min(self.k - lin)
                } else {
                    lin
                }
            })
            .sum()
    }

    fn diameter(&self) -> usize {
        let per_dim = if self.wraps() { self.k / 2 } else { self.k - 1 };
        per_dim * self.n as usize
    }

    fn describe(&self) -> String {
        format!(
            "{}-ary {}-cube{}",
            self.k,
            self.n,
            if self.wraps() { " (torus)" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::bfs_distance;
    use crate::hypercube::Hypercube;
    use crate::mesh2d::Mesh2D;

    #[test]
    fn binary_cube_matches_hypercube() {
        let k = KAryNCube::torus(2, 4);
        let h = Hypercube::new(4);
        assert_eq!(k.num_nodes(), h.num_nodes());
        for a in 0..16 {
            for b in 0..16 {
                assert_eq!(k.distance(a, b), h.distance(a, b), "a={a} b={b}");
            }
            let mut kn = k.neighbors(a);
            let mut hn = h.neighbors(a);
            kn.sort_unstable();
            hn.sort_unstable();
            assert_eq!(kn, hn);
        }
    }

    #[test]
    fn square_mesh_matches_mesh2d() {
        let k = KAryNCube::mesh(4, 2);
        let m = Mesh2D::new(4, 4);
        for a in 0..16 {
            for b in 0..16 {
                assert_eq!(k.distance(a, b), m.distance(a, b));
            }
            let mut kn = k.neighbors(a);
            let mut mn = m.neighbors(a);
            kn.sort_unstable();
            mn.sort_unstable();
            assert_eq!(kn, mn);
        }
    }

    #[test]
    fn torus_distance_matches_bfs() {
        let k = KAryNCube::torus(4, 2);
        for a in 0..k.num_nodes() {
            for b in 0..k.num_nodes() {
                assert_eq!(k.distance(a, b), bfs_distance(&k, a, b).unwrap());
            }
        }
    }

    #[test]
    fn digits_roundtrip() {
        let k = KAryNCube::torus(5, 3);
        for n in 0..k.num_nodes() {
            assert_eq!(k.from_digits(&k.digits(n)), n);
        }
    }

    #[test]
    fn torus_degree_is_2n() {
        let k = KAryNCube::torus(4, 3);
        for n in 0..k.num_nodes() {
            assert_eq!(k.degree(n), 6);
        }
    }
}
