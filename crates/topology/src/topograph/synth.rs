//! Routing synthesis for custom graphs, certified deadlock-free.
//!
//! Two synthesis strategies, picked by graph shape:
//!
//! * **up*/down*** for duplex graphs — a root is chosen by minimum BFS
//!   eccentricity, nodes are ranked by deterministic BFS order, and
//!   every route is a (possibly empty) sequence of *up* moves (toward
//!   lower rank) followed by *down* moves. The phase automaton makes
//!   the channel-dependency graph acyclic by construction: up-channels
//!   strictly descend in rank, down-channels strictly ascend, and no
//!   down → up dependency exists.
//! * **latency-weighted shortest path** for non-duplex (directed)
//!   graphs — an incoming-independent Dijkstra next-hop table per
//!   destination. This is sound but not complete: some digraphs admit
//!   no deadlock-free routing at all (Mendlovic–Matias), and others
//!   only under functions this synthesizer does not search.
//!
//! Either way the synthesized function is **certified**: its full
//! channel-dependency graph is built with [`cdg_from_routing`] and
//! checked with the existing Dally–Seitz acyclicity machinery. A cyclic
//! CDG is a hard, typed failure ([`TopographError::RoutingCyclic`])
//! naming the witness cycle — an uncertified router is never returned.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::cdg::{cdg_from_routing, ChannelDependencyGraph};
use crate::graph::{bfs_distances, Channel, NodeId, Topology};

use super::{bfs_rank, CustomGraph, TopographError};

/// Which synthesis strategy produced a routing function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingKind {
    /// Up*/down* over a BFS rank (duplex graphs).
    UpDown,
    /// Incoming-independent latency-weighted shortest path (directed
    /// graphs).
    ShortestPath,
}

/// A synthesized routing function whose channel-dependency graph has
/// been verified acyclic — the only way to obtain one is
/// [`synthesize`], which refuses to return an uncertified router.
#[derive(Debug, Clone)]
pub struct CertifiedRouting {
    kind: RoutingKind,
    root: Option<NodeId>,
    num_nodes: usize,
    channels: Vec<Channel>,
    /// Up*/down* rank (empty for [`RoutingKind::ShortestPath`]).
    rank: Vec<usize>,
    /// `next_u[dest][node]`: next hop in the up-phase (the only table
    /// for shortest-path routing).
    next_u: Vec<Vec<Option<NodeId>>>,
    /// `next_d[dest][node]`: next hop once committed to the down-phase.
    next_d: Vec<Vec<Option<NodeId>>>,
}

const INF: u64 = u64::MAX;

impl CertifiedRouting {
    /// The synthesis strategy used.
    pub fn kind(&self) -> RoutingKind {
        self.kind
    }

    /// The up*/down* root (None for shortest-path routing).
    pub fn root(&self) -> Option<NodeId> {
        self.root
    }

    /// The channel set the function routes over.
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// The routing function: the outgoing channel a message bound for
    /// `dest` takes from `at` after arriving on `incoming` (`None` at
    /// the source). `None` once delivered — or for an `(incoming,
    /// dest)` state the function itself never produces, so the CDG
    /// enumeration in [`cdg_from_routing`] stays exact: a `dest`-bound
    /// worm only ever holds channels the function routed it through.
    pub fn next(&self, at: NodeId, incoming: Option<Channel>, dest: NodeId) -> Option<Channel> {
        if at == dest {
            return None;
        }
        let down_phase = match self.kind {
            RoutingKind::ShortestPath => {
                if let Some(c) = incoming {
                    if self.next_u[dest][c.from] != Some(at) {
                        return None;
                    }
                }
                false
            }
            // Arriving on a down move (rank increased) commits the
            // message to the down phase for the rest of its route.
            RoutingKind::UpDown => match incoming {
                Some(c) => self.rank[at] > self.rank[c.from],
                None => false,
            },
        };
        let table = if down_phase {
            &self.next_d
        } else {
            &self.next_u
        };
        table[dest][at].map(|hop| Channel::new(at, hop))
    }

    /// The full route from `src` to `dest` (inclusive of both).
    pub fn path(&self, src: NodeId, dest: NodeId) -> Vec<NodeId> {
        let mut path = vec![src];
        let mut incoming = None;
        let mut at = src;
        // A certified function cannot loop, but cap defensively.
        for _ in 0..=self.channels.len() {
            match self.next(at, incoming, dest) {
                None => return path,
                Some(c) => {
                    at = c.to;
                    path.push(at);
                    incoming = Some(c);
                }
            }
        }
        unreachable!("certified routing revisited a channel: {path:?}");
    }

    /// Rebuilds the (acyclic, certified) channel-dependency graph of
    /// this routing function.
    pub fn cdg(&self) -> ChannelDependencyGraph {
        cdg_from_routing(self.channels.clone(), self.num_nodes, |at, inc, dest| {
            self.next(at, inc, dest)
        })
    }
}

/// Synthesizes a deadlock-free routing function for `graph` and
/// certifies it through the CDG acyclicity checker. Duplex graphs get
/// up*/down* (always certifiable); directed graphs get shortest-path
/// next-hops, which the certification step may reject with a witness
/// cycle ([`TopographError::RoutingCyclic`]).
pub fn synthesize(graph: &CustomGraph) -> Result<CertifiedRouting, TopographError> {
    let routing = if graph.is_duplex() {
        synthesize_up_down(graph)
    } else {
        synthesize_shortest_path(graph)
    };
    if let Some(cycle) = routing.cdg().find_cycle() {
        return Err(TopographError::RoutingCyclic { cycle });
    }
    Ok(routing)
}

/// In-adjacency with latencies: `ins[v]` = `(u, latency)` for every
/// channel `u → v`.
fn in_edges(graph: &CustomGraph) -> Vec<Vec<(NodeId, u64)>> {
    let n = graph.num_nodes();
    let mut ins: Vec<Vec<(NodeId, u64)>> = vec![Vec::new(); n];
    for (from, to, latency) in graph.edges() {
        ins[to].push((from, latency));
    }
    ins
}

/// The up*/down* root: minimum BFS eccentricity, ties to the lowest id.
fn pick_root(graph: &CustomGraph) -> NodeId {
    let n = graph.num_nodes();
    (0..n)
        .min_by_key(|&u| {
            let dist = bfs_distances(graph, u);
            dist.into_iter().max().unwrap_or(0)
        })
        .unwrap_or(0)
}

fn synthesize_up_down(graph: &CustomGraph) -> CertifiedRouting {
    let n = graph.num_nodes();
    let root = pick_root(graph);
    let rank = bfs_rank(graph, root);
    let ins = in_edges(graph);
    let mut next_u = vec![vec![None; n]; n];
    let mut next_d = vec![vec![None; n]; n];
    for dest in 0..n {
        // Reverse Dijkstra over the phase automaton: dist_u[v] /
        // dist_d[v] = cheapest legal path cost from v to dest when the
        // message may still go up / is committed downward. States are
        // (cost, node, down?), popped cheapest-first.
        let mut dist_u = vec![INF; n];
        let mut dist_d = vec![INF; n];
        let mut heap = BinaryHeap::new();
        dist_u[dest] = 0;
        dist_d[dest] = 0;
        heap.push(Reverse((0u64, dest, false)));
        heap.push(Reverse((0u64, dest, true)));
        while let Some(Reverse((cost, v, down))) = heap.pop() {
            if cost > if down { dist_d[v] } else { dist_u[v] } {
                continue;
            }
            for &(u, latency) in &ins[v] {
                let up_move = rank[v] < rank[u];
                let c = cost + latency;
                if up_move {
                    // Up move u → v: legal only while still in the up
                    // phase at u, and keeps the message there — so it
                    // consumes v's *up*-phase cost.
                    if !down && c < dist_u[u] {
                        dist_u[u] = c;
                        heap.push(Reverse((c, u, false)));
                    }
                } else if down {
                    // Down move u → v: legal from either phase at u
                    // (it is what commits the message downward) but
                    // always lands in the down phase at v.
                    if c < dist_d[u] {
                        dist_d[u] = c;
                        heap.push(Reverse((c, u, true)));
                    }
                    if c < dist_u[u] {
                        dist_u[u] = c;
                        heap.push(Reverse((c, u, false)));
                    }
                }
            }
        }
        // Greedy next hops off the cost tables; ties break to the
        // lowest neighbor id for determinism.
        for at in 0..n {
            if at == dest {
                continue;
            }
            let mut best_u: Option<(u64, NodeId)> = None;
            let mut best_d: Option<(u64, NodeId)> = None;
            for &(v, latency) in graph.out_edges(at) {
                let up_move = rank[v] < rank[at];
                let tail = if up_move { dist_u[v] } else { dist_d[v] };
                if tail == INF {
                    continue;
                }
                let c = latency + tail;
                if best_u.is_none_or(|b| (c, v) < b) {
                    best_u = Some((c, v));
                }
                if !up_move && best_d.is_none_or(|b| (c, v) < b) {
                    best_d = Some((c, v));
                }
            }
            next_u[dest][at] = Some(
                best_u
                    .expect("up*/down* reaches every destination via the BFS tree")
                    .1,
            );
            next_d[dest][at] = best_d.map(|b| b.1);
        }
    }
    CertifiedRouting {
        kind: RoutingKind::UpDown,
        root: Some(root),
        num_nodes: n,
        channels: graph.channels(),
        rank,
        next_u,
        next_d,
    }
}

fn synthesize_shortest_path(graph: &CustomGraph) -> CertifiedRouting {
    let n = graph.num_nodes();
    let ins = in_edges(graph);
    let mut next = vec![vec![None; n]; n];
    for dest in 0..n {
        // Reverse Dijkstra: dist[v] = cheapest cost from v to dest.
        let mut dist = vec![INF; n];
        let mut heap = BinaryHeap::new();
        dist[dest] = 0;
        heap.push(Reverse((0u64, dest)));
        while let Some(Reverse((cost, v))) = heap.pop() {
            if cost > dist[v] {
                continue;
            }
            for &(u, latency) in &ins[v] {
                let c = cost + latency;
                if c < dist[u] {
                    dist[u] = c;
                    heap.push(Reverse((c, u)));
                }
            }
        }
        for (at, slot) in next[dest].iter_mut().enumerate() {
            if at == dest {
                continue;
            }
            let best = graph
                .out_edges(at)
                .iter()
                .filter(|&&(t, _)| dist[t] < INF)
                .map(|&(t, l)| (l + dist[t], t))
                .min();
            *slot = Some(
                best.expect("strongly connected graph reaches every destination")
                    .1,
            );
        }
    }
    CertifiedRouting {
        kind: RoutingKind::ShortestPath,
        root: None,
        num_nodes: n,
        channels: graph.channels(),
        rank: Vec::new(),
        next_u: next.clone(),
        next_d: next,
    }
}

#[cfg(test)]
mod tests {
    use super::super::generators::{fat_tree_ish, lesioned_mesh, random_connected};
    use super::*;
    use crate::graph::is_walk;

    fn assert_certified_and_complete(g: &CustomGraph) {
        let r = synthesize(g).expect("synthesis certifies");
        assert!(r.cdg().is_acyclic());
        let n = g.num_nodes();
        for s in 0..n {
            for d in 0..n {
                let p = r.path(s, d);
                assert_eq!(p.first(), Some(&s));
                assert_eq!(p.last(), Some(&d));
                assert!(is_walk(g, &p), "{s}->{d} not a walk: {p:?}");
            }
        }
    }

    #[test]
    fn up_down_certifies_on_generated_duplex_graphs() {
        for seed in 0..6 {
            let g = random_connected(14, seed);
            let r = synthesize(&g).unwrap();
            assert_eq!(r.kind(), RoutingKind::UpDown);
            assert!(r.root().is_some());
            assert_certified_and_complete(&g);
            assert_certified_and_complete(&lesioned_mesh(4, 4, seed));
            assert_certified_and_complete(&fat_tree_ish(2, seed));
        }
    }

    #[test]
    fn up_down_routes_respect_the_phase_discipline() {
        let g = lesioned_mesh(5, 4, 9);
        let r = synthesize(&g).unwrap();
        let rank = bfs_rank(&g, r.root().unwrap());
        for s in 0..g.num_nodes() {
            for d in 0..g.num_nodes() {
                let p = r.path(s, d);
                let mut went_down = false;
                for w in p.windows(2) {
                    let down = rank[w[1]] > rank[w[0]];
                    assert!(
                        down || !went_down,
                        "up move after down move in {p:?} (ranks {rank:?})"
                    );
                    went_down |= down;
                }
            }
        }
    }

    #[test]
    fn directed_graph_gets_shortest_path_routing_when_certifiable() {
        // A duplex triangle plus a one-way chord: not duplex, but the
        // shortest-path function's CDG is acyclic (the chord only
        // shortens routes, never closes a dependency cycle).
        let e = [
            (0, 1, 1),
            (1, 0, 1),
            (1, 2, 1),
            (2, 1, 1),
            (0, 2, 1), // one-way chord
        ];
        let g = CustomGraph::build("chord", CustomGraph::anon_names(3), &e).unwrap();
        assert!(!g.is_duplex());
        let r = synthesize(&g).unwrap();
        assert_eq!(r.kind(), RoutingKind::ShortestPath);
        assert_eq!(r.path(0, 2), vec![0, 2]);
        assert!(r.cdg().is_acyclic());
    }

    #[test]
    fn unidirectional_ring_is_rejected_naming_the_cycle() {
        // The canonical Mendlovic–Matias violation: a one-way ring's
        // only routing function chases itself around the ring, so its
        // CDG is a single directed cycle — no deadlock-free routing
        // exists over these channels.
        let n = 4;
        let edges: Vec<_> = (0..n).map(|i| (i, (i + 1) % n, 1)).collect();
        let g = CustomGraph::build("ring", CustomGraph::anon_names(n), &edges).unwrap();
        let err = synthesize(&g).unwrap_err();
        match &err {
            TopographError::RoutingCyclic { cycle } => {
                // The witness is closed (first channel repeated last)
                // and walks the ring.
                assert!(cycle.len() > 2);
                assert_eq!(cycle.first(), cycle.last());
                for c in cycle {
                    assert_eq!(c.to, (c.from + 1) % n);
                }
            }
            other => panic!("expected RoutingCyclic, got {other:?}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("channel-dependency cycle"), "{msg}");
        assert!(msg.contains("->"), "{msg}");
    }

    #[test]
    fn latencies_steer_route_choice() {
        // Duplex triangle with an expensive 1-2 side (10 cycles). The
        // detour 1 -> 0 -> 2 costs 2 and is a legal up-then-down route
        // (0 is the root), so the synthesizer must prefer it.
        let e = [
            (0, 1, 1),
            (1, 0, 1),
            (0, 2, 1),
            (2, 0, 1),
            (1, 2, 10),
            (2, 1, 10),
        ];
        let g = CustomGraph::build("triangle", CustomGraph::anon_names(3), &e).unwrap();
        let r = synthesize(&g).unwrap();
        assert_eq!(r.root(), Some(0));
        assert_eq!(r.path(1, 2), vec![1, 0, 2]);
        assert_eq!(r.path(2, 1), vec![2, 0, 1]);
    }
}
