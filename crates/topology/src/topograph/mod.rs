//! Arbitrary-topology subsystem (`topograph`): validated custom graphs
//! and synthesized, *certified* deadlock-free routing (DESIGN.md §14).
//!
//! The dissertation's schemes are defined over four regular topologies;
//! this module extends the substrate to user-supplied irregular graphs.
//! A [`CustomGraph`] is a validated directed host graph with per-channel
//! latencies, built either programmatically ([`CustomGraph::build`]),
//! from one of the seeded [`generators`], or — one layer up, in
//! `mcast-sim` — by parsing JSON/DOT topology files. Every construction
//! path funnels through the same validation: dense node ids, no
//! self-loops, no duplicate channels, positive latencies, and strong
//! connectivity with a witness pair on failure. Routing synthesis and
//! certification live in [`synth`].

pub mod synth;

use std::collections::VecDeque;

use crate::graph::{bfs_distances, Channel, NodeId, Topology};

/// A typed rejection from graph validation or routing synthesis.
///
/// Every failure mode of the subsystem is one of these variants —
/// ingestion and synthesis never panic on user input, and the messages
/// carry the offending nodes/channels so they are actionable as-is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopographError {
    /// The graph has fewer than two nodes.
    TooFewNodes {
        /// The number of nodes supplied.
        nodes: usize,
    },
    /// An edge endpoint is outside `0..nodes`.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// The number of nodes in the graph.
        nodes: usize,
    },
    /// An edge from a node to itself.
    SelfLoop {
        /// The node with the self-loop.
        node: NodeId,
    },
    /// The same directed channel was declared twice.
    DuplicateEdge {
        /// Transmitting node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
    },
    /// A channel with zero latency (flits must take ≥ 1 cycle per hop).
    ZeroLatency {
        /// Transmitting node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
    },
    /// The graph is not strongly connected: no directed path `from → to`.
    NotConnected {
        /// A node that cannot reach `to`.
        from: NodeId,
        /// The unreachable node.
        to: NodeId,
    },
    /// Routing synthesis produced a cyclic channel-dependency graph, so
    /// no certified router exists for this graph under the synthesized
    /// function (the Dally–Seitz condition fails; cf. the
    /// Mendlovic–Matias existence condition for arbitrary digraphs).
    /// The witness cycle is closed: the first channel is repeated last.
    RoutingCyclic {
        /// The offending dependency cycle through the CDG.
        cycle: Vec<Channel>,
    },
}

impl std::fmt::Display for TopographError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopographError::TooFewNodes { nodes } => {
                write!(f, "graph needs at least 2 nodes, got {nodes}")
            }
            TopographError::NodeOutOfRange { node, nodes } => {
                write!(
                    f,
                    "edge endpoint {node} out of range (graph has {nodes} nodes)"
                )
            }
            TopographError::SelfLoop { node } => write!(f, "self-loop at node {node}"),
            TopographError::DuplicateEdge { from, to } => {
                write!(f, "duplicate edge {from} -> {to}")
            }
            TopographError::ZeroLatency { from, to } => {
                write!(
                    f,
                    "zero-latency channel {from} -> {to} (latency must be >= 1)"
                )
            }
            TopographError::NotConnected { from, to } => {
                write!(
                    f,
                    "graph is not strongly connected: no directed path from node {from} to node {to}"
                )
            }
            TopographError::RoutingCyclic { cycle } => {
                let hops: Vec<String> = cycle
                    .iter()
                    .map(|c| format!("{}->{}", c.from, c.to))
                    .collect();
                write!(
                    f,
                    "no deadlock-free routing certified: channel-dependency cycle {}",
                    hops.join(" => ")
                )
            }
        }
    }
}

impl std::error::Error for TopographError {}

/// A directed edge declaration: `(from, to, latency)`.
pub type EdgeDecl = (NodeId, NodeId, u64);

/// A validated irregular host graph with per-channel latencies.
///
/// Node ids are dense (`0..num_nodes`), adjacency is stored sorted so
/// neighbor enumeration — and everything derived from it, including the
/// deterministic [`Topology::channels`] order — is reproducible.
/// Latencies are integral (`u64` cycles) so the graph is `Eq` and can
/// round-trip through canonical specs byte-identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CustomGraph {
    name: String,
    node_names: Vec<String>,
    /// `out[n]` = sorted `(neighbor, latency)` pairs.
    out: Vec<Vec<(NodeId, u64)>>,
    duplex: bool,
    diameter: usize,
}

impl CustomGraph {
    /// Validates and builds a graph from directed edge declarations.
    ///
    /// `node_names` defines the node count and display names (pass
    /// [`CustomGraph::anon_names`] for `n0..nK`). Rejections are typed
    /// [`TopographError`]s; see the variant docs for the rules.
    pub fn build(
        name: impl Into<String>,
        node_names: Vec<String>,
        edges: &[EdgeDecl],
    ) -> Result<CustomGraph, TopographError> {
        let n = node_names.len();
        if n < 2 {
            return Err(TopographError::TooFewNodes { nodes: n });
        }
        let mut out: Vec<Vec<(NodeId, u64)>> = vec![Vec::new(); n];
        for &(from, to, latency) in edges {
            if from >= n {
                return Err(TopographError::NodeOutOfRange {
                    node: from,
                    nodes: n,
                });
            }
            if to >= n {
                return Err(TopographError::NodeOutOfRange { node: to, nodes: n });
            }
            if from == to {
                return Err(TopographError::SelfLoop { node: from });
            }
            if latency == 0 {
                return Err(TopographError::ZeroLatency { from, to });
            }
            if out[from].iter().any(|&(m, _)| m == to) {
                return Err(TopographError::DuplicateEdge { from, to });
            }
            out[from].push((to, latency));
        }
        for adj in &mut out {
            adj.sort_unstable();
        }
        let duplex = (0..n).all(|u| {
            out[u]
                .iter()
                .all(|&(v, _)| out[v].iter().any(|&(w, _)| w == u))
        });
        let graph = CustomGraph {
            name: name.into(),
            node_names,
            out,
            duplex,
            diameter: 0,
        };
        // Strong connectivity, with a witness pair on failure. One BFS
        // per node also yields the directed diameter for free.
        let mut diameter = 0;
        for u in 0..n {
            let dist = bfs_distances(&graph, u);
            if let Some(v) = (0..n).find(|&v| dist[v] == usize::MAX) {
                return Err(TopographError::NotConnected { from: u, to: v });
            }
            diameter = diameter.max(dist.iter().copied().max().unwrap_or(0));
        }
        Ok(CustomGraph { diameter, ..graph })
    }

    /// Anonymous node names `n0..n<count-1>`.
    pub fn anon_names(count: usize) -> Vec<String> {
        (0..count).map(|i| format!("n{i}")).collect()
    }

    /// The graph's name (from the source file or generator).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The display name of node `n`.
    pub fn node_name(&self, n: NodeId) -> &str {
        &self.node_names[n]
    }

    /// Whether every channel has its reverse (the graph is a set of
    /// bidirectional links). Duplex graphs admit up*/down* synthesis.
    pub fn is_duplex(&self) -> bool {
        self.duplex
    }

    /// The out-neighbors of `n` with channel latencies, sorted by
    /// neighbor id.
    pub fn out_edges(&self, n: NodeId) -> &[(NodeId, u64)] {
        &self.out[n]
    }

    /// The latency of channel `from → to` in cycles, if the channel
    /// exists.
    pub fn latency(&self, from: NodeId, to: NodeId) -> Option<u64> {
        self.out[from]
            .iter()
            .find(|&&(m, _)| m == to)
            .map(|&(_, l)| l)
    }

    /// All directed edges with latencies, in deterministic
    /// (ascending `from`, then `to`) order.
    pub fn edges(&self) -> Vec<EdgeDecl> {
        let mut v = Vec::new();
        for (from, adj) in self.out.iter().enumerate() {
            for &(to, latency) in adj {
                v.push((from, to, latency));
            }
        }
        v
    }

    /// The node with the highest out-degree (ties → lowest id) — the
    /// natural contention point for hot-spot traffic.
    pub fn max_degree_node(&self) -> NodeId {
        (0..self.num_nodes())
            .max_by_key(|&n| (self.out[n].len(), std::cmp::Reverse(n)))
            .unwrap_or(0)
    }
}

impl Topology for CustomGraph {
    fn num_nodes(&self) -> usize {
        self.node_names.len()
    }

    fn neighbors_into(&self, n: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        out.extend(self.out[n].iter().map(|&(m, _)| m));
    }

    fn diameter(&self) -> usize {
        self.diameter
    }

    fn describe(&self) -> String {
        format!(
            "custom graph \"{}\" ({} nodes, {} channels)",
            self.name,
            self.num_nodes(),
            self.num_channels()
        )
    }
}

/// Seeded irregular-graph generators, used by the conformance fuzzer's
/// topology pool and the `custom:rand`/`custom:lmesh`/`custom:ftree`
/// spec forms. All outputs pass [`CustomGraph::build`] validation by
/// construction; the PRNG is an inline SplitMix64 so the topology crate
/// stays dependency-free at runtime.
pub mod generators {
    use super::{CustomGraph, NodeId};

    /// SplitMix64 — tiny, seedable, and good enough for topology
    /// sampling (the same generator the parallel sweep runner derives
    /// its per-point seeds from).
    #[derive(Debug, Clone)]
    pub struct SplitMix64(u64);

    impl SplitMix64 {
        /// A generator from a seed.
        pub fn new(seed: u64) -> Self {
            SplitMix64(seed)
        }

        /// The next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `0..bound` (`bound > 0`).
        pub fn below(&mut self, bound: usize) -> usize {
            (self.next_u64() % bound as u64) as usize
        }
    }

    fn duplex(edges: &mut Vec<(NodeId, NodeId, u64)>, a: NodeId, b: NodeId, latency: u64) {
        edges.push((a, b, latency));
        edges.push((b, a, latency));
    }

    fn has_link(edges: &[(NodeId, NodeId, u64)], a: NodeId, b: NodeId) -> bool {
        edges.iter().any(|&(x, y, _)| x == a && y == b)
    }

    /// A random connected duplex graph: a random spanning tree plus
    /// roughly `nodes/2` extra chords, latencies 1–4 cycles. `nodes` is
    /// clamped to at least 2.
    pub fn random_connected(nodes: usize, seed: u64) -> CustomGraph {
        let n = nodes.max(2);
        let mut rng = SplitMix64::new(seed ^ 0xA5A5_0000_0000_0001);
        let mut edges = Vec::new();
        for v in 1..n {
            let parent = rng.below(v);
            duplex(&mut edges, parent, v, 1 + rng.below(4) as u64);
        }
        for _ in 0..n / 2 {
            let a = rng.below(n);
            let b = rng.below(n);
            if a != b && !has_link(&edges, a, b) {
                duplex(&mut edges, a, b, 1 + rng.below(4) as u64);
            }
        }
        CustomGraph::build(
            format!("rand:{nodes}x{seed}"),
            CustomGraph::anon_names(n),
            &edges,
        )
        .expect("generated graph is valid by construction")
    }

    /// A `w × h` mesh with random links lesioned (removed) while
    /// preserving connectivity — the "damaged regular machine" case the
    /// fault masks approximate. Dimensions are clamped to at least 2.
    pub fn lesioned_mesh(w: usize, h: usize, seed: u64) -> CustomGraph {
        let (w, h) = (w.max(2), h.max(2));
        let n = w * h;
        let node = |x: usize, y: usize| y * w + x;
        let mut rng = SplitMix64::new(seed ^ 0xA5A5_0000_0000_0002);
        // All duplex mesh links as (a, b) pairs with a < b.
        let mut links = Vec::new();
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    links.push((node(x, y), node(x + 1, y)));
                }
                if y + 1 < h {
                    links.push((node(x, y), node(x, y + 1)));
                }
            }
        }
        // Try to lesion ~1/5 of the links, keeping the survivor graph
        // connected: a removal that disconnects is undone.
        let budget = links.len() / 5;
        let mut removed = vec![false; links.len()];
        let mut cut = 0;
        for _ in 0..budget * 3 {
            if cut == budget {
                break;
            }
            let i = rng.below(links.len());
            if removed[i] {
                continue;
            }
            removed[i] = true;
            if survivors_connected(n, &links, &removed) {
                cut += 1;
            } else {
                removed[i] = false;
            }
        }
        let mut edges = Vec::new();
        for (i, &(a, b)) in links.iter().enumerate() {
            if !removed[i] {
                duplex(&mut edges, a, b, 1 + rng.below(2) as u64);
            }
        }
        CustomGraph::build(
            format!("lmesh:{w}x{h}x{seed}"),
            CustomGraph::anon_names(n),
            &edges,
        )
        .expect("lesioned mesh stays connected by construction")
    }

    fn survivors_connected(n: usize, links: &[(NodeId, NodeId)], removed: &[bool]) -> bool {
        let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (i, &(a, b)) in links.iter().enumerate() {
            if !removed[i] {
                adj[a].push(b);
                adj[b].push(a);
            }
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &v in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == n
    }

    /// A two-level fat-tree-ish Clos sample: `k` spines fully connected
    /// to `2k` leaves (duplex), leaf–spine latencies 1–3 cycles drawn
    /// per link. `k` is clamped to at least 2.
    pub fn fat_tree_ish(k: usize, seed: u64) -> CustomGraph {
        let k = k.max(2);
        let mut rng = SplitMix64::new(seed ^ 0xA5A5_0000_0000_0003);
        let leaves = 2 * k;
        let n = k + leaves;
        let mut edges = Vec::new();
        for spine in 0..k {
            for leaf in 0..leaves {
                duplex(&mut edges, spine, k + leaf, 1 + rng.below(3) as u64);
            }
        }
        CustomGraph::build(
            format!("ftree:{k}x{seed}"),
            CustomGraph::anon_names(n),
            &edges,
        )
        .expect("fat-tree sample is valid by construction")
    }
}

/// BFS visitation order from `root` with sorted neighbor exploration —
/// a deterministic total order used as the up*/down* rank and as the
/// registry labeling for custom graphs. Returns `order[node] = rank`.
pub(crate) fn bfs_rank(graph: &CustomGraph, root: NodeId) -> Vec<usize> {
    let n = graph.num_nodes();
    let mut rank = vec![usize::MAX; n];
    let mut queue = VecDeque::new();
    let mut nb = Vec::new();
    rank[root] = 0;
    queue.push_back(root);
    let mut next = 1;
    while let Some(u) = queue.pop_front() {
        graph.neighbors_into(u, &mut nb);
        for &v in &nb {
            if rank[v] == usize::MAX {
                rank[v] = next;
                next += 1;
                queue.push_back(v);
            }
        }
    }
    rank
}

/// The deterministic BFS visitation order from node 0 as a node
/// sequence: element `i` is the `i`-th node visited. Always a
/// permutation of the nodes — the registry uses it as the label order
/// for custom graphs — but **not** a Hamiltonian path in general, so
/// the Hamiltonian-path routing schemes do not apply to it.
pub fn bfs_order_path(graph: &CustomGraph) -> Vec<NodeId> {
    let rank = bfs_rank(graph, 0);
    let mut order = vec![0; graph.num_nodes()];
    for (node, &r) in rank.iter().enumerate() {
        order[r] = node;
    }
    order
}

#[cfg(test)]
mod tests {
    use super::generators::{fat_tree_ish, lesioned_mesh, random_connected};
    use super::*;
    use crate::graph::bfs_distance;

    fn names(n: usize) -> Vec<String> {
        CustomGraph::anon_names(n)
    }

    #[test]
    fn build_validates_structure() {
        assert_eq!(
            CustomGraph::build("g", names(1), &[]),
            Err(TopographError::TooFewNodes { nodes: 1 })
        );
        assert_eq!(
            CustomGraph::build("g", names(3), &[(0, 3, 1)]),
            Err(TopographError::NodeOutOfRange { node: 3, nodes: 3 })
        );
        assert_eq!(
            CustomGraph::build("g", names(3), &[(1, 1, 1)]),
            Err(TopographError::SelfLoop { node: 1 })
        );
        assert_eq!(
            CustomGraph::build("g", names(3), &[(0, 1, 1), (0, 1, 2)]),
            Err(TopographError::DuplicateEdge { from: 0, to: 1 })
        );
        assert_eq!(
            CustomGraph::build("g", names(3), &[(0, 1, 0)]),
            Err(TopographError::ZeroLatency { from: 0, to: 1 })
        );
    }

    #[test]
    fn build_requires_strong_connectivity_with_witness() {
        // 0 <-> 1 but 2 is isolated.
        let e = [(0, 1, 1), (1, 0, 1)];
        assert_eq!(
            CustomGraph::build("g", names(3), &e),
            Err(TopographError::NotConnected { from: 0, to: 2 })
        );
        // One-way edge: 1 cannot get back to 0.
        let e = [(0, 1, 1), (1, 2, 1), (2, 1, 1), (0, 2, 1), (2, 0, 1)];
        let g = CustomGraph::build("g", names(3), &e).unwrap();
        assert!(!g.is_duplex());
        assert_eq!(g.latency(0, 1), Some(1));
        assert_eq!(g.latency(1, 0), None);
    }

    #[test]
    fn duplex_detection_and_accessors() {
        let e = [
            (0, 1, 2),
            (1, 0, 2),
            (1, 2, 3),
            (2, 1, 3),
            (0, 2, 1),
            (2, 0, 1),
        ];
        let g = CustomGraph::build("tri", names(3), &e).unwrap();
        assert!(g.is_duplex());
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_channels(), 6);
        assert_eq!(g.diameter(), 1);
        assert_eq!(g.node_name(2), "n2");
        assert_eq!(g.edges().len(), 6);
        assert!(g.describe().contains("tri"));
        let err = TopographError::NotConnected { from: 0, to: 2 };
        assert!(err.to_string().contains("node 0"));
    }

    #[test]
    fn generators_produce_valid_duplex_graphs() {
        for seed in 0..8 {
            let g = random_connected(12, seed);
            assert!(g.is_duplex(), "rand seed {seed}");
            assert_eq!(g.num_nodes(), 12);
            let g = lesioned_mesh(4, 5, seed);
            assert!(g.is_duplex(), "lmesh seed {seed}");
            assert_eq!(g.num_nodes(), 20);
            assert!(
                g.num_channels() < 2 * 2 * (3 * 5 + 4 * 4),
                "lmesh seed {seed} lesioned nothing"
            );
            let g = fat_tree_ish(3, seed);
            assert!(g.is_duplex(), "ftree seed {seed}");
            assert_eq!(g.num_nodes(), 9);
        }
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        assert_eq!(random_connected(10, 7), random_connected(10, 7));
        assert_ne!(random_connected(10, 7), random_connected(10, 8));
        assert_eq!(lesioned_mesh(4, 4, 3), lesioned_mesh(4, 4, 3));
    }

    #[test]
    fn bfs_rank_is_a_permutation() {
        let g = random_connected(15, 42);
        let rank = bfs_rank(&g, 0);
        let mut sorted = rank.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..15).collect::<Vec<_>>());
        // Rank respects BFS layering: a node's rank exceeds its
        // BFS-tree parent's, which is at distance - 1.
        for v in 1..15 {
            assert!(bfs_distance(&g, 0, v).is_some());
        }
    }
}
