//! The cube-connected cycles topology (mentioned in §4.3 as a further
//! interconnection family the multicast results extend to).
//!
//! `CCC(n)` replaces every vertex of an n-cube with an n-node cycle; node
//! `(v, i)` connects to its cycle neighbors `(v, i±1 mod n)` and across
//! the cube's dimension `i` to `(v ⊕ 2^i, i)`. All nodes have degree 3,
//! making CCC attractive for fixed-degree hardware. `CCC(n)` is
//! Hamiltonian for `n ≥ 3`, so the dissertation's Hamiltonian-labeling
//! path routing applies unchanged (see [`crate::hamiltonian::find_path`]).

use crate::graph::{NodeId, Topology};

/// A cube-connected cycles network `CCC(n)`, `n·2^n` nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CubeConnectedCycles {
    dim: u32,
}

impl CubeConnectedCycles {
    /// Creates `CCC(n)`.
    ///
    /// # Panics
    /// Panics if `dim < 3` (degenerate cycles) or too large.
    pub fn new(dim: u32) -> Self {
        assert!(dim >= 3, "CCC needs cycles of length at least 3");
        assert!(dim < 24, "CCC dimension too large");
        CubeConnectedCycles { dim }
    }

    /// The cube dimension `n` (also the cycle length).
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// Node id of `(cube_vertex, cycle_position)`.
    pub fn node(&self, vertex: usize, pos: u32) -> NodeId {
        debug_assert!(vertex < 1 << self.dim);
        debug_assert!(pos < self.dim);
        vertex * self.dim as usize + pos as usize
    }

    /// The `(cube_vertex, cycle_position)` of a node id.
    pub fn coords(&self, n: NodeId) -> (usize, u32) {
        (n / self.dim as usize, (n % self.dim as usize) as u32)
    }
}

impl Topology for CubeConnectedCycles {
    fn num_nodes(&self) -> usize {
        self.dim as usize * (1 << self.dim)
    }

    /// Neighbors in order: cycle successor, cycle predecessor, cube
    /// neighbor.
    fn neighbors_into(&self, n: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        let (v, p) = self.coords(n);
        let d = self.dim;
        out.push(self.node(v, (p + 1) % d));
        out.push(self.node(v, (p + d - 1) % d));
        out.push(self.node(v ^ (1 << p), p));
    }

    fn degree(&self, _n: NodeId) -> usize {
        3
    }

    fn diameter(&self) -> usize {
        // Known bound: ⌊5n/2⌋ − 2 for n ≥ 4; for n = 3 it is 6.
        if self.dim == 3 {
            6
        } else {
            (5 * self.dim as usize) / 2 - 2
        }
    }

    fn describe(&self) -> String {
        format!("CCC({})", self.dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::bfs_distances;

    #[test]
    fn structure_of_ccc3() {
        let c = CubeConnectedCycles::new(3);
        assert_eq!(c.num_nodes(), 24);
        for n in 0..c.num_nodes() {
            assert_eq!(c.degree(n), 3);
            let nb = c.neighbors(n);
            assert_eq!(nb.len(), 3);
            // Symmetry: each neighbor lists n back.
            for m in nb {
                assert!(c.neighbors(m).contains(&n), "asymmetric edge {n}-{m}");
            }
        }
    }

    #[test]
    fn connected_and_diameter_bound() {
        let c = CubeConnectedCycles::new(3);
        let d0 = bfs_distances(&c, 0);
        let max = d0.iter().max().copied().unwrap();
        assert!(d0.iter().all(|&d| d != usize::MAX));
        assert!(max <= c.diameter(), "eccentricity {max} > diameter bound");
    }

    #[test]
    fn cube_edges_cross_dimensions() {
        let c = CubeConnectedCycles::new(4);
        let (v, p) = (0b1010usize, 2u32);
        let n = c.node(v, p);
        let nb = c.neighbors(n);
        assert!(nb.contains(&c.node(v ^ 0b100, p)));
        assert_eq!(c.coords(n), (v, p));
    }
}
